#include "src/engine/database.h"

#include <gtest/gtest.h>

#include "src/naive/possible_worlds.h"
#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(DatabaseTest, CatalogOperations) {
  Database db;
  EXPECT_FALSE(db.HasTable("R"));
  PvcTable r{Schema({{"a", CellType::kInt}})};
  db.AddTable("R", std::move(r));
  EXPECT_TRUE(db.HasTable("R"));
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"R"});
  EXPECT_THROW(db.table("missing"), CheckError);
}

TEST(DatabaseTest, AddTupleIndependentTable) {
  Database db;
  db.AddTupleIndependentTable(
      "R", Schema({{"a", CellType::kInt}}),
      {{Cell(int64_t{1})}, {Cell(int64_t{2})}}, {0.3, 0.9});
  const PvcTable& r = db.table("R");
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(db.variables().size(), 2u);
  EXPECT_NEAR(db.TupleProbability(r.row(0)), 0.3, 1e-12);
  EXPECT_NEAR(db.TupleProbability(r.row(1)), 0.9, 1e-12);
}

TEST(DatabaseTest, RowCountMismatchThrows) {
  Database db;
  EXPECT_THROW(db.AddTupleIndependentTable("R", Schema({{"a", CellType::kInt}}),
                                           {{Cell(int64_t{1})}}, {0.3, 0.4}),
               CheckError);
}

TEST(DatabaseTest, AnnotationDistributionUnderBagSemantics) {
  Database db(SemiringKind::kNatural);
  VarId x = db.variables().Add(
      Distribution::FromPairs({{0, 0.2}, {1, 0.3}, {2, 0.5}}));
  PvcTable r{Schema({{"a", CellType::kInt}})};
  r.AddRow({Cell(int64_t{1})}, db.pool().Var(x));
  db.AddTable("R", std::move(r));
  Distribution d = db.AnnotationDistribution(db.table("R").row(0));
  EXPECT_NEAR(d.ProbOf(2), 0.5, 1e-12);
  EXPECT_NEAR(db.TupleProbability(db.table("R").row(0)), 0.8, 1e-12);
}

TEST(DatabaseTest, EndToEndProjectJoinProbability) {
  // Two-table join probability equals the product closed form.
  Database db;
  db.AddTupleIndependentTable("R", Schema({{"a", CellType::kInt}}),
                              {{Cell(int64_t{1})}}, {0.6});
  db.AddTupleIndependentTable("T", Schema({{"b", CellType::kInt}}),
                              {{Cell(int64_t{1})}}, {0.5});
  QueryPtr q = Query::Join(Query::Scan("R"), Query::Scan("T"),
                           Predicate::ColEqCol("a", "b"));
  PvcTable result = db.Run(*q);
  ASSERT_EQ(result.NumRows(), 1u);
  EXPECT_NEAR(db.TupleProbability(result.row(0)), 0.3, 1e-12);
}

TEST(DatabaseTest, RowJointDistributionCombinesAggAndAnnotation) {
  Database db;
  db.AddTupleIndependentTable(
      "R", Schema({{"g", CellType::kInt}, {"v", CellType::kInt}}),
      {{Cell(int64_t{1}), Cell(int64_t{10})},
       {Cell(int64_t{1}), Cell(int64_t{20})}},
      {0.5, 0.5});
  QueryPtr q = Query::GroupAgg(Query::Scan("R"), {"g"},
                               {{AggKind::kSum, "v", "s"}});
  PvcTable result = db.Run(*q);
  ASSERT_EQ(result.NumRows(), 1u);
  JointDistribution joint = db.RowJointDistribution(result, 0);
  // Tuples: (sum, annotation). Annotation 1 iff some tuple present.
  EXPECT_NEAR((joint[{30, 1}]), 0.25, 1e-12);
  EXPECT_NEAR((joint[{10, 1}]), 0.25, 1e-12);
  EXPECT_NEAR((joint[{20, 1}]), 0.25, 1e-12);
  EXPECT_NEAR((joint[{0, 0}]), 0.25, 1e-12);
  // The joint agrees with naive enumeration.
  std::vector<ExprId> exprs = {result.CellAt(0, "s").AsAgg(),
                               result.row(0).annotation};
  JointDistribution expected =
      EnumerateJointDistribution(db.pool(), db.variables(), exprs);
  for (const auto& [tuple, p] : expected) {
    EXPECT_NEAR(joint[tuple], p, 1e-9);
  }
}

TEST(DatabaseTest, CompileOptionsAreHonoured) {
  Database db;
  db.AddTupleIndependentTable("R", Schema({{"a", CellType::kInt}}),
                              {{Cell(int64_t{1})}}, {0.5});
  db.compile_options().max_nodes = 1;  // Absurdly small budget.
  // A single-variable annotation still fits in one node.
  EXPECT_NO_THROW(db.TupleProbability(db.table("R").row(0)));
}

TEST(DatabaseTest, AggregateDistributionRejectsDataColumns) {
  Database db;
  db.AddTupleIndependentTable("R", Schema({{"a", CellType::kInt}}),
                              {{Cell(int64_t{1})}}, {0.5});
  EXPECT_THROW(db.AggregateDistribution(db.table("R"), 0, "a"), CheckError);
}

TEST(DatabaseTest, ReplacingTableKeepsLatest) {
  Database db;
  db.AddTupleIndependentTable("R", Schema({{"a", CellType::kInt}}),
                              {{Cell(int64_t{1})}}, {0.5});
  db.AddTupleIndependentTable("R", Schema({{"a", CellType::kInt}}),
                              {{Cell(int64_t{2})}, {Cell(int64_t{3})}},
                              {0.5, 0.5});
  EXPECT_EQ(db.table("R").NumRows(), 2u);
}

}  // namespace
}  // namespace pvcdb
