// Randomised algebraic-law tests for the expression pool: the smart
// constructors may rewrite expressions (flattening, folding, idempotence,
// absorption, tensor merging), but every rewrite must preserve the
// valuation semantics -- nu(op(a, b)) == op(nu(a), nu(b)) for all
// valuations -- and hash-consing must keep structural equality consistent
// with semantic identity of the canonical forms.

#include <gtest/gtest.h>

#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/expr/eval.h"
#include "src/expr/expr.h"
#include "src/prob/variable.h"
#include "src/util/rng.h"

namespace pvcdb {
namespace {

class RandomExprFactory {
 public:
  RandomExprFactory(ExprPool* pool, int num_vars, Rng* rng)
      : pool_(pool), num_vars_(num_vars), rng_(rng) {}

  // A random semiring expression of bounded depth.
  ExprId Semiring(int depth) {
    if (depth == 0 || rng_->Bernoulli(0.3)) {
      if (rng_->Bernoulli(0.2)) {
        return pool_->ConstS(rng_->UniformInt(0, 2));
      }
      return pool_->Var(
          static_cast<VarId>(rng_->UniformInt(0, num_vars_ - 1)));
    }
    ExprId a = Semiring(depth - 1);
    ExprId b = Semiring(depth - 1);
    return rng_->Bernoulli(0.5) ? pool_->AddS(a, b) : pool_->MulS(a, b);
  }

  // A random semimodule expression over `agg`.
  ExprId Monoid(AggKind agg, int depth) {
    if (depth == 0 || rng_->Bernoulli(0.4)) {
      if (rng_->Bernoulli(0.3)) {
        return pool_->ConstM(agg, rng_->UniformInt(0, 20));
      }
      return pool_->Tensor(Semiring(1),
                           pool_->ConstM(agg, rng_->UniformInt(0, 20)));
    }
    return pool_->AddM(agg, Monoid(agg, depth - 1), Monoid(agg, depth - 1));
  }

 private:
  ExprPool* pool_;
  int num_vars_;
  Rng* rng_;
};

class ExprLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprLawsTest, ConstructorsPreserveSemanticsUnderBool) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  ExprPool pool(SemiringKind::kBool);
  RandomExprFactory factory(&pool, 4, &rng);
  Semiring semiring(SemiringKind::kBool);
  for (int trial = 0; trial < 20; ++trial) {
    ExprId a = factory.Semiring(3);
    ExprId b = factory.Semiring(3);
    ExprId sum = pool.AddS(a, b);
    ExprId prod = pool.MulS(a, b);
    // Check over all 16 valuations of the 4 variables.
    for (int mask = 0; mask < 16; ++mask) {
      auto nu = [mask](VarId x) -> int64_t { return (mask >> x) & 1; };
      EXPECT_EQ(EvalExpr(pool, sum, nu),
                semiring.Plus(EvalExpr(pool, a, nu), EvalExpr(pool, b, nu)));
      EXPECT_EQ(EvalExpr(pool, prod, nu),
                semiring.Times(EvalExpr(pool, a, nu), EvalExpr(pool, b, nu)));
    }
  }
}

TEST_P(ExprLawsTest, ConstructorsPreserveSemanticsUnderNatural) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  ExprPool pool(SemiringKind::kNatural);
  RandomExprFactory factory(&pool, 3, &rng);
  Semiring semiring(SemiringKind::kNatural);
  for (int trial = 0; trial < 20; ++trial) {
    ExprId a = factory.Semiring(3);
    ExprId b = factory.Semiring(3);
    ExprId sum = pool.AddS(a, b);
    ExprId prod = pool.MulS(a, b);
    // Valuations into {0, 1, 2} per variable.
    for (int v0 = 0; v0 < 3; ++v0) {
      for (int v1 = 0; v1 < 3; ++v1) {
        for (int v2 = 0; v2 < 3; ++v2) {
          int values[] = {v0, v1, v2};
          auto nu = [&values](VarId x) -> int64_t { return values[x]; };
          EXPECT_EQ(
              EvalExpr(pool, sum, nu),
              semiring.Plus(EvalExpr(pool, a, nu), EvalExpr(pool, b, nu)));
          EXPECT_EQ(
              EvalExpr(pool, prod, nu),
              semiring.Times(EvalExpr(pool, a, nu), EvalExpr(pool, b, nu)));
        }
      }
    }
  }
}

TEST_P(ExprLawsTest, MonoidSumsPreserveSemantics) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 900);
  ExprPool pool(SemiringKind::kBool);
  RandomExprFactory factory(&pool, 4, &rng);
  for (AggKind agg : {AggKind::kSum, AggKind::kMin, AggKind::kMax}) {
    Monoid monoid(agg);
    for (int trial = 0; trial < 10; ++trial) {
      ExprId a = factory.Monoid(agg, 2);
      ExprId b = factory.Monoid(agg, 2);
      ExprId sum = pool.AddM(agg, a, b);
      for (int mask = 0; mask < 16; ++mask) {
        auto nu = [mask](VarId x) -> int64_t { return (mask >> x) & 1; };
        EXPECT_EQ(EvalExpr(pool, sum, nu),
                  monoid.Plus(EvalExpr(pool, a, nu), EvalExpr(pool, b, nu)))
            << AggKindName(agg);
      }
    }
  }
}

TEST_P(ExprLawsTest, SubstitutionCommutesWithEvaluation) {
  // nu(Phi|x<-s) == nu'(Phi) where nu' maps x to s and agrees elsewhere.
  Rng rng(static_cast<uint64_t>(GetParam()) + 1300);
  ExprPool pool(SemiringKind::kBool);
  RandomExprFactory factory(&pool, 4, &rng);
  for (int trial = 0; trial < 20; ++trial) {
    ExprId e = factory.Semiring(4);
    VarId x = static_cast<VarId>(rng.UniformInt(0, 3));
    int64_t s = rng.UniformInt(0, 1);
    ExprId substituted = pool.Substitute(e, x, s);
    for (int mask = 0; mask < 16; ++mask) {
      auto nu = [mask](VarId v) -> int64_t { return (mask >> v) & 1; };
      auto nu_prime = [mask, x, s](VarId v) -> int64_t {
        return v == x ? s : (mask >> v) & 1;
      };
      EXPECT_EQ(EvalExpr(pool, substituted, nu), EvalExpr(pool, e, nu_prime));
    }
  }
}

TEST_P(ExprLawsTest, TensorMergePreservesSemantics) {
  // (s1 (x) (s2 (x) m)) and ((s1*s2) (x) m) must agree in every world,
  // both under B and N.
  Rng rng(static_cast<uint64_t>(GetParam()) + 1700);
  for (SemiringKind kind : {SemiringKind::kBool, SemiringKind::kNatural}) {
    ExprPool pool(kind);
    RandomExprFactory factory(&pool, 3, &rng);
    for (AggKind agg : {AggKind::kSum, AggKind::kMin, AggKind::kMax}) {
      if (kind == SemiringKind::kBool && agg == AggKind::kSum) {
        // B (x) N over SUM is not a semimodule (Section 2.2); the merge
        // law does not apply.
        continue;
      }
      ExprId s1 = factory.Semiring(2);
      ExprId s2 = factory.Semiring(2);
      ExprId m = pool.ConstM(agg, rng.UniformInt(1, 9));
      ExprId nested = pool.Tensor(s1, pool.Tensor(s2, m));
      ExprId merged = pool.Tensor(pool.MulS(s1, s2), m);
      EXPECT_EQ(nested, merged) << "hash-consing canonicalises both forms";
      for (int v0 = 0; v0 < 2; ++v0) {
        for (int v1 = 0; v1 < 2; ++v1) {
          for (int v2 = 0; v2 < 2; ++v2) {
            int values[] = {v0, v1, v2};
            auto nu = [&values](VarId x) -> int64_t { return values[x]; };
            EXPECT_EQ(EvalExpr(pool, nested, nu),
                      EvalExpr(pool, merged, nu));
          }
        }
      }
    }
  }
}

TEST_P(ExprLawsTest, CanonicalizationLawsInternIdentically) {
  // Hash-consing must map both sides of every algebraic rewrite of
  // Definitions 3/4 to the *same ExprId*: commutativity and associativity
  // of sums and products (Remark 2's canonical ordering), idempotence
  // under PosBool(X) and under the min/max monoids.
  Rng rng(static_cast<uint64_t>(GetParam()) + 2100);
  for (SemiringKind kind : {SemiringKind::kBool, SemiringKind::kNatural}) {
    ExprPool pool(kind);
    RandomExprFactory factory(&pool, 5, &rng);
    for (int trial = 0; trial < 25; ++trial) {
      ExprId a = factory.Semiring(3);
      ExprId b = factory.Semiring(3);
      ExprId c = factory.Semiring(3);
      // Commutativity: a + b = b + a, a * b = b * a.
      EXPECT_EQ(pool.AddS(a, b), pool.AddS(b, a));
      EXPECT_EQ(pool.MulS(a, b), pool.MulS(b, a));
      // Associativity: (a + b) + c = a + (b + c), same for products.
      EXPECT_EQ(pool.AddS(pool.AddS(a, b), c), pool.AddS(a, pool.AddS(b, c)));
      EXPECT_EQ(pool.MulS(pool.MulS(a, b), c), pool.MulS(a, pool.MulS(b, c)));
      if (kind == SemiringKind::kBool) {
        // Idempotence of PosBool(X): a + a = a, a * a = a.
        EXPECT_EQ(pool.AddS(a, a), a);
        EXPECT_EQ(pool.MulS(a, a), a);
      }
    }
    // Monoid sums: commutativity/associativity for every monoid,
    // idempotence for min/max.
    for (AggKind agg : {AggKind::kSum, AggKind::kMin, AggKind::kMax}) {
      RandomExprFactory mfactory(&pool, 5, &rng);
      for (int trial = 0; trial < 10; ++trial) {
        ExprId a = mfactory.Monoid(agg, 2);
        ExprId b = mfactory.Monoid(agg, 2);
        ExprId c = mfactory.Monoid(agg, 2);
        EXPECT_EQ(pool.AddM(agg, a, b), pool.AddM(agg, b, a));
        EXPECT_EQ(pool.AddM(agg, pool.AddM(agg, a, b), c),
                  pool.AddM(agg, a, pool.AddM(agg, b, c)));
        if (agg == AggKind::kMin || agg == AggKind::kMax) {
          EXPECT_EQ(pool.AddM(agg, a, a), a);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprLawsTest, ::testing::Range(0, 6));

// -- Deep-expression regressions for the iterative kernels ------------------
//
// The compile, substitution, probability and evaluation kernels are
// explicit-stack iterative: they must survive expressions far deeper than
// any thread's call stack. The chain below alternates sums and products of
// fresh variables (no flattening), > 100k nodes deep.

class DeepExprTest : public ::testing::Test {
 protected:
  static constexpr size_t kDepth = 60000;  // ~120k interned nodes.

  // x_0 at the bottom, alternately summed / multiplied with fresh
  // variables on the way up.
  ExprId BuildChain(ExprPool* pool, VariableTable* vars) {
    VarId x0 = vars->AddBernoulli(0.5);
    ExprId e = pool->Var(x0);
    for (size_t i = 1; i <= kDepth; ++i) {
      ExprId v = pool->Var(vars->AddBernoulli(0.25 + 0.5 * (i % 2)));
      e = (i % 2 == 0) ? pool->AddS(v, e) : pool->MulS(v, e);
    }
    return e;
  }
};

TEST_F(DeepExprTest, CompileAndProbabilityHandleHundredThousandNodes) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprId e = BuildChain(&pool, &vars);
  ASSERT_GE(pool.NumNodes(), 100000u);
  DTree tree = CompileToDTree(&pool, &vars, e);
  ASSERT_GE(tree.size(), 100000u);
  Distribution d = ComputeDistribution(tree, vars, pool.semiring());
  EXPECT_TRUE(d.IsNormalized(1e-6));
  double p = NonZeroMass(d);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST_F(DeepExprTest, SubstituteCloneAndEvalHandleHundredThousandNodes) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprId e = BuildChain(&pool, &vars);
  ASSERT_GE(pool.NumNodes(), 100000u);

  // Substituting the bottom-most variable rewrites the entire chain.
  ExprId substituted = pool.Substitute(e, 0, 1);
  EXPECT_NE(substituted, e);
  // Evaluation agrees with evaluating the original under nu[x0 <- 1].
  auto all_one = [](VarId) -> int64_t { return 1; };
  EXPECT_EQ(EvalExpr(pool, substituted, all_one), EvalExpr(pool, e, all_one));

  // Cloning reproduces the chain in a fresh pool, same valuation
  // semantics.
  ExprPool copy(SemiringKind::kBool);
  ExprId cloned = pool.CloneInto(&copy, e);
  EXPECT_EQ(EvalExpr(copy, cloned, all_one), EvalExpr(pool, e, all_one));
  EXPECT_EQ(copy.ReachableSize(cloned), pool.ReachableSize(e));
}

}  // namespace
}  // namespace pvcdb
