// Randomised algebraic-law tests for the expression pool: the smart
// constructors may rewrite expressions (flattening, folding, idempotence,
// absorption, tensor merging), but every rewrite must preserve the
// valuation semantics -- nu(op(a, b)) == op(nu(a), nu(b)) for all
// valuations -- and hash-consing must keep structural equality consistent
// with semantic identity of the canonical forms.

#include <gtest/gtest.h>

#include "src/expr/eval.h"
#include "src/expr/expr.h"
#include "src/util/rng.h"

namespace pvcdb {
namespace {

class RandomExprFactory {
 public:
  RandomExprFactory(ExprPool* pool, int num_vars, Rng* rng)
      : pool_(pool), num_vars_(num_vars), rng_(rng) {}

  // A random semiring expression of bounded depth.
  ExprId Semiring(int depth) {
    if (depth == 0 || rng_->Bernoulli(0.3)) {
      if (rng_->Bernoulli(0.2)) {
        return pool_->ConstS(rng_->UniformInt(0, 2));
      }
      return pool_->Var(
          static_cast<VarId>(rng_->UniformInt(0, num_vars_ - 1)));
    }
    ExprId a = Semiring(depth - 1);
    ExprId b = Semiring(depth - 1);
    return rng_->Bernoulli(0.5) ? pool_->AddS(a, b) : pool_->MulS(a, b);
  }

  // A random semimodule expression over `agg`.
  ExprId Monoid(AggKind agg, int depth) {
    if (depth == 0 || rng_->Bernoulli(0.4)) {
      if (rng_->Bernoulli(0.3)) {
        return pool_->ConstM(agg, rng_->UniformInt(0, 20));
      }
      return pool_->Tensor(Semiring(1),
                           pool_->ConstM(agg, rng_->UniformInt(0, 20)));
    }
    return pool_->AddM(agg, Monoid(agg, depth - 1), Monoid(agg, depth - 1));
  }

 private:
  ExprPool* pool_;
  int num_vars_;
  Rng* rng_;
};

class ExprLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprLawsTest, ConstructorsPreserveSemanticsUnderBool) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  ExprPool pool(SemiringKind::kBool);
  RandomExprFactory factory(&pool, 4, &rng);
  Semiring semiring(SemiringKind::kBool);
  for (int trial = 0; trial < 20; ++trial) {
    ExprId a = factory.Semiring(3);
    ExprId b = factory.Semiring(3);
    ExprId sum = pool.AddS(a, b);
    ExprId prod = pool.MulS(a, b);
    // Check over all 16 valuations of the 4 variables.
    for (int mask = 0; mask < 16; ++mask) {
      auto nu = [mask](VarId x) -> int64_t { return (mask >> x) & 1; };
      EXPECT_EQ(EvalExpr(pool, sum, nu),
                semiring.Plus(EvalExpr(pool, a, nu), EvalExpr(pool, b, nu)));
      EXPECT_EQ(EvalExpr(pool, prod, nu),
                semiring.Times(EvalExpr(pool, a, nu), EvalExpr(pool, b, nu)));
    }
  }
}

TEST_P(ExprLawsTest, ConstructorsPreserveSemanticsUnderNatural) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  ExprPool pool(SemiringKind::kNatural);
  RandomExprFactory factory(&pool, 3, &rng);
  Semiring semiring(SemiringKind::kNatural);
  for (int trial = 0; trial < 20; ++trial) {
    ExprId a = factory.Semiring(3);
    ExprId b = factory.Semiring(3);
    ExprId sum = pool.AddS(a, b);
    ExprId prod = pool.MulS(a, b);
    // Valuations into {0, 1, 2} per variable.
    for (int v0 = 0; v0 < 3; ++v0) {
      for (int v1 = 0; v1 < 3; ++v1) {
        for (int v2 = 0; v2 < 3; ++v2) {
          int values[] = {v0, v1, v2};
          auto nu = [&values](VarId x) -> int64_t { return values[x]; };
          EXPECT_EQ(
              EvalExpr(pool, sum, nu),
              semiring.Plus(EvalExpr(pool, a, nu), EvalExpr(pool, b, nu)));
          EXPECT_EQ(
              EvalExpr(pool, prod, nu),
              semiring.Times(EvalExpr(pool, a, nu), EvalExpr(pool, b, nu)));
        }
      }
    }
  }
}

TEST_P(ExprLawsTest, MonoidSumsPreserveSemantics) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 900);
  ExprPool pool(SemiringKind::kBool);
  RandomExprFactory factory(&pool, 4, &rng);
  for (AggKind agg : {AggKind::kSum, AggKind::kMin, AggKind::kMax}) {
    Monoid monoid(agg);
    for (int trial = 0; trial < 10; ++trial) {
      ExprId a = factory.Monoid(agg, 2);
      ExprId b = factory.Monoid(agg, 2);
      ExprId sum = pool.AddM(agg, a, b);
      for (int mask = 0; mask < 16; ++mask) {
        auto nu = [mask](VarId x) -> int64_t { return (mask >> x) & 1; };
        EXPECT_EQ(EvalExpr(pool, sum, nu),
                  monoid.Plus(EvalExpr(pool, a, nu), EvalExpr(pool, b, nu)))
            << AggKindName(agg);
      }
    }
  }
}

TEST_P(ExprLawsTest, SubstitutionCommutesWithEvaluation) {
  // nu(Phi|x<-s) == nu'(Phi) where nu' maps x to s and agrees elsewhere.
  Rng rng(static_cast<uint64_t>(GetParam()) + 1300);
  ExprPool pool(SemiringKind::kBool);
  RandomExprFactory factory(&pool, 4, &rng);
  for (int trial = 0; trial < 20; ++trial) {
    ExprId e = factory.Semiring(4);
    VarId x = static_cast<VarId>(rng.UniformInt(0, 3));
    int64_t s = rng.UniformInt(0, 1);
    ExprId substituted = pool.Substitute(e, x, s);
    for (int mask = 0; mask < 16; ++mask) {
      auto nu = [mask](VarId v) -> int64_t { return (mask >> v) & 1; };
      auto nu_prime = [mask, x, s](VarId v) -> int64_t {
        return v == x ? s : (mask >> v) & 1;
      };
      EXPECT_EQ(EvalExpr(pool, substituted, nu), EvalExpr(pool, e, nu_prime));
    }
  }
}

TEST_P(ExprLawsTest, TensorMergePreservesSemantics) {
  // (s1 (x) (s2 (x) m)) and ((s1*s2) (x) m) must agree in every world,
  // both under B and N.
  Rng rng(static_cast<uint64_t>(GetParam()) + 1700);
  for (SemiringKind kind : {SemiringKind::kBool, SemiringKind::kNatural}) {
    ExprPool pool(kind);
    RandomExprFactory factory(&pool, 3, &rng);
    for (AggKind agg : {AggKind::kSum, AggKind::kMin, AggKind::kMax}) {
      if (kind == SemiringKind::kBool && agg == AggKind::kSum) {
        // B (x) N over SUM is not a semimodule (Section 2.2); the merge
        // law does not apply.
        continue;
      }
      ExprId s1 = factory.Semiring(2);
      ExprId s2 = factory.Semiring(2);
      ExprId m = pool.ConstM(agg, rng.UniformInt(1, 9));
      ExprId nested = pool.Tensor(s1, pool.Tensor(s2, m));
      ExprId merged = pool.Tensor(pool.MulS(s1, s2), m);
      EXPECT_EQ(nested, merged) << "hash-consing canonicalises both forms";
      for (int v0 = 0; v0 < 2; ++v0) {
        for (int v1 = 0; v1 < 2; ++v1) {
          for (int v2 = 0; v2 < 2; ++v2) {
            int values[] = {v0, v1, v2};
            auto nu = [&values](VarId x) -> int64_t { return values[x]; };
            EXPECT_EQ(EvalExpr(pool, nested, nu),
                      EvalExpr(pool, merged, nu));
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprLawsTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace pvcdb
