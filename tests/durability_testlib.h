// Shared fixtures for the durability test suite (crash_recovery_test,
// durability_property_test): a deterministic mutation workload language,
// a seeded workload generator, the fault-free twin builder and the bitwise
// state comparator.
//
// The oracle leans on the IVM bit-identity contract (tests/ivm_test.cc):
// recovery rebuilds through the same rebuild hooks the oracle proves
// bit-identical to a live mutated engine, so "recovered == twin at prefix
// j" is an exact, bitwise assertion with no tolerance.

#ifndef PVCDB_TESTS_DURABILITY_TESTLIB_H_
#define PVCDB_TESTS_DURABILITY_TESTLIB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/engine/shard.h"
#include "src/engine/snapshot.h"
#include "src/engine/wal.h"
#include "src/query/ast.h"
#include "src/util/check.h"
#include "src/util/io.h"

namespace pvcdb {
namespace durability_test {

inline std::string TestDir(const std::string& name) {
  std::string dir =
      JoinPath(::testing::TempDir(), "pvcdb_crash_test_" + name);
  FileSystem* fs = DefaultFileSystem();
  for (const std::string& file : fs->ListDir(dir)) {
    std::string error;
    fs->Remove(JoinPath(dir, file), &error);
  }
  return dir;
}

inline Schema StockSchema() {
  return Schema({{"id", CellType::kInt},
                 {"kind", CellType::kString},
                 {"qty", CellType::kInt}});
}

/// The initial state every crash run starts from (snapshotted by Create).
inline EngineState InitialState(uint64_t num_shards) {
  std::vector<std::vector<Cell>> rows;
  std::vector<double> probs;
  for (int64_t i = 0; i < 6; ++i) {
    rows.push_back({Cell(i), Cell(std::string(i % 2 == 0 ? "bolt" : "nut")),
                    Cell(i * 10)});
    probs.push_back(0.1 + 0.12 * static_cast<double>(i));
  }
  Database seed;
  seed.AddTupleIndependentTable("stock", StockSchema(), rows, probs);
  seed.RegisterView("low",
                    Query::Select(Query::Scan("stock"),
                                  Predicate::ColCmpInt("qty", CmpOp::kLe, 30)));
  EngineState state = CaptureState(seed);
  state.num_shards = num_shards;
  return state;
}

/// One logical mutation of the crash workload. Values are fixed up front
/// (optionally from a seeded RNG), so applying the same prefix to two
/// sessions is deterministic.
struct Mutation {
  enum Kind { kInsert, kDelete, kSetProb, kView, kDropView, kReshard };
  Kind kind;
  int64_t id = 0;        ///< kInsert.
  int64_t qty = 0;       ///< kInsert / kView threshold.
  double p = 0.0;        ///< kInsert / kSetProb.
  VarId var = 0;         ///< kSetProb.
  size_t row = 0;        ///< kDelete (modulo the current row count).
  uint64_t shards = 0;   ///< kReshard.
};

/// The fixed sweep workload: every WAL record type appears, including a
/// view replacement (one record, not drop+register) and topology changes
/// in both directions.
inline std::vector<Mutation> SweepWorkload(bool with_reshard) {
  std::vector<Mutation> w;
  w.push_back({Mutation::kInsert, 100, 15, 0.35, 0, 0, 0});
  w.push_back({Mutation::kSetProb, 0, 0, 0.8, 2, 0, 0});
  w.push_back({Mutation::kView, 0, 25, 0.0, 0, 0, 0});
  w.push_back({Mutation::kInsert, 101, 80, 0.6, 0, 0, 0});
  w.push_back({Mutation::kDelete, 0, 0, 0.0, 0, 3, 0});
  if (with_reshard) w.push_back({Mutation::kReshard, 0, 0, 0.0, 0, 0, 2});
  w.push_back({Mutation::kInsert, 102, 5, 0.45, 0, 0, 0});
  w.push_back({Mutation::kView, 0, 50, 0.0, 0, 0, 0});  // Replacement.
  w.push_back({Mutation::kSetProb, 0, 0, 0.05, 4, 0, 0});
  w.push_back({Mutation::kDropView, 0, 0, 0.0, 0, 0, 0});
  if (with_reshard) w.push_back({Mutation::kReshard, 0, 0, 0.0, 0, 0, 0});
  w.push_back({Mutation::kInsert, 103, 33, 0.7, 0, 0, 0});
  return w;
}

/// A tiny deterministic LCG: identical across platforms and processes.
class Lcg {
 public:
  explicit Lcg(uint32_t seed) : state_(seed * 2654435761u + 12345) {}
  uint32_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(state_ >> 33);
  }

 private:
  uint64_t state_;
};

/// A seeded random workload. `with_reshard` mixes topology changes into
/// the stream (the property runs); the fork/SIGKILL runs leave it out and
/// pin the topology per run instead.
inline std::vector<Mutation> SeededWorkload(uint32_t seed, size_t n,
                                            bool with_reshard = false) {
  Lcg rng(seed);
  auto next = [&rng]() { return rng.Next(); };
  std::vector<Mutation> w;
  int64_t next_id = 200;
  for (size_t i = 0; i < n; ++i) {
    switch (next() % (with_reshard ? 6 : 5)) {
      case 0:
      case 1:
        w.push_back({Mutation::kInsert, next_id++,
                     static_cast<int64_t>(next() % 100),
                     0.05 + 0.9 * (next() % 100) / 100.0, 0, 0, 0});
        break;
      case 2:
        w.push_back({Mutation::kSetProb, 0, 0,
                     0.05 + 0.9 * (next() % 100) / 100.0,
                     static_cast<VarId>(next() % 6), 0, 0});
        break;
      case 3:
        w.push_back({Mutation::kDelete, 0, 0, 0.0, 0, next() % 7, 0});
        break;
      case 4:
        w.push_back({Mutation::kView, 0,
                     static_cast<int64_t>(next() % 90), 0.0, 0, 0, 0});
        break;
      default:
        w.push_back({Mutation::kReshard, 0, 0, 0.0, 0, 0, next() % 4});
        break;
    }
  }
  return w;
}

/// Applies one mutation to whichever engine the session holds. Throws
/// CheckError when the WAL append fails (the simulated crash); Reshard
/// reports that through its return value instead.
inline void Apply(DurableSession* session, const Mutation& m) {
  Database* db = session->is_sharded() ? nullptr : session->db();
  ShardedDatabase* sharded =
      session->is_sharded() ? session->sharded() : nullptr;
  switch (m.kind) {
    case Mutation::kInsert: {
      std::vector<Cell> cells = {Cell(m.id), Cell(std::string("new")),
                                 Cell(m.qty)};
      if (sharded != nullptr) {
        sharded->InsertTuple("stock", std::move(cells), m.p);
      } else {
        db->InsertTuple("stock", std::move(cells), m.p);
      }
      return;
    }
    case Mutation::kDelete: {
      size_t rows = sharded != nullptr ? sharded->NumRows("stock")
                                       : db->table("stock").NumRows();
      if (rows == 0) return;
      size_t index = m.row % rows;
      if (sharded != nullptr) {
        sharded->DeleteRowAt("stock", index);
      } else {
        db->DeleteRowAt("stock", index);
      }
      return;
    }
    case Mutation::kSetProb:
      if (sharded != nullptr) {
        sharded->UpdateProbability(m.var, m.p);
      } else {
        db->UpdateProbability(m.var, m.p);
      }
      return;
    case Mutation::kView: {
      QueryPtr q = Query::Select(
          Query::Scan("stock"),
          Predicate::ColCmpInt("qty", CmpOp::kLe, m.qty));
      if (sharded != nullptr) {
        sharded->RegisterView("low", std::move(q));
      } else {
        db->RegisterView("low", std::move(q));
      }
      return;
    }
    case Mutation::kDropView:
      if (sharded != nullptr) {
        sharded->DropView("low");
      } else {
        db->DropView("low");
      }
      return;
    case Mutation::kReshard: {
      std::string error;
      PVC_CHECK_MSG(session->Reshard(m.shards, &error), error);
      return;
    }
  }
}

inline std::vector<double> TableProbabilities(DurableSession* session,
                                              const std::string& name) {
  if (session->is_sharded()) {
    return session->sharded()->TupleProbabilities(name);
  }
  Database* db = session->db();
  return db->TupleProbabilities(db->table(name));
}

inline std::vector<std::vector<Cell>> TableCells(DurableSession* session,
                                                 const std::string& name) {
  const Database& catalog = session->is_sharded()
                                ? session->sharded()->coordinator()
                                : *session->db();
  std::vector<std::vector<Cell>> out;
  const PvcTable& table = catalog.table(name);
  for (size_t i = 0; i < table.NumRows(); ++i) {
    out.push_back(table.row(i).cells);
  }
  return out;
}

/// Bitwise equality of everything observable: topology, table contents,
/// per-tuple probabilities, view catalog and cached view probabilities.
inline void ExpectSameState(DurableSession* recovered, DurableSession* twin,
                            const std::string& what) {
  ASSERT_EQ(recovered->is_sharded(), twin->is_sharded()) << what;
  if (recovered->is_sharded()) {
    ASSERT_EQ(recovered->sharded()->num_shards(),
              twin->sharded()->num_shards())
        << what;
  }
  const Database& a_catalog = recovered->is_sharded()
                                  ? recovered->sharded()->coordinator()
                                  : *recovered->db();
  const Database& b_catalog = twin->is_sharded()
                                  ? twin->sharded()->coordinator()
                                  : *twin->db();
  ASSERT_EQ(a_catalog.TableNames(), b_catalog.TableNames()) << what;
  ASSERT_EQ(a_catalog.variables().size(), b_catalog.variables().size())
      << what;
  for (const std::string& name : a_catalog.TableNames()) {
    std::vector<std::vector<Cell>> a_cells = TableCells(recovered, name);
    std::vector<std::vector<Cell>> b_cells = TableCells(twin, name);
    ASSERT_EQ(a_cells.size(), b_cells.size()) << what << " table " << name;
    for (size_t i = 0; i < a_cells.size(); ++i) {
      ASSERT_EQ(a_cells[i].size(), b_cells[i].size()) << what;
      for (size_t c = 0; c < a_cells[i].size(); ++c) {
        EXPECT_TRUE(a_cells[i][c] == b_cells[i][c])
            << what << " " << name << "[" << i << "][" << c << "]";
      }
    }
    // The core durability claim: bit-identical probabilities (operator==
    // on double, no tolerance).
    EXPECT_EQ(TableProbabilities(recovered, name),
              TableProbabilities(twin, name))
        << what << " table " << name;
  }
  std::vector<std::string> a_views, b_views;
  if (recovered->is_sharded()) {
    a_views = recovered->sharded()->ViewNames();
    b_views = twin->sharded()->ViewNames();
  } else {
    a_views = recovered->db()->ViewNames();
    b_views = twin->db()->ViewNames();
  }
  ASSERT_EQ(a_views, b_views) << what;
  for (const std::string& view : a_views) {
    std::vector<double> a_probs =
        recovered->is_sharded()
            ? recovered->sharded()->ViewProbabilities(view)
            : recovered->db()->ViewProbabilities(view);
    std::vector<double> b_probs =
        twin->is_sharded() ? twin->sharded()->ViewProbabilities(view)
                           : twin->db()->ViewProbabilities(view);
    EXPECT_EQ(a_probs, b_probs) << what << " view " << view;
  }
}

/// Builds the never-crashed twin: a fresh durable session (scratch dir, no
/// faults) that applies exactly the first `prefix` mutations.
inline std::unique_ptr<DurableSession> BuildTwin(
    const std::string& dir, const EngineState& initial,
    const std::vector<Mutation>& workload, size_t prefix) {
  FileSystem* fs = DefaultFileSystem();
  for (const std::string& file : fs->ListDir(dir)) {
    std::string error;
    fs->Remove(JoinPath(dir, file), &error);
  }
  DurableConfig config;
  config.dir = dir;
  std::string error;
  std::unique_ptr<DurableSession> twin =
      DurableSession::Create(config, initial, &error);
  PVC_CHECK_MSG(twin != nullptr, error);
  for (size_t i = 0; i < prefix; ++i) Apply(twin.get(), workload[i]);
  return twin;
}

/// Reference run: applies the whole workload fault-free and records the
/// WAL byte offset after every record (the crash boundaries to sweep).
inline std::vector<uint64_t> RecordBoundaries(
    const std::string& dir, const EngineState& initial,
    const std::vector<Mutation>& workload) {
  std::unique_ptr<DurableSession> session =
      BuildTwin(dir, initial, workload, 0);
  std::vector<uint64_t> boundaries;
  boundaries.push_back(session->stats().wal_bytes);  // The magic.
  for (const Mutation& m : workload) {
    Apply(session.get(), m);
    boundaries.push_back(session->stats().wal_bytes);
  }
  return boundaries;
}

}  // namespace durability_test
}  // namespace pvcdb

#endif  // PVCDB_TESTS_DURABILITY_TESTLIB_H_
