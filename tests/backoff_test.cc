// Unit tests for the fault-tolerance plane's timing primitives
// (src/net/backoff.h): the exponential-backoff schedule (exact without
// jitter, bounded and seed-deterministic with it), the circuit breaker's
// sliding failure window, and ConnectWithRetry's use of both through a
// mock clock -- no test here ever sleeps for real.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/backoff.h"
#include "src/net/socket.h"

namespace pvcdb {
namespace {

/// Deterministic clock: NowMillis reads a settable value, SleepMillis
/// advances it and records the requested delay.
class MockClock : public Clock {
 public:
  uint64_t NowMillis() override { return now_ms_; }
  void SleepMillis(uint64_t ms) override {
    sleeps.push_back(ms);
    now_ms_ += ms;
  }
  void Advance(uint64_t ms) { now_ms_ += ms; }

  std::vector<uint64_t> sleeps;

 private:
  uint64_t now_ms_ = 1000;
};

// ---------------------------------------------------------------------------
// ExponentialBackoff.
// ---------------------------------------------------------------------------

TEST(BackoffTest, ExactScheduleWithoutJitter) {
  BackoffPolicy policy;
  policy.base_ms = 2;
  policy.max_ms = 20;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  ExponentialBackoff backoff(policy);
  // 2, 4, 8, 16, then capped at 20 forever.
  EXPECT_EQ(backoff.NextDelayMs(), 2u);
  EXPECT_EQ(backoff.NextDelayMs(), 4u);
  EXPECT_EQ(backoff.NextDelayMs(), 8u);
  EXPECT_EQ(backoff.NextDelayMs(), 16u);
  EXPECT_EQ(backoff.NextDelayMs(), 20u);
  EXPECT_EQ(backoff.NextDelayMs(), 20u);
  EXPECT_EQ(backoff.attempts(), 6);
}

TEST(BackoffTest, JitterStaysWithinTheConfiguredBand) {
  BackoffPolicy policy;
  policy.base_ms = 100;
  policy.max_ms = 100000;
  policy.multiplier = 1.0;  // Every nominal delay is exactly base_ms.
  policy.jitter = 0.5;
  ExponentialBackoff backoff(policy);
  for (int i = 0; i < 200; ++i) {
    uint64_t delay = backoff.NextDelayMs();
    // jitter = 0.5 draws uniformly from [50, 100] (rounded).
    EXPECT_GE(delay, 50u);
    EXPECT_LE(delay, 100u);
  }
}

TEST(BackoffTest, SameSeedSameSchedule) {
  BackoffPolicy policy;
  policy.base_ms = 3;
  policy.max_ms = 500;
  policy.jitter = 0.5;
  policy.seed = 42;
  ExponentialBackoff a(policy);
  ExponentialBackoff b(policy);
  std::vector<uint64_t> schedule;
  for (int i = 0; i < 32; ++i) {
    uint64_t delay = a.NextDelayMs();
    EXPECT_EQ(delay, b.NextDelayMs()) << "diverged at step " << i;
    schedule.push_back(delay);
  }
  // A different seed jitters differently somewhere in 32 draws.
  policy.seed = 43;
  ExponentialBackoff c(policy);
  bool differs = false;
  for (uint64_t delay : schedule) differs |= (c.NextDelayMs() != delay);
  EXPECT_TRUE(differs);
}

TEST(BackoffTest, ResetReplaysTheScheduleFromTheTop) {
  BackoffPolicy policy;
  policy.base_ms = 5;
  policy.max_ms = 1000;
  policy.jitter = 0.5;
  policy.seed = 7;
  ExponentialBackoff backoff(policy);
  std::vector<uint64_t> first;
  for (int i = 0; i < 8; ++i) first.push_back(backoff.NextDelayMs());
  backoff.Reset();
  EXPECT_EQ(backoff.attempts(), 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(backoff.NextDelayMs(), first[static_cast<size_t>(i)]);
  }
}

TEST(BackoffTest, DelaysNeverUnderflowToZero) {
  BackoffPolicy policy;
  policy.base_ms = 1;
  policy.max_ms = 1;
  policy.jitter = 0.5;
  ExponentialBackoff backoff(policy);
  for (int i = 0; i < 50; ++i) EXPECT_GE(backoff.NextDelayMs(), 1u);
}

// ---------------------------------------------------------------------------
// CircuitBreaker.
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, OpensAtMaxFailuresWithinWindow) {
  MockClock clock;
  CircuitBreaker breaker(3, 1000, &clock);
  EXPECT_FALSE(breaker.open());
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.failures_in_window(), 2);
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.failures_in_window(), 3);
}

TEST(CircuitBreakerTest, ClosesAsFailuresAgeOutOfTheWindow) {
  MockClock clock;
  CircuitBreaker breaker(2, 1000, &clock);
  breaker.RecordFailure();
  clock.Advance(500);
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.open());
  // The first failure ages out at +1001ms; only one remains in-window.
  clock.Advance(600);
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.failures_in_window(), 1);
  clock.Advance(600);
  EXPECT_EQ(breaker.failures_in_window(), 0);
}

TEST(CircuitBreakerTest, SuccessClearsTheWindowImmediately) {
  MockClock clock;
  CircuitBreaker breaker(2, 60000, &clock);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.open());
  breaker.RecordSuccess();
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.failures_in_window(), 0);
  // The breaker re-arms from scratch after the success.
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.open());
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.open());
}

// ---------------------------------------------------------------------------
// ConnectWithRetry through the mock clock.
// ---------------------------------------------------------------------------

TEST(ConnectWithRetryTest, SleepsTheBackoffScheduleBetweenAttempts) {
  MockClock clock;
  BackoffPolicy policy;
  policy.base_ms = 2;
  policy.max_ms = 16;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  std::string error;
  // Nothing listens here: every attempt fails, so the clock records the
  // full schedule (attempts - 1 sleeps; no sleep before the first try).
  Socket sock = ConnectWithRetry("/nonexistent/pvcdb-backoff-test.sock", 5,
                                 &error, kNoDeadline, policy, &clock);
  EXPECT_FALSE(sock.valid());
  EXPECT_FALSE(error.empty());
  ASSERT_EQ(clock.sleeps.size(), 4u);
  EXPECT_EQ(clock.sleeps[0], 2u);
  EXPECT_EQ(clock.sleeps[1], 4u);
  EXPECT_EQ(clock.sleeps[2], 8u);
  EXPECT_EQ(clock.sleeps[3], 16u);
}

TEST(ConnectWithRetryTest, SingleAttemptNeverSleeps) {
  MockClock clock;
  std::string error;
  Socket sock = ConnectWithRetry("/nonexistent/pvcdb-backoff-test.sock", 1,
                                 &error, kNoDeadline, BackoffPolicy(),
                                 &clock);
  EXPECT_FALSE(sock.valid());
  EXPECT_TRUE(clock.sleeps.empty());
}

}  // namespace
}  // namespace pvcdb
