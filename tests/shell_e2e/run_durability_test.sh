#!/usr/bin/env bash
# End-to-end durability shell test: two separate pvcdb_shell processes
# share one on-disk store. The first loads a table, registers a view,
# `open`s the store (snapshot generation 0), then mutates and reshards
# THROUGH the WAL. The second `open`s the same store in a fresh process:
# recovery must replay the WAL tail (including the `shards 2` topology
# record), serve the view bit-identically, survive a `save` checkpoint
# rotation, and reshard back to 0.
#
# The store path differs per run, so inputs carry a @DIR@ placeholder that
# is substituted in, and transcripts are normalized back before diffing.
#
# Usage: run_durability_test.sh <path-to-pvcdb_shell> <repo-root>
set -u

shell_bin="$1"
src_dir="$2"
here="$src_dir/tests/shell_e2e"
cd "$src_dir" || exit 2

scratch="$(mktemp -d)" || exit 2
trap 'rm -rf "$scratch"' EXIT
store="$scratch/store"

run_invocation() {
  sed "s|@DIR@|$store|g" "$1" | "$shell_bin" | sed "s|$store|@DIR@|g"
}

for n in 1 2; do
  actual="$(run_invocation "$here/input_durable_$n.txt")"
  expected="$(cat "$here/expected_durable_$n.txt")"
  if [ "$actual" != "$expected" ]; then
    echo "durability shell transcript $n differs from expected:"
    diff -u <(printf '%s\n' "$expected") <(printf '%s\n' "$actual")
    exit 1
  fi
  # The durable prefix must survive the process boundary bit-identically:
  # every `view pricey` probability block in both transcripts is the same
  # state, so all P-lines must agree.
  if [ "$n" = 1 ]; then
    probs_1="$(printf '%s\n' "$actual" | grep '^P\[row')"
  else
    probs_2="$(printf '%s\n' "$actual" | grep '^P\[row' | head -5)"
  fi
done

if [ "$probs_1" != "$probs_2" ]; then
  echo "view probabilities changed across the process boundary:"
  diff -u <(printf '%s\n' "$probs_1") <(printf '%s\n' "$probs_2")
  exit 1
fi

# The store must hold exactly one snapshot + WAL generation after the
# checkpoint in invocation 2 rotated away generation 0.
leftover="$(ls "$store" | sort)"
wanted="$(printf 'snapshot-00000001\nwal-00000001.log')"
if [ "$leftover" != "$wanted" ]; then
  echo "store contents after checkpoint rotation unexpected:"
  printf '%s\n' "$leftover"
  exit 1
fi

echo "durability shell transcripts match"
exit 0
