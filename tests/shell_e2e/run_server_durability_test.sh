#!/usr/bin/env bash
# Crash/restart across the serving boundary, driven entirely through the
# shipped binaries: two pvcdb_server front-ends with worker processes and
# durable stores (--open) receive the same mutations over pvcdb_shell
# --connect. One is then SIGKILLed -- no shutdown, no checkpoint -- and
# restarted on its store. Recovery must replay the WAL, resync the fresh
# workers, report `recovered = yes`, and serve every read (P-lines
# included) byte-identically to the never-crashed twin.
#
# The `views` diagnostics line counts only live cache entries (annotations
# of current rows), a deterministic function of served state, so the
# transcripts are diffed without any scrubbing.
#
# Usage: run_server_durability_test.sh <pvcdb_server> <pvcdb_shell> <repo-root>
set -u

server_bin="$1"
shell_bin="$2"
src_dir="$3"
cd "$src_dir" || exit 2

scratch="$(mktemp -d)" || exit 2
twin_pid=""
crash_pid=""
cleanup() {
  [ -n "$twin_pid" ] && kill -9 "$twin_pid" 2>/dev/null
  [ -n "$crash_pid" ] && kill -9 "$crash_pid" 2>/dev/null
  rm -rf "$scratch"
}
trap cleanup EXIT

mutations() {
  cat <<'EOF'
load items data/items.csv
view pricey SELECT * FROM items WHERE price >= 1000
view pricey
insert items tool drill 1450 0.7
delete items garden
setprob x1 0.45
view pricey
quit
EOF
}

reads() {
  cat <<'EOF'
SELECT * FROM items WHERE price >= 1000
SELECT kind, COUNT(*) AS n FROM items GROUP BY kind HAVING n >= 1
view pricey
views
show items
quit
EOF
}

"$server_bin" --listen "$scratch/twin.sock" --shards 2 \
              --open "$scratch/twin_store" --quiet &
twin_pid=$!
"$server_bin" --listen "$scratch/crash.sock" --shards 2 \
              --open "$scratch/crash_store" --quiet &
crash_pid=$!

# The shell client retries the connect, so no explicit readiness wait is
# needed. Both servers must acknowledge the identical mutation sequence
# identically.
mutations | "$shell_bin" --connect "$scratch/twin.sock" \
  > "$scratch/twin_mutations.txt" || exit 1
mutations | "$shell_bin" --connect "$scratch/crash.sock" \
  > "$scratch/crash_mutations.txt" || exit 1
if ! diff -u "$scratch/twin_mutations.txt" "$scratch/crash_mutations.txt"; then
  echo "mutation transcripts diverged before the crash"
  exit 1
fi

# Crash one server outright and restart it on the same durable store.
kill -9 "$crash_pid"
wait "$crash_pid" 2>/dev/null
"$server_bin" --listen "$scratch/crash.sock" --shards 2 \
              --open "$scratch/crash_store" --quiet &
crash_pid=$!

# The restarted server must know it recovered.
printf 'log\nquit\n' | "$shell_bin" --connect "$scratch/crash.sock" \
  > "$scratch/crash_log.txt" || exit 1
if ! grep -q '^recovered = yes$' "$scratch/crash_log.txt"; then
  echo "restarted server did not report recovered = yes:"
  cat "$scratch/crash_log.txt"
  exit 1
fi

# Served reads -- including every P-line -- must match the twin that never
# crashed, byte for byte.
reads | "$shell_bin" --connect "$scratch/twin.sock" \
  > "$scratch/twin_reads.txt" || exit 1
reads | "$shell_bin" --connect "$scratch/crash.sock" \
  > "$scratch/crash_reads.txt" || exit 1
if ! diff -u "$scratch/twin_reads.txt" "$scratch/crash_reads.txt"; then
  echo "served reads diverged after crash/restart"
  exit 1
fi
if ! grep -q '^P\[row' "$scratch/crash_reads.txt"; then
  echo "read transcript unexpectedly carries no probability lines:"
  cat "$scratch/crash_reads.txt"
  exit 1
fi

# Both servers shut down cleanly on request.
printf 'shutdown\n' | "$shell_bin" --connect "$scratch/twin.sock" > /dev/null
wait "$twin_pid"
twin_status=$?
twin_pid=""
printf 'shutdown\n' | "$shell_bin" --connect "$scratch/crash.sock" > /dev/null
wait "$crash_pid"
crash_status=$?
crash_pid=""
if [ "$twin_status" != 0 ] || [ "$crash_status" != 0 ]; then
  echo "server exit statuses: twin=$twin_status crash=$crash_status"
  exit 1
fi

echo "server durability transcripts match"
exit 0
