#!/usr/bin/env bash
# End-to-end IVM shell test: drives the materialized-view and mutation
# commands (view / views / insert / delete / setprob) through pvcdb_shell
# in both the unsharded and the sharded topology and diffs the transcript
# against expected_ivm.txt. The `view pricey` outputs after `shards 2`
# (mutations + views replayed onto the resharded session) and after
# `shards 0` must match the unsharded ones line for line -- the CLI-level
# bit-identity check for incrementally maintained views.
#
# Usage: run_ivm_test.sh <path-to-pvcdb_shell> <repo-root>
set -u

shell_bin="$1"
src_dir="$2"
here="$src_dir/tests/shell_e2e"
cd "$src_dir" || exit 2

actual="$("$shell_bin" < "$here/input_ivm.txt")"
expected="$(cat "$here/expected_ivm.txt")"

if [ "$actual" != "$expected" ]; then
  echo "shell transcript differs from expected:"
  diff -u <(printf '%s\n' "$expected") <(printf '%s\n' "$actual")
  exit 1
fi
echo "ivm shell transcript matches"

# Six `view <name>` prints produce a probability block each: pricey and
# bykind unsharded, both again under shards 2, pricey after the sharded
# insert, and pricey after shards 0. Update this count together with
# input_ivm.txt / expected_ivm.txt.
blocks="$(printf '%s\n' "$actual" | grep -c '^P\[row 0\]')"
if [ "$blocks" -ne 6 ]; then
  echo "expected 6 view outputs with probabilities, saw $blocks"
  exit 1
fi
exit 0
