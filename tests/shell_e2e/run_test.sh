#!/usr/bin/env bash
# End-to-end shell test: pipes tests/shell_e2e/input.txt through
# pvcdb_shell from the repository root (so data/items.csv resolves) and
# diffs the transcript against expected.txt. The `threads` line prints the
# machine's hardware thread count; it is normalised before the diff. The
# sharded and unsharded SELECT outputs must match line for line -- this
# doubles as a CLI-level bit-identity check.
#
# Usage: run_test.sh <path-to-pvcdb_shell> <repo-root>
set -u

shell_bin="$1"
src_dir="$2"
here="$src_dir/tests/shell_e2e"
cd "$src_dir" || exit 2

actual="$("$shell_bin" < "$here/input.txt" \
  | sed -E 's/; [0-9]+ hardware threads/; N hardware threads/')"
expected="$(cat "$here/expected.txt")"

if [ "$actual" != "$expected" ]; then
  echo "shell transcript differs from expected:"
  diff -u <(printf '%s\n' "$expected") <(printf '%s\n' "$actual")
  exit 1
fi
echo "shell transcript matches"

# Five SELECT blocks: the WHERE-only query (distributed plan under
# shards=2) and the GROUP BY query, each run unsharded and sharded, plus
# the final unsharded re-run -- all asserted identical via expected.txt.
selects="$(printf '%s\n' "$actual" | grep -c '^P\[row 0\]')"
if [ "$selects" -ne 5 ]; then
  echo "expected 5 SELECT outputs, saw $selects"
  exit 1
fi
exit 0
