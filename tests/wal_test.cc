// Unit tests for the durability building blocks: the little-endian codec,
// CRC32C, query/predicate/cell serialization, WAL append + scan + torn-tail
// truncation, snapshot encode/decode, and the DurableSession generation
// protocol (create / recover / checkpoint / reshard) against the real file
// system in a per-test temp directory.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/engine/snapshot.h"
#include "src/engine/wal.h"
#include "src/query/serialize.h"
#include "src/table/cell.h"
#include "src/util/check.h"
#include "src/util/codec.h"
#include "src/util/crc32c.h"
#include "src/util/io.h"

namespace pvcdb {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = JoinPath(::testing::TempDir(), "pvcdb_wal_test_" + name);
  // Start from scratch even when a previous run left debris behind.
  FileSystem* fs = DefaultFileSystem();
  for (const std::string& file : fs->ListDir(dir)) {
    std::string error;
    fs->Remove(JoinPath(dir, file), &error);
  }
  return dir;
}

TEST(CodecTest, RoundTripsEveryType) {
  std::string buffer;
  EncodeU8(&buffer, 0xAB);
  EncodeU32(&buffer, 0xDEADBEEF);
  EncodeU64(&buffer, 0x0123456789ABCDEFull);
  EncodeI64(&buffer, -42);
  EncodeDouble(&buffer, 0.1);  // Not exactly representable: bit identity.
  EncodeString(&buffer, "hello");
  EncodeString(&buffer, "");

  ByteReader reader(buffer);
  EXPECT_EQ(reader.ReadU8(), 0xAB);
  EXPECT_EQ(reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.ReadI64(), -42);
  EXPECT_EQ(reader.ReadDouble(), 0.1);
  EXPECT_EQ(reader.ReadString(), "hello");
  EXPECT_EQ(reader.ReadString(), "");
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CodecTest, LittleEndianOnTheWire) {
  std::string buffer;
  EncodeU32(&buffer, 0x01020304);
  ASSERT_EQ(buffer.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(buffer[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(buffer[3]), 0x01);
}

TEST(CodecTest, ReaderFailureIsSticky) {
  std::string buffer;
  EncodeU8(&buffer, 7);
  ByteReader reader(buffer);
  EXPECT_EQ(reader.ReadU8(), 7);
  EXPECT_EQ(reader.ReadU32(), 0u);  // Past the end.
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.ReadU8(), 0);  // Still failed.
  EXPECT_FALSE(reader.ok());
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::string order;
  for (int i = 0; i < 32; ++i) order.push_back(static_cast<char>(i));
  EXPECT_EQ(Crc32c(order.data(), order.size()), 0x46DD794Eu);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, ExtendComposes) {
  std::string data = "the quick brown fox";
  uint32_t whole = Crc32c(data);
  uint32_t split = Crc32cExtend(Crc32cExtend(0, data.data(), 7),
                                data.data() + 7, data.size() - 7);
  EXPECT_EQ(whole, split);
}

TEST(SerializeTest, CellRoundTrip) {
  std::vector<Cell> cells = {Cell(), Cell(static_cast<int64_t>(-5)),
                             Cell(3.25), Cell(std::string("abc"))};
  std::string buffer;
  for (const Cell& c : cells) EncodeCell(&buffer, c);
  ByteReader reader(buffer);
  for (const Cell& c : cells) {
    Cell decoded = DecodeCell(&reader);
    EXPECT_TRUE(decoded == c);
  }
  EXPECT_TRUE(reader.ok());
}

TEST(SerializeTest, QueryRoundTrip) {
  Predicate pred = Predicate::ColEqCol("lk", "rk");
  pred.And({CmpOp::kLe, Operand::Col("lv"), Operand::Col("rv")});
  QueryPtr join = Query::Select(
      Query::Product(Query::Scan("L"), Query::Scan("R")), pred);
  QueryPtr agg = Query::GroupAgg(
      Query::Rename(Query::Project(Query::Scan("T"), {"g", "v"}), "g", "g2"),
      {"g2"}, {{AggKind::kCount, "", "n"}, {AggKind::kSum, "v", "total"}});
  QueryPtr uni = Query::Union(
      Query::Select(Query::Scan("T"),
                    Predicate::ColCmpInt("v", CmpOp::kGe, 30)),
      Query::Scan("T"));

  for (const QueryPtr& q : {join, agg, uni}) {
    std::string buffer;
    EncodeQuery(&buffer, *q);
    ByteReader reader(buffer);
    QueryPtr decoded = DecodeQuery(&reader);
    ASSERT_TRUE(reader.ok());
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->ToString(), q->ToString());
  }
}

TEST(SerializeTest, MalformedQueryFailsCleanly) {
  std::string buffer;
  EncodeU8(&buffer, 0xEE);  // Not a QueryOp tag.
  ByteReader reader(buffer);
  QueryPtr decoded = DecodeQuery(&reader);
  EXPECT_EQ(decoded, nullptr);
  EXPECT_FALSE(reader.ok());
}

WalRecord SampleRecord(int salt) {
  WalRecord record;
  record.ops.push_back(WalOp::RegisterVariable(
      "v" + std::to_string(salt), Distribution::Bernoulli(0.25 + salt * 0.1)));
  record.ops.push_back(WalOp::InsertRow(
      "T", {Cell(static_cast<int64_t>(salt)), Cell(std::string("row"))},
      static_cast<VarId>(salt)));
  return record;
}

void ExpectSameOps(const std::vector<WalOp>& a, const std::vector<WalOp>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type) << "op " << i;
    EXPECT_EQ(a[i].name, b[i].name) << "op " << i;
    EXPECT_EQ(a[i].var, b[i].var) << "op " << i;
  }
}

TEST(WalTest, AppendThenReadRoundTrips) {
  std::string dir = TestDir("roundtrip");
  FileSystem* fs = DefaultFileSystem();
  std::string error;
  ASSERT_TRUE(fs->CreateDir(dir, &error)) << error;
  std::string path = JoinPath(dir, "wal-00000000.log");
  fs->Remove(path, &error);

  std::vector<WalRecord> written;
  {
    std::unique_ptr<WalWriter> wal =
        WalWriter::Open(fs, path, 0, 0, /*sync=*/false, &error);
    ASSERT_NE(wal, nullptr) << error;
    for (int i = 0; i < 5; ++i) {
      written.push_back(SampleRecord(i));
      ASSERT_TRUE(wal->Append(written.back()));
    }
    EXPECT_EQ(wal->records(), 5u);
  }

  WalReadResult result = ReadWal(fs, path);
  EXPECT_TRUE(result.file_exists);
  EXPECT_TRUE(result.magic_valid);
  EXPECT_FALSE(result.torn_tail);
  ASSERT_EQ(result.records.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    ExpectSameOps(result.records[i].ops, written[i].ops);
  }
  EXPECT_EQ(result.valid_bytes, result.file_bytes);
}

TEST(WalTest, TornTailIsDetectedAtEveryCut) {
  std::string dir = TestDir("torn");
  FileSystem* fs = DefaultFileSystem();
  std::string error;
  ASSERT_TRUE(fs->CreateDir(dir, &error)) << error;
  std::string path = JoinPath(dir, "wal-torn.log");

  // Write 3 records, remember the clean boundaries.
  std::vector<uint64_t> boundaries;
  {
    fs->Remove(path, &error);
    std::unique_ptr<WalWriter> wal =
        WalWriter::Open(fs, path, 0, 0, false, &error);
    ASSERT_NE(wal, nullptr) << error;
    boundaries.push_back(wal->bytes());  // After the magic.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal->Append(SampleRecord(i)));
      boundaries.push_back(wal->bytes());
    }
  }
  std::string full;
  ASSERT_TRUE(fs->ReadFile(path, &full, &error)) << error;

  // Truncating at *any* byte length must recover the longest whole-record
  // prefix -- never a partial record, never a crash.
  for (uint64_t cut = 0; cut <= full.size(); ++cut) {
    ASSERT_TRUE(fs->Truncate(path, full.size(), &error)) << error;
    // Rewrite the full image then cut (Truncate can only shrink).
    fs->Remove(path, &error);
    {
      std::unique_ptr<WritableFile> f = fs->OpenForAppend(path, &error);
      ASSERT_NE(f, nullptr) << error;
      ASSERT_TRUE(f->Append(full.data(), cut));
      ASSERT_TRUE(f->Close());
    }
    WalReadResult result = ReadWal(fs, path);
    // The valid prefix is the largest clean boundary <= cut.
    uint64_t expect_bytes = 0;
    size_t expect_records = 0;
    if (cut >= boundaries[0]) {
      expect_bytes = boundaries[0];
      for (size_t i = 1; i < boundaries.size(); ++i) {
        if (boundaries[i] <= cut) {
          expect_bytes = boundaries[i];
          expect_records = i;
        }
      }
    }
    EXPECT_EQ(result.valid_bytes, expect_bytes) << "cut=" << cut;
    EXPECT_EQ(result.records.size(), expect_records) << "cut=" << cut;
    EXPECT_EQ(result.torn_tail, cut > expect_bytes) << "cut=" << cut;
  }
}

TEST(WalTest, CorruptPayloadStopsTheScan) {
  std::string dir = TestDir("corrupt");
  FileSystem* fs = DefaultFileSystem();
  std::string error;
  ASSERT_TRUE(fs->CreateDir(dir, &error)) << error;
  std::string path = JoinPath(dir, "wal-corrupt.log");
  fs->Remove(path, &error);

  uint64_t first_boundary = 0;
  {
    std::unique_ptr<WalWriter> wal =
        WalWriter::Open(fs, path, 0, 0, false, &error);
    ASSERT_NE(wal, nullptr) << error;
    ASSERT_TRUE(wal->Append(SampleRecord(0)));
    first_boundary = wal->bytes();
    ASSERT_TRUE(wal->Append(SampleRecord(1)));
  }
  std::string image;
  ASSERT_TRUE(fs->ReadFile(path, &image, &error)) << error;
  // Flip one payload byte of the second record: its CRC must reject it.
  image[first_boundary + 9] = static_cast<char>(image[first_boundary + 9] ^ 0x40);
  fs->Remove(path, &error);
  {
    std::unique_ptr<WritableFile> f = fs->OpenForAppend(path, &error);
    ASSERT_NE(f, nullptr) << error;
    ASSERT_TRUE(f->Append(image.data(), image.size()));
    ASSERT_TRUE(f->Close());
  }

  WalReadResult result = ReadWal(fs, path);
  EXPECT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.valid_bytes, first_boundary);
  EXPECT_TRUE(result.torn_tail);
}

Schema ItemsSchema() {
  return Schema({{"id", CellType::kInt},
                 {"name", CellType::kString},
                 {"price", CellType::kDouble}});
}

std::unique_ptr<Database> SampleDb() {
  auto db = std::make_unique<Database>();
  db->AddTupleIndependentTable(
      "items", ItemsSchema(),
      {{Cell(static_cast<int64_t>(1)), Cell(std::string("hammer")),
        Cell(12.5)},
       {Cell(static_cast<int64_t>(2)), Cell(std::string("drill")),
        Cell(99.0)},
       {Cell(static_cast<int64_t>(3)), Cell(std::string("saw")), Cell(45.0)}},
      {0.9, 0.5, 0.75});
  db->RegisterView("cheap",
                   Query::Select(Query::Scan("items"),
                                 Predicate::ColCmpInt("id", CmpOp::kLe, 2)));
  return db;
}

TEST(SnapshotTest, EncodeDecodeRoundTrips) {
  std::unique_ptr<Database> db = SampleDb();
  EngineState state = CaptureState(*db);
  std::string image = EncodeSnapshot(state);

  EngineState decoded;
  ASSERT_TRUE(DecodeSnapshot(image, &decoded));
  EXPECT_EQ(decoded.num_shards, 0u);
  EXPECT_EQ(decoded.semiring, state.semiring);
  ASSERT_EQ(decoded.ops.size(), state.ops.size());

  // Rebuilding from the decoded state reproduces the engine bit for bit.
  Database rebuilt;
  for (const WalOp& op : decoded.ops) ApplyWalOp(op, &rebuilt, nullptr);
  std::vector<double> expected = db->TupleProbabilities(db->table("items"));
  std::vector<double> actual =
      rebuilt.TupleProbabilities(rebuilt.table("items"));
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]);
  }
  EXPECT_EQ(rebuilt.ViewProbabilities("cheap"), db->ViewProbabilities("cheap"));
}

TEST(SnapshotTest, TornOrCorruptImagesAreRejected) {
  EngineState state = CaptureState(*SampleDb());
  std::string image = EncodeSnapshot(state);
  EngineState out;
  EXPECT_TRUE(DecodeSnapshot(image, &out));
  // Torn at every length.
  for (size_t cut = 0; cut < image.size(); ++cut) {
    EXPECT_FALSE(DecodeSnapshot(image.substr(0, cut), &out)) << cut;
  }
  // One flipped body byte.
  std::string corrupt = image;
  corrupt[image.size() - 1] = static_cast<char>(corrupt[image.size() - 1] ^ 1);
  EXPECT_FALSE(DecodeSnapshot(corrupt, &out));
  // Trailing garbage.
  EXPECT_FALSE(DecodeSnapshot(image + "x", &out));
}

TEST(DurableSessionTest, CreateMutateRecover) {
  DurableConfig config;
  config.dir = TestDir("create_recover");
  std::string error;
  {
    std::unique_ptr<DurableSession> session =
        DurableSession::Create(config, CaptureState(*SampleDb()), &error);
    ASSERT_NE(session, nullptr) << error;
    ASSERT_FALSE(session->is_sharded());
    session->db()->InsertTuple(
        "items",
        {Cell(static_cast<int64_t>(4)), Cell(std::string("wrench")),
         Cell(30.0)},
        0.6);
    session->db()->UpdateProbability(0, 0.42);
    EXPECT_EQ(session->stats().wal_records, 2u);
  }

  std::unique_ptr<DurableSession> recovered =
      DurableSession::Recover(config, &error);
  ASSERT_NE(recovered, nullptr) << error;
  EXPECT_TRUE(recovered->stats().recovered);
  EXPECT_EQ(recovered->stats().replayed_records, 2u);
  EXPECT_FALSE(recovered->stats().tail_truncated);

  // The never-crashed twin: the same logical history applied in-memory.
  std::unique_ptr<Database> twin = SampleDb();
  twin->InsertTuple("items",
                    {Cell(static_cast<int64_t>(4)),
                     Cell(std::string("wrench")), Cell(30.0)},
                    0.6);
  twin->UpdateProbability(0, 0.42);
  Database* db = recovered->db();
  EXPECT_EQ(db->TupleProbabilities(db->table("items")),
            twin->TupleProbabilities(twin->table("items")));
  EXPECT_EQ(db->ViewProbabilities("cheap"), twin->ViewProbabilities("cheap"));
}

TEST(DurableSessionTest, CheckpointRotatesGenerations) {
  DurableConfig config;
  config.dir = TestDir("checkpoint");
  std::string error;
  std::unique_ptr<DurableSession> session =
      DurableSession::Create(config, CaptureState(*SampleDb()), &error);
  ASSERT_NE(session, nullptr) << error;
  session->db()->UpdateProbability(1, 0.1);
  ASSERT_TRUE(session->Checkpoint(&error)) << error;
  EXPECT_EQ(session->stats().generation, 1u);
  EXPECT_EQ(session->stats().wal_records, 0u);
  // Generation 0's files are gone; generation 1 recovers the state.
  FileSystem* fs = DefaultFileSystem();
  EXPECT_FALSE(fs->FileExists(JoinPath(config.dir, "snapshot-00000000")));
  session->db()->UpdateProbability(2, 0.2);
  session.reset();

  std::unique_ptr<DurableSession> recovered =
      DurableSession::Recover(config, &error);
  ASSERT_NE(recovered, nullptr) << error;
  EXPECT_EQ(recovered->stats().generation, 1u);
  EXPECT_EQ(recovered->stats().replayed_records, 1u);
  EXPECT_EQ(recovered->db()->variables().DistributionOf(1).entries()[1].second,
            0.1);
}

TEST(DurableSessionTest, ReshardSurvivesRecovery) {
  DurableConfig config;
  config.dir = TestDir("reshard");
  std::string error;
  std::unique_ptr<DurableSession> session =
      DurableSession::Create(config, CaptureState(*SampleDb()), &error);
  ASSERT_NE(session, nullptr) << error;
  ASSERT_TRUE(session->Reshard(4, &error)) << error;
  ASSERT_TRUE(session->is_sharded());
  ASSERT_EQ(session->sharded()->num_shards(), 4u);
  session->sharded()->InsertTuple(
      "items",
      {Cell(static_cast<int64_t>(9)), Cell(std::string("vise")), Cell(55.0)},
      0.3);
  std::vector<double> live =
      session->sharded()->TupleProbabilities(std::string("items"));
  session.reset();

  std::unique_ptr<DurableSession> recovered =
      DurableSession::Recover(config, &error);
  ASSERT_NE(recovered, nullptr) << error;
  ASSERT_TRUE(recovered->is_sharded());
  EXPECT_EQ(recovered->sharded()->num_shards(), 4u);
  EXPECT_EQ(recovered->sharded()->TupleProbabilities(std::string("items")),
            live);
  // And back to a single database.
  ASSERT_TRUE(recovered->Reshard(0, &error)) << error;
  ASSERT_FALSE(recovered->is_sharded());
  EXPECT_EQ(recovered->db()->TupleProbabilities(
                recovered->db()->table("items")),
            live);
}

TEST(DurableSessionTest, CreateRefusesExistingState) {
  DurableConfig config;
  config.dir = TestDir("refuse");
  std::string error;
  std::unique_ptr<DurableSession> first =
      DurableSession::Create(config, CaptureState(*SampleDb()), &error);
  ASSERT_NE(first, nullptr) << error;
  first.reset();
  EXPECT_TRUE(DurableSession::HasState(DefaultFileSystem(), config.dir));
  std::unique_ptr<DurableSession> second =
      DurableSession::Create(config, CaptureState(*SampleDb()), &error);
  EXPECT_EQ(second, nullptr);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace pvcdb
