// End-to-end proof for out-of-process serving (ISSUE acceptance): a forked
// pvcdb server with worker processes must answer every query class --
// distributed chains, gathered projections, aggregates with conditional
// distributions, joins, materialized views -- byte-for-byte identically to
// an in-process ShardedDatabase fed the same command sequence, across
// shard counts {1, 2, 4} and concurrent client counts {1, 4, 8}, with
// mutations streaming through IVM. Replies render probabilities at
// precision 17, so text equality is double bit-equality.
//
// Also covered: a SIGKILLed worker is detected, degraded queries fall back
// to the coordinator replica with a warning (values unchanged), and
// `respawn` rebuilds the worker by full resync.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/shard.h"
#include "src/net/frame.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/serve/server.h"

namespace pvcdb {
namespace {

// A scratch directory holding the CSVs and the server's Unix socket.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pvcdb_serve_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      // Best-effort cleanup; nothing to do on failure.
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  ASSERT_TRUE(f.good()) << path;
  f << content;
}

void WriteDataset(const TempDir& dir) {
  WriteFileOrDie(dir.path() + "/items.csv",
                 "kind:string,item:string,price:int,_prob\n"
                 "tool,hammer,1299,0.9\n"
                 "tool,wrench,450,0.7\n"
                 "tool,pliers,1150,0.8\n"
                 "garden,shovel,2399,0.6\n"
                 "garden,rake,1799,0.5\n"
                 "kitchen,whisk,220,0.95\n");
  WriteFileOrDie(dir.path() + "/owners.csv",
                 "oitem:string,owner:string,_prob\n"
                 "hammer,ana,0.9\n"
                 "shovel,bo,0.8\n"
                 "whisk,cy,0.6\n");
}

// The deterministic setup sequence: catalog, views, then mutations that
// stream through IVM (an insert routed to its owner, a broadcast delete
// that shifts global rows, a marginal update that refreshes view caches).
std::vector<std::string> SetupCommands(const TempDir& dir) {
  return {
      "load items " + dir.path() + "/items.csv",
      "load owners " + dir.path() + "/owners.csv",
      "tables",
      "show items",
      "tractable SELECT * FROM items WHERE price >= 1000",
      "view pricey SELECT * FROM items WHERE price >= 1000",
      "view pricey",
      "insert items tool drill 1450 0.7",
      "delete items garden",
      "setprob x1 0.45",
      "view pricey",
      "views",
  };
}

// Read-only commands safe to issue from many clients concurrently. Ordered
// so every client prints the view before listing `views` (the step II
// caches fill on first print; the server serializes commands, so any
// `views` that follows a print observes the full, deterministic cache).
std::vector<std::string> ReadCommands() {
  return {
      "SELECT * FROM items WHERE price >= 1000",
      "SELECT item FROM items WHERE price >= 1000",
      "SELECT kind, COUNT(*) AS n FROM items GROUP BY kind HAVING n >= 1",
      "SELECT owner FROM items, owners WHERE item = oitem",
      "view pricey",
      "views",
      "tables",
  };
}

// One framed request/reply client connection.
class Client {
 public:
  bool Connect(const std::string& address) {
    std::string error;
    sock_ = ConnectWithRetry(address, 250, &error);
    return sock_.valid();
  }

  // Sends one command line; returns the rendered reply text ("<transport
  // error>" on connection failure so mismatches show up in EXPECT_EQ).
  std::string Send(const std::string& line) {
    if (!SendFrame(&sock_, static_cast<uint8_t>(MsgKind::kClientCommand),
                   line)) {
      return "<transport error: send>";
    }
    uint8_t kind = 0;
    std::string payload;
    if (RecvFrame(&sock_, &kind, &payload) != FrameResult::kOk ||
        static_cast<MsgKind>(kind) != MsgKind::kClientReply) {
      return "<transport error: recv>";
    }
    ClientReplyMsg reply;
    if (!ClientReplyMsg::Decode(payload, &reply)) {
      return "<transport error: decode>";
    }
    return reply.text;
  }

 private:
  Socket sock_;
};

// The bit-identity reference: an in-process ShardedDatabase driven through
// the same ExecuteCommand renderer the server uses.
class Reference {
 public:
  explicit Reference(size_t shards) : db_(shards), backend_(&db_) {}

  std::string Run(const std::string& line) {
    bool shutdown = false;
    return ExecuteCommand(&backend_, line, &shutdown).text;
  }

 private:
  ShardedDatabase db_;
  InProcessBackend backend_;
};

pid_t StartServer(const std::string& address, size_t shards, bool in_process,
                  const std::string& open_dir = "", int group_commit_ms = -1) {
  pid_t pid = fork();
  if (pid == 0) {
    ServerConfig config;
    config.listen_address = address;
    config.num_shards = shards;
    config.in_process = in_process;
    config.quiet = true;
    config.open_dir = open_dir;
    config.group_commit_ms = group_commit_ms;
    _exit(RunServer(config));
  }
  return pid;
}

void ExpectCleanExit(pid_t server) {
  int status = 0;
  ASSERT_EQ(waitpid(server, &status, 0), server);
  EXPECT_TRUE(WIFEXITED(status)) << "server did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// Extracts the pid from a "worker <s>: pid <p>, up|down" line.
pid_t WorkerPidFrom(const std::string& workers_text, size_t shard) {
  std::string prefix = "worker " + std::to_string(shard) + ": pid ";
  size_t at = workers_text.find(prefix);
  if (at == std::string::npos) return -1;
  return static_cast<pid_t>(
      std::strtol(workers_text.c_str() + at + prefix.size(), nullptr, 10));
}

TEST(ServeE2eTest, BitIdenticalAcrossShardsAndConcurrentClients) {
  for (size_t shards : {1u, 2u, 4u}) {
    for (size_t num_clients : {1u, 4u, 8u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " clients=" + std::to_string(num_clients));
      TempDir dir;
      WriteDataset(dir);
      const std::string address = dir.path() + "/server.sock";
      pid_t server = StartServer(address, shards, /*in_process=*/false);
      ASSERT_GT(server, 0);

      Reference ref(shards);
      Client c0;
      ASSERT_TRUE(c0.Connect(address));

      // Mutations sequence through one client: identical command order on
      // both engines, hence identical variable ids and placements.
      for (const std::string& line : SetupCommands(dir)) {
        EXPECT_EQ(c0.Send(line), ref.Run(line)) << "command: " << line;
      }

      const std::vector<std::string> reads = ReadCommands();
      std::vector<std::string> expected;
      for (const std::string& line : reads) expected.push_back(ref.Run(line));

      // Concurrent clients replay the read set; every reply must be
      // byte-identical to the reference (snapshot consistency: no client
      // may observe a torn state).
      std::atomic<int> mismatches{0};
      std::vector<std::thread> threads;
      for (size_t c = 0; c < num_clients; ++c) {
        threads.emplace_back([&address, &reads, &expected, &mismatches]() {
          Client client;
          if (!client.Connect(address)) {
            ++mismatches;
            return;
          }
          for (int round = 0; round < 2; ++round) {
            for (size_t i = 0; i < reads.size(); ++i) {
              if (client.Send(reads[i]) != expected[i]) ++mismatches;
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      EXPECT_EQ(mismatches.load(), 0);

      // A mutation after the concurrent phase still matches.
      const std::string tail = "insert items kitchen pan 310 0.4";
      EXPECT_EQ(c0.Send(tail), ref.Run(tail));
      EXPECT_EQ(c0.Send("view pricey"), ref.Run("view pricey"));

      EXPECT_EQ(c0.Send("shutdown"), "shutting down\n");
      ExpectCleanExit(server);
    }
  }
}

TEST(ServeE2eTest, InProcessServerModeMatchesReference) {
  TempDir dir;
  WriteDataset(dir);
  const std::string address = dir.path() + "/server.sock";
  pid_t server = StartServer(address, 2, /*in_process=*/true);
  ASSERT_GT(server, 0);
  Reference ref(2);
  Client c0;
  ASSERT_TRUE(c0.Connect(address));
  for (const std::string& line : SetupCommands(dir)) {
    EXPECT_EQ(c0.Send(line), ref.Run(line)) << "command: " << line;
  }
  for (const std::string& line : ReadCommands()) {
    EXPECT_EQ(c0.Send(line), ref.Run(line)) << "command: " << line;
  }
  EXPECT_EQ(c0.Send("shutdown"), "shutting down\n");
  ExpectCleanExit(server);
}

TEST(ServeE2eTest, KilledWorkerDegradesThenRespawns) {
  TempDir dir;
  WriteDataset(dir);
  const std::string address = dir.path() + "/server.sock";
  pid_t server = StartServer(address, 2, /*in_process=*/false);
  ASSERT_GT(server, 0);

  Reference ref(2);
  Client c0;
  ASSERT_TRUE(c0.Connect(address));
  for (const std::string& line : SetupCommands(dir)) {
    ASSERT_EQ(c0.Send(line), ref.Run(line)) << "command: " << line;
  }

  const std::string chain = "SELECT * FROM items WHERE price >= 1000";
  const std::string healthy = ref.Run(chain);
  ASSERT_EQ(c0.Send(chain), healthy);

  pid_t worker0 = WorkerPidFrom(c0.Send("workers"), 0);
  ASSERT_GT(worker0, 0);
  ASSERT_EQ(kill(worker0, SIGKILL), 0);
  usleep(100 * 1000);

  // Degraded: the dead worker is detected mid-scatter, the query falls
  // back to the coordinator replica, the values do not change.
  const std::string degraded = c0.Send(chain);
  const std::string warning = "warning: worker 0 down";
  ASSERT_EQ(degraded.compare(0, warning.size(), warning), 0)
      << "degraded reply lacks the warning: " << degraded;
  size_t newline = degraded.find('\n');
  ASSERT_NE(newline, std::string::npos);
  EXPECT_EQ(degraded.substr(newline + 1), healthy);

  // The coordinator's own state survived: liveness reports the death, and
  // further commands keep working degraded.
  std::string workers = c0.Send("workers");
  EXPECT_NE(workers.find("worker 0: pid " + std::to_string(worker0) +
                         ", down"),
            std::string::npos)
      << workers;
  const std::string view_degraded = c0.Send("view pricey");
  EXPECT_NE(view_degraded.find("warning: worker 0 down"), std::string::npos);

  // Respawn resyncs variables, partitions, and chain views in full; the
  // distributed path resumes (no warning) with identical bytes.
  std::string respawned = c0.Send("respawn 0");
  EXPECT_EQ(respawned.compare(0, 19, "worker 0 respawned "), 0) << respawned;
  workers = c0.Send("workers");
  EXPECT_NE(workers.find("worker 0: pid"), std::string::npos);
  EXPECT_EQ(workers.find("down"), std::string::npos) << workers;
  EXPECT_EQ(c0.Send(chain), healthy);
  EXPECT_EQ(c0.Send("view pricey"), ref.Run("view pricey"));

  // Mutations stream through the respawned worker's IVM path.
  const std::string tail = "insert items tool saw 1700 0.65";
  EXPECT_EQ(c0.Send(tail), ref.Run(tail));
  EXPECT_EQ(c0.Send(chain), ref.Run(chain));
  EXPECT_EQ(c0.Send("view pricey"), ref.Run("view pricey"));

  EXPECT_EQ(c0.Send("shutdown"), "shutting down\n");
  ExpectCleanExit(server);
}

// The crash gauntlet (ISSUE acceptance): a durable server is SIGKILLed
// mid-session -- no shutdown, no checkpoint -- restarted on the same
// directory, and must serve every read byte-identical to a never-crashed
// in-process twin fed the same command sequence. Runs once per fsync
// discipline: per-append fsync and a 5 ms group-commit window (whose
// deferred acks must also come back correct and complete before the kill).
void RunSigkillRestartGauntlet(int group_commit_ms) {
  TempDir dir;
  WriteDataset(dir);
  const std::string address = dir.path() + "/server.sock";
  const std::string store = dir.path() + "/store";
  pid_t server = StartServer(address, 2, /*in_process=*/false, store,
                             group_commit_ms);
  ASSERT_GT(server, 0);

  Reference ref(2);
  Client c0;
  ASSERT_TRUE(c0.Connect(address));

  // Every ack (including group-commit deferred ones) must match the twin.
  for (const std::string& line : SetupCommands(dir)) {
    ASSERT_EQ(c0.Send(line), ref.Run(line)) << "command: " << line;
  }

  // Durable-session commands answer over the wire.
  std::string log_text = c0.Send("log");
  EXPECT_NE(log_text.find("dir = " + store), std::string::npos) << log_text;
  EXPECT_NE(log_text.find("recovered = no"), std::string::npos) << log_text;
  EXPECT_EQ(c0.Send("threads 2").compare(0, 16, "num_threads = 2 "), 0);
  EXPECT_EQ(c0.Send("intratree 2").compare(0, 22, "intra_tree_threads = 2"),
            0);

  const std::vector<std::string> reads = ReadCommands();
  std::vector<std::string> expected;
  for (const std::string& line : reads) expected.push_back(ref.Run(line));
  for (size_t i = 0; i < reads.size(); ++i) {
    ASSERT_EQ(c0.Send(reads[i]), expected[i]) << "command: " << reads[i];
  }

  // Crash: no reply drain, no checkpoint, no worker shutdown.
  ASSERT_EQ(kill(server, SIGKILL), 0);
  ASSERT_EQ(waitpid(server, nullptr, 0), server);

  // Restart on the same directory: WAL recovery + worker resync must
  // reproduce the exact served state.
  pid_t reborn = StartServer(address, 2, /*in_process=*/false, store,
                             group_commit_ms);
  ASSERT_GT(reborn, 0);
  Client c1;
  ASSERT_TRUE(c1.Connect(address));

  log_text = c1.Send("log");
  EXPECT_NE(log_text.find("recovered = yes"), std::string::npos) << log_text;
  // `views` cache occupancy counts only live entries (current-row
  // annotations), so the recovered server matches the never-crashed twin
  // byte for byte -- no scrubbing.
  for (size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(c1.Send(reads[i]), expected[i]) << "command: " << reads[i];
  }

  // The recovered server keeps serving durable mutations bit-identically.
  const std::string tail = "insert items kitchen pan 310 0.4";
  EXPECT_EQ(c1.Send(tail), ref.Run(tail));
  EXPECT_EQ(c1.Send("view pricey"), ref.Run("view pricey"));

  // `save` checkpoints; the generation advances past the recovered one.
  std::string saved = c1.Send("save");
  EXPECT_EQ(saved.compare(0, 31, "checkpoint written (generation "), 0)
      << saved;

  EXPECT_EQ(c1.Send("shutdown"), "shutting down\n");
  ExpectCleanExit(reborn);
}

TEST(ServeDurabilityE2eTest, SigkillRestartServesBitIdenticalState) {
  RunSigkillRestartGauntlet(/*group_commit_ms=*/-1);
}

TEST(ServeDurabilityE2eTest, SigkillRestartUnderGroupCommit) {
  RunSigkillRestartGauntlet(/*group_commit_ms=*/5);
}

TEST(ServeDurabilityE2eTest, InProcessDurableServerRecovers) {
  TempDir dir;
  WriteDataset(dir);
  const std::string address = dir.path() + "/server.sock";
  const std::string store = dir.path() + "/store";
  pid_t server = StartServer(address, 2, /*in_process=*/true, store);
  ASSERT_GT(server, 0);

  Reference ref(2);
  Client c0;
  ASSERT_TRUE(c0.Connect(address));
  for (const std::string& line : SetupCommands(dir)) {
    ASSERT_EQ(c0.Send(line), ref.Run(line)) << "command: " << line;
  }
  ASSERT_EQ(kill(server, SIGKILL), 0);
  ASSERT_EQ(waitpid(server, nullptr, 0), server);

  pid_t reborn = StartServer(address, 2, /*in_process=*/true, store);
  ASSERT_GT(reborn, 0);
  Client c1;
  ASSERT_TRUE(c1.Connect(address));
  for (const std::string& line : ReadCommands()) {
    EXPECT_EQ(c1.Send(line), ref.Run(line)) << "command: " << line;
  }
  EXPECT_EQ(c1.Send("shutdown"), "shutting down\n");
  ExpectCleanExit(reborn);
}

}  // namespace
}  // namespace pvcdb
