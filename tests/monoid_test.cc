#include "src/algebra/monoid.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace pvcdb {
namespace {

TEST(MonoidTest, Neutrals) {
  EXPECT_EQ(Monoid(AggKind::kSum).Neutral(), 0);
  EXPECT_EQ(Monoid(AggKind::kCount).Neutral(), 0);
  EXPECT_EQ(Monoid(AggKind::kMin).Neutral(), kPosInf);
  EXPECT_EQ(Monoid(AggKind::kMax).Neutral(), kNegInf);
  EXPECT_EQ(Monoid(AggKind::kProd).Neutral(), 1);
}

TEST(MonoidTest, PlusSemantics) {
  EXPECT_EQ(Monoid(AggKind::kSum).Plus(3, 4), 7);
  EXPECT_EQ(Monoid(AggKind::kMin).Plus(3, 4), 3);
  EXPECT_EQ(Monoid(AggKind::kMax).Plus(3, 4), 4);
  EXPECT_EQ(Monoid(AggKind::kProd).Plus(3, 4), 12);
}

TEST(MonoidTest, InfinitySentinelsOrderCorrectly) {
  Monoid min_monoid(AggKind::kMin);
  Monoid max_monoid(AggKind::kMax);
  EXPECT_EQ(min_monoid.Plus(kPosInf, 5), 5);
  EXPECT_EQ(max_monoid.Plus(kNegInf, 5), 5);
  EXPECT_LT(kNegInf, -1000000);
  EXPECT_GT(kPosInf, 1000000);
}

// Monoid axioms (Definition 2) over small value grids; MIN/MAX include
// their infinities.
class MonoidAxiomTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(MonoidAxiomTest, AssociativityCommutativityNeutral) {
  Monoid m(GetParam());
  std::vector<int64_t> values = {0, 1, 2, 5, m.Neutral()};
  for (int64_t a : values) {
    for (int64_t b : values) {
      EXPECT_EQ(m.Plus(a, b), m.Plus(b, a));
      EXPECT_EQ(m.Plus(m.Neutral(), a), a);
      EXPECT_EQ(m.Plus(a, m.Neutral()), a);
      for (int64_t c : values) {
        EXPECT_EQ(m.Plus(m.Plus(a, b), c), m.Plus(a, m.Plus(b, c)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMonoids, MonoidAxiomTest,
                         ::testing::Values(AggKind::kSum, AggKind::kCount,
                                           AggKind::kMin, AggKind::kMax,
                                           AggKind::kProd));

TEST(TensorTest, BooleanSemiringAction) {
  Semiring b(SemiringKind::kBool);
  EXPECT_EQ(Monoid(AggKind::kSum).Tensor(b, 1, 7), 7);
  EXPECT_EQ(Monoid(AggKind::kSum).Tensor(b, 0, 7), 0);
  EXPECT_EQ(Monoid(AggKind::kMin).Tensor(b, 1, 7), 7);
  EXPECT_EQ(Monoid(AggKind::kMin).Tensor(b, 0, 7), kPosInf);
  EXPECT_EQ(Monoid(AggKind::kMax).Tensor(b, 0, 7), kNegInf);
  EXPECT_EQ(Monoid(AggKind::kProd).Tensor(b, 0, 7), 1);
  EXPECT_EQ(Monoid(AggKind::kProd).Tensor(b, 1, 7), 7);
}

TEST(TensorTest, NaturalSemiringActionIsIteratedAddition) {
  // Example 6: 6 (x)_MIN 5 = 5; s (x)_SUM m = s*m.
  Semiring n(SemiringKind::kNatural);
  EXPECT_EQ(Monoid(AggKind::kMin).Tensor(n, 6, 5), 5);
  EXPECT_EQ(Monoid(AggKind::kSum).Tensor(n, 6, 5), 30);
  EXPECT_EQ(Monoid(AggKind::kSum).Tensor(n, 0, 5), 0);
  EXPECT_EQ(Monoid(AggKind::kProd).Tensor(n, 3, 2), 8);  // 2^3.
  EXPECT_EQ(Monoid(AggKind::kMax).Tensor(n, 0, 5), kNegInf);
}

// Semimodule axioms (Definition 4) for the tensor action, over small grids.
class SemimoduleAxiomTest
    : public ::testing::TestWithParam<std::tuple<SemiringKind, AggKind>> {};

TEST_P(SemimoduleAxiomTest, TensorLaws) {
  Semiring s(std::get<0>(GetParam()));
  Monoid m(std::get<1>(GetParam()));
  std::vector<int64_t> svals =
      s.kind() == SemiringKind::kBool ? std::vector<int64_t>{0, 1}
                                      : std::vector<int64_t>{0, 1, 2, 3};
  std::vector<int64_t> mvals = {1, 2, 5};
  for (int64_t s1 : svals) {
    for (int64_t s2 : svals) {
      for (int64_t m1 : mvals) {
        // (s1 +_S s2) (x) m = s1 (x) m +_M s2 (x) m.
        EXPECT_EQ(m.Tensor(s, s.Plus(s1, s2), m1),
                  m.Plus(m.Tensor(s, s1, m1), m.Tensor(s, s2, m1)))
            << "s1=" << s1 << " s2=" << s2 << " m=" << m1;
        // (s1 *_S s2) (x) m = s1 (x) (s2 (x) m).
        EXPECT_EQ(m.Tensor(s, s.Times(s1, s2), m1),
                  m.Tensor(s, s1, m.Tensor(s, s2, m1)));
        for (int64_t m2 : mvals) {
          // s (x) (m1 +_M m2) = s (x) m1 +_M s (x) m2.
          EXPECT_EQ(m.Tensor(s, s1, m.Plus(m1, m2)),
                    m.Plus(m.Tensor(s, s1, m1), m.Tensor(s, s1, m2)));
        }
      }
    }
  }
  // 1_S (x) m = m; s (x) 0_M = 0_M.
  for (int64_t m1 : mvals) EXPECT_EQ(m.Tensor(s, s.One(), m1), m1);
  for (int64_t s1 : svals) {
    EXPECT_EQ(m.Tensor(s, s1, m.Neutral()), m.Neutral());
  }
}

// B (x) N over SUM is excluded: as the paper notes (Section 2.2), that
// combination is not a semimodule -- (1 OR 1) (x) m = m but m +_SUM m = 2m,
// reflecting the incompatibility of SUM aggregation with set semantics.
INSTANTIATE_TEST_SUITE_P(
    ValidPairs, SemimoduleAxiomTest,
    ::testing::Values(std::make_tuple(SemiringKind::kBool, AggKind::kMin),
                      std::make_tuple(SemiringKind::kBool, AggKind::kMax),
                      std::make_tuple(SemiringKind::kNatural, AggKind::kSum),
                      std::make_tuple(SemiringKind::kNatural, AggKind::kMin),
                      std::make_tuple(SemiringKind::kNatural,
                                      AggKind::kMax)));

TEST(CmpTest, AllOperators) {
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, 3, 3));
  EXPECT_FALSE(EvalCmp(CmpOp::kEq, 3, 4));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, 3, 4));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, 3, 3));
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, 3, 4));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, 3, 3));
  EXPECT_TRUE(EvalCmp(CmpOp::kGe, 4, 4));
  EXPECT_TRUE(EvalCmp(CmpOp::kGt, 5, 4));
}

TEST(CmpTest, InfinityComparesCorrectly) {
  // [inf <= 50] is false: an empty MIN group has value +inf (Example 9).
  EXPECT_FALSE(EvalCmp(CmpOp::kLe, kPosInf, 50));
  EXPECT_TRUE(EvalCmp(CmpOp::kGt, kPosInf, 50));
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, kNegInf, -50));
}

TEST(NamesTest, Renderings) {
  EXPECT_EQ(AggKindName(AggKind::kSum), "SUM");
  EXPECT_EQ(AggKindName(AggKind::kMin), "MIN");
  EXPECT_EQ(CmpOpName(CmpOp::kLe), "<=");
  EXPECT_EQ(CmpOpName(CmpOp::kNe), "!=");
  EXPECT_EQ(MonoidValueToString(kPosInf), "inf");
  EXPECT_EQ(MonoidValueToString(kNegInf), "-inf");
  EXPECT_EQ(MonoidValueToString(42), "42");
}

}  // namespace
}  // namespace pvcdb
