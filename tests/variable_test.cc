#include "src/prob/variable.h"

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(VariableTableTest, AddAndLookup) {
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.4, "x");
  VarId y = vars.AddBernoulli(0.9);
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_NE(x, y);
  EXPECT_DOUBLE_EQ(vars.DistributionOf(x).ProbOf(1), 0.4);
  EXPECT_DOUBLE_EQ(vars.DistributionOf(y).ProbOf(1), 0.9);
}

TEST(VariableTableTest, NamesDefaultToIndexed) {
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5, "alpha");
  VarId y = vars.AddBernoulli(0.5);
  EXPECT_EQ(vars.NameOf(x), "alpha");
  EXPECT_EQ(vars.NameOf(y), "x" + std::to_string(y));
}

TEST(VariableTableTest, SupportsIntegerValuedVariables) {
  // Variables need not be Boolean (Figure 3's integer-annotated worlds).
  VariableTable vars;
  VarId x = vars.Add(
      Distribution::FromPairs({{0, 0.3}, {1, 0.3}, {2, 0.4}}), "n");
  EXPECT_EQ(vars.DistributionOf(x).size(), 3u);
  EXPECT_DOUBLE_EQ(vars.DistributionOf(x).ProbOf(2), 0.4);
}

TEST(VariableTableTest, RejectsUnnormalizedDistribution) {
  VariableTable vars;
  EXPECT_THROW(vars.Add(Distribution::FromPairs({{0, 0.4}, {1, 0.4}})),
               CheckError);
}

TEST(VariableTableTest, RejectsEmptyDistribution) {
  VariableTable vars;
  EXPECT_THROW(vars.Add(Distribution()), CheckError);
}

TEST(VariableTableTest, UnknownIdThrows) {
  VariableTable vars;
  EXPECT_THROW(vars.DistributionOf(3), CheckError);
  EXPECT_THROW(vars.NameOf(0), CheckError);
}

TEST(VariableTableTest, SetDistributionReplaces) {
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  vars.SetDistribution(x, Distribution::Bernoulli(0.25));
  EXPECT_DOUBLE_EQ(vars.DistributionOf(x).ProbOf(1), 0.25);
  EXPECT_THROW(vars.SetDistribution(
                   x, Distribution::FromPairs({{0, 0.5}, {1, 0.1}})),
               CheckError);
}

}  // namespace
}  // namespace pvcdb
