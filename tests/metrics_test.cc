// Units for the observability layer (src/util/metrics.h): registry
// find-or-create semantics, histogram bucketing, snapshot/rendering,
// command tracing with phase aggregation, the slow-query policy, the
// runtime kill switch, and the kStatsReply wire codec. The concurrency
// test runs under TSan via the `parallel` label: N threads hammer one
// counter and one histogram; totals must be exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "src/net/protocol.h"
#include "src/util/metrics.h"

namespace pvcdb {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.stable.counter");
  EXPECT_EQ(c, reg.GetCounter("test.stable.counter"));
  c->Reset();
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);

  Gauge* g = reg.GetGauge("test.stable.gauge");
  EXPECT_EQ(g, reg.GetGauge("test.stable.gauge"));
  g->Set(-7);
  g->Add(10);
  EXPECT_EQ(g->Value(), 3);

  // A histogram keeps its original buckets regardless of later requests.
  Histogram* h = reg.GetHistogram("test.stable.hist",
                                  std::vector<double>{1.0, 2.0});
  EXPECT_EQ(h, reg.GetHistogram("test.stable.hist"));
  EXPECT_EQ(h->bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.reset.counter");
  c->Increment(5);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  // The cached pointer survives (metrics are never deallocated).
  EXPECT_EQ(c, reg.GetCounter("test.reset.counter"));
}

TEST(HistogramTest, BucketsAreInclusiveUpperBoundsWithOverflow) {
  Histogram h(std::vector<double>{1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (inclusive)
  h.Observe(5.0);    // bucket 1
  h.Observe(100.0);  // bucket 2
  h.Observe(999.0);  // overflow
  Histogram::Snapshot s = h.Snap();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 5.0 + 100.0 + 999.0);

  h.Reset();
  s = h.Snap();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndTyped) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.snap.zzz")->Increment(3);
  reg.GetGauge("test.snap.aaa")->Set(-1);
  reg.GetHistogram("test.snap.mmm")->Observe(0.2);

  std::vector<MetricSnapshot> entries = reg.Snapshot();
  ASSERT_GE(entries.size(), 3u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].name, entries[i].name);
  }
  bool saw_counter = false;
  bool saw_gauge = false;
  bool saw_hist = false;
  for (const MetricSnapshot& e : entries) {
    if (e.name == "test.snap.zzz") {
      EXPECT_EQ(e.kind, MetricSnapshot::Kind::kCounter);
      EXPECT_EQ(e.counter_value, 3u);
      saw_counter = true;
    } else if (e.name == "test.snap.aaa") {
      EXPECT_EQ(e.kind, MetricSnapshot::Kind::kGauge);
      EXPECT_EQ(e.gauge_value, -1);
      saw_gauge = true;
    } else if (e.name == "test.snap.mmm") {
      EXPECT_EQ(e.kind, MetricSnapshot::Kind::kHistogram);
      EXPECT_EQ(e.observations, 1u);
      EXPECT_EQ(e.bucket_counts.size(), e.bounds.size() + 1);
      saw_hist = true;
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

TEST(MetricsRenderTest, TableAndJsonCarryEveryMetric) {
  std::vector<MetricSnapshot> entries;
  MetricSnapshot c;
  c.kind = MetricSnapshot::Kind::kCounter;
  c.name = "render.counter";
  c.counter_value = 7;
  entries.push_back(c);
  MetricSnapshot h;
  h.kind = MetricSnapshot::Kind::kHistogram;
  h.name = "render.hist";
  h.bounds = {1.0, 2.0};
  h.bucket_counts = {4, 0, 1};
  h.observations = 5;
  h.sum = 6.5;
  entries.push_back(h);

  std::string table = RenderMetricsTable(entries);
  EXPECT_NE(table.find("render.counter"), std::string::npos) << table;
  EXPECT_NE(table.find("| 7"), std::string::npos) << table;
  EXPECT_NE(table.find("render.hist"), std::string::npos) << table;
  EXPECT_NE(table.find("count=5"), std::string::npos) << table;

  std::string json = RenderMetricsJson(entries);
  EXPECT_NE(json.find("{\"metric\": \"render.counter\", \"type\": "
                      "\"counter\", \"value\": 7}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"metric\": \"render.hist\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\": 5"), std::string::npos) << json;
  // One line per metric, each a complete JSON object.
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 2);
}

TEST(MetricsKillSwitchTest, DisabledMacrosAreNoOps) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.kill.counter");
  c->Reset();
  SetMetricsEnabled(false);
  PVCDB_COUNTER_ADD("test.kill.counter", 1);
  SetMetricsEnabled(true);
  EXPECT_EQ(c->Value(), 0u);
  PVCDB_COUNTER_ADD("test.kill.counter", 1);
  EXPECT_EQ(c->Value(), 1u);
}

TEST(TraceTest, SpansAggregateByPhaseIntoTheActiveTrace) {
  TraceLog::Global().Clear();
  TraceLog::Global().set_slow_query_ms(-1.0);
  {
    CommandTraceScope scope("SELECT 1");
    ASSERT_NE(CommandTraceScope::Active(), nullptr);
    // Two spans of the same phase fold into one PhaseTiming entry, so
    // per-row spans cannot bloat a command's trace.
    { PVCDB_SPAN(span_a, "testphase"); }
    { PVCDB_SPAN(span_b, "testphase"); }
    { PVCDB_SPAN(span_c, "otherphase"); }
  }
  EXPECT_EQ(CommandTraceScope::Active(), nullptr);
  std::vector<CommandTrace> recent = TraceLog::Global().Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent.back().command, "SELECT 1");
  ASSERT_EQ(recent.back().phases.size(), 2u);
  EXPECT_STREQ(recent.back().phases[0].phase, "testphase");
  EXPECT_STREQ(recent.back().phases[1].phase, "otherphase");
  EXPECT_GE(recent.back().total_ms, 0.0);
}

TEST(TraceTest, SampledSpansObserveOneInRateAndScaleTheTrace) {
  TraceLog::Global().Clear();
  TraceLog::Global().set_slow_query_ms(-1.0);
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("phase.sampled_unit.ms");
  hist->Reset();
  {
    CommandTraceScope scope("sampled");
    // The per-thread tick starts at 0, so 16 passages at rate 4 time
    // exactly passages 0, 4, 8, 12.
    for (int i = 0; i < 16; ++i) {
      PVCDB_SPAN_SAMPLED(samp_span, "sampled_unit", 4);
    }
  }
  EXPECT_EQ(hist->Snap().count, 4u);
  std::vector<CommandTrace> recent = TraceLog::Global().Recent();
  ASSERT_EQ(recent.size(), 1u);
  // The sampled phase still appears (scaled) in the command's trace.
  ASSERT_EQ(recent.back().phases.size(), 1u);
  EXPECT_STREQ(recent.back().phases[0].phase, "sampled_unit");
  EXPECT_GE(recent.back().phases[0].ms, 0.0);
}

TEST(TraceTest, SlowQueryThresholdBumpsTheCounter) {
  TraceLog::Global().Clear();
  Counter* slow = MetricsRegistry::Global().GetCounter("server.slow_queries");
  slow->Reset();
  TraceLog::Global().set_slow_query_ms(0.0);  // Everything is slow.
  {
    CommandTraceScope scope("view pricey");
  }
  TraceLog::Global().set_slow_query_ms(-1.0);
  EXPECT_EQ(slow->Value(), 1u);
  {
    CommandTraceScope scope("view pricey");  // Disabled again: no bump.
  }
  EXPECT_EQ(slow->Value(), 1u);
}

TEST(StatsReplyMsgTest, CodecRoundTripsEveryKind) {
  StatsReplyMsg msg;
  MetricSnapshot c;
  c.kind = MetricSnapshot::Kind::kCounter;
  c.name = "wire.counter";
  c.counter_value = 123456789;
  msg.entries.push_back(c);
  MetricSnapshot g;
  g.kind = MetricSnapshot::Kind::kGauge;
  g.name = "wire.gauge";
  g.gauge_value = -42;
  msg.entries.push_back(g);
  MetricSnapshot h;
  h.kind = MetricSnapshot::Kind::kHistogram;
  h.name = "wire.hist";
  h.bounds = {0.5, 5.0};
  h.bucket_counts = {1, 2, 3};
  h.observations = 6;
  h.sum = 12.25;
  msg.entries.push_back(h);

  StatsReplyMsg decoded;
  ASSERT_TRUE(StatsReplyMsg::Decode(msg.Encode(), &decoded));
  ASSERT_EQ(decoded.entries.size(), 3u);
  EXPECT_EQ(decoded.entries[0].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_EQ(decoded.entries[0].name, "wire.counter");
  EXPECT_EQ(decoded.entries[0].counter_value, 123456789u);
  EXPECT_EQ(decoded.entries[1].gauge_value, -42);
  EXPECT_EQ(decoded.entries[2].bounds, h.bounds);
  EXPECT_EQ(decoded.entries[2].bucket_counts, h.bucket_counts);
  EXPECT_EQ(decoded.entries[2].observations, 6u);
  EXPECT_DOUBLE_EQ(decoded.entries[2].sum, 12.25);

  // Truncated payloads and bad kinds are rejected, never misparsed.
  std::string wire = msg.Encode();
  EXPECT_FALSE(StatsReplyMsg::Decode(wire.substr(0, wire.size() - 3),
                                     &decoded));
  std::string bad = wire;
  bad[4] = 7;  // First entry's kind byte (after the u32 count).
  EXPECT_FALSE(StatsReplyMsg::Decode(bad, &decoded));
}

TEST(MetricsConcurrencyTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.concurrent.counter");
  Histogram* h = reg.GetHistogram("test.concurrent.hist",
                                  std::vector<double>{10.0, 100.0});
  c->Reset();
  h->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(static_cast<double>(t));
        PVCDB_COUNTER_ADD("test.concurrent.macro", 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  Histogram::Snapshot s = h->Snap();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.counts[0], static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.GetCounter("test.concurrent.macro")->Value() % kPerThread,
            0u);
}

}  // namespace
}  // namespace pvcdb
