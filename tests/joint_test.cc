#include "src/dtree/joint.h"

#include <gtest/gtest.h>

#include "src/naive/possible_worlds.h"
#include "src/util/rng.h"

namespace pvcdb {
namespace {

TEST(JointTest, IndependentExpressionsFactorise) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.3);
  VarId y = vars.AddBernoulli(0.6);
  JointDistribution joint = ComputeJointDistribution(
      &pool, vars, {pool.Var(x), pool.Var(y)});
  EXPECT_NEAR((joint[{1, 1}]), 0.18, 1e-12);
  EXPECT_NEAR((joint[{0, 0}]), 0.28, 1e-12);
}

TEST(JointTest, PaperExampleSharedVariableDecomposition) {
  // Section 5 "Compiling Joint Probability Distributions": integer
  // variables a, b, c with non-zero probabilities for 1, 2 only; the joint
  // expression <a+b, a*c>; P[<3,2>] = Pa[2]Pb[1]Pc[1] + Pa[1]Pb[2]Pc[2].
  ExprPool pool(SemiringKind::kNatural);
  VariableTable vars;
  VarId a = vars.Add(Distribution::FromPairs({{1, 0.4}, {2, 0.6}}), "a");
  VarId b = vars.Add(Distribution::FromPairs({{1, 0.7}, {2, 0.3}}), "b");
  VarId c = vars.Add(Distribution::FromPairs({{1, 0.2}, {2, 0.8}}), "c");
  JointDistribution joint = ComputeJointDistribution(
      &pool, vars,
      {pool.AddS(pool.Var(a), pool.Var(b)),
       pool.MulS(pool.Var(a), pool.Var(c))});
  double expected = 0.6 * 0.7 * 0.2 + 0.4 * 0.3 * 0.8;
  EXPECT_NEAR((joint[{3, 2}]), expected, 1e-12);
}

TEST(JointTest, MatchesEnumerationOnRandomTriples) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    ExprPool pool(SemiringKind::kBool);
    VariableTable vars;
    std::vector<VarId> ids;
    for (int i = 0; i < 5; ++i) {
      ids.push_back(vars.AddBernoulli(rng.UniformDouble(0.2, 0.8)));
    }
    auto rand_expr = [&]() {
      std::vector<ExprId> lits;
      std::vector<int> picks = rng.SampleDistinct(5, 2);
      for (int p : picks) lits.push_back(pool.Var(ids[p]));
      return rng.Bernoulli(0.5) ? pool.MulS(lits) : pool.AddS(lits);
    };
    std::vector<ExprId> exprs = {rand_expr(), rand_expr(), rand_expr()};
    JointDistribution fast = ComputeJointDistribution(&pool, vars, exprs);
    JointDistribution slow = EnumerateJointDistribution(pool, vars, exprs);
    for (const auto& [tuple, p] : slow) {
      EXPECT_NEAR(fast[tuple], p, 1e-9);
    }
    double mass = 0;
    for (const auto& [tuple, p] : fast) mass += p;
    EXPECT_NEAR(mass, 1.0, 1e-9);
  }
}

TEST(JointTest, ConditionalAggregateDistribution) {
  // Group {x (x) 10 +MIN y (x) 20} with annotation [x + y != 0]:
  // conditioned on presence, MIN = 10 iff x, else 20.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  VarId y = vars.AddBernoulli(0.5);
  ExprId alpha = pool.AddM(
      AggKind::kMin,
      pool.Tensor(pool.Var(x), pool.ConstM(AggKind::kMin, 10)),
      pool.Tensor(pool.Var(y), pool.ConstM(AggKind::kMin, 20)));
  ExprId ann = pool.Cmp(CmpOp::kNe, pool.AddS(pool.Var(x), pool.Var(y)),
                        pool.ConstS(0));
  Distribution d =
      ConditionalAggregateDistribution(&pool, vars, alpha, ann);
  // P[present] = 3/4. P[min=10 | present] = (1/2)/(3/4) = 2/3;
  // P[min=20 | present] = (1/4)/(3/4) = 1/3. No mass on +inf.
  EXPECT_NEAR(d.ProbOf(10), 2.0 / 3, 1e-12);
  EXPECT_NEAR(d.ProbOf(20), 1.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(d.ProbOf(kPosInf), 0.0);
  EXPECT_TRUE(d.IsNormalized(1e-9));
}

TEST(JointTest, ConditionalOnImpossibleAnnotationIsEmpty) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  ExprId alpha = pool.Tensor(pool.Var(x), pool.ConstM(AggKind::kMin, 10));
  ExprId never = pool.ConstS(0);
  Distribution d =
      ConditionalAggregateDistribution(&pool, vars, alpha, never);
  EXPECT_TRUE(d.empty());
}

TEST(JointTest, SingleExpressionJointIsMarginal) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.25);
  JointDistribution joint =
      ComputeJointDistribution(&pool, vars, {pool.Var(x)});
  EXPECT_NEAR((joint[{1}]), 0.25, 1e-12);
  EXPECT_NEAR((joint[{0}]), 0.75, 1e-12);
}

}  // namespace
}  // namespace pvcdb
