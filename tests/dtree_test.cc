#include "src/dtree/dtree.h"

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(DTreeTest, AddAndAccessNodes) {
  DTree tree;
  DTreeNodeSpec leaf;
  leaf.kind = DTreeNodeKind::kLeafVar;
  leaf.var = 3;
  DTree::NodeId a = tree.AddNode(leaf);
  DTreeNodeSpec konst;
  konst.kind = DTreeNodeKind::kLeafConst;
  konst.value = 10;
  konst.sort = ExprSort::kMonoid;
  konst.agg = AggKind::kMin;
  DTree::NodeId b = tree.AddNode(konst);
  DTreeNodeSpec tensor;
  tensor.kind = DTreeNodeKind::kOtimes;
  tensor.sort = ExprSort::kMonoid;
  tensor.agg = AggKind::kMin;
  tensor.children = {a, b};
  DTree::NodeId root = tree.AddNode(tensor);
  tree.set_root(root);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.node(root).children.size(), 2u);
  EXPECT_EQ(tree.node(a).var, 3u);
}

TEST(DTreeTest, ChildrenMustExist) {
  DTree tree;
  DTreeNodeSpec bad;
  bad.kind = DTreeNodeKind::kOplus;
  bad.children = {5};
  EXPECT_THROW(tree.AddNode(bad), CheckError);
}

TEST(DTreeTest, MutexCountCountsShannonNodes) {
  DTree tree;
  DTreeNodeSpec leaf;
  leaf.kind = DTreeNodeKind::kLeafConst;
  DTree::NodeId a = tree.AddNode(leaf);
  DTree::NodeId b = tree.AddNode(leaf);
  DTreeNodeSpec mutex;
  mutex.kind = DTreeNodeKind::kMutex;
  mutex.var = 0;
  mutex.children = {a, b};
  mutex.branch_values = {0, 1};
  tree.set_root(tree.AddNode(mutex));
  EXPECT_EQ(tree.MutexCount(), 1u);
}

TEST(DTreeTest, ToStringRendersStructure) {
  DTree tree;
  DTreeNodeSpec leaf;
  leaf.kind = DTreeNodeKind::kLeafVar;
  leaf.var = 1;
  DTree::NodeId a = tree.AddNode(leaf);
  leaf.var = 2;
  DTree::NodeId b = tree.AddNode(leaf);
  DTreeNodeSpec sum;
  sum.kind = DTreeNodeKind::kOplus;
  sum.children = {a, b};
  tree.set_root(tree.AddNode(sum));
  std::string rendered = tree.ToString();
  EXPECT_NE(rendered.find("(+)"), std::string::npos);
  EXPECT_NE(rendered.find("var x1"), std::string::npos);
  EXPECT_NE(rendered.find("var x2"), std::string::npos);
}

TEST(DTreeTest, InvalidNodeAccessThrows) {
  DTree tree;
  EXPECT_THROW(tree.node(0), CheckError);
}

}  // namespace
}  // namespace pvcdb
