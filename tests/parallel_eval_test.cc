// Tests for the parallel evaluation subsystem: the ThreadPool/ParallelFor
// primitives, and the guarantee that every parallel path (batch d-tree
// compilation, the parallel probability pass, approximation batches, and
// threaded query evaluation) produces results *bit-identical* to the
// serial path for num_threads in {2, 4, 8}.

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/dtree/approximate.h"
#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/engine/database.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "src/workload/random_expr.h"
#include "tests/figure1_db.h"

namespace pvcdb {
namespace {

using testing_fixtures::BuildFigure1Database;
using testing_fixtures::BuildFigure1Q1;
using testing_fixtures::BuildFigure1Q2;

// Exact (bitwise) equality of two distributions: same support, and every
// probability compares equal as a double -- not just approximately.
void ExpectBitIdentical(const Distribution& a, const Distribution& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].first, b.entries()[i].first);
    EXPECT_EQ(a.entries()[i].second, b.entries()[i].second);
  }
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // The destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {0, 1, 2, 4, 8}) {
    std::vector<int> visits(1000, 0);
    ParallelFor(threads, visits.size(), [&](size_t i) { visits[i]++; });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1000)
        << "threads=" << threads;
    for (int v : visits) EXPECT_EQ(v, 1);
  }
}

TEST(ParallelForTest, PropagatesExceptions) {
  EXPECT_THROW(ParallelFor(4, 100,
                           [](size_t i) {
                             if (i == 37) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, NestedCallsRunSerially) {
  std::vector<int> outer(16, 0);
  ParallelFor(4, outer.size(), [&](size_t i) {
    // Nested loops must not re-enter the shared pool; each runs inline on
    // the worker, so plain writes to `inner` need no synchronisation.
    std::vector<int> inner(50, 0);
    ParallelFor(4, inner.size(), [&](size_t j) { inner[j]++; });
    outer[i] = std::accumulate(inner.begin(), inner.end(), 0);
  });
  for (int v : outer) EXPECT_EQ(v, 50);
}

TEST(ParallelForTest, ResolveThreadCountConvention) {
  EXPECT_EQ(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
  EXPECT_EQ(ResolveThreadCount(-1), DefaultThreadCount());
}

TEST(CloneIntoTest, PreservesTheDistribution) {
  Database db;
  BuildFigure1Database(&db, 0.5);
  PvcTable result = db.Run(*BuildFigure1Q2());
  ASSERT_GT(result.NumRows(), 0u);

  for (const Row& row : result.rows()) {
    ExprPool copy(db.pool().semiring().kind());
    ExprId cloned = db.pool().CloneInto(&copy, row.annotation);
    DTree original = CompileToDTree(&db.pool(), &db.variables(),
                                    row.annotation, db.compile_options());
    DTree clone_tree = CompileToDTree(&copy, &db.variables(), cloned,
                                      db.compile_options());
    Distribution a =
        ComputeDistribution(original, db.variables(), db.semiring());
    Distribution b =
        ComputeDistribution(clone_tree, db.variables(), db.semiring());
    // Clone ids differ, so child orderings (and hence float reduction
    // orders) may differ: semantically equal, not necessarily bitwise.
    EXPECT_TRUE(a.ApproxEquals(b, 1e-12))
        << a.ToString() << " vs " << b.ToString();
  }
}

// Serial vs. threaded CompileBatch + probability pass on the paper's
// running example (Figure 1, Q1 and Q2 annotations).
TEST(ParallelEvalTest, CompileBatchMatchesSerialOnFigure1) {
  Database db;
  BuildFigure1Database(&db, 0.3);
  PvcTable q1 = db.Run(*BuildFigure1Q1());
  PvcTable q2 = db.Run(*BuildFigure1Q2());

  std::vector<ExprId> annotations;
  for (const Row& r : q1.rows()) annotations.push_back(r.annotation);
  for (const Row& r : q2.rows()) annotations.push_back(r.annotation);
  ASSERT_GE(annotations.size(), 2u);

  std::vector<DTree> serial = CompileBatch(db.pool(), &db.variables(),
                                           annotations, db.compile_options(),
                                           /*num_threads=*/0);
  std::vector<Distribution> expected;
  for (const DTree& t : serial) {
    expected.push_back(ComputeDistribution(t, db.variables(), db.semiring()));
  }

  for (int threads : {2, 4, 8}) {
    std::vector<DTree> parallel =
        CompileBatch(db.pool(), &db.variables(), annotations,
                     db.compile_options(), threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < parallel.size(); ++i) {
      EXPECT_EQ(parallel[i].size(), serial[i].size());
      Distribution d =
          ComputeDistribution(parallel[i], db.variables(), db.semiring());
      ExpectBitIdentical(d, expected[i]);
    }
  }
}

// The parallel probability pass on a single large d-tree (the frontier
// priming) must agree bitwise with the serial bottom-up pass.
TEST(ParallelEvalTest, ParallelProbabilityPassMatchesSerial) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  params.num_vars = 12;
  params.terms_left = 24;
  params.clauses_per_term = 3;
  params.literals_per_clause = 3;
  params.max_value = 50;
  params.constant = 8;
  params.theta = CmpOp::kGe;
  params.agg_left = AggKind::kCount;
  GeneratedExpr gen = GenerateComparisonExpr(&pool, &vars, params, 2024);
  DTree tree = CompileToDTree(&pool, &vars, gen.comparison);

  ProbabilityOptions serial_options;
  Distribution expected =
      ComputeDistribution(tree, vars, pool.semiring(), serial_options);
  for (int threads : {2, 4, 8}) {
    ProbabilityOptions options;
    options.num_threads = threads;
    Distribution d = ComputeDistribution(tree, vars, pool.semiring(), options);
    ExpectBitIdentical(d, expected);
  }
}

TEST(ParallelEvalTest, ApproximateBatchMatchesSerial) {
  Database db;
  BuildFigure1Database(&db, 0.4);
  PvcTable q1 = db.Run(*BuildFigure1Q1());
  std::vector<ExprId> annotations;
  for (const Row& r : q1.rows()) annotations.push_back(r.annotation);
  ASSERT_GE(annotations.size(), 2u);

  ApproximateOptions options;
  options.node_budget = 64;
  std::vector<ProbabilityBounds> serial =
      ApproximateBatch(db.pool(), db.variables(), annotations, options, 0);
  for (int threads : {2, 4, 8}) {
    std::vector<ProbabilityBounds> parallel = ApproximateBatch(
        db.pool(), db.variables(), annotations, options, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].low, serial[i].low);
      EXPECT_EQ(parallel[i].high, serial[i].high);
    }
  }
}

// Threaded step-I evaluation (parallel data-atom filtering and hash-join
// probing) must produce the same result table -- cells, row order, and
// bit-identical probabilities -- as a serial database. Separate Database
// instances evaluate the same query deterministically, so the comparison
// is exact.
TEST(ParallelEvalTest, ThreadedQueryEvaluationMatchesSerial) {
  Database serial_db;
  BuildFigure1Database(&serial_db, 0.35);
  PvcTable expected = serial_db.Run(*BuildFigure1Q2());
  std::vector<double> expected_probs =
      serial_db.TupleProbabilities(expected);

  for (int threads : {2, 4, 8}) {
    Database db;
    BuildFigure1Database(&db, 0.35);
    db.eval_options().num_threads = threads;
    PvcTable result = db.Run(*BuildFigure1Q2());
    ASSERT_EQ(result.NumRows(), expected.NumRows());
    for (size_t i = 0; i < result.NumRows(); ++i) {
      EXPECT_EQ(result.row(i).cells, expected.row(i).cells);
    }
    std::vector<double> probs = db.TupleProbabilities(result);
    ASSERT_EQ(probs.size(), expected_probs.size());
    for (size_t i = 0; i < probs.size(); ++i) {
      EXPECT_EQ(probs[i], expected_probs[i]) << "row " << i;
    }
  }
}

// Many-tuple stress: enough rows that the ParallelFor fan-out actually
// contends on the queue and the shared probability memo, with a grouped
// aggregate so each annotation compiles a non-trivial d-tree.
TEST(ParallelEvalTest, ManyTupleStressMatchesSerial) {
  constexpr int kGroups = 40;
  constexpr int kRowsPerGroup = 25;

  auto build = [&](Database* db) {
    Rng rng(7);
    Schema schema({{"g", CellType::kInt}, {"v", CellType::kInt}});
    std::vector<std::vector<Cell>> rows;
    std::vector<double> probs;
    for (int g = 0; g < kGroups; ++g) {
      for (int r = 0; r < kRowsPerGroup; ++r) {
        rows.push_back({Cell(static_cast<int64_t>(g)),
                        Cell(rng.UniformInt(0, 20))});
        probs.push_back(rng.UniformDouble(0.05, 0.95));
      }
    }
    db->AddTupleIndependentTable("T", schema, std::move(rows),
                                 std::move(probs));
  };

  QueryPtr query = Query::GroupAgg(Query::Scan("T"), {"g"},
                                   {{AggKind::kCount, "", "n"}});

  Database serial_db;
  build(&serial_db);
  PvcTable expected = serial_db.Run(*query);
  ASSERT_EQ(expected.NumRows(), static_cast<size_t>(kGroups));
  std::vector<double> expected_probs =
      serial_db.TupleProbabilities(expected);
  std::vector<Distribution> expected_dists =
      serial_db.AnnotationDistributions(expected);

  for (int threads : {2, 4, 8}) {
    Database db;
    build(&db);
    db.eval_options().num_threads = threads;
    PvcTable result = db.Run(*query);
    ASSERT_EQ(result.NumRows(), expected.NumRows());
    std::vector<double> probs = db.TupleProbabilities(result);
    std::vector<Distribution> dists = db.AnnotationDistributions(result);
    for (size_t i = 0; i < probs.size(); ++i) {
      EXPECT_EQ(probs[i], expected_probs[i]) << "row " << i;
      ExpectBitIdentical(dists[i], expected_dists[i]);
    }
  }
}

// The batch API must agree with the long-standing single-row API up to
// floating-point tolerance (the batch path compiles in private pools whose
// ids -- and hence reduction orders -- may differ from the shared pool's).
TEST(ParallelEvalTest, BatchAgreesWithSingleRowApi) {
  Database db;
  BuildFigure1Database(&db, 0.5);
  PvcTable result = db.Run(*BuildFigure1Q2());
  std::vector<double> batch = db.TupleProbabilities(result);
  ASSERT_EQ(batch.size(), result.NumRows());
  for (size_t i = 0; i < result.NumRows(); ++i) {
    EXPECT_NEAR(batch[i], db.TupleProbability(result.row(i)), 1e-12);
  }
}

}  // namespace
}  // namespace pvcdb
