// PROD aggregation: the fifth monoid of the query language (Section 2.3),
// plus the remaining worked examples of the paper not covered elsewhere
// (Examples 3, 7, 10).

#include <gtest/gtest.h>

#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/engine/database.h"
#include "src/naive/possible_worlds.h"
#include "src/query/parser.h"

namespace pvcdb {
namespace {

class ProdAggTest : public ::testing::Test {
 protected:
  ProdAggTest() {
    db_.AddTupleIndependentTable(
        "factors", Schema({{"g", CellType::kInt}, {"v", CellType::kInt}}),
        {{Cell(int64_t{1}), Cell(int64_t{2})},
         {Cell(int64_t{1}), Cell(int64_t{3})},
         {Cell(int64_t{1}), Cell(int64_t{5})}},
        {0.5, 0.5, 0.5});
  }

  Database db_;
};

TEST_F(ProdAggTest, ProductDistribution) {
  QueryPtr q = Query::GroupAgg(Query::Scan("factors"), {},
                               {{AggKind::kProd, "v", "p"}});
  PvcTable result = db_.Run(*q);
  Distribution d = db_.AggregateDistribution(result, 0, "p");
  // Subsets of {2, 3, 5}: products 1, 2, 3, 5, 6, 10, 15, 30 each 1/8.
  for (int64_t v : {1, 2, 3, 5, 6, 10, 15, 30}) {
    EXPECT_NEAR(d.ProbOf(v), 0.125, 1e-12) << "product " << v;
  }
  EXPECT_EQ(d.size(), 8u);
}

TEST_F(ProdAggTest, MatchesEnumeration) {
  QueryPtr q = Query::GroupAgg(Query::Scan("factors"), {"g"},
                               {{AggKind::kProd, "v", "p"}});
  PvcTable result = db_.Run(*q);
  ExprId p = result.CellAt(0, "p").AsAgg();
  Distribution compiled = db_.AggregateDistribution(result, 0, "p");
  Distribution expected =
      EnumerateDistribution(db_.pool(), db_.variables(), p);
  EXPECT_TRUE(compiled.ApproxEquals(expected, 1e-9));
}

TEST_F(ProdAggTest, ComparisonOnProduct) {
  QueryPtr q = Query::Select(
      Query::GroupAgg(Query::Scan("factors"), {},
                      {{AggKind::kProd, "v", "p"}}),
      Predicate::ColCmpInt("p", CmpOp::kGe, 6));
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 1u);
  // Products >= 6: {2,3}, {2,5} (10), {3,5} (15), {2,3,5} (30): 4/8.
  EXPECT_NEAR(db_.TupleProbability(result.row(0)), 0.5, 1e-12);
}

TEST_F(ProdAggTest, ProdViaSqlParser) {
  ParseResult r =
      ParseQuery("SELECT PROD(v) AS p FROM factors");
  ASSERT_TRUE(r.ok()) << r.error;
  PvcTable result = db_.Run(*r.query);
  EXPECT_EQ(result.NumRows(), 1u);
}

TEST(PaperExample3Test, TpchQ2StructureInQ) {
  // Example 3: "SELECT A FROM R WHERE B = (SELECT MIN(C) FROM S)" is
  // pi_A sigma_{B=gamma}(R x $_{0; gamma<-MIN(C)}(S)).
  Database db;
  db.AddTupleIndependentTable(
      "R", Schema({{"A", CellType::kString}, {"B", CellType::kInt}}),
      {{Cell("a1"), Cell(int64_t{4})}, {Cell("a2"), Cell(int64_t{9})}},
      {0.5, 0.5});
  db.AddTupleIndependentTable("S", Schema({{"C", CellType::kInt}}),
                              {{Cell(int64_t{4})}, {Cell(int64_t{7})}},
                              {0.5, 0.5});
  QueryPtr inner = Query::GroupAgg(Query::Scan("S"), {},
                                   {{AggKind::kMin, "C", "gamma"}});
  QueryPtr q = Query::Project(
      Query::Select(Query::Product(Query::Scan("R"), inner),
                    Predicate::ColCmpCol("B", CmpOp::kEq, "gamma")),
      {"A"});
  PvcTable result = db.Run(*q);
  ASSERT_EQ(result.NumRows(), 2u);
  // a1 (B=4) answers iff r1 present and min(C)=4, i.e. the C=4 tuple
  // present: P = 0.5 * 0.5 = 0.25.
  EXPECT_NEAR(db.TupleProbability(result.row(0)), 0.25, 1e-12);
  // a2 (B=9) can never match (min is 4, 7, or +inf): P = 0.
  EXPECT_NEAR(db.TupleProbability(result.row(1)), 0.0, 1e-12);
}

TEST(PaperExample10Test, SyntacticIndependence) {
  // Example 10: Phi = x + y and alpha = a(b+c) (x) 10 + c (x) 20 are
  // independent (disjoint variables); their joint factorises.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5, "x");
  VarId y = vars.AddBernoulli(0.5, "y");
  VarId a = vars.AddBernoulli(0.5, "a");
  VarId b = vars.AddBernoulli(0.5, "b");
  VarId c = vars.AddBernoulli(0.5, "c");
  ExprId phi = pool.AddS(pool.Var(x), pool.Var(y));
  ExprId alpha = pool.AddM(
      AggKind::kSum,
      pool.Tensor(pool.MulS(pool.Var(a), pool.AddS(pool.Var(b), pool.Var(c))),
                  pool.ConstM(AggKind::kSum, 10)),
      pool.Tensor(pool.Var(c), pool.ConstM(AggKind::kSum, 20)));
  Span<VarId> pv = pool.VarsOf(phi);
  Span<VarId> av = pool.VarsOf(alpha);
  std::vector<VarId> overlap;
  std::set_intersection(pv.begin(), pv.end(), av.begin(), av.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
  // Joint = product of marginals.
  JointDistribution joint =
      ComputeJointDistribution(&pool, vars, {phi, alpha});
  DTree t1 = CompileToDTree(&pool, &vars, phi);
  DTree t2 = CompileToDTree(&pool, &vars, alpha);
  Distribution d1 = ComputeDistribution(t1, vars, pool.semiring());
  Distribution d2 = ComputeDistribution(t2, vars, pool.semiring());
  for (const auto& [v1, p1] : d1.entries()) {
    for (const auto& [v2, p2] : d2.entries()) {
      EXPECT_NEAR((joint[{v1, v2}]), p1 * p2, 1e-9);
    }
  }
}

TEST(PaperExample7Test, ConditionalExpressionsAsAnnotations) {
  // Example 7: annotations may mix comparisons of semimodule expressions
  // against monoid constants and semiring expressions against 0_K --
  // verify both evaluate per Eq. (2).
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  ExprId semimodule_cond = pool.Cmp(
      CmpOp::kLe, pool.Tensor(pool.Var(x), pool.ConstM(AggKind::kMax, 10)),
      pool.ConstM(AggKind::kMax, 50));
  ExprId semiring_cond =
      pool.Cmp(CmpOp::kNe, pool.Var(x), pool.ConstS(0));
  ExprId annotation = pool.MulS(semimodule_cond, semiring_cond);
  Distribution d = EnumerateDistribution(pool, vars, annotation);
  // x present: [10 <= 50] * [1 != 0] = 1. x absent: [-inf <= 50] * 0 = 0.
  EXPECT_NEAR(d.ProbOf(1), 0.5, 1e-12);
  DTree t = CompileToDTree(&pool, &vars, annotation);
  EXPECT_NEAR(ProbabilityNonZero(t, vars, pool.semiring()), 0.5, 1e-12);
}

}  // namespace
}  // namespace pvcdb
