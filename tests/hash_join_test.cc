// The hash-join fast path must be semantically indistinguishable from the
// naive Select-over-Product pipeline: same tuples, same annotations.

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/util/rng.h"

namespace pvcdb {
namespace {

// Runs Select(Product(l, r), pred) through both pipelines: the fast path
// (triggered by the Select-over-Product shape) and a forced naive path
// (materialise the product first, then select over the materialised
// intermediate registered as a temporary table).
class HashJoinTest : public ::testing::Test {
 protected:
  void FillTables(uint64_t seed, int left_rows, int right_rows,
                  int key_range) {
    Rng rng(seed);
    std::vector<std::vector<Cell>> l;
    std::vector<double> lp;
    for (int i = 0; i < left_rows; ++i) {
      l.push_back({Cell(rng.UniformInt(0, key_range)),
                   Cell(rng.UniformInt(0, 50))});
      lp.push_back(rng.UniformDouble(0.1, 0.9));
    }
    db_.AddTupleIndependentTable(
        "L", Schema({{"lk", CellType::kInt}, {"lv", CellType::kInt}}),
        std::move(l), std::move(lp));
    std::vector<std::vector<Cell>> r;
    std::vector<double> rp;
    for (int i = 0; i < right_rows; ++i) {
      r.push_back({Cell(rng.UniformInt(0, key_range)),
                   Cell(rng.UniformInt(0, 50))});
      rp.push_back(rng.UniformDouble(0.1, 0.9));
    }
    db_.AddTupleIndependentTable(
        "R", Schema({{"rk", CellType::kInt}, {"rv", CellType::kInt}}),
        std::move(r), std::move(rp));
  }

  // Reference result: product materialised first, selection applied on a
  // scan of the materialised product (no fast path possible).
  PvcTable Reference(const Predicate& pred) {
    PvcTable product = db_.Run(*Query::Product(Query::Scan("L"),
                                               Query::Scan("R")));
    db_.AddTable("LxR", std::move(product));
    return db_.Run(*Query::Select(Query::Scan("LxR"), pred));
  }

  static void ExpectSameRows(const PvcTable& a, const PvcTable& b) {
    ASSERT_EQ(a.NumRows(), b.NumRows());
    // Order may differ between pipelines; compare as multisets of
    // (cells, annotation id) -- annotations are hash-consed, so equal
    // expressions share ids.
    auto fingerprint = [](const PvcTable& t) {
      std::vector<std::pair<std::vector<std::string>, ExprId>> rows;
      for (const Row& r : t.rows()) {
        std::vector<std::string> cells;
        for (const Cell& c : r.cells) cells.push_back(c.ToString());
        rows.push_back({cells, r.annotation});
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    EXPECT_EQ(fingerprint(a), fingerprint(b));
  }

  Database db_;
};

TEST_F(HashJoinTest, EquiJoinMatchesNaive) {
  FillTables(1, 30, 40, 10);
  Predicate pred = Predicate::ColEqCol("lk", "rk");
  PvcTable fast = db_.Run(
      *Query::Select(Query::Product(Query::Scan("L"), Query::Scan("R")),
                     pred));
  ExpectSameRows(fast, Reference(pred));
}

TEST_F(HashJoinTest, EquiJoinWithResidualAtoms) {
  FillTables(2, 25, 25, 6);
  Predicate pred = Predicate::ColEqCol("lk", "rk");
  pred.And({CmpOp::kLt, Operand::Col("lv"), Operand::Col("rv")});
  PvcTable fast = db_.Run(
      *Query::Select(Query::Product(Query::Scan("L"), Query::Scan("R")),
                     pred));
  ExpectSameRows(fast, Reference(pred));
}

TEST_F(HashJoinTest, ReversedOperandOrder) {
  FillTables(3, 20, 20, 5);
  Predicate pred = Predicate::ColEqCol("rk", "lk");  // right = left.
  PvcTable fast = db_.Run(
      *Query::Select(Query::Product(Query::Scan("L"), Query::Scan("R")),
                     pred));
  ExpectSameRows(fast, Reference(pred));
}

TEST_F(HashJoinTest, PureThetaJoinFallsBackCorrectly) {
  FillTables(4, 15, 15, 5);
  Predicate pred = Predicate::ColCmpCol("lv", CmpOp::kLe, "rv");
  PvcTable fast = db_.Run(
      *Query::Select(Query::Product(Query::Scan("L"), Query::Scan("R")),
                     pred));
  ExpectSameRows(fast, Reference(pred));
}

TEST_F(HashJoinTest, MultiKeyJoin) {
  FillTables(5, 30, 30, 4);
  Predicate pred = Predicate::ColEqCol("lk", "rk");
  pred.And({CmpOp::kEq, Operand::Col("lv"), Operand::Col("rv")});
  PvcTable fast = db_.Run(
      *Query::Select(Query::Product(Query::Scan("L"), Query::Scan("R")),
                     pred));
  ExpectSameRows(fast, Reference(pred));
}

TEST_F(HashJoinTest, ConstantAtomsStayInResidual) {
  FillTables(6, 20, 20, 5);
  Predicate pred = Predicate::ColEqCol("lk", "rk");
  pred.And({CmpOp::kEq, Operand::Col("lv"), Operand::Int(7)});
  PvcTable fast = db_.Run(
      *Query::Select(Query::Product(Query::Scan("L"), Query::Scan("R")),
                     pred));
  ExpectSameRows(fast, Reference(pred));
}

TEST_F(HashJoinTest, EmptyPredicateIsCrossProduct) {
  FillTables(7, 5, 7, 3);
  PvcTable fast = db_.Run(*Query::Select(
      Query::Product(Query::Scan("L"), Query::Scan("R")), Predicate()));
  EXPECT_EQ(fast.NumRows(), 35u);
}

TEST_F(HashJoinTest, NoMatchesYieldsEmpty) {
  // Disjoint key ranges.
  db_.AddTupleIndependentTable("L", Schema({{"lk", CellType::kInt}}),
                               {{Cell(int64_t{1})}}, {0.5});
  db_.AddTupleIndependentTable("R", Schema({{"rk", CellType::kInt}}),
                               {{Cell(int64_t{2})}}, {0.5});
  PvcTable fast = db_.Run(
      *Query::Select(Query::Product(Query::Scan("L"), Query::Scan("R")),
                     Predicate::ColEqCol("lk", "rk")));
  EXPECT_EQ(fast.NumRows(), 0u);
}

}  // namespace
}  // namespace pvcdb
