#include "src/engine/sensitivity.h"

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/naive/possible_worlds.h"
#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(SensitivityTest, SingleVariableInfluenceIsOne) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.4);
  std::vector<VariableInfluence> inf =
      SensitivityAnalysis(&pool, vars, pool.Var(x));
  ASSERT_EQ(inf.size(), 1u);
  EXPECT_EQ(inf[0].variable, x);
  EXPECT_DOUBLE_EQ(inf[0].influence, 1.0);
}

TEST(SensitivityTest, ConjunctionInfluenceIsPartnerProbability) {
  // P[x*y] = p q: dP/dp = q.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.4);
  VarId y = vars.AddBernoulli(0.7);
  std::vector<VariableInfluence> inf =
      SensitivityAnalysis(&pool, vars, pool.MulS(pool.Var(x), pool.Var(y)));
  ASSERT_EQ(inf.size(), 2u);
  // Sorted by decreasing influence: y's influence is P[x] = 0.4? No --
  // influence of x is P[y] = 0.7, influence of y is P[x] = 0.4.
  EXPECT_EQ(inf[0].variable, x);
  EXPECT_DOUBLE_EQ(inf[0].influence, 0.7);
  EXPECT_EQ(inf[1].variable, y);
  EXPECT_DOUBLE_EQ(inf[1].influence, 0.4);
}

TEST(SensitivityTest, DisjunctionInfluence) {
  // P[x + y] = 1 - (1-p)(1-q): dP/dp = 1 - q.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.4);
  VarId y = vars.AddBernoulli(0.7);
  std::vector<VariableInfluence> inf =
      SensitivityAnalysis(&pool, vars, pool.AddS(pool.Var(x), pool.Var(y)));
  ASSERT_EQ(inf.size(), 2u);
  // influence(x) = 1 - 0.7 = 0.3; influence(y) = 1 - 0.4 = 0.6.
  EXPECT_EQ(inf[0].variable, y);
  EXPECT_NEAR(inf[0].influence, 0.6, 1e-12);
  EXPECT_NEAR(inf[1].influence, 0.3, 1e-12);
}

TEST(SensitivityTest, InfluenceMatchesFiniteDifference) {
  // Numerical check: perturb p_x and compare against the analytic
  // derivative from SensitivityAnalysis.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.4);
  VarId y = vars.AddBernoulli(0.7);
  VarId z = vars.AddBernoulli(0.2);
  ExprId e = pool.AddS(pool.MulS(pool.Var(x), pool.Var(y)),
                       pool.MulS(pool.Var(x), pool.Var(z)));
  std::vector<VariableInfluence> inf = SensitivityAnalysis(&pool, vars, e);
  double analytic = 0.0;
  for (const VariableInfluence& vi : inf) {
    if (vi.variable == x) analytic = vi.influence;
  }
  auto prob_at = [&](double px) {
    VariableTable perturbed;
    perturbed.AddBernoulli(px);
    perturbed.AddBernoulli(0.7);
    perturbed.AddBernoulli(0.2);
    return EnumerateDistribution(pool, perturbed, e).ProbOf(1);
  };
  double h = 1e-6;
  double numeric = (prob_at(0.4 + h) - prob_at(0.4 - h)) / (2 * h);
  EXPECT_NEAR(analytic, numeric, 1e-6);
}

TEST(SensitivityTest, ExplanationRankingOnQueryResult) {
  // End-to-end: the M&S-style group annotation; the supplier variable has
  // higher influence than any single product variable.
  Database db;
  db.AddTupleIndependentTable(
      "R", Schema({{"g", CellType::kInt}, {"v", CellType::kInt}}),
      {{Cell(int64_t{1}), Cell(int64_t{10})},
       {Cell(int64_t{1}), Cell(int64_t{20})},
       {Cell(int64_t{1}), Cell(int64_t{30})}},
      {0.5, 0.5, 0.5});
  QueryPtr q = Query::GroupAgg(Query::Scan("R"), {"g"},
                               {{AggKind::kCount, "", "c"}});
  PvcTable result = db.Run(*q);
  std::vector<VariableInfluence> inf = SensitivityAnalysis(
      &db.pool(), db.variables(), result.row(0).annotation);
  ASSERT_EQ(inf.size(), 3u);
  for (const VariableInfluence& vi : inf) {
    EXPECT_NEAR(vi.influence, 0.25, 1e-12)
        << "each tuple is one of three symmetric witnesses";
  }
}

TEST(SensitivityTest, MonoidExpressionRejected) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  ExprId alpha = pool.Tensor(pool.Var(x), pool.ConstM(AggKind::kMin, 3));
  EXPECT_THROW(SensitivityAnalysis(&pool, vars, alpha), CheckError);
}

TEST(ConditioningTest, ConditionalTupleProbabilityBasics) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  VarId y = vars.AddBernoulli(0.5);
  ExprId phi = pool.Var(x);
  // Constraint: x + y (at least one present).
  ExprId gamma = pool.AddS(pool.Var(x), pool.Var(y));
  double p = ConditionalTupleProbability(&pool, vars, phi, gamma);
  // P[x | x or y] = (1/2) / (3/4) = 2/3.
  EXPECT_NEAR(p, 2.0 / 3, 1e-12);
}

TEST(ConditioningTest, IndependentConstraintLeavesProbability) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.3);
  VarId y = vars.AddBernoulli(0.9);
  double p = ConditionalTupleProbability(&pool, vars, pool.Var(x),
                                         pool.Var(y));
  EXPECT_NEAR(p, 0.3, 1e-12);
}

TEST(ConditioningTest, ImpossibleConstraintGivesZero) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  double p = ConditionalTupleProbability(&pool, vars, pool.Var(x),
                                         pool.ConstS(0));
  EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(ConditioningTest, MutuallyExclusiveEventsConditionToZero) {
  // phi = x * not-possible-with-gamma: gamma = [x = 0] style. Build with
  // Cmp: gamma = [x + y = 0] forces both absent, so P[x | gamma] = 0.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  VarId y = vars.AddBernoulli(0.5);
  ExprId gamma = pool.Cmp(CmpOp::kEq, pool.AddS(pool.Var(x), pool.Var(y)),
                          pool.ConstS(0));
  double p = ConditionalTupleProbability(&pool, vars, pool.Var(x), gamma);
  EXPECT_DOUBLE_EQ(p, 0.0);
}

}  // namespace
}  // namespace pvcdb
