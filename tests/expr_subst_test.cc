#include <gtest/gtest.h>

#include "src/expr/expr.h"

namespace pvcdb {
namespace {

class SubstituteTest : public ::testing::Test {
 protected:
  ExprPool pool_{SemiringKind::kBool};
  ExprId x_ = pool_.Var(0);
  ExprId y_ = pool_.Var(1);
  ExprId z_ = pool_.Var(2);
};

TEST_F(SubstituteTest, VariableReplacedByConstant) {
  EXPECT_EQ(pool_.Substitute(x_, 0, 1), pool_.ConstS(1));
  EXPECT_EQ(pool_.Substitute(x_, 0, 0), pool_.ConstS(0));
}

TEST_F(SubstituteTest, UntouchedWhenVariableAbsent) {
  ExprId e = pool_.AddS(y_, z_);
  EXPECT_EQ(pool_.Substitute(e, 0, 1), e);
}

TEST_F(SubstituteTest, SimplifiesThroughSum) {
  // (x + y)|x<-0 = y; (x + y)|x<-1 = 1 (Boolean absorption).
  ExprId e = pool_.AddS(x_, y_);
  EXPECT_EQ(pool_.Substitute(e, 0, 0), y_);
  EXPECT_EQ(pool_.Substitute(e, 0, 1), pool_.ConstS(1));
}

TEST_F(SubstituteTest, SimplifiesThroughProduct) {
  // (x * y)|x<-1 = y; (x * y)|x<-0 = 0.
  ExprId e = pool_.MulS(x_, y_);
  EXPECT_EQ(pool_.Substitute(e, 0, 1), y_);
  EXPECT_EQ(pool_.Substitute(e, 0, 0), pool_.ConstS(0));
}

TEST_F(SubstituteTest, SubstituteIntoTensor) {
  // (x (x) 10)|x<-0 = 0_M = inf for MIN.
  ExprId t = pool_.Tensor(x_, pool_.ConstM(AggKind::kMin, 10));
  ExprId zero = pool_.Substitute(t, 0, 0);
  EXPECT_EQ(zero, pool_.ConstM(AggKind::kMin, kPosInf));
  ExprId one = pool_.Substitute(t, 0, 1);
  EXPECT_EQ(one, pool_.ConstM(AggKind::kMin, 10));
}

TEST_F(SubstituteTest, SubstituteIntoComparison) {
  // [x (x) 10 <= 5]|x<-1 folds to [10 <= 5] = 0.
  ExprId cmp = pool_.Cmp(CmpOp::kLe,
                         pool_.Tensor(x_, pool_.ConstM(AggKind::kMin, 10)),
                         pool_.ConstM(AggKind::kMin, 5));
  EXPECT_EQ(pool_.Substitute(cmp, 0, 1), pool_.ConstS(0));
  // |x<-0: [inf <= 5] = 0 too.
  EXPECT_EQ(pool_.Substitute(cmp, 0, 0), pool_.ConstS(0));
}

TEST_F(SubstituteTest, ExampleThirteenLeftBranch) {
  // Figure 5: Phi = a(b+c) (x) 10 + c (x) 20 over N (x) N; Phi|c<-1 =
  // a(b+1) (x) 10 + 1 (x) 20.
  ExprPool nat(SemiringKind::kNatural);
  ExprId a = nat.Var(0);
  ExprId b = nat.Var(1);
  ExprId c = nat.Var(2);
  ExprId phi = nat.AddM(
      AggKind::kSum,
      nat.Tensor(nat.MulS(a, nat.AddS(b, c)), nat.ConstM(AggKind::kSum, 10)),
      nat.Tensor(c, nat.ConstM(AggKind::kSum, 20)));
  ExprId left = nat.Substitute(phi, 2, 1);
  ExprId expected = nat.AddM(
      AggKind::kSum,
      nat.Tensor(nat.MulS(a, nat.AddS(b, nat.ConstS(1))),
                 nat.ConstM(AggKind::kSum, 10)),
      nat.ConstM(AggKind::kSum, 20));
  EXPECT_EQ(left, expected);
}

TEST_F(SubstituteTest, RemovesVariableCompletely) {
  ExprId e = pool_.AddS({pool_.MulS(x_, y_), pool_.MulS(x_, z_), x_});
  ExprId sub = pool_.Substitute(e, 0, 1);
  Span<VarId> vars = pool_.VarsOf(sub);
  EXPECT_TRUE(std::find(vars.begin(), vars.end(), 0u) == vars.end());
}

TEST_F(SubstituteTest, SharedSubexpressionsSubstitutedOnce) {
  // DAG-shared nodes must produce identical substitution results.
  ExprId shared = pool_.MulS(x_, y_);
  ExprId e =
      pool_.AddS(pool_.MulS(shared, z_), shared);  // Bool: absorbed forms ok.
  ExprId sub = pool_.Substitute(e, 0, 1);
  // (y*z + y) with idempotence handling; verify no variable 0 remains.
  Span<VarId> vars = pool_.VarsOf(sub);
  EXPECT_TRUE(std::find(vars.begin(), vars.end(), 0u) == vars.end());
}

TEST_F(SubstituteTest, NaturalSemiringSubstitutionKeepsArithmetic) {
  ExprPool nat(SemiringKind::kNatural);
  ExprId x = nat.Var(0);
  ExprId y = nat.Var(1);
  // (x + y)|x<-2 = 2 + y (kept, not absorbed).
  ExprId e = nat.AddS(x, y);
  ExprId sub = nat.Substitute(e, 0, 2);
  EXPECT_EQ(sub, nat.AddS(y, nat.ConstS(2)));
}

}  // namespace
}  // namespace pvcdb
