// Wire-protocol tests for the serving layer (src/net): frame round-trips
// over real sockets, FrameParser reassembly under arbitrary splits,
// CRC/truncation rejection, and Encode/Decode round-trips for every
// message kind -- including the rule that a truncated or extended payload
// is rejected, never misparsed.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/query/parser.h"
#include "src/table/schema.h"

namespace pvcdb {
namespace {

Schema ItemsSchema() {
  return Schema({{"item", CellType::kString}, {"price", CellType::kInt}});
}

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

TEST(FrameTest, RoundTripOverSocketPair) {
  Socket a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b));
  ASSERT_TRUE(SendFrame(&a, 7, "hello frame"));
  ASSERT_TRUE(SendFrame(&a, 200, ""));  // Empty payload, client-range kind.
  uint8_t kind = 0;
  std::string payload;
  ASSERT_EQ(RecvFrame(&b, &kind, &payload), FrameResult::kOk);
  EXPECT_EQ(kind, 7);
  EXPECT_EQ(payload, "hello frame");
  ASSERT_EQ(RecvFrame(&b, &kind, &payload), FrameResult::kOk);
  EXPECT_EQ(kind, 200);
  EXPECT_EQ(payload, "");
}

TEST(FrameTest, CleanCloseIsClosedTornFrameIsCorrupt) {
  {
    Socket a, b;
    ASSERT_TRUE(MakeSocketPair(&a, &b));
    a.Close();  // Close on a frame boundary.
    uint8_t kind = 0;
    std::string payload;
    EXPECT_EQ(RecvFrame(&b, &kind, &payload), FrameResult::kClosed);
  }
  {
    Socket a, b;
    ASSERT_TRUE(MakeSocketPair(&a, &b));
    std::string frame;
    EncodeFrame(&frame, 3, "payload that will be torn");
    ASSERT_TRUE(a.SendAll(frame.data(), frame.size() - 5));
    a.Close();  // EOF mid-frame.
    uint8_t kind = 0;
    std::string payload;
    EXPECT_EQ(RecvFrame(&b, &kind, &payload), FrameResult::kCorrupt);
  }
}

TEST(FrameTest, CorruptCrcRejected) {
  std::string frame;
  EncodeFrame(&frame, 5, "checksummed bytes");
  // Flip one payload byte; the CRC no longer matches.
  frame[frame.size() - 1] ^= 0x01;
  Socket a, b;
  ASSERT_TRUE(MakeSocketPair(&a, &b));
  ASSERT_TRUE(a.SendAll(frame.data(), frame.size()));
  uint8_t kind = 0;
  std::string payload;
  EXPECT_EQ(RecvFrame(&b, &kind, &payload), FrameResult::kCorrupt);
}

TEST(FrameTest, OversizedLengthRejectedWithoutAllocating) {
  // A corrupted length field larger than kMaxFrameLength must be rejected
  // up front instead of trusted.
  std::string frame;
  EncodeFrame(&frame, 5, "x");
  frame[0] = static_cast<char>(0xff);
  frame[1] = static_cast<char>(0xff);
  frame[2] = static_cast<char>(0xff);
  frame[3] = static_cast<char>(0xff);
  FrameParser parser;
  parser.Feed(frame.data(), frame.size());
  uint8_t kind = 0;
  std::string payload;
  EXPECT_EQ(parser.Next(&kind, &payload), FrameResult::kCorrupt);
}

TEST(FrameParserTest, ReassemblesByteAtATime) {
  std::string stream;
  EncodeFrame(&stream, 1, "first");
  EncodeFrame(&stream, 2, "second payload");
  EncodeFrame(&stream, 3, "");
  FrameParser parser;
  std::vector<std::pair<uint8_t, std::string>> got;
  for (char c : stream) {
    parser.Feed(&c, 1);
    uint8_t kind = 0;
    std::string payload;
    while (parser.Next(&kind, &payload) == FrameResult::kOk) {
      got.emplace_back(kind, payload);
    }
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<uint8_t, std::string>(1, "first")));
  EXPECT_EQ(got[1], (std::pair<uint8_t, std::string>(2, "second payload")));
  EXPECT_EQ(got[2], (std::pair<uint8_t, std::string>(3, "")));
}

TEST(FrameParserTest, CoalescedFramesDrainInOrder) {
  std::string stream;
  for (int i = 0; i < 5; ++i) {
    EncodeFrame(&stream, static_cast<uint8_t>(10 + i),
                std::string(static_cast<size_t>(i) * 7, 'x'));
  }
  FrameParser parser;
  parser.Feed(stream.data(), stream.size());
  uint8_t kind = 0;
  std::string payload;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(parser.Next(&kind, &payload), FrameResult::kOk);
    EXPECT_EQ(kind, 10 + i);
    EXPECT_EQ(payload.size(), static_cast<size_t>(i) * 7);
  }
  EXPECT_EQ(parser.Next(&kind, &payload), FrameResult::kNeedMore);
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(FrameParserTest, EveryTruncationNeedsMoreEveryFlipCorrupts) {
  std::string frame;
  EncodeFrame(&frame, 9, "truncation sweep payload");
  // Every strict prefix is incomplete, never misparsed.
  for (size_t n = 0; n < frame.size(); ++n) {
    FrameParser parser;
    parser.Feed(frame.data(), n);
    uint8_t kind = 0;
    std::string payload;
    EXPECT_EQ(parser.Next(&kind, &payload), FrameResult::kNeedMore)
        << "prefix of " << n << " bytes";
  }
  // Any single bit flip in the checksummed region (kind + payload) is
  // caught by the CRC; corruption is sticky.
  for (size_t i = 8; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] ^= 0x10;
    FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    uint8_t kind = 0;
    std::string payload;
    ASSERT_EQ(parser.Next(&kind, &payload), FrameResult::kCorrupt)
        << "flip at byte " << i;
    EXPECT_EQ(parser.Next(&kind, &payload), FrameResult::kCorrupt);
  }
}

// ---------------------------------------------------------------------------
// Message round-trips. Every decoder requires full consumption, so the
// shared harness also proves: every strict payload prefix is rejected, and
// so is one byte of trailing garbage.
// ---------------------------------------------------------------------------

template <typename Msg>
void ExpectRoundTripStable(const Msg& msg) {
  const std::string bytes = msg.Encode();
  Msg decoded;
  ASSERT_TRUE(Msg::Decode(bytes, &decoded));
  EXPECT_EQ(decoded.Encode(), bytes) << "re-encode is not byte-stable";
  for (size_t n = 0; n < bytes.size(); ++n) {
    Msg scratch;
    EXPECT_FALSE(Msg::Decode(bytes.substr(0, n), &scratch))
        << "decoded a " << n << "-byte prefix of " << bytes.size();
  }
  Msg scratch;
  EXPECT_FALSE(Msg::Decode(bytes + '\0', &scratch)) << "accepted a suffix";
}

TEST(ProtocolTest, HelloRoundTrip) {
  HelloMsg msg;
  msg.semiring = SemiringKind::kNatural;
  msg.shard_index = 3;
  msg.num_shards = 8;
  ExpectRoundTripStable(msg);
  HelloMsg decoded;
  ASSERT_TRUE(HelloMsg::Decode(msg.Encode(), &decoded));
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.semiring, SemiringKind::kNatural);
  EXPECT_EQ(decoded.shard_index, 3u);
  EXPECT_EQ(decoded.num_shards, 8u);
}

TEST(ProtocolTest, SyncVarsRoundTrip) {
  SyncVarsMsg msg;
  msg.first_id = 42;
  msg.entries.push_back({"x42", Distribution::Bernoulli(0.25)});
  msg.entries.push_back({"x43", Distribution::Bernoulli(0.5)});
  msg.entries.push_back({"", Distribution::Bernoulli(1.0)});
  ExpectRoundTripStable(msg);
  SyncVarsMsg decoded;
  ASSERT_TRUE(SyncVarsMsg::Decode(msg.Encode(), &decoded));
  ASSERT_EQ(decoded.entries.size(), 3u);
  EXPECT_EQ(decoded.first_id, 42u);
  EXPECT_EQ(decoded.entries[0].name, "x42");
  EXPECT_EQ(decoded.entries[1].distribution.ToString(),
            Distribution::Bernoulli(0.5).ToString());
}

TEST(ProtocolTest, UpdateVarRoundTrip) {
  UpdateVarMsg msg;
  msg.var = 17;
  msg.probability = 0.125;
  ExpectRoundTripStable(msg);
}

TEST(ProtocolTest, LoadPartitionRoundTrip) {
  LoadPartitionMsg msg;
  msg.table = "items";
  msg.key_column = "item";
  msg.schema = ItemsSchema();
  msg.rows = {{Cell(std::string("hammer")), Cell(int64_t{1299})},
              {Cell(std::string("rake, green")), Cell(int64_t{-7})}};
  msg.vars = {0, 4};
  msg.global_rows = {0, 4};
  ExpectRoundTripStable(msg);
  LoadPartitionMsg decoded;
  ASSERT_TRUE(LoadPartitionMsg::Decode(msg.Encode(), &decoded));
  ASSERT_EQ(decoded.rows.size(), 2u);
  EXPECT_EQ(decoded.rows[1][0].AsString(), "rake, green");
  EXPECT_EQ(decoded.rows[1][1].AsInt(), -7);
  EXPECT_EQ(decoded.schema.NumColumns(), 2u);
}

TEST(ProtocolTest, AppendAndDeleteRowRoundTrip) {
  AppendRowMsg append;
  append.table = "items";
  append.cells = {Cell(std::string("drill")), Cell(int64_t{1450})};
  append.var = 9;
  append.global_row = 5;
  ExpectRoundTripStable(append);

  DeleteRowMsg del;
  del.table = "items";
  del.has_local_row = true;
  del.local_row = 1;
  del.global_row = 3;
  ExpectRoundTripStable(del);
  DeleteRowMsg broadcast;
  broadcast.table = "items";
  ExpectRoundTripStable(broadcast);
}

TEST(ProtocolTest, EvalChainCarriesTheQuery) {
  ParseResult parsed = ParseQuery("SELECT * FROM items WHERE price >= 1000");
  ASSERT_TRUE(parsed.ok());
  EvalChainMsg msg;
  msg.table = "items";
  msg.query = parsed.query;
  msg.want_distributions = true;
  const std::string bytes = msg.Encode();
  EvalChainMsg decoded;
  ASSERT_TRUE(EvalChainMsg::Decode(bytes, &decoded));
  ASSERT_NE(decoded.query, nullptr);
  // The query survives via its serialized form: re-encoding must agree.
  EXPECT_EQ(decoded.Encode(), bytes);
  EXPECT_EQ(decoded.table, "items");
  EXPECT_TRUE(decoded.want_distributions);
  for (size_t n = 0; n < bytes.size(); ++n) {
    EvalChainMsg scratch;
    EXPECT_FALSE(EvalChainMsg::Decode(bytes.substr(0, n), &scratch));
  }
}

TEST(ProtocolTest, TableProbsRoundTrip) {
  TableProbsMsg msg;
  msg.table = "items";
  msg.want_distributions = true;
  ExpectRoundTripStable(msg);
}

TEST(ProtocolTest, RegisterChainViewRoundTrip) {
  ParseResult parsed = ParseQuery("SELECT * FROM items WHERE price >= 500");
  ASSERT_TRUE(parsed.ok());
  RegisterChainViewMsg msg;
  msg.name = "pricey";
  msg.table = "items";
  msg.query = parsed.query;
  const std::string bytes = msg.Encode();
  RegisterChainViewMsg decoded;
  ASSERT_TRUE(RegisterChainViewMsg::Decode(bytes, &decoded));
  EXPECT_EQ(decoded.Encode(), bytes);
  EXPECT_EQ(decoded.name, "pricey");
}

TEST(ProtocolTest, NameMsgRoundTrip) {
  NameMsg msg;
  msg.name = "a view name";
  ExpectRoundTripStable(msg);
}

TEST(ProtocolTest, ChainResultRoundTrip) {
  ChainResultMsg msg;
  msg.schema = ItemsSchema();
  ChainRow row;
  row.global_row = 11;
  row.cells = {Cell(std::string("hammer")), Cell(int64_t{1299})};
  row.var = 2;
  row.probability = 0.9;
  row.distribution = Distribution::Bernoulli(0.9);
  msg.rows.push_back(row);
  ChainRow empty_dist;
  empty_dist.global_row = 12;
  empty_dist.cells = {Cell(std::string("rake")), Cell(int64_t{1799})};
  msg.rows.push_back(empty_dist);
  ExpectRoundTripStable(msg);
  ChainResultMsg decoded;
  ASSERT_TRUE(ChainResultMsg::Decode(msg.Encode(), &decoded));
  ASSERT_EQ(decoded.rows.size(), 2u);
  EXPECT_EQ(decoded.rows[0].global_row, 11u);
  EXPECT_EQ(decoded.rows[0].probability, 0.9);
  EXPECT_EQ(decoded.rows[1].distribution.ToString(),
            Distribution().ToString());
}

TEST(ProtocolTest, ProbsResultRoundTrip) {
  ProbsResultMsg msg;
  msg.rows.push_back({0, 0.25, Distribution()});
  msg.rows.push_back({3, 1.0, Distribution::Bernoulli(1.0)});
  ExpectRoundTripStable(msg);
}

TEST(ProtocolTest, ScalarRepliesRoundTrip) {
  ViewInfoMsg info;
  info.rows = 7;
  info.cache_entries = 3;
  ExpectRoundTripStable(info);

  OkMsg ok;
  ok.value = 1234567;
  ExpectRoundTripStable(ok);

  ErrorMsg error;
  error.text = "no table 'ghosts'";
  ExpectRoundTripStable(error);

  ClientReplyMsg reply;
  reply.ok = false;
  reply.text = "error: something multi-line\nsecond line\n";
  ExpectRoundTripStable(reply);
}

TEST(ProtocolTest, EvalOptionsRoundTrip) {
  EvalOptionsMsg msg;
  msg.num_threads = 8;
  msg.intra_tree_threads = 2;
  ExpectRoundTripStable(msg);

  // Negative knob values (-1 = all cores) travel through the u32 fields
  // via static_cast on both sides; the bytes must round-trip unchanged.
  EvalOptionsMsg negative;
  negative.num_threads = static_cast<uint32_t>(-1);
  negative.intra_tree_threads = static_cast<uint32_t>(-1);
  ExpectRoundTripStable(negative);
  EvalOptionsMsg decoded;
  ASSERT_TRUE(EvalOptionsMsg::Decode(negative.Encode(), &decoded));
  EXPECT_EQ(static_cast<int>(decoded.num_threads), -1);
}

TEST(ProtocolTest, ReplayTailAndTailInfoRoundTrip) {
  ReplayTailMsg probe;
  probe.base_lsn = 123456789012345ull;
  ExpectRoundTripStable(probe);

  TailInfoMsg info;
  info.lsn = 42;
  info.chain = 0xdeadbeef;
  ExpectRoundTripStable(info);
}

TEST(ProtocolTest, ShipWalRoundTrip) {
  ShipWalMsg msg;
  msg.first_lsn = 7;
  WalEntry sync_vars;
  sync_vars.kind = static_cast<uint8_t>(MsgKind::kSyncVars);
  SyncVarsMsg vars;
  vars.first_id = 0;
  vars.entries.push_back({"x0", Distribution::Bernoulli(0.5)});
  sync_vars.payload = vars.Encode();
  msg.entries.push_back(sync_vars);
  WalEntry update;
  update.kind = static_cast<uint8_t>(MsgKind::kUpdateVar);
  UpdateVarMsg upd;
  upd.var = 0;
  upd.probability = 0.75;
  update.payload = upd.Encode();
  msg.entries.push_back(update);
  ExpectRoundTripStable(msg);

  ShipWalMsg decoded;
  ASSERT_TRUE(ShipWalMsg::Decode(msg.Encode(), &decoded));
  ASSERT_EQ(decoded.entries.size(), 2u);
  EXPECT_EQ(decoded.entries[0].kind,
            static_cast<uint8_t>(MsgKind::kSyncVars));
  EXPECT_EQ(decoded.entries[1].payload, upd.Encode());

  ShipWalMsg empty;
  empty.first_lsn = 0;
  ExpectRoundTripStable(empty);
}

TEST(ProtocolTest, HelloRejectsUnknownSemiring) {
  HelloMsg msg;
  std::string bytes = msg.Encode();
  bytes[4] = 0x7f;  // The semiring byte, past the u32 version.
  HelloMsg decoded;
  EXPECT_FALSE(HelloMsg::Decode(bytes, &decoded));
}

TEST(ProtocolTest, ClientReplyRejectsBadBoolByte) {
  ClientReplyMsg msg;
  msg.text = "x";
  std::string bytes = msg.Encode();
  bytes[0] = 2;  // Neither 0 nor 1.
  ClientReplyMsg decoded;
  EXPECT_FALSE(ClientReplyMsg::Decode(bytes, &decoded));
}

}  // namespace
}  // namespace pvcdb
