#include "src/query/predicate.h"

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(OperandTest, ColumnAndConstants) {
  Operand col = Operand::Col("price");
  EXPECT_EQ(col.kind(), Operand::Kind::kColumn);
  EXPECT_EQ(col.column(), "price");
  EXPECT_THROW(col.constant(), CheckError);

  Operand i = Operand::Int(50);
  EXPECT_EQ(i.kind(), Operand::Kind::kConst);
  EXPECT_EQ(i.constant().AsInt(), 50);
  EXPECT_THROW(i.column(), CheckError);

  EXPECT_EQ(Operand::Str("M&S").constant().AsString(), "M&S");
  EXPECT_DOUBLE_EQ(Operand::Double(1.5).constant().AsDouble(), 1.5);
}

TEST(PredicateTest, FactoriesBuildExpectedAtoms) {
  Predicate p = Predicate::ColEqCol("a", "b");
  ASSERT_EQ(p.atoms().size(), 1u);
  EXPECT_EQ(p.atoms()[0].op, CmpOp::kEq);
  EXPECT_EQ(p.atoms()[0].lhs.column(), "a");
  EXPECT_EQ(p.atoms()[0].rhs.column(), "b");

  Predicate q = Predicate::ColCmpInt("price", CmpOp::kLe, 50);
  EXPECT_EQ(q.atoms()[0].op, CmpOp::kLe);
  EXPECT_EQ(q.atoms()[0].rhs.constant().AsInt(), 50);
}

TEST(PredicateTest, ConjunctionAccumulates) {
  Predicate p;
  p.And({CmpOp::kEq, Operand::Col("a"), Operand::Int(1)})
      .And({CmpOp::kGt, Operand::Col("b"), Operand::Int(2)});
  EXPECT_EQ(p.atoms().size(), 2u);
  EXPECT_FALSE(p.empty());
  EXPECT_TRUE(Predicate().empty());
}

TEST(PredicateTest, ToStringRendering) {
  Predicate p = Predicate::ColEqStr("shop", "M&S");
  p.And({CmpOp::kLe, Operand::Col("price"), Operand::Int(50)});
  EXPECT_EQ(p.ToString(), "shop = M&S AND price <= 50");
}

}  // namespace
}  // namespace pvcdb
