// Randomized durability properties. Two claims beyond the deterministic
// boundary sweep (tests/crash_recovery_test.cc):
//
//  1. For ANY seeded interleaving of inserts, deletes, probability
//     updates, view changes and reshards, crashing at a RANDOM WAL byte
//     offset and recovering yields exactly the durable prefix --
//     bit-identical to a never-crashed twin even when the recovered
//     engine evaluates with tuple-level AND intra-d-tree parallelism
//     while the twin stays serial (the engine's parallel paths promise
//     bitwise equality with serial; recovery must not break that).
//
//  2. Bounding the step II caches (EvalOptions::step_two_cache_capacity)
//     so the mutation/query stream forces LRU evictions changes nothing:
//     recovery after eviction churn is still bit-identical.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/snapshot.h"
#include "src/util/check.h"
#include "src/util/io.h"
#include "tests/crash_injection.h"
#include "tests/durability_testlib.h"

namespace pvcdb {
namespace {

using namespace durability_test;  // NOLINT(build/namespaces)

// Applies `workload` against a fault-injecting session that crashes once
// `budget` WAL bytes are durable, then recovers from the debris and
// returns the recovered session. `expected_prefix` receives the number of
// whole records the budget admits (computed from the fault-free
// boundaries, asserted against the replay count).
std::unique_ptr<DurableSession> CrashAndRecover(
    const std::string& crash_dir, const EngineState& initial,
    const std::vector<Mutation>& workload,
    const std::vector<uint64_t>& boundaries, uint64_t budget,
    size_t* expected_prefix, const std::string& tag) {
  FileSystem* real = DefaultFileSystem();
  for (const std::string& file : real->ListDir(crash_dir)) {
    std::string error;
    real->Remove(JoinPath(crash_dir, file), &error);
  }
  FaultInjectingFileSystem faulty(real, "wal-", budget);
  DurableConfig config;
  config.dir = crash_dir;
  config.fs = &faulty;
  std::string error;
  std::unique_ptr<DurableSession> session =
      DurableSession::Create(config, initial, &error);
  if (session != nullptr) {
    try {
      for (const Mutation& m : workload) Apply(session.get(), m);
    } catch (const CheckError&) {
      // The simulated crash: a WAL append did not fit the budget.
    }
  }
  session.reset();  // Process death: no checkpoint, no cleanup.

  // The twin prefix is counted in MUTATIONS; the replay count in RECORDS.
  // They differ when a mutation logs nothing (a reshard to the current
  // shard count, a delete against an empty table): such a boundary repeats
  // the previous offset, extends the durable mutation prefix for free, and
  // contributes no WAL record.
  *expected_prefix = 0;
  size_t expected_records = 0;
  for (size_t i = 1; i < boundaries.size(); ++i) {
    if (boundaries[i] > budget) break;
    *expected_prefix = i;
    if (boundaries[i] > boundaries[i - 1]) ++expected_records;
  }

  DurableConfig recover_config;
  recover_config.dir = crash_dir;
  std::unique_ptr<DurableSession> recovered =
      DurableSession::Recover(recover_config, &error);
  EXPECT_NE(recovered, nullptr) << tag << ": " << error;
  if (recovered != nullptr) {
    EXPECT_EQ(recovered->stats().replayed_records, expected_records) << tag;
  }
  return recovered;
}

void SetThreads(DurableSession* session, int num_threads,
                int intra_tree_threads) {
  EvalOptions& options = session->is_sharded()
                             ? session->sharded()->eval_options()
                             : session->db()->eval_options();
  options.num_threads = num_threads;
  options.intra_tree_threads = intra_tree_threads;
}

TEST(DurabilityPropertyTest, RandomCrashOffsetsRecoverBitIdentical) {
  for (uint32_t seed = 1; seed <= 16; ++seed) {
    const std::string tag = "prop_s" + std::to_string(seed);
    const uint64_t num_shards = seed % 3 == 0 ? 0 : (seed % 3) * 2;
    const EngineState initial = InitialState(num_shards);
    const std::vector<Mutation> workload =
        SeededWorkload(seed, 14, /*with_reshard=*/true);
    const std::vector<uint64_t> boundaries =
        RecordBoundaries(TestDir(tag + "_ref"), initial, workload);

    // Crash at a random byte offset: anywhere from inside the WAL magic to
    // just past the final record (no crash at all).
    Lcg rng(seed ^ 0x9E3779B9u);
    const uint64_t budget = rng.Next() % (boundaries.back() + 4);

    size_t prefix = 0;
    std::unique_ptr<DurableSession> recovered =
        CrashAndRecover(TestDir(tag + "_crash"), initial, workload,
                        boundaries, budget, &prefix,
                        tag + " budget=" + std::to_string(budget));
    ASSERT_NE(recovered, nullptr);

    std::unique_ptr<DurableSession> twin =
        BuildTwin(TestDir(tag + "_twin"), initial, workload, prefix);

    // The recovered engine evaluates with tuple-parallel batches AND
    // intra-d-tree parallelism; the twin stays serial. Bit-identity must
    // survive both recovery and the parallel paths at once.
    SetThreads(recovered.get(), /*num_threads=*/2, /*intra_tree_threads=*/2);
    ExpectSameState(recovered.get(), twin.get(),
                    tag + " budget=" + std::to_string(budget));
  }
}

TEST(DurabilityPropertyTest, StepTwoCacheEvictionSurvivesRecovery) {
  for (size_t capacity : {size_t{1}, size_t{7}}) {
    for (uint64_t num_shards : {uint64_t{0}, uint64_t{2}}) {
      const std::string tag = "cache_c" + std::to_string(capacity) + "_n" +
                              std::to_string(num_shards);
      const EngineState initial = InitialState(num_shards);
      // No reshards here: the stream keeps one view registered throughout
      // so every mutation round-trips the step II cache.
      std::vector<Mutation> workload = SeededWorkload(17, 12);
      const std::vector<uint64_t> boundaries =
          RecordBoundaries(TestDir(tag + "_ref"), initial, workload);

      // Stress the LRU bound during the crash run: query the view's
      // probabilities after every mutation, so a capacity of 1 evicts on
      // nearly every step while the WAL bytes stay identical to the
      // fault-free reference (queries do not log).
      const std::string crash_dir = TestDir(tag + "_crash");
      FileSystem* real = DefaultFileSystem();
      const uint64_t budget = boundaries[boundaries.size() * 2 / 3] + 1;
      FaultInjectingFileSystem faulty(real, "wal-", budget);
      DurableConfig config;
      config.dir = crash_dir;
      config.fs = &faulty;
      std::string error;
      std::unique_ptr<DurableSession> session =
          DurableSession::Create(config, initial, &error);
      ASSERT_NE(session, nullptr) << tag << ": " << error;
      EvalOptions& options = session->is_sharded()
                                 ? session->sharded()->eval_options()
                                 : session->db()->eval_options();
      options.step_two_cache_capacity = capacity;
      try {
        for (const Mutation& m : workload) {
          Apply(session.get(), m);
          if (session->is_sharded()) {
            session->sharded()->ViewProbabilities("low");
          } else {
            session->db()->ViewProbabilities("low");
          }
        }
      } catch (const CheckError&) {
        // The simulated crash.
      }
      session.reset();

      size_t prefix = 0;
      size_t expected_records = 0;
      for (size_t i = 1; i < boundaries.size(); ++i) {
        if (boundaries[i] > budget) break;
        prefix = i;
        if (boundaries[i] > boundaries[i - 1]) ++expected_records;
      }

      DurableConfig recover_config;
      recover_config.dir = crash_dir;
      std::unique_ptr<DurableSession> recovered =
          DurableSession::Recover(recover_config, &error);
      ASSERT_NE(recovered, nullptr) << tag << ": " << error;
      EXPECT_EQ(recovered->stats().replayed_records, expected_records) << tag;

      // The twin never crashed but ran under the same capacity bound (its
      // churn differs -- it never re-queried between mutations -- which is
      // the point: eviction history must not leak into results).
      std::unique_ptr<DurableSession> twin =
          BuildTwin(TestDir(tag + "_twin"), initial, workload, prefix);
      EvalOptions& recovered_options =
          recovered->is_sharded() ? recovered->sharded()->eval_options()
                                  : recovered->db()->eval_options();
      recovered_options.step_two_cache_capacity = capacity;
      EvalOptions& twin_options = twin->is_sharded()
                                      ? twin->sharded()->eval_options()
                                      : twin->db()->eval_options();
      twin_options.step_two_cache_capacity = capacity;
      // Query twice: the second pass reads through the (now bounded and
      // partially evicted) caches.
      ExpectSameState(recovered.get(), twin.get(), tag + " pass1");
      ExpectSameState(recovered.get(), twin.get(), tag + " pass2");
    }
  }
}

}  // namespace
}  // namespace pvcdb
