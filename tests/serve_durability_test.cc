// Durable serving proof (ISSUE 8 acceptance): the worker-side durability
// plane -- the (lsn, chain) position every logged mutation advances, the
// kReplayTail position probe, kShipWal tail replay and kReset -- and the
// coordinator-side resync decision over real standalone worker processes:
//
//  - A front-end "crash" (coordinator + attached DurableSession destroyed,
//    worker processes surviving) followed by RecoverAttached must
//    reconcile every worker with a TAIL resync of zero entries -- no
//    partition retransfer -- and serve bit-identical bytes.
//  - Blank replacement workers must take the full rebuild path, and the
//    shipped entry/byte counts must show the tail path's saving.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/coordinator.h"
#include "src/engine/shard_worker.h"
#include "src/engine/snapshot.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/query/parser.h"
#include "src/table/schema.h"

namespace pvcdb {
namespace {

HelloMsg TestHello() {
  HelloMsg hello;
  hello.shard_index = 0;
  hello.num_shards = 1;
  return hello;
}

// ---------------------------------------------------------------------------
// Worker durability plane, driven through the Handle() unit hook.
// ---------------------------------------------------------------------------

TEST(ShardWorkerDurabilityTest, LoggedMutationsAdvanceTheChain) {
  ShardWorker worker(TestHello());
  EXPECT_EQ(worker.lsn(), 0u);
  EXPECT_EQ(worker.chain(), 0u);

  SyncVarsMsg vars;
  vars.first_id = 0;
  vars.entries.push_back({"x0", Distribution::Bernoulli(0.9)});
  const std::string payload = vars.Encode();
  MsgKind rk = MsgKind::kError;
  std::string rp;
  ASSERT_TRUE(worker.Handle(MsgKind::kSyncVars, payload, &rk, &rp));
  ASSERT_EQ(rk, MsgKind::kOk);
  EXPECT_EQ(worker.lsn(), 1u);
  const uint32_t chain1 =
      ShardWorker::NextChain(0, MsgKind::kSyncVars, payload);
  EXPECT_EQ(worker.chain(), chain1);

  // kSetOptions is session state, not logged: the position must not move.
  EvalOptionsMsg opts;
  opts.num_threads = 2;
  opts.intra_tree_threads = 2;
  ASSERT_TRUE(worker.Handle(MsgKind::kSetOptions, opts.Encode(), &rk, &rp));
  ASSERT_EQ(rk, MsgKind::kOk);
  EXPECT_EQ(worker.lsn(), 1u);
  EXPECT_EQ(worker.chain(), chain1);

  // Reads do not move it either.
  ASSERT_TRUE(worker.Handle(MsgKind::kPing, "", &rk, &rp));
  ASSERT_EQ(rk, MsgKind::kPong);
  EXPECT_EQ(worker.lsn(), 1u);

  // kReplayTail reports exactly the pair the coordinator must prove
  // against.
  ReplayTailMsg probe;
  ASSERT_TRUE(worker.Handle(MsgKind::kReplayTail, probe.Encode(), &rk, &rp));
  ASSERT_EQ(rk, MsgKind::kTailInfo);
  TailInfoMsg info;
  ASSERT_TRUE(TailInfoMsg::Decode(rp, &info));
  EXPECT_EQ(info.lsn, 1u);
  EXPECT_EQ(info.chain, chain1);
}

TEST(ShardWorkerDurabilityTest, ShipWalReplaysBitIdenticalPosition) {
  // Drive a primary worker through direct requests, recording each logged
  // mutation; a blank replica fed the same entries via kShipWal must land
  // on the identical (lsn, chain) position.
  ShardWorker primary(TestHello());
  std::vector<WalEntry> entries;
  MsgKind rk = MsgKind::kError;
  std::string rp;

  SyncVarsMsg vars;
  vars.first_id = 0;
  vars.entries.push_back({"x0", Distribution::Bernoulli(0.9)});
  vars.entries.push_back({"x1", Distribution::Bernoulli(0.4)});
  ASSERT_TRUE(primary.Handle(MsgKind::kSyncVars, vars.Encode(), &rk, &rp));
  ASSERT_EQ(rk, MsgKind::kOk);
  entries.push_back({static_cast<uint8_t>(MsgKind::kSyncVars), vars.Encode()});

  LoadPartitionMsg part;
  part.table = "items";
  part.key_column = "item";
  part.schema = Schema({{"item", CellType::kString},
                        {"price", CellType::kInt}});
  part.rows = {{Cell(std::string("hammer")), Cell(int64_t{1299})},
               {Cell(std::string("rake")), Cell(int64_t{1799})}};
  part.vars = {0, 1};
  part.global_rows = {0, 1};
  ASSERT_TRUE(
      primary.Handle(MsgKind::kLoadPartition, part.Encode(), &rk, &rp));
  ASSERT_EQ(rk, MsgKind::kOk);
  entries.push_back(
      {static_cast<uint8_t>(MsgKind::kLoadPartition), part.Encode()});

  UpdateVarMsg upd;
  upd.var = 1;
  upd.probability = 0.25;
  ASSERT_TRUE(primary.Handle(MsgKind::kUpdateVar, upd.Encode(), &rk, &rp));
  ASSERT_EQ(rk, MsgKind::kOk);
  entries.push_back({static_cast<uint8_t>(MsgKind::kUpdateVar), upd.Encode()});

  ASSERT_EQ(primary.lsn(), 3u);

  ShardWorker replica(TestHello());
  ShipWalMsg ship;
  ship.first_lsn = 0;
  ship.entries = entries;
  ASSERT_TRUE(replica.Handle(MsgKind::kShipWal, ship.Encode(), &rk, &rp));
  ASSERT_EQ(rk, MsgKind::kOk);
  OkMsg ok;
  ASSERT_TRUE(OkMsg::Decode(rp, &ok));
  EXPECT_EQ(ok.value, 3u);
  EXPECT_EQ(replica.lsn(), primary.lsn());
  EXPECT_EQ(replica.chain(), primary.chain());

  // An lsn mismatch is rejected up front, position untouched.
  ShipWalMsg stale = ship;
  stale.first_lsn = 99;
  ASSERT_TRUE(replica.Handle(MsgKind::kShipWal, stale.Encode(), &rk, &rp));
  EXPECT_EQ(rk, MsgKind::kError);
  EXPECT_EQ(replica.lsn(), 3u);

  // Non-logged kinds may not travel inside a kShipWal batch.
  ShipWalMsg smuggle;
  smuggle.first_lsn = 3;
  smuggle.entries.push_back({static_cast<uint8_t>(MsgKind::kPing), ""});
  ASSERT_TRUE(replica.Handle(MsgKind::kShipWal, smuggle.Encode(), &rk, &rp));
  EXPECT_EQ(rk, MsgKind::kError);
  EXPECT_EQ(replica.lsn(), 3u);

  // kReset drops state and position: the precondition of a full resync.
  ASSERT_TRUE(replica.Handle(MsgKind::kReset, "", &rk, &rp));
  ASSERT_EQ(rk, MsgKind::kOk);
  EXPECT_EQ(replica.lsn(), 0u);
  EXPECT_EQ(replica.chain(), 0u);
}

// ---------------------------------------------------------------------------
// Coordinator resync over standalone worker processes.
// ---------------------------------------------------------------------------

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pvcdb_durserve_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      // Best-effort cleanup.
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

pid_t StartStandaloneWorker(const std::string& address) {
  pid_t pid = fork();
  if (pid == 0) {
    _exit(ShardWorker::RunStandalone(address, /*quiet=*/true));
  }
  return pid;
}

// Dials one already-running standalone worker per address.
std::vector<RemoteShard> DialWorkers(const std::vector<std::string>& addrs) {
  std::vector<RemoteShard> workers;
  for (size_t s = 0; s < addrs.size(); ++s) {
    std::string error;
    Socket sock = ConnectWithRetry(addrs[s], 250, &error);
    EXPECT_TRUE(sock.valid()) << error;
    workers.emplace_back(static_cast<uint32_t>(s), std::move(sock), 0);
  }
  return workers;
}

Coordinator::WorkerSpawner RedialSpawner(std::vector<std::string> addrs) {
  return [addrs](uint32_t shard, RemoteShard* out,
                 std::string* error) -> bool {
    if (shard >= addrs.size()) {
      *error = "no address for shard " + std::to_string(shard);
      return false;
    }
    Socket sock = ConnectWithRetry(addrs[shard], 250, error);
    if (!sock.valid()) return false;
    *out = RemoteShard(shard, std::move(sock), 0);
    return true;
  };
}

// Parses "worker N: tail|full resync, E entries, B bytes".
struct ResyncLine {
  bool tail = false;
  bool full = false;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

ResyncLine ParseResyncLine(const std::string& line) {
  ResyncLine parsed;
  parsed.tail = line.find("tail resync") != std::string::npos;
  parsed.full = line.find("full resync") != std::string::npos;
  size_t comma = line.find(", ");
  if (comma != std::string::npos) {
    unsigned long long entries = 0;
    unsigned long long bytes = 0;
    if (std::sscanf(line.c_str() + comma, ", %llu entries, %llu bytes",
                    &entries, &bytes) == 2) {
      parsed.entries = entries;
      parsed.bytes = bytes;
    }
  }
  return parsed;
}

// The mutation sequence every phase of the test serves: a load, a routed
// insert, a marginal update, a distributable chain view, and a broadcast
// delete -- each producing WAL records and shard-log entries.
void MutateAll(Coordinator* coordinator) {
  Schema schema({{"item", CellType::kString}, {"price", CellType::kInt}});
  std::vector<std::vector<Cell>> rows = {
      {Cell(std::string("hammer")), Cell(int64_t{1299})},
      {Cell(std::string("wrench")), Cell(int64_t{450})},
      {Cell(std::string("shovel")), Cell(int64_t{2399})},
      {Cell(std::string("rake")), Cell(int64_t{1799})},
      {Cell(std::string("whisk")), Cell(int64_t{220})},
  };
  coordinator->AddTupleIndependentTable("items", schema, rows,
                                        {0.9, 0.7, 0.6, 0.5, 0.95});
  coordinator->InsertTuple(
      "items", {Cell(std::string("drill")), Cell(int64_t{1450})}, 0.7);
  coordinator->UpdateProbability(1, 0.45);
  ParseResult parsed =
      ParseQuery("SELECT * FROM items WHERE price >= 1000");
  ASSERT_TRUE(parsed.ok());
  std::vector<std::string> warnings;
  coordinator->RegisterView("pricey", std::move(parsed.query), &warnings);
  EXPECT_TRUE(warnings.empty());
  coordinator->DeleteTuple("items", Cell(std::string("rake")));
}

QueryRun RunChain(Coordinator* coordinator) {
  ParseResult parsed =
      ParseQuery("SELECT * FROM items WHERE price >= 1000");
  EXPECT_TRUE(parsed.ok());
  return coordinator->Run(*parsed.query);
}

TEST(ServeDurabilityTest, CoordinatorRestartTailResyncsSurvivingWorkers) {
  TempDir dir;
  const std::string store = dir.path() + "/store";
  const std::vector<std::string> addrs = {dir.path() + "/w0.sock",
                                          dir.path() + "/w1.sock"};
  std::vector<pid_t> worker_pids;
  for (const std::string& a : addrs) {
    pid_t pid = StartStandaloneWorker(a);
    ASSERT_GT(pid, 0);
    worker_pids.push_back(pid);
  }

  DurableConfig dcfg;
  dcfg.dir = store;
  dcfg.sync = true;

  // Phase A: a live durable front-end serves mutations, then "crashes"
  // (session and coordinator destroyed; worker processes keep running and
  // keep their applied state).
  std::string before_text;
  std::vector<double> before_probs;
  std::vector<double> before_view_probs;
  {
    auto coordinator = std::make_unique<Coordinator>(
        SemiringKind::kBool, DialWorkers(addrs), RedialSpawner(addrs));
    std::string error;
    std::unique_ptr<DurableSession> session =
        DurableSession::CreateAttached(dcfg, coordinator.get(), &error);
    ASSERT_NE(session, nullptr) << error;
    MutateAll(coordinator.get());
    QueryRun run = RunChain(coordinator.get());
    ASSERT_TRUE(run.distributed);
    ASSERT_TRUE(run.warnings.empty());
    before_text = run.text;
    before_probs = run.probabilities;
    before_view_probs = coordinator->PrintView("pricey").probabilities;
    session.reset();      // Crash: no checkpoint, no worker shutdown.
    coordinator.reset();  // Connections drop; workers await a reconnect.
  }

  // Phase B: a fresh front-end recovers the WAL and reconciles. Every
  // worker kept its state, so the chain proof must pass and the tail must
  // be empty -- no partition bytes retransferred.
  {
    auto coordinator = std::make_unique<Coordinator>(
        SemiringKind::kBool, DialWorkers(addrs), RedialSpawner(addrs));
    std::string error;
    std::unique_ptr<DurableSession> session =
        DurableSession::RecoverAttached(dcfg, coordinator.get(), &error);
    ASSERT_NE(session, nullptr) << error;
    EXPECT_TRUE(session->stats().recovered);
    std::vector<std::string> lines;
    coordinator->ReconcileWorkers(&lines);
    ASSERT_EQ(lines.size(), addrs.size());
    for (const std::string& line : lines) {
      ResyncLine parsed = ParseResyncLine(line);
      EXPECT_TRUE(parsed.tail) << line;
      EXPECT_FALSE(parsed.full) << line;
      EXPECT_EQ(parsed.entries, 0u) << line;
      EXPECT_EQ(parsed.bytes, 0u) << line;
    }

    QueryRun run = RunChain(coordinator.get());
    EXPECT_TRUE(run.distributed);
    EXPECT_TRUE(run.warnings.empty());
    EXPECT_EQ(run.text, before_text);
    EXPECT_EQ(run.probabilities, before_probs);
    EXPECT_EQ(coordinator->PrintView("pricey").probabilities,
              before_view_probs);

    // The recovered session keeps serving durable mutations.
    coordinator->InsertTuple(
        "items", {Cell(std::string("saw")), Cell(int64_t{1700})}, 0.65);
    QueryRun after = RunChain(coordinator.get());
    EXPECT_TRUE(after.distributed);
    EXPECT_EQ(after.probabilities.size(), before_probs.size() + 1);
    session.reset();
    coordinator.reset();
  }

  // Phase C: blank replacement workers (fresh processes, fresh addresses)
  // cannot pass the chain proof and must take the full rebuild -- the
  // expensive path the tail replay avoided, visible in entries/bytes.
  const std::vector<std::string> fresh_addrs = {dir.path() + "/f0.sock",
                                                dir.path() + "/f1.sock"};
  std::vector<pid_t> fresh_pids;
  for (const std::string& a : fresh_addrs) {
    pid_t pid = StartStandaloneWorker(a);
    ASSERT_GT(pid, 0);
    fresh_pids.push_back(pid);
  }
  {
    auto coordinator = std::make_unique<Coordinator>(
        SemiringKind::kBool, DialWorkers(fresh_addrs),
        RedialSpawner(fresh_addrs));
    std::string error;
    std::unique_ptr<DurableSession> session =
        DurableSession::RecoverAttached(dcfg, coordinator.get(), &error);
    ASSERT_NE(session, nullptr) << error;
    std::vector<std::string> lines;
    coordinator->ReconcileWorkers(&lines);
    ASSERT_EQ(lines.size(), fresh_addrs.size());
    uint64_t full_entries = 0;
    uint64_t full_bytes = 0;
    for (const std::string& line : lines) {
      ResyncLine parsed = ParseResyncLine(line);
      EXPECT_TRUE(parsed.full) << line;
      EXPECT_GT(parsed.entries, 0u) << line;
      full_entries += parsed.entries;
      full_bytes += parsed.bytes;
    }
    // The saving the WAL-shipping tail path buys: surviving workers
    // resynced with zero shipped entries/bytes; blank ones need the whole
    // consolidated state again.
    EXPECT_GT(full_entries, 0u);
    EXPECT_GT(full_bytes, 0u);

    QueryRun run = RunChain(coordinator.get());
    EXPECT_TRUE(run.distributed);
    EXPECT_TRUE(run.warnings.empty());
    // Phase B appended one row on top of the phase-A state.
    EXPECT_EQ(run.probabilities.size(), before_probs.size() + 1);

    coordinator->Shutdown();  // Fresh workers exit cleanly.
    session.reset();
    coordinator.reset();
  }

  for (pid_t pid : fresh_pids) {
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
  }
  // The original workers were never shut down (they model survivors of the
  // phase-B front-end going away for good).
  for (pid_t pid : worker_pids) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
  }
}

TEST(ServeDurabilityTest, CheckpointKeepsSurvivorsOnTheTailPath) {
  // A checkpoint rotates the WAL, so a later recovery replays only the
  // post-checkpoint tail -- and the snapshot records each shard log's
  // (lsn, chain) rotation point so the rebuilt logs sit at the positions
  // the surviving workers are already at. Without that, every recovery
  // after a checkpoint would force a full partition retransfer.
  TempDir dir;
  const std::string store = dir.path() + "/store";
  const std::vector<std::string> addrs = {dir.path() + "/w0.sock",
                                          dir.path() + "/w1.sock"};
  std::vector<pid_t> worker_pids;
  for (const std::string& a : addrs) {
    pid_t pid = StartStandaloneWorker(a);
    ASSERT_GT(pid, 0);
    worker_pids.push_back(pid);
  }

  DurableConfig dcfg;
  dcfg.dir = store;
  dcfg.sync = true;

  // Phase A: mutate, checkpoint mid-history, mutate some more, crash.
  std::string before_text;
  std::vector<double> before_probs;
  {
    auto coordinator = std::make_unique<Coordinator>(
        SemiringKind::kBool, DialWorkers(addrs), RedialSpawner(addrs));
    std::string error;
    std::unique_ptr<DurableSession> session =
        DurableSession::CreateAttached(dcfg, coordinator.get(), &error);
    ASSERT_NE(session, nullptr) << error;
    MutateAll(coordinator.get());
    ASSERT_TRUE(session->Checkpoint(&error)) << error;
    // Post-checkpoint traffic: lives only in the fresh WAL's tail.
    coordinator->InsertTuple(
        "items", {Cell(std::string("saw")), Cell(int64_t{1700})}, 0.65);
    QueryRun run = RunChain(coordinator.get());
    ASSERT_TRUE(run.distributed);
    before_text = run.text;
    before_probs = run.probabilities;
    session.reset();
    coordinator.reset();
  }

  // Phase B: recover. The snapshot rebuilds pre-checkpoint state and
  // rebases the shard logs at the recorded tails; the WAL tail replay
  // appends the post-checkpoint entries on top. The surviving workers
  // applied all of it live, so the chain proof must pass with an empty
  // tail for every shard.
  {
    auto coordinator = std::make_unique<Coordinator>(
        SemiringKind::kBool, DialWorkers(addrs), RedialSpawner(addrs));
    std::string error;
    std::unique_ptr<DurableSession> session =
        DurableSession::RecoverAttached(dcfg, coordinator.get(), &error);
    ASSERT_NE(session, nullptr) << error;
    EXPECT_TRUE(session->stats().recovered);
    std::vector<std::string> lines;
    coordinator->ReconcileWorkers(&lines);
    ASSERT_EQ(lines.size(), addrs.size());
    for (const std::string& line : lines) {
      ResyncLine parsed = ParseResyncLine(line);
      EXPECT_TRUE(parsed.tail) << line;
      EXPECT_FALSE(parsed.full) << line;
      EXPECT_EQ(parsed.entries, 0u) << line;
      EXPECT_EQ(parsed.bytes, 0u) << line;
    }

    QueryRun run = RunChain(coordinator.get());
    EXPECT_TRUE(run.distributed);
    EXPECT_TRUE(run.warnings.empty());
    EXPECT_EQ(run.text, before_text);
    EXPECT_EQ(run.probabilities, before_probs);

    // Still serving durably after the checkpointed recovery.
    coordinator->InsertTuple(
        "items", {Cell(std::string("axe")), Cell(int64_t{2100})}, 0.8);
    QueryRun after = RunChain(coordinator.get());
    EXPECT_TRUE(after.distributed);
    EXPECT_EQ(after.probabilities.size(), before_probs.size() + 1);

    coordinator->Shutdown();
    session.reset();
    coordinator.reset();
  }

  for (pid_t pid : worker_pids) {
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
  }
}

}  // namespace
}  // namespace pvcdb
