#include "src/expr/eval.h"

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(EvalTest, VariablesAndConstants) {
  ExprPool pool(SemiringKind::kBool);
  std::unordered_map<VarId, int64_t> nu = {{0, 1}, {1, 0}};
  EXPECT_EQ(EvalExpr(pool, pool.Var(0), nu), 1);
  EXPECT_EQ(EvalExpr(pool, pool.Var(1), nu), 0);
  EXPECT_EQ(EvalExpr(pool, pool.ConstS(1), nu), 1);
  EXPECT_EQ(EvalExpr(pool, pool.ConstM(AggKind::kMin, 42), nu), 42);
}

TEST(EvalTest, MissingVariableThrows) {
  ExprPool pool(SemiringKind::kBool);
  std::unordered_map<VarId, int64_t> nu;
  EXPECT_THROW(EvalExpr(pool, pool.Var(0), nu), CheckError);
}

TEST(EvalTest, BooleanSumAndProduct) {
  ExprPool pool(SemiringKind::kBool);
  ExprId e = pool.MulS(pool.Var(0), pool.AddS(pool.Var(1), pool.Var(2)));
  EXPECT_EQ(EvalExpr(pool, e, {{0u, int64_t{1}}, {1u, int64_t{0}}, {2u, int64_t{1}}}), 1);
  EXPECT_EQ(EvalExpr(pool, e, {{0u, int64_t{1}}, {1u, int64_t{0}}, {2u, int64_t{0}}}), 0);
  EXPECT_EQ(EvalExpr(pool, e, {{0u, int64_t{0}}, {1u, int64_t{1}}, {2u, int64_t{1}}}), 0);
}

TEST(EvalTest, ExampleSixMinSemimodule) {
  // alpha = xy (x) 5 +min (x + z) (x) 10 with x=2, y=3, z=0 evaluates to 5.
  ExprPool pool(SemiringKind::kNatural);
  ExprId x = pool.Var(0);
  ExprId y = pool.Var(1);
  ExprId z = pool.Var(2);
  ExprId alpha = pool.AddM(
      AggKind::kMin,
      pool.Tensor(pool.MulS(x, y), pool.ConstM(AggKind::kMin, 5)),
      pool.Tensor(pool.AddS(x, z), pool.ConstM(AggKind::kMin, 10)));
  EXPECT_EQ(EvalExpr(pool, alpha, {{0u, int64_t{2}}, {1u, int64_t{3}}, {2u, int64_t{0}}}), 5);
  // All variables to 0: the answer is 0_M = +inf for MIN.
  EXPECT_EQ(EvalExpr(pool, alpha, {{0u, int64_t{0}}, {1u, int64_t{0}}, {2u, int64_t{0}}}),
            kPosInf);
}

TEST(EvalTest, ExampleFiveSumAggregation) {
  // alpha = z1 (x) 4 + z2 (x) 8 + z3 (x) 7 + z4 (x) 6 -> 24 for SUM over N
  // with z1, z2 = 2 and z3, z4 = 0.
  ExprPool pool(SemiringKind::kNatural);
  std::vector<int64_t> weights = {4, 8, 7, 6};
  std::vector<ExprId> terms;
  for (int i = 0; i < 4; ++i) {
    terms.push_back(pool.Tensor(pool.Var(i),
                                pool.ConstM(AggKind::kSum, weights[i])));
  }
  ExprId alpha = pool.AddM(AggKind::kSum, terms);
  EXPECT_EQ(
      EvalExpr(pool, alpha,
               {{0u, int64_t{2}}, {1u, int64_t{2}}, {2u, int64_t{0}}, {3u, int64_t{0}}}),
      24);
}

TEST(EvalTest, ExampleFiveMinWithBooleanSemiring) {
  // Same alpha under B with z1 = false, rest true: MIN = 6.
  ExprPool pool(SemiringKind::kBool);
  std::vector<int64_t> weights = {4, 8, 7, 6};
  std::vector<ExprId> terms;
  for (int i = 0; i < 4; ++i) {
    terms.push_back(pool.Tensor(pool.Var(i),
                                pool.ConstM(AggKind::kMin, weights[i])));
  }
  ExprId alpha = pool.AddM(AggKind::kMin, terms);
  EXPECT_EQ(
      EvalExpr(pool, alpha,
               {{0u, int64_t{0}}, {1u, int64_t{1}}, {2u, int64_t{1}}, {3u, int64_t{1}}}),
      6);
}

TEST(EvalTest, ConditionalExpressionEvaluatesToSemiring) {
  // Example 1's valuation nu1: [10 +max 11 <= 50] = true.
  ExprPool pool(SemiringKind::kBool);
  ExprId alpha = pool.AddM(
      AggKind::kMax,
      pool.Tensor(pool.Var(0), pool.ConstM(AggKind::kMax, 10)),
      pool.Tensor(pool.Var(1), pool.ConstM(AggKind::kMax, 11)));
  ExprId cond = pool.Cmp(CmpOp::kLe, alpha, pool.ConstM(AggKind::kMax, 50));
  EXPECT_EQ(EvalExpr(pool, cond, {{0u, int64_t{1}}, {1u, int64_t{1}}}), 1);
  // With a 60-valued term present the condition fails.
  ExprId alpha2 = pool.AddM(
      AggKind::kMax, alpha,
      pool.Tensor(pool.Var(2), pool.ConstM(AggKind::kMax, 60)));
  ExprId cond2 = pool.Cmp(CmpOp::kLe, alpha2, pool.ConstM(AggKind::kMax, 50));
  EXPECT_EQ(EvalExpr(pool, cond2, {{0u, int64_t{1}}, {1u, int64_t{1}}, {2u, int64_t{1}}}),
            0);
}

TEST(EvalTest, ComparisonOfSemiringExpressions) {
  ExprPool pool(SemiringKind::kNatural);
  ExprId cmp = pool.Cmp(CmpOp::kNe, pool.AddS(pool.Var(0), pool.Var(1)),
                        pool.ConstS(0));
  EXPECT_EQ(EvalExpr(pool, cmp, {{0u, int64_t{0}}, {1u, int64_t{0}}}), 0);
  EXPECT_EQ(EvalExpr(pool, cmp, {{0u, int64_t{0}}, {1u, int64_t{3}}}), 1);
}

TEST(EvalTest, ValuationIsCanonicalisedIntoCarrier) {
  // Under B, a raw valuation value 7 acts as true.
  ExprPool pool(SemiringKind::kBool);
  EXPECT_EQ(EvalExpr(pool, pool.Var(0), {{0u, int64_t{7}}}), 1);
}

TEST(EvalTest, HomomorphismProperty) {
  // nu(a + b) = nu(a) + nu(b) and nu(a * b) = nu(a) * nu(b) over N.
  ExprPool pool(SemiringKind::kNatural);
  ExprId a = pool.Var(0);
  ExprId b = pool.Var(1);
  std::unordered_map<VarId, int64_t> nu = {{0, 6}, {1, 7}};
  EXPECT_EQ(EvalExpr(pool, pool.AddS(a, b), nu), 13);
  EXPECT_EQ(EvalExpr(pool, pool.MulS(a, b), nu), 42);
}

}  // namespace
}  // namespace pvcdb
