// Property tests: for randomly generated expressions across semirings,
// monoids, and shapes, the d-tree pipeline (Algorithm 1 + Theorem 2
// bottom-up convolution) must produce exactly the distribution obtained by
// naive possible-world enumeration (Proposition 4).

#include <gtest/gtest.h>

#include <tuple>

#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/naive/possible_worlds.h"
#include "src/util/rng.h"
#include "src/workload/random_expr.h"

namespace pvcdb {
namespace {

// Generates a random semiring expression over `num_vars` Boolean variables:
// a random DNF with `clauses` clauses of up to `width` literals.
ExprId RandomSemiringExpr(ExprPool* pool, const std::vector<VarId>& vars,
                          int clauses, int width, Rng* rng) {
  std::vector<ExprId> clause_exprs;
  for (int c = 0; c < clauses; ++c) {
    int k = static_cast<int>(rng->UniformInt(1, width));
    std::vector<int> picks =
        rng->SampleDistinct(static_cast<int>(vars.size()),
                            std::min<int>(k, vars.size()));
    std::vector<ExprId> lits;
    for (int idx : picks) lits.push_back(pool->Var(vars[idx]));
    clause_exprs.push_back(pool->MulS(std::move(lits)));
  }
  return pool->AddS(std::move(clause_exprs));
}

void ExpectMatchesEnumeration(ExprPool* pool, const VariableTable& vars,
                              ExprId e, const CompileOptions& options) {
  DTree tree = CompileToDTree(pool, &vars, e, options);
  Distribution compiled =
      ComputeDistribution(tree, vars, pool->semiring());
  Distribution expected = EnumerateDistribution(*pool, vars, e);
  EXPECT_TRUE(compiled.ApproxEquals(expected, 1e-9))
      << "seed mismatch: d-tree " << compiled.ToString() << " vs naive "
      << expected.ToString();
}

class SemiringPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SemiringPropertyTest, BooleanDnfMatchesEnumeration) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<VarId> ids;
  int num_vars = static_cast<int>(rng.UniformInt(2, 8));
  for (int i = 0; i < num_vars; ++i) {
    ids.push_back(vars.AddBernoulli(rng.UniformDouble(0.05, 0.95)));
  }
  ExprId e = RandomSemiringExpr(&pool, ids, 4, 3, &rng);
  ExpectMatchesEnumeration(&pool, vars, e, CompileOptions());
}

TEST_P(SemiringPropertyTest, NaturalSemiringMatchesEnumeration) {
  uint64_t seed = static_cast<uint64_t>(GetParam()) + 1000;
  Rng rng(seed);
  ExprPool pool(SemiringKind::kNatural);
  VariableTable vars;
  std::vector<VarId> ids;
  int num_vars = static_cast<int>(rng.UniformInt(2, 6));
  for (int i = 0; i < num_vars; ++i) {
    // Integer-valued variables with small supports (bag semantics).
    std::vector<Distribution::Entry> entries;
    int support = static_cast<int>(rng.UniformInt(2, 3));
    double mass = 1.0;
    for (int s = 0; s < support; ++s) {
      double p = s + 1 == support ? mass : mass * rng.UniformDouble(0.2, 0.8);
      entries.push_back({rng.UniformInt(0, 3), p});
      mass -= p;
    }
    ids.push_back(vars.Add(Distribution::FromPairs(entries)));
  }
  ExprId e = RandomSemiringExpr(&pool, ids, 3, 2, &rng);
  ExpectMatchesEnumeration(&pool, vars, e, CompileOptions());
}

TEST_P(SemiringPropertyTest, ShannonOnlyAblationAgrees) {
  uint64_t seed = static_cast<uint64_t>(GetParam()) + 2000;
  Rng rng(seed);
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<VarId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(vars.AddBernoulli(rng.UniformDouble(0.1, 0.9)));
  }
  ExprId e = RandomSemiringExpr(&pool, ids, 3, 3, &rng);
  CompileOptions shannon_only;
  shannon_only.enable_independence = false;
  shannon_only.enable_factorization = false;
  ExpectMatchesEnumeration(&pool, vars, e, shannon_only);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiringPropertyTest, ::testing::Range(0, 20));

class SemimodulePropertyTest
    : public ::testing::TestWithParam<std::tuple<AggKind, int>> {};

TEST_P(SemimodulePropertyTest, AggregateComparisonMatchesEnumeration) {
  auto [agg, seed] = GetParam();
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  params.num_vars = 6;
  params.terms_left = 5;
  params.clauses_per_term = 2;
  params.literals_per_clause = 2;
  params.max_value = 20;
  params.constant = 10;
  params.theta = CmpOp::kLe;
  params.agg_left = agg;
  GeneratedExpr gen = GenerateComparisonExpr(&pool, &vars, params,
                                             static_cast<uint64_t>(seed));
  ExpectMatchesEnumeration(&pool, vars, gen.comparison, CompileOptions());
}

TEST_P(SemimodulePropertyTest, AggregateValueDistributionMatches) {
  auto [agg, seed] = GetParam();
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  params.num_vars = 5;
  params.terms_left = 4;
  params.clauses_per_term = 2;
  params.literals_per_clause = 2;
  params.max_value = 8;
  params.agg_left = agg;
  GeneratedExpr gen = GenerateComparisonExpr(&pool, &vars, params,
                                             static_cast<uint64_t>(seed) + 77);
  // Distribution of the raw semimodule sum (not just the comparison).
  ExpectMatchesEnumeration(&pool, vars, gen.lhs, CompileOptions());
}

INSTANTIATE_TEST_SUITE_P(
    AggsAndSeeds, SemimodulePropertyTest,
    ::testing::Combine(::testing::Values(AggKind::kMin, AggKind::kMax,
                                         AggKind::kSum, AggKind::kCount),
                       ::testing::Range(0, 8)));

class TwoSidedPropertyTest
    : public ::testing::TestWithParam<std::tuple<AggKind, AggKind, int>> {};

TEST_P(TwoSidedPropertyTest, MixedMonoidComparisonMatchesEnumeration) {
  auto [agg_l, agg_r, seed] = GetParam();
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  params.num_vars = 6;
  params.terms_left = 3;
  params.terms_right = 3;
  params.clauses_per_term = 2;
  params.literals_per_clause = 2;
  params.max_value = 15;
  params.theta = CmpOp::kLe;
  params.agg_left = agg_l;
  params.agg_right = agg_r;
  GeneratedExpr gen = GenerateComparisonExpr(&pool, &vars, params,
                                             static_cast<uint64_t>(seed));
  ExpectMatchesEnumeration(&pool, vars, gen.comparison, CompileOptions());
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, TwoSidedPropertyTest,
    ::testing::Combine(::testing::Values(AggKind::kMin, AggKind::kMax),
                       ::testing::Values(AggKind::kMax, AggKind::kSum),
                       ::testing::Range(0, 5)));

// All comparison operators against all monoids, fixed seed batch.
class OperatorSweepTest
    : public ::testing::TestWithParam<std::tuple<AggKind, CmpOp>> {};

TEST_P(OperatorSweepTest, ComparisonOperatorsMatchEnumeration) {
  auto [agg, op] = GetParam();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    ExprPool pool(SemiringKind::kBool);
    VariableTable vars;
    ExprGenParams params;
    params.num_vars = 5;
    params.terms_left = 4;
    params.clauses_per_term = 2;
    params.literals_per_clause = 2;
    params.max_value = 12;
    params.constant = 6;
    params.theta = op;
    params.agg_left = agg;
    GeneratedExpr gen = GenerateComparisonExpr(&pool, &vars, params, seed);
    ExpectMatchesEnumeration(&pool, vars, gen.comparison, CompileOptions());
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsTimesAggs, OperatorSweepTest,
    ::testing::Combine(::testing::Values(AggKind::kMin, AggKind::kMax,
                                         AggKind::kSum, AggKind::kCount),
                       ::testing::Values(CmpOp::kEq, CmpOp::kNe, CmpOp::kLe,
                                         CmpOp::kGe, CmpOp::kLt,
                                         CmpOp::kGt)));

// Pruning and clamping off/on must agree with enumeration too.
class KnobSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(KnobSweepTest, AllKnobCombinationsAgree) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  params.num_vars = 6;
  params.terms_left = 5;
  params.clauses_per_term = 2;
  params.literals_per_clause = 2;
  params.max_value = 10;
  params.constant = 5;
  params.theta = CmpOp::kLe;
  params.agg_left = AggKind::kSum;
  GeneratedExpr gen = GenerateComparisonExpr(&pool, &vars, params, seed);
  Distribution expected = EnumerateDistribution(pool, vars, gen.comparison);
  for (bool pruning : {false, true}) {
    for (bool clamping : {false, true}) {
      CompileOptions copts;
      copts.enable_pruning = pruning;
      DTree tree = CompileToDTree(&pool, &vars, gen.comparison, copts);
      ProbabilityOptions popts;
      popts.enable_sum_clamping = clamping;
      Distribution d =
          ComputeDistribution(tree, vars, pool.semiring(), popts);
      EXPECT_TRUE(d.ApproxEquals(expected, 1e-9))
          << "pruning=" << pruning << " clamping=" << clamping;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnobSweepTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace pvcdb
