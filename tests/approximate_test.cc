#include "src/dtree/approximate.h"

#include <gtest/gtest.h>

#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/naive/possible_worlds.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/workload/random_expr.h"

namespace pvcdb {
namespace {

double ExactNonZero(ExprPool* pool, const VariableTable& vars, ExprId e) {
  DTree t = CompileToDTree(pool, &vars, e);
  return ProbabilityNonZero(t, vars, pool->semiring());
}

TEST(ApproximateTest, ExactOnTrivialExpressions) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.3);
  ProbabilityBounds b = ApproximateProbability(&pool, vars, pool.Var(x));
  EXPECT_DOUBLE_EQ(b.low, 0.3);
  EXPECT_DOUBLE_EQ(b.high, 0.3);
  ProbabilityBounds c = ApproximateProbability(&pool, vars, pool.ConstS(1));
  EXPECT_DOUBLE_EQ(c.low, 1.0);
  EXPECT_DOUBLE_EQ(c.high, 1.0);
}

TEST(ApproximateTest, ZeroBudgetGivesTrivialBounds) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.3);
  ApproximateOptions options;
  options.node_budget = 0;
  ProbabilityBounds b =
      ApproximateProbability(&pool, vars, pool.Var(x), options);
  EXPECT_DOUBLE_EQ(b.low, 0.0);
  EXPECT_DOUBLE_EQ(b.high, 1.0);
}

TEST(ApproximateTest, LargeBudgetMatchesExact) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.3);
  VarId y = vars.AddBernoulli(0.6);
  VarId z = vars.AddBernoulli(0.5);
  ExprId e = pool.AddS(pool.MulS(pool.Var(x), pool.Var(y)), pool.Var(z));
  ProbabilityBounds b = ApproximateProbability(&pool, vars, e);
  double exact = ExactNonZero(&pool, vars, e);
  EXPECT_NEAR(b.low, exact, 1e-12);
  EXPECT_NEAR(b.high, exact, 1e-12);
}

TEST(ApproximateTest, BoundsAlwaysContainExactValue) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    ExprPool pool(SemiringKind::kBool);
    VariableTable vars;
    std::vector<VarId> ids;
    for (int i = 0; i < 7; ++i) {
      ids.push_back(vars.AddBernoulli(rng.UniformDouble(0.1, 0.9)));
    }
    // Random DNF, possibly hard (shared variables).
    std::vector<ExprId> clauses;
    for (int c = 0; c < 5; ++c) {
      std::vector<int> picks = rng.SampleDistinct(7, 2);
      clauses.push_back(
          pool.MulS(pool.Var(ids[picks[0]]), pool.Var(ids[picks[1]])));
    }
    ExprId e = pool.AddS(clauses);
    double exact = ExactNonZero(&pool, vars, e);
    for (size_t budget : {0u, 1u, 2u, 4u, 8u, 16u, 64u, 4096u}) {
      ApproximateOptions options;
      options.node_budget = budget;
      ProbabilityBounds b = ApproximateProbability(&pool, vars, e, options);
      EXPECT_LE(b.low, exact + 1e-9) << "budget " << budget;
      EXPECT_GE(b.high, exact - 1e-9) << "budget " << budget;
      EXPECT_LE(b.low, b.high + 1e-12);
    }
  }
}

TEST(ApproximateTest, WidthShrinksWithBudget) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<VarId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(vars.AddBernoulli(0.5));
  // Ring expression: genuinely needs Shannon expansion.
  std::vector<ExprId> terms;
  for (int i = 0; i < 10; ++i) {
    terms.push_back(pool.MulS(pool.Var(ids[i]), pool.Var(ids[(i + 1) % 10])));
  }
  ExprId e = pool.AddS(terms);
  double prev_width = 1.1;
  for (size_t budget : {1u, 8u, 64u, 512u, 65536u}) {
    ApproximateOptions options;
    options.node_budget = budget;
    ProbabilityBounds b = ApproximateProbability(&pool, vars, e, options);
    EXPECT_LE(b.Width(), prev_width + 1e-9);
    prev_width = b.Width();
  }
  EXPECT_NEAR(prev_width, 0.0, 1e-9) << "full budget converges exactly";
}

TEST(ApproximateTest, ApproximateToWidthReachesEpsilon) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<VarId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(vars.AddBernoulli(0.5));
  std::vector<ExprId> terms;
  for (int i = 0; i < 8; ++i) {
    terms.push_back(pool.MulS(pool.Var(ids[i]), pool.Var(ids[(i + 1) % 8])));
  }
  ExprId e = pool.AddS(terms);
  ProbabilityBounds b = ApproximateToWidth(&pool, vars, e, 0.01);
  EXPECT_LE(b.Width(), 0.01);
  double exact = ExactNonZero(&pool, vars, e);
  EXPECT_LE(b.low, exact + 1e-9);
  EXPECT_GE(b.high, exact - 1e-9);
}

TEST(ApproximateTest, HandlesAggregateComparisons) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  params.num_vars = 5;
  params.terms_left = 4;
  params.clauses_per_term = 2;
  params.literals_per_clause = 2;
  params.max_value = 10;
  params.constant = 5;
  params.theta = CmpOp::kLe;
  params.agg_left = AggKind::kMin;
  GeneratedExpr gen = GenerateComparisonExpr(&pool, &vars, params, 9);
  double exact = EnumerateDistribution(pool, vars, gen.comparison).ProbOf(1);
  ProbabilityBounds b = ApproximateToWidth(&pool, vars, gen.comparison, 1e-9);
  EXPECT_NEAR(b.Midpoint(), exact, 1e-6);
}

TEST(ApproximateTest, RejectsMonoidSortedExpressions) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  ExprId alpha = pool.Tensor(pool.Var(x), pool.ConstM(AggKind::kMin, 3));
  EXPECT_THROW(ApproximateProbability(&pool, vars, alpha), CheckError);
}

TEST(ApproximateTest, RejectsNaturalSemiring) {
  ExprPool pool(SemiringKind::kNatural);
  VariableTable vars;
  VarId x = vars.Add(Distribution::FromPairs({{0, 0.5}, {2, 0.5}}));
  EXPECT_THROW(ApproximateProbability(&pool, vars, pool.Var(x)), CheckError);
}

}  // namespace
}  // namespace pvcdb
