// Deterministic crash injection for the durability tests: a FileSystem
// shim that persists exactly N bytes into matching files and then fails
// every further write. Because PosixWritableFile semantics allow partial
// writes, "fail after N bytes" models a process dying mid-write: the first
// N bytes of the record are on disk, the rest never happen, and the
// engine's mutation throws (LogWalRecord's PVC_CHECK) exactly like a real
// I/O failure would. Sweeping N across every WAL record boundary +-1 byte
// drives recovery through every torn-tail shape a crash can produce.

#ifndef PVCDB_TESTS_CRASH_INJECTION_H_
#define PVCDB_TESTS_CRASH_INJECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/io.h"

namespace pvcdb {

class FaultInjectingFileSystem;

/// Wraps a real WritableFile; writes draw from the owning file system's
/// shared byte budget. Once the budget is exhausted, the remaining bytes of
/// the current write -- and every later write -- are dropped and reported
/// as failures.
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(std::unique_ptr<WritableFile> base,
                     FaultInjectingFileSystem* fs)
      : base_(std::move(base)), fs_(fs) {}

  bool Append(const void* data, size_t n) override;
  bool Sync() override { return base_->Sync(); }
  bool Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingFileSystem* fs_;
};

/// Delegates to `base` (DefaultFileSystem when null), injecting the byte
/// budget into every file whose path contains `match`. Non-matching files
/// (snapshots, when sweeping the WAL) write through untouched.
class FaultInjectingFileSystem : public FileSystem {
 public:
  FaultInjectingFileSystem(FileSystem* base, std::string match,
                           uint64_t budget)
      : base_(base != nullptr ? base : DefaultFileSystem()),
        match_(std::move(match)),
        budget_(budget) {}

  /// True once a write has hit the budget (the simulated crash happened).
  bool tripped() const { return tripped_; }
  uint64_t budget() const { return budget_; }

  std::unique_ptr<WritableFile> OpenForAppend(const std::string& path,
                                              std::string* error) override {
    std::unique_ptr<WritableFile> base = base_->OpenForAppend(path, error);
    if (base == nullptr) return nullptr;
    if (path.find(match_) == std::string::npos) return base;
    return std::make_unique<FaultInjectingFile>(std::move(base), this);
  }

  bool ReadFile(const std::string& path, std::string* contents,
                std::string* error) override {
    return base_->ReadFile(path, contents, error);
  }
  bool Truncate(const std::string& path, uint64_t size,
                std::string* error) override {
    return base_->Truncate(path, size, error);
  }
  bool Rename(const std::string& from, const std::string& to,
              std::string* error) override {
    return base_->Rename(from, to, error);
  }
  bool Remove(const std::string& path, std::string* error) override {
    return base_->Remove(path, error);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  bool CreateDir(const std::string& path, std::string* error) override {
    return base_->CreateDir(path, error);
  }
  std::vector<std::string> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }

 private:
  friend class FaultInjectingFile;

  FileSystem* base_;
  std::string match_;
  uint64_t budget_;
  bool tripped_ = false;
};

inline bool FaultInjectingFile::Append(const void* data, size_t n) {
  if (fs_->tripped_ || fs_->budget_ < n) {
    // The crash: persist whatever fits (a torn write), then fail this and
    // every later append.
    size_t persisted = fs_->tripped_ ? 0 : static_cast<size_t>(fs_->budget_);
    if (persisted > 0) base_->Append(data, persisted);
    fs_->budget_ = 0;
    fs_->tripped_ = true;
    return false;
  }
  fs_->budget_ -= n;
  return base_->Append(data, n);
}

}  // namespace pvcdb

#endif  // PVCDB_TESTS_CRASH_INJECTION_H_
