#include "src/table/pvc_table.h"

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace pvcdb {
namespace {

class PvcTableTest : public ::testing::Test {
 protected:
  PvcTableTest()
      : pool_(SemiringKind::kBool),
        table_(Schema({{"sid", CellType::kInt},
                       {"shop", CellType::kString}})) {}

  ExprPool pool_;
  PvcTable table_;
};

TEST_F(PvcTableTest, AddRowsAndAccess) {
  table_.AddRow({Cell(int64_t{1}), Cell("M&S")}, pool_.Var(0));
  table_.AddRow({Cell(int64_t{2}), Cell("Gap")}, pool_.Var(1));
  EXPECT_EQ(table_.NumRows(), 2u);
  EXPECT_EQ(table_.CellAt(0, "shop").AsString(), "M&S");
  EXPECT_EQ(table_.row(1).annotation, pool_.Var(1));
  EXPECT_THROW(table_.row(2), CheckError);
}

TEST_F(PvcTableTest, ArityChecked) {
  EXPECT_THROW(table_.AddRow({Cell(int64_t{1})}, pool_.Var(0)), CheckError);
}

TEST_F(PvcTableTest, AnnotationRequired) {
  Row r;
  r.cells = {Cell(int64_t{1}), Cell("M&S")};
  EXPECT_THROW(table_.AddRow(std::move(r)), CheckError);
}

TEST_F(PvcTableTest, MaterializeWorldFiltersByAnnotation) {
  table_.AddRow({Cell(int64_t{1}), Cell("M&S")}, pool_.Var(0));
  table_.AddRow({Cell(int64_t{2}), Cell("Gap")}, pool_.Var(1));
  // World where only variable 1 is true.
  PvcTable world = table_.MaterializeWorld(
      pool_, [](VarId x) { return x == 1 ? 1 : 0; });
  ASSERT_EQ(world.NumRows(), 1u);
  EXPECT_EQ(world.CellAt(0, "shop").AsString(), "Gap");
}

TEST_F(PvcTableTest, MaterializeWorldEvaluatesAggCells) {
  PvcTable t{Schema({{"total", CellType::kAggExpr}})};
  ExprId alpha = pool_.AddM(
      AggKind::kSum,
      pool_.Tensor(pool_.Var(0), pool_.ConstM(AggKind::kSum, 10)),
      pool_.Tensor(pool_.Var(1), pool_.ConstM(AggKind::kSum, 5)));
  t.AddRow({Cell::Agg(alpha)}, pool_.ConstS(1));
  PvcTable world = t.MaterializeWorld(pool_, [](VarId) { return 1; });
  ASSERT_EQ(world.NumRows(), 1u);
  EXPECT_EQ(world.CellAt(0, "total").AsInt(), 15);
  EXPECT_EQ(world.schema().column(0).type, CellType::kInt)
      << "agg columns become plain integers in a world";
}

TEST_F(PvcTableTest, PossibleWorldSemanticsOfFigure3) {
  // Figure 3a: S under B with x2, x5 true has exactly suppliers 2 and 5.
  table_.AddRow({Cell(int64_t{1}), Cell("M&S")}, pool_.Var(0));
  table_.AddRow({Cell(int64_t{2}), Cell("M&S")}, pool_.Var(1));
  table_.AddRow({Cell(int64_t{3}), Cell("M&S")}, pool_.Var(2));
  table_.AddRow({Cell(int64_t{4}), Cell("Gap")}, pool_.Var(3));
  table_.AddRow({Cell(int64_t{5}), Cell("Gap")}, pool_.Var(4));
  PvcTable world = table_.MaterializeWorld(
      pool_, [](VarId x) { return (x == 1 || x == 4) ? 1 : 0; });
  ASSERT_EQ(world.NumRows(), 2u);
  EXPECT_EQ(world.CellAt(0, "sid").AsInt(), 2);
  EXPECT_EQ(world.CellAt(1, "sid").AsInt(), 5);
}

TEST_F(PvcTableTest, ToStringIncludesAnnotations) {
  table_.AddRow({Cell(int64_t{1}), Cell("M&S")}, pool_.Var(0));
  std::string rendered = table_.ToString(&pool_);
  EXPECT_NE(rendered.find("Phi"), std::string::npos);
  EXPECT_NE(rendered.find("x0"), std::string::npos);
  EXPECT_NE(rendered.find("M&S"), std::string::npos);
}

}  // namespace
}  // namespace pvcdb
