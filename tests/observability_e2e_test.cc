// End-to-end proof for the observability plane (ISSUE acceptance):
//
//  - `stats` served over --connect must agree with an in-process `stats`
//    on every deterministic engine counter (engine.*, cache.*, views.*) --
//    instrumentation is a pure function of the command sequence, not of
//    the serving topology's latencies.
//  - On a durable multi-shard server (workers forked, group commit on),
//    `stats --json` must report non-zero step-phase histograms, WAL
//    fsync / group-commit batch counters, and per-shard request counts
//    aggregated from the workers over kStatsRequest.
//  - The `workers` command reports each healthy worker's (lsn, chain)
//    replication position.
//  - Instrumentation never changes replies: every reply in this file is
//    produced with metrics enabled and checked against the reference.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/shard.h"
#include "src/net/frame.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/serve/server.h"
#include "src/util/metrics.h"

namespace pvcdb {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pvcdb_obs_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      // Best-effort cleanup.
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void WriteDataset(const TempDir& dir) {
  std::ofstream f(dir.path() + "/items.csv");
  ASSERT_TRUE(f.good());
  f << "kind:string,item:string,price:int,_prob\n"
       "tool,hammer,1299,0.9\n"
       "tool,wrench,450,0.7\n"
       "garden,shovel,2399,0.6\n"
       "garden,rake,1799,0.5\n"
       "kitchen,whisk,220,0.95\n";
}

// The deterministic command sequence both engines execute: load, views,
// IVM mutations, queries, prints.
std::vector<std::string> Commands(const TempDir& dir) {
  return {
      "load items " + dir.path() + "/items.csv",
      "view pricey SELECT * FROM items WHERE price >= 1000",
      "view pricey",
      "insert items tool drill 1450 0.7",
      "delete items garden",
      "setprob x1 0.45",
      "SELECT * FROM items WHERE price >= 1000",
      "SELECT kind, COUNT(*) AS n FROM items GROUP BY kind HAVING n >= 1",
      "view pricey",
      "views",
  };
}

class Client {
 public:
  bool Connect(const std::string& address) {
    std::string error;
    sock_ = ConnectWithRetry(address, 250, &error);
    return sock_.valid();
  }
  std::string Send(const std::string& line) {
    if (!SendFrame(&sock_, static_cast<uint8_t>(MsgKind::kClientCommand),
                   line)) {
      return "<transport error: send>";
    }
    uint8_t kind = 0;
    std::string payload;
    if (RecvFrame(&sock_, &kind, &payload) != FrameResult::kOk ||
        static_cast<MsgKind>(kind) != MsgKind::kClientReply) {
      return "<transport error: recv>";
    }
    ClientReplyMsg reply;
    if (!ClientReplyMsg::Decode(payload, &reply)) {
      return "<transport error: decode>";
    }
    return reply.text;
  }

 private:
  Socket sock_;
};

pid_t StartServer(const std::string& address, size_t shards, bool in_process,
                  const std::string& open_dir = "", int group_commit_ms = -1) {
  pid_t pid = fork();
  if (pid == 0) {
    ServerConfig config;
    config.listen_address = address;
    config.num_shards = shards;
    config.in_process = in_process;
    config.quiet = true;
    config.open_dir = open_dir;
    config.group_commit_ms = group_commit_ms;
    _exit(RunServer(config));
  }
  return pid;
}

void ExpectCleanExit(pid_t server) {
  int status = 0;
  ASSERT_EQ(waitpid(server, &status, 0), server);
  EXPECT_TRUE(WIFEXITED(status)) << "server did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// Keeps only JSON Lines whose metric name starts with one of the
// deterministic engine prefixes and whose type is counter (histogram
// values carry wall-clock latencies, which never compare equal).
std::string DeterministicCounters(const std::string& json) {
  std::ostringstream kept;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"type\": \"counter\"") == std::string::npos) continue;
    for (const char* prefix : {"engine.", "cache.", "views."}) {
      if (line.find("{\"metric\": \"" + std::string(prefix)) == 0) {
        kept << line << "\n";
        break;
      }
    }
  }
  return kept.str();
}

// Extracts the integer `"value": N` from the metric's JSON line; -1 when
// the metric is absent.
int64_t CounterValue(const std::string& json, const std::string& metric) {
  std::string needle = "{\"metric\": \"" + metric + "\", ";
  size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  size_t v = json.find("\"value\": ", at);
  if (v == std::string::npos) return -1;
  return std::strtoll(json.c_str() + v + 9, nullptr, 10);
}

// Extracts `"count": N` for a histogram metric; -1 when absent.
int64_t HistogramCount(const std::string& json, const std::string& metric) {
  std::string needle = "{\"metric\": \"" + metric + "\", ";
  size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  size_t v = json.find("\"count\": ", at);
  if (v == std::string::npos) return -1;
  return std::strtoll(json.c_str() + v + 9, nullptr, 10);
}

// `stats` over --connect vs the same in-process engine driven directly:
// every deterministic engine counter must match exactly. The server is
// forked before the reference runs, so both registries start from the
// same (reset) state.
TEST(ObservabilityE2eTest, StatsOverTheWireMatchInProcess) {
  TempDir dir;
  WriteDataset(dir);
  const std::string address = dir.path() + "/server.sock";

  MetricsRegistry::Global().Reset();
  pid_t server = StartServer(address, 2, /*in_process=*/true);
  ASSERT_GT(server, 0);

  Client c0;
  ASSERT_TRUE(c0.Connect(address));
  for (const std::string& line : Commands(dir)) {
    ASSERT_NE(c0.Send(line).find("<transport"), 0u) << line;
  }
  std::string remote_stats = c0.Send("stats --json");
  EXPECT_EQ(c0.Send("shutdown"), "shutting down\n");
  ExpectCleanExit(server);

  // The reference: same engine, same renderer, same command sequence, in
  // this process. The registry is reset first so counters start from zero
  // exactly like the forked server's.
  MetricsRegistry::Global().Reset();
  ShardedDatabase db(2);
  InProcessBackend backend(&db);
  bool shutdown = false;
  for (const std::string& line : Commands(dir)) {
    ExecuteCommand(&backend, line, &shutdown);
  }
  std::string local_stats =
      ExecuteCommand(&backend, "stats --json", &shutdown).text;

  std::string remote = DeterministicCounters(remote_stats);
  std::string local = DeterministicCounters(local_stats);
  EXPECT_FALSE(remote.empty());
  EXPECT_EQ(remote, local);
  // Sanity: the command sequence exercised every instrumented subsystem.
  EXPECT_GT(CounterValue(local, "engine.rows_scanned"), 0);
  EXPECT_GT(CounterValue(local, "engine.dtrees_compiled"), 0);
  EXPECT_GT(CounterValue(local, "engine.exprs_interned"), 0);
  EXPECT_GT(CounterValue(local, "cache.misses"), 0);
  EXPECT_GT(CounterValue(local, "cache.hits"), 0);
}

// The headline acceptance: a durable multi-shard server with forked
// workers and group commit reports, over the wire, non-zero step-phase
// histograms, WAL fsync and group-commit batch counters, and per-shard
// request counts aggregated from worker registries.
TEST(ObservabilityE2eTest, DurableMultiShardStatsReportEveryLayer) {
  TempDir dir;
  WriteDataset(dir);
  const std::string address = dir.path() + "/server.sock";
  const std::string store = dir.path() + "/store";

  MetricsRegistry::Global().Reset();
  pid_t server = StartServer(address, 2, /*in_process=*/false, store,
                             /*group_commit_ms=*/5);
  ASSERT_GT(server, 0);

  Client c0;
  ASSERT_TRUE(c0.Connect(address));
  for (const std::string& line : Commands(dir)) {
    ASSERT_NE(c0.Send(line).find("<transport"), 0u) << line;
  }

  // Satellite: `workers` reports each healthy worker's (lsn, chain).
  std::string workers = c0.Send("workers");
  EXPECT_NE(workers.find("worker 0: pid"), std::string::npos) << workers;
  EXPECT_NE(workers.find("up (lsn "), std::string::npos) << workers;
  EXPECT_NE(workers.find(", chain "), std::string::npos) << workers;
  EXPECT_EQ(workers.find("down"), std::string::npos) << workers;

  std::string stats = c0.Send("stats --json");

  // Step-phase histograms observed at least one command.
  EXPECT_GT(HistogramCount(stats, "phase.parse.ms"), 0) << stats;
  // WAL appends synced through the group-commit window.
  EXPECT_GT(CounterValue(stats, "wal.appends"), 0) << stats;
  EXPECT_GT(CounterValue(stats, "wal.fsyncs"), 0) << stats;
  EXPECT_GT(HistogramCount(stats, "wal.group_commit_batch"), 0) << stats;
  // Scatter/gather bookkeeping on the coordinator.
  EXPECT_GT(CounterValue(stats, "coord.scatters"), 0) << stats;
  EXPECT_GT(HistogramCount(stats, "coord.scatter.ms"), 0) << stats;
  EXPECT_GT(CounterValue(stats, "coord.shard0.requests"), 0) << stats;
  EXPECT_GT(CounterValue(stats, "coord.shard1.requests"), 0) << stats;
  // Worker registries aggregated over kStatsRequest, "shard<N>."-prefixed.
  EXPECT_GT(CounterValue(stats, "shard0.worker.requests"), 0) << stats;
  EXPECT_GT(CounterValue(stats, "shard1.worker.requests"), 0) << stats;
  EXPECT_GT(CounterValue(stats, "shard0.net.frames_in"), 0) << stats;
  // Network plane on the front end.
  EXPECT_GT(CounterValue(stats, "net.frames_in"), 0) << stats;
  EXPECT_GT(CounterValue(stats, "net.bytes_out"), 0) << stats;
  // Lazily registered on first failure, so absent (-1) or zero.
  EXPECT_LE(CounterValue(stats, "net.crc_failures"), 0) << stats;
  EXPECT_GT(CounterValue(stats, "server.commands"), 0) << stats;

  // Stats reads are pure observation: the served state is unchanged, so
  // a view print after two stats snapshots matches the reference twin.
  MetricsRegistry::Global().Reset();
  ShardedDatabase db(2);
  InProcessBackend backend(&db);
  bool shutdown = false;
  std::string expected;
  for (const std::string& line : Commands(dir)) {
    expected = ExecuteCommand(&backend, line, &shutdown).text;
  }
  EXPECT_EQ(c0.Send("views"), expected);

  EXPECT_EQ(c0.Send("shutdown"), "shutting down\n");
  ExpectCleanExit(server);
}

}  // namespace
}  // namespace pvcdb
