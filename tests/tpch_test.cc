#include "src/tpch/tpch_gen.h"

#include <gtest/gtest.h>

#include "src/query/tractability.h"
#include "src/tpch/tpch_queries.h"

namespace pvcdb {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  TpchTest() {
    TpchConfig config;
    config.scale_factor = 0.002;  // Tiny: ~200 lineitems.
    config.seed = 11;
    GenerateTpch(&db_, config);
  }

  Database db_;
};

TEST_F(TpchTest, AllTablesGenerated) {
  for (const char* name : {"region", "nation", "supplier", "part",
                           "partsupp", "customer", "orders", "lineitem"}) {
    EXPECT_TRUE(db_.HasTable(name)) << name;
    EXPECT_GT(db_.table(name).NumRows(), 0u) << name;
  }
}

TEST_F(TpchTest, CardinalitiesScale) {
  TpchCardinalities small = TpchCardinalitiesFor(0.01);
  TpchCardinalities large = TpchCardinalitiesFor(0.1);
  EXPECT_EQ(small.region, 5u);
  EXPECT_EQ(large.nation, 25u);
  EXPECT_GT(large.lineitem, small.lineitem);
  EXPECT_NEAR(static_cast<double>(large.lineitem) / small.lineitem, 10.0,
              1.0);
}

TEST_F(TpchTest, TablesAreTupleIndependent) {
  for (const char* name : {"supplier", "part", "lineitem"}) {
    EXPECT_TRUE(IsTupleIndependent(db_.table(name), db_.pool())) << name;
  }
}

TEST_F(TpchTest, ForeignKeysResolve) {
  const PvcTable& nation = db_.table("nation");
  size_t region_count = db_.table("region").NumRows();
  for (const Row& r : nation.rows()) {
    int64_t rk = r.cells[nation.schema().IndexOf("n_regionkey")].AsInt();
    EXPECT_GE(rk, 0);
    EXPECT_LT(rk, static_cast<int64_t>(region_count));
  }
  const PvcTable& ps = db_.table("partsupp");
  size_t parts = db_.table("part").NumRows();
  for (const Row& r : ps.rows()) {
    int64_t pk = r.cells[ps.schema().IndexOf("ps_partkey")].AsInt();
    EXPECT_LT(pk, static_cast<int64_t>(parts));
  }
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  Database db2;
  TpchConfig config;
  config.scale_factor = 0.002;
  config.seed = 11;
  GenerateTpch(&db2, config);
  const PvcTable& a = db_.table("lineitem");
  const PvcTable& b = db2.table("lineitem");
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (size_t i = 0; i < a.NumRows(); ++i) {
    EXPECT_TRUE(a.row(i).cells == b.row(i).cells) << "row " << i;
  }
}

TEST_F(TpchTest, Q1RunsAndGroups) {
  QueryPtr q1 = BuildTpchQ1(/*shipdate_cutoff=*/1800);
  PvcTable result = db_.Run(*q1);
  EXPECT_GT(result.NumRows(), 0u);
  EXPECT_LE(result.NumRows(), 6u);  // 3 returnflags x 2 linestatuses.
  for (size_t i = 0; i < result.NumRows(); ++i) {
    double p = db_.TupleProbability(result.row(i));
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-9);
    Distribution cnt = db_.AggregateDistribution(result, i, "cnt");
    EXPECT_TRUE(cnt.IsNormalized(1e-6));
    EXPECT_GE(cnt.Mean(), 0.0);
  }
}

TEST_F(TpchTest, Q1DeterministicCountsMatchFilter) {
  int64_t cutoff = 1800;
  QueryPtr q1 = BuildTpchQ1(cutoff);
  PvcTable det = db_.RunDeterministic(*q1);
  // Sum of per-group deterministic counts equals the number of lineitems
  // passing the filter.
  int64_t total = 0;
  for (size_t i = 0; i < det.NumRows(); ++i) {
    total += db_.pool().node(det.CellAt(i, "cnt").AsAgg()).value;
  }
  int64_t expected = 0;
  const PvcTable& li = db_.table("lineitem");
  size_t date_idx = li.schema().IndexOf("l_shipdate");
  for (const Row& r : li.rows()) {
    if (r.cells[date_idx].AsInt() <= cutoff) ++expected;
  }
  EXPECT_EQ(total, expected);
}

TEST_F(TpchTest, Q2RunsAndFindsMinCostSupplier) {
  // Pick a part that actually has partsupp rows in a region.
  const PvcTable& ps = db_.table("partsupp");
  int64_t partkey = ps.row(0).cells[0].AsInt();
  QueryPtr q2 = BuildTpchQ2(&db_, partkey, "EUROPE");
  PvcTable result = db_.Run(*q2);
  // The query may be empty (region mismatch); probabilities must be valid.
  for (size_t i = 0; i < result.NumRows(); ++i) {
    double p = db_.TupleProbability(result.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-9);
  }
}

TEST_F(TpchTest, Q2DeterministicMatchesManualMinimum) {
  // Deterministic evaluation: the reported suppliers are exactly those
  // with the minimal supply cost for the part within the region.
  const PvcTable& ps = db_.table("partsupp");
  int64_t partkey = ps.row(0).cells[0].AsInt();
  const std::string region = "ASIA";
  QueryPtr q2 = BuildTpchQ2(&db_, partkey, region);
  PvcTable det = db_.RunDeterministic(*q2);

  // Manual computation over the deterministic database.
  auto cell = [&](const PvcTable& t, const Row& r, const std::string& c) {
    return r.cells[t.schema().IndexOf(c)];
  };
  const PvcTable& supplier = db_.table("supplier");
  const PvcTable& nation = db_.table("nation");
  const PvcTable& regions = db_.table("region");
  auto region_of_supplier = [&](int64_t suppkey) -> std::string {
    for (const Row& s : supplier.rows()) {
      if (cell(supplier, s, "s_suppkey").AsInt() != suppkey) continue;
      int64_t nk = cell(supplier, s, "s_nationkey").AsInt();
      for (const Row& n : nation.rows()) {
        if (cell(nation, n, "n_nationkey").AsInt() != nk) continue;
        int64_t rk = cell(nation, n, "n_regionkey").AsInt();
        for (const Row& r : regions.rows()) {
          if (cell(regions, r, "r_regionkey").AsInt() == rk) {
            return cell(regions, r, "r_name").AsString();
          }
        }
      }
    }
    return "";
  };
  int64_t min_cost = std::numeric_limits<int64_t>::max();
  std::set<std::string> min_suppliers;
  for (const Row& r : ps.rows()) {
    if (cell(ps, r, "ps_partkey").AsInt() != partkey) continue;
    int64_t suppkey = cell(ps, r, "ps_suppkey").AsInt();
    if (region_of_supplier(suppkey) != region) continue;
    int64_t cost = cell(ps, r, "ps_supplycost").AsInt();
    if (cost < min_cost) {
      min_cost = cost;
      min_suppliers.clear();
    }
    if (cost == min_cost) {
      for (const Row& s : supplier.rows()) {
        if (cell(supplier, s, "s_suppkey").AsInt() == suppkey) {
          min_suppliers.insert(cell(supplier, s, "s_name").AsString());
        }
      }
    }
  }
  std::set<std::string> reported;
  for (size_t i = 0; i < det.NumRows(); ++i) {
    reported.insert(det.CellAt(i, "s_name").AsString());
  }
  EXPECT_EQ(reported, min_suppliers);
}

TEST_F(TpchTest, AliasSharesVariables) {
  AddTableAlias(&db_, "region", "region2", "x_");
  const PvcTable& orig = db_.table("region");
  const PvcTable& alias = db_.table("region2");
  ASSERT_EQ(orig.NumRows(), alias.NumRows());
  for (size_t i = 0; i < orig.NumRows(); ++i) {
    EXPECT_EQ(orig.row(i).annotation, alias.row(i).annotation)
        << "aliases must share the same random variables";
  }
  EXPECT_EQ(alias.schema().column(0).name, "x_r_regionkey");
}

TEST_F(TpchTest, ProbabilityRangeRespected) {
  TpchConfig config;
  config.scale_factor = 0.002;
  config.prob_low = 0.25;
  config.prob_high = 0.75;
  Database db2;
  GenerateTpch(&db2, config);
  const PvcTable& li = db2.table("lineitem");
  for (const Row& r : li.rows()) {
    double p = db2.TupleProbability(r);
    EXPECT_GE(p, 0.25);
    EXPECT_LE(p, 0.75);
  }
}

}  // namespace
}  // namespace pvcdb
