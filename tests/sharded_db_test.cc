// Tests for the sharded-database subsystem (src/engine/shard.h): routing
// and partitioning invariants, and the contract that every result --
// distributed step I plans, coordinator fallbacks, and the scatter-gather
// step II passes -- is *bit-identical* to the unsharded engine for
// shards in {1, 2, 4, 8} x threads in {1, 4}.

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/csv.h"
#include "src/engine/database.h"
#include "src/engine/shard.h"
#include "src/query/ast.h"
#include "src/util/rng.h"

namespace pvcdb {
namespace {

constexpr size_t kShardGrid[] = {1, 2, 4, 8};
constexpr int kThreadGrid[] = {1, 4};

void ExpectBitIdentical(const Distribution& a, const Distribution& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].first, b.entries()[i].first);
    EXPECT_EQ(a.entries()[i].second, b.entries()[i].second);
  }
}

// Loads the Figure 1 database as tuple-independent tables through the
// uniform load API, so the unsharded reference and the sharded database
// create identical variables in identical order. Routing keys are the
// first columns (sid / ps_sid / p_pid).
template <typename DB>
void LoadFigure1(DB* db, double p) {
  Schema s_schema({{"sid", CellType::kInt}, {"shop", CellType::kString}});
  db->AddTupleIndependentTable(
      "S", s_schema,
      {{Cell(int64_t{1}), Cell("M&S")},
       {Cell(int64_t{2}), Cell("M&S")},
       {Cell(int64_t{3}), Cell("M&S")},
       {Cell(int64_t{4}), Cell("Gap")},
       {Cell(int64_t{5}), Cell("Gap")}},
      {p, p, p, p, p});
  Schema ps_schema({{"ps_sid", CellType::kInt},
                    {"pid", CellType::kInt},
                    {"price", CellType::kInt}});
  std::vector<std::vector<Cell>> ps_rows;
  const int64_t entries[][3] = {{1, 1, 10}, {1, 2, 50}, {2, 1, 11},
                                {2, 2, 60}, {3, 3, 15}, {3, 4, 40},
                                {4, 1, 15}, {4, 3, 60}, {5, 1, 10}};
  for (const auto& e : entries) {
    ps_rows.push_back({Cell(e[0]), Cell(e[1]), Cell(e[2])});
  }
  db->AddTupleIndependentTable("PS", ps_schema, std::move(ps_rows),
                               std::vector<double>(9, p));
  Schema p_schema({{"p_pid", CellType::kInt}, {"weight", CellType::kInt}});
  db->AddTupleIndependentTable("P1", p_schema,
                               {{Cell(int64_t{1}), Cell(int64_t{4})},
                                {Cell(int64_t{2}), Cell(int64_t{8})},
                                {Cell(int64_t{3}), Cell(int64_t{7})},
                                {Cell(int64_t{4}), Cell(int64_t{6})}},
                               {p, p, p, p});
  db->AddTupleIndependentTable("P2", p_schema,
                               {{Cell(int64_t{1}), Cell(int64_t{5})}}, {p});
}

// Q1 and Q2 of Figure 1 (joins, union, projection, grouped aggregation --
// all operators that force the coordinator gather).
QueryPtr Figure1Q1() {
  QueryPtr products = Query::Union(Query::Scan("P1"), Query::Scan("P2"));
  QueryPtr joined = Query::Join(Query::Scan("S"), Query::Scan("PS"),
                                Predicate::ColEqCol("sid", "ps_sid"));
  joined = Query::Join(joined, products, Predicate::ColEqCol("pid", "p_pid"));
  return Query::Project(joined, {"shop", "price"});
}

QueryPtr Figure1Q2() {
  QueryPtr agg = Query::GroupAgg(Figure1Q1(), {"shop"},
                                 {{AggKind::kMax, "price", "P"}});
  QueryPtr filtered =
      Query::Select(agg, Predicate::ColCmpInt("P", CmpOp::kLe, 50));
  return Query::Project(filtered, {"shop"});
}

// A Select/Rename chain: the shard-distributable fragment.
QueryPtr Figure1Chain() {
  QueryPtr q = Query::Select(Query::Scan("PS"),
                             Predicate::ColCmpInt("price", CmpOp::kLe, 40));
  q = Query::Rename(q, "price", "price2");
  return Query::Select(q, Predicate::ColCmpInt("ps_sid", CmpOp::kGe, 2));
}

// The 1000-tuple stress table: integer primary key, a grouping column and
// a value column, random probabilities.
template <typename DB>
void LoadStressTable(DB* db) {
  Rng rng(12345);
  Schema schema({{"id", CellType::kInt},
                 {"g", CellType::kInt},
                 {"v", CellType::kInt}});
  std::vector<std::vector<Cell>> rows;
  std::vector<double> probs;
  for (int64_t i = 0; i < 1000; ++i) {
    rows.push_back({Cell(i), Cell(i % 37), Cell(rng.UniformInt(0, 20))});
    probs.push_back(rng.UniformDouble(0.05, 0.95));
  }
  db->AddTupleIndependentTable("T", schema, std::move(rows),
                               std::move(probs));
}

TEST(ShardRouterTest, FnvIsDeterministicAndInRange) {
  FnvShardRouter router;
  for (size_t shards : {1u, 2u, 5u, 8u}) {
    for (int64_t k = -50; k < 50; ++k) {
      size_t s = router.Route(Cell(k), shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, router.Route(Cell(k), shards));
    }
  }
  EXPECT_EQ(router.Route(Cell("abc"), 8), router.Route(Cell("abc"), 8));
  EXPECT_EQ(router.Route(Cell(1.5), 8), router.Route(Cell(1.5), 8));
}

TEST(ShardRouterTest, StableHashSeparatesTypesAndValues) {
  EXPECT_EQ(Cell(int64_t{7}).StableHash(), Cell(int64_t{7}).StableHash());
  EXPECT_NE(Cell(int64_t{7}).StableHash(), Cell(int64_t{8}).StableHash());
  EXPECT_NE(Cell(int64_t{7}).StableHash(), Cell("7").StableHash());
  EXPECT_NE(Cell("a").StableHash(), Cell("b").StableHash());
}

TEST(ShardRouterTest, ModuloRoutesByValueIncludingNegatives) {
  ModuloShardRouter router;
  EXPECT_EQ(router.Route(Cell(int64_t{7}), 4), 3u);
  EXPECT_EQ(router.Route(Cell(int64_t{-5}), 4), 3u);
  EXPECT_EQ(router.Route(Cell(int64_t{8}), 4), 0u);
}

TEST(ShardedDatabaseTest, PartitionsAreCompleteOrderPreservingAndRouted) {
  ShardedDatabase db(4, SemiringKind::kBool,
                     std::make_unique<ModuloShardRouter>());
  LoadStressTable(&db);
  ASSERT_EQ(db.NumRows("T"), 1000u);

  std::vector<size_t> counts = db.ShardRowCounts("T");
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 1000u);
  for (size_t s = 0; s < 4; ++s) {
    const PvcTable& part = db.shard(s).table("T");
    EXPECT_EQ(part.NumRows(), counts[s]);
    int64_t previous = -1;
    for (const Row& r : part.rows()) {
      int64_t id = r.cells[0].AsInt();
      // Modulo routing on the primary key, global order preserved.
      EXPECT_EQ(static_cast<size_t>(id % 4), s);
      EXPECT_GT(id, previous);
      previous = id;
    }
  }
}

TEST(ShardedDatabaseTest, VariablesAreGloballyScopedAndShared) {
  ShardedDatabase sharded(4);
  LoadFigure1(&sharded, 0.5);
  Database reference;
  LoadFigure1(&reference, 0.5);
  EXPECT_EQ(sharded.variables().size(), reference.variables().size());
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(&sharded.shard(s).variables(), &sharded.variables());
  }
  EXPECT_EQ(&sharded.coordinator().variables(), &sharded.variables());
}

TEST(ShardedDatabaseTest, PlanRoutingPicksTheDistributableFragment) {
  ShardedDatabase db(2);
  LoadFigure1(&db, 0.5);
  EXPECT_TRUE(db.Run(*Figure1Chain()).distributed());
  EXPECT_FALSE(db.Run(*Figure1Q1()).distributed());
  EXPECT_FALSE(db.Run(*Figure1Q2()).distributed());
  EXPECT_FALSE(db.RunDeterministic(*Figure1Chain()).distributed());
}

// The acceptance grid on the paper's running example: for every shard and
// thread count, the sharded engine reproduces the unsharded engine's
// result tables, exact probabilities, annotation distributions and
// approximation bounds bit for bit -- across coordinator plans (Q1, Q2)
// and distributed plans (the Select/Rename chain).
TEST(ShardedDatabaseTest, Figure1BitIdenticalAcrossShardAndThreadGrid) {
  Database reference;
  LoadFigure1(&reference, 0.3);
  std::vector<QueryPtr> queries = {Figure1Q1(), Figure1Q2(), Figure1Chain()};

  struct Expected {
    PvcTable table;
    std::vector<double> probabilities;
    std::vector<Distribution> distributions;
    std::vector<ProbabilityBounds> bounds;
  };
  ApproximateOptions approx;
  approx.node_budget = 64;
  std::vector<Expected> expected;
  for (const QueryPtr& q : queries) {
    Expected e;
    e.table = reference.Run(*q);
    e.probabilities = reference.TupleProbabilities(e.table);
    e.distributions = reference.AnnotationDistributions(e.table);
    e.bounds = reference.ApproximateTupleProbabilities(e.table, approx);
    expected.push_back(std::move(e));
  }

  for (size_t shards : kShardGrid) {
    for (int threads : kThreadGrid) {
      ShardedDatabase db(shards);
      LoadFigure1(&db, 0.3);
      db.eval_options().num_threads = threads;
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        SCOPED_TRACE(::testing::Message() << "shards=" << shards
                                          << " threads=" << threads
                                          << " query=" << qi);
        const Expected& e = expected[qi];
        ShardedResult result = db.Run(*queries[qi]);
        ASSERT_EQ(result.NumRows(), e.table.NumRows());
        EXPECT_EQ(result.schema(), e.table.schema());
        for (size_t i = 0; i < result.NumRows(); ++i) {
          EXPECT_EQ(result.cells(i), e.table.row(i).cells) << "row " << i;
        }
        std::vector<double> probabilities = db.TupleProbabilities(result);
        ASSERT_EQ(probabilities.size(), e.probabilities.size());
        for (size_t i = 0; i < probabilities.size(); ++i) {
          EXPECT_EQ(probabilities[i], e.probabilities[i]) << "row " << i;
        }
        std::vector<Distribution> distributions =
            db.AnnotationDistributions(result);
        for (size_t i = 0; i < distributions.size(); ++i) {
          ExpectBitIdentical(distributions[i], e.distributions[i]);
        }
        std::vector<ProbabilityBounds> bounds =
            db.ApproximateTupleProbabilities(result, approx);
        ASSERT_EQ(bounds.size(), e.bounds.size());
        for (size_t i = 0; i < bounds.size(); ++i) {
          EXPECT_EQ(bounds[i].low, e.bounds[i].low) << "row " << i;
          EXPECT_EQ(bounds[i].high, e.bounds[i].high) << "row " << i;
        }
      }
    }
  }
}

// The same grid on the 1000-tuple stress table: base-table scatter-gather,
// a distributed selection, and a cross-shard grouped aggregate.
TEST(ShardedDatabaseTest, StressTableBitIdenticalAcrossShardAndThreadGrid) {
  Database reference;
  LoadStressTable(&reference);
  std::vector<double> expected_base =
      reference.TupleProbabilities(reference.table("T"));

  QueryPtr select = Query::Select(Query::Scan("T"),
                                  Predicate::ColCmpInt("v", CmpOp::kGe, 10));
  QueryPtr group = Query::GroupAgg(Query::Scan("T"), {"g"},
                                   {{AggKind::kCount, "", "n"}});
  PvcTable expected_select = reference.Run(*select);
  std::vector<double> expected_select_probs =
      reference.TupleProbabilities(expected_select);
  PvcTable expected_group = reference.Run(*group);
  ASSERT_EQ(expected_group.NumRows(), 37u);
  std::vector<double> expected_group_probs =
      reference.TupleProbabilities(expected_group);
  std::vector<Distribution> expected_group_dists =
      reference.AnnotationDistributions(expected_group);

  for (size_t shards : kShardGrid) {
    for (int threads : kThreadGrid) {
      SCOPED_TRACE(::testing::Message() << "shards=" << shards
                                        << " threads=" << threads);
      ShardedDatabase db(shards);
      LoadStressTable(&db);
      db.eval_options().num_threads = threads;

      std::vector<double> base = db.TupleProbabilities("T");
      ASSERT_EQ(base.size(), expected_base.size());
      for (size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i], expected_base[i]) << "row " << i;
      }

      ShardedResult selected = db.Run(*select);
      EXPECT_TRUE(selected.distributed());
      ASSERT_EQ(selected.NumRows(), expected_select.NumRows());
      std::vector<double> select_probs = db.TupleProbabilities(selected);
      for (size_t i = 0; i < select_probs.size(); ++i) {
        EXPECT_EQ(selected.cells(i), expected_select.row(i).cells);
        EXPECT_EQ(select_probs[i], expected_select_probs[i]) << "row " << i;
      }

      ShardedResult grouped = db.Run(*group);
      EXPECT_FALSE(grouped.distributed());
      ASSERT_EQ(grouped.NumRows(), expected_group.NumRows());
      std::vector<double> group_probs = db.TupleProbabilities(grouped);
      std::vector<Distribution> group_dists =
          db.AnnotationDistributions(grouped);
      for (size_t i = 0; i < group_probs.size(); ++i) {
        EXPECT_EQ(grouped.cells(i), expected_group.row(i).cells);
        EXPECT_EQ(group_probs[i], expected_group_probs[i]) << "row " << i;
        ExpectBitIdentical(group_dists[i], expected_group_dists[i]);
      }
    }
  }
}

TEST(ShardedDatabaseTest, ConditionalAggregatesMatchTheUnshardedEngine) {
  Database reference;
  LoadFigure1(&reference, 0.4);
  QueryPtr q = Query::GroupAgg(Figure1Q1(), {"shop"},
                               {{AggKind::kMax, "price", "P"}});
  PvcTable expected = reference.Run(*q);

  ShardedDatabase db(4);
  LoadFigure1(&db, 0.4);
  db.eval_options().num_threads = 4;
  ShardedResult result = db.Run(*q);
  ASSERT_EQ(result.NumRows(), expected.NumRows());
  for (size_t i = 0; i < result.NumRows(); ++i) {
    Distribution a = db.ConditionalAggregateDistribution(result, i, "P");
    Distribution b =
        reference.ConditionalAggregateDistribution(expected, i, "P");
    ExpectBitIdentical(a, b);
  }
}

TEST(ShardedDatabaseTest, CsvLoadsShardTheSameRowsAsTheUnshardedLoad) {
  const char* csv =
      "kind:string,item:string,price:int,_prob\n"
      "tool,hammer,1299,0.9\n"
      "tool,wrench,899,0.7\n"
      "garden,shovel,2399,0.6\n";
  Database reference;
  {
    std::istringstream in(csv);
    CsvResult r = LoadCsvTable(&reference, "items", in);
    ASSERT_TRUE(r.ok) << r.error;
  }
  ShardedDatabase db(2);
  {
    std::istringstream in(csv);
    CsvResult r = LoadCsvTable(&db, "items", in);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.rows, 3u);
  }
  std::vector<double> expected =
      reference.TupleProbabilities(reference.table("items"));
  std::vector<double> actual = db.TupleProbabilities("items");
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]);
  }
  std::vector<size_t> counts = db.ShardRowCounts("items");
  EXPECT_EQ(counts[0] + counts[1], 3u);
}

TEST(ShardedDatabaseTest, DeterministicBaselineMatches) {
  Database reference;
  LoadFigure1(&reference, 0.5);
  PvcTable expected = reference.RunDeterministic(*Figure1Q1());

  ShardedDatabase db(4);
  LoadFigure1(&db, 0.5);
  ShardedResult result = db.RunDeterministic(*Figure1Q1());
  ASSERT_EQ(result.NumRows(), expected.NumRows());
  for (size_t i = 0; i < result.NumRows(); ++i) {
    EXPECT_EQ(result.cells(i), expected.row(i).cells);
  }
}

}  // namespace
}  // namespace pvcdb
