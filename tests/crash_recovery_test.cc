// The durability proof: deterministic crash injection at every WAL record
// boundary +-1 byte, plus real fork/SIGKILL crashes mid-batch. After every
// simulated or real crash, recovery must serve exactly the durable prefix
// of logical mutations, bit-identical to a never-crashed twin session that
// applied only that prefix -- tuple probabilities, view caches and shard
// topology included. Shared fixtures live in tests/durability_testlib.h.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/snapshot.h"
#include "src/util/check.h"
#include "src/util/io.h"
#include "tests/crash_injection.h"
#include "tests/durability_testlib.h"

namespace pvcdb {
namespace {

using namespace durability_test;  // NOLINT(build/namespaces)

void RunBoundarySweep(uint64_t num_shards, bool with_reshard,
                      const std::string& tag) {
  const EngineState initial = InitialState(num_shards);
  const std::vector<Mutation> workload = SweepWorkload(with_reshard);
  const std::vector<uint64_t> boundaries =
      RecordBoundaries(TestDir(tag + "_ref"), initial, workload);
  ASSERT_EQ(boundaries.size(), workload.size() + 1);

  // Budgets: every record boundary, one byte short of it, one byte past it.
  std::set<uint64_t> budgets;
  for (uint64_t b : boundaries) {
    if (b > 0) budgets.insert(b - 1);
    budgets.insert(b);
    budgets.insert(b + 1);
  }

  const std::string crash_dir = TestDir(tag + "_crash");
  const std::string twin_dir = TestDir(tag + "_twin");
  FileSystem* real = DefaultFileSystem();
  for (uint64_t budget : budgets) {
    // Wipe the crash dir, then run against the fault-injecting file system
    // until the budget trips (only WAL files are budgeted; the snapshot
    // writes through).
    for (const std::string& file : real->ListDir(crash_dir)) {
      std::string error;
      real->Remove(JoinPath(crash_dir, file), &error);
    }
    FaultInjectingFileSystem faulty(real, "wal-", budget);
    DurableConfig config;
    config.dir = crash_dir;
    config.fs = &faulty;
    std::string error;
    std::unique_ptr<DurableSession> session =
        DurableSession::Create(config, initial, &error);
    size_t applied = 0;
    if (session != nullptr) {
      try {
        while (applied < workload.size()) {
          Apply(session.get(), workload[applied]);
          ++applied;
        }
      } catch (const CheckError&) {
        // The simulated crash: the mutation's WAL record did not fit.
      }
    }
    session.reset();  // "Process death": no checkpoint, no cleanup.

    // The durable prefix the budget allows: every record whose end offset
    // fits. Exact, because record encodings are deterministic.
    size_t expected_prefix = 0;
    for (size_t i = 1; i < boundaries.size(); ++i) {
      if (boundaries[i] <= budget) expected_prefix = i;
    }

    DurableConfig recover_config;
    recover_config.dir = crash_dir;
    std::unique_ptr<DurableSession> recovered =
        DurableSession::Recover(recover_config, &error);
    ASSERT_NE(recovered, nullptr)
        << tag << " budget=" << budget << ": " << error;
    EXPECT_EQ(recovered->stats().replayed_records, expected_prefix)
        << tag << " budget=" << budget;
    if (budget >= boundaries[0]) {
      EXPECT_EQ(recovered->stats().tail_truncated,
                budget > boundaries[expected_prefix] &&
                    applied < workload.size())
          << tag << " budget=" << budget;
    }

    std::unique_ptr<DurableSession> twin =
        BuildTwin(twin_dir, initial, workload, expected_prefix);
    ExpectSameState(recovered.get(), twin.get(),
                    tag + " budget=" + std::to_string(budget));
  }
}

TEST(CrashBoundarySweepTest, UnshardedEveryRecordBoundary) {
  RunBoundarySweep(0, /*with_reshard=*/false, "unsharded");
}

TEST(CrashBoundarySweepTest, UnshardedWithReshardRecords) {
  RunBoundarySweep(0, /*with_reshard=*/true, "reshard");
}

TEST(CrashBoundarySweepTest, ShardedEveryRecordBoundary) {
  RunBoundarySweep(3, /*with_reshard=*/false, "sharded");
}

// A real crash: fork a child that applies a seeded workload with fsync'd
// appends, signalling progress through a pipe; SIGKILL it mid-batch; then
// recover in the parent and compare against the twin at the durable
// prefix. Unlike the byte sweep this exercises actual process death with
// the kernel tearing whatever was in flight.
void RunForkKillCrash(uint32_t seed, uint64_t num_shards, int threads) {
  const std::string tag = "fork_s" + std::to_string(seed) + "_n" +
                          std::to_string(num_shards) + "_t" +
                          std::to_string(threads);
  const std::string dir = TestDir(tag);
  const EngineState initial = InitialState(num_shards);
  const std::vector<Mutation> workload = SeededWorkload(seed, 10);
  const size_t target = 2 + seed % 5;  // Kill after this many are durable.

  int pipe_fds[2];
  ASSERT_EQ(pipe(pipe_fds), 0);
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: every append fsyncs, so a progress byte means "durable".
    // The child applies mutations serially: fork() duplicates only the
    // calling thread, so the inherited ThreadPool::Shared() workers are
    // dead and any ParallelFor fan-out would wait on them forever. The
    // `threads` grid is exercised parent-side, where it matters: the
    // recovered engine and its twin evaluate probabilities with it.
    close(pipe_fds[0]);
    DurableConfig config;
    config.dir = dir;
    config.sync = true;
    std::string error;
    std::unique_ptr<DurableSession> session =
        DurableSession::Create(config, initial, &error);
    if (session == nullptr) _exit(1);
    for (const Mutation& m : workload) {
      Apply(session.get(), m);
      char byte = 'd';
      if (write(pipe_fds[1], &byte, 1) != 1) _exit(1);
    }
    _exit(0);
  }

  close(pipe_fds[1]);
  size_t durable_seen = 0;
  char byte;
  while (durable_seen < target && read(pipe_fds[0], &byte, 1) == 1) {
    ++durable_seen;
  }
  kill(pid, SIGKILL);
  int status = 0;
  waitpid(pid, &status, 0);
  // Drain any bytes the child wrote between our last read and the kill:
  // they are durable too and recovery will replay them.
  while (read(pipe_fds[0], &byte, 1) == 1) ++durable_seen;
  close(pipe_fds[0]);

  DurableConfig config;
  config.dir = dir;
  std::string error;
  std::unique_ptr<DurableSession> recovered =
      DurableSession::Recover(config, &error);
  ASSERT_NE(recovered, nullptr) << tag << ": " << error;
  size_t prefix = recovered->stats().replayed_records;
  // Every mutation whose progress byte arrived was fsync'd before the
  // write(); the kill may additionally have left the next record durable
  // but unsignalled.
  EXPECT_GE(prefix, durable_seen) << tag;
  EXPECT_LE(prefix, workload.size()) << tag;
  if (recovered->is_sharded()) {
    recovered->sharded()->eval_options().num_threads = threads;
  } else {
    recovered->db()->eval_options().num_threads = threads;
  }

  std::unique_ptr<DurableSession> twin =
      BuildTwin(TestDir(tag + "_twin"), initial, workload, prefix);
  if (twin->is_sharded()) {
    twin->sharded()->eval_options().num_threads = threads;
  } else {
    twin->db()->eval_options().num_threads = threads;
  }
  ExpectSameState(recovered.get(), twin.get(), tag);
}

TEST(ForkCrashTest, SigkillMidBatchRecoversDurablePrefix) {
  // >= 20 seeded runs across shards {1 (unsharded), 4} x threads {1, 4}.
  for (uint32_t seed = 1; seed <= 5; ++seed) {
    for (uint64_t shards : {uint64_t{0}, uint64_t{4}}) {
      for (int threads : {1, 4}) {
        RunForkKillCrash(seed, shards, threads);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

}  // namespace
}  // namespace pvcdb
