#include "src/dtree/compile.h"

#include <gtest/gtest.h>

#include "src/dtree/probability.h"
#include "src/util/check.h"

namespace pvcdb {
namespace {

class CompileTest : public ::testing::Test {
 protected:
  CompileTest() : pool_(SemiringKind::kBool) {
    for (int i = 0; i < 8; ++i) {
      ids_.push_back(vars_.AddBernoulli(0.5));
    }
  }

  ExprId V(int i) { return pool_.Var(ids_[i]); }

  DTree Compile(ExprId e, CompileOptions options = CompileOptions()) {
    return CompileToDTree(&pool_, &vars_, e, options);
  }

  ExprPool pool_;
  VariableTable vars_;
  std::vector<VarId> ids_;
};

TEST_F(CompileTest, GroundExpressionIsConstLeaf) {
  DTree t = Compile(pool_.ConstS(1));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.node(t.root()).kind, DTreeNodeKind::kLeafConst);
}

TEST_F(CompileTest, SingleVariableIsVarLeaf) {
  DTree t = Compile(V(0));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.node(t.root()).kind, DTreeNodeKind::kLeafVar);
}

TEST_F(CompileTest, IndependentSumSplitsWithoutShannon) {
  // x0 + x1: disjoint variables -> (+) node, no mutex expansion.
  DTree t = Compile(pool_.AddS(V(0), V(1)));
  EXPECT_EQ(t.node(t.root()).kind, DTreeNodeKind::kOplus);
  EXPECT_EQ(t.MutexCount(), 0u);
}

TEST_F(CompileTest, IndependentProductSplitsWithoutShannon) {
  DTree t = Compile(pool_.MulS({V(0), V(1), V(2)}));
  EXPECT_EQ(t.node(t.root()).kind, DTreeNodeKind::kOdot);
  EXPECT_EQ(t.MutexCount(), 0u);
}

TEST_F(CompileTest, ReadOnceExpressionCompilesWithoutShannon) {
  // x0(x1 + x2) + x3 x4: fully read-once, rules 1-2 suffice.
  ExprId e = pool_.AddS(pool_.MulS(V(0), pool_.AddS(V(1), V(2))),
                        pool_.MulS(V(3), V(4)));
  DTree t = Compile(e);
  EXPECT_EQ(t.MutexCount(), 0u);
}

TEST_F(CompileTest, CommonFactorExtraction) {
  // x0 x1 + x0 x2 = x0 (x1 + x2): needs factorisation (one component).
  ExprId e = pool_.AddS(pool_.MulS(V(0), V(1)), pool_.MulS(V(0), V(2)));
  DTreeCompiler compiler(&pool_, &vars_, CompileOptions());
  DTree t = compiler.Compile(e);
  EXPECT_EQ(t.MutexCount(), 0u);
  EXPECT_GE(compiler.stats().factorizations, 1u);
  EXPECT_EQ(t.node(t.root()).kind, DTreeNodeKind::kOdot);
}

TEST_F(CompileTest, FactorizationDisabledFallsBackToShannon) {
  ExprId e = pool_.AddS(pool_.MulS(V(0), V(1)), pool_.MulS(V(0), V(2)));
  CompileOptions options;
  options.enable_factorization = false;
  DTree t = Compile(e, options);
  EXPECT_GE(t.MutexCount(), 1u);
}

TEST_F(CompileTest, NonReadOnceRequiresShannon) {
  // x0 x1 + x1 x2 + x2 x0: the classic non-hierarchical triangle.
  ExprId e = pool_.AddS({pool_.MulS(V(0), V(1)), pool_.MulS(V(1), V(2)),
                         pool_.MulS(V(2), V(0))});
  DTree t = Compile(e);
  EXPECT_GE(t.MutexCount(), 1u);
}

TEST_F(CompileTest, TensorSplitsIndependently) {
  ExprId e = pool_.Tensor(pool_.MulS(V(0), V(1)),
                          pool_.ConstM(AggKind::kMin, 10));
  DTree t = Compile(e);
  EXPECT_EQ(t.node(t.root()).kind, DTreeNodeKind::kOtimes);
  EXPECT_EQ(t.MutexCount(), 0u);
}

TEST_F(CompileTest, ComparisonSplitsIndependently) {
  ExprId lhs = pool_.Tensor(V(0), pool_.ConstM(AggKind::kMin, 10));
  ExprId rhs = pool_.Tensor(V(1), pool_.ConstM(AggKind::kMin, 20));
  DTree t = Compile(pool_.Cmp(CmpOp::kLe, lhs, rhs));
  EXPECT_EQ(t.node(t.root()).kind, DTreeNodeKind::kCmp);
  EXPECT_EQ(t.MutexCount(), 0u);
}

TEST_F(CompileTest, SharedVariableComparisonNeedsShannon) {
  ExprId lhs = pool_.Tensor(V(0), pool_.ConstM(AggKind::kMin, 10));
  ExprId rhs = pool_.Tensor(pool_.MulS(V(0), V(1)),
                            pool_.ConstM(AggKind::kMin, 20));
  CompileOptions options;
  options.enable_pruning = false;  // Keep the comparison intact.
  DTree t = Compile(pool_.Cmp(CmpOp::kLe, lhs, rhs), options);
  EXPECT_GE(t.MutexCount(), 1u);
}

TEST_F(CompileTest, MutexBranchesPerSupportValue) {
  // A three-valued variable expands into three branches.
  VariableTable vars;
  VarId n = vars.Add(Distribution::FromPairs({{0, 0.2}, {1, 0.3}, {2, 0.5}}));
  ExprPool pool(SemiringKind::kNatural);
  // x * (x + 1) cannot be split or factored (its factors share x), so it
  // Shannon-expands into one branch per support value. (Note x + x would
  // NOT need Shannon: it factors into 2 * x.)
  ExprId e = pool.MulS(pool.Var(n), pool.AddS(pool.Var(n), pool.ConstS(1)));
  DTree t = CompileToDTree(&pool, &vars, e);
  ASSERT_EQ(t.node(t.root()).kind, DTreeNodeKind::kMutex);
  EXPECT_EQ(t.node(t.root()).children.size(), 3u);
  EXPECT_EQ(t.node(t.root()).branch_values,
            (std::vector<int64_t>{0, 1, 2}));
}

TEST_F(CompileTest, Figure5DTreeShape) {
  // Example 13 / Figure 5: a(b + c) (x) 10 + c (x) 20 over N (x) N with
  // variables valued in {1, 2}. The root is a mutex on c; each branch
  // decomposes into independent sums/tensors without further expansion.
  ExprPool pool(SemiringKind::kNatural);
  VariableTable vars;
  VarId a = vars.Add(Distribution::FromPairs({{1, 0.6}, {2, 0.4}}), "a");
  VarId b = vars.Add(Distribution::FromPairs({{1, 0.7}, {2, 0.3}}), "b");
  VarId c = vars.Add(Distribution::FromPairs({{1, 0.5}, {2, 0.5}}), "c");
  ExprId phi = pool.AddM(
      AggKind::kSum,
      pool.Tensor(pool.MulS(pool.Var(a), pool.AddS(pool.Var(b), pool.Var(c))),
                  pool.ConstM(AggKind::kSum, 10)),
      pool.Tensor(pool.Var(c), pool.ConstM(AggKind::kSum, 20)));
  DTreeCompiler compiler(&pool, &vars, CompileOptions());
  DTree t = compiler.Compile(phi);
  ASSERT_EQ(t.node(t.root()).kind, DTreeNodeKind::kMutex);
  EXPECT_EQ(t.node(t.root()).var, c);
  EXPECT_EQ(t.node(t.root()).children.size(), 2u);
  EXPECT_EQ(t.MutexCount(), 1u) << "only one Shannon expansion is needed";
}

TEST_F(CompileTest, MostOccurrencesHeuristicPicksRepeatedVariable) {
  // x0 appears twice, x1/x2 once; the mutex must expand x0.
  ExprPool pool(SemiringKind::kNatural);
  VariableTable vars;
  std::vector<VarId> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(vars.AddBernoulli(0.5));
  ExprId e = pool.AddS(
      {pool.MulS(pool.Var(ids[0]), pool.Var(ids[1])),
       pool.MulS(pool.Var(ids[0]), pool.Var(ids[2])),
       pool.MulS(pool.Var(ids[1]), pool.Var(ids[2]))});
  CompileOptions options;
  options.enable_factorization = false;
  DTree t = CompileToDTree(&pool, &vars, e, options);
  // Root is a mutex on one of the equally-occurring variables; with the
  // triangle all have count 2, so check it is a mutex at all and that the
  // chosen variable occurs in the expression.
  ASSERT_EQ(t.node(t.root()).kind, DTreeNodeKind::kMutex);
  Span<VarId> evars = pool.VarsOf(e);
  EXPECT_TRUE(std::find(evars.begin(), evars.end(), t.node(t.root()).var) !=
              evars.end());
}

TEST_F(CompileTest, HeuristicVariantsAllProduceValidTrees) {
  ExprId e = pool_.AddS({pool_.MulS(V(0), V(1)), pool_.MulS(V(1), V(2)),
                         pool_.MulS(V(2), V(0))});
  for (VarChoiceHeuristic h :
       {VarChoiceHeuristic::kMostOccurrences, VarChoiceHeuristic::kFirst,
        VarChoiceHeuristic::kRandom}) {
    CompileOptions options;
    options.heuristic = h;
    DTree t = Compile(e, options);
    Distribution d =
        ComputeDistribution(t, vars_, pool_.semiring());
    EXPECT_TRUE(d.IsNormalized(1e-9));
  }
}

TEST_F(CompileTest, NodeBudgetEnforced) {
  ExprId e = pool_.AddS({pool_.MulS(V(0), V(1)), pool_.MulS(V(1), V(2)),
                         pool_.MulS(V(2), V(0))});
  CompileOptions options;
  options.max_nodes = 2;
  EXPECT_THROW(Compile(e, options), CheckError);
}

TEST_F(CompileTest, IndependenceDisabledStillCorrect) {
  // Shannon-only compilation (the ablation baseline) remains correct.
  ExprId e = pool_.AddS(pool_.MulS(V(0), V(1)), V(2));
  CompileOptions all;
  CompileOptions shannon_only;
  shannon_only.enable_independence = false;
  shannon_only.enable_factorization = false;
  Distribution with_rules =
      ComputeDistribution(Compile(e, all), vars_, pool_.semiring());
  Distribution without_rules = ComputeDistribution(
      Compile(e, shannon_only), vars_, pool_.semiring());
  EXPECT_TRUE(with_rules.ApproxEquals(without_rules, 1e-9));
}

TEST_F(CompileTest, StatsAreTracked) {
  ExprId e = pool_.AddS({pool_.MulS(V(0), V(1)), pool_.MulS(V(2), V(3))});
  DTreeCompiler compiler(&pool_, &vars_, CompileOptions());
  compiler.Compile(e);
  EXPECT_GE(compiler.stats().independence_splits, 1u);
  EXPECT_EQ(compiler.stats().mutex_expansions, 0u);
}

TEST_F(CompileTest, TensorFactorExtractionAcrossMonoidSum) {
  // Example 14 shape: x(y1 (x) 10 +SUM y2 (x) 50) arises from
  // x y1 (x) 10 + x y2 (x) 50 by factoring x out of the tensor terms.
  ExprId e = pool_.AddM(
      AggKind::kSum,
      pool_.Tensor(pool_.MulS(V(0), V(1)), pool_.ConstM(AggKind::kSum, 10)),
      pool_.Tensor(pool_.MulS(V(0), V(2)), pool_.ConstM(AggKind::kSum, 50)));
  DTreeCompiler compiler(&pool_, &vars_, CompileOptions());
  DTree t = compiler.Compile(e);
  EXPECT_EQ(t.MutexCount(), 0u);
  EXPECT_GE(compiler.stats().factorizations, 1u);
  EXPECT_EQ(t.node(t.root()).kind, DTreeNodeKind::kOtimes);
}

}  // namespace
}  // namespace pvcdb
