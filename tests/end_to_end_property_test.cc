// End-to-end property tests: for randomly generated small databases and
// randomly generated Q queries, the engine's two-step evaluation
// ([[.]] rewriting + d-tree probabilities) must agree with brute-force
// possible-world semantics: enumerate every world nu, run the query
// deterministically on the materialised world, and compare
//  - P[tuple in answer] against the d-tree probability of its annotation,
//  - the aggregate's world-wise value distribution against the d-tree
//    distribution of its semimodule expression.
// This exercises the *entire* pipeline (Definition 6 semantics, Figure 4
// rewriting, Algorithm 1, Theorem 2, pruning, clamping) in one oracle.

#include <gtest/gtest.h>

#include <map>

#include "src/dtree/validate.h"
#include "src/engine/database.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace pvcdb {
namespace {

struct WorldOracle {
  // For each distinct data-tuple rendering: probability mass of worlds
  // where it appears, and per aggregate column the value histogram.
  std::map<std::string, double> tuple_probability;
  std::map<std::string, std::map<int64_t, double>> agg_histogram;
};

std::string RenderDataCells(const PvcTable& t, const Row& r) {
  std::string key;
  for (size_t c = 0; c < t.schema().NumColumns(); ++c) {
    if (t.schema().column(c).type == CellType::kAggExpr) continue;
    key += r.cells[c].ToString() + "|";
  }
  return key;
}

// Enumerates all worlds of `db` (over its registered variables) and runs
// `q` deterministically in each.
WorldOracle EnumerateQueryWorlds(Database* db, const Query& q,
                                 const std::string& agg_column) {
  WorldOracle oracle;
  size_t n = db->variables().size();
  PVC_CHECK_MSG(n <= 16, "world enumeration too large for the oracle");
  // Supports are Bernoulli {0,1} in these tests.
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    double prob = 1.0;
    for (size_t i = 0; i < n; ++i) {
      const Distribution& d = db->variables().DistributionOf(
          static_cast<VarId>(i));
      prob *= (mask >> i) & 1 ? d.ProbOf(1) : d.ProbOf(0);
    }
    if (prob <= 0.0) continue;
    auto nu = [mask](VarId x) -> int64_t { return (mask >> x) & 1; };
    // Materialise the world into a scratch database.
    Database world;
    for (const std::string& name : db->TableNames()) {
      PvcTable w = db->table(name).MaterializeWorld(db->pool(), nu);
      PvcTable copy{w.schema()};
      for (const Row& r : w.rows()) {
        copy.AddRow(r.cells, world.pool().ConstS(1));
      }
      world.AddTable(name, std::move(copy));
    }
    PvcTable answer = world.RunDeterministic(q);
    for (size_t i = 0; i < answer.NumRows(); ++i) {
      const Row& r = answer.row(i);
      std::string key = RenderDataCells(answer, r);
      oracle.tuple_probability[key] += prob;
      if (!agg_column.empty()) {
        std::optional<size_t> idx = answer.schema().Find(agg_column);
        if (idx.has_value()) {
          int64_t value = world.pool().node(r.cells[*idx].AsAgg()).value;
          oracle.agg_histogram[key][value] += prob;
        }
      }
    }
  }
  return oracle;
}

void CheckQueryAgainstOracle(Database* db, const Query& q,
                             const std::string& agg_column) {
  PvcTable result = db->Run(q);
  WorldOracle oracle = EnumerateQueryWorlds(db, q, agg_column);
  for (size_t i = 0; i < result.NumRows(); ++i) {
    const Row& r = result.row(i);
    std::string key = RenderDataCells(result, r);
    double expected = 0.0;
    auto it = oracle.tuple_probability.find(key);
    if (it != oracle.tuple_probability.end()) expected = it->second;
    EXPECT_NEAR(db->TupleProbability(r), expected, 1e-9)
        << "tuple " << key << " of " << q.ToString();
    if (!agg_column.empty() &&
        result.schema().Find(agg_column).has_value()) {
      // Conditional (on presence) aggregate distribution vs oracle.
      Distribution d = db->ConditionalAggregateDistribution(result, i,
                                                            agg_column);
      const std::map<int64_t, double>& hist = oracle.agg_histogram[key];
      double mass = 0.0;
      for (const auto& [v, p] : hist) mass += p;
      for (const auto& [v, p] : hist) {
        EXPECT_NEAR(d.ProbOf(v), p / mass, 1e-9)
            << "agg value " << v << " of tuple " << key;
      }
    }
  }
  // Every oracle tuple with positive probability must appear in the
  // result (completeness of the representation).
  std::map<std::string, bool> present;
  for (size_t i = 0; i < result.NumRows(); ++i) {
    present[RenderDataCells(result, result.row(i))] = true;
  }
  for (const auto& [key, p] : oracle.tuple_probability) {
    if (p > 1e-12) {
      EXPECT_TRUE(present.count(key) > 0)
          << "missing tuple " << key << " with probability " << p;
    }
  }
}

class EndToEndPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  // Builds a random two-table database with <= 16 total tuples.
  void BuildRandomDatabase(Database* db, Rng* rng) {
    int r_rows = static_cast<int>(rng->UniformInt(2, 5));
    std::vector<std::vector<Cell>> r;
    std::vector<double> rp;
    for (int i = 0; i < r_rows; ++i) {
      r.push_back({Cell(rng->UniformInt(0, 2)), Cell(rng->UniformInt(1, 9))});
      rp.push_back(rng->UniformDouble(0.2, 0.9));
    }
    db->AddTupleIndependentTable(
        "R", Schema({{"rk", CellType::kInt}, {"rv", CellType::kInt}}),
        std::move(r), std::move(rp));
    int s_rows = static_cast<int>(rng->UniformInt(2, 5));
    std::vector<std::vector<Cell>> s;
    std::vector<double> sp;
    for (int i = 0; i < s_rows; ++i) {
      s.push_back({Cell(rng->UniformInt(0, 2)), Cell(rng->UniformInt(1, 9))});
      sp.push_back(rng->UniformDouble(0.2, 0.9));
    }
    db->AddTupleIndependentTable(
        "S", Schema({{"sk", CellType::kInt}, {"sv", CellType::kInt}}),
        std::move(s), std::move(sp));
  }
};

TEST_P(EndToEndPropertyTest, ProjectionOfJoin) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Database db;
  BuildRandomDatabase(&db, &rng);
  QueryPtr q = Query::Project(
      Query::Join(Query::Scan("R"), Query::Scan("S"),
                  Predicate::ColEqCol("rk", "sk")),
      {"rk"});
  CheckQueryAgainstOracle(&db, *q, "");
}

TEST_P(EndToEndPropertyTest, GroupedAggregateOverJoin) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  Database db;
  BuildRandomDatabase(&db, &rng);
  AggKind agg = static_cast<AggKind>(rng.UniformInt(0, 3));  // SUM..MAX.
  QueryPtr q = Query::GroupAgg(
      Query::Join(Query::Scan("R"), Query::Scan("S"),
                  Predicate::ColEqCol("rk", "sk")),
      {"rk"}, {{agg, agg == AggKind::kCount ? "" : "sv", "a"}});
  CheckQueryAgainstOracle(&db, *q, "a");
}

TEST_P(EndToEndPropertyTest, SelectionOnAggregate) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  Database db;
  BuildRandomDatabase(&db, &rng);
  int64_t threshold = rng.UniformInt(2, 15);
  CmpOp op = static_cast<CmpOp>(rng.UniformInt(0, 5));
  QueryPtr q = Query::Select(
      Query::GroupAgg(Query::Scan("R"), {"rk"},
                      {{AggKind::kSum, "rv", "a"}}),
      Predicate::ColCmpInt("a", op, threshold));
  CheckQueryAgainstOracle(&db, *q, "a");
}

TEST_P(EndToEndPropertyTest, UnionThenProject) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 300);
  Database db;
  // Two tables with identical schemas for the union.
  for (const char* name : {"A", "B"}) {
    std::vector<std::vector<Cell>> rows;
    std::vector<double> probs;
    int n = static_cast<int>(rng.UniformInt(2, 4));
    for (int i = 0; i < n; ++i) {
      rows.push_back({Cell(rng.UniformInt(0, 2)),
                      Cell(rng.UniformInt(1, 4))});
      probs.push_back(rng.UniformDouble(0.2, 0.9));
    }
    db.AddTupleIndependentTable(
        name, Schema({{"k", CellType::kInt}, {"v", CellType::kInt}}),
        std::move(rows), std::move(probs));
  }
  QueryPtr q = Query::Project(Query::Union(Query::Scan("A"),
                                           Query::Scan("B")),
                              {"k"});
  CheckQueryAgainstOracle(&db, *q, "");
}

TEST_P(EndToEndPropertyTest, CompiledDTreesAreStructurallyValid) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 400);
  Database db;
  BuildRandomDatabase(&db, &rng);
  QueryPtr q = Query::Select(
      Query::GroupAgg(Query::Join(Query::Scan("R"), Query::Scan("S"),
                                  Predicate::ColEqCol("rk", "sk")),
                      {"rk"}, {{AggKind::kMax, "sv", "a"}}),
      Predicate::ColCmpInt("a", CmpOp::kLe, 5));
  PvcTable result = db.Run(*q);
  for (const Row& r : result.rows()) {
    DTree tree = CompileToDTree(&db.pool(), &db.variables(), r.annotation);
    ValidationResult v = ValidateDTree(tree, db.variables());
    EXPECT_TRUE(v.valid) << v.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace pvcdb
