// Shared test fixture: the running-example database of Figure 1 --
// suppliers S, product-supplier pairs PS, and product tables P1 / P2 --
// with one Bernoulli variable per tuple.

#ifndef PVCDB_TESTS_FIGURE1_DB_H_
#define PVCDB_TESTS_FIGURE1_DB_H_

#include <map>
#include <string>

#include "src/engine/database.h"

namespace pvcdb {
namespace testing_fixtures {

struct Figure1Handles {
  // Variable ids keyed by the paper's names: x1..x5, y11..y51, z1..z5.
  std::map<std::string, VarId> vars;
};

/// Populates `db` with S(sid, shop), PS(sid, pid, price), P1(pid, weight),
/// P2(pid, weight) from Figure 1. `p` is the Bernoulli parameter used for
/// every tuple variable (the paper leaves distributions unspecified).
inline Figure1Handles BuildFigure1Database(Database* db, double p = 0.5) {
  Figure1Handles h;
  auto var = [&](const std::string& name) {
    VarId id = db->variables().AddBernoulli(p, name);
    h.vars[name] = id;
    return db->pool().Var(id);
  };

  {
    PvcTable s{Schema({{"sid", CellType::kInt}, {"shop", CellType::kString}})};
    s.AddRow({Cell(int64_t{1}), Cell("M&S")}, var("x1"));
    s.AddRow({Cell(int64_t{2}), Cell("M&S")}, var("x2"));
    s.AddRow({Cell(int64_t{3}), Cell("M&S")}, var("x3"));
    s.AddRow({Cell(int64_t{4}), Cell("Gap")}, var("x4"));
    s.AddRow({Cell(int64_t{5}), Cell("Gap")}, var("x5"));
    db->AddTable("S", std::move(s));
  }
  {
    PvcTable ps{Schema({{"ps_sid", CellType::kInt},
                        {"pid", CellType::kInt},
                        {"price", CellType::kInt}})};
    struct Entry {
      int64_t sid, pid, price;
      const char* name;
    };
    const Entry entries[] = {
        {1, 1, 10, "y11"}, {1, 2, 50, "y12"}, {2, 1, 11, "y21"},
        {2, 2, 60, "y22"}, {3, 3, 15, "y33"}, {3, 4, 40, "y34"},
        {4, 1, 15, "y41"}, {4, 3, 60, "y43"}, {5, 1, 10, "y51"},
    };
    for (const Entry& e : entries) {
      ps.AddRow({Cell(e.sid), Cell(e.pid), Cell(e.price)}, var(e.name));
    }
    db->AddTable("PS", std::move(ps));
  }
  {
    PvcTable p1{Schema({{"p_pid", CellType::kInt},
                        {"weight", CellType::kInt}})};
    p1.AddRow({Cell(int64_t{1}), Cell(int64_t{4})}, var("z1"));
    p1.AddRow({Cell(int64_t{2}), Cell(int64_t{8})}, var("z2"));
    p1.AddRow({Cell(int64_t{3}), Cell(int64_t{7})}, var("z3"));
    p1.AddRow({Cell(int64_t{4}), Cell(int64_t{6})}, var("z4"));
    db->AddTable("P1", std::move(p1));
  }
  {
    PvcTable p2{Schema({{"p_pid", CellType::kInt},
                        {"weight", CellType::kInt}})};
    p2.AddRow({Cell(int64_t{1}), Cell(int64_t{5})}, var("z5"));
    db->AddTable("P2", std::move(p2));
  }
  return h;
}

/// Q1 = pi_{shop, price}[S |x| PS |x| (P1 U P2)] (Figure 1d).
inline QueryPtr BuildFigure1Q1() {
  QueryPtr products = Query::Union(Query::Scan("P1"), Query::Scan("P2"));
  QueryPtr joined =
      Query::Join(Query::Scan("S"), Query::Scan("PS"),
                  Predicate::ColEqCol("sid", "ps_sid"));
  joined = Query::Join(joined, products, Predicate::ColEqCol("pid", "p_pid"));
  return Query::Project(joined, {"shop", "price"});
}

/// Q2 = pi_shop sigma_{P <= 50} $_{shop; P <- MAX(price)}[Q1] (Figure 1e).
inline QueryPtr BuildFigure1Q2() {
  QueryPtr agg = Query::GroupAgg(BuildFigure1Q1(), {"shop"},
                                 {{AggKind::kMax, "price", "P"}});
  QueryPtr filtered =
      Query::Select(agg, Predicate::ColCmpInt("P", CmpOp::kLe, 50));
  return Query::Project(filtered, {"shop"});
}

}  // namespace testing_fixtures
}  // namespace pvcdb

#endif  // PVCDB_TESTS_FIGURE1_DB_H_
