// End-to-end tests under the natural-number semiring (probabilistic bag
// semantics, Table 1's fourth row): annotations are random multiplicities,
// joins multiply them, projections/unions add them, and SUM aggregation
// weights values by multiplicity through the tensor action.

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/naive/possible_worlds.h"

namespace pvcdb {
namespace {

class BagSemanticsTest : public ::testing::Test {
 protected:
  BagSemanticsTest() : db_(SemiringKind::kNatural) {
    // R(k, v) with multiplicity variables over {0, 1, 2}.
    PvcTable r{Schema({{"k", CellType::kInt}, {"v", CellType::kInt}})};
    m0_ = db_.variables().Add(
        Distribution::FromPairs({{0, 0.2}, {1, 0.5}, {2, 0.3}}), "m0");
    m1_ = db_.variables().Add(
        Distribution::FromPairs({{0, 0.4}, {1, 0.6}}), "m1");
    r.AddRow({Cell(int64_t{1}), Cell(int64_t{10})}, db_.pool().Var(m0_));
    r.AddRow({Cell(int64_t{1}), Cell(int64_t{20})}, db_.pool().Var(m1_));
    db_.AddTable("R", std::move(r));

    PvcTable s{Schema({{"sk", CellType::kInt}})};
    m2_ = db_.variables().Add(
        Distribution::FromPairs({{0, 0.5}, {3, 0.5}}), "m2");
    s.AddRow({Cell(int64_t{1})}, db_.pool().Var(m2_));
    db_.AddTable("S", std::move(s));
  }

  Database db_;
  VarId m0_, m1_, m2_;
};

TEST_F(BagSemanticsTest, AnnotationDistributionIsMultiplicity) {
  Distribution d = db_.AnnotationDistribution(db_.table("R").row(0));
  EXPECT_NEAR(d.ProbOf(0), 0.2, 1e-12);
  EXPECT_NEAR(d.ProbOf(1), 0.5, 1e-12);
  EXPECT_NEAR(d.ProbOf(2), 0.3, 1e-12);
}

TEST_F(BagSemanticsTest, JoinMultipliesMultiplicities) {
  QueryPtr q = Query::Join(Query::Scan("R"), Query::Scan("S"),
                           Predicate::ColEqCol("k", "sk"));
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 2u);
  // Multiplicity of (10-row join S-row) = m0 * m2 in {0, 3, 6}.
  Distribution d = db_.AnnotationDistribution(result.row(0));
  // P[m0 * m2 = 0] = P[m0 = 0] + P[m2 = 0] - P[both] = .2 + .5 - .1.
  EXPECT_NEAR(d.ProbOf(0), 0.6, 1e-12);
  EXPECT_NEAR(d.ProbOf(3), 0.5 * 0.5, 1e-12);
  EXPECT_NEAR(d.ProbOf(6), 0.3 * 0.5, 1e-12);
}

TEST_F(BagSemanticsTest, ProjectionAddsMultiplicities) {
  QueryPtr q = Query::Project(Query::Scan("R"), {"k"});
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 1u);
  // Multiplicity of k=1 is m0 + m1 over {0..3}.
  Distribution d = db_.AnnotationDistribution(result.row(0));
  Distribution expected = EnumerateDistribution(
      db_.pool(), db_.variables(), result.row(0).annotation);
  EXPECT_TRUE(d.ApproxEquals(expected, 1e-9));
  EXPECT_NEAR(d.ProbOf(0), 0.2 * 0.4, 1e-12);
  EXPECT_NEAR(d.ProbOf(3), 0.3 * 0.6, 1e-12);
}

TEST_F(BagSemanticsTest, SumAggregationWeightsByMultiplicity) {
  // SUM(v) = m0 (x) 10 + m1 (x) 20 = 10 m0 + 20 m1.
  QueryPtr q = Query::GroupAgg(Query::Scan("R"), {},
                               {{AggKind::kSum, "v", "s"}});
  PvcTable result = db_.Run(*q);
  Distribution d = db_.AggregateDistribution(result, 0, "s");
  Distribution expected = EnumerateDistribution(
      db_.pool(), db_.variables(), result.CellAt(0, "s").AsAgg());
  EXPECT_TRUE(d.ApproxEquals(expected, 1e-9));
  // Spot values: m0=2, m1=1 -> 40; P = .3 * .6.
  EXPECT_NEAR(d.ProbOf(40), 0.3 * 0.6, 1e-12);
  EXPECT_NEAR(d.ProbOf(0), 0.2 * 0.4, 1e-12);
}

TEST_F(BagSemanticsTest, MinAggregationIgnoresMultiplicityBeyondPresence) {
  // MIN only cares whether the multiplicity is non-zero (Proposition 2's
  // reduction to Boolean variables).
  QueryPtr q = Query::GroupAgg(Query::Scan("R"), {},
                               {{AggKind::kMin, "v", "m"}});
  PvcTable result = db_.Run(*q);
  Distribution d = db_.AggregateDistribution(result, 0, "m");
  EXPECT_NEAR(d.ProbOf(10), 0.8, 1e-12);          // m0 > 0.
  EXPECT_NEAR(d.ProbOf(20), 0.2 * 0.6, 1e-12);    // m0 = 0, m1 > 0.
  EXPECT_NEAR(d.ProbOf(kPosInf), 0.2 * 0.4, 1e-12);
}

TEST_F(BagSemanticsTest, TupleProbabilityIsNonZeroMultiplicity) {
  EXPECT_NEAR(db_.TupleProbability(db_.table("R").row(0)), 0.8, 1e-12);
  EXPECT_NEAR(db_.TupleProbability(db_.table("S").row(0)), 0.5, 1e-12);
}

TEST_F(BagSemanticsTest, CountCountsDistinctTuplesTimesMultiplicity) {
  // Under bag semantics COUNT aggregates multiplicity-weighted 1s:
  // count = m0 * 1 + m1 * 1.
  QueryPtr q = Query::GroupAgg(Query::Scan("R"), {},
                               {{AggKind::kCount, "", "c"}});
  PvcTable result = db_.Run(*q);
  Distribution d = db_.AggregateDistribution(result, 0, "c");
  EXPECT_NEAR(d.ProbOf(3), 0.3 * 0.6, 1e-12);  // m0=2, m1=1.
  Distribution expected = EnumerateDistribution(
      db_.pool(), db_.variables(), result.CellAt(0, "c").AsAgg());
  EXPECT_TRUE(d.ApproxEquals(expected, 1e-9));
}

TEST_F(BagSemanticsTest, DeterministicBagSemantics) {
  // Table 1 row 2: degenerate multiplicity distributions.
  Database db(SemiringKind::kNatural);
  VarId m = db.variables().Add(Distribution::Point(3));
  PvcTable t{Schema({{"v", CellType::kInt}})};
  t.AddRow({Cell(int64_t{7})}, db.pool().Var(m));
  db.AddTable("T", std::move(t));
  QueryPtr q = Query::GroupAgg(Query::Scan("T"), {},
                               {{AggKind::kSum, "v", "s"}});
  PvcTable result = db.Run(*q);
  Distribution d = db.AggregateDistribution(result, 0, "s");
  EXPECT_TRUE(d.ApproxEquals(Distribution::Point(21), 1e-12))
      << "three copies of value 7 sum to 21";
}

}  // namespace
}  // namespace pvcdb
