#include "src/query/sql_rewrite.h"

#include <gtest/gtest.h>

#include "tests/figure1_db.h"

namespace pvcdb {
namespace {

TEST(SqlRewriteTest, ScanMatchesFigure4) {
  // [[R]] = select R.*, R.phi from R.
  EXPECT_EQ(RewriteToSql(*Query::Scan("R")),
            "select R.*, R.phi from R R");
}

TEST(SqlRewriteTest, SelectionBuildsConditionalProduct) {
  QueryPtr q = Query::Select(Query::Scan("R"),
                             Predicate::ColCmpInt("a", CmpOp::kLe, 5));
  std::string sql = RewriteToSql(*q);
  EXPECT_NE(sql.find("times_k(R.phi, cond(R.a, '<=', 5))"),
            std::string::npos)
      << sql;
}

TEST(SqlRewriteTest, ProjectionGroupsAndSumsAnnotations) {
  QueryPtr q = Query::Project(Query::Scan("R"), {"a", "b"});
  std::string sql = RewriteToSql(*q);
  EXPECT_NE(sql.find("sum_k(R.phi) as phi"), std::string::npos) << sql;
  EXPECT_NE(sql.find("group by R.a, R.b"), std::string::npos) << sql;
}

TEST(SqlRewriteTest, ProductMultipliesAnnotations) {
  QueryPtr q = Query::Product(Query::Scan("R"), Query::Scan("S"));
  std::string sql = RewriteToSql(*q);
  EXPECT_NE(sql.find("times_k(R.phi, S.phi) as phi"), std::string::npos)
      << sql;
}

TEST(SqlRewriteTest, UnionUsesUnionAllPlusGrouping) {
  QueryPtr q = Query::Union(Query::Scan("R"), Query::Scan("S"));
  std::string sql = RewriteToSql(*q);
  EXPECT_NE(sql.find("union all"), std::string::npos) << sql;
  EXPECT_NE(sql.find("group by R.*"), std::string::npos) << sql;
}

TEST(SqlRewriteTest, GroupedAggregationMatchesFigure4) {
  // [[$_{A; alpha<-MIN(B)}(R)]]: Gamma = sum_min(tensor(R.phi, R.B));
  // annotation cond(sum_k(R.phi), '!=', 0).
  QueryPtr q = Query::GroupAgg(Query::Scan("R"), {"A"},
                               {{AggKind::kMin, "B", "alpha"}});
  std::string sql = RewriteToSql(*q);
  EXPECT_NE(sql.find("sum_min(tensor(R.phi, R.B)) as alpha"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("cond(sum_k(R.phi), '!=', 0) as phi"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("group by R.A"), std::string::npos) << sql;
}

TEST(SqlRewriteTest, GrouplessAggregationAnnotatesWithOne) {
  // Example 8's rewriting: 1_K as phi, COUNT aggregates tensor(phi, 1).
  QueryPtr q = Query::GroupAgg(Query::Scan("P1"), {},
                               {{AggKind::kCount, "", "n"}});
  std::string sql = RewriteToSql(*q);
  EXPECT_NE(sql.find("sum_count(tensor(R.phi, 1)) as n"), std::string::npos)
      << sql;
  EXPECT_NE(sql.find("1 as phi"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("group by"), std::string::npos) << sql;
}

TEST(SqlRewriteTest, RenameAddsColumnCopy) {
  QueryPtr q = Query::Rename(Query::Scan("R"), "a", "b");
  std::string sql = RewriteToSql(*q);
  EXPECT_NE(sql.find("R.a as b"), std::string::npos) << sql;
}

TEST(SqlRewriteTest, NestedQueriesComposeTextually) {
  // The Figure 1 Q2 pipeline renders as nested derived tables.
  std::string sql = RewriteToSql(*testing_fixtures::BuildFigure1Q2());
  // One nested rewriting per operator; spot-check key fragments.
  EXPECT_NE(sql.find("sum_max(tensor(R.phi, R.price)) as P"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("cond(R.P, '<=', 50)"), std::string::npos) << sql;
  EXPECT_GE(std::count(sql.begin(), sql.end(), '('), 10);
}

}  // namespace
}  // namespace pvcdb
