#include "src/dtree/probability.h"

#include <gtest/gtest.h>

#include "src/dtree/compile.h"

namespace pvcdb {
namespace {

// Golden tests against the worked examples of the paper.

TEST(ProbabilityTest, SingleVariableLeaf) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.3);
  DTree t = CompileToDTree(&pool, &vars, pool.Var(x));
  Distribution d = ComputeDistribution(t, vars, pool.semiring());
  EXPECT_DOUBLE_EQ(d.ProbOf(1), 0.3);
  EXPECT_DOUBLE_EQ(d.ProbOf(0), 0.7);
}

TEST(ProbabilityTest, DisjunctionClosedForm) {
  // P[x + y = 1] = 1 - (1-p)(1-q) under B (Example 2).
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.3);
  VarId y = vars.AddBernoulli(0.6);
  DTree t = CompileToDTree(&pool, &vars, pool.AddS(pool.Var(x), pool.Var(y)));
  Distribution d = ComputeDistribution(t, vars, pool.semiring());
  EXPECT_NEAR(d.ProbOf(1), 1.0 - 0.7 * 0.4, 1e-12);
}

TEST(ProbabilityTest, ConjunctionProduct) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.3);
  VarId y = vars.AddBernoulli(0.6);
  DTree t = CompileToDTree(&pool, &vars, pool.MulS(pool.Var(x), pool.Var(y)));
  Distribution d = ComputeDistribution(t, vars, pool.semiring());
  EXPECT_NEAR(d.ProbOf(1), 0.18, 1e-12);
  EXPECT_NEAR(ProbabilityNonZero(t, vars, pool.semiring()), 0.18, 1e-12);
}

TEST(ProbabilityTest, ExampleElevenTensorConvolution) {
  // Phi = x with P = {(0,.3),(1,.3),(2,.4)}; alpha = y (x) 5 with
  // P_y = {(1,.4),(2,.4),(3,.2)}; over N with SUM:
  // P[alpha] = {(5,.4),(10,.4),(15,.2)}, and
  // P[Phi (x) alpha][10] = P_x[1] P_alpha[10] + P_x[2] P_alpha[5].
  ExprPool pool(SemiringKind::kNatural);
  VariableTable vars;
  VarId x = vars.Add(Distribution::FromPairs({{0, 0.3}, {1, 0.3}, {2, 0.4}}));
  VarId y = vars.Add(Distribution::FromPairs({{1, 0.4}, {2, 0.4}, {3, 0.2}}));
  ExprId alpha = pool.Tensor(pool.Var(y), pool.ConstM(AggKind::kSum, 5));
  {
    DTree t = CompileToDTree(&pool, &vars, alpha);
    Distribution d = ComputeDistribution(t, vars, pool.semiring());
    EXPECT_TRUE(d.ApproxEquals(
        Distribution::FromPairs({{5, 0.4}, {10, 0.4}, {15, 0.2}}), 1e-12));
  }
  ExprId full = pool.Tensor(pool.Var(x), alpha);
  DTree t = CompileToDTree(&pool, &vars, full);
  Distribution d = ComputeDistribution(t, vars, pool.semiring());
  EXPECT_NEAR(d.ProbOf(10), 0.3 * 0.4 + 0.4 * 0.4, 1e-12);
  // Other outcomes listed in the example: 0, 5, 15, 20, 30.
  for (int64_t v : {0, 5, 15, 20, 30}) {
    EXPECT_GT(d.ProbOf(v), 0.0) << "missing outcome " << v;
  }
  EXPECT_TRUE(d.IsNormalized(1e-9));
}

TEST(ProbabilityTest, ExampleElevenBooleanCase) {
  // Under B the outcomes are 0 and 5 with P[5] = P_x[1] P_y[1].
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.7);
  VarId y = vars.AddBernoulli(0.4);
  ExprId e = pool.Tensor(pool.MulS(pool.Var(x), pool.Var(y)),
                         pool.ConstM(AggKind::kSum, 5));
  DTree t = CompileToDTree(&pool, &vars, e);
  Distribution d = ComputeDistribution(t, vars, pool.semiring());
  EXPECT_NEAR(d.ProbOf(5), 0.28, 1e-12);
  EXPECT_NEAR(d.ProbOf(0), 0.72, 1e-12);
}

class Example12Test : public ::testing::Test {
 protected:
  // Figure 5 / Example 12: each variable in {a, b, c} takes value 1 with
  // probability p and value 2 with probability 1-p.
  Example12Test() {
    pa_ = 0.6;
    pb_ = 0.7;
    pc_ = 0.5;
  }

  // Builds alpha = a(b + c) (x) 10 + c (x) 20 over the given pool.
  ExprId BuildAlpha(ExprPool* pool, AggKind agg) {
    ExprId a = pool->Var(a_);
    ExprId b = pool->Var(b_);
    ExprId c = pool->Var(c_);
    return pool->AddM(
        agg,
        pool->Tensor(pool->MulS(a, pool->AddS(b, c)), pool->ConstM(agg, 10)),
        pool->Tensor(c, pool->ConstM(agg, 20)));
  }

  void SetupIntegerVars(VariableTable* vars) {
    a_ = vars->Add(Distribution::FromPairs({{1, pa_}, {2, 1 - pa_}}), "a");
    b_ = vars->Add(Distribution::FromPairs({{1, pb_}, {2, 1 - pb_}}), "b");
    c_ = vars->Add(Distribution::FromPairs({{1, pc_}, {2, 1 - pc_}}), "c");
  }

  double pa_, pb_, pc_;
  VarId a_, b_, c_;
};

TEST_F(Example12Test, SumMonoidFullDistribution) {
  ExprPool pool(SemiringKind::kNatural);
  VariableTable vars;
  SetupIntegerVars(&vars);
  DTree t = CompileToDTree(&pool, &vars, BuildAlpha(&pool, AggKind::kSum));
  Distribution d = ComputeDistribution(t, vars, pool.semiring());
  const double pa = pa_, pb = pb_, pc = pc_;
  const double qa = 1 - pa, qb = 1 - pb, qc = 1 - pc;
  // The paper's final distribution:
  // {(40, pa pb pc), (50, pa qb pc), (60, qa pb pc), (70, pa pb qc),
  //  (80, qa qb pc + pa qb qc), (100, qa pb qc), (120, qa qb qc)}.
  EXPECT_NEAR(d.ProbOf(40), pa * pb * pc, 1e-12);
  EXPECT_NEAR(d.ProbOf(50), pa * qb * pc, 1e-12);
  EXPECT_NEAR(d.ProbOf(60), qa * pb * pc, 1e-12);
  EXPECT_NEAR(d.ProbOf(70), pa * pb * qc, 1e-12);
  EXPECT_NEAR(d.ProbOf(80), qa * qb * pc + pa * qb * qc, 1e-12);
  EXPECT_NEAR(d.ProbOf(100), qa * pb * qc, 1e-12);
  EXPECT_NEAR(d.ProbOf(120), qa * qb * qc, 1e-12);
  EXPECT_EQ(d.size(), 7u);
  EXPECT_TRUE(d.IsNormalized(1e-9));
}

TEST_F(Example12Test, MinMonoidIsDegenerate) {
  // "In case of MIN aggregation, the distribution ... is {(10, 1)}":
  // with values in {1, 2} every world realises min = 10.
  ExprPool pool(SemiringKind::kNatural);
  VariableTable vars;
  SetupIntegerVars(&vars);
  DTree t = CompileToDTree(&pool, &vars, BuildAlpha(&pool, AggKind::kMin));
  Distribution d = ComputeDistribution(t, vars, pool.semiring());
  EXPECT_TRUE(d.ApproxEquals(Distribution::Point(10), 1e-12));
}

TEST_F(Example12Test, BooleanMinCase) {
  // Boolean semiring with MIN: the example's third case; P[10], P[20],
  // P[inf] have the stated products.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  a_ = vars.AddBernoulli(pa_, "a");
  b_ = vars.AddBernoulli(pb_, "b");
  c_ = vars.AddBernoulli(pc_, "c");
  // Note: under B, "c <- bottom / top" maps to the two branches. In the
  // example's notation p_x is the probability of value 1 (= top here... the
  // example uses 1,2; under B we use the Bernoulli probabilities directly).
  DTree t = CompileToDTree(&pool, &vars, BuildAlpha(&pool, AggKind::kMin));
  Distribution d = ComputeDistribution(t, vars, pool.semiring());
  const double pa = pa_, pb = pb_, pc = pc_;
  // P[10] = P[a(b+c) = 1]; P[20] = P[a(b+c) = 0 and c = 1];
  // P[inf] = remaining mass.
  double p10 = pa * (1 - (1 - pb) * (1 - pc));
  double p20 = (1 - pa * (1 - (1 - pb) * (1 - pc))) * pc;
  // Careful: events overlap; compute exactly: 10 wins whenever a(b+c)=1.
  // 20 occurs when c=1 and not(a(b+c)=1) -> a=0, c=1.
  p20 = (1 - pa) * pc;
  EXPECT_NEAR(d.ProbOf(10), p10, 1e-12);
  EXPECT_NEAR(d.ProbOf(20), p20, 1e-12);
  EXPECT_NEAR(d.ProbOf(kPosInf), 1.0 - p10 - p20, 1e-12);
}

TEST(ProbabilityTest, MutexMixesBranchDistributions) {
  // Non-Boolean variable: x in {1, 2, 3} each 1/3; e = [x + x >= 4].
  ExprPool pool(SemiringKind::kNatural);
  VariableTable vars;
  VarId x = vars.Add(Distribution::FromPairs(
      {{1, 1.0 / 3}, {2, 1.0 / 3}, {3, 1.0 / 3}}));
  ExprId e = pool.Cmp(CmpOp::kGe, pool.AddS(pool.Var(x), pool.Var(x)),
                      pool.ConstS(4));
  DTree t = CompileToDTree(&pool, &vars, e);
  Distribution d = ComputeDistribution(t, vars, pool.semiring());
  EXPECT_NEAR(d.ProbOf(1), 2.0 / 3, 1e-12);  // x = 2 or 3.
  EXPECT_NEAR(d.ProbOf(0), 1.0 / 3, 1e-12);
}

TEST(ProbabilityTest, SumClampingPreservesComparisons) {
  // COUNT comparison against a small constant: with and without clamping,
  // identical results.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<ExprId> terms;
  for (int i = 0; i < 12; ++i) {
    VarId x = vars.AddBernoulli(0.4);
    terms.push_back(
        pool.Tensor(pool.Var(x), pool.ConstM(AggKind::kCount, 1)));
  }
  ExprId e = pool.Cmp(CmpOp::kLe, pool.AddM(AggKind::kCount, terms),
                      pool.ConstM(AggKind::kCount, 3));
  DTree t = CompileToDTree(&pool, &vars, e);
  ProbabilityOptions with;
  ProbabilityOptions without;
  without.enable_sum_clamping = false;
  Distribution d1 = ComputeDistribution(t, vars, pool.semiring(), with);
  Distribution d2 = ComputeDistribution(t, vars, pool.semiring(), without);
  EXPECT_TRUE(d1.ApproxEquals(d2, 1e-9));
}

TEST(ProbabilityTest, CountDistributionIsBinomial) {
  // n independent presence variables with COUNT: Binomial(n, p).
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  const int n = 6;
  const double p = 0.3;
  std::vector<ExprId> terms;
  for (int i = 0; i < n; ++i) {
    VarId x = vars.AddBernoulli(p);
    terms.push_back(
        pool.Tensor(pool.Var(x), pool.ConstM(AggKind::kCount, 1)));
  }
  DTree t = CompileToDTree(&pool, &vars, pool.AddM(AggKind::kCount, terms));
  Distribution d = ComputeDistribution(t, vars, pool.semiring());
  auto binomial = [&](int k) {
    double coeff = 1.0;
    for (int i = 0; i < k; ++i) coeff = coeff * (n - i) / (i + 1);
    return coeff * std::pow(p, k) * std::pow(1 - p, n - k);
  };
  for (int k = 0; k <= n; ++k) {
    EXPECT_NEAR(d.ProbOf(k), binomial(k), 1e-12) << "k=" << k;
  }
}

TEST(ProbabilityTest, EmptyGroupAnnotationFromFigure1) {
  // Example 9: with x1, x2, x3 -> 0, the M&S MIN-group annotation
  // evaluates to [inf <= 50] * 0 = 0; overall P reflects the group
  // emptiness condition Psi1.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x1 = vars.AddBernoulli(0.5);
  ExprId alpha =
      pool.Tensor(pool.Var(x1), pool.ConstM(AggKind::kMin, 60));
  ExprId cond = pool.Cmp(CmpOp::kLe, alpha, pool.ConstM(AggKind::kMin, 50));
  ExprId ann = pool.MulS(
      cond, pool.Cmp(CmpOp::kNe, pool.Var(x1), pool.ConstS(0)));
  DTree t = CompileToDTree(&pool, &vars, ann);
  EXPECT_NEAR(ProbabilityNonZero(t, vars, pool.semiring()), 0.0, 1e-12);
}

TEST(ProbabilityTest, NonZeroProbabilityOfBagAnnotation) {
  // Under N, annotations are multiplicities; P[Phi != 0] counts worlds
  // with at least one copy.
  ExprPool pool(SemiringKind::kNatural);
  VariableTable vars;
  VarId x = vars.Add(Distribution::FromPairs({{0, 0.25}, {2, 0.75}}));
  DTree t = CompileToDTree(&pool, &vars, pool.Var(x));
  EXPECT_NEAR(ProbabilityNonZero(t, vars, pool.semiring()), 0.75, 1e-12);
}

}  // namespace
}  // namespace pvcdb
