// Tests for the IVM subsystem (src/engine/view.h, src/engine/delta.h):
// random interleavings of inserts, deletes and probability updates against
// registered materialized views, asserting after *every* mutation that the
// view's tuples and its cached TupleProbabilities output are bit-identical
// to a from-scratch rebuild + re-evaluation on the same final state --
// unsharded and for shards in {1, 2, 4, 8} x threads in {1, 4}.

#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/engine/shard.h"
#include "src/query/ast.h"
#include "src/util/check.h"

namespace pvcdb {
namespace {

constexpr size_t kShardGrid[] = {1, 2, 4, 8};
constexpr int kThreadGrid[] = {1, 4};

// Ground truth for rebuilds: the current logical content of every table,
// plus the full variable registry. The registry (the probability space X)
// is part of the database state: a from-scratch rebuild replays variable
// creation in the original order with the *current* marginals -- the ids
// and the relative interning order of variables feed the pool's canonical
// expression forms, so this is what makes the rebuild's floating-point
// pipeline reproduce the mutated engine bit for bit.
struct TableSpec {
  std::string name;
  Schema schema;
  std::vector<std::vector<Cell>> rows;
  std::vector<VarId> row_vars;  ///< The variable annotating each row.
};

struct DbSpec {
  std::vector<TableSpec> tables;
  /// Every variable ever created, in creation order, with its current
  /// marginal (variables of deleted rows stay registered, as in the live
  /// engine).
  std::vector<double> var_probs;

  TableSpec& table(const std::string& name) {
    for (TableSpec& t : tables) {
      if (t.name == name) return t;
    }
    PVC_FAIL("no spec table " << name);
  }

  VarId NewVar(double p) {
    var_probs.push_back(p);
    return static_cast<VarId>(var_probs.size() - 1);
  }
};

// Replays the registry and interns every variable's pool node in creation
// order (matching the live engine, where Var nodes are interned as the
// variables appear), then loads the tables.
template <typename DB>
void RebuildFromSpec(DB* db, ExprPool* pool, const DbSpec& spec) {
  for (size_t x = 0; x < spec.var_probs.size(); ++x) {
    db->variables().AddBernoulli(spec.var_probs[x]);
    pool->Var(static_cast<VarId>(x));
  }
  for (const TableSpec& t : spec.tables) {
    db->AddVariableAnnotatedTable(t.name, t.schema, t.rows, t.row_vars);
  }
}

std::unique_ptr<Database> FreshDatabase(const DbSpec& spec, int threads) {
  auto db = std::make_unique<Database>();
  db->eval_options().num_threads = threads;
  RebuildFromSpec(db.get(), &db->pool(), spec);
  return db;
}

std::unique_ptr<ShardedDatabase> FreshSharded(const DbSpec& spec,
                                              size_t shards, int threads) {
  auto db = std::make_unique<ShardedDatabase>(shards);
  db->eval_options().num_threads = threads;
  RebuildFromSpec(db.get(), &db->coordinator().pool(), spec);
  return db;
}

// The stress spec: one driving table T plus join sides L and R.
DbSpec MakeSpec(std::mt19937* gen, size_t t_rows, size_t l_rows,
                size_t r_rows) {
  std::uniform_int_distribution<int64_t> group(0, 4);
  std::uniform_int_distribution<int64_t> value(0, 99);
  std::uniform_real_distribution<double> prob(0.05, 0.95);
  DbSpec spec;
  TableSpec t;
  t.name = "T";
  t.schema = Schema({{"id", CellType::kInt},
                     {"g", CellType::kInt},
                     {"v", CellType::kInt}});
  for (size_t i = 0; i < t_rows; ++i) {
    t.rows.push_back({Cell(static_cast<int64_t>(i)), Cell(group(*gen)),
                      Cell(value(*gen))});
    t.row_vars.push_back(spec.NewVar(prob(*gen)));
  }
  spec.tables.push_back(std::move(t));

  TableSpec l;
  l.name = "L";
  l.schema = Schema({{"lk", CellType::kInt}, {"lv", CellType::kInt}});
  for (size_t i = 0; i < l_rows; ++i) {
    l.rows.push_back({Cell(group(*gen)), Cell(value(*gen))});
    l.row_vars.push_back(spec.NewVar(prob(*gen)));
  }
  spec.tables.push_back(std::move(l));

  TableSpec r;
  r.name = "R";
  r.schema = Schema({{"rk", CellType::kInt}, {"rv", CellType::kInt}});
  for (size_t i = 0; i < r_rows; ++i) {
    r.rows.push_back({Cell(group(*gen)), Cell(value(*gen))});
    r.row_vars.push_back(spec.NewVar(prob(*gen)));
  }
  spec.tables.push_back(std::move(r));
  return spec;
}

QueryPtr ChainQuery() {
  return Query::Select(Query::Scan("T"),
                       Predicate::ColCmpInt("v", CmpOp::kGe, 30));
}

QueryPtr ChainRenameQuery() {
  QueryPtr q = Query::Select(Query::Scan("T"),
                             Predicate::ColCmpInt("v", CmpOp::kGe, 10));
  q = Query::Rename(q, "g", "g2");
  return Query::Select(q, Predicate::ColCmpInt("g2", CmpOp::kLe, 3));
}

QueryPtr ProjectQuery() {
  return Query::Project(
      Query::Select(Query::Scan("T"),
                    Predicate::ColCmpInt("v", CmpOp::kGe, 20)),
      {"g"});
}

QueryPtr JoinQuery() {
  Predicate pred = Predicate::ColEqCol("lk", "rk");
  pred.And({CmpOp::kLe, Operand::Col("lv"), Operand::Col("rv")});
  return Query::Select(Query::Product(Query::Scan("L"), Query::Scan("R")),
                       pred);
}

QueryPtr GroupQuery() {
  return Query::GroupAgg(Query::Scan("T"), {"g"},
                         {{AggKind::kCount, "", "n"}});
}

// One random mutation, applied to the live database and the spec alike.
// Returns a description for failure messages.
template <typename DB>
std::string MutateOnce(DB* db, DbSpec* spec, std::mt19937* gen,
                       int64_t* next_id) {
  std::uniform_int_distribution<int> op(0, 5);
  std::uniform_int_distribution<int64_t> group(0, 4);
  std::uniform_int_distribution<int64_t> value(0, 99);
  std::uniform_real_distribution<double> prob(0.05, 0.95);
  std::uniform_int_distribution<int> table_pick(0, 2);

  int o = op(*gen);
  if (o <= 2) {
    // Insert into a random table.
    TableSpec& t = spec->tables[table_pick(*gen)];
    std::vector<Cell> cells;
    if (t.name == "T") {
      cells = {Cell((*next_id)++), Cell(group(*gen)), Cell(value(*gen))};
    } else {
      cells = {Cell(group(*gen)), Cell(value(*gen))};
    }
    double p = prob(*gen);
    db->InsertTuple(t.name, cells, p);
    t.rows.push_back(cells);
    t.row_vars.push_back(spec->NewVar(p));
    return "insert into " + t.name;
  }
  if (o <= 4) {
    // Delete a random row of a random non-empty table. The row's variable
    // stays registered, exactly as in the live engine.
    for (int attempt = 0; attempt < 3; ++attempt) {
      TableSpec& t = spec->tables[table_pick(*gen)];
      if (t.rows.empty()) continue;
      std::uniform_int_distribution<size_t> pick(0, t.rows.size() - 1);
      size_t index = pick(*gen);
      db->DeleteRowAt(t.name, index);
      t.rows.erase(t.rows.begin() + index);
      t.row_vars.erase(t.row_vars.begin() + index);
      return "delete " + t.name + "[" + std::to_string(index) + "]";
    }
    return "delete (skipped: empty)";
  }
  // Probability update of a random row's variable; occasionally to the
  // support-changing boundaries 0 and 1.
  for (int attempt = 0; attempt < 3; ++attempt) {
    TableSpec& t = spec->tables[table_pick(*gen)];
    if (t.rows.empty()) continue;
    std::uniform_int_distribution<size_t> pick(0, t.rows.size() - 1);
    size_t index = pick(*gen);
    std::uniform_int_distribution<int> boundary(0, 9);
    int b = boundary(*gen);
    double p = b == 0 ? 0.0 : (b == 1 ? 1.0 : prob(*gen));
    VarId var = t.row_vars[index];
    db->UpdateProbability(var, p);
    spec->var_probs[var] = p;
    return "setprob " + t.name + "[" + std::to_string(index) + "] = " +
           std::to_string(p);
  }
  return "setprob (skipped: empty)";
}

// Data cells compare directly; aggregation cells hold pool-local ExprIds,
// which are meaningless across two databases -- their distributions are
// compared separately by the callers.
void ExpectSameCells(const std::vector<Cell>& a, const std::vector<Cell>& b,
                     const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t c = 0; c < a.size(); ++c) {
    if (a[c].type() == CellType::kAggExpr ||
        b[c].type() == CellType::kAggExpr) {
      EXPECT_EQ(a[c].type(), b[c].type()) << what << " cell " << c;
      continue;
    }
    EXPECT_TRUE(a[c] == b[c]) << what << " cell " << c;
  }
}

void ExpectSameDistribution(const Distribution& a, const Distribution& b,
                            const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].first, b.entries()[i].first) << what;
    EXPECT_EQ(a.entries()[i].second, b.entries()[i].second) << what;
  }
}

// The view's cached tuples and probabilities must be bit-identical to a
// fresh evaluation of `query` on `fresh` (a from-scratch rebuild of the
// same logical state).
void ExpectViewMatchesFresh(Database* ivm, const std::string& name,
                            Database* fresh, const Query& query,
                            const std::string& what) {
  const PvcTable& view = ivm->ViewTable(name);
  PvcTable expected = fresh->Run(query);
  ASSERT_EQ(view.NumRows(), expected.NumRows()) << what;
  ASSERT_TRUE(view.schema() == expected.schema()) << what;
  for (size_t i = 0; i < view.NumRows(); ++i) {
    ExpectSameCells(view.row(i).cells, expected.row(i).cells,
                    what + " row " + std::to_string(i));
  }
  std::vector<double> view_probs = ivm->ViewProbabilities(name);
  std::vector<double> expected_probs = fresh->TupleProbabilities(expected);
  ASSERT_EQ(view_probs.size(), expected_probs.size()) << what;
  for (size_t i = 0; i < view_probs.size(); ++i) {
    EXPECT_EQ(view_probs[i], expected_probs[i])
        << what << " P[row " << i << "]";
  }
  // Aggregation columns: the expressions live in different pools, so
  // compare their (conditional) distributions instead.
  for (size_t c = 0; c < expected.schema().NumColumns(); ++c) {
    if (expected.schema().column(c).type != CellType::kAggExpr) continue;
    const std::string& column = expected.schema().column(c).name;
    for (size_t i = 0; i < expected.NumRows(); ++i) {
      ExpectSameDistribution(
          ivm->ConditionalAggregateDistribution(view, i, column),
          fresh->ConditionalAggregateDistribution(expected, i, column),
          what + " " + column + " | present, row " + std::to_string(i));
    }
  }
}

void ExpectShardedViewMatchesFresh(ShardedDatabase* ivm,
                                   const std::string& name,
                                   ShardedDatabase* fresh, const Query& query,
                                   const std::string& what) {
  ShardedResult view = ivm->ViewResult(name);
  ShardedResult expected = fresh->Run(query);
  ASSERT_EQ(view.NumRows(), expected.NumRows()) << what;
  ASSERT_TRUE(view.schema() == expected.schema()) << what;
  for (size_t i = 0; i < view.NumRows(); ++i) {
    ExpectSameCells(view.cells(i), expected.cells(i),
                    what + " row " + std::to_string(i));
  }
  std::vector<double> view_probs = ivm->ViewProbabilities(name);
  std::vector<double> expected_probs = fresh->TupleProbabilities(expected);
  ASSERT_EQ(view_probs.size(), expected_probs.size()) << what;
  for (size_t i = 0; i < view_probs.size(); ++i) {
    EXPECT_EQ(view_probs[i], expected_probs[i])
        << what << " P[row " << i << "]";
  }
  for (size_t c = 0; c < expected.schema().NumColumns(); ++c) {
    if (expected.schema().column(c).type != CellType::kAggExpr) continue;
    const std::string& column = expected.schema().column(c).name;
    for (size_t i = 0; i < expected.NumRows(); ++i) {
      ExpectSameDistribution(
          ivm->ConditionalAggregateDistribution(view, i, column),
          fresh->ConditionalAggregateDistribution(expected, i, column),
          what + " " + column + " | present, row " + std::to_string(i));
    }
  }
}

// -- Unsharded property tests ----------------------------------------------

struct NamedQuery {
  const char* name;
  QueryPtr query;
  MaterializedView::PlanKind plan;
};

std::vector<NamedQuery> AllViews() {
  return {
      {"v_chain", ChainQuery(), MaterializedView::PlanKind::kChain},
      {"v_rename", ChainRenameQuery(), MaterializedView::PlanKind::kChain},
      {"v_project", ProjectQuery(),
       MaterializedView::PlanKind::kProjectChain},
      {"v_join", JoinQuery(), MaterializedView::PlanKind::kJoin},
      {"v_group", GroupQuery(), MaterializedView::PlanKind::kRecompute},
  };
}

void RunUnshardedProperty(int threads, uint32_t seed, int steps) {
  std::mt19937 gen(seed);
  DbSpec spec = MakeSpec(&gen, 14, 12, 10);
  std::unique_ptr<Database> ivm = FreshDatabase(spec, threads);
  std::vector<NamedQuery> views = AllViews();
  for (const NamedQuery& v : views) {
    ivm->RegisterView(v.name, v.query);
    EXPECT_EQ(ivm->views().view(v.name).plan(), v.plan) << v.name;
  }
  int64_t next_id = static_cast<int64_t>(spec.table("T").rows.size());
  for (int step = 0; step < steps; ++step) {
    std::string op = MutateOnce(ivm.get(), &spec, &gen, &next_id);
    std::unique_ptr<Database> fresh = FreshDatabase(spec, threads);
    for (const NamedQuery& v : views) {
      ExpectViewMatchesFresh(ivm.get(), v.name, fresh.get(), *v.query,
                             std::string(v.name) + " after step " +
                                 std::to_string(step) + " (" + op + ")");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(IvmPropertyTest, RandomMutationsSerial) {
  RunUnshardedProperty(/*threads=*/1, /*seed=*/1234, /*steps=*/40);
}

TEST(IvmPropertyTest, RandomMutationsThreaded) {
  RunUnshardedProperty(/*threads=*/4, /*seed=*/5678, /*steps=*/40);
}

// The maintained view must also match a recompute *within the same pool*
// (the engine's own Run on the mutated database).
TEST(IvmPropertyTest, ViewMatchesOwnRecompute) {
  std::mt19937 gen(42);
  DbSpec spec = MakeSpec(&gen, 14, 12, 10);
  std::unique_ptr<Database> ivm = FreshDatabase(spec, 1);
  QueryPtr join = JoinQuery();
  QueryPtr project = ProjectQuery();
  ivm->RegisterView("v_join", join);
  ivm->RegisterView("v_project", project);
  int64_t next_id = 14;
  for (int step = 0; step < 25; ++step) {
    MutateOnce(ivm.get(), &spec, &gen, &next_id);
    for (const auto& [name, query] :
         {std::pair<std::string, QueryPtr>{"v_join", join},
          {"v_project", project}}) {
      const PvcTable& view = ivm->ViewTable(name);
      PvcTable recomputed = ivm->Run(*query);
      ASSERT_EQ(view.NumRows(), recomputed.NumRows()) << name;
      for (size_t i = 0; i < view.NumRows(); ++i) {
        // Same pool: hash-consing makes equal annotations equal ids.
        EXPECT_EQ(view.row(i).annotation, recomputed.row(i).annotation)
            << name << " row " << i;
        ExpectSameCells(view.row(i).cells, recomputed.row(i).cells,
                        name + " row " + std::to_string(i));
      }
    }
  }
}

// -- Sharded grid ----------------------------------------------------------

TEST(IvmShardedTest, GridMatchesFreshRebuildAndUnsharded) {
  for (size_t shards : kShardGrid) {
    for (int threads : kThreadGrid) {
      std::mt19937 gen(900 + static_cast<uint32_t>(shards) * 10 +
                       static_cast<uint32_t>(threads));
      DbSpec spec = MakeSpec(&gen, 14, 12, 10);
      std::unique_ptr<ShardedDatabase> ivm =
          FreshSharded(spec, shards, threads);
      QueryPtr chain = ChainQuery();
      QueryPtr rename = ChainRenameQuery();
      QueryPtr group = GroupQuery();
      ivm->RegisterView("v_chain", chain);
      ivm->RegisterView("v_rename", rename);
      ivm->RegisterView("v_group", group);  // Coordinator fallback.
      int64_t next_id = 14;
      for (int step = 0; step < 12; ++step) {
        std::string op = MutateOnce(ivm.get(), &spec, &gen, &next_id);
        std::string what = "shards=" + std::to_string(shards) +
                           " threads=" + std::to_string(threads) +
                           " step " + std::to_string(step) + " (" + op + ")";
        std::unique_ptr<ShardedDatabase> fresh =
            FreshSharded(spec, shards, threads);
        std::unique_ptr<Database> unsharded = FreshDatabase(spec, 1);
        for (const auto& [name, query] :
             {std::pair<const char*, QueryPtr>{"v_chain", chain},
              {"v_rename", rename},
              {"v_group", group}}) {
          ExpectShardedViewMatchesFresh(ivm.get(), name, fresh.get(), *query,
                                        what + " " + name);
          if (::testing::Test::HasFatalFailure()) return;
          // Cross-check against the unsharded engine (the PR 3 contract).
          std::vector<double> sharded_probs = ivm->ViewProbabilities(name);
          std::vector<double> unsharded_probs =
              unsharded->TupleProbabilities(unsharded->Run(*query));
          ASSERT_EQ(sharded_probs.size(), unsharded_probs.size())
              << what << " " << name;
          for (size_t i = 0; i < sharded_probs.size(); ++i) {
            EXPECT_EQ(sharded_probs[i], unsharded_probs[i])
                << what << " " << name << " P[row " << i << "]";
          }
        }
      }
    }
  }
}

// -- Targeted cache behaviour ----------------------------------------------

TEST(IvmCacheTest, InsertOnlyCompilesTheNewTuple) {
  std::mt19937 gen(7);
  DbSpec spec = MakeSpec(&gen, 20, 0, 0);
  spec.tables.resize(1);
  std::unique_ptr<Database> db = FreshDatabase(spec, 1);
  db->RegisterView("v", ChainQuery());
  db->ViewProbabilities("v");  // Warm.
  const StepTwoCache::Stats& stats = db->views().view("v").step_two().stats();
  size_t warm_misses = stats.misses;
  // A surviving insert adds exactly one annotation to compile.
  db->InsertTuple("T", {Cell(int64_t{100}), Cell(int64_t{0}),
                        Cell(int64_t{90})},
                  0.5);
  std::vector<double> probs = db->ViewProbabilities("v");
  EXPECT_EQ(stats.misses, warm_misses + 1);
  EXPECT_EQ(probs.size(), db->ViewTable("v").NumRows());
}

TEST(IvmCacheTest, ProbabilityUpdateRefreshesOnlyMentioningTuples) {
  std::mt19937 gen(8);
  DbSpec spec = MakeSpec(&gen, 20, 0, 0);
  spec.tables.resize(1);
  std::unique_ptr<Database> db = FreshDatabase(spec, 1);
  db->RegisterView("v", ChainQuery());
  size_t view_rows = db->ViewTable("v").NumRows();
  ASSERT_GT(view_rows, 0u);
  db->ViewProbabilities("v");  // Warm.
  const StepTwoCache::Stats& stats = db->views().view("v").step_two().stats();
  size_t warm_misses = stats.misses;

  // Update a variable that occurs in the view: exactly one cached d-tree
  // mentions it (chain annotations are single variables). Find a base row
  // surviving the v >= 30 filter.
  size_t base_row = 0;
  const PvcTable& base = db->table("T");
  bool found = false;
  for (size_t i = 0; i < base.NumRows() && !found; ++i) {
    if (base.row(i).cells[2].AsInt() >= 30) {
      base_row = i;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  VarId var = spec.table("T").row_vars[base_row];
  db->UpdateProbability(var, 0.42);
  EXPECT_EQ(stats.refreshed, 1u);

  // No recompilation on the next pass -- refreshed in place.
  std::vector<double> probs = db->ViewProbabilities("v");
  EXPECT_EQ(stats.misses, warm_misses);

  // And the refreshed value matches a fresh rebuild bit for bit.
  DbSpec updated = spec;
  updated.var_probs[var] = 0.42;
  std::unique_ptr<Database> fresh = FreshDatabase(updated, 1);
  std::vector<double> expected =
      fresh->TupleProbabilities(fresh->Run(*ChainQuery()));
  ASSERT_EQ(probs.size(), expected.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_EQ(probs[i], expected[i]) << "P[row " << i << "]";
  }
}

TEST(IvmCacheTest, SupportChangeDropsAndRecompiles) {
  std::mt19937 gen(9);
  DbSpec spec = MakeSpec(&gen, 10, 0, 0);
  spec.tables.resize(1);
  std::unique_ptr<Database> db = FreshDatabase(spec, 1);
  db->RegisterView("v", ChainQuery());
  db->ViewProbabilities("v");
  const StepTwoCache::Stats& stats = db->views().view("v").step_two().stats();

  const PvcTable& base = db->table("T");
  size_t base_row = 0;
  bool found = false;
  for (size_t i = 0; i < base.NumRows() && !found; ++i) {
    if (base.row(i).cells[2].AsInt() >= 30) {
      base_row = i;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  VarId var = spec.table("T").row_vars[base_row];
  db->UpdateProbability(var, 1.0);  // Support {0,1} -> {1}: entry dropped.
  EXPECT_EQ(stats.dropped, 1u);
  std::vector<double> probs = db->ViewProbabilities("v");

  DbSpec updated = spec;
  updated.var_probs[var] = 1.0;
  std::unique_ptr<Database> fresh = FreshDatabase(updated, 1);
  std::vector<double> expected =
      fresh->TupleProbabilities(fresh->Run(*ChainQuery()));
  ASSERT_EQ(probs.size(), expected.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_EQ(probs[i], expected[i]) << "P[row " << i << "]";
  }
}

// The two join sides' key columns sit at different schema positions
// (left key at index 1, right key at index 0): probes must extract key
// cells with the probing side's own indices.
TEST(IvmPropertyTest, JoinViewWithAsymmetricKeyPositions) {
  std::mt19937 gen(77);
  std::uniform_int_distribution<int64_t> key(0, 3);
  std::uniform_int_distribution<int64_t> value(0, 99);
  std::uniform_real_distribution<double> prob(0.1, 0.9);

  Database db;
  Schema l_schema({{"lv", CellType::kInt}, {"lk", CellType::kInt}});
  Schema r_schema({{"rk", CellType::kInt}, {"rv", CellType::kInt}});
  std::vector<std::vector<Cell>> l_rows, r_rows;
  std::vector<double> l_probs, r_probs;
  for (int i = 0; i < 8; ++i) {
    l_rows.push_back({Cell(value(gen)), Cell(key(gen))});
    l_probs.push_back(prob(gen));
    r_rows.push_back({Cell(key(gen)), Cell(value(gen))});
    r_probs.push_back(prob(gen));
  }
  db.AddTupleIndependentTable("L", l_schema, l_rows, l_probs);
  db.AddTupleIndependentTable("R", r_schema, r_rows, r_probs);

  QueryPtr query = Query::Select(
      Query::Product(Query::Scan("L"), Query::Scan("R")),
      Predicate::ColEqCol("lk", "rk"));
  db.RegisterView("v", query);
  ASSERT_EQ(db.views().view("v").plan(), MaterializedView::PlanKind::kJoin);

  auto check = [&](const std::string& what) {
    const PvcTable& view = db.ViewTable("v");
    PvcTable expected = db.Run(*query);
    ASSERT_EQ(view.NumRows(), expected.NumRows()) << what;
    for (size_t i = 0; i < view.NumRows(); ++i) {
      EXPECT_EQ(view.row(i).annotation, expected.row(i).annotation)
          << what << " row " << i;
      ExpectSameCells(view.row(i).cells, expected.row(i).cells,
                      what + " row " + std::to_string(i));
    }
  };
  check("after registration");
  db.InsertTuple("L", {Cell(value(gen)), Cell(key(gen))}, 0.5);
  check("after left insert");
  db.InsertTuple("R", {Cell(key(gen)), Cell(value(gen))}, 0.5);
  check("after right insert");
  db.DeleteRowAt("L", 2);
  check("after left delete");
  db.DeleteRowAt("R", 5);
  check("after right delete");
}

// Insert/delete churn must not grow the step II cache without bound:
// dead entries (annotations of removed rows) are evicted once they
// dominate, keeping the cache O(live rows).
TEST(IvmCacheTest, ChurnPrunesDeadEntries) {
  std::mt19937 gen(21);
  DbSpec spec = MakeSpec(&gen, 10, 0, 0);
  spec.tables.resize(1);
  std::unique_ptr<Database> db = FreshDatabase(spec, 1);
  db->RegisterView("v", Query::Scan("T"));
  for (int cycle = 0; cycle < 100; ++cycle) {
    db->InsertTuple("T", {Cell(int64_t{1000 + cycle}), Cell(int64_t{0}),
                          Cell(int64_t{50})},
                    0.5);
    db->ViewProbabilities("v");
    db->DeleteRowAt("T", db->table("T").NumRows() - 1);
  }
  size_t live = db->ViewProbabilities("v").size();
  const StepTwoCache& cache = db->views().view("v").step_two();
  EXPECT_LE(cache.size(), 2 * live + 17);
  EXPECT_GT(cache.stats().pruned, 0u);
}

// EvalOptions::step_two_cache_capacity bounds the cache by LRU eviction;
// answers stay bit-identical to an unbounded cache (evicted rows are
// simply recompiled on the next access).
TEST(IvmCacheTest, LruCapacityBoundsCacheAndPreservesResults) {
  std::mt19937 gen(33);
  DbSpec spec = MakeSpec(&gen, 12, 0, 0);
  spec.tables.resize(1);
  std::unique_ptr<Database> bounded = FreshDatabase(spec, 1);
  std::unique_ptr<Database> unbounded = FreshDatabase(spec, 1);
  bounded->eval_options().step_two_cache_capacity = 4;
  bounded->RegisterView("v", Query::Scan("T"));
  unbounded->RegisterView("v", Query::Scan("T"));

  for (int round = 0; round < 3; ++round) {
    std::vector<double> lhs = bounded->ViewProbabilities("v");
    std::vector<double> rhs = unbounded->ViewProbabilities("v");
    EXPECT_EQ(lhs, rhs);
    const StepTwoCache& cache = bounded->views().view("v").step_two();
    EXPECT_LE(cache.size(), 4u);
  }
  const StepTwoCache& cache = bounded->views().view("v").step_two();
  EXPECT_GT(cache.stats().evicted, 0u);
  EXPECT_GT(cache.stats().hits + cache.stats().misses, 0u);
  EXPECT_EQ(unbounded->views().view("v").step_two().stats().evicted, 0u);

  // Default capacity (0) stays unbounded.
  EXPECT_EQ(unbounded->views().view("v").step_two().size(),
            unbounded->table("T").NumRows());
}

// -- API behaviour ---------------------------------------------------------

TEST(IvmApiTest, DeleteTupleByKeyRemovesAllMatches) {
  Database db;
  Schema schema({{"k", CellType::kInt}, {"v", CellType::kInt}});
  db.AddTupleIndependentTable(
      "T", schema,
      {{Cell(int64_t{1}), Cell(int64_t{10})},
       {Cell(int64_t{2}), Cell(int64_t{20})},
       {Cell(int64_t{1}), Cell(int64_t{30})}},
      {0.5, 0.6, 0.7});
  db.RegisterView("v", Query::Scan("T"));
  EXPECT_EQ(db.DeleteTuple("T", Cell(int64_t{1})), 2u);
  EXPECT_EQ(db.table("T").NumRows(), 1u);
  EXPECT_EQ(db.ViewTable("v").NumRows(), 1u);
  EXPECT_EQ(db.ViewTable("v").row(0).cells[1].AsInt(), 20);
  EXPECT_EQ(db.DeleteTuple("T", Cell(int64_t{9})), 0u);
}

TEST(IvmApiTest, FailedReRegistrationPreservesTheExistingView) {
  Database db;
  Schema schema({{"k", CellType::kInt}});
  db.AddTupleIndependentTable("T", schema, {{Cell(int64_t{1})}}, {0.5});
  db.RegisterView("v", Query::Scan("T"));
  EXPECT_THROW(db.RegisterView("v", Query::Scan("missing")), CheckError);
  ASSERT_TRUE(db.HasView("v"));
  EXPECT_EQ(db.ViewTable("v").NumRows(), 1u);

  ShardedDatabase sharded(2);
  sharded.AddTupleIndependentTable("T", schema, {{Cell(int64_t{1})}}, {0.5});
  sharded.RegisterView("v", Query::Scan("T"));
  EXPECT_THROW(sharded.RegisterView("v", Query::Scan("missing")), CheckError);
  ASSERT_TRUE(sharded.HasView("v"));
  EXPECT_EQ(sharded.ViewResult("v").NumRows(), 1u);
}

TEST(IvmApiTest, TableReplacementInvalidatesViews) {
  Database db;
  Schema schema({{"k", CellType::kInt}});
  db.AddTupleIndependentTable("T", schema, {{Cell(int64_t{1})}}, {0.5});
  db.RegisterView("v", Query::Scan("T"));
  EXPECT_EQ(db.ViewTable("v").NumRows(), 1u);
  db.AddTupleIndependentTable(
      "T", schema, {{Cell(int64_t{1})}, {Cell(int64_t{2})}}, {0.5, 0.5});
  EXPECT_TRUE(db.views().view("v").stale());
  EXPECT_EQ(db.ViewTable("v").NumRows(), 2u);
}

TEST(IvmApiTest, ShardedInsertKeepsPlacementAndDistributedPlans) {
  std::mt19937 gen(11);
  DbSpec spec = MakeSpec(&gen, 12, 0, 0);
  spec.tables.resize(1);
  std::unique_ptr<ShardedDatabase> db = FreshSharded(spec, 4, 1);
  // Exercise the augmented-partition cache before and after the insert.
  QueryPtr chain = ChainQuery();
  ShardedResult before = db->Run(*chain);
  db->InsertTuple("T", {Cell(int64_t{200}), Cell(int64_t{1}),
                        Cell(int64_t{95})},
                  0.5);
  ShardedResult after = db->Run(*chain);
  EXPECT_EQ(after.NumRows(), before.NumRows() + 1);
  size_t total = 0;
  for (size_t count : db->ShardRowCounts("T")) total += count;
  EXPECT_EQ(total, db->NumRows("T"));
}

#ifndef NDEBUG
TEST(IvmGuardTest, MutationDuringEvaluationThrowsInDebug) {
  VariableTable table;
  table.AddBernoulli(0.5);
  VariableTable::EvalScope scope(table);
  EXPECT_THROW(table.AddBernoulli(0.5), CheckError);
  EXPECT_THROW(table.SetDistribution(0, Distribution::Bernoulli(0.2)),
               CheckError);
}
#endif

TEST(IvmGuardTest, MutationOutsideEvaluationIsFine) {
  VariableTable table;
  VarId x = table.AddBernoulli(0.5);
  { VariableTable::EvalScope scope(table); }
  table.SetDistribution(x, Distribution::Bernoulli(0.3));
  EXPECT_EQ(table.DistributionOf(x).ProbOf(1), 0.3);
}

}  // namespace
}  // namespace pvcdb
