#include "src/query/parser.h"

#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace pvcdb {
namespace {

TEST(ParserTest, SelectStarFromTable) {
  ParseResult r = ParseQuery("SELECT * FROM R");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.query->op(), QueryOp::kScan);
  EXPECT_EQ(r.query->table_name(), "R");
}

TEST(ParserTest, ProjectionList) {
  ParseResult r = ParseQuery("SELECT a, b FROM R");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.query->op(), QueryOp::kProject);
  EXPECT_EQ(r.query->columns(), (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, WhereConjunction) {
  ParseResult r = ParseQuery(
      "SELECT a FROM R WHERE a = 3 AND b != 'x' AND c <= d");
  ASSERT_TRUE(r.ok()) << r.error;
  const Query* select = r.query->child(0).get();
  ASSERT_EQ(select->op(), QueryOp::kSelect);
  ASSERT_EQ(select->predicate().atoms().size(), 3u);
  EXPECT_EQ(select->predicate().atoms()[0].op, CmpOp::kEq);
  EXPECT_EQ(select->predicate().atoms()[1].op, CmpOp::kNe);
  EXPECT_EQ(select->predicate().atoms()[1].rhs.constant().AsString(), "x");
  EXPECT_EQ(select->predicate().atoms()[2].rhs.column(), "d");
}

TEST(ParserTest, JoinViaFromList) {
  ParseResult r = ParseQuery("SELECT shop FROM S, PS WHERE sid = ps_sid");
  ASSERT_TRUE(r.ok()) << r.error;
  // pi(select(product(S, PS))).
  EXPECT_EQ(r.query->op(), QueryOp::kProject);
  EXPECT_EQ(r.query->child(0)->op(), QueryOp::kSelect);
  EXPECT_EQ(r.query->child(0)->child(0)->op(), QueryOp::kProduct);
}

TEST(ParserTest, GroupByWithAggregates) {
  // Example 3: TPC-H Q1's structure.
  ParseResult r = ParseQuery("SELECT A, SUM(B) AS beta FROM R GROUP BY A");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.query->op(), QueryOp::kGroupAgg);
  EXPECT_EQ(r.query->columns(), std::vector<std::string>{"A"});
  ASSERT_EQ(r.query->aggs().size(), 1u);
  EXPECT_EQ(r.query->aggs()[0].agg, AggKind::kSum);
  EXPECT_EQ(r.query->aggs()[0].input_column, "B");
  EXPECT_EQ(r.query->aggs()[0].output_column, "beta");
}

TEST(ParserTest, CountStar) {
  ParseResult r = ParseQuery("SELECT g, COUNT(*) FROM R GROUP BY g");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.query->aggs().size(), 1u);
  EXPECT_EQ(r.query->aggs()[0].agg, AggKind::kCount);
  EXPECT_TRUE(r.query->aggs()[0].input_column.empty());
  EXPECT_EQ(r.query->aggs()[0].output_column, "count");
}

TEST(ParserTest, AggregateWithoutGroupBy) {
  ParseResult r = ParseQuery("SELECT MIN(weight) AS m FROM P1");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.query->op(), QueryOp::kGroupAgg);
  EXPECT_TRUE(r.query->columns().empty());
}

TEST(ParserTest, HavingBecomesSelectionOverAggregates) {
  ParseResult r = ParseQuery(
      "SELECT g, MAX(v) AS m FROM R GROUP BY g HAVING m <= 50");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.query->op(), QueryOp::kSelect);
  EXPECT_EQ(r.query->predicate().atoms()[0].lhs.column(), "m");
  EXPECT_EQ(r.query->child(0)->op(), QueryOp::kGroupAgg);
}

TEST(ParserTest, MultipleAggregates) {
  ParseResult r = ParseQuery(
      "SELECT g, MIN(v) AS lo, MAX(v) AS hi, COUNT(*) AS n "
      "FROM R GROUP BY g");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.query->aggs().size(), 3u);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  ParseResult r = ParseQuery("select a from R where a >= -5");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.query->op(), QueryOp::kProject);
  const Query* sel = r.query->child(0).get();
  EXPECT_EQ(sel->predicate().atoms()[0].rhs.constant().AsInt(), -5);
}

TEST(ParserTest, ErrorsAreDiagnosed) {
  EXPECT_FALSE(ParseQuery("FROM R").ok());
  EXPECT_FALSE(ParseQuery("SELECT FROM R").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM R WHERE a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM R WHERE a = 'oops").ok());
  EXPECT_FALSE(ParseQuery("SELECT MIN(*) FROM R").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM R GROUP BY a").ok())
      << "GROUP BY requires an aggregate";
  EXPECT_FALSE(ParseQuery("SELECT b, SUM(v) FROM R GROUP BY a").ok())
      << "plain columns must be grouping columns";
  EXPECT_FALSE(ParseQuery("SELECT a FROM R extra").ok());
}

TEST(ParserTest, EndToEndAgainstDatabase) {
  Database db;
  db.AddTupleIndependentTable(
      "orders", Schema({{"cust", CellType::kString},
                        {"amount", CellType::kInt}}),
      {{Cell("ann"), Cell(int64_t{10})},
       {Cell("ann"), Cell(int64_t{25})},
       {Cell("bob"), Cell(int64_t{40})}},
      {0.5, 0.5, 0.5});
  ParseResult r = ParseQuery(
      "SELECT cust, SUM(amount) AS total FROM orders GROUP BY cust "
      "HAVING total >= 30");
  ASSERT_TRUE(r.ok()) << r.error;
  PvcTable result = db.Run(*r.query);
  ASSERT_EQ(result.NumRows(), 2u);
  // ann: total >= 30 iff both orders present: 1/4. bob: 1/2.
  EXPECT_NEAR(db.TupleProbability(result.row(0)), 0.25, 1e-12);
  EXPECT_NEAR(db.TupleProbability(result.row(1)), 0.5, 1e-12);
}

TEST(ParserTest, ParsedJoinMatchesHandBuiltQuery) {
  Database db;
  db.AddTupleIndependentTable("L", Schema({{"lk", CellType::kInt}}),
                              {{Cell(int64_t{1})}, {Cell(int64_t{2})}},
                              {0.5, 0.5});
  db.AddTupleIndependentTable("R", Schema({{"rk", CellType::kInt}}),
                              {{Cell(int64_t{1})}}, {0.5});
  ParseResult r = ParseQuery("SELECT lk FROM L, R WHERE lk = rk");
  ASSERT_TRUE(r.ok()) << r.error;
  PvcTable parsed = db.Run(*r.query);
  PvcTable manual = db.Run(*Query::Project(
      Query::Join(Query::Scan("L"), Query::Scan("R"),
                  Predicate::ColEqCol("lk", "rk")),
      {"lk"}));
  ASSERT_EQ(parsed.NumRows(), manual.NumRows());
  EXPECT_EQ(parsed.row(0).annotation, manual.row(0).annotation);
}

}  // namespace
}  // namespace pvcdb
