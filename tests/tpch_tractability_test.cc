// Tractability classification of the TPC-H workload (Section 6's claims
// applied to Experiment F): Q1's shape (aggregation-and-grouping over a
// selection of one tuple-independent relation) is in Q_hie, and its
// expressions compile without Shannon expansion; Q2 references base
// relations twice (outer join + nested aggregate), so the non-repeating
// classifier rejects it -- yet evaluation still works, it is simply not
// guaranteed polynomial.

#include <gtest/gtest.h>

#include "src/dtree/compile.h"
#include "src/query/tractability.h"
#include "src/tpch/tpch_gen.h"
#include "src/tpch/tpch_queries.h"

namespace pvcdb {
namespace {

class TpchTractabilityTest : public ::testing::Test {
 protected:
  TpchTractabilityTest() {
    TpchConfig config;
    config.scale_factor = 0.002;
    GenerateTpch(&db_, config);
  }

  TractabilityResult Analyze(const QueryPtr& q) {
    return AnalyzeTractability(
        *q,
        [this](const std::string& name) {
          return db_.HasTable(name) &&
                 IsTupleIndependent(db_.table(name), db_.pool());
        },
        [this](const std::string& name) {
          std::vector<std::string> cols;
          if (db_.HasTable(name)) {
            for (const Column& c : db_.table(name).schema().columns()) {
              cols.push_back(c.name);
            }
          }
          return cols;
        });
  }

  Database db_;
};

TEST_F(TpchTractabilityTest, Q1IsInQhie) {
  QueryPtr q1 = BuildTpchQ1(1800);
  TractabilityResult r = Analyze(q1);
  EXPECT_TRUE(r.in_qhie) << r.explanation;
}

TEST_F(TpchTractabilityTest, Q1ExpressionsCompileWithoutShannon) {
  // Theorem 3, empirically: every annotation and aggregate of Q1's result
  // compiles with rules 1-4 only.
  QueryPtr q1 = BuildTpchQ1(1800);
  PvcTable result = db_.Run(*q1);
  ASSERT_GT(result.NumRows(), 0u);
  for (size_t i = 0; i < result.NumRows(); ++i) {
    DTreeCompiler c1(&db_.pool(), &db_.variables(), CompileOptions());
    c1.Compile(result.row(i).annotation);
    EXPECT_EQ(c1.stats().mutex_expansions, 0u);
    DTreeCompiler c2(&db_.pool(), &db_.variables(), CompileOptions());
    c2.Compile(result.CellAt(i, "cnt").AsAgg());
    EXPECT_EQ(c2.stats().mutex_expansions, 0u);
  }
}

TEST_F(TpchTractabilityTest, Q2RepeatsRelations) {
  QueryPtr q2 = BuildTpchQ2(&db_, 0, "EUROPE");
  TractabilityResult r = Analyze(q2);
  // The aliases share variables with the base relations, and even
  // syntactically partsupp/supplier appear via aliases: the classifier is
  // conservative here; at minimum Q2 must not be classified Q_ind.
  EXPECT_FALSE(r.in_qind) << r.explanation;
}

TEST_F(TpchTractabilityTest, LineitemScanIsQind) {
  TractabilityResult r = Analyze(Query::Scan("lineitem"));
  EXPECT_TRUE(r.in_qind);
}

TEST_F(TpchTractabilityTest, SupplierNationJoinIsHierarchical) {
  QueryPtr q = Query::Project(
      Query::Join(Query::Scan("supplier"), Query::Scan("nation"),
                  Predicate::ColEqCol("s_nationkey", "n_nationkey")),
      {"s_name"});
  TractabilityResult r = Analyze(q);
  EXPECT_TRUE(r.hierarchical) << r.explanation;
  EXPECT_TRUE(r.in_qhie) << r.explanation;
}

}  // namespace
}  // namespace pvcdb
