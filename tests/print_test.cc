#include "src/expr/print.h"

#include <gtest/gtest.h>

namespace pvcdb {
namespace {

TEST(PrintTest, VariablesAndConstants) {
  ExprPool pool(SemiringKind::kBool);
  EXPECT_EQ(ExprToString(pool, pool.Var(3)), "x3");
  EXPECT_EQ(ExprToString(pool, pool.ConstS(1)), "1");
  EXPECT_EQ(ExprToString(pool, pool.ConstM(AggKind::kMin, kPosInf)), "inf");
}

TEST(PrintTest, NamedVariables) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5, "x1");
  EXPECT_EQ(ExprToString(pool, pool.Var(x), &vars), "x1");
}

TEST(PrintTest, SumsAndProductsWithPrecedence) {
  ExprPool pool(SemiringKind::kBool);
  ExprId x = pool.Var(0);
  ExprId y = pool.Var(1);
  ExprId z = pool.Var(2);
  ExprId e = pool.MulS(x, pool.AddS(y, z));
  EXPECT_EQ(ExprToString(pool, e), "x0*(x1 + x2)");
}

TEST(PrintTest, TensorAndMonoidSum) {
  ExprPool pool(SemiringKind::kBool);
  ExprId t1 = pool.Tensor(pool.Var(0), pool.ConstM(AggKind::kMax, 10));
  ExprId t2 = pool.Tensor(pool.Var(1), pool.ConstM(AggKind::kMax, 50));
  ExprId sum = pool.AddM(AggKind::kMax, t1, t2);
  std::string rendered = ExprToString(pool, sum);
  EXPECT_NE(rendered.find("(x)"), std::string::npos);
  EXPECT_NE(rendered.find("+MAX"), std::string::npos);
}

TEST(PrintTest, ConditionalExpression) {
  ExprPool pool(SemiringKind::kBool);
  ExprId alpha = pool.Tensor(pool.Var(0), pool.ConstM(AggKind::kMin, 10));
  ExprId cond = pool.Cmp(CmpOp::kLe, alpha, pool.ConstM(AggKind::kMin, 50));
  EXPECT_EQ(ExprToString(pool, cond), "[x0 (x) 10 <= 50]");
}

TEST(PrintTest, RoundTripStability) {
  // Printing the same node twice gives the same string (no hidden state).
  ExprPool pool(SemiringKind::kNatural);
  ExprId e = pool.AddS({pool.MulS(pool.Var(0), pool.Var(1)), pool.Var(2),
                        pool.ConstS(5)});
  EXPECT_EQ(ExprToString(pool, e), ExprToString(pool, e));
}

}  // namespace
}  // namespace pvcdb
