// Golden reproduction of the paper's running example (Figure 1, Examples
// 1, 9, 14): the suppliers/products database, the positive query Q1 and the
// aggregate query Q2, checked both syntactically (annotation expressions)
// and semantically (world-by-world against naive evaluation).

#include <gtest/gtest.h>

#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/engine/database.h"
#include "src/expr/print.h"
#include "src/naive/possible_worlds.h"
#include "tests/figure1_db.h"

namespace pvcdb {
namespace {

using testing_fixtures::BuildFigure1Database;
using testing_fixtures::BuildFigure1Q1;
using testing_fixtures::BuildFigure1Q2;

class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test() : handles_(BuildFigure1Database(&db_, 0.5)) {}

  ExprId V(const std::string& name) {
    return db_.pool().Var(handles_.vars.at(name));
  }

  Database db_;
  testing_fixtures::Figure1Handles handles_;
};

TEST_F(Figure1Test, Q1ProducesFigure1dAnnotations) {
  PvcTable result = db_.Run(*BuildFigure1Q1());
  ASSERT_EQ(result.NumRows(), 9u);

  // Expected rows and annotations from Figure 1d.
  ExprPool& pool = db_.pool();
  auto tuple_annotation =
      [&](const std::string& shop, int64_t price) -> ExprId {
    for (size_t i = 0; i < result.NumRows(); ++i) {
      if (result.CellAt(i, "shop").AsString() == shop &&
          result.CellAt(i, "price").AsInt() == price) {
        return result.row(i).annotation;
      }
    }
    ADD_FAILURE() << "missing tuple <" << shop << ", " << price << ">";
    return kInvalidExpr;
  };

  // Figure 1d displays factored annotations like x1 y11 (z1 + z5); the
  // [[.]] rewriting produces the distributed equivalent
  // x1 y11 z1 + x1 y11 z5 (equal by the distributivity law of Def. 3).
  // Check the rewriting's exact output syntactically, and the paper's
  // factored rendering semantically (identical distributions).
  auto factored = [&](const char* x, const char* y) {
    return pool.MulS({V(x), V(y), pool.AddS(V("z1"), V("z5"))});
  };
  auto distributed = [&](const char* x, const char* y) {
    return pool.AddS(pool.MulS({V(x), V(y), V("z1")}),
                     pool.MulS({V(x), V(y), V("z5")}));
  };
  struct Expected {
    const char* shop;
    int64_t price;
    ExprId annotation;
  };
  const Expected expected[] = {
      {"M&S", 10, distributed("x1", "y11")},
      {"M&S", 50, pool.MulS({V("x1"), V("y12"), V("z2")})},
      {"M&S", 11, distributed("x2", "y21")},
      {"M&S", 60, pool.MulS({V("x2"), V("y22"), V("z2")})},
      {"M&S", 15, pool.MulS({V("x3"), V("y33"), V("z3")})},
      {"M&S", 40, pool.MulS({V("x3"), V("y34"), V("z4")})},
      {"Gap", 15, distributed("x4", "y41")},
      {"Gap", 60, pool.MulS({V("x4"), V("y43"), V("z3")})},
      {"Gap", 10, distributed("x5", "y51")},
  };
  for (const Expected& e : expected) {
    EXPECT_EQ(tuple_annotation(e.shop, e.price), e.annotation)
        << e.shop << " " << e.price;
  }
  // The factored Figure 1d renderings are semantically identical.
  const std::pair<std::pair<const char*, const char*>, int64_t>
      factored_cases[] = {{{"x1", "y11"}, 10},
                          {{"x2", "y21"}, 11},
                          {{"x4", "y41"}, 15},
                          {{"x5", "y51"}, 10}};
  for (const auto& [xy, price] : factored_cases) {
    ExprId lhs = factored(xy.first, xy.second);
    ExprId rhs = distributed(xy.first, xy.second);
    Distribution dl = EnumerateDistribution(pool, db_.variables(), lhs);
    Distribution dr = EnumerateDistribution(pool, db_.variables(), rhs);
    EXPECT_TRUE(dl.ApproxEquals(dr, 1e-12));
  }
}

TEST_F(Figure1Test, Q2StructureMatchesFigure1e) {
  PvcTable result = db_.Run(*BuildFigure1Q2());
  ASSERT_EQ(result.NumRows(), 2u);
  EXPECT_EQ(result.CellAt(0, "shop").AsString(), "M&S");
  EXPECT_EQ(result.CellAt(1, "shop").AsString(), "Gap");
  // Each annotation is [max-sum <= 50] * [group-sum != 0] (the conditional
  // and the non-emptiness condition Psi of Figure 1e).
  for (const Row& row : result.rows()) {
    const ExprNode& ann = db_.pool().node(row.annotation);
    ASSERT_EQ(ann.kind, ExprKind::kMulS);
    ASSERT_EQ(ann.children().size(), 2u);
    EXPECT_EQ(db_.pool().node(ann.child(0)).kind, ExprKind::kCmp);
    EXPECT_EQ(db_.pool().node(ann.child(1)).kind, ExprKind::kCmp);
  }
}

TEST_F(Figure1Test, Q2ExampleOneValuationIsSatisfied) {
  // Example 1's valuation nu1: x1, x2, y11, y21, z1, z2, z5 -> true, all
  // others false. Then M&S satisfies Phi: max(10, 11) <= 50.
  PvcTable result = db_.Run(*BuildFigure1Q2());
  std::unordered_map<VarId, int64_t> nu;
  for (const auto& [name, id] : handles_.vars) nu[id] = 0;
  for (const char* name : {"x1", "x2", "y11", "y21", "z1", "z2", "z5"}) {
    nu[handles_.vars.at(name)] = 1;
  }
  EXPECT_EQ(EvalExpr(db_.pool(), result.row(0).annotation, nu), 1)
      << "nu1 satisfies the M&S annotation";
  // Wait: y12 maps to false under nu1, so the 50-term is absent. Also
  // check Gap: no x4/x5 present -> annotation false.
  EXPECT_EQ(EvalExpr(db_.pool(), result.row(1).annotation, nu), 0);
}

TEST_F(Figure1Test, Q2SemanticsMatchWorldByWorldEvaluation) {
  // For every world nu (2^19 is too many: restrict to the variables that
  // matter for the M&S group; sample worlds instead): evaluate Q2's
  // annotation under nu and compare with running the query on the
  // materialised deterministic world.
  PvcTable result = db_.Run(*BuildFigure1Q2());
  ASSERT_EQ(result.NumRows(), 2u);

  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::unordered_map<VarId, int64_t> nu;
    for (const auto& [name, id] : handles_.vars) {
      nu[id] = rng.Bernoulli(0.5) ? 1 : 0;
    }
    auto nu_fn = [&](VarId x) { return nu.at(x); };
    // Materialise the world and run Q2 deterministically on it.
    Database world_db;
    for (const char* name : {"S", "PS", "P1", "P2"}) {
      PvcTable world = db_.table(name).MaterializeWorld(db_.pool(), nu_fn);
      // Rebuild with the world database's pool (constant annotations).
      PvcTable copy{world.schema()};
      for (const Row& r : world.rows()) {
        copy.AddRow(r.cells, world_db.pool().ConstS(1));
      }
      world_db.AddTable(name, std::move(copy));
    }
    PvcTable expected = world_db.RunDeterministic(*BuildFigure1Q2());
    // Compare: annotation of each Q2 tuple under nu vs membership in the
    // deterministic result.
    for (size_t i = 0; i < result.NumRows(); ++i) {
      const std::string& shop = result.CellAt(i, "shop").AsString();
      bool in_world = false;
      for (size_t j = 0; j < expected.NumRows(); ++j) {
        if (expected.CellAt(j, "shop").AsString() == shop) in_world = true;
      }
      int64_t annotated =
          EvalExpr(db_.pool(), result.row(i).annotation, nu);
      EXPECT_EQ(annotated != 0, in_world)
          << "shop " << shop << " trial " << trial;
    }
  }
}

TEST_F(Figure1Test, Q2ProbabilitiesMatchNaiveEnumeration) {
  // Exact check on the Gap group (7 variables: x4, x5, y41, y43, y51, z1,
  // z3, z5 -- small enough to enumerate).
  PvcTable result = db_.Run(*BuildFigure1Q2());
  Distribution expected = EnumerateDistribution(
      db_.pool(), db_.variables(), result.row(1).annotation);
  double p = db_.TupleProbability(result.row(1));
  EXPECT_NEAR(p, expected.ProbOf(1), 1e-9);
  // And the M&S group (11 variables).
  Distribution expected_ms = EnumerateDistribution(
      db_.pool(), db_.variables(), result.row(0).annotation);
  EXPECT_NEAR(db_.TupleProbability(result.row(0)), expected_ms.ProbOf(1),
              1e-9);
}

TEST_F(Figure1Test, ExampleNineMinVariantImpliedNonEmptiness) {
  // Q2' with MIN <= 50: in a world with x1, x2, x3 -> false, M&S is not an
  // answer; the conditional [inf <= 50] alone evaluates false, making the
  // explicit non-emptiness condition redundant for MIN-<=.
  QueryPtr agg = Query::GroupAgg(BuildFigure1Q1(), {"shop"},
                                 {{AggKind::kMin, "price", "P"}});
  QueryPtr q = Query::Project(
      Query::Select(agg, Predicate::ColCmpInt("P", CmpOp::kLe, 50)),
      {"shop"});
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 2u);
  std::unordered_map<VarId, int64_t> nu;
  for (const auto& [name, id] : handles_.vars) nu[id] = 1;
  nu[handles_.vars.at("x1")] = 0;
  nu[handles_.vars.at("x2")] = 0;
  nu[handles_.vars.at("x3")] = 0;
  EXPECT_EQ(EvalExpr(db_.pool(), result.row(0).annotation, nu), 0)
      << "no supplier for M&S -> not an answer (Example 9)";
}

TEST_F(Figure1Test, ExampleFourteenReadOnceAggregate) {
  // Q = $_{0; alpha <- SUM(price)}(sigma_{shop='M&S'}(S) |x| PS): the
  // aggregate's d-tree compiles without Shannon expansion thanks to the
  // factorisation x1(y11 (x) 10 + y12 (x) 50) + ...
  QueryPtr joined = Query::Join(
      Query::Select(Query::Scan("S"), Predicate::ColEqStr("shop", "M&S")),
      Query::Scan("PS"), Predicate::ColEqCol("sid", "ps_sid"));
  QueryPtr q =
      Query::GroupAgg(joined, {}, {{AggKind::kSum, "price", "alpha"}});
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 1u);
  ExprId alpha = result.CellAt(0, "alpha").AsAgg();
  DTreeCompiler compiler(&db_.pool(), &db_.variables(), CompileOptions());
  DTree tree = compiler.Compile(alpha);
  EXPECT_EQ(tree.MutexCount(), 0u)
      << "Example 14: the aggregate expression is read-once after "
         "factoring";
  EXPECT_GE(compiler.stats().factorizations, 1u);
  // Its distribution matches naive enumeration (12 variables, 4096 worlds).
  Distribution expected =
      EnumerateDistribution(db_.pool(), db_.variables(), alpha);
  Distribution actual =
      ComputeDistribution(tree, db_.variables(), db_.semiring());
  EXPECT_TRUE(actual.ApproxEquals(expected, 1e-9));
}

TEST_F(Figure1Test, IntroductionExampleIndependentDecomposition) {
  // "alpha = ab (x) 10 + xy (x) 20 decomposes into independent
  // sub-expressions": no Shannon expansion required.
  ExprPool& pool = db_.pool();
  ExprId alpha = pool.AddM(
      AggKind::kSum,
      pool.Tensor(pool.MulS(V("x1"), V("x2")), pool.ConstM(AggKind::kSum, 10)),
      pool.Tensor(pool.MulS(V("x4"), V("x5")),
                  pool.ConstM(AggKind::kSum, 20)));
  DTree tree = CompileToDTree(&db_.pool(), &db_.variables(), alpha);
  EXPECT_EQ(tree.MutexCount(), 0u);
  EXPECT_EQ(tree.node(tree.root()).kind, DTreeNodeKind::kOplus);
}

TEST_F(Figure1Test, WorldCountMatchesTheoryForS) {
  // Figure 3: under B, S has 2^5 possible worlds; check a couple of world
  // probabilities published in Example 4's text (p = 0.5 uniform here).
  const PvcTable& s = db_.table("S");
  EXPECT_EQ(s.NumRows(), 5u);
  // World SB: x2, x5 true, rest false; probability (1/2)^5.
  auto nu = [&](VarId x) {
    return (x == handles_.vars.at("x2") || x == handles_.vars.at("x5")) ? 1
                                                                        : 0;
  };
  PvcTable world = s.MaterializeWorld(db_.pool(), nu);
  EXPECT_EQ(world.NumRows(), 2u);
}

}  // namespace
}  // namespace pvcdb
