// The fault-injection gauntlet (ISSUE 10 acceptance): every fault the
// FaultProxy can inject -- plus a real SIGSTOP'd worker process -- against
// the coordinator's fault-tolerance plane, asserting the three invariants
// the plane exists for:
//
//   1. Bounded latency: no query ever blocks past the RPC deadline; a
//      faulted worker degrades the answer, never the availability.
//   2. Bit-identity: a degraded reply carries the same rendered text and
//      probabilities a never-faulted twin coordinator produces, plus an
//      explicit warning; after recovery the distributed reply is
//      bit-identical again.
//   3. Exactly-once: no fault schedule can make a mutation apply twice on
//      a worker. A dropped request ships the entry exactly once at
//      resync; a dropped/corrupted reply (the mutation DID apply, only
//      the ack was lost) ships it zero times -- the (lsn, chain) probe
//      decides, never a blind retry.
//
// Plus the heartbeat walk (healthy -> suspect -> down) and the
// auto-respawn circuit breaker, driven through a mock clock and a
// counting spawner so no test here sleeps for real.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/coordinator.h"
#include "src/engine/shard_worker.h"
#include "src/net/backoff.h"
#include "src/net/fault.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/query/parser.h"
#include "src/table/schema.h"
#include "src/util/metrics.h"
#include "src/util/timer.h"

namespace pvcdb {
namespace {

// A generous wall-clock bound for "the query returned within the
// deadline": a few sequential per-worker deadlines plus sanitizer
// headroom. Without the deadline plane these scenarios hang forever, so
// any finite bound proves the property; this one just keeps CI honest.
constexpr int kRpcDeadlineMs = 500;
constexpr double kBoundedMs = 8000.0;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pvcdb_fault_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      // Best-effort cleanup.
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

pid_t StartStandaloneWorker(const std::string& address) {
  pid_t pid = fork();
  if (pid == 0) {
    _exit(ShardWorker::RunStandalone(address, /*quiet=*/true));
  }
  return pid;
}

void ReapWorker(pid_t pid) {
  kill(pid, SIGKILL);
  waitpid(pid, nullptr, 0);
}

std::vector<RemoteShard> DialWorkers(const std::vector<std::string>& addrs) {
  std::vector<RemoteShard> workers;
  for (size_t s = 0; s < addrs.size(); ++s) {
    std::string error;
    Socket sock = ConnectWithRetry(addrs[s], 250, &error);
    EXPECT_TRUE(sock.valid()) << error;
    workers.emplace_back(static_cast<uint32_t>(s), std::move(sock), 0);
  }
  return workers;
}

Coordinator::WorkerSpawner RedialSpawner(std::vector<std::string> addrs) {
  return [addrs](uint32_t shard, RemoteShard* out,
                 std::string* error) -> bool {
    if (shard >= addrs.size()) {
      *error = "no address for shard " + std::to_string(shard);
      return false;
    }
    Socket sock = ConnectWithRetry(addrs[shard], 250, error);
    if (!sock.valid()) return false;
    *out = RemoteShard(shard, std::move(sock), 0);
    return true;
  };
}

std::unique_ptr<Coordinator> MakeCoordinator(
    const std::vector<std::string>& dial,
    const std::vector<std::string>& respawn, int deadline_ms) {
  auto coordinator = std::make_unique<Coordinator>(
      SemiringKind::kBool, DialWorkers(dial), RedialSpawner(respawn));
  FaultToleranceOptions ft;
  ft.rpc_deadline_ms = deadline_ms;
  coordinator->ConfigureFaultTolerance(ft);
  return coordinator;
}

// The deterministic pre-fault workload: a routed table load. Every
// scenario flows this through the link known-clean, then arms one fault
// for the frame that follows.
void LoadItems(Coordinator* coordinator) {
  Schema schema({{"item", CellType::kString}, {"price", CellType::kInt}});
  std::vector<std::vector<Cell>> rows = {
      {Cell(std::string("hammer")), Cell(int64_t{1299})},
      {Cell(std::string("wrench")), Cell(int64_t{450})},
      {Cell(std::string("shovel")), Cell(int64_t{2399})},
      {Cell(std::string("rake")), Cell(int64_t{1799})},
      {Cell(std::string("whisk")), Cell(int64_t{220})},
  };
  coordinator->AddTupleIndependentTable("items", schema, rows,
                                        {0.9, 0.7, 0.6, 0.5, 0.95});
}

QueryRun RunChain(Coordinator* coordinator) {
  ParseResult parsed =
      ParseQuery("SELECT * FROM items WHERE price >= 1000");
  EXPECT_TRUE(parsed.ok());
  return coordinator->Run(*parsed.query);
}

/// The never-faulted reference: its own worker, the identical workload
/// (load + the one mutation the faulted run attempts), no proxy.
struct Twin {
  explicit Twin(const std::string& dir) {
    address = dir + "/twin.sock";
    pid = StartStandaloneWorker(address);
    EXPECT_GT(pid, 0);
    coordinator = MakeCoordinator({address}, {address}, kRpcDeadlineMs);
    LoadItems(coordinator.get());
    coordinator->UpdateProbability(1, 0.45);
    run = RunChain(coordinator.get());
    EXPECT_TRUE(run.distributed);
    EXPECT_TRUE(coordinator->WorkerTail(0, &lsn, &chain));
  }
  ~Twin() {
    coordinator->Shutdown();
    coordinator.reset();
    int status = 0;
    waitpid(pid, &status, 0);
  }

  std::string address;
  pid_t pid = -1;
  std::unique_ptr<Coordinator> coordinator;
  QueryRun run;
  uint64_t lsn = 0;
  uint32_t chain = 0;
};

// ---------------------------------------------------------------------------
// 1. A SIGSTOP'd real worker: the kernel keeps its sockets alive and
//    accepting bytes, so only a recv deadline can unblock the caller.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, SigstoppedWorkerDegradesWithinTheDeadline) {
  SetMetricsEnabled(true);
  TempDir dir;
  const std::vector<std::string> addrs = {dir.path() + "/w0.sock",
                                          dir.path() + "/w1.sock"};
  std::vector<pid_t> pids;
  for (const std::string& a : addrs) pids.push_back(StartStandaloneWorker(a));
  for (pid_t pid : pids) ASSERT_GT(pid, 0);

  auto coordinator = MakeCoordinator(addrs, addrs, kRpcDeadlineMs);
  LoadItems(coordinator.get());
  QueryRun before = RunChain(coordinator.get());
  ASSERT_TRUE(before.distributed);
  ASSERT_TRUE(before.warnings.empty());
  uint64_t lsn0 = 0;
  uint32_t chain0 = 0;
  ASSERT_TRUE(coordinator->WorkerTail(0, &lsn0, &chain0));

  uint64_t timeouts_before =
      MetricsRegistry::Global().GetCounter("net.timeouts")->Value();

  // Freeze worker 0 mid-service. Its listening socket still accepts and
  // its kernel buffers still take our request bytes -- the pathological
  // peer that only a deadline catches.
  ASSERT_EQ(kill(pids[0], SIGSTOP), 0);

  WallTimer timer;
  QueryRun degraded = RunChain(coordinator.get());
  double elapsed_ms = timer.ElapsedMillis();
  EXPECT_LT(elapsed_ms, kBoundedMs);

  // Degraded, never wrong: local-replica values are bit-identical to the
  // healthy distributed reply, and the client is told it was degraded.
  EXPECT_FALSE(degraded.distributed);
  ASSERT_FALSE(degraded.warnings.empty());
  EXPECT_NE(degraded.warnings[0].find("worker 0"), std::string::npos);
  EXPECT_EQ(degraded.text, before.text);
  EXPECT_EQ(degraded.probabilities, before.probabilities);
  EXPECT_FALSE(coordinator->WorkerUp(0));
  EXPECT_TRUE(coordinator->WorkerUp(1));
  EXPECT_GT(MetricsRegistry::Global().GetCounter("net.timeouts")->Value(),
            timeouts_before);

  // The heartbeat cycle walks the frozen worker suspect -> down.
  std::vector<std::string> lines;
  coordinator->HeartbeatTick(&lines);
  EXPECT_EQ(coordinator->Health(0), WorkerHealth::kSuspect);
  coordinator->HeartbeatTick(&lines);
  EXPECT_EQ(coordinator->Health(0), WorkerHealth::kDown);
  EXPECT_EQ(coordinator->Health(1), WorkerHealth::kHealthy);

  // Thaw and respawn: the worker kept its state (queries are reads), so
  // the resync proof passes with an empty tail and the distributed path
  // is bit-identical again.
  ASSERT_EQ(kill(pids[0], SIGCONT), 0);
  std::string error;
  ResyncStats stats;
  ASSERT_TRUE(coordinator->Respawn(0, &error, &stats)) << error;
  EXPECT_FALSE(stats.full);
  EXPECT_EQ(stats.entries, 0u);
  uint64_t lsn_after = 0;
  uint32_t chain_after = 0;
  ASSERT_TRUE(coordinator->WorkerTail(0, &lsn_after, &chain_after));
  EXPECT_EQ(lsn_after, lsn0);
  EXPECT_EQ(chain_after, chain0);

  QueryRun recovered = RunChain(coordinator.get());
  EXPECT_TRUE(recovered.distributed);
  EXPECT_TRUE(recovered.warnings.empty());
  EXPECT_EQ(recovered.text, before.text);
  EXPECT_EQ(recovered.probabilities, before.probabilities);

  coordinator->Shutdown();
  coordinator.reset();
  for (pid_t pid : pids) ReapWorker(pid);
}

// ---------------------------------------------------------------------------
// 2. Exactly-once under dropped frames, both directions.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, DroppedRequestShipsTheMutationExactlyOnce) {
  SetMetricsEnabled(true);
  TempDir dir;
  Twin twin(dir.path());

  const std::string worker_addr = dir.path() + "/w.sock";
  pid_t pid = StartStandaloneWorker(worker_addr);
  ASSERT_GT(pid, 0);

  FaultProxy proxy;
  std::string error;
  ASSERT_TRUE(proxy.Start(dir.path() + "/p.sock", worker_addr,
                          FaultSchedule(), &error))
      << error;

  // Dial through the proxy; recover (respawn) around it.
  auto coordinator =
      MakeCoordinator({proxy.address()}, {worker_addr}, kRpcDeadlineMs);
  LoadItems(coordinator.get());

  // Arm: swallow the next coordinator -> worker frame (the kUpdateVar
  // about to be sent). The worker never sees it; the coordinator's recv
  // deadline fires and the connection is poisoned -- never blind-retried,
  // because a retry on a live-but-slow link is how mutations double.
  proxy.AddRule({FaultDirection::kRequests,
                 proxy.frames_seen(FaultDirection::kRequests),
                 FaultType::kDrop, 0});
  WallTimer timer;
  coordinator->UpdateProbability(1, 0.45);
  EXPECT_LT(timer.ElapsedMillis(), kBoundedMs);
  EXPECT_FALSE(coordinator->WorkerUp(0));
  EXPECT_GE(proxy.faults_injected(), 1u);

  // Resync ships the lost entry exactly once: the (lsn, chain) probe
  // shows the worker one entry behind the shard log.
  ResyncStats stats;
  ASSERT_TRUE(coordinator->Respawn(0, &error, &stats)) << error;
  EXPECT_FALSE(stats.full);
  EXPECT_EQ(stats.entries, 1u);

  // The recovered worker sits on the twin's exact (lsn, chain) position:
  // the mutation applied once, nowhere twice.
  uint64_t lsn = 0;
  uint32_t chain = 0;
  ASSERT_TRUE(coordinator->WorkerTail(0, &lsn, &chain));
  EXPECT_EQ(lsn, twin.lsn);
  EXPECT_EQ(chain, twin.chain);

  QueryRun run = RunChain(coordinator.get());
  EXPECT_TRUE(run.distributed);
  EXPECT_TRUE(run.warnings.empty());
  EXPECT_EQ(run.text, twin.run.text);
  EXPECT_EQ(run.probabilities, twin.run.probabilities);

  coordinator->Shutdown();
  coordinator.reset();
  proxy.Stop();
  ReapWorker(pid);
}

TEST(FaultInjectionTest, DroppedReplyNeverReappliesTheMutation) {
  SetMetricsEnabled(true);
  TempDir dir;
  Twin twin(dir.path());

  const std::string worker_addr = dir.path() + "/w.sock";
  pid_t pid = StartStandaloneWorker(worker_addr);
  ASSERT_GT(pid, 0);

  FaultProxy proxy;
  std::string error;
  ASSERT_TRUE(proxy.Start(dir.path() + "/p.sock", worker_addr,
                          FaultSchedule(), &error))
      << error;

  auto coordinator =
      MakeCoordinator({proxy.address()}, {worker_addr}, kRpcDeadlineMs);
  LoadItems(coordinator.get());

  // Arm: swallow the next worker -> coordinator frame (the kOk ack of the
  // kUpdateVar). The mutation DID apply; only the ack is lost. From the
  // coordinator's side this is indistinguishable from the dropped-request
  // case -- which is exactly why it must not retransmit on a hunch.
  proxy.AddRule({FaultDirection::kReplies,
                 proxy.frames_seen(FaultDirection::kReplies),
                 FaultType::kDrop, 0});
  coordinator->UpdateProbability(1, 0.45);
  EXPECT_FALSE(coordinator->WorkerUp(0));

  // The duplicate-application regression: the probe finds the worker
  // already AT the log tail, so the resync ships zero entries. A blind
  // retry would have applied the update twice and diverged the chain.
  ResyncStats stats;
  ASSERT_TRUE(coordinator->Respawn(0, &error, &stats)) << error;
  EXPECT_FALSE(stats.full);
  EXPECT_EQ(stats.entries, 0u);

  uint64_t lsn = 0;
  uint32_t chain = 0;
  ASSERT_TRUE(coordinator->WorkerTail(0, &lsn, &chain));
  EXPECT_EQ(lsn, twin.lsn);
  EXPECT_EQ(chain, twin.chain);

  QueryRun run = RunChain(coordinator.get());
  EXPECT_TRUE(run.distributed);
  EXPECT_EQ(run.text, twin.run.text);
  EXPECT_EQ(run.probabilities, twin.run.probabilities);

  coordinator->Shutdown();
  coordinator.reset();
  proxy.Stop();
  ReapWorker(pid);
}

// ---------------------------------------------------------------------------
// 3. Corrupt / torn / reset replies: the ack was mangled, not lost -- the
//    same exactly-once contract must hold, and the connection must be
//    poisoned the instant the CRC or framing check fires.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, MangledRepliesPoisonTheLinkWithoutReapplying) {
  SetMetricsEnabled(true);
  TempDir dir;
  Twin twin(dir.path());

  const FaultType kinds[] = {FaultType::kFlipBit, FaultType::kTruncate,
                             FaultType::kReset};
  for (size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE("fault kind " + std::to_string(i));
    const std::string worker_addr =
        dir.path() + "/w" + std::to_string(i) + ".sock";
    pid_t pid = StartStandaloneWorker(worker_addr);
    ASSERT_GT(pid, 0);

    FaultProxy proxy;
    std::string error;
    ASSERT_TRUE(proxy.Start(dir.path() + "/p" + std::to_string(i) + ".sock",
                            worker_addr, FaultSchedule(), &error))
        << error;

    auto coordinator =
        MakeCoordinator({proxy.address()}, {worker_addr}, kRpcDeadlineMs);
    LoadItems(coordinator.get());

    proxy.AddRule({FaultDirection::kReplies,
                   proxy.frames_seen(FaultDirection::kReplies), kinds[i],
                   0});
    WallTimer timer;
    coordinator->UpdateProbability(1, 0.45);
    EXPECT_LT(timer.ElapsedMillis(), kBoundedMs);
    EXPECT_FALSE(coordinator->WorkerUp(0));

    // Degraded serving continues, bit-identical to the twin.
    QueryRun degraded = RunChain(coordinator.get());
    EXPECT_FALSE(degraded.distributed);
    EXPECT_FALSE(degraded.warnings.empty());
    EXPECT_EQ(degraded.text, twin.run.text);
    EXPECT_EQ(degraded.probabilities, twin.run.probabilities);

    // The mutation applied before the reply was mangled: zero entries
    // reshipped, twin-identical position.
    ResyncStats stats;
    ASSERT_TRUE(coordinator->Respawn(0, &error, &stats)) << error;
    EXPECT_FALSE(stats.full);
    EXPECT_EQ(stats.entries, 0u);
    uint64_t lsn = 0;
    uint32_t chain = 0;
    ASSERT_TRUE(coordinator->WorkerTail(0, &lsn, &chain));
    EXPECT_EQ(lsn, twin.lsn);
    EXPECT_EQ(chain, twin.chain);

    QueryRun run = RunChain(coordinator.get());
    EXPECT_TRUE(run.distributed);
    EXPECT_EQ(run.text, twin.run.text);
    EXPECT_EQ(run.probabilities, twin.run.probabilities);

    coordinator->Shutdown();
    coordinator.reset();
    proxy.Stop();
    ReapWorker(pid);
  }
}

// ---------------------------------------------------------------------------
// 4. A slow link stays correct; a frozen link degrades within the
//    deadline (the transport analogue of the SIGSTOP scenario).
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, DelayedThenFrozenLinkDegradesWithinTheDeadline) {
  SetMetricsEnabled(true);
  TempDir dir;
  const std::string worker_addr = dir.path() + "/w.sock";
  pid_t pid = StartStandaloneWorker(worker_addr);
  ASSERT_GT(pid, 0);

  FaultProxy proxy;
  std::string error;
  ASSERT_TRUE(proxy.Start(dir.path() + "/p.sock", worker_addr,
                          FaultSchedule(), &error))
      << error;

  auto coordinator =
      MakeCoordinator({proxy.address()}, {worker_addr}, kRpcDeadlineMs);
  LoadItems(coordinator.get());
  QueryRun before = RunChain(coordinator.get());
  ASSERT_TRUE(before.distributed);

  // A delay under the deadline: slower, still distributed, still right.
  proxy.AddRule({FaultDirection::kRequests,
                 proxy.frames_seen(FaultDirection::kRequests),
                 FaultType::kDelay, 50});
  QueryRun slow = RunChain(coordinator.get());
  EXPECT_TRUE(slow.distributed);
  EXPECT_EQ(slow.text, before.text);
  EXPECT_EQ(slow.probabilities, before.probabilities);
  EXPECT_GE(proxy.faults_injected(), 1u);

  // Freeze the link: nothing moves in either direction, both connections
  // held open. Only the deadline gets the coordinator out.
  proxy.AddRule({FaultDirection::kRequests,
                 proxy.frames_seen(FaultDirection::kRequests),
                 FaultType::kHang, 0});
  WallTimer timer;
  QueryRun degraded = RunChain(coordinator.get());
  EXPECT_LT(timer.ElapsedMillis(), kBoundedMs);
  EXPECT_FALSE(degraded.distributed);
  EXPECT_FALSE(degraded.warnings.empty());
  EXPECT_EQ(degraded.text, before.text);
  EXPECT_EQ(degraded.probabilities, before.probabilities);

  // Releasing the frozen relay frees the worker for a direct respawn; a
  // hung query never advanced its log, so the tail is empty.
  proxy.Stop();
  ResyncStats stats;
  ASSERT_TRUE(coordinator->Respawn(0, &error, &stats)) << error;
  EXPECT_FALSE(stats.full);
  EXPECT_EQ(stats.entries, 0u);
  QueryRun recovered = RunChain(coordinator.get());
  EXPECT_TRUE(recovered.distributed);
  EXPECT_EQ(recovered.text, before.text);
  EXPECT_EQ(recovered.probabilities, before.probabilities);

  coordinator->Shutdown();
  coordinator.reset();
  ReapWorker(pid);
}

// ---------------------------------------------------------------------------
// 5. The heartbeat walk and the respawn circuit breaker, on a mock clock.
// ---------------------------------------------------------------------------

class MockClock : public Clock {
 public:
  uint64_t NowMillis() override { return now_ms_; }
  void SleepMillis(uint64_t ms) override { now_ms_ += ms; }
  void Advance(uint64_t ms) { now_ms_ += ms; }

 private:
  uint64_t now_ms_ = 1000;
};

TEST(FaultInjectionTest, HeartbeatWalkAndRespawnCircuitBreaker) {
  SetMetricsEnabled(true);
  TempDir dir;
  const std::string addr_a = dir.path() + "/a.sock";
  const std::string addr_b = dir.path() + "/b.sock";
  pid_t pid_a = StartStandaloneWorker(addr_a);
  ASSERT_GT(pid_a, 0);

  // A spawner the test steers: count calls, fail on demand, and dial
  // whichever address the scenario says is live.
  auto spawn_calls = std::make_shared<int>(0);
  auto spawn_fails = std::make_shared<bool>(true);
  auto spawn_addr = std::make_shared<std::string>(addr_b);
  Coordinator::WorkerSpawner spawner =
      [spawn_calls, spawn_fails, spawn_addr](
          uint32_t shard, RemoteShard* out, std::string* error) -> bool {
    ++*spawn_calls;
    if (*spawn_fails) {
      *error = "injected spawn failure";
      return false;
    }
    Socket sock = ConnectWithRetry(*spawn_addr, 250, error);
    if (!sock.valid()) return false;
    *out = RemoteShard(shard, std::move(sock), 0);
    return true;
  };

  auto coordinator = std::make_unique<Coordinator>(
      SemiringKind::kBool, DialWorkers({addr_a}), spawner);

  MockClock clock;
  FaultToleranceOptions ft;
  ft.rpc_deadline_ms = kRpcDeadlineMs;
  ft.auto_respawn = true;
  ft.down_after_misses = 2;
  ft.respawn_max_failures = 2;
  ft.respawn_window_ms = 10000;
  ft.respawn_backoff.base_ms = 100;
  ft.respawn_backoff.max_ms = 5000;
  ft.respawn_backoff.multiplier = 2.0;
  ft.respawn_backoff.jitter = 0.0;
  ft.clock = &clock;
  coordinator->ConfigureFaultTolerance(ft);
  LoadItems(coordinator.get());

  Counter* sent =
      MetricsRegistry::Global().GetCounter("coordinator.heartbeats_sent");
  Counter* missed =
      MetricsRegistry::Global().GetCounter("coordinator.heartbeats_missed");
  Counter* respawns =
      MetricsRegistry::Global().GetCounter("coordinator.auto_respawns");
  const uint64_t sent0 = sent->Value();
  const uint64_t missed0 = missed->Value();
  const uint64_t respawns0 = respawns->Value();

  // Healthy worker: the tick pings and learns nothing new.
  std::vector<std::string> lines;
  coordinator->HeartbeatTick(&lines);
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(coordinator->Health(0), WorkerHealth::kHealthy);
  EXPECT_EQ(sent->Value(), sent0 + 1);

  // Kill the worker. Tick 1: the ping fails -> suspect.
  ReapWorker(pid_a);
  coordinator->HeartbeatTick(&lines);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("suspect"), std::string::npos);
  EXPECT_EQ(coordinator->Health(0), WorkerHealth::kSuspect);
  EXPECT_EQ(missed->Value(), missed0 + 1);

  // Tick 2: another missed beat -> down, and the first respawn attempt
  // runs (and fails; the spawner is set to fail).
  lines.clear();
  coordinator->HeartbeatTick(&lines);
  EXPECT_EQ(coordinator->Health(0), WorkerHealth::kDown);
  EXPECT_EQ(*spawn_calls, 1);
  bool saw_down = false;
  bool saw_failed = false;
  for (const std::string& line : lines) {
    saw_down = saw_down || line.find("down") != std::string::npos;
    saw_failed = saw_failed || line.find("respawn failed") != std::string::npos;
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_failed);

  // Backoff gates the next attempt: without advancing the clock past the
  // 100ms delay, further ticks do not call the spawner.
  coordinator->HeartbeatTick(nullptr);
  EXPECT_EQ(*spawn_calls, 1);

  // Past the backoff: attempt 2 fails too and trips the breaker (2
  // failures inside the 10s window) -> the shard is degraded and the
  // spawner is left alone.
  clock.Advance(150);
  lines.clear();
  coordinator->HeartbeatTick(&lines);
  EXPECT_EQ(*spawn_calls, 2);
  EXPECT_EQ(coordinator->Health(0), WorkerHealth::kDegraded);
  bool saw_circuit = false;
  for (const std::string& line : lines) {
    saw_circuit = saw_circuit || line.find("circuit open") != std::string::npos;
  }
  EXPECT_TRUE(saw_circuit);
  EXPECT_EQ(
      MetricsRegistry::Global().GetGauge("coordinator.circuit_open")->Value(),
      1);

  clock.Advance(500);
  coordinator->HeartbeatTick(nullptr);
  EXPECT_EQ(*spawn_calls, 2);  // Breaker open: no thrash.

  // Serving continued throughout: degraded, but correct and bounded.
  QueryRun degraded = RunChain(coordinator.get());
  EXPECT_FALSE(degraded.distributed);
  EXPECT_FALSE(degraded.warnings.empty());

  // The failures age out of the window; a replacement worker comes up at
  // the standby address and the next tick heals the shard end to end.
  clock.Advance(11000);
  pid_t pid_b = StartStandaloneWorker(addr_b);
  ASSERT_GT(pid_b, 0);
  *spawn_fails = false;
  lines.clear();
  coordinator->HeartbeatTick(&lines);
  EXPECT_EQ(*spawn_calls, 3);
  EXPECT_EQ(coordinator->Health(0), WorkerHealth::kHealthy);
  EXPECT_TRUE(coordinator->WorkerUp(0));
  EXPECT_EQ(respawns->Value(), respawns0 + 1);
  bool saw_respawned = false;
  for (const std::string& line : lines) {
    saw_respawned = saw_respawned || line.find("respawned") != std::string::npos;
  }
  EXPECT_TRUE(saw_respawned);
  EXPECT_EQ(
      MetricsRegistry::Global().GetGauge("coordinator.circuit_open")->Value(),
      0);

  QueryRun healed = RunChain(coordinator.get());
  EXPECT_TRUE(healed.distributed);
  EXPECT_TRUE(healed.warnings.empty());
  EXPECT_EQ(healed.text, degraded.text);
  EXPECT_EQ(healed.probabilities, degraded.probabilities);

  coordinator->Shutdown();
  coordinator.reset();
  ReapWorker(pid_b);
}

}  // namespace
}  // namespace pvcdb
