#include "src/table/cell.h"

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(CellTest, TypesAndAccessors) {
  EXPECT_EQ(Cell().type(), CellType::kNull);
  EXPECT_TRUE(Cell().is_null());
  Cell i(int64_t{42});
  EXPECT_EQ(i.type(), CellType::kInt);
  EXPECT_EQ(i.AsInt(), 42);
  Cell d(2.5);
  EXPECT_EQ(d.type(), CellType::kDouble);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 2.5);
  Cell s("M&S");
  EXPECT_EQ(s.type(), CellType::kString);
  EXPECT_EQ(s.AsString(), "M&S");
}

TEST(CellTest, AggCellHoldsExpression) {
  ExprPool pool(SemiringKind::kBool);
  ExprId e = pool.Tensor(pool.Var(0), pool.ConstM(AggKind::kMin, 10));
  Cell c = Cell::Agg(e);
  EXPECT_EQ(c.type(), CellType::kAggExpr);
  EXPECT_EQ(c.AsAgg(), e);
}

TEST(CellTest, WrongAccessorThrows) {
  Cell i(int64_t{1});
  EXPECT_THROW(i.AsString(), CheckError);
  EXPECT_THROW(i.AsDouble(), CheckError);
  EXPECT_THROW(i.AsAgg(), CheckError);
  EXPECT_THROW(Cell("x").AsInt(), CheckError);
}

TEST(CellTest, EqualityIsStructural) {
  EXPECT_EQ(Cell(int64_t{3}), Cell(int64_t{3}));
  EXPECT_NE(Cell(int64_t{3}), Cell(int64_t{4}));
  EXPECT_NE(Cell(int64_t{3}), Cell(3.0)) << "types distinguish";
  EXPECT_EQ(Cell("a"), Cell("a"));
  EXPECT_EQ(Cell(), Cell());
}

TEST(CellTest, HashConsistentWithEquality) {
  EXPECT_EQ(Cell(int64_t{3}).Hash(), Cell(int64_t{3}).Hash());
  EXPECT_EQ(Cell("abc").Hash(), Cell("abc").Hash());
  // Different types should (overwhelmingly) hash differently.
  EXPECT_NE(Cell(int64_t{0}).Hash(), Cell().Hash());
}

TEST(CellTest, ToStringRendering) {
  EXPECT_EQ(Cell(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Cell("Gap").ToString(), "Gap");
  EXPECT_EQ(Cell().ToString(), "NULL");
  ExprPool pool(SemiringKind::kBool);
  ExprId e = pool.Var(3);
  EXPECT_EQ(Cell::Agg(e).ToString(&pool), "x3");
  EXPECT_NE(Cell::Agg(e).ToString(nullptr).find("agg#"), std::string::npos);
}

}  // namespace
}  // namespace pvcdb
