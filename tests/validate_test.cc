#include "src/dtree/validate.h"

#include <gtest/gtest.h>

#include "src/dtree/compile.h"
#include "src/util/rng.h"
#include "src/workload/random_expr.h"

namespace pvcdb {
namespace {

TEST(ValidateTest, AcceptsCompiledTrees) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  VarId y = vars.AddBernoulli(0.5);
  DTree tree = CompileToDTree(&pool, &vars,
                              pool.AddS(pool.Var(x), pool.Var(y)));
  ValidationResult r = ValidateDTree(tree, vars);
  EXPECT_TRUE(r.valid) << r.error;
}

TEST(ValidateTest, AcceptsCompiledWorkloadTrees) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    ExprPool pool(SemiringKind::kBool);
    VariableTable vars;
    ExprGenParams params;
    params.num_vars = 8;
    params.terms_left = 6;
    params.clauses_per_term = 2;
    params.literals_per_clause = 2;
    params.max_value = 10;
    params.constant = 5;
    params.theta = CmpOp::kLe;
    params.agg_left = AggKind::kSum;
    GeneratedExpr gen = GenerateComparisonExpr(&pool, &vars, params, seed);
    DTree tree = CompileToDTree(&pool, &vars, gen.comparison);
    ValidationResult r = ValidateDTree(tree, vars);
    EXPECT_TRUE(r.valid) << "seed " << seed << ": " << r.error;
  }
}

TEST(ValidateTest, RejectsEmptyTree) {
  DTree tree;
  VariableTable vars;
  EXPECT_FALSE(ValidateDTree(tree, vars).valid);
}

TEST(ValidateTest, RejectsDependentChildrenUnderOplus) {
  // (+) over two leaves of the same variable: not independent.
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  DTree tree;
  DTreeNodeSpec leaf;
  leaf.kind = DTreeNodeKind::kLeafVar;
  leaf.var = x;
  DTree::NodeId a = tree.AddNode(leaf);
  DTree::NodeId b = tree.AddNode(leaf);
  DTreeNodeSpec sum;
  sum.kind = DTreeNodeKind::kOplus;
  sum.children = {a, b};
  tree.set_root(tree.AddNode(sum));
  ValidationResult r = ValidateDTree(tree, vars);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("share variable"), std::string::npos);
}

TEST(ValidateTest, RejectsIncompleteMutexSupport) {
  // Mutex over a three-valued variable with only two branches.
  VariableTable vars;
  VarId x = vars.Add(Distribution::FromPairs({{0, 0.3}, {1, 0.3}, {2, 0.4}}));
  DTree tree;
  DTreeNodeSpec leaf;
  leaf.kind = DTreeNodeKind::kLeafConst;
  leaf.value = 1;
  DTree::NodeId a = tree.AddNode(leaf);
  DTree::NodeId b = tree.AddNode(leaf);
  DTreeNodeSpec mutex;
  mutex.kind = DTreeNodeKind::kMutex;
  mutex.var = x;
  mutex.children = {a, b};
  mutex.branch_values = {0, 1};
  tree.set_root(tree.AddNode(mutex));
  ValidationResult r = ValidateDTree(tree, vars);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("support"), std::string::npos);
}

TEST(ValidateTest, RejectsMutexVariableInBranch) {
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  DTree tree;
  DTreeNodeSpec leaf;
  leaf.kind = DTreeNodeKind::kLeafVar;
  leaf.var = x;
  DTree::NodeId a = tree.AddNode(leaf);
  DTreeNodeSpec konst;
  konst.kind = DTreeNodeKind::kLeafConst;
  DTree::NodeId b = tree.AddNode(konst);
  DTreeNodeSpec mutex;
  mutex.kind = DTreeNodeKind::kMutex;
  mutex.var = x;
  mutex.children = {a, b};  // Branch a still mentions x.
  mutex.branch_values = {0, 1};
  tree.set_root(tree.AddNode(mutex));
  ValidationResult r = ValidateDTree(tree, vars);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("still occurs"), std::string::npos);
}

TEST(ValidateTest, RejectsMalformedTensor) {
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  VarId y = vars.AddBernoulli(0.5);
  DTree tree;
  DTreeNodeSpec leaf;
  leaf.kind = DTreeNodeKind::kLeafVar;
  leaf.var = x;
  DTree::NodeId a = tree.AddNode(leaf);
  leaf.var = y;
  DTree::NodeId b = tree.AddNode(leaf);
  DTreeNodeSpec tensor;
  tensor.kind = DTreeNodeKind::kOtimes;
  tensor.sort = ExprSort::kMonoid;
  tensor.agg = AggKind::kMin;
  tensor.children = {a, b};  // Right child must be monoid-sorted.
  tree.set_root(tree.AddNode(tensor));
  ValidationResult r = ValidateDTree(tree, vars);
  EXPECT_FALSE(r.valid);
}

}  // namespace
}  // namespace pvcdb
