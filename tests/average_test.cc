#include "src/engine/average.h"

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/util/check.h"

namespace pvcdb {
namespace {

class AverageTest : public ::testing::Test {
 protected:
  AverageTest() {
    db_.AddTupleIndependentTable(
        "R", Schema({{"g", CellType::kInt}, {"v", CellType::kInt}}),
        {{Cell(int64_t{1}), Cell(int64_t{10})},
         {Cell(int64_t{1}), Cell(int64_t{20})}},
        {0.5, 0.5});
    QueryPtr q = Query::GroupAgg(
        Query::Scan("R"), {"g"},
        {{AggKind::kSum, "v", "s"}, {AggKind::kCount, "", "c"}});
    result_ = db_.Run(*q);
  }

  Database db_;
  PvcTable result_;
};

TEST_F(AverageTest, ExactAverageDistribution) {
  ExprId sum = result_.CellAt(0, "s").AsAgg();
  ExprId cnt = result_.CellAt(0, "c").AsAgg();
  AverageDistribution avg =
      ComputeAverageDistribution(&db_.pool(), db_.variables(), sum, cnt);
  // Worlds (given non-empty, mass 3/4): {10}: avg 10 (1/4); {20}: avg 20
  // (1/4); {10,20}: avg 15 (1/4). Conditioned: each 1/3.
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_NEAR(avg[10.0], 1.0 / 3, 1e-12);
  EXPECT_NEAR(avg[15.0], 1.0 / 3, 1e-12);
  EXPECT_NEAR(avg[20.0], 1.0 / 3, 1e-12);
}

TEST_F(AverageTest, ExpectedAverage) {
  ExprId sum = result_.CellAt(0, "s").AsAgg();
  ExprId cnt = result_.CellAt(0, "c").AsAgg();
  double mean = ExpectedAverage(&db_.pool(), db_.variables(), sum, cnt);
  EXPECT_NEAR(mean, (10.0 + 15.0 + 20.0) / 3, 1e-12);
}

TEST_F(AverageTest, CorrelationBetweenSumAndCountMatters) {
  // A naive E[SUM]/E[COUNT] would give (15)/(1) = 15 exactly; the true
  // E[AVG | non-empty] is also 15 here by symmetry, but the *distribution*
  // is what distinguishes the joint computation: a marginal-only product
  // would put mass on impossible pairs like (sum=30, count=1) -> avg 30.
  ExprId sum = result_.CellAt(0, "s").AsAgg();
  ExprId cnt = result_.CellAt(0, "c").AsAgg();
  AverageDistribution avg =
      ComputeAverageDistribution(&db_.pool(), db_.variables(), sum, cnt);
  EXPECT_EQ(avg.count(30.0), 0u) << "avg 30 is impossible";
  double mass = 0;
  for (const auto& [a, p] : avg) mass += p;
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST_F(AverageTest, EmptyGroupImpossibleGivesEmptyDistribution) {
  Database db;
  db.AddTupleIndependentTable("R", Schema({{"v", CellType::kInt}}),
                              {{Cell(int64_t{7})}}, {0.0});
  QueryPtr q = Query::GroupAgg(
      Query::Scan("R"), {},
      {{AggKind::kSum, "v", "s"}, {AggKind::kCount, "", "c"}});
  PvcTable r = db.Run(*q);
  AverageDistribution avg = ComputeAverageDistribution(
      &db.pool(), db.variables(), r.CellAt(0, "s").AsAgg(),
      r.CellAt(0, "c").AsAgg());
  EXPECT_TRUE(avg.empty());
}

TEST_F(AverageTest, RejectsSemiringExpressions) {
  EXPECT_THROW(ComputeAverageDistribution(&db_.pool(), db_.variables(),
                                          result_.row(0).annotation,
                                          result_.CellAt(0, "c").AsAgg()),
               CheckError);
}

TEST(AverageScenarioTest, SkewedProbabilitiesShiftTheAverage) {
  Database db;
  db.AddTupleIndependentTable(
      "R", Schema({{"v", CellType::kInt}}),
      {{Cell(int64_t{100})}, {Cell(int64_t{0})}}, {0.9, 0.1});
  QueryPtr q = Query::GroupAgg(
      Query::Scan("R"), {},
      {{AggKind::kSum, "v", "s"}, {AggKind::kCount, "", "c"}});
  PvcTable r = db.Run(*q);
  double mean = ExpectedAverage(&db.pool(), db.variables(),
                                r.CellAt(0, "s").AsAgg(),
                                r.CellAt(0, "c").AsAgg());
  // Worlds: {100} p=.81 avg 100; {0} p=.01 avg 0; {100,0} p=.09 avg 50;
  // given non-empty mass .91: E = (.81*100 + .09*50)/.91.
  EXPECT_NEAR(mean, (0.81 * 100 + 0.09 * 50) / 0.91, 1e-9);
}

}  // namespace
}  // namespace pvcdb
