// Tests of the Q_ind / Q_hie classifier (Definitions 8 and 9) and the
// hierarchical-query property, plus the empirical side of Theorem 3: the
// expressions produced by classified-tractable queries compile without
// Shannon expansion.

#include "src/query/tractability.h"

#include <gtest/gtest.h>

#include "src/dtree/compile.h"
#include "src/engine/database.h"
#include "tests/figure1_db.h"

namespace pvcdb {
namespace {

using testing_fixtures::BuildFigure1Database;

class TractabilityTest : public ::testing::Test {
 protected:
  TractabilityTest() { BuildFigure1Database(&db_); }

  TractabilityResult Analyze(const QueryPtr& q) {
    auto independent = [this](const std::string& name) {
      return IsTupleIndependent(db_.table(name), db_.pool());
    };
    auto columns = [this](const std::string& name) {
      std::vector<std::string> cols;
      for (const Column& c : db_.table(name).schema().columns()) {
        cols.push_back(c.name);
      }
      return cols;
    };
    return AnalyzeTractability(*q, independent, columns);
  }

  Database db_;
};

TEST_F(TractabilityTest, BaseTablesAreTupleIndependent) {
  EXPECT_TRUE(IsTupleIndependent(db_.table("S"), db_.pool()));
  EXPECT_TRUE(IsTupleIndependent(db_.table("PS"), db_.pool()));
}

TEST_F(TractabilityTest, NonIndependentTableDetected) {
  // Repeated variable -> correlated tuples.
  PvcTable t{Schema({{"a", CellType::kInt}})};
  VarId x = db_.variables().AddBernoulli(0.5);
  t.AddRow({Cell(int64_t{1})}, db_.pool().Var(x));
  t.AddRow({Cell(int64_t{2})}, db_.pool().Var(x));
  db_.AddTable("Corr", std::move(t));
  EXPECT_FALSE(IsTupleIndependent(db_.table("Corr"), db_.pool()));
  TractabilityResult r = Analyze(Query::Scan("Corr"));
  EXPECT_FALSE(r.in_qind);
}

TEST_F(TractabilityTest, ScanOfIndependentTableInQind) {
  TractabilityResult r = Analyze(Query::Scan("S"));
  EXPECT_TRUE(r.in_qind);
  EXPECT_TRUE(r.in_qhie);
}

TEST_F(TractabilityTest, HierarchicalJoinDetected) {
  // pi_shop(S |x| PS): the join variable sid* occurs in both relations,
  // price/pid only in PS -> at(sid*) contains both, nested containment ok.
  QueryPtr q = Query::Project(
      Query::Join(Query::Scan("S"), Query::Scan("PS"),
                  Predicate::ColEqCol("sid", "ps_sid")),
      {"shop"});
  TractabilityResult r = Analyze(q);
  EXPECT_TRUE(r.hierarchical);
  EXPECT_TRUE(r.in_qhie);
}

TEST_F(TractabilityTest, NonHierarchicalTriangleRejected) {
  // R(a, b), T(b, c), U(c, a) triangle: classic non-hierarchical shape.
  auto add = [&](const std::string& name, const std::string& c1,
                 const std::string& c2) {
    PvcTable t{Schema({{c1, CellType::kInt}, {c2, CellType::kInt}})};
    VarId x = db_.variables().AddBernoulli(0.5);
    t.AddRow({Cell(int64_t{1}), Cell(int64_t{1})}, db_.pool().Var(x));
    db_.AddTable(name, std::move(t));
  };
  add("R", "ra", "rb");
  add("T", "tb", "tc");
  add("U", "uc", "ua");
  Predicate joins;
  joins.And({CmpOp::kEq, Operand::Col("ra"), Operand::Col("ua")})
      .And({CmpOp::kEq, Operand::Col("rb"), Operand::Col("tb")})
      .And({CmpOp::kEq, Operand::Col("tc"), Operand::Col("uc")});
  QueryPtr q = Query::Project(
      Query::Select(
          Query::Product(Query::Product(Query::Scan("R"), Query::Scan("T")),
                         Query::Scan("U")),
          joins),
      {});
  TractabilityResult r = Analyze(q);
  EXPECT_FALSE(r.hierarchical);
  EXPECT_FALSE(r.in_qhie);
}

TEST_F(TractabilityTest, RepeatedRelationRejected) {
  QueryPtr q = Query::Product(
      Query::Scan("S"),
      Query::Project(Query::Scan("S"), {"shop"}));  // S twice.
  TractabilityResult r = Analyze(q);
  EXPECT_FALSE(r.in_qind);
  EXPECT_FALSE(r.in_qhie);
  EXPECT_NE(r.explanation.find("repeats"), std::string::npos);
}

TEST_F(TractabilityTest, Definition8aFilteredAggregate) {
  // pi_shop sigma_{P<=50}($_{shop; P <- MIN(price)}(PS)): Q_ind 8.2(a).
  QueryPtr agg = Query::GroupAgg(Query::Scan("PS"), {"ps_sid"},
                                 {{AggKind::kMin, "price", "P"}});
  QueryPtr q = Query::Project(
      Query::Select(agg, Predicate::ColCmpInt("P", CmpOp::kLe, 50)),
      {"ps_sid"});
  TractabilityResult r = Analyze(q);
  EXPECT_TRUE(r.in_qind);
}

TEST_F(TractabilityTest, Definition8cAggregateComparison) {
  // pi_0 sigma_{g1 <= g2}($(P1) x $(P2)).
  QueryPtr a1 = Query::GroupAgg(Query::Scan("P1"), {},
                                {{AggKind::kMin, "weight", "g1"}});
  QueryPtr a2 = Query::GroupAgg(Query::Scan("P2"), {},
                                {{AggKind::kMax, "weight", "g2"}});
  QueryPtr q = Query::Project(
      Query::Select(Query::Product(a1, a2),
                    Predicate::ColCmpCol("g1", CmpOp::kLe, "g2")),
      {});
  TractabilityResult r = Analyze(q);
  EXPECT_TRUE(r.in_qind);
}

TEST_F(TractabilityTest, Definition9GroupedAggregateOverHierarchicalJoin) {
  // $_{shop; c <- COUNT}(sigma(S |x| PS)): Q_hie 9.1 (Example 14's shape).
  QueryPtr joined = Query::Join(Query::Scan("S"), Query::Scan("PS"),
                                Predicate::ColEqCol("sid", "ps_sid"));
  QueryPtr q = Query::Project(
      Query::GroupAgg(joined, {"shop"}, {{AggKind::kCount, "", "c"}}),
      {"shop"});
  TractabilityResult r = Analyze(q);
  EXPECT_TRUE(r.in_qhie);
}

TEST_F(TractabilityTest, TheoremThreeEmpirically) {
  // The aggregate of a Q_hie query compiles with rules 1-4 only.
  QueryPtr joined = Query::Join(
      Query::Select(Query::Scan("S"), Predicate::ColEqStr("shop", "M&S")),
      Query::Scan("PS"), Predicate::ColEqCol("sid", "ps_sid"));
  QueryPtr q =
      Query::GroupAgg(joined, {}, {{AggKind::kSum, "price", "alpha"}});
  PvcTable result = db_.Run(*q);
  ExprId alpha = result.CellAt(0, "alpha").AsAgg();
  DTree t = CompileToDTree(&db_.pool(), &db_.variables(), alpha);
  EXPECT_EQ(t.MutexCount(), 0u);
}

TEST_F(TractabilityTest, ExplanationsArePopulated) {
  TractabilityResult r = Analyze(Query::Scan("S"));
  EXPECT_FALSE(r.explanation.empty());
}

}  // namespace
}  // namespace pvcdb
