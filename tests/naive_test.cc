#include "src/naive/possible_worlds.h"

#include <gtest/gtest.h>

#include "src/naive/monte_carlo.h"
#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(PossibleWorldsTest, SingleVariable) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.3);
  Distribution d = EnumerateDistribution(pool, vars, pool.Var(x));
  EXPECT_DOUBLE_EQ(d.ProbOf(1), 0.3);
  EXPECT_DOUBLE_EQ(d.ProbOf(0), 0.7);
}

TEST(PossibleWorldsTest, GroundExpression) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  Distribution d = EnumerateDistribution(pool, vars, pool.ConstS(1));
  EXPECT_TRUE(d.ApproxEquals(Distribution::Point(1), 1e-12));
}

TEST(PossibleWorldsTest, ConjunctionAndDisjunction) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  VarId y = vars.AddBernoulli(0.5);
  Distribution conj =
      EnumerateDistribution(pool, vars, pool.MulS(pool.Var(x), pool.Var(y)));
  EXPECT_DOUBLE_EQ(conj.ProbOf(1), 0.25);
  Distribution disj =
      EnumerateDistribution(pool, vars, pool.AddS(pool.Var(x), pool.Var(y)));
  EXPECT_DOUBLE_EQ(disj.ProbOf(1), 0.75);
}

TEST(PossibleWorldsTest, WorldBudgetEnforced) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<ExprId> terms;
  for (int i = 0; i < 30; ++i) {
    terms.push_back(pool.Var(vars.AddBernoulli(0.5)));
  }
  ExprId big = pool.AddS(terms);
  EXPECT_THROW(EnumerateDistribution(pool, vars, big, /*max_worlds=*/1024),
               CheckError);
}

TEST(PossibleWorldsTest, JointDistributionOfCorrelatedExprs) {
  // Phi = x, Psi = x*y: P[(1,1)] = p q, P[(1,0)] = p(1-q), P[(0,0)] = 1-p.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.6);
  VarId y = vars.AddBernoulli(0.5);
  JointDistribution joint = EnumerateJointDistribution(
      pool, vars, {pool.Var(x), pool.MulS(pool.Var(x), pool.Var(y))});
  EXPECT_NEAR((joint[{1, 1}]), 0.3, 1e-12);
  EXPECT_NEAR((joint[{1, 0}]), 0.3, 1e-12);
  EXPECT_NEAR((joint[{0, 0}]), 0.4, 1e-12);
  EXPECT_EQ(joint.count({0, 1}), 0u) << "x=0 forces x*y=0";
}

TEST(MonteCarloTest, ConvergesToExactForSimpleExpression) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.3);
  VarId y = vars.AddBernoulli(0.6);
  ExprId e = pool.AddS(pool.Var(x), pool.Var(y));
  Distribution exact = EnumerateDistribution(pool, vars, e);
  Distribution estimate = MonteCarloDistribution(pool, vars, e, 200000, 42);
  EXPECT_NEAR(estimate.ProbOf(1), exact.ProbOf(1), 5e-3);
}

TEST(MonteCarloTest, DeterministicUnderFixedSeed) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  VarId x = vars.AddBernoulli(0.5);
  ExprId e = pool.Var(x);
  Distribution a = MonteCarloDistribution(pool, vars, e, 1000, 7);
  Distribution b = MonteCarloDistribution(pool, vars, e, 1000, 7);
  EXPECT_TRUE(a.ApproxEquals(b, 0.0));
}

TEST(MonteCarloTest, HandlesIntegerValuedVariables) {
  ExprPool pool(SemiringKind::kNatural);
  VariableTable vars;
  VarId x = vars.Add(Distribution::FromPairs({{1, 0.5}, {3, 0.5}}));
  ExprId e = pool.AddS(pool.Var(x), pool.ConstS(1));
  Distribution estimate = MonteCarloDistribution(pool, vars, e, 100000, 3);
  EXPECT_NEAR(estimate.ProbOf(2), 0.5, 1e-2);
  EXPECT_NEAR(estimate.ProbOf(4), 0.5, 1e-2);
}

TEST(MonteCarloTest, RejectsZeroSamples) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  EXPECT_THROW(MonteCarloDistribution(pool, vars, pool.ConstS(1), 0, 1),
               CheckError);
}

}  // namespace
}  // namespace pvcdb
