#include "src/workload/random_expr.h"

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(WorkloadTest, GeneratesRequestedShape) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  params.num_vars = 10;
  params.terms_left = 7;
  params.clauses_per_term = 3;
  params.literals_per_clause = 2;
  params.max_value = 100;
  params.constant = 50;
  params.theta = CmpOp::kLe;
  params.agg_left = AggKind::kMin;
  GeneratedExpr gen = GenerateComparisonExpr(&pool, &vars, params, 1);
  EXPECT_EQ(gen.vars.size(), 10u);
  EXPECT_EQ(vars.size(), 10u);
  const ExprNode& cmp = pool.node(gen.comparison);
  ASSERT_EQ(cmp.kind, ExprKind::kCmp);
  EXPECT_EQ(cmp.cmp, CmpOp::kLe);
  // lhs is a MIN-monoid sum with (up to) L terms; duplicates may merge.
  const ExprNode& lhs = pool.node(gen.lhs);
  EXPECT_EQ(lhs.sort, ExprSort::kMonoid);
  EXPECT_EQ(lhs.agg, AggKind::kMin);
  // rhs is the constant c.
  const ExprNode& rhs = pool.node(gen.rhs);
  EXPECT_EQ(rhs.kind, ExprKind::kConstM);
  EXPECT_EQ(rhs.value, 50);
}

TEST(WorkloadTest, TwoSidedFormUsesBothMonoids) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  params.num_vars = 8;
  params.terms_left = 4;
  params.terms_right = 5;
  params.agg_left = AggKind::kMax;
  params.agg_right = AggKind::kSum;
  GeneratedExpr gen = GenerateComparisonExpr(&pool, &vars, params, 2);
  EXPECT_EQ(pool.node(gen.lhs).agg, AggKind::kMax);
  EXPECT_EQ(pool.node(gen.rhs).agg, AggKind::kSum);
}

TEST(WorkloadTest, CountTermsHaveValueOne) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  params.num_vars = 6;
  params.terms_left = 5;
  params.agg_left = AggKind::kCount;
  params.max_value = 100;
  GeneratedExpr gen = GenerateComparisonExpr(&pool, &vars, params, 3);
  const ExprNode& lhs = pool.node(gen.lhs);
  for (ExprId child : lhs.children()) {
    const ExprNode& t = pool.node(child);
    if (t.kind == ExprKind::kTensor) {
      EXPECT_EQ(pool.node(t.child(1)).value, 1);
    }
  }
}

TEST(WorkloadTest, DeterministicUnderSeed) {
  ExprPool pool_a(SemiringKind::kBool);
  VariableTable vars_a;
  ExprPool pool_b(SemiringKind::kBool);
  VariableTable vars_b;
  ExprGenParams params;
  GeneratedExpr a = GenerateComparisonExpr(&pool_a, &vars_a, params, 42);
  GeneratedExpr b = GenerateComparisonExpr(&pool_b, &vars_b, params, 42);
  // Same seed -> identical structure (compare rendered sizes).
  EXPECT_EQ(pool_a.ReachableSize(a.comparison),
            pool_b.ReachableSize(b.comparison));
  for (size_t i = 0; i < vars_a.size(); ++i) {
    EXPECT_EQ(vars_a.DistributionOf(i).ProbOf(1),
              vars_b.DistributionOf(i).ProbOf(1));
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  GeneratedExpr a = GenerateComparisonExpr(&pool, &vars, params, 1);
  GeneratedExpr b = GenerateComparisonExpr(&pool, &vars, params, 2);
  EXPECT_NE(a.comparison, b.comparison);
}

TEST(WorkloadTest, VariableProbabilitiesWithinRange) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  params.prob_low = 0.2;
  params.prob_high = 0.4;
  params.num_vars = 20;
  GenerateComparisonExpr(&pool, &vars, params, 5);
  for (size_t i = 0; i < vars.size(); ++i) {
    double p = vars.DistributionOf(i).ProbOf(1);
    EXPECT_GE(p, 0.2);
    EXPECT_LE(p, 0.4);
  }
}

TEST(WorkloadTest, InvalidParamsRejected) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprGenParams params;
  params.num_vars = 0;
  EXPECT_THROW(GenerateComparisonExpr(&pool, &vars, params, 1), CheckError);
  params.num_vars = 5;
  params.terms_left = 0;
  EXPECT_THROW(GenerateComparisonExpr(&pool, &vars, params, 1), CheckError);
}

}  // namespace
}  // namespace pvcdb
