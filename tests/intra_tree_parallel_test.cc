// Bit-identity of the intra-d-tree parallel probability pass (the
// work-stealing shared-memo mode behind EvalOptions::intra_tree_threads):
// for every thread count, ComputeDistribution must produce the exact same
// Distribution -- value for value, bit for bit -- as the serial kernel, on
// the Figure 1 workload, on a >= 100k-node stress d-tree, and on
// adversarial shapes (deep sequential Shannon towers, wide flat sums).
//
// Labelled "parallel": the TSan CI job runs this suite.

#include <gtest/gtest.h>

#include <vector>

#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/engine/database.h"
#include "src/expr/expr.h"
#include "src/prob/variable.h"
#include "tests/figure1_db.h"

namespace pvcdb {
namespace {

using testing_fixtures::BuildFigure1Database;
using testing_fixtures::BuildFigure1Q1;

void ExpectBitIdentical(const Distribution& actual,
                        const Distribution& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual.entries()[i].first, expected.entries()[i].first);
    // Bit-level equality, not approximate.
    EXPECT_EQ(actual.entries()[i].second, expected.entries()[i].second);
  }
}

void ExpectParallelMatchesSerial(const DTree& tree, const VariableTable& vars,
                                 const Semiring& semiring) {
  Distribution expected = ComputeDistribution(tree, vars, semiring);
  for (int threads : {2, 4, 8}) {
    ProbabilityOptions options;
    options.num_threads = threads;
    Distribution d = ComputeDistribution(tree, vars, semiring, options);
    ExpectBitIdentical(d, expected);
  }
}

double VarProb(size_t i) { return 0.05 + 0.9 * ((i * 37 + 11) % 97) / 96.0; }

VarId Fresh(VariableTable* vars) {
  return vars->AddBernoulli(VarProb(vars->size()));
}

// x_0*x_1 + x_1*x_2 + ... over fresh adjacent variables: non-hierarchical,
// so compilation Shannon-expands into a deep mutex tower (a sequential
// spine for the parallel pass).
ExprId Chain(ExprPool* pool, VariableTable* vars, size_t len) {
  std::vector<VarId> xs;
  for (size_t i = 0; i <= len; ++i) xs.push_back(Fresh(vars));
  std::vector<ExprId> sum;
  for (size_t i = 0; i < len; ++i) {
    sum.push_back(pool->MulS(pool->Var(xs[i]), pool->Var(xs[i + 1])));
  }
  return pool->AddS(sum);
}

// OR of `terms` ANDs of `width` fresh variables: compiles read-once into a
// wide independent sum (many small parallel subtrees).
ExprId ReadOnceOr(ExprPool* pool, VariableTable* vars, size_t terms,
                  size_t width) {
  std::vector<ExprId> sum;
  for (size_t t = 0; t < terms; ++t) {
    std::vector<ExprId> factors;
    for (size_t f = 0; f < width; ++f) factors.push_back(pool->Var(Fresh(vars)));
    sum.push_back(pool->MulS(factors));
  }
  return pool->AddS(sum);
}

TEST(IntraTreeParallelTest, Figure1AnnotationsMatchSerial) {
  Database db;
  BuildFigure1Database(&db);
  PvcTable result = db.Run(*BuildFigure1Q1());
  ASSERT_GT(result.NumRows(), 0u);
  for (const Row& row : result.rows()) {
    ExprPool local(db.semiring().kind());
    ExprId e = db.pool().CloneInto(&local, row.annotation);
    DTree tree = CompileToDTree(&local, &db.variables(), e);
    ExpectParallelMatchesSerial(tree, db.variables(), db.semiring());
  }
}

TEST(IntraTreeParallelTest, Figure1DatabaseKnobMatchesSerial) {
  // The engine-level knob: TupleProbabilities with intra_tree_threads set
  // must equal the fully serial batch bit for bit.
  Database serial_db;
  BuildFigure1Database(&serial_db);
  PvcTable result = serial_db.Run(*BuildFigure1Q1());
  std::vector<double> expected = serial_db.TupleProbabilities(result);
  for (int threads : {2, 4, 8}) {
    serial_db.eval_options().intra_tree_threads = threads;
    EXPECT_EQ(serial_db.TupleProbabilities(result), expected);
  }
  serial_db.eval_options().intra_tree_threads = 0;
}

TEST(IntraTreeParallelTest, HundredThousandNodeStressMatchesSerial) {
  // The bench_hotpath giant shape: many medium Shannon towers plus a
  // read-once bulk under one independent sum. >= 100k d-tree nodes.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<ExprId> parts;
  for (int c = 0; c < 480; ++c) parts.push_back(Chain(&pool, &vars, 56));
  parts.push_back(ReadOnceOr(&pool, &vars, 512, 3));
  ExprId giant = pool.AddS(parts);
  DTree tree = CompileToDTree(&pool, &vars, giant);
  ASSERT_GE(tree.size(), 100000u);
  ExpectParallelMatchesSerial(tree, vars, pool.semiring());
}

TEST(IntraTreeParallelTest, DeepSequentialTowerMatchesSerial) {
  // One deep tower: the over-grain skeleton is a pure sequential spine, so
  // the pass must fall back to (or behave like) serial execution without
  // deadlocking or diverging.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprId chain = Chain(&pool, &vars, 600);
  DTree tree = CompileToDTree(&pool, &vars, chain);
  ASSERT_GE(tree.size(), 2000u);
  ExpectParallelMatchesSerial(tree, vars, pool.semiring());
}

TEST(IntraTreeParallelTest, WideFlatSumMatchesSerial) {
  // A single wide independent sum: thousands of tiny subtrees under one
  // inner node exercises the group-job batching path.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  ExprId wide = ReadOnceOr(&pool, &vars, 3000, 2);
  DTree tree = CompileToDTree(&pool, &vars, wide);
  ASSERT_GE(tree.size(), 9000u);
  ExpectParallelMatchesSerial(tree, vars, pool.semiring());
}

TEST(IntraTreeParallelTest, AggregateComparisonClampsMatchSerial) {
  // Clamped SUM comparison subproblems ((node, clamp) keys with a real
  // clamp bound) must flow through the parallel task graph unchanged.
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<ExprId> terms;
  for (int i = 0; i < 160; ++i) {
    terms.push_back(
        pool.Tensor(pool.Var(Fresh(&vars)), pool.ConstM(AggKind::kSum, 3)));
  }
  ExprId sum = pool.AddM(AggKind::kSum, terms);
  ExprId cmp = pool.Cmp(CmpOp::kLe, sum, pool.ConstM(AggKind::kSum, 40));
  DTree tree = CompileToDTree(&pool, &vars, cmp);
  ASSERT_GE(tree.size(), 128u);
  ExpectParallelMatchesSerial(tree, vars, pool.semiring());
}

TEST(IntraTreeParallelTest, RepeatedRunsAreDeterministic) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<ExprId> parts;
  for (int c = 0; c < 24; ++c) parts.push_back(Chain(&pool, &vars, 32));
  ExprId e = pool.AddS(parts);
  DTree tree = CompileToDTree(&pool, &vars, e);
  ProbabilityOptions options;
  options.num_threads = 4;
  Distribution first =
      ComputeDistribution(tree, vars, pool.semiring(), options);
  for (int run = 0; run < 8; ++run) {
    Distribution d = ComputeDistribution(tree, vars, pool.semiring(), options);
    ExpectBitIdentical(d, first);
  }
}

}  // namespace
}  // namespace pvcdb
