#include "src/prob/distribution.h"

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(DistributionTest, PointMass) {
  Distribution d = Distribution::Point(42);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.ProbOf(42), 1.0);
  EXPECT_DOUBLE_EQ(d.ProbOf(41), 0.0);
  EXPECT_TRUE(d.IsNormalized());
}

TEST(DistributionTest, BernoulliBasics) {
  Distribution d = Distribution::Bernoulli(0.3);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.ProbOf(1), 0.3);
  EXPECT_DOUBLE_EQ(d.ProbOf(0), 0.7);
  EXPECT_TRUE(d.IsNormalized());
}

TEST(DistributionTest, BernoulliDegenerateEndpoints) {
  EXPECT_EQ(Distribution::Bernoulli(0.0).size(), 1u);
  EXPECT_EQ(Distribution::Bernoulli(1.0).size(), 1u);
  EXPECT_DOUBLE_EQ(Distribution::Bernoulli(1.0).ProbOf(1), 1.0);
}

TEST(DistributionTest, BernoulliRejectsOutOfRange) {
  EXPECT_THROW(Distribution::Bernoulli(-0.1), CheckError);
  EXPECT_THROW(Distribution::Bernoulli(1.1), CheckError);
}

TEST(DistributionTest, FromPairsMergesDuplicates) {
  Distribution d = Distribution::FromPairs({{5, 0.2}, {3, 0.3}, {5, 0.5}});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.ProbOf(5), 0.7);
  EXPECT_DOUBLE_EQ(d.ProbOf(3), 0.3);
}

TEST(DistributionTest, FromPairsDropsZeroProbabilities) {
  Distribution d = Distribution::FromPairs({{1, 0.0}, {2, 1.0}});
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.ProbOf(2), 1.0);
}

TEST(DistributionTest, FromPairsRejectsNegativeProbability) {
  EXPECT_THROW(Distribution::FromPairs({{1, -0.5}}), CheckError);
}

TEST(DistributionTest, EntriesAreSortedByValue) {
  Distribution d = Distribution::FromPairs({{9, 0.1}, {-4, 0.5}, {2, 0.4}});
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d.entries()[0].first, -4);
  EXPECT_EQ(d.entries()[1].first, 2);
  EXPECT_EQ(d.entries()[2].first, 9);
  EXPECT_EQ(d.MinValue(), -4);
  EXPECT_EQ(d.MaxValue(), 9);
}

TEST(DistributionTest, ConvolveSumOfIntegers) {
  // The example after Definition 1: P[x + y = 4] sums over the pairings.
  Distribution x = Distribution::FromPairs({{0, 0.5}, {1, 0.25}, {4, 0.25}});
  Distribution y = Distribution::FromPairs({{0, 0.4}, {3, 0.2}, {4, 0.4}});
  Distribution sum = x.Convolve(y, [](int64_t a, int64_t b) { return a + b; });
  // 4 = 0+4 or 1+3 or 4+0.
  EXPECT_DOUBLE_EQ(sum.ProbOf(4), 0.5 * 0.4 + 0.25 * 0.2 + 0.25 * 0.4);
  EXPECT_TRUE(sum.IsNormalized());
}

TEST(DistributionTest, ConvolvePreservesMass) {
  Distribution x = Distribution::FromPairs({{1, 0.3}, {2, 0.7}});
  Distribution y = Distribution::FromPairs({{10, 0.6}, {20, 0.4}});
  Distribution prod =
      x.Convolve(y, [](int64_t a, int64_t b) { return a * b; });
  EXPECT_NEAR(prod.TotalMass(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(prod.ProbOf(20), 0.3 * 0.4 + 0.7 * 0.6);
}

TEST(DistributionTest, ConvolveDisjunctionMatchesClosedForm) {
  // Example 2: P[Phi or Psi = true] = 1 - (1-p)(1-q).
  Distribution phi = Distribution::Bernoulli(0.3);
  Distribution psi = Distribution::Bernoulli(0.6);
  Distribution disj = phi.Convolve(
      psi, [](int64_t a, int64_t b) { return (a != 0 || b != 0) ? 1 : 0; });
  EXPECT_NEAR(disj.ProbOf(1), 1.0 - 0.7 * 0.4, 1e-12);
  EXPECT_NEAR(disj.ProbOf(0), 0.7 * 0.4, 1e-12);
}

TEST(DistributionTest, ConvolveCollapsesEqualResults) {
  // min over {1,2} x {1,2} collapses three pairs onto value 1.
  Distribution x = Distribution::FromPairs({{1, 0.5}, {2, 0.5}});
  Distribution y = Distribution::FromPairs({{1, 0.5}, {2, 0.5}});
  Distribution m =
      x.Convolve(y, [](int64_t a, int64_t b) { return std::min(a, b); });
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.ProbOf(1), 0.75);
  EXPECT_DOUBLE_EQ(m.ProbOf(2), 0.25);
}

TEST(DistributionTest, MapAppliesFunctionAndMerges) {
  Distribution d = Distribution::FromPairs({{1, 0.25}, {2, 0.25}, {3, 0.5}});
  Distribution clamped =
      d.Map([](int64_t v) { return std::min<int64_t>(v, 2); });
  EXPECT_EQ(clamped.size(), 2u);
  EXPECT_DOUBLE_EQ(clamped.ProbOf(1), 0.25);
  EXPECT_DOUBLE_EQ(clamped.ProbOf(2), 0.75);
}

TEST(DistributionTest, MixWeightsParts) {
  // Eq. (10): mutually exclusive mixture.
  Distribution a = Distribution::Point(1);
  Distribution b = Distribution::Point(2);
  Distribution mixed = Distribution::Mix({{0.3, a}, {0.7, b}});
  EXPECT_DOUBLE_EQ(mixed.ProbOf(1), 0.3);
  EXPECT_DOUBLE_EQ(mixed.ProbOf(2), 0.7);
  EXPECT_TRUE(mixed.IsNormalized());
}

TEST(DistributionTest, MixMergesOverlappingSupports) {
  Distribution a = Distribution::FromPairs({{1, 0.5}, {2, 0.5}});
  Distribution b = Distribution::FromPairs({{2, 1.0}});
  Distribution mixed = Distribution::Mix({{0.5, a}, {0.5, b}});
  EXPECT_DOUBLE_EQ(mixed.ProbOf(1), 0.25);
  EXPECT_DOUBLE_EQ(mixed.ProbOf(2), 0.75);
}

TEST(DistributionTest, MixRejectsNegativeWeights) {
  EXPECT_THROW(Distribution::Mix({{-0.5, Distribution::Point(0)}}),
               CheckError);
}

TEST(DistributionTest, MeanOfUniform) {
  Distribution d = Distribution::FromPairs({{0, 0.5}, {10, 0.5}});
  EXPECT_DOUBLE_EQ(d.Mean(), 5.0);
}

TEST(DistributionTest, ApproxEqualsTolerance) {
  Distribution a = Distribution::FromPairs({{1, 0.5}, {2, 0.5}});
  Distribution b = Distribution::FromPairs({{1, 0.5 + 1e-12}, {2, 0.5}});
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9));
  Distribution c = Distribution::FromPairs({{1, 0.4}, {2, 0.6}});
  EXPECT_FALSE(a.ApproxEquals(c, 1e-9));
}

TEST(DistributionTest, ApproxEqualsDifferentSupports) {
  Distribution a = Distribution::FromPairs({{1, 1.0}});
  Distribution b = Distribution::FromPairs({{1, 1.0 - 1e-12}, {7, 1e-12}});
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9));
  Distribution c = Distribution::FromPairs({{1, 0.9}, {7, 0.1}});
  EXPECT_FALSE(a.ApproxEquals(c, 1e-9));
}

TEST(DistributionTest, EmptyDistribution) {
  Distribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_DOUBLE_EQ(d.TotalMass(), 0.0);
  EXPECT_THROW(d.MinValue(), CheckError);
}

TEST(DistributionTest, ToStringRendering) {
  Distribution d = Distribution::FromPairs({{1, 0.5}, {2, 0.5}});
  EXPECT_EQ(d.ToString(), "{(1, 0.5), (2, 0.5)}");
}

// Convolution size bound of Theorem 2: |conv| <= |a| * |b|.
TEST(DistributionTest, ConvolutionSizeBound) {
  Distribution a = Distribution::FromPairs({{1, 0.2}, {2, 0.3}, {4, 0.5}});
  Distribution b = Distribution::FromPairs({{0, 0.5}, {8, 0.5}});
  Distribution c = a.Convolve(b, [](int64_t x, int64_t y) { return x + y; });
  EXPECT_LE(c.size(), a.size() * b.size());
}

}  // namespace
}  // namespace pvcdb
