#include "src/expr/expr.h"

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace pvcdb {
namespace {

class ExprPoolTest : public ::testing::Test {
 protected:
  ExprPool bool_pool_{SemiringKind::kBool};
  ExprPool nat_pool_{SemiringKind::kNatural};
};

TEST_F(ExprPoolTest, HashConsingSharesEqualNodes) {
  ExprId a1 = bool_pool_.Var(0);
  ExprId a2 = bool_pool_.Var(0);
  EXPECT_EQ(a1, a2);
  ExprId s1 = bool_pool_.AddS(bool_pool_.Var(0), bool_pool_.Var(1));
  ExprId s2 = bool_pool_.AddS(bool_pool_.Var(1), bool_pool_.Var(0));
  EXPECT_EQ(s1, s2) << "sums are canonically sorted (commutativity)";
}

TEST_F(ExprPoolTest, ConstSCanonicalisesIntoCarrier) {
  EXPECT_EQ(bool_pool_.ConstS(7), bool_pool_.ConstS(1));
  EXPECT_NE(nat_pool_.ConstS(7), nat_pool_.ConstS(1));
}

TEST_F(ExprPoolTest, AddSFoldsConstantsAndDropsZero) {
  ExprId x = nat_pool_.Var(0);
  ExprId e = nat_pool_.AddS({x, nat_pool_.ConstS(0)});
  EXPECT_EQ(e, x) << "x + 0 = x";
  ExprId c = nat_pool_.AddS({nat_pool_.ConstS(2), nat_pool_.ConstS(3)});
  EXPECT_EQ(nat_pool_.node(c).kind, ExprKind::kConstS);
  EXPECT_EQ(nat_pool_.node(c).value, 5);
}

TEST_F(ExprPoolTest, EmptySumAndProductAreNeutral) {
  ExprId zero = nat_pool_.AddS(std::vector<ExprId>{});
  EXPECT_EQ(nat_pool_.node(zero).value, 0);
  ExprId one = nat_pool_.MulS(std::vector<ExprId>{});
  EXPECT_EQ(nat_pool_.node(one).value, 1);
}

TEST_F(ExprPoolTest, BooleanAbsorptionTruePlusAnything) {
  ExprId x = bool_pool_.Var(0);
  ExprId e = bool_pool_.AddS({x, bool_pool_.ConstS(1)});
  EXPECT_EQ(e, bool_pool_.ConstS(1)) << "1 + x = 1 under B";
}

TEST_F(ExprPoolTest, BooleanIdempotence) {
  ExprId x = bool_pool_.Var(0);
  EXPECT_EQ(bool_pool_.AddS(x, x), x) << "x + x = x in PosBool";
  EXPECT_EQ(bool_pool_.MulS(x, x), x) << "x * x = x in PosBool";
}

TEST_F(ExprPoolTest, NaturalSemiringKeepsMultiplicity) {
  ExprId x = nat_pool_.Var(0);
  ExprId sum = nat_pool_.AddS(x, x);
  EXPECT_NE(sum, x) << "x + x != x under N (bag semantics)";
  EXPECT_EQ(nat_pool_.node(sum).children().size(), 2u);
}

TEST_F(ExprPoolTest, MulSAnnihilatorAndNeutral) {
  ExprId x = bool_pool_.Var(0);
  EXPECT_EQ(bool_pool_.MulS({x, bool_pool_.ConstS(0)}),
            bool_pool_.ConstS(0));
  EXPECT_EQ(bool_pool_.MulS({x, bool_pool_.ConstS(1)}), x);
}

TEST_F(ExprPoolTest, SumsAndProductsFlatten) {
  ExprId x = nat_pool_.Var(0);
  ExprId y = nat_pool_.Var(1);
  ExprId z = nat_pool_.Var(2);
  ExprId nested = nat_pool_.AddS(nat_pool_.AddS(x, y), z);
  EXPECT_EQ(nat_pool_.node(nested).children().size(), 3u);
  ExprId flat = nat_pool_.AddS({x, y, z});
  EXPECT_EQ(nested, flat);
  ExprId nested_mul = nat_pool_.MulS(nat_pool_.MulS(x, y), z);
  EXPECT_EQ(nat_pool_.node(nested_mul).children().size(), 3u);
}

TEST_F(ExprPoolTest, VarSetsAreSortedUnions) {
  ExprId e = bool_pool_.AddS(
      {bool_pool_.MulS(bool_pool_.Var(5), bool_pool_.Var(2)),
       bool_pool_.Var(9)});
  EXPECT_EQ(bool_pool_.VarsOf(e), (std::vector<VarId>{2, 5, 9}));
}

TEST_F(ExprPoolTest, TensorLaws) {
  Monoid min_monoid(AggKind::kMin);
  ExprId x = bool_pool_.Var(0);
  ExprId m = bool_pool_.ConstM(AggKind::kMin, 7);
  // 0_S (x) m = 0_M.
  EXPECT_EQ(bool_pool_.Tensor(bool_pool_.ConstS(0), m),
            bool_pool_.ConstM(AggKind::kMin, min_monoid.Neutral()));
  // 1_S (x) m = m.
  EXPECT_EQ(bool_pool_.Tensor(bool_pool_.ConstS(1), m), m);
  // s (x) 0_M = 0_M even for variable s.
  ExprId neutral = bool_pool_.ConstM(AggKind::kMin, min_monoid.Neutral());
  EXPECT_EQ(bool_pool_.Tensor(x, neutral), neutral);
}

TEST_F(ExprPoolTest, TensorConstantFoldsUnderNaturalSemiring) {
  ExprId t = nat_pool_.Tensor(nat_pool_.ConstS(6),
                              nat_pool_.ConstM(AggKind::kSum, 5));
  EXPECT_EQ(nat_pool_.node(t).kind, ExprKind::kConstM);
  EXPECT_EQ(nat_pool_.node(t).value, 30);
}

TEST_F(ExprPoolTest, NestedTensorsMerge) {
  // s1 (x) (s2 (x) m) = (s1*s2) (x) m.
  ExprId x = bool_pool_.Var(0);
  ExprId y = bool_pool_.Var(1);
  ExprId m = bool_pool_.ConstM(AggKind::kMax, 9);
  ExprId nested = bool_pool_.Tensor(x, bool_pool_.Tensor(y, m));
  ExprId flat = bool_pool_.Tensor(bool_pool_.MulS(x, y), m);
  EXPECT_EQ(nested, flat);
}

TEST_F(ExprPoolTest, AddMFoldsConstantsPerMonoid) {
  ExprId a = bool_pool_.ConstM(AggKind::kMin, 4);
  ExprId b = bool_pool_.ConstM(AggKind::kMin, 9);
  ExprId m = bool_pool_.AddM(AggKind::kMin, a, b);
  EXPECT_EQ(m, bool_pool_.ConstM(AggKind::kMin, 4));
  ExprId s = bool_pool_.AddM(AggKind::kSum,
                             bool_pool_.ConstM(AggKind::kSum, 4),
                             bool_pool_.ConstM(AggKind::kSum, 9));
  EXPECT_EQ(s, bool_pool_.ConstM(AggKind::kSum, 13));
}

TEST_F(ExprPoolTest, AddMDropsNeutralTerms) {
  ExprId x = bool_pool_.Var(0);
  ExprId t = bool_pool_.Tensor(x, bool_pool_.ConstM(AggKind::kSum, 3));
  ExprId m = bool_pool_.AddM(AggKind::kSum,
                             {t, bool_pool_.ConstM(AggKind::kSum, 0)});
  EXPECT_EQ(m, t);
}

TEST_F(ExprPoolTest, AddMRequiresMatchingMonoids) {
  ExprId a = bool_pool_.ConstM(AggKind::kMin, 4);
  ExprId b = bool_pool_.ConstM(AggKind::kMax, 9);
  EXPECT_THROW(bool_pool_.AddM(AggKind::kMin, a, b), CheckError);
}

TEST_F(ExprPoolTest, AddMMinIdempotence) {
  ExprId x = bool_pool_.Var(0);
  ExprId t = bool_pool_.Tensor(x, bool_pool_.ConstM(AggKind::kMin, 3));
  EXPECT_EQ(bool_pool_.AddM(AggKind::kMin, t, t), t)
      << "alpha +MIN alpha = alpha";
  // But not for SUM:
  ExprId ts = bool_pool_.Tensor(x, bool_pool_.ConstM(AggKind::kSum, 3));
  EXPECT_NE(bool_pool_.AddM(AggKind::kSum, ts, ts), ts);
}

TEST_F(ExprPoolTest, CmpFoldsOnConstants) {
  ExprId t = bool_pool_.Cmp(CmpOp::kLe, bool_pool_.ConstM(AggKind::kMin, 3),
                            bool_pool_.ConstM(AggKind::kMin, 5));
  EXPECT_EQ(t, bool_pool_.ConstS(1));
  ExprId f = bool_pool_.Cmp(CmpOp::kGt, bool_pool_.ConstM(AggKind::kMin, 3),
                            bool_pool_.ConstM(AggKind::kMin, 5));
  EXPECT_EQ(f, bool_pool_.ConstS(0));
}

TEST_F(ExprPoolTest, CmpAcrossDifferentMonoidsAllowed) {
  // Experiment E compares MAX aggregates against SUM aggregates.
  ExprId x = bool_pool_.Var(0);
  ExprId y = bool_pool_.Var(1);
  ExprId lhs = bool_pool_.Tensor(x, bool_pool_.ConstM(AggKind::kMax, 5));
  ExprId rhs = bool_pool_.Tensor(y, bool_pool_.ConstM(AggKind::kSum, 9));
  ExprId c = bool_pool_.Cmp(CmpOp::kLe, lhs, rhs);
  EXPECT_EQ(bool_pool_.node(c).kind, ExprKind::kCmp);
}

TEST_F(ExprPoolTest, CmpRejectsMixedSorts) {
  ExprId x = bool_pool_.Var(0);
  ExprId m = bool_pool_.ConstM(AggKind::kMin, 3);
  EXPECT_THROW(bool_pool_.Cmp(CmpOp::kEq, x, m), CheckError);
}

TEST_F(ExprPoolTest, SortTagging) {
  ExprId x = bool_pool_.Var(0);
  EXPECT_EQ(bool_pool_.node(x).sort, ExprSort::kSemiring);
  ExprId m = bool_pool_.ConstM(AggKind::kMin, 3);
  EXPECT_EQ(bool_pool_.node(m).sort, ExprSort::kMonoid);
  ExprId t = bool_pool_.Tensor(x, m);
  EXPECT_EQ(bool_pool_.node(t).sort, ExprSort::kMonoid);
  ExprId c = bool_pool_.Cmp(CmpOp::kLe, t, m);
  EXPECT_EQ(bool_pool_.node(c).sort, ExprSort::kSemiring)
      << "[alpha theta beta] evaluates into the semiring (Eq. 2)";
}

TEST_F(ExprPoolTest, CountVarOccurrencesWeightsPaths) {
  // x(y + z) + x: x occurs twice, y and z once.
  ExprId x = nat_pool_.Var(0);
  ExprId y = nat_pool_.Var(1);
  ExprId z = nat_pool_.Var(2);
  ExprId e = nat_pool_.AddS(nat_pool_.MulS(x, nat_pool_.AddS(y, z)), x);
  std::unordered_map<VarId, double> counts;
  nat_pool_.CountVarOccurrences(e, &counts);
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[1], 1.0);
  EXPECT_DOUBLE_EQ(counts[2], 1.0);
}

TEST_F(ExprPoolTest, ReachableSizeCountsDistinctNodes) {
  ExprId x = bool_pool_.Var(0);
  ExprId y = bool_pool_.Var(1);
  ExprId shared = bool_pool_.MulS(x, y);
  // shared appears conceptually twice but is one DAG node.
  ExprId e = bool_pool_.Cmp(
      CmpOp::kEq, bool_pool_.Tensor(shared, bool_pool_.ConstM(AggKind::kMin, 1)),
      bool_pool_.Tensor(shared, bool_pool_.ConstM(AggKind::kMin, 2)));
  size_t size = bool_pool_.ReachableSize(e);
  EXPECT_LE(size, 8u);
  EXPECT_GE(size, 6u);
}

TEST_F(ExprPoolTest, GroundExpressionsFoldToConstants) {
  // Every variable-free expression must be a constant node (the compiler
  // relies on this invariant).
  ExprId e = nat_pool_.AddM(
      AggKind::kMax,
      nat_pool_.Tensor(nat_pool_.ConstS(2), nat_pool_.ConstM(AggKind::kMax, 5)),
      nat_pool_.Tensor(nat_pool_.ConstS(0), nat_pool_.ConstM(AggKind::kMax, 9)));
  EXPECT_EQ(nat_pool_.node(e).kind, ExprKind::kConstM);
  EXPECT_EQ(nat_pool_.node(e).value, 5);
}

}  // namespace
}  // namespace pvcdb
