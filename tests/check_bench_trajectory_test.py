#!/usr/bin/env python3
"""Unit tests for scripts/check_bench_trajectory.py, run via ctest.

Each case writes synthetic JSON-lines bench output to a temp dir and
checks the script's exit code and output, in particular the satellite
rule: a speedup gate whose current OR baseline record was captured with
hardware_threads=1 is skipped (exit 0) with a loud warning, because
parallel speedups measured on one core are noise.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, "scripts", "check_bench_trajectory.py")


def record(bench, shards, threads, hardware_threads=8, **params):
    merged = {"shards": shards, "threads": threads,
              "hardware_threads": hardware_threads,
              "bit_identical": "true"}
    merged.update(params)
    return {"bench": bench, "params": merged, "mean_seconds": 0.01}


def shard_run(serial_rps, parallel_rps, hardware_threads=8):
    return [record("shard_query", 1, 1, hardware_threads,
                   rows_per_second=serial_rps),
            record("shard_query", 4, 4, hardware_threads,
                   rows_per_second=parallel_rps)]


def hotpath_run(speedup, hardware_threads=8):
    return [record("hotpath_giant_tree", 0, 4, hardware_threads,
                   speedup_vs_serial=speedup)]


class CheckBenchTrajectoryTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self._dir.cleanup()

    def write(self, name, records):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            for r in records:
                f.write(json.dumps(r) + "\n")
        return path

    def run_script(self, current, baseline, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, current, "--baseline", baseline,
             *extra],
            capture_output=True, text=True)

    def run_speedup(self, current, baseline):
        return self.run_script(current, baseline, "--metric", "speedup",
                               "--series", "hotpath_giant_tree",
                               "--field", "speedup_vs_serial",
                               "--shards", "0", "--threads", "4")

    def test_speedup_within_threshold_passes(self):
        current = self.write("current.json", hotpath_run(2.9))
        baseline = self.write("baseline.json", hotpath_run(3.0))
        result = self.run_speedup(current, baseline)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("OK", result.stdout)

    def test_speedup_regression_fails(self):
        current = self.write("current.json", hotpath_run(1.2))
        baseline = self.write("baseline.json", hotpath_run(3.0))
        result = self.run_speedup(current, baseline)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("FAIL", result.stdout)

    def test_speedup_skipped_when_current_is_single_core(self):
        # The satellite case: a 0.38x "speedup" recorded on a 1-CPU host
        # must not arm the gate, no matter how bad it looks.
        current = self.write("current.json",
                             hotpath_run(0.38, hardware_threads=1))
        baseline = self.write("baseline.json", hotpath_run(3.0))
        result = self.run_speedup(current, baseline)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("SKIPPED", result.stdout)
        self.assertIn("hardware_threads=1", result.stdout)

    def test_speedup_skipped_when_baseline_is_single_core(self):
        current = self.write("current.json", hotpath_run(3.0))
        baseline = self.write("baseline.json",
                              hotpath_run(0.40, hardware_threads=1))
        result = self.run_speedup(current, baseline)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("SKIPPED", result.stdout)

    def test_throughput_gate_still_runs_on_single_core(self):
        # Normalized throughput is a within-run ratio of the same series;
        # the 1-CPU case only warns, it does not skip.
        current = self.write("current.json",
                             shard_run(100.0, 350.0, hardware_threads=1))
        baseline = self.write("baseline.json",
                              shard_run(100.0, 360.0, hardware_threads=1))
        result = self.run_script(current, baseline)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("WARNING", result.stdout)
        self.assertIn("OK", result.stdout)

    def test_throughput_regression_fails(self):
        current = self.write("current.json", shard_run(100.0, 150.0))
        baseline = self.write("baseline.json", shard_run(100.0, 360.0))
        result = self.run_script(current, baseline)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("FAIL", result.stdout)

    def test_ns_per_node_fails_when_cost_rises(self):
        current = self.write(
            "current.json",
            [record("hotpath_skewed_batch", 0, 1, ns_per_node=1000.0)])
        baseline = self.write(
            "baseline.json",
            [record("hotpath_skewed_batch", 0, 1, ns_per_node=700.0)])
        result = self.run_script(current, baseline, "--metric",
                                 "ns-per-node", "--series",
                                 "hotpath_skewed_batch", "--shards", "0",
                                 "--threads", "1")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("FAIL", result.stdout)

    def resync_run(self, tail_bytes, full_bytes, hardware_threads=8):
        return [record("resync_tail", 2, 0, hardware_threads,
                       resync_entries=0, resync_bytes=tail_bytes),
                record("resync_full", 2, 0, hardware_threads,
                       resync_entries=4, resync_bytes=full_bytes)]

    def run_resync(self, current, baseline, *extra):
        return self.run_script(current, baseline, "--metric",
                               "resync-bytes", "--shards", "2",
                               "--threads", "0", *extra)

    def test_resync_bytes_within_threshold_passes(self):
        current = self.write("current.json", self.resync_run(0, 30000))
        baseline = self.write("baseline.json", self.resync_run(0, 29000))
        result = self.run_resync(current, baseline)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("OK", result.stdout)
        self.assertIn("resync_full", result.stdout)

    def test_resync_bytes_fails_when_payload_grows(self):
        # Lower is better: a full resync that ships far more bytes than
        # the committed baseline is a regression.
        current = self.write("current.json", self.resync_run(0, 60000))
        baseline = self.write("baseline.json", self.resync_run(0, 29000))
        result = self.run_resync(current, baseline)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("FAIL", result.stdout)

    def test_resync_bytes_tail_series_gates_on_zero(self):
        # The tail path's expected payload is zero; any bytes at all mean
        # surviving workers stopped passing the chain proof.
        current = self.write("current.json", self.resync_run(5000, 30000))
        baseline = self.write("baseline.json", self.resync_run(0, 30000))
        result = self.run_resync(current, baseline, "--series",
                                 "resync_tail")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("FAIL", result.stdout)

    def test_resync_bytes_runs_on_single_core(self):
        # Byte counts are workload-determined: no 1-CPU skip.
        current = self.write("current.json",
                             self.resync_run(0, 30000, hardware_threads=1))
        baseline = self.write("baseline.json",
                              self.resync_run(0, 29000, hardware_threads=1))
        result = self.run_resync(current, baseline)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("OK", result.stdout)
        self.assertNotIn("SKIPPED", result.stdout)

    def overhead_run(self, pct):
        return [record("metrics_overhead", 2, 0, qps_on=9000.0,
                       qps_off=9300.0, overhead_pct=pct)]

    def run_overhead(self, current, *extra):
        # overhead-pct is an absolute ceiling: no --baseline on purpose.
        return subprocess.run(
            [sys.executable, SCRIPT, current, "--metric", "overhead-pct",
             "--shards", "2", "--threads", "0", *extra],
            capture_output=True, text=True)

    def test_overhead_pct_under_ceiling_passes(self):
        current = self.write("current.json", self.overhead_run(3.2))
        result = self.run_overhead(current)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("OK", result.stdout)
        self.assertIn("metrics_overhead", result.stdout)

    def test_overhead_pct_over_ceiling_fails(self):
        # Default ceiling is 5%: instrumentation costing more than that
        # breaks the observability layer's contract.
        current = self.write("current.json", self.overhead_run(8.0))
        result = self.run_overhead(current)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("FAIL", result.stdout)

    def test_overhead_pct_negative_passes(self):
        # Run-to-run noise can make the instrumented server come out
        # faster; a negative overhead is trivially under the ceiling.
        current = self.write("current.json", self.overhead_run(-1.1))
        result = self.run_overhead(current)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("OK", result.stdout)

    def test_overhead_pct_custom_threshold(self):
        current = self.write("current.json", self.overhead_run(8.0))
        result = self.run_overhead(current, "--threshold", "0.10")
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("OK", result.stdout)

    def test_overhead_pct_missing_record_exits_2(self):
        current = self.write("current.json", hotpath_run(3.0))
        result = self.run_overhead(current)
        self.assertEqual(result.returncode, 2, result.stdout)

    def test_baseline_still_required_for_other_metrics(self):
        current = self.write("current.json", shard_run(100.0, 350.0))
        result = subprocess.run(
            [sys.executable, SCRIPT, current, "--metric", "throughput"],
            capture_output=True, text=True)
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("--baseline is required", result.stderr)

    def test_missing_record_exits_2(self):
        current = self.write("current.json", hotpath_run(3.0))
        baseline = self.write("baseline.json", [])
        result = self.run_speedup(current, baseline)
        self.assertEqual(result.returncode, 2, result.stdout)

    def test_non_bit_identical_record_fails(self):
        broken = record("hotpath_giant_tree", 0, 4, 8,
                        speedup_vs_serial=3.0)
        broken["params"]["bit_identical"] = "false"
        current = self.write("current.json", [broken])
        baseline = self.write("baseline.json", hotpath_run(3.0))
        result = self.run_speedup(current, baseline)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("bit-identical", result.stdout)


if __name__ == "__main__":
    unittest.main()
