#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "src/util/check.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace pvcdb {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(PVC_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsWithLocation) {
  try {
    PVC_CHECK(false);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("util_test.cc"), std::string::npos);
  }
}

TEST(CheckTest, MessageIsIncluded) {
  try {
    PVC_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(CheckTest, FailMacroAlwaysThrows) {
  EXPECT_THROW(PVC_FAIL("unreachable " << 1), CheckError);
}

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
  EXPECT_THROW(rng.UniformInt(2, 1), CheckError);
}

TEST(RngTest, UniformDoubleRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, SampleDistinctProperties) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> sample = rng.SampleDistinct(10, 4);
    EXPECT_EQ(sample.size(), 4u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 4u) << "samples must be distinct";
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 10);
    }
  }
  EXPECT_TRUE(rng.SampleDistinct(5, 0).empty());
  EXPECT_EQ(rng.SampleDistinct(5, 5).size(), 5u);
  EXPECT_THROW(rng.SampleDistinct(3, 4), CheckError);
}

TEST(RngTest, SampleDistinctCoversAllElements) {
  // Over many draws of 1-of-4, every element appears.
  Rng rng(4);
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.SampleDistinct(4, 1)[0]);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(HashTest, CombineIsOrderSensitive) {
  size_t a = HashCombine(HashCombine(0, 1), 2);
  size_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(HashTest, RangeHashingMatchesManualFold) {
  std::vector<int64_t> values = {5, 9, 13};
  size_t manual = 0;
  for (int64_t v : values) {
    manual = HashCombine(manual, std::hash<int64_t>()(v));
  }
  EXPECT_EQ(HashRange(values.begin(), values.end()), manual);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedSeconds() * 10);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

}  // namespace
}  // namespace pvcdb
