#include "src/table/schema.h"

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(SchemaTest, ConstructionAndLookup) {
  Schema s({{"sid", CellType::kInt},
            {"shop", CellType::kString},
            {"total", CellType::kAggExpr}});
  EXPECT_EQ(s.NumColumns(), 3u);
  EXPECT_EQ(s.IndexOf("shop"), 1u);
  EXPECT_EQ(s.Find("total"), std::optional<size_t>(2));
  EXPECT_EQ(s.Find("missing"), std::nullopt);
  EXPECT_THROW(s.IndexOf("missing"), CheckError);
}

TEST(SchemaTest, DuplicateColumnNamesRejected) {
  EXPECT_THROW(Schema({{"a", CellType::kInt}, {"a", CellType::kInt}}),
               CheckError);
}

TEST(SchemaTest, EqualityIncludesTypes) {
  Schema a({{"x", CellType::kInt}});
  Schema b({{"x", CellType::kInt}});
  Schema c({{"x", CellType::kString}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SchemaTest, ColumnIndexBounds) {
  Schema s({{"x", CellType::kInt}});
  EXPECT_EQ(s.column(0).name, "x");
  EXPECT_THROW(s.column(1), CheckError);
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema s({{"sid", CellType::kInt}, {"shop", CellType::kString}});
  EXPECT_EQ(s.ToString(), "(sid, shop)");
}

}  // namespace
}  // namespace pvcdb
