#include "src/algebra/semiring.h"

#include <gtest/gtest.h>

#include <vector>

namespace pvcdb {
namespace {

TEST(SemiringTest, BooleanOperations) {
  Semiring b(SemiringKind::kBool);
  EXPECT_EQ(b.Zero(), 0);
  EXPECT_EQ(b.One(), 1);
  EXPECT_EQ(b.Plus(0, 0), 0);
  EXPECT_EQ(b.Plus(0, 1), 1);
  EXPECT_EQ(b.Plus(1, 1), 1);  // OR, not integer addition.
  EXPECT_EQ(b.Times(1, 1), 1);
  EXPECT_EQ(b.Times(1, 0), 0);
  EXPECT_EQ(b.Times(0, 0), 0);
}

TEST(SemiringTest, NaturalOperations) {
  Semiring n(SemiringKind::kNatural);
  EXPECT_EQ(n.Plus(3, 4), 7);
  EXPECT_EQ(n.Times(3, 4), 12);
  EXPECT_EQ(n.Plus(n.Zero(), 9), 9);
  EXPECT_EQ(n.Times(n.One(), 9), 9);
  EXPECT_EQ(n.Times(n.Zero(), 9), 0);
}

TEST(SemiringTest, BooleanCarrier) {
  Semiring b(SemiringKind::kBool);
  EXPECT_TRUE(b.Contains(0));
  EXPECT_TRUE(b.Contains(1));
  EXPECT_FALSE(b.Contains(2));
  EXPECT_EQ(b.Canonical(7), 1);
  EXPECT_EQ(b.Canonical(0), 0);
}

TEST(SemiringTest, NaturalCarrier) {
  Semiring n(SemiringKind::kNatural);
  EXPECT_TRUE(n.Contains(0));
  EXPECT_TRUE(n.Contains(1000));
  EXPECT_FALSE(n.Contains(-1));
  EXPECT_EQ(n.Canonical(7), 7);
}

// Semiring axioms (Definition 3), checked over (a subset of) the carrier.
class SemiringAxiomTest : public ::testing::TestWithParam<SemiringKind> {
 protected:
  std::vector<int64_t> CarrierSample() const {
    if (GetParam() == SemiringKind::kBool) return {0, 1};
    return {0, 1, 2, 3};
  }
};

TEST_P(SemiringAxiomTest, CommutativityAndAssociativity) {
  Semiring s(GetParam());
  for (int64_t a : CarrierSample()) {
    for (int64_t b : CarrierSample()) {
      EXPECT_EQ(s.Plus(a, b), s.Plus(b, a));
      EXPECT_EQ(s.Times(a, b), s.Times(b, a));
      for (int64_t c : CarrierSample()) {
        EXPECT_EQ(s.Plus(s.Plus(a, b), c), s.Plus(a, s.Plus(b, c)));
        EXPECT_EQ(s.Times(s.Times(a, b), c), s.Times(a, s.Times(b, c)));
      }
    }
  }
}

TEST_P(SemiringAxiomTest, Distributivity) {
  Semiring s(GetParam());
  for (int64_t a : CarrierSample()) {
    for (int64_t b : CarrierSample()) {
      for (int64_t c : CarrierSample()) {
        EXPECT_EQ(s.Times(a, s.Plus(b, c)),
                  s.Plus(s.Times(a, b), s.Times(a, c)));
      }
    }
  }
}

TEST_P(SemiringAxiomTest, NeutralAndAnnihilator) {
  Semiring s(GetParam());
  for (int64_t a : CarrierSample()) {
    EXPECT_EQ(s.Plus(s.Zero(), a), a);
    EXPECT_EQ(s.Times(s.One(), a), a);
    EXPECT_EQ(s.Times(s.Zero(), a), s.Zero());
  }
}

INSTANTIATE_TEST_SUITE_P(AllSemirings, SemiringAxiomTest,
                         ::testing::Values(SemiringKind::kBool,
                                           SemiringKind::kNatural));

TEST(SemiringTest, Names) {
  EXPECT_EQ(Semiring(SemiringKind::kBool).Name(), "B");
  EXPECT_EQ(Semiring(SemiringKind::kNatural).Name(), "N");
}

}  // namespace
}  // namespace pvcdb
