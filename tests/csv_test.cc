#include "src/engine/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pvcdb {
namespace {

TEST(CsvTest, LoadBasicTable) {
  Database db;
  std::istringstream input(
      "item:string,price:int,_prob\n"
      "widget,1999,0.9\n"
      "gadget,450,0.75\n");
  CsvResult r = LoadCsvTable(&db, "items", input);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.rows, 2u);
  const PvcTable& t = db.table("items");
  EXPECT_EQ(t.CellAt(0, "item").AsString(), "widget");
  EXPECT_EQ(t.CellAt(1, "price").AsInt(), 450);
  EXPECT_NEAR(db.TupleProbability(t.row(0)), 0.9, 1e-12);
  EXPECT_NEAR(db.TupleProbability(t.row(1)), 0.75, 1e-12);
}

TEST(CsvTest, MissingProbColumnDefaultsToOne) {
  Database db;
  std::istringstream input("k:int\n1\n2\n");
  CsvResult r = LoadCsvTable(&db, "t", input);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NEAR(db.TupleProbability(db.table("t").row(0)), 1.0, 1e-12);
}

TEST(CsvTest, QuotedStringsWithCommas) {
  Database db;
  std::istringstream input(
      "name:string,_prob\n"
      "\"Smith, John\",0.5\n"
      "\"say \"\"hi\"\"\",0.5\n");
  CsvResult r = LoadCsvTable(&db, "people", input);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(db.table("people").CellAt(0, "name").AsString(), "Smith, John");
  EXPECT_EQ(db.table("people").CellAt(1, "name").AsString(), "say \"hi\"");
}

TEST(CsvTest, DoubleColumns) {
  Database db;
  std::istringstream input("x:double\n1.5\n-2.25\n");
  CsvResult r = LoadCsvTable(&db, "d", input);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(db.table("d").CellAt(1, "x").AsDouble(), -2.25);
}

TEST(CsvTest, Diagnostics) {
  Database db;
  {
    std::istringstream input("");
    EXPECT_FALSE(LoadCsvTable(&db, "t", input).ok);
  }
  {
    std::istringstream input("notype\n1\n");
    CsvResult r = LoadCsvTable(&db, "t", input);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("':type'"), std::string::npos);
  }
  {
    std::istringstream input("x:int\n1,2\n");
    CsvResult r = LoadCsvTable(&db, "t", input);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("expected 1 fields"), std::string::npos);
  }
  {
    std::istringstream input("x:int\nnot_a_number\n");
    EXPECT_FALSE(LoadCsvTable(&db, "t", input).ok);
  }
  {
    std::istringstream input("x:int,_prob\n1,1.5\n");
    CsvResult r = LoadCsvTable(&db, "t", input);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("out of [0, 1]"), std::string::npos);
  }
  {
    std::istringstream input("x:widget\n1\n");
    CsvResult r = LoadCsvTable(&db, "t", input);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unknown column type"), std::string::npos);
  }
}

TEST(CsvTest, CrLfTolerated) {
  Database db;
  std::istringstream input("k:int,_prob\r\n7,0.25\r\n");
  CsvResult r = LoadCsvTable(&db, "t", input);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(db.table("t").CellAt(0, "k").AsInt(), 7);
}

TEST(CsvTest, RoundTripThroughWrite) {
  Database db;
  std::istringstream input(
      "item:string,price:int,_prob\nwidget,10,0.5\ngadget,20,0.25\n");
  ASSERT_TRUE(LoadCsvTable(&db, "items", input).ok);
  std::ostringstream out;
  ASSERT_TRUE(WriteCsvTable(db, db.table("items"), out));
  Database db2;
  std::istringstream back(out.str());
  CsvResult r = LoadCsvTable(&db2, "items", back);
  ASSERT_TRUE(r.ok) << r.error;
  const PvcTable& t = db2.table("items");
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_NEAR(db2.TupleProbability(t.row(0)), 0.5, 1e-9);
  EXPECT_NEAR(db2.TupleProbability(t.row(1)), 0.25, 1e-9);
}

TEST(CsvTest, WriteRejectsAggregateColumns) {
  Database db;
  std::istringstream input("v:int,_prob\n1,0.5\n2,0.5\n");
  ASSERT_TRUE(LoadCsvTable(&db, "t", input).ok);
  QueryPtr q = Query::GroupAgg(Query::Scan("t"), {},
                               {{AggKind::kSum, "v", "s"}});
  PvcTable result = db.Run(*q);
  std::ostringstream out;
  EXPECT_FALSE(WriteCsvTable(db, result, out));
}

TEST(CsvTest, MissingFileDiagnosed) {
  Database db;
  CsvResult r = LoadCsvTableFromFile(&db, "t", "/nonexistent/path.csv");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace pvcdb
