// Tests of the [[.]] rewriting (Figure 4) for the non-aggregate operators:
// scan, select, project, rename, product, union.

#include "src/query/eval.h"

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/util/check.h"

namespace pvcdb {
namespace {

class QueryEvalTest : public ::testing::Test {
 protected:
  QueryEvalTest() {
    // R(a, b) with three tuples annotated r0, r1, r2.
    PvcTable r{Schema({{"a", CellType::kInt}, {"b", CellType::kString}})};
    r0_ = db_.variables().AddBernoulli(0.5, "r0");
    r1_ = db_.variables().AddBernoulli(0.5, "r1");
    r2_ = db_.variables().AddBernoulli(0.5, "r2");
    r.AddRow({Cell(int64_t{1}), Cell("u")}, db_.pool().Var(r0_));
    r.AddRow({Cell(int64_t{1}), Cell("v")}, db_.pool().Var(r1_));
    r.AddRow({Cell(int64_t{2}), Cell("u")}, db_.pool().Var(r2_));
    db_.AddTable("R", std::move(r));

    // T(c) with two tuples annotated t0, t1.
    PvcTable t{Schema({{"c", CellType::kInt}})};
    t0_ = db_.variables().AddBernoulli(0.5, "t0");
    t1_ = db_.variables().AddBernoulli(0.5, "t1");
    t.AddRow({Cell(int64_t{7})}, db_.pool().Var(t0_));
    t.AddRow({Cell(int64_t{9})}, db_.pool().Var(t1_));
    db_.AddTable("T", std::move(t));
  }

  ExprPool& pool() { return db_.pool(); }

  Database db_;
  VarId r0_, r1_, r2_, t0_, t1_;
};

TEST_F(QueryEvalTest, ScanReturnsBaseTable) {
  PvcTable result = db_.Run(*Query::Scan("R"));
  EXPECT_EQ(result.NumRows(), 3u);
  EXPECT_EQ(result.row(0).annotation, pool().Var(r0_));
}

TEST_F(QueryEvalTest, SelectOnDataFilters) {
  PvcTable result = db_.Run(
      *Query::Select(Query::Scan("R"), Predicate::ColEqInt("a", 1)));
  EXPECT_EQ(result.NumRows(), 2u);
  // Annotations are untouched by data-only predicates.
  EXPECT_EQ(result.row(0).annotation, pool().Var(r0_));
}

TEST_F(QueryEvalTest, SelectStringPredicate) {
  PvcTable result = db_.Run(
      *Query::Select(Query::Scan("R"), Predicate::ColEqStr("b", "u")));
  EXPECT_EQ(result.NumRows(), 2u);
}

TEST_F(QueryEvalTest, SelectColumnEqualsColumn) {
  QueryPtr q = Query::Join(Query::Scan("R"), Query::Scan("T"),
                           Predicate());  // Plain product first.
  PvcTable prod = db_.Run(*q);
  EXPECT_EQ(prod.NumRows(), 6u);
}

TEST_F(QueryEvalTest, ProductMultipliesAnnotations) {
  PvcTable result =
      db_.Run(*Query::Product(Query::Scan("R"), Query::Scan("T")));
  ASSERT_EQ(result.NumRows(), 6u);
  EXPECT_EQ(result.row(0).annotation,
            pool().MulS(pool().Var(r0_), pool().Var(t0_)));
  EXPECT_EQ(result.schema().NumColumns(), 3u);
}

TEST_F(QueryEvalTest, ProductRejectsClashingColumnNames) {
  EXPECT_THROW(db_.Run(*Query::Product(Query::Scan("R"), Query::Scan("R"))),
               CheckError);
}

TEST_F(QueryEvalTest, ProjectSumsAnnotationsOfMergedTuples) {
  // pi_a(R): tuples (1,u) and (1,v) merge; annotation r0 + r1.
  PvcTable result = db_.Run(*Query::Project(Query::Scan("R"), {"a"}));
  ASSERT_EQ(result.NumRows(), 2u);
  EXPECT_EQ(result.row(0).annotation,
            pool().AddS(pool().Var(r0_), pool().Var(r1_)));
  EXPECT_EQ(result.row(1).annotation, pool().Var(r2_));
}

TEST_F(QueryEvalTest, ProjectReordersColumns) {
  PvcTable result = db_.Run(*Query::Project(Query::Scan("R"), {"b", "a"}));
  EXPECT_EQ(result.schema().column(0).name, "b");
  EXPECT_EQ(result.schema().column(1).name, "a");
}

TEST_F(QueryEvalTest, RenameAddsCopyColumn) {
  // Figure 4's delta rule: select R.*, R.A as B.
  PvcTable result = db_.Run(*Query::Rename(Query::Scan("T"), "c", "d"));
  EXPECT_EQ(result.schema().NumColumns(), 2u);
  EXPECT_EQ(result.CellAt(0, "d").AsInt(), 7);
  EXPECT_EQ(result.CellAt(0, "c").AsInt(), 7);
}

TEST_F(QueryEvalTest, UnionMergesDuplicatesAcrossSides) {
  // R union R is rejected (same column names fine, same table allowed for
  // union); annotations of equal tuples sum. Build two one-column tables.
  PvcTable u{Schema({{"c", CellType::kInt}})};
  VarId u0 = db_.variables().AddBernoulli(0.5, "u0");
  u.AddRow({Cell(int64_t{7})}, db_.pool().Var(u0));
  db_.AddTable("U", std::move(u));
  PvcTable result = db_.Run(*Query::Union(Query::Scan("T"), Query::Scan("U")));
  ASSERT_EQ(result.NumRows(), 2u);
  // Tuple 7 appears in both inputs: annotation t0 + u0.
  EXPECT_EQ(result.row(0).annotation,
            pool().AddS(pool().Var(t0_), pool().Var(u0)));
  EXPECT_EQ(result.row(1).annotation, pool().Var(t1_));
}

TEST_F(QueryEvalTest, UnionRequiresMatchingSchemas) {
  EXPECT_THROW(db_.Run(*Query::Union(Query::Scan("R"), Query::Scan("T"))),
               CheckError);
}

TEST_F(QueryEvalTest, JoinBuildsProductAnnotations) {
  QueryPtr q = Query::Join(Query::Scan("R"), Query::Scan("T"),
                           Predicate::ColCmpCol("a", CmpOp::kLt, "c"));
  PvcTable result = db_.Run(*q);
  EXPECT_EQ(result.NumRows(), 6u);  // All a-values < all c-values.
  EXPECT_EQ(result.row(0).annotation,
            pool().MulS(pool().Var(r0_), pool().Var(t0_)));
}

TEST_F(QueryEvalTest, DeterministicModeAnnotatesWithOne) {
  PvcTable result = db_.RunDeterministic(*Query::Project(Query::Scan("R"),
                                                         {"a"}));
  ASSERT_EQ(result.NumRows(), 2u);
  for (const Row& r : result.rows()) {
    EXPECT_EQ(r.annotation, pool().ConstS(1));
  }
}

TEST_F(QueryEvalTest, TypeMismatchInPredicateThrows) {
  EXPECT_THROW(db_.Run(*Query::Select(Query::Scan("R"),
                                      Predicate::ColEqInt("b", 1))),
               CheckError);
}

TEST_F(QueryEvalTest, UnknownTableThrows) {
  EXPECT_THROW(db_.Run(*Query::Scan("missing")), CheckError);
}

TEST_F(QueryEvalTest, UnknownColumnThrows) {
  EXPECT_THROW(db_.Run(*Query::Project(Query::Scan("R"), {"zzz"})),
               CheckError);
}

TEST_F(QueryEvalTest, EmptySelectionYieldsEmptyTable) {
  PvcTable result = db_.Run(
      *Query::Select(Query::Scan("R"), Predicate::ColEqInt("a", 99)));
  EXPECT_EQ(result.NumRows(), 0u);
  EXPECT_EQ(result.schema().NumColumns(), 2u);
}

}  // namespace
}  // namespace pvcdb
