// Tests of the $ (aggregation and grouping) rules of Figure 4, including
// Example 8's rewriting results and Definition 5's constraints.

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/expr/print.h"
#include "src/naive/possible_worlds.h"
#include "src/util/check.h"

namespace pvcdb {
namespace {

class QueryAggTest : public ::testing::Test {
 protected:
  QueryAggTest() {
    // P1(pid, weight) from Figure 1c with variables z1..z4.
    PvcTable p1{Schema({{"pid", CellType::kInt}, {"weight", CellType::kInt}})};
    const int64_t weights[] = {4, 8, 7, 6};
    for (int i = 0; i < 4; ++i) {
      z_[i] = db_.variables().AddBernoulli(0.5, "z" + std::to_string(i + 1));
      p1.AddRow({Cell(int64_t{i + 1}), Cell(weights[i])},
                db_.pool().Var(z_[i]));
    }
    db_.AddTable("P1", std::move(p1));

    // G(g, v): two groups for group-by tests.
    PvcTable g{Schema({{"g", CellType::kString}, {"v", CellType::kInt}})};
    for (int i = 0; i < 4; ++i) {
      w_[i] = db_.variables().AddBernoulli(0.5, "w" + std::to_string(i));
    }
    g.AddRow({Cell("a"), Cell(int64_t{10})}, db_.pool().Var(w_[0]));
    g.AddRow({Cell("a"), Cell(int64_t{20})}, db_.pool().Var(w_[1]));
    g.AddRow({Cell("b"), Cell(int64_t{30})}, db_.pool().Var(w_[2]));
    g.AddRow({Cell("b"), Cell(int64_t{40})}, db_.pool().Var(w_[3]));
    db_.AddTable("G", std::move(g));
  }

  ExprPool& pool() { return db_.pool(); }

  Database db_;
  VarId z_[4];
  VarId w_[4];
};

TEST_F(QueryAggTest, ExampleEightGrouplessAggregation) {
  // $_{0; alpha <- AGG(weight)}(P1) yields one tuple with value
  // z1 (x) 4 +AGG z2 (x) 8 +AGG z3 (x) 7 +AGG z4 (x) 6 annotated 1_K.
  QueryPtr q = Query::GroupAgg(Query::Scan("P1"), {},
                               {{AggKind::kMin, "weight", "alpha"}});
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 1u);
  EXPECT_EQ(result.row(0).annotation, pool().ConstS(1));
  ExprId alpha = result.CellAt(0, "alpha").AsAgg();
  ExprId expected = pool().AddM(
      AggKind::kMin,
      {pool().Tensor(pool().Var(z_[0]), pool().ConstM(AggKind::kMin, 4)),
       pool().Tensor(pool().Var(z_[1]), pool().ConstM(AggKind::kMin, 8)),
       pool().Tensor(pool().Var(z_[2]), pool().ConstM(AggKind::kMin, 7)),
       pool().Tensor(pool().Var(z_[3]), pool().ConstM(AggKind::kMin, 6))});
  EXPECT_EQ(alpha, expected);
}

TEST_F(QueryAggTest, ExampleEightBooleanMinQuery) {
  // pi_0 sigma_{5 <= alpha}($_{0; alpha <- MIN(weight)}(P1)): one empty
  // tuple annotated 1_K * [5 <= z1 (x) 4 +min ... +min z4 (x) 6].
  QueryPtr agg = Query::GroupAgg(Query::Scan("P1"), {},
                                 {{AggKind::kMin, "weight", "alpha"}});
  QueryPtr q = Query::Project(
      Query::Select(agg, Predicate::ColCmpInt("alpha", CmpOp::kGe, 5)), {});
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 1u);
  const ExprNode& ann = pool().node(result.row(0).annotation);
  EXPECT_EQ(ann.kind, ExprKind::kCmp);
  // Probability check: MIN >= 5 iff z1 (weight 4) is absent; P = 0.5.
  EXPECT_NEAR(db_.TupleProbability(result.row(0)), 0.5, 1e-12);
}

TEST_F(QueryAggTest, GroupedAggregationBuildsGroupAnnotations) {
  // $_{g; s <- SUM(v)}(G): two groups, each annotated [sum of w's != 0].
  QueryPtr q = Query::GroupAgg(Query::Scan("G"), {"g"},
                               {{AggKind::kSum, "v", "s"}});
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 2u);
  for (const Row& row : result.rows()) {
    const ExprNode& ann = pool().node(row.annotation);
    ASSERT_EQ(ann.kind, ExprKind::kCmp);
    EXPECT_EQ(ann.cmp, CmpOp::kNe);
  }
  // Group "a" annotation is [w0 + w1 != 0]: P = 3/4.
  EXPECT_NEAR(db_.TupleProbability(result.row(0)), 0.75, 1e-12);
  // SUM distribution of group "a": 0, 10, 20, 30 each 1/4 (unconditioned).
  Distribution d = db_.AggregateDistribution(result, 0, "s");
  EXPECT_NEAR(d.ProbOf(0), 0.25, 1e-12);
  EXPECT_NEAR(d.ProbOf(10), 0.25, 1e-12);
  EXPECT_NEAR(d.ProbOf(20), 0.25, 1e-12);
  EXPECT_NEAR(d.ProbOf(30), 0.25, 1e-12);
}

TEST_F(QueryAggTest, ConditionalAggregateExcludesEmptyGroup) {
  QueryPtr q = Query::GroupAgg(Query::Scan("G"), {"g"},
                               {{AggKind::kSum, "v", "s"}});
  PvcTable result = db_.Run(*q);
  Distribution d = db_.ConditionalAggregateDistribution(result, 0, "s");
  // Conditioned on the group being non-empty, sum = 0 is impossible.
  EXPECT_DOUBLE_EQ(d.ProbOf(0), 0.0);
  EXPECT_NEAR(d.ProbOf(10), 1.0 / 3, 1e-12);
  EXPECT_NEAR(d.ProbOf(30), 1.0 / 3, 1e-12);
}

TEST_F(QueryAggTest, CountAggregatesOnePerTuple) {
  QueryPtr q = Query::GroupAgg(Query::Scan("G"), {"g"},
                               {{AggKind::kCount, "", "cnt"}});
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 2u);
  Distribution d = db_.AggregateDistribution(result, 0, "cnt");
  EXPECT_NEAR(d.ProbOf(0), 0.25, 1e-12);
  EXPECT_NEAR(d.ProbOf(1), 0.5, 1e-12);
  EXPECT_NEAR(d.ProbOf(2), 0.25, 1e-12);
}

TEST_F(QueryAggTest, CountWithNamedColumnStillCountsRows) {
  QueryPtr q = Query::GroupAgg(Query::Scan("G"), {"g"},
                               {{AggKind::kCount, "v", "cnt"}});
  PvcTable result = db_.Run(*q);
  Distribution d = db_.AggregateDistribution(result, 0, "cnt");
  EXPECT_NEAR(d.ProbOf(2), 0.25, 1e-12);
}

TEST_F(QueryAggTest, MultipleAggregatesInOneGrouping) {
  QueryPtr q = Query::GroupAgg(
      Query::Scan("G"), {"g"},
      {{AggKind::kMin, "v", "lo"}, {AggKind::kMax, "v", "hi"},
       {AggKind::kCount, "", "cnt"}});
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 2u);
  EXPECT_EQ(result.schema().NumColumns(), 4u);
  Distribution lo = db_.AggregateDistribution(result, 1, "lo");
  Distribution hi = db_.AggregateDistribution(result, 1, "hi");
  // Group "b": values 30, 40 each present w.p. 1/2.
  EXPECT_NEAR(lo.ProbOf(30), 0.5, 1e-12);
  EXPECT_NEAR(hi.ProbOf(40), 0.5, 1e-12);
}

TEST_F(QueryAggTest, EmptyInputGrouplessAggregateIsNeutral) {
  QueryPtr filtered = Query::Select(Query::Scan("P1"),
                                    Predicate::ColEqInt("pid", 999));
  QueryPtr q =
      Query::GroupAgg(filtered, {}, {{AggKind::kMin, "weight", "alpha"}});
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 1u);
  ExprId alpha = result.CellAt(0, "alpha").AsAgg();
  EXPECT_EQ(alpha, pool().ConstM(AggKind::kMin, kPosInf))
      << "empty MIN aggregate is the neutral element +inf";
}

TEST_F(QueryAggTest, EmptyInputGroupedAggregateHasNoRows) {
  QueryPtr filtered = Query::Select(Query::Scan("G"),
                                    Predicate::ColEqStr("g", "zzz"));
  QueryPtr q = Query::GroupAgg(filtered, {"g"}, {{AggKind::kCount, "", "c"}});
  PvcTable result = db_.Run(*q);
  EXPECT_EQ(result.NumRows(), 0u);
}

TEST_F(QueryAggTest, Definition5ProjectionOnAggregateRejected) {
  QueryPtr agg = Query::GroupAgg(Query::Scan("G"), {"g"},
                                 {{AggKind::kSum, "v", "s"}});
  EXPECT_THROW(db_.Run(*Query::Project(agg, {"s"})), CheckError);
}

TEST_F(QueryAggTest, Definition5GroupingOnAggregateRejected) {
  QueryPtr agg = Query::GroupAgg(Query::Scan("G"), {"g"},
                                 {{AggKind::kSum, "v", "s"}});
  EXPECT_THROW(
      db_.Run(*Query::GroupAgg(agg, {"s"}, {{AggKind::kCount, "", "c"}})),
      CheckError);
}

TEST_F(QueryAggTest, Definition5UnionOnAggregateRejected) {
  QueryPtr agg1 = Query::GroupAgg(Query::Scan("G"), {"g"},
                                  {{AggKind::kSum, "v", "s"}});
  QueryPtr agg2 = Query::GroupAgg(Query::Scan("G"), {"g"},
                                  {{AggKind::kMax, "v", "s"}});
  EXPECT_THROW(db_.Run(*Query::Union(agg1, agg2)), CheckError);
}

TEST_F(QueryAggTest, AggregationOverAggregateColumnRejected) {
  QueryPtr agg = Query::GroupAgg(Query::Scan("G"), {"g"},
                                 {{AggKind::kSum, "v", "s"}});
  EXPECT_THROW(
      db_.Run(*Query::GroupAgg(agg, {}, {{AggKind::kSum, "s", "ss"}})),
      CheckError);
}

TEST_F(QueryAggTest, DeterministicAggregationFoldsToConstants) {
  QueryPtr q = Query::GroupAgg(Query::Scan("G"), {"g"},
                               {{AggKind::kSum, "v", "s"}});
  PvcTable result = db_.RunDeterministic(*q);
  ASSERT_EQ(result.NumRows(), 2u);
  ExprId s_a = result.CellAt(0, "s").AsAgg();
  EXPECT_EQ(s_a, pool().ConstM(AggKind::kSum, 30));
  EXPECT_EQ(result.row(0).annotation, pool().ConstS(1));
}

TEST_F(QueryAggTest, SelectionOnAggregateBuildsConditional) {
  // sigma_{s >= 25}($...): annotation gains [s >= 25].
  QueryPtr agg = Query::GroupAgg(Query::Scan("G"), {"g"},
                                 {{AggKind::kSum, "v", "s"}});
  QueryPtr q = Query::Select(agg, Predicate::ColCmpInt("s", CmpOp::kGe, 25));
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 2u);
  // Group "a": sum in {0,10,20,30}; P[sum >= 25 and non-empty] = 1/4.
  EXPECT_NEAR(db_.TupleProbability(result.row(0)), 0.25, 1e-12);
  // Group "b": sum in {0,30,40,70}; P[>= 25 and non-empty] = 3/4.
  EXPECT_NEAR(db_.TupleProbability(result.row(1)), 0.75, 1e-12);
}

TEST_F(QueryAggTest, AggregateComparedAgainstDataColumn) {
  // sigma_{v = m}(G x $_{0; m <- MAX(v)}(G2-alias)): compare agg vs column.
  // Build a tiny second table to avoid repeated names.
  PvcTable h{Schema({{"hv", CellType::kInt}})};
  VarId hv = db_.variables().AddBernoulli(1.0, "hv");
  h.AddRow({Cell(int64_t{30})}, db_.pool().Var(hv));
  db_.AddTable("H", std::move(h));
  QueryPtr agg = Query::GroupAgg(Query::Scan("H"), {},
                                 {{AggKind::kMax, "hv", "m"}});
  QueryPtr q = Query::Select(Query::Product(Query::Scan("G"), agg),
                             Predicate::ColCmpCol("v", CmpOp::kEq, "m"));
  PvcTable result = db_.Run(*q);
  // Rows of G with v = 30 (present with its variable) match when hv
  // present (always): annotation w2 * [30 = m].
  ASSERT_EQ(result.NumRows(), 4u);
  size_t idx = 0;
  double total = 0;
  for (const Row& row : result.rows()) {
    total += db_.TupleProbability(row);
    ++idx;
  }
  // Only the v=30 row can satisfy [v = m]; P = P[w2] * P[m = 30] = 0.5.
  EXPECT_NEAR(total, 0.5, 1e-12);
}

TEST_F(QueryAggTest, AggregationRequiresIntegerInput) {
  PvcTable d{Schema({{"x", CellType::kDouble}})};
  VarId v = db_.variables().AddBernoulli(0.5);
  d.AddRow({Cell(1.5)}, db_.pool().Var(v));
  db_.AddTable("D", std::move(d));
  EXPECT_THROW(
      db_.Run(*Query::GroupAgg(Query::Scan("D"), {},
                               {{AggKind::kSum, "x", "s"}})),
      CheckError);
}

TEST_F(QueryAggTest, GroupAggMatchesWorldSemantics) {
  // Cross-check against naive enumeration: for every world, the aggregate
  // in the result's semimodule expression equals the aggregate computed on
  // the materialised world.
  QueryPtr q = Query::GroupAgg(Query::Scan("G"), {},
                               {{AggKind::kMax, "v", "m"}});
  PvcTable result = db_.Run(*q);
  ASSERT_EQ(result.NumRows(), 1u);
  ExprId m = result.CellAt(0, "m").AsAgg();
  Distribution expected = EnumerateDistribution(db_.pool(),
                                                db_.variables(), m);
  Distribution actual = db_.AggregateDistribution(result, 0, "m");
  EXPECT_TRUE(actual.ApproxEquals(expected, 1e-9));
}

}  // namespace
}  // namespace pvcdb
