#include "src/query/ast.h"

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace pvcdb {
namespace {

TEST(QueryAstTest, ScanAndSelect) {
  QueryPtr q = Query::Select(Query::Scan("S"),
                             Predicate::ColEqStr("shop", "M&S"));
  EXPECT_EQ(q->op(), QueryOp::kSelect);
  EXPECT_EQ(q->child(0)->op(), QueryOp::kScan);
  EXPECT_EQ(q->child(0)->table_name(), "S");
  EXPECT_THROW(q->child(1), CheckError);
}

TEST(QueryAstTest, JoinIsSelectOverProduct) {
  QueryPtr q = Query::Join(Query::Scan("S"), Query::Scan("PS"),
                           Predicate::ColEqCol("sid", "ps_sid"));
  EXPECT_EQ(q->op(), QueryOp::kSelect);
  EXPECT_EQ(q->child(0)->op(), QueryOp::kProduct);
}

TEST(QueryAstTest, GroupAggStructure) {
  QueryPtr q = Query::GroupAgg(Query::Scan("Q1"), {"shop"},
                               {{AggKind::kMax, "price", "P"}});
  EXPECT_EQ(q->op(), QueryOp::kGroupAgg);
  EXPECT_EQ(q->columns(), std::vector<std::string>{"shop"});
  ASSERT_EQ(q->aggs().size(), 1u);
  EXPECT_EQ(q->aggs()[0].output_column, "P");
}

TEST(QueryAstTest, GroupAggRequiresAggregations) {
  EXPECT_THROW(Query::GroupAgg(Query::Scan("R"), {"a"}, {}), CheckError);
}

TEST(QueryAstTest, ToStringRendersAlgebra) {
  QueryPtr q = Query::Project(
      Query::Select(Query::Product(Query::Scan("S"), Query::Scan("PS")),
                    Predicate::ColEqCol("sid", "ps_sid")),
      {"shop", "price"});
  std::string s = q->ToString();
  EXPECT_NE(s.find("pi_{shop,price}"), std::string::npos);
  EXPECT_NE(s.find("sigma_{sid = ps_sid}"), std::string::npos);
  EXPECT_NE(s.find("(S x PS)"), std::string::npos);
}

TEST(QueryAstTest, ToStringRendersAggregation) {
  QueryPtr q = Query::GroupAgg(Query::Scan("R"), {"a"},
                               {{AggKind::kSum, "b", "beta"}});
  EXPECT_NE(q->ToString().find("$_{a; beta<-SUM(b)}"), std::string::npos);
}

TEST(QueryAstTest, RenameAndUnion) {
  QueryPtr q = Query::Union(Query::Rename(Query::Scan("P1"), "w", "weight"),
                            Query::Scan("P2"));
  EXPECT_EQ(q->op(), QueryOp::kUnion);
  EXPECT_EQ(q->child(0)->rename_from(), "w");
  EXPECT_EQ(q->child(0)->rename_to(), "weight");
}

TEST(QueryAstTest, SharedSubqueriesAllowed) {
  QueryPtr base = Query::Scan("R");
  QueryPtr q1 = Query::Project(base, {"a"});
  QueryPtr q2 = Query::Project(base, {"b"});
  EXPECT_EQ(q1->child(0).get(), q2->child(0).get());
}

}  // namespace
}  // namespace pvcdb
