#include "src/dtree/prune.h"

#include <gtest/gtest.h>

#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/naive/possible_worlds.h"

namespace pvcdb {
namespace {

class PruneTest : public ::testing::Test {
 protected:
  PruneTest() : pool_(SemiringKind::kBool) {
    for (int i = 0; i < 6; ++i) ids_.push_back(vars_.AddBernoulli(0.5));
  }

  ExprId Term(AggKind agg, int var, int64_t value) {
    return pool_.Tensor(pool_.Var(ids_[var]), pool_.ConstM(agg, value));
  }

  // Checks that pruning preserves the probability distribution, against
  // naive world enumeration.
  void ExpectDistributionPreserved(ExprId original) {
    ExprId pruned = PruneComparison(pool_, original);
    Distribution expected = EnumerateDistribution(pool_, vars_, original);
    Distribution actual = EnumerateDistribution(pool_, vars_, pruned);
    EXPECT_TRUE(expected.ApproxEquals(actual, 1e-9))
        << "expected " << expected.ToString() << " got " << actual.ToString();
  }

  ExprPool pool_;
  VariableTable vars_;
  std::vector<VarId> ids_;
};

TEST_F(PruneTest, MinLeDropsLargeTerms) {
  // [min{10, 60, 200} <= 50]: the 60- and 200-valued terms are irrelevant.
  ExprId e = pool_.Cmp(
      CmpOp::kLe,
      pool_.AddM(AggKind::kMin, {Term(AggKind::kMin, 0, 10),
                                 Term(AggKind::kMin, 1, 60),
                                 Term(AggKind::kMin, 2, 200)}),
      pool_.ConstM(AggKind::kMin, 50));
  ExprId pruned = PruneComparison(pool_, e);
  EXPECT_NE(pruned, e);
  // The pruned comparison mentions only the variable of the 10-term.
  EXPECT_EQ(pool_.VarsOf(pruned).size(), 1u);
  ExpectDistributionPreserved(e);
}

TEST_F(PruneTest, MinGeKeepsOnlySmallTerms) {
  // [min >= 50] holds iff no present term is < 50.
  ExprId e = pool_.Cmp(
      CmpOp::kGe,
      pool_.AddM(AggKind::kMin, {Term(AggKind::kMin, 0, 10),
                                 Term(AggKind::kMin, 1, 60)}),
      pool_.ConstM(AggKind::kMin, 50));
  ExprId pruned = PruneComparison(pool_, e);
  EXPECT_EQ(pool_.VarsOf(pruned).size(), 1u);
  ExpectDistributionPreserved(e);
}

TEST_F(PruneTest, MinAllTermsPrunedFoldsToConstant) {
  // [min{60, 200} <= 50]: no term can satisfy it; [inf <= 50] = 0.
  ExprId e = pool_.Cmp(
      CmpOp::kLe,
      pool_.AddM(AggKind::kMin, {Term(AggKind::kMin, 0, 60),
                                 Term(AggKind::kMin, 1, 200)}),
      pool_.ConstM(AggKind::kMin, 50));
  ExprId pruned = PruneComparison(pool_, e);
  EXPECT_EQ(pruned, pool_.ConstS(0));
  ExpectDistributionPreserved(e);
}

TEST_F(PruneTest, MaxMirrorRules) {
  // [max{10, 60} >= 50]: the 10-term is irrelevant.
  ExprId e = pool_.Cmp(
      CmpOp::kGe,
      pool_.AddM(AggKind::kMax, {Term(AggKind::kMax, 0, 10),
                                 Term(AggKind::kMax, 1, 60)}),
      pool_.ConstM(AggKind::kMax, 50));
  ExprId pruned = PruneComparison(pool_, e);
  EXPECT_EQ(pool_.VarsOf(pruned).size(), 1u);
  ExpectDistributionPreserved(e);
}

TEST_F(PruneTest, AllMinOperatorsPreserveDistributions) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLe, CmpOp::kGe,
                   CmpOp::kLt, CmpOp::kGt}) {
    for (int64_t c : {5, 10, 35, 60, 250}) {
      ExprId e = pool_.Cmp(
          op,
          pool_.AddM(AggKind::kMin, {Term(AggKind::kMin, 0, 10),
                                     Term(AggKind::kMin, 1, 35),
                                     Term(AggKind::kMin, 2, 60),
                                     Term(AggKind::kMin, 3, 200)}),
          pool_.ConstM(AggKind::kMin, c));
      ExpectDistributionPreserved(e);
    }
  }
}

TEST_F(PruneTest, AllMaxOperatorsPreserveDistributions) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLe, CmpOp::kGe,
                   CmpOp::kLt, CmpOp::kGt}) {
    for (int64_t c : {5, 10, 35, 60, 250}) {
      ExprId e = pool_.Cmp(
          op,
          pool_.AddM(AggKind::kMax, {Term(AggKind::kMax, 0, 10),
                                     Term(AggKind::kMax, 1, 35),
                                     Term(AggKind::kMax, 2, 60),
                                     Term(AggKind::kMax, 3, 200)}),
          pool_.ConstM(AggKind::kMax, c));
      ExpectDistributionPreserved(e);
    }
  }
}

TEST_F(PruneTest, SumTautology) {
  // [sum{3, 4} <= 10] is always true: total = 7 <= 10 (the paper's SUM
  // rule).
  ExprId e = pool_.Cmp(
      CmpOp::kLe,
      pool_.AddM(AggKind::kSum, {Term(AggKind::kSum, 0, 3),
                                 Term(AggKind::kSum, 1, 4)}),
      pool_.ConstM(AggKind::kSum, 10));
  EXPECT_EQ(PruneComparison(pool_, e), pool_.ConstS(1));
  ExpectDistributionPreserved(e);
}

TEST_F(PruneTest, SumContradiction) {
  // [sum{3, 4} >= 10] is always false.
  ExprId e = pool_.Cmp(
      CmpOp::kGe,
      pool_.AddM(AggKind::kSum, {Term(AggKind::kSum, 0, 3),
                                 Term(AggKind::kSum, 1, 4)}),
      pool_.ConstM(AggKind::kSum, 10));
  EXPECT_EQ(PruneComparison(pool_, e), pool_.ConstS(0));
  ExpectDistributionPreserved(e);
}

TEST_F(PruneTest, SumEqOutOfRange) {
  ExprId e = pool_.Cmp(
      CmpOp::kEq,
      pool_.AddM(AggKind::kSum, {Term(AggKind::kSum, 0, 3),
                                 Term(AggKind::kSum, 1, 4)}),
      pool_.ConstM(AggKind::kSum, 100));
  EXPECT_EQ(PruneComparison(pool_, e), pool_.ConstS(0));
  ExprId ne = pool_.Cmp(
      CmpOp::kNe,
      pool_.AddM(AggKind::kSum, {Term(AggKind::kSum, 0, 3),
                                 Term(AggKind::kSum, 1, 4)}),
      pool_.ConstM(AggKind::kSum, 100));
  EXPECT_EQ(PruneComparison(pool_, ne), pool_.ConstS(1));
}

TEST_F(PruneTest, SumUndecidedUnchanged) {
  // [sum{3, 4} <= 5] depends on the variables; pruning keeps it.
  ExprId e = pool_.Cmp(
      CmpOp::kLe,
      pool_.AddM(AggKind::kSum, {Term(AggKind::kSum, 0, 3),
                                 Term(AggKind::kSum, 1, 4)}),
      pool_.ConstM(AggKind::kSum, 5));
  EXPECT_EQ(PruneComparison(pool_, e), e);
}

TEST_F(PruneTest, ConstantOnLeftSideIsMirrored) {
  // [50 >= min{10, 60}] behaves like [min{10, 60} <= 50].
  ExprId e = pool_.Cmp(
      CmpOp::kGe, pool_.ConstM(AggKind::kMin, 50),
      pool_.AddM(AggKind::kMin, {Term(AggKind::kMin, 0, 10),
                                 Term(AggKind::kMin, 1, 60)}));
  ExprId pruned = PruneComparison(pool_, e);
  EXPECT_NE(pruned, e);
  ExpectDistributionPreserved(e);
}

TEST_F(PruneTest, NonConstantComparisonUntouched) {
  ExprId lhs = pool_.AddM(AggKind::kMin, {Term(AggKind::kMin, 0, 10)});
  ExprId rhs = pool_.AddM(AggKind::kMin, {Term(AggKind::kMin, 1, 20)});
  ExprId e = pool_.Cmp(CmpOp::kLe, lhs, rhs);
  EXPECT_EQ(PruneComparison(pool_, e), e);
}

TEST_F(PruneTest, NonCmpInputReturnedUnchanged) {
  ExprId e = pool_.Var(ids_[0]);
  EXPECT_EQ(PruneComparison(pool_, e), e);
}

TEST_F(PruneTest, SumRulesRequireBooleanSemiring) {
  // Under N a variable may contribute its value many times, so the bounds
  // logic must not fire.
  ExprPool nat(SemiringKind::kNatural);
  VariableTable vars;
  VarId x = vars.Add(Distribution::FromPairs({{0, 0.5}, {3, 0.5}}));
  ExprId e = nat.Cmp(
      CmpOp::kLe,
      nat.Tensor(nat.Var(x), nat.ConstM(AggKind::kSum, 3)),
      nat.ConstM(AggKind::kSum, 5));
  EXPECT_EQ(PruneComparison(nat, e), e);
}

TEST_F(PruneTest, TwoSidedIntervalTautology) {
  // [MAX{10, 20} <= SUM-side with always-present total 30]: the SUM side's
  // lower bound (its constant part) dominates the MAX side's upper bound,
  // so the comparison is a tautology. Constant tensor parts fold into a
  // ConstM child, which is "always present".
  ExprId lhs = pool_.AddM(AggKind::kMax, {Term(AggKind::kMax, 0, 10),
                                          Term(AggKind::kMax, 1, 20)});
  ExprId rhs = pool_.AddM(
      AggKind::kSum,
      {pool_.ConstM(AggKind::kSum, 30), Term(AggKind::kSum, 2, 5)});
  ExprId e = pool_.Cmp(CmpOp::kLe, lhs, rhs);
  EXPECT_EQ(PruneComparison(pool_, e), pool_.ConstS(1));
  ExpectDistributionPreserved(e);
}

TEST_F(PruneTest, TwoSidedIntervalContradiction) {
  // [MIN-side >= SUM-side] where min's largest possible value (its
  // always-present term 5) is below the SUM side's guaranteed 30.
  ExprId lhs = pool_.AddM(
      AggKind::kMin,
      {pool_.ConstM(AggKind::kMin, 5), Term(AggKind::kMin, 0, 2)});
  ExprId rhs = pool_.AddM(
      AggKind::kSum,
      {pool_.ConstM(AggKind::kSum, 30), Term(AggKind::kSum, 1, 4)});
  ExprId e = pool_.Cmp(CmpOp::kGe, lhs, rhs);
  EXPECT_EQ(PruneComparison(pool_, e), pool_.ConstS(0));
  ExpectDistributionPreserved(e);
}

TEST_F(PruneTest, TwoSidedUndecidedLeftIntact) {
  // Overlapping intervals: no verdict, expression unchanged.
  ExprId lhs = pool_.AddM(AggKind::kMax, {Term(AggKind::kMax, 0, 10),
                                          Term(AggKind::kMax, 1, 40)});
  ExprId rhs = pool_.AddM(AggKind::kSum, {Term(AggKind::kSum, 2, 15),
                                          Term(AggKind::kSum, 3, 20)});
  ExprId e = pool_.Cmp(CmpOp::kLe, lhs, rhs);
  EXPECT_EQ(PruneComparison(pool_, e), e);
}

TEST_F(PruneTest, TwoSidedPreservesDistributionsAcrossOperators) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLe, CmpOp::kGe,
                   CmpOp::kLt, CmpOp::kGt}) {
    ExprId lhs = pool_.AddM(AggKind::kMax, {Term(AggKind::kMax, 0, 10),
                                            Term(AggKind::kMax, 1, 25)});
    ExprId rhs = pool_.AddM(AggKind::kSum, {Term(AggKind::kSum, 2, 12),
                                            Term(AggKind::kSum, 3, 20)});
    ExpectDistributionPreserved(pool_.Cmp(op, lhs, rhs));
  }
}

TEST_F(PruneTest, TwoSidedMinMaxPair) {
  // MIN vs MAX (Experiment E's first pair): [MIN{3,4} <= MAX-side] where
  // the MAX side contains an always-present 100: min's upper bound (inf or
  // some value) vs max lower bound 100. With no always-present MIN term,
  // the MIN can be +inf, so no tautology -- verify it stays undecided
  // unless the MIN side has a guaranteed term.
  ExprId lhs_no_anchor = pool_.AddM(
      AggKind::kMin, {Term(AggKind::kMin, 0, 3), Term(AggKind::kMin, 1, 4)});
  ExprId rhs = pool_.AddM(
      AggKind::kMax,
      {pool_.ConstM(AggKind::kMax, 100), Term(AggKind::kMax, 2, 7)});
  ExprId undecided = pool_.Cmp(CmpOp::kLe, lhs_no_anchor, rhs);
  EXPECT_EQ(PruneComparison(pool_, undecided), undecided)
      << "an empty MIN group is +inf > 100";
  // With an always-present 3-term, MIN <= 3 < 100 <= MAX: tautology.
  ExprId lhs_anchored = pool_.AddM(
      AggKind::kMin,
      {pool_.ConstM(AggKind::kMin, 3), Term(AggKind::kMin, 1, 4)});
  ExprId decided = pool_.Cmp(CmpOp::kLe, lhs_anchored, rhs);
  EXPECT_EQ(PruneComparison(pool_, decided), pool_.ConstS(1));
}

TEST_F(PruneTest, PruningInsideCompilerReducesWork) {
  // With pruning enabled, compiling [min <= c] with mostly-large terms
  // performs fewer mutex expansions than without.
  std::vector<ExprId> terms;
  for (int i = 0; i < 5; ++i) {
    terms.push_back(Term(AggKind::kMin, i, i == 0 ? 10 : 100 + i));
  }
  ExprId e = pool_.Cmp(CmpOp::kLe, pool_.AddM(AggKind::kMin, terms),
                       pool_.ConstM(AggKind::kMin, 50));
  CompileOptions with;
  CompileOptions without;
  without.enable_pruning = false;
  DTreeCompiler c1(&pool_, &vars_, with);
  DTree t1 = c1.Compile(e);
  DTreeCompiler c2(&pool_, &vars_, without);
  DTree t2 = c2.Compile(e);
  EXPECT_LE(t1.size(), t2.size());
  // Both still yield the same distribution.
  Distribution d1 = ComputeDistribution(t1, vars_, pool_.semiring());
  Distribution d2 = ComputeDistribution(t2, vars_, pool_.semiring());
  EXPECT_TRUE(d1.ApproxEquals(d2, 1e-9));
}

}  // namespace
}  // namespace pvcdb
