#!/usr/bin/env bash
# Verifies that every third-party GitHub Action pinned by commit SHA in
# .github/workflows/ matches the release tag recorded in its trailing
# "# vX.Y.Z" comment, by resolving the tag with `git ls-remote` (needs
# network access). Annotated tags match through their peeled ^{} object.
#
# Exit codes: 0 = every pin matches, 1 = a pin/tag mismatch, 2 = a tag
# could not be resolved (network failure or deleted tag).
#
# Run from the repository root:  bash scripts/verify_action_pins.sh
set -u

specs="$(grep -rhoE '[A-Za-z0-9_.-]+/[A-Za-z0-9_.-]+@[0-9a-f]{40} # v[0-9A-Za-z.]+' \
  .github/workflows/*.yml | sort -u)"
if [ -z "$specs" ]; then
  echo "ERROR: no SHA-pinned actions found under .github/workflows/"
  exit 2
fi

status=0
while IFS= read -r line; do
  spec="${line%% \#*}"   # owner/action@sha
  tag="${line##*\# }"    # vX.Y.Z
  action="${spec%@*}"
  sha="${spec#*@}"
  refs="$(git ls-remote "https://github.com/$action" \
            "refs/tags/$tag" "refs/tags/$tag^{}" 2>/dev/null | cut -f1)"
  if [ -z "$refs" ]; then
    echo "ERROR: cannot resolve $action tag $tag (network? deleted tag?)"
    status=2
    continue
  fi
  if printf '%s\n' "$refs" | grep -qx "$sha"; then
    echo "OK: $action@$sha is $tag"
  else
    echo "FAIL: $action@$sha does not match $tag (remote:" \
         "$(printf '%s' "$refs" | tr '\n' ' '))"
    status=1
  fi
done <<< "$specs"
exit $status
