#!/usr/bin/env python3
"""Gate benchmark trajectories against committed baselines.

Two metrics over JSON-lines bench output:

--metric throughput (default; `bench_shard --json`): compares the
*normalized* 4-way sharded throughput

    normalized = T(shards=4, threads=4) / T(shards=1, threads=1)

where T is rows per second of the "shard_query" series within one run.
Normalizing by the same run's serial single-shard point cancels the
absolute speed of the machine, so a baseline committed from one host
remains meaningful on CI runners.

--metric speedup (`bench_ivm --json`, `bench_hotpath --json`): compares
the recorded speedup field of the summary record selected by
--series/--shards/--threads. The field defaults to
`speedup_incremental_vs_recompute` (bench_ivm); pass
--field speedup_vs_serial for the bench_hotpath intra-tree curve. The
speedup is already a within-run ratio, so no further normalization is
applied. When either side's record was captured with hardware_threads=1
the gate is SKIPPED (exit 0, loud warning): parallel speedups measured
on a single core are scheduling noise, not signal.

--metric ns-per-node (`bench_hotpath --json`): compares the compile +
probability cost per d-tree node of the selected record. Lower is
better, so the check fails when the current value rises more than
--threshold above the baseline (the inverse of the other metrics).

--metric resync-bytes (`bench_serve --json`): compares the shipped
resync payload bytes of the record selected by --series (default
resync_full; resync_tail gates the WAL-shipping tail path, whose
expected value is zero -- any growth there means surviving workers
stopped passing the chain proof). Bytes are deterministic functions of
the workload, not the machine, so no normalization or hardware skip
applies. Lower is better, as for ns-per-node.

--metric overhead-pct (`bench_serve --json`): gates the metrics_overhead
record's overhead_pct field -- the qps lost to instrumentation relative
to the same server with the metrics kill switch thrown -- against an
ABSOLUTE ceiling of --threshold (as a fraction; default 0.05 = 5%). No
baseline file is needed or read: the bound is the observability layer's
contract, not a trajectory. The record is captured at shards=2
threads=0, so pass --shards 2 --threads 0.

Unless stated otherwise the check fails when the current value drops
more than --threshold below the baseline's.

Exit codes: 0 ok, 1 regression, 2 missing/invalid data.

Usage:
    check_bench_trajectory.py CURRENT.json --baseline BASELINE.json \
        [--metric throughput|speedup] [--series ivm_select] \
        [--threshold 0.20] [--shards 4] [--threads 4]

Refreshing a baseline: download the matching BENCH_*.json from a
bench-trajectory run on the target runner class and commit it at the
repository root (see docs/CI.md).
"""

import argparse
import json
import sys


def load_records(path):
    records = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            records.append(json.loads(line))
    return records


def find_record(records, bench, shards, threads):
    for r in records:
        p = r.get("params", {})
        if (r.get("bench") == bench and p.get("shards") == shards
                and p.get("threads") == threads):
            if p.get("bit_identical") not in (None, "true"):
                print(f"FAIL: {bench} shards={shards} threads={threads} "
                      "was not bit-identical to the reference")
                sys.exit(1)
            return p
    print(f"ERROR: no '{bench}' record with shards={shards} "
          f"threads={threads}")
    sys.exit(2)


def throughput(records, bench, shards, threads):
    return float(find_record(records, bench, shards, threads)
                 ["rows_per_second"])


def field_from(record, bench, field):
    if field not in record:
        print(f"ERROR: record '{bench}' has no field '{field}'")
        sys.exit(2)
    return float(record[field])


def field_value(records, bench, shards, threads, field):
    return field_from(find_record(records, bench, shards, threads), bench,
                      field)


def normalized(records, shards, threads):
    fast = throughput(records, "shard_query", shards, threads)
    base = throughput(records, "shard_query", 1, 1)
    if base <= 0:
        print("ERROR: non-positive serial throughput")
        sys.exit(2)
    return fast / base


def warn_if_weak_baseline(records):
    if any(r.get("params", {}).get("hardware_threads") == 1
           for r in records):
        print("WARNING: baseline was captured on a 1-CPU host, so the "
              "regression floor is far below healthy multi-core "
              "throughput; refresh it from a bench-trajectory artifact "
              "to make the gate meaningful (docs/CI.md)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("--baseline",
                        help="committed baseline JSON (required for every "
                             "metric except overhead-pct)")
    parser.add_argument("--metric",
                        choices=["throughput", "speedup", "ns-per-node",
                                 "resync-bytes", "overhead-pct"],
                        default="throughput")
    parser.add_argument("--series", default="shard_query",
                        help="bench name of the record to gate on "
                             "(speedup / ns-per-node metrics)")
    parser.add_argument("--field", default="speedup_incremental_vs_recompute",
                        help="record field holding the speedup "
                             "(speedup metric)")
    parser.add_argument("--threshold", type=float, default=None,
                        help="allowed fractional drop (default 0.20 = 20%%); "
                             "for overhead-pct, the absolute overhead "
                             "ceiling as a fraction (default 0.05 = 5%%)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--threads", type=int, default=4)
    args = parser.parse_args()

    if args.threshold is None:
        args.threshold = 0.05 if args.metric == "overhead-pct" else 0.20
    if args.metric != "overhead-pct" and args.baseline is None:
        parser.error(f"--baseline is required for --metric {args.metric}")

    if args.metric == "overhead-pct":
        series = (args.series if args.series != "shard_query"
                  else "metrics_overhead")
        current = field_value(load_records(args.current), series,
                              args.shards, args.threads, "overhead_pct")
        ceiling = args.threshold * 100.0
        print(f"{series} instrumentation overhead: current {current:.3f}%, "
              f"ceiling {ceiling:.3f}%")
        if current > ceiling:
            print(f"FAIL: metrics overhead exceeds the "
                  f"{args.threshold:.0%} contract")
            sys.exit(1)
        print("OK")
        return

    lower_is_better = False
    if args.metric == "throughput":
        current = normalized(load_records(args.current), args.shards,
                             args.threads)
        baseline_records = load_records(args.baseline)
        # Only throughput baselines degrade on a 1-CPU host; speedups are
        # within-run ratios and stay meaningful there.
        warn_if_weak_baseline(baseline_records)
        baseline = normalized(baseline_records, args.shards, args.threads)
        label = f"normalized {args.shards}-way throughput"
    elif args.metric == "ns-per-node":
        current = field_value(load_records(args.current), args.series,
                              args.shards, args.threads, "ns_per_node")
        baseline_records = load_records(args.baseline)
        warn_if_weak_baseline(baseline_records)
        baseline = field_value(baseline_records, args.series, args.shards,
                               args.threads, "ns_per_node")
        label = f"{args.series} ns per d-tree node"
        lower_is_better = True
    elif args.metric == "resync-bytes":
        series = (args.series if args.series != "shard_query"
                  else "resync_full")
        current = field_value(load_records(args.current), series,
                              args.shards, args.threads, "resync_bytes")
        # Byte counts are workload-determined, not machine-determined: no
        # 1-CPU baseline warning or skip applies.
        baseline = field_value(load_records(args.baseline), series,
                               args.shards, args.threads, "resync_bytes")
        label = f"{series} shipped resync bytes"
        lower_is_better = True
    else:
        current_record = find_record(load_records(args.current), args.series,
                                     args.shards, args.threads)
        baseline_record = find_record(load_records(args.baseline),
                                      args.series, args.shards, args.threads)
        # Parallel speedups measured on a 1-CPU host are noise, not signal:
        # the helper threads share one core, so "speedup" is pure scheduling
        # overhead (e.g. the 0.38x intra-tree points in a single-core
        # BENCH_hotpath.json). Gating on such a number fails healthy code
        # and passes broken code, so the only safe move is to skip loudly.
        single = [name for name, record in (("current", current_record),
                                            ("baseline", baseline_record))
                  if record.get("hardware_threads") == 1]
        if single:
            print(f"SKIPPED: speedup gate for {args.series} {args.field}: "
                  f"the {' and '.join(single)} run(s) were captured with "
                  "hardware_threads=1, where parallel speedups are "
                  "meaningless. Refresh from a multi-core bench-trajectory "
                  "artifact to arm this gate (docs/CI.md).")
            sys.exit(0)
        current = field_from(current_record, args.series, args.field)
        baseline = field_from(baseline_record, args.series, args.field)
        label = f"{args.series} {args.field}"

    if lower_is_better:
        ceiling = (1.0 + args.threshold) * baseline
        print(f"{label}: current {current:.3f}, "
              f"baseline {baseline:.3f}, ceiling {ceiling:.3f}")
        if current > ceiling:
            print(f"FAIL: {label} regressed more "
                  f"than {args.threshold:.0%} above the committed baseline")
            sys.exit(1)
    else:
        floor = (1.0 - args.threshold) * baseline
        print(f"{label}: current {current:.3f}, "
              f"baseline {baseline:.3f}, floor {floor:.3f}")
        if current < floor:
            print(f"FAIL: {label} regressed more "
                  f"than {args.threshold:.0%} below the committed baseline")
            sys.exit(1)
    print("OK")


if __name__ == "__main__":
    main()
