// Experiment C (Figure 8a): the easy/hard/easy phase transition when the
// number of distinct variables #v varies at a fixed expression size.
//
// Paper grid: L=90, R=0, #cl=2, #l=2, maxv=5, c=3, theta is =, MIN,
// runs=40, peaking around 20s/point on the paper's hardware. The default
// grid uses L=40 so the whole sweep stays under a minute; --full restores
// L=90 (expect ~30s per run in the hard regime around #v≈30-45).
//
// Expected shape: fast for few variables (mutex expansion terminates
// quickly) and for many variables (clauses become independent), hard in
// between -- the #SAT-style phase transition, with large variance in the
// hard regime.

#include <iostream>

#include "bench/bench_util.h"
#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/util/check.h"
#include "src/workload/random_expr.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

}  // namespace

int main(int argc, char** argv) {
  bool full = FullMode(argc, argv);
  std::cout << "# Experiment C (Figure 8a): easy/hard/easy phase "
               "transition in #v\n";
  const int runs = full ? 10 : 3;
  const int terms = full ? 90 : 40;
  std::vector<int> v_grid =
      full ? std::vector<int>{5,  10, 15, 20,  25,  30,  40,  50,
                              60, 80, 120, 160, 200, 250, 300}
           : std::vector<int>{4, 8, 12, 16, 20, 24, 28, 36, 48, 64, 100, 160};
  std::cout << "(L=" << terms << ", R=0, #cl=2, #l=2, maxv=5, c=3, theta "
            << "is =, MIN, runs=" << runs << ")\n\n";

  TablePrinter table(
      {"#v", "time [s]", "stddev [s]", "mutex nodes", "budget hits"});
  for (int v : v_grid) {
    size_t mutex_total = 0;
    int budget_hits = 0;
    RunStats stats = TimeRuns(runs, [&](int run) {
      ExprPool pool(SemiringKind::kBool);
      VariableTable vars;
      ExprGenParams params;
      params.num_vars = v;
      params.terms_left = terms;
      params.clauses_per_term = 2;
      params.literals_per_clause = 2;
      params.max_value = 5;
      params.constant = 3;
      params.theta = CmpOp::kEq;
      params.agg_left = AggKind::kMin;
      GeneratedExpr gen = GenerateComparisonExpr(
          &pool, &vars, params, static_cast<uint64_t>(run) * 2654435761u + v);
      CompileOptions options;
      options.max_nodes = full ? 40'000'000 : 4'000'000;
      try {
        DTreeCompiler compiler(&pool, &vars, options);
        DTree tree = compiler.Compile(gen.comparison);
        mutex_total += compiler.stats().mutex_expansions;
        ComputeDistribution(tree, vars, pool.semiring());
      } catch (const CheckError&) {
        ++budget_hits;  // Report DNF points instead of aborting the sweep.
      }
    });
    table.PrintRow({std::to_string(v), FormatSeconds(stats.mean_seconds),
                    FormatSeconds(stats.stddev_seconds),
                    std::to_string(mutex_total / runs),
                    std::to_string(budget_hits)});
  }
  return 0;
}
