// Shared harness utilities for the experiment benchmarks (Section 7).
//
// Each bench binary reproduces one figure/table of the paper: it sweeps the
// paper's parameter grid (scaled down by default so the full suite runs in
// minutes on one core; pass --full for paper-scale grids) and prints the
// series as a markdown table. Shapes -- who wins, saturation points, phase
// transitions -- are the reproduction target, not absolute seconds (see
// EXPERIMENTS.md).

#ifndef PVCDB_BENCH_BENCH_UTIL_H_
#define PVCDB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/util/timer.h"

namespace pvcdb_bench {

/// True when `flag` (e.g. "--full") was passed.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// True when --full was passed (paper-scale parameter grids).
inline bool FullMode(int argc, char** argv) {
  return HasFlag(argc, argv, "--full");
}

/// True when --json was passed: emit one JSON record per measurement
/// (JSON Lines) instead of markdown tables, for CI trajectory files
/// (BENCH_*.json).
inline bool JsonMode(int argc, char** argv) {
  return HasFlag(argc, argv, "--json");
}

/// True when --smoke was passed: tiny grids that finish in seconds, for
/// ctest (`ctest -L bench`) and the CI bench-smoke step.
inline bool SmokeMode(int argc, char** argv) {
  return HasFlag(argc, argv, "--smoke");
}

/// Value of --threads=N (the EvalOptions::num_threads convention:
/// 0 = serial); `fallback` when absent.
inline int ThreadsArg(int argc, char** argv, int fallback = 0) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return std::atoi(argv[i] + 10);
    }
  }
  return fallback;
}

/// Mean and standard deviation of a sample, mirroring the paper's
/// "average wall-clock execution times and estimated standard deviation
/// while neglecting the slowest and fastest runs".
struct RunStats {
  double mean_seconds = 0.0;
  double stddev_seconds = 0.0;
};

inline RunStats Summarize(std::vector<double> seconds) {
  if (seconds.size() > 2) {
    // Drop the slowest and fastest runs, as in the paper.
    std::sort(seconds.begin(), seconds.end());
    seconds.erase(seconds.begin());
    seconds.pop_back();
  }
  RunStats stats;
  if (seconds.empty()) return stats;
  double sum = 0.0;
  for (double s : seconds) sum += s;
  stats.mean_seconds = sum / seconds.size();
  double var = 0.0;
  for (double s : seconds) {
    var += (s - stats.mean_seconds) * (s - stats.mean_seconds);
  }
  stats.stddev_seconds = std::sqrt(var / seconds.size());
  return stats;
}

/// Runs `body` `runs` times and summarises the wall-clock times.
template <typename Body>
RunStats TimeRuns(int runs, Body&& body) {
  std::vector<double> times;
  times.reserve(runs);
  for (int i = 0; i < runs; ++i) {
    pvcdb::WallTimer timer;
    body(i);
    times.push_back(timer.ElapsedSeconds());
  }
  return Summarize(std::move(times));
}

/// Markdown table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : width_(header.size()) {
    PrintRow(header);
    std::string sep;
    for (size_t i = 0; i < width_; ++i) sep += "|---";
    std::cout << sep << "|\n";
  }

  void PrintRow(const std::vector<std::string>& cells) {
    std::cout << "| ";
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) std::cout << " | ";
      std::cout << cells[i];
    }
    // Flush per row: sweeps can be long and partial progress is useful.
    std::cout << " |" << std::endl;
  }

 private:
  size_t width_;
};

inline std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", s);
  return buf;
}

inline std::string FormatDouble(double v, int digits = 4) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// Ordered key -> value parameter list for JSON records. Values are
/// rendered as JSON numbers or strings at Set() time.
class JsonParams {
 public:
  JsonParams& Set(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, Quote(value));
    return *this;
  }
  JsonParams& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }
  JsonParams& Set(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    entries_.emplace_back(key, buf);
    return *this;
  }
  JsonParams& Set(const std::string& key, int64_t value) {
    entries_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonParams& Set(const std::string& key, int value) {
    return Set(key, static_cast<int64_t>(value));
  }

  std::string ToJson() const {
    std::string out = "{";
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) out += ", ";
      out += Quote(entries_[i].first) + ": " + entries_[i].second;
    }
    return out + "}";
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }

  std::vector<std::pair<std::string, std::string>> entries_;  // key, literal
};

/// Emits one {"bench", "params", "mean_seconds", "stddev_seconds"} record
/// as a single line (JSON Lines) and flushes, so partial sweeps still
/// leave a parseable trajectory file.
inline void PrintJsonRecord(const std::string& bench, const JsonParams& params,
                            const RunStats& stats) {
  char mean[32];
  char stddev[32];
  std::snprintf(mean, sizeof(mean), "%.6f", stats.mean_seconds);
  std::snprintf(stddev, sizeof(stddev), "%.6f", stats.stddev_seconds);
  std::cout << "{\"bench\": \"" << bench << "\", \"params\": "
            << params.ToJson() << ", \"mean_seconds\": " << mean
            << ", \"stddev_seconds\": " << stddev << "}" << std::endl;
}

}  // namespace pvcdb_bench

#endif  // PVCDB_BENCH_BENCH_UTIL_H_
