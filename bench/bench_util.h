// Shared harness utilities for the experiment benchmarks (Section 7).
//
// Each bench binary reproduces one figure/table of the paper: it sweeps the
// paper's parameter grid (scaled down by default so the full suite runs in
// minutes on one core; pass --full for paper-scale grids) and prints the
// series as a markdown table. Shapes -- who wins, saturation points, phase
// transitions -- are the reproduction target, not absolute seconds (see
// EXPERIMENTS.md).

#ifndef PVCDB_BENCH_BENCH_UTIL_H_
#define PVCDB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/util/timer.h"

namespace pvcdb_bench {

/// True when --full was passed (paper-scale parameter grids).
inline bool FullMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  return false;
}

/// Mean and standard deviation of a sample, mirroring the paper's
/// "average wall-clock execution times and estimated standard deviation
/// while neglecting the slowest and fastest runs".
struct RunStats {
  double mean_seconds = 0.0;
  double stddev_seconds = 0.0;
};

inline RunStats Summarize(std::vector<double> seconds) {
  if (seconds.size() > 2) {
    // Drop the slowest and fastest runs, as in the paper.
    std::sort(seconds.begin(), seconds.end());
    seconds.erase(seconds.begin());
    seconds.pop_back();
  }
  RunStats stats;
  if (seconds.empty()) return stats;
  double sum = 0.0;
  for (double s : seconds) sum += s;
  stats.mean_seconds = sum / seconds.size();
  double var = 0.0;
  for (double s : seconds) {
    var += (s - stats.mean_seconds) * (s - stats.mean_seconds);
  }
  stats.stddev_seconds = std::sqrt(var / seconds.size());
  return stats;
}

/// Runs `body` `runs` times and summarises the wall-clock times.
template <typename Body>
RunStats TimeRuns(int runs, Body&& body) {
  std::vector<double> times;
  times.reserve(runs);
  for (int i = 0; i < runs; ++i) {
    pvcdb::WallTimer timer;
    body(i);
    times.push_back(timer.ElapsedSeconds());
  }
  return Summarize(std::move(times));
}

/// Markdown table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : width_(header.size()) {
    PrintRow(header);
    std::string sep;
    for (size_t i = 0; i < width_; ++i) sep += "|---";
    std::cout << sep << "|\n";
  }

  void PrintRow(const std::vector<std::string>& cells) {
    std::cout << "| ";
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) std::cout << " | ";
      std::cout << cells[i];
    }
    // Flush per row: sweeps can be long and partial progress is useful.
    std::cout << " |" << std::endl;
  }

 private:
  size_t width_;
};

inline std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", s);
  return buf;
}

inline std::string FormatDouble(double v, int digits = 4) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace pvcdb_bench

#endif  // PVCDB_BENCH_BENCH_UTIL_H_
