// Experiment D (Figure 9 a, b): phase transition in the clause arity #l
// (literals per clause, at #cl=3) and in the number of clauses per term
// #cl (at #l=3), for all four monoids.
//
// Paper grid: #v=25, L=100, R=0, maxv=5, c=3, theta is <=, runs=20.
// Expected shape: easy for small and large #l (resp. #cl), hard in
// between.

#include <iostream>

#include "bench/bench_util.h"
#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/workload/random_expr.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

void RunSweep(const std::string& title, bool vary_literals,
              const std::vector<int>& grid, int num_vars, int terms,
              int runs) {
  std::cout << "\n### " << title << "\n\n";
  TablePrinter table({vary_literals ? "#l" : "#cl", "MIN [s]", "MAX [s]",
                      "COUNT [s]", "SUM [s]"});
  for (int value : grid) {
    std::vector<std::string> row = {std::to_string(value)};
    for (AggKind agg : {AggKind::kMin, AggKind::kMax, AggKind::kCount,
                        AggKind::kSum}) {
      RunStats stats = TimeRuns(runs, [&](int run) {
        ExprPool pool(SemiringKind::kBool);
        VariableTable vars;
        ExprGenParams params;
        params.num_vars = num_vars;
        params.terms_left = terms;
        params.clauses_per_term = vary_literals ? 3 : value;
        params.literals_per_clause = vary_literals ? value : 3;
        params.max_value = 5;
        params.constant = 3;
        params.theta = CmpOp::kLe;
        params.agg_left = agg;
        GeneratedExpr gen = GenerateComparisonExpr(
            &pool, &vars, params,
            static_cast<uint64_t>(run) * 7907 + value * 31 +
                static_cast<uint64_t>(agg));
        DTree tree = CompileToDTree(&pool, &vars, gen.comparison);
        ComputeDistribution(tree, vars, pool.semiring());
      });
      row.push_back(FormatSeconds(stats.mean_seconds));
    }
    table.PrintRow(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool full = FullMode(argc, argv);
  std::cout << "# Experiment D (Figure 9): varying #l and #cl\n";
  const int num_vars = full ? 25 : 16;
  const int terms = full ? 100 : 50;
  const int runs = full ? 20 : 3;
  std::vector<int> grid = full
      ? std::vector<int>{1, 2, 3, 4, 5, 6, 8, 10, 14, 20}
      : std::vector<int>{1, 2, 3, 4, 6, 8, 12, 16};
  std::cout << "(#v=" << num_vars << ", L=" << terms
            << ", R=0, maxv=5, c=3, theta is <=, runs=" << runs << ")\n";
  RunSweep("Figure 9a: literals per clause #l (at #cl=3)",
           /*vary_literals=*/true, grid, num_vars, terms, runs);
  RunSweep("Figure 9b: clauses per term #cl (at #l=3)",
           /*vary_literals=*/false, grid, num_vars, terms, runs);
  return 0;
}
