// Step II hot-path benchmark: d-tree compilation + probability throughput.
//
// Two scenarios, both dominated by the expression/d-tree kernels rather
// than by step I:
//
//   hotpath_skewed_batch  A batch of annotations with one giant outlier
//                         (the shape that serializes tuple-level
//                         parallelism): every row runs the engine's per-row
//                         pipeline -- clone into a task-private pool,
//                         compile, bottom-up probability -- serially, so
//                         the series isolates single-thread kernel
//                         throughput. Reports rows/s, ns per d-tree node
//                         and the number of heap allocations per pass
//                         (counted by this binary's operator new override).
//
//   hotpath_giant_tree    One giant annotation compiled once, then
//                         ComputeDistribution swept over
//                         ProbabilityOptions::num_threads in {1, 2, 4, 8}
//                         (the intra-d-tree parallel pass). The bench
//                         *enforces* bit-identical distributions across
//                         thread counts and reports the speedup curve.
//
// Determinism: every run re-checks the per-row probabilities against the
// first run and exits non-zero on any divergence, so CI smoke runs double
// as a regression check.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/expr/expr.h"
#include "src/prob/variable.h"
#include "src/util/parallel.h"

// -- Allocation counting ----------------------------------------------------
//
// Overriding the global allocation functions in the bench binary counts
// every heap allocation of the whole process (library code included).
// Relaxed atomics keep the overhead to a few nanoseconds per allocation.

namespace {
std::atomic<size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using pvcdb::CompileOptions;
using pvcdb::CompileToDTree;
using pvcdb::ComputeDistribution;
using pvcdb::Distribution;
using pvcdb::DTree;
using pvcdb::ExprId;
using pvcdb::ExprPool;
using pvcdb::NonZeroMass;
using pvcdb::ProbabilityOptions;
using pvcdb::SemiringKind;
using pvcdb::VariableTable;
using pvcdb::VarId;

// Deterministic per-variable probability in (0.05, 0.95).
double VarProb(size_t i) { return 0.05 + 0.9 * ((i * 37 + 11) % 97) / 96.0; }

// A fresh Bernoulli variable.
VarId FreshVar(VariableTable* vars) {
  return vars->AddBernoulli(VarProb(vars->size()));
}

// Read-once clause: OR of `terms` ANDs of `width` fresh variables each.
// Compiles purely with independence rules (no Shannon expansion).
ExprId ReadOnceOr(ExprPool* pool, VariableTable* vars, size_t terms,
                  size_t width) {
  std::vector<ExprId> sum;
  sum.reserve(terms);
  for (size_t t = 0; t < terms; ++t) {
    std::vector<ExprId> factors;
    factors.reserve(width);
    for (size_t f = 0; f < width; ++f) {
      factors.push_back(pool->Var(FreshVar(vars)));
    }
    sum.push_back(pool->MulS(std::move(factors)));
  }
  return pool->AddS(std::move(sum));
}

// Chain clause: x_0*x_1 + x_1*x_2 + ... + x_{len-1}*x_len over fresh
// adjacent variables. Non-hierarchical, so compilation Shannon-expands
// (mutex nodes) and exercises Substitute + the occurrence heuristic.
ExprId Chain(ExprPool* pool, VariableTable* vars, size_t len) {
  std::vector<VarId> xs;
  xs.reserve(len + 1);
  for (size_t i = 0; i <= len; ++i) xs.push_back(FreshVar(vars));
  std::vector<ExprId> sum;
  sum.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    sum.push_back(pool->MulS(pool->Var(xs[i]), pool->Var(xs[i + 1])));
  }
  return pool->AddS(std::move(sum));
}

// The skewed batch: `small` alternating read-once / chain annotations plus
// one giant annotation (an OR of many chains and read-once clauses).
struct Workload {
  ExprPool pool{SemiringKind::kBool};
  VariableTable vars;
  std::vector<ExprId> annotations;  // Last entry is the giant one.
};

void BuildSkewedBatch(Workload* w, size_t small, size_t giant_chains,
                      size_t chain_len) {
  for (size_t i = 0; i < small; ++i) {
    if (i % 2 == 0) {
      w->annotations.push_back(ReadOnceOr(&w->pool, &w->vars, 4, 3));
    } else {
      w->annotations.push_back(Chain(&w->pool, &w->vars, 8));
    }
  }
  // The giant: an OR of independent chains plus a read-once bulk. Each
  // chain compiles to a deep mutex subtree, so the giant's d-tree has many
  // medium-size independent branches -- the shape the intra-tree parallel
  // pass targets.
  std::vector<ExprId> parts;
  parts.reserve(giant_chains + 1);
  for (size_t c = 0; c < giant_chains; ++c) {
    parts.push_back(Chain(&w->pool, &w->vars, chain_len));
  }
  parts.push_back(ReadOnceOr(&w->pool, &w->vars, 4 * giant_chains, 3));
  w->annotations.push_back(w->pool.AddS(std::move(parts)));
}

// The engine's per-row step II pipeline (clone -> compile -> probability),
// identical to IsolatedCompileAndDistribution but with the d-tree size
// surfaced for the ns/node metric.
Distribution RowPipeline(const ExprPool& source, const VariableTable& vars,
                         ExprId annotation, size_t* dtree_nodes,
                         int intra_tree_threads = 0) {
  ExprPool local(source.semiring().kind());
  ExprId e = source.CloneInto(&local, annotation);
  DTree tree = CompileToDTree(&local, &vars, e, CompileOptions());
  *dtree_nodes += tree.size();
  ProbabilityOptions popts;
  popts.num_threads = intra_tree_threads;
  return ComputeDistribution(tree, vars, local.semiring(), popts);
}

int RunSkewedBatch(bool json, bool smoke, bool full) {
  size_t small = smoke ? 48 : (full ? 1024 : 384);
  size_t giant_chains = smoke ? 8 : (full ? 96 : 48);
  size_t chain_len = smoke ? 16 : 24;
  int runs = smoke ? 3 : 5;

  Workload w;
  BuildSkewedBatch(&w, small, giant_chains, chain_len);

  std::vector<double> reference;
  size_t dtree_nodes = 0;
  size_t allocations = 0;
  bool identical = true;

  auto stats = pvcdb_bench::TimeRuns(runs, [&](int run) {
    size_t nodes = 0;
    size_t allocs_before = g_allocations.load(std::memory_order_relaxed);
    std::vector<double> probs;
    probs.reserve(w.annotations.size());
    for (ExprId a : w.annotations) {
      probs.push_back(NonZeroMass(RowPipeline(w.pool, w.vars, a, &nodes)));
    }
    size_t allocs_after = g_allocations.load(std::memory_order_relaxed);
    if (run == 0) {
      reference = probs;
      dtree_nodes = nodes;
      allocations = allocs_after - allocs_before;
    } else if (probs != reference) {
      identical = false;
    }
  });

  double rows_per_second =
      stats.mean_seconds > 0 ? w.annotations.size() / stats.mean_seconds : 0;
  double ns_per_node =
      dtree_nodes > 0 ? stats.mean_seconds * 1e9 / dtree_nodes : 0;

  if (json) {
    pvcdb_bench::JsonParams params;
    params.Set("shards", 0)
        .Set("threads", 1)
        .Set("rows", static_cast<int64_t>(w.annotations.size()))
        .Set("giant_chains", static_cast<int64_t>(giant_chains))
        .Set("dtree_nodes", static_cast<int64_t>(dtree_nodes))
        .Set("pool_nodes", static_cast<int64_t>(w.pool.NumNodes()))
        .Set("rows_per_second", rows_per_second)
        .Set("ns_per_node", ns_per_node)
        .Set("allocations", static_cast<int64_t>(allocations))
        .Set("bit_identical", identical ? "true" : "false")
        .Set("hardware_threads",
             static_cast<int64_t>(pvcdb::DefaultThreadCount()));
    pvcdb_bench::PrintJsonRecord("hotpath_skewed_batch", params, stats);
  } else {
    pvcdb_bench::TablePrinter table({"rows", "dtree nodes", "mean s",
                                     "rows/s", "ns/node", "allocations"});
    table.PrintRow({std::to_string(w.annotations.size()),
                    std::to_string(dtree_nodes),
                    pvcdb_bench::FormatSeconds(stats.mean_seconds),
                    pvcdb_bench::FormatDouble(rows_per_second, 1),
                    pvcdb_bench::FormatDouble(ns_per_node, 1),
                    std::to_string(allocations)});
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: skewed-batch probabilities diverged across runs\n");
    return 1;
  }
  return 0;
}

int RunGiantTree(bool json, bool smoke, bool full) {
  size_t giant_chains = smoke ? 24 : (full ? 256 : 128);
  size_t chain_len = smoke ? 24 : 48;
  int runs = smoke ? 3 : 5;

  Workload w;
  BuildSkewedBatch(&w, 0, giant_chains, chain_len);
  ExprId giant = w.annotations.back();

  // Compile once; the sweep below isolates the probability pass.
  ExprPool local(w.pool.semiring().kind());
  ExprId e = w.pool.CloneInto(&local, giant);
  DTree tree = CompileToDTree(&local, &w.vars, e, CompileOptions());

  ProbabilityOptions serial_opts;
  Distribution serial =
      ComputeDistribution(tree, w.vars, local.semiring(), serial_opts);

  double serial_mean = 0.0;
  int exit_code = 0;
  for (int threads : {1, 2, 4, 8}) {
    bool identical = true;
    auto stats = pvcdb_bench::TimeRuns(runs, [&](int) {
      ProbabilityOptions popts;
      popts.num_threads = threads;
      Distribution d =
          ComputeDistribution(tree, w.vars, local.semiring(), popts);
      if (!(d.entries() == serial.entries())) identical = false;
    });
    if (threads == 1) serial_mean = stats.mean_seconds;
    double speedup =
        stats.mean_seconds > 0 ? serial_mean / stats.mean_seconds : 0;
    if (json) {
      pvcdb_bench::JsonParams params;
      params.Set("shards", 0)
          .Set("threads", threads)
          .Set("dtree_nodes", static_cast<int64_t>(tree.size()))
          .Set("speedup_vs_serial", speedup)
          .Set("bit_identical", identical ? "true" : "false")
          .Set("hardware_threads",
               static_cast<int64_t>(pvcdb::DefaultThreadCount()));
      pvcdb_bench::PrintJsonRecord("hotpath_giant_tree", params, stats);
    } else {
      if (threads == 1) {
        std::printf("giant d-tree: %zu nodes\n", tree.size());
      }
      std::printf("threads=%d mean=%.4fs speedup=%.2fx identical=%s\n",
                  threads, stats.mean_seconds, speedup,
                  identical ? "yes" : "no");
    }
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: intra-tree parallel distribution (threads=%d) "
                   "diverged from serial\n",
                   threads);
      exit_code = 1;
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = pvcdb_bench::JsonMode(argc, argv);
  bool smoke = pvcdb_bench::SmokeMode(argc, argv);
  bool full = pvcdb_bench::FullMode(argc, argv);
  int rc = RunSkewedBatch(json, smoke, full);
  rc |= RunGiantTree(json, smoke, full);
  return rc;
}
