// Experiment E (Figure 10 a, b): two-sided aggregate comparisons
// [Sum_AGGL ... theta Sum_AGGR ...] with different monoids per side,
// varying L at fixed R (a) and R at fixed L (b).
//
// Paper grid: #v=25, #cl=2, #l=2, maxv=200, theta is <=, runs=10, pairs
// MIN/MAX, MIN/COUNT, MAX/SUM; L (resp. R) from 50 to 2000.
//
// Expected shape (for MAX <= SUM): growing the MAX side makes the
// condition harder to satisfy and more terms must be compiled (time
// rises); growing the SUM side satisfies the comparison after a few mutex
// steps (time falls).

#include <iostream>

#include "bench/bench_util.h"
#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/workload/random_expr.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

struct MonoidPair {
  AggKind left;
  AggKind right;
  const char* label;
};

void RunSweep(const std::string& title, bool vary_left, int fixed,
              const std::vector<int>& grid, int num_vars, int runs) {
  std::cout << "\n### " << title << "\n\n";
  const MonoidPair pairs[] = {{AggKind::kMin, AggKind::kMax, "MIN/MAX"},
                              {AggKind::kMin, AggKind::kCount, "MIN/COUNT"},
                              {AggKind::kMax, AggKind::kSum, "MAX/SUM"}};
  TablePrinter table({vary_left ? "L" : "R", "MIN/MAX [s]", "MIN/COUNT [s]",
                      "MAX/SUM [s]"});
  for (int value : grid) {
    std::vector<std::string> row = {std::to_string(value)};
    for (const MonoidPair& pair : pairs) {
      RunStats stats = TimeRuns(runs, [&](int run) {
        ExprPool pool(SemiringKind::kBool);
        VariableTable vars;
        ExprGenParams params;
        params.num_vars = num_vars;
        params.terms_left = vary_left ? value : fixed;
        params.terms_right = vary_left ? fixed : value;
        params.clauses_per_term = 2;
        params.literals_per_clause = 2;
        params.max_value = 200;
        params.theta = CmpOp::kLe;
        params.agg_left = pair.left;
        params.agg_right = pair.right;
        GeneratedExpr gen = GenerateComparisonExpr(
            &pool, &vars, params,
            static_cast<uint64_t>(run) * 50021 + value * 3 +
                static_cast<uint64_t>(pair.left));
        DTree tree = CompileToDTree(&pool, &vars, gen.comparison);
        ComputeDistribution(tree, vars, pool.semiring());
      });
      row.push_back(FormatSeconds(stats.mean_seconds));
    }
    table.PrintRow(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool full = FullMode(argc, argv);
  std::cout << "# Experiment E (Figure 10): two-sided aggregations\n";
  const int num_vars = full ? 25 : 14;
  const int runs = full ? 10 : 3;
  const int fixed = full ? 150 : 60;
  std::vector<int> grid = full
      ? std::vector<int>{50, 100, 200, 400, 700, 1000, 1500, 2000}
      : std::vector<int>{25, 50, 100, 200, 400, 600};
  std::cout << "(#v=" << num_vars << ", #cl=2, #l=2, maxv=200, theta is <=, "
            << "runs=" << runs << ", fixed side=" << fixed << ")\n";
  RunSweep("Figure 10a: varying L (fixed R)", /*vary_left=*/true, fixed,
           grid, num_vars, runs);
  RunSweep("Figure 10b: varying R (fixed L)", /*vary_left=*/false, fixed,
           grid, num_vars, runs);
  return 0;
}
