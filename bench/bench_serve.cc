// bench_serve -- throughput/latency of the out-of-process serving path.
//
// Forks a pvcdb server (worker processes or --in-process reference mode),
// loads a synthetic tuple-independent table, then drives it with N
// concurrent shell clients each issuing M distributable chain queries.
// Reports aggregate qps and client-observed latency percentiles per
// (shards x clients) grid point, for both backend modes -- the spread
// between them is the socket + worker-process overhead.
//
// Every reply is also compared against the first reply byte for byte; any
// divergence across clients or modes fails the run (exit 1), so the smoke
// doubles as a serving bit-identity check.
//
// Two durability sweeps ride along:
//
//  - Mutation throughput/latency per fsync discipline: concurrent clients
//    stream inserts through a worker-process server running volatile,
//    fsync-per-mutation (--open), and group-commit (--open
//    --group-commit). The spread between the last two is what batching
//    the window's fsyncs buys.
//  - Resync cost, tail vs full: a durable coordinator over standalone
//    worker processes is restarted; surviving workers take the
//    WAL-shipping tail path (zero shipped entries), blank replacements
//    the full rebuild. Shipped entries/bytes and wall time per worker are
//    the series the resync-bytes trajectory gate tracks.
//
// And one fault-plane sweep: client-observed latency with every
// coordinator <-> worker frame routed through a seeded FaultProxy that
// delays 1% of frames (the fault_p99 record). Replies must stay
// distributed and bit-identical -- a merely flaky link may cost latency,
// never correctness or availability.
//
//   bench_serve [--smoke|--full] [--json]

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/coordinator.h"
#include "src/engine/shard.h"
#include "src/engine/shard_worker.h"
#include "src/engine/snapshot.h"
#include "src/net/fault.h"
#include "src/net/frame.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/query/parser.h"
#include "src/serve/server.h"
#include "src/util/metrics.h"
#include "src/util/timer.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

std::string WriteDataset(const std::string& dir, size_t rows) {
  std::string path = dir + "/bench.csv";
  std::ofstream f(path);
  f << "k:int,v:int,_prob\n";
  for (size_t i = 0; i < rows; ++i) {
    f << i << "," << (i * 37) % 1000 << ",0."
      << 3 + (i % 6) << "\n";
  }
  return path;
}

class Client {
 public:
  bool Connect(const std::string& address) {
    std::string error;
    sock_ = ConnectWithRetry(address, 250, &error);
    return sock_.valid();
  }
  bool Send(const std::string& line, std::string* text) {
    if (!SendFrame(&sock_, static_cast<uint8_t>(MsgKind::kClientCommand),
                   line)) {
      return false;
    }
    uint8_t kind = 0;
    std::string payload;
    if (RecvFrame(&sock_, &kind, &payload) != FrameResult::kOk ||
        static_cast<MsgKind>(kind) != MsgKind::kClientReply) {
      return false;
    }
    ClientReplyMsg reply;
    if (!ClientReplyMsg::Decode(payload, &reply)) return false;
    *text = reply.text;
    return true;
  }

 private:
  Socket sock_;
};

pid_t StartServer(const std::string& address, size_t shards, bool in_process,
                  const std::string& open_dir = "", int group_commit_ms = -1) {
  pid_t pid = fork();
  if (pid == 0) {
    ServerConfig config;
    config.listen_address = address;
    config.num_shards = shards;
    config.in_process = in_process;
    config.quiet = true;
    config.open_dir = open_dir;
    config.group_commit_ms = group_commit_ms;
    _exit(RunServer(config));
  }
  return pid;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  size_t index = static_cast<size_t>(p * (sorted->size() - 1));
  return (*sorted)[index];
}

struct GridResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_seconds = 0.0;
  double stddev_seconds = 0.0;
  bool ok = false;
};

GridResult RunGridPoint(const std::string& dir, const std::string& csv,
                        size_t shards, size_t num_clients, int requests,
                        bool in_process, std::string* expected) {
  GridResult result;
  const std::string address = dir + "/bench.sock";
  ::unlink(address.c_str());
  pid_t server = StartServer(address, shards, in_process);
  if (server <= 0) return result;

  const std::string query = "SELECT * FROM bench WHERE v >= 700";
  Client setup;
  std::string text;
  bool loaded = setup.Connect(address) &&
                setup.Send("load bench " + csv, &text) &&
                setup.Send(query, &text);  // Warm-up + reference reply.
  if (!loaded) {
    kill(server, SIGKILL);
    waitpid(server, nullptr, 0);
    return result;
  }
  if (expected->empty()) {
    *expected = text;
  } else if (*expected != text) {
    std::fprintf(stderr,
                 "bench_serve: reply diverged (shards=%zu, in_process=%d)\n",
                 shards, in_process ? 1 : 0);
    kill(server, SIGKILL);
    waitpid(server, nullptr, 0);
    return result;
  }

  std::mutex mu;
  std::vector<double> latencies;
  std::atomic<int> failures{0};
  WallTimer wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < num_clients; ++c) {
    threads.emplace_back([&]() {
      Client client;
      if (!client.Connect(address)) {
        ++failures;
        return;
      }
      std::vector<double> local;
      local.reserve(static_cast<size_t>(requests));
      std::string reply;
      for (int r = 0; r < requests; ++r) {
        WallTimer timer;
        if (!client.Send(query, &reply) || reply != *expected) {
          ++failures;
          return;
        }
        local.push_back(timer.ElapsedSeconds());
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  setup.Send("shutdown", &text);
  int status = -1;
  waitpid(server, &status, 0);
  if (failures.load() != 0 || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return result;
  }

  std::sort(latencies.begin(), latencies.end());
  result.qps = elapsed > 0.0 ? latencies.size() / elapsed : 0.0;
  result.p50_ms = Percentile(&latencies, 0.50) * 1000.0;
  result.p99_ms = Percentile(&latencies, 0.99) * 1000.0;
  RunStats stats = Summarize(latencies);
  result.mean_seconds = stats.mean_seconds;
  result.stddev_seconds = stats.stddev_seconds;
  result.ok = true;
  return result;
}

// One fsync discipline of the mutation sweep.
struct DurabilityMode {
  const char* name;
  bool durable;
  int group_commit_ms;
};

// Streams inserts from `num_clients` concurrent clients through a
// worker-process server under one fsync discipline. `tables_after`
// collects the final `tables` reply: the logical end state must not
// depend on the discipline.
GridResult RunMutationPoint(const std::string& dir, const std::string& csv,
                            size_t shards, size_t num_clients,
                            int mutations_per_client,
                            const DurabilityMode& mode,
                            std::string* tables_after) {
  GridResult result;
  const std::string address = dir + "/bench_mut.sock";
  ::unlink(address.c_str());
  std::string store;
  if (mode.durable) {
    store = dir + "/store_" + mode.name;
    std::string rm = "rm -rf '" + store + "'";
    if (std::system(rm.c_str()) != 0) return result;
  }
  pid_t server =
      StartServer(address, shards, /*in_process=*/false, store,
                  mode.group_commit_ms);
  if (server <= 0) return result;

  Client setup;
  std::string text;
  if (!setup.Connect(address) || !setup.Send("load bench " + csv, &text)) {
    kill(server, SIGKILL);
    waitpid(server, nullptr, 0);
    return result;
  }

  std::mutex mu;
  std::vector<double> latencies;
  std::atomic<int> failures{0};
  WallTimer wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c]() {
      Client client;
      if (!client.Connect(address)) {
        ++failures;
        return;
      }
      std::vector<double> local;
      local.reserve(static_cast<size_t>(mutations_per_client));
      std::string reply;
      // Distinct key ranges per client: every insert routes and applies
      // independently of the interleaving.
      const int base = 1000000 + static_cast<int>(c) * mutations_per_client;
      for (int r = 0; r < mutations_per_client; ++r) {
        const int key = base + r;
        std::string line = "insert bench " + std::to_string(key) + " " +
                           std::to_string((key * 37) % 1000) + " 0.5";
        WallTimer timer;
        if (!client.Send(line, &reply)) {
          ++failures;
          return;
        }
        local.push_back(timer.ElapsedSeconds());
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  bool state_ok = setup.Send("tables", tables_after);
  setup.Send("shutdown", &text);
  int status = -1;
  waitpid(server, &status, 0);
  if (failures.load() != 0 || !state_ok || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return result;
  }

  std::sort(latencies.begin(), latencies.end());
  result.qps = elapsed > 0.0 ? latencies.size() / elapsed : 0.0;
  result.p50_ms = Percentile(&latencies, 0.50) * 1000.0;
  result.p99_ms = Percentile(&latencies, 0.99) * 1000.0;
  RunStats stats = Summarize(latencies);
  result.mean_seconds = stats.mean_seconds;
  result.stddev_seconds = stats.stddev_seconds;
  result.ok = true;
  return result;
}

// ---------------------------------------------------------------------------
// Resync cost: WAL-shipping tail vs full rebuild.
// ---------------------------------------------------------------------------

struct ResyncPoint {
  double seconds = 0.0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
  bool ok = false;
};

pid_t StartStandaloneWorker(const std::string& address) {
  pid_t pid = fork();
  if (pid == 0) {
    _exit(ShardWorker::RunStandalone(address, /*quiet=*/true));
  }
  return pid;
}

std::vector<RemoteShard> DialWorkers(const std::vector<std::string>& addrs) {
  std::vector<RemoteShard> workers;
  for (size_t s = 0; s < addrs.size(); ++s) {
    std::string error;
    Socket sock = ConnectWithRetry(addrs[s], 250, &error);
    if (!sock.valid()) {
      std::fprintf(stderr, "bench_serve: dial %s: %s\n", addrs[s].c_str(),
                   error.c_str());
    }
    workers.emplace_back(static_cast<uint32_t>(s), std::move(sock), 0);
  }
  return workers;
}

Coordinator::WorkerSpawner RedialSpawner(std::vector<std::string> addrs) {
  return [addrs](uint32_t shard, RemoteShard* out,
                 std::string* error) -> bool {
    Socket sock = ConnectWithRetry(addrs[shard], 250, error);
    if (!sock.valid()) return false;
    *out = RemoteShard(shard, std::move(sock), 0);
    return true;
  };
}

// Sums the entries/bytes out of ReconcileWorkers' report lines; false when
// any worker failed or took the unexpected path.
bool SumResync(const std::vector<std::string>& lines, bool expect_full,
               ResyncPoint* point) {
  for (const std::string& line : lines) {
    const bool full = line.find("full resync") != std::string::npos;
    const bool tail = line.find("tail resync") != std::string::npos;
    if ((expect_full && !full) || (!expect_full && !tail)) {
      std::fprintf(stderr, "bench_serve: unexpected resync path: %s\n",
                   line.c_str());
      return false;
    }
    unsigned long long entries = 0;
    unsigned long long bytes = 0;
    size_t comma = line.find(", ");
    if (comma == std::string::npos ||
        std::sscanf(line.c_str() + comma, ", %llu entries, %llu bytes",
                    &entries, &bytes) != 2) {
      std::fprintf(stderr, "bench_serve: unparseable resync line: %s\n",
                   line.c_str());
      return false;
    }
    point->entries += entries;
    point->bytes += bytes;
  }
  return true;
}

// Builds a durable coordinator state of `rows` base rows + `mutations`
// inserts over standalone workers, then measures both recovery paths:
// reconnecting the SAME workers (tail: chain proof passes, nothing to
// ship) and blank replacements (full rebuild).
bool RunResyncPoints(const std::string& dir, size_t shards, size_t rows,
                     int mutations, ResyncPoint* tail, ResyncPoint* full) {
  std::vector<std::string> addrs;
  std::vector<pid_t> pids;
  for (size_t s = 0; s < shards; ++s) {
    addrs.push_back(dir + "/resync_w" + std::to_string(s) + ".sock");
    ::unlink(addrs.back().c_str());
    pid_t pid = StartStandaloneWorker(addrs.back());
    if (pid <= 0) return false;
    pids.push_back(pid);
  }

  DurableConfig dcfg;
  dcfg.dir = dir + "/resync_store";
  std::string rm = "rm -rf '" + dcfg.dir + "'";
  if (std::system(rm.c_str()) != 0) return false;

  bool ok = false;
  {
    auto coordinator = std::make_unique<Coordinator>(
        SemiringKind::kBool, DialWorkers(addrs), RedialSpawner(addrs));
    std::string error;
    std::unique_ptr<DurableSession> session =
        DurableSession::CreateAttached(dcfg, coordinator.get(), &error);
    if (session == nullptr) {
      std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
    } else {
      Schema schema({{"k", CellType::kInt}, {"v", CellType::kInt}});
      std::vector<std::vector<Cell>> cells;
      std::vector<double> probs;
      for (size_t i = 0; i < rows; ++i) {
        cells.push_back({Cell(static_cast<int64_t>(i)),
                         Cell(static_cast<int64_t>((i * 37) % 1000))});
        probs.push_back(0.3 + 0.1 * (i % 6));
      }
      coordinator->AddTupleIndependentTable("bench", schema, cells, probs);
      for (int m = 0; m < mutations; ++m) {
        coordinator->InsertTuple(
            "bench",
            {Cell(static_cast<int64_t>(1000000 + m)),
             Cell(static_cast<int64_t>((m * 37) % 1000))},
            0.5);
      }
      ok = true;
    }
    session.reset();
    coordinator.reset();  // Front-end gone; workers keep their state.
  }
  if (!ok) return false;

  // Tail path: the same worker processes reconnect.
  {
    WallTimer timer;
    auto coordinator = std::make_unique<Coordinator>(
        SemiringKind::kBool, DialWorkers(addrs), RedialSpawner(addrs));
    std::string error;
    std::unique_ptr<DurableSession> session =
        DurableSession::RecoverAttached(dcfg, coordinator.get(), &error);
    if (session == nullptr) {
      std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
      return false;
    }
    std::vector<std::string> lines;
    coordinator->ReconcileWorkers(&lines);
    tail->seconds = timer.ElapsedSeconds();
    if (!SumResync(lines, /*expect_full=*/false, tail)) return false;
    tail->ok = true;
    session.reset();
    coordinator.reset();
  }
  for (pid_t pid : pids) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
  }

  // Full path: blank replacement workers.
  std::vector<std::string> fresh_addrs;
  std::vector<pid_t> fresh_pids;
  for (size_t s = 0; s < shards; ++s) {
    fresh_addrs.push_back(dir + "/resync_f" + std::to_string(s) + ".sock");
    ::unlink(fresh_addrs.back().c_str());
    pid_t pid = StartStandaloneWorker(fresh_addrs.back());
    if (pid <= 0) return false;
    fresh_pids.push_back(pid);
  }
  {
    WallTimer timer;
    auto coordinator = std::make_unique<Coordinator>(
        SemiringKind::kBool, DialWorkers(fresh_addrs),
        RedialSpawner(fresh_addrs));
    std::string error;
    std::unique_ptr<DurableSession> session =
        DurableSession::RecoverAttached(dcfg, coordinator.get(), &error);
    if (session == nullptr) {
      std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
      return false;
    }
    std::vector<std::string> lines;
    coordinator->ReconcileWorkers(&lines);
    full->seconds = timer.ElapsedSeconds();
    if (!SumResync(lines, /*expect_full=*/true, full)) return false;
    full->ok = true;
    coordinator->Shutdown();
    session.reset();
    coordinator.reset();
  }
  for (pid_t pid : fresh_pids) waitpid(pid, nullptr, 0);
  // The tail path must actually be the cheap one.
  if (tail->entries != 0 || full->entries == 0) {
    std::fprintf(stderr,
                 "bench_serve: resync paths inverted (tail %llu entries, "
                 "full %llu entries)\n",
                 static_cast<unsigned long long>(tail->entries),
                 static_cast<unsigned long long>(full->entries));
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Flaky-link latency: the fault_p99 record.
// ---------------------------------------------------------------------------

// Runs `requests` distributable chain queries over a coordinator whose
// every worker link passes through a FaultProxy delaying each frame by
// `delay_ms` with probability `probability` (seeded per shard, so the
// schedule is reproducible). Every reply must stay distributed -- the
// delays sit far under the RPC deadline -- and bit-identical to the first.
bool RunFaultPoint(const std::string& dir, size_t shards, size_t rows,
                   int requests, double probability, uint64_t delay_ms,
                   GridResult* result) {
  std::vector<std::string> worker_addrs;
  std::vector<std::string> proxy_addrs;
  std::vector<pid_t> pids;
  std::vector<std::unique_ptr<FaultProxy>> proxies;
  bool ok = true;
  for (size_t s = 0; s < shards; ++s) {
    worker_addrs.push_back(dir + "/fault_w" + std::to_string(s) + ".sock");
    proxy_addrs.push_back(dir + "/fault_p" + std::to_string(s) + ".sock");
    ::unlink(worker_addrs.back().c_str());
    ::unlink(proxy_addrs.back().c_str());
    pid_t pid = StartStandaloneWorker(worker_addrs.back());
    if (pid <= 0) return false;
    pids.push_back(pid);
    FaultSchedule schedule;
    schedule.delay_probability = probability;
    schedule.delay_ms = delay_ms;
    schedule.seed = 0x5eedf417 + s;
    proxies.push_back(std::make_unique<FaultProxy>());
    std::string error;
    if (!proxies.back()->Start(proxy_addrs.back(), worker_addrs.back(),
                               schedule, &error)) {
      std::fprintf(stderr, "bench_serve: fault proxy: %s\n", error.c_str());
      ok = false;
      break;
    }
  }

  if (ok) {
    auto coordinator = std::make_unique<Coordinator>(
        SemiringKind::kBool, DialWorkers(proxy_addrs),
        RedialSpawner(worker_addrs));
    FaultToleranceOptions ft;
    ft.rpc_deadline_ms = 10000;  // Armed, but far above any injected delay.
    coordinator->ConfigureFaultTolerance(ft);

    Schema schema({{"k", CellType::kInt}, {"v", CellType::kInt}});
    std::vector<std::vector<Cell>> cells;
    std::vector<double> probs;
    for (size_t i = 0; i < rows; ++i) {
      cells.push_back({Cell(static_cast<int64_t>(i)),
                       Cell(static_cast<int64_t>((i * 37) % 1000))});
      probs.push_back(0.3 + 0.1 * (i % 6));
    }
    coordinator->AddTupleIndependentTable("bench", schema, cells, probs);

    ParseResult parsed = ParseQuery("SELECT * FROM bench WHERE v >= 700");
    if (!parsed.ok()) {
      ok = false;
    } else {
      QueryRun reference = coordinator->Run(*parsed.query);
      ok = reference.distributed;
      std::vector<double> latencies;
      latencies.reserve(static_cast<size_t>(requests));
      WallTimer wall;
      for (int r = 0; ok && r < requests; ++r) {
        WallTimer timer;
        QueryRun run = coordinator->Run(*parsed.query);
        latencies.push_back(timer.ElapsedSeconds());
        if (!run.distributed || run.text != reference.text ||
            run.probabilities != reference.probabilities) {
          std::fprintf(stderr,
                       "bench_serve: flaky-link reply degraded or "
                       "diverged at request %d\n",
                       r);
          ok = false;
        }
      }
      if (ok) {
        const double elapsed = wall.ElapsedSeconds();
        std::sort(latencies.begin(), latencies.end());
        result->qps = elapsed > 0.0 ? latencies.size() / elapsed : 0.0;
        result->p50_ms = Percentile(&latencies, 0.50) * 1000.0;
        result->p99_ms = Percentile(&latencies, 0.99) * 1000.0;
        RunStats stats = Summarize(latencies);
        result->mean_seconds = stats.mean_seconds;
        result->stddev_seconds = stats.stddev_seconds;
        result->ok = true;
      }
    }
    coordinator->Shutdown();
    coordinator.reset();
  }
  for (auto& proxy : proxies) proxy->Stop();
  for (pid_t pid : pids) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeMode(argc, argv);
  const bool full = FullMode(argc, argv);
  const bool json = JsonMode(argc, argv);

  const size_t rows = smoke ? 200 : full ? 20000 : 2000;
  const int requests = smoke ? 20 : full ? 200 : 60;
  const std::vector<size_t> shard_grid =
      smoke ? std::vector<size_t>{2} : std::vector<size_t>{1, 2, 4};
  const std::vector<size_t> client_grid =
      smoke ? std::vector<size_t>{4} : std::vector<size_t>{1, 4, 8};

  char tmpl[] = "/tmp/pvcdb_bench_serve_XXXXXX";
  char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "bench_serve: mkdtemp failed\n");
    return 1;
  }
  const std::string csv = WriteDataset(dir, rows);

  // Markdown tables only outside --json: their header rows would corrupt
  // the JSON-lines trajectory file.
  std::unique_ptr<TablePrinter> table;
  if (!json) {
    table = std::make_unique<TablePrinter>(std::vector<std::string>{
        "mode", "shards", "clients", "requests", "qps", "p50_ms", "p99_ms"});
  }
  // One reference reply across every grid point and both modes: the bench
  // is also a serving bit-identity check.
  std::string expected;
  bool failed = false;
  for (bool in_process : {true, false}) {
    for (size_t shards : shard_grid) {
      for (size_t clients : client_grid) {
        GridResult r = RunGridPoint(dir, csv, shards, clients, requests,
                                    in_process, &expected);
        if (!r.ok) {
          failed = true;
          continue;
        }
        const char* mode = in_process ? "in-process" : "workers";
        if (json) {
          JsonParams params;
          params.Set("mode", mode)
              .Set("shards", static_cast<int64_t>(shards))
              .Set("clients", static_cast<int64_t>(clients))
              .Set("requests", static_cast<int64_t>(clients) * requests)
              .Set("rows", static_cast<int64_t>(rows))
              .Set("qps", r.qps)
              .Set("p50_ms", r.p50_ms)
              .Set("p99_ms", r.p99_ms);
          RunStats stats;
          stats.mean_seconds = r.mean_seconds;
          stats.stddev_seconds = r.stddev_seconds;
          PrintJsonRecord("serve", params, stats);
        } else {
          table->PrintRow({mode, std::to_string(shards),
                          std::to_string(clients),
                          std::to_string(static_cast<size_t>(requests) *
                                         clients),
                          FormatDouble(r.qps, 1), FormatDouble(r.p50_ms, 3),
                          FormatDouble(r.p99_ms, 3)});
        }
      }
    }
  }
  // Instrumentation overhead, in two parts.
  //
  // Reply invariance: one worker-process grid point with the runtime kill
  // switch thrown (the forked server inherits the flag across fork). Its
  // replies are checked byte for byte against the same `expected` as
  // every metrics-on point above -- flipping the switch may not change a
  // single reply byte.
  //
  // The overhead number itself cannot come from forked-server qps: a
  // fork-serve-kill cycle swings tens of percent run to run (scheduler,
  // page cache, frequency scaling -- measured far above any real
  // instrumentation cost even with this binary's metrics compiled out).
  // So the <= 5% gate (--metric overhead-pct) tracks a controlled paired
  // loop instead: the same command pipeline the poll loop runs per
  // request (CommandTraceScope, command counter, ExecuteCommand, encode
  // span, reply encode) driven in-process, alternating metrics on/off
  // batches, best batch time per side. Alternation cancels warm-up bias;
  // best-of filters transient slowdowns, which only ever add time.
  {
    const size_t overhead_shards = 2;
    SetMetricsEnabled(false);
    GridResult off_grid = RunGridPoint(dir, csv, overhead_shards, 4,
                                       smoke ? 40 : 120,
                                       /*in_process=*/false, &expected);
    SetMetricsEnabled(true);
    if (!off_grid.ok) failed = true;

    const int batch = smoke ? 200 : full ? 800 : 400;
    const int trials = 5;
    ShardedDatabase db(overhead_shards);
    InProcessBackend backend(&db);
    bool shutdown = false;
    const std::string query = "SELECT * FROM bench WHERE v >= 700";
    ExecuteCommand(&backend, "load bench " + csv, &shutdown);
    size_t sink = 0;
    auto run_batch = [&](int n) {
      WallTimer timer;
      for (int i = 0; i < n; ++i) {
        CommandTraceScope trace_scope(query);
        PVCDB_COUNTER_ADD("server.commands", 1);
        ClientReplyMsg reply = ExecuteCommand(&backend, query, &shutdown);
        PVCDB_SPAN(encode_span, "encode");
        sink += reply.Encode().size();
      }
      return timer.ElapsedSeconds();
    };
    run_batch(batch / 2);  // Warm-up: caches filled, pools sized.
    double best_on = 0.0, best_off = 0.0;
    for (int t = 0; t < trials; ++t) {
      for (bool enabled : {t % 2 == 0, t % 2 != 0}) {
        SetMetricsEnabled(enabled);
        double seconds = run_batch(batch);
        SetMetricsEnabled(true);
        double& best = enabled ? best_on : best_off;
        if (best == 0.0 || seconds < best) best = seconds;
      }
    }
    if (sink == 0 || best_on <= 0.0 || best_off <= 0.0) {
      failed = true;
    } else {
      const double qps_on = batch / best_on;
      const double qps_off = batch / best_off;
      const double overhead_pct = (qps_off - qps_on) / qps_off * 100.0;
      if (json) {
        JsonParams params;
        params.Set("shards", static_cast<int64_t>(overhead_shards))
            .Set("threads", 0)
            .Set("requests", static_cast<int64_t>(batch))
            .Set("trials", static_cast<int64_t>(trials))
            .Set("qps_on", qps_on)
            .Set("qps_off", qps_off)
            .Set("overhead_pct", overhead_pct);
        RunStats stats;
        stats.mean_seconds = best_on / batch;
        stats.stddev_seconds = 0.0;
        PrintJsonRecord("metrics_overhead", params, stats);
      } else {
        TablePrinter overhead_table(std::vector<std::string>{
            "metrics", "shards", "batch", "qps", "overhead_pct"});
        overhead_table.PrintRow({"on", std::to_string(overhead_shards),
                                 std::to_string(batch),
                                 FormatDouble(qps_on, 1),
                                 FormatDouble(overhead_pct, 2)});
        overhead_table.PrintRow({"off", std::to_string(overhead_shards),
                                 std::to_string(batch),
                                 FormatDouble(qps_off, 1), "0.00"});
      }
    }
  }

  // Mutation throughput/latency per fsync discipline. The logical end
  // state (the `tables` reply) must not depend on the discipline.
  const int mutations = smoke ? 25 : full ? 250 : 75;
  const size_t mutation_clients = 4;
  const size_t mutation_shards = 2;
  const std::vector<DurabilityMode> modes = {
      {"volatile", false, -1},
      {"fsync", true, -1},
      {"group-commit", true, 2},
  };
  std::unique_ptr<TablePrinter> mutation_table;
  if (!json) {
    mutation_table = std::make_unique<TablePrinter>(std::vector<std::string>{
        "durability", "shards", "clients", "mutations", "qps", "p50_ms",
        "p99_ms"});
  }
  std::string tables_reference;
  for (const DurabilityMode& mode : modes) {
    std::string tables_after;
    GridResult r =
        RunMutationPoint(dir, csv, mutation_shards, mutation_clients,
                         mutations, mode, &tables_after);
    if (!r.ok) {
      failed = true;
      continue;
    }
    if (tables_reference.empty()) {
      tables_reference = tables_after;
    } else if (tables_reference != tables_after) {
      std::fprintf(stderr,
                   "bench_serve: end state diverged under durability=%s\n",
                   mode.name);
      failed = true;
      continue;
    }
    if (json) {
      JsonParams params;
      params.Set("durability", mode.name)
          .Set("shards", static_cast<int64_t>(mutation_shards))
          .Set("threads", 0)
          .Set("clients", static_cast<int64_t>(mutation_clients))
          .Set("mutations",
               static_cast<int64_t>(mutation_clients) * mutations)
          .Set("qps", r.qps)
          .Set("p50_ms", r.p50_ms)
          .Set("p99_ms", r.p99_ms);
      RunStats stats;
      stats.mean_seconds = r.mean_seconds;
      stats.stddev_seconds = r.stddev_seconds;
      PrintJsonRecord("serve_mutation", params, stats);
    } else {
      mutation_table->PrintRow(
          {mode.name, std::to_string(mutation_shards),
           std::to_string(mutation_clients),
           std::to_string(mutation_clients * static_cast<size_t>(mutations)),
           FormatDouble(r.qps, 1), FormatDouble(r.p50_ms, 3),
           FormatDouble(r.p99_ms, 3)});
    }
  }

  // Resync cost: WAL-shipping tail (surviving workers) vs full rebuild
  // (blank replacements) after a coordinator restart on the same WAL.
  ResyncPoint tail;
  ResyncPoint fullsync;
  if (RunResyncPoints(dir, mutation_shards, rows, mutations, &tail,
                      &fullsync)) {
    std::unique_ptr<TablePrinter> resync_table;
    if (!json) {
      resync_table = std::make_unique<TablePrinter>(std::vector<std::string>{
          "path", "shards", "entries", "bytes", "seconds"});
    }
    struct {
      const char* name;
      const ResyncPoint* point;
    } paths[] = {{"resync_tail", &tail}, {"resync_full", &fullsync}};
    for (const auto& p : paths) {
      if (json) {
        JsonParams params;
        params.Set("shards", static_cast<int64_t>(mutation_shards))
            .Set("threads", 0)
            .Set("rows", static_cast<int64_t>(rows))
            .Set("mutations", static_cast<int64_t>(mutations))
            .Set("resync_entries", static_cast<int64_t>(p.point->entries))
            .Set("resync_bytes", static_cast<int64_t>(p.point->bytes));
        RunStats stats;
        stats.mean_seconds = p.point->seconds;
        PrintJsonRecord(p.name, params, stats);
      } else {
        resync_table->PrintRow({p.name, std::to_string(mutation_shards),
                               std::to_string(p.point->entries),
                               std::to_string(p.point->bytes),
                               FormatSeconds(p.point->seconds)});
      }
    }
  } else {
    failed = true;
  }

  // Client-observed latency on a flaky link: 1% of frames delayed 2ms by
  // a seeded per-shard FaultProxy. Availability and bit-identity must
  // survive; the p99 spread vs the clean serve records is the cost.
  {
    const double delay_probability = 0.01;
    const uint64_t delay_ms = 2;
    GridResult r;
    if (RunFaultPoint(dir, mutation_shards, rows, requests,
                      delay_probability, delay_ms, &r) &&
        r.ok) {
      if (json) {
        JsonParams params;
        params.Set("shards", static_cast<int64_t>(mutation_shards))
            .Set("threads", 0)
            .Set("rows", static_cast<int64_t>(rows))
            .Set("requests", static_cast<int64_t>(requests))
            .Set("delay_probability", delay_probability)
            .Set("delay_ms", static_cast<int64_t>(delay_ms))
            .Set("qps", r.qps)
            .Set("p50_ms", r.p50_ms)
            .Set("p99_ms", r.p99_ms);
        RunStats stats;
        stats.mean_seconds = r.mean_seconds;
        stats.stddev_seconds = r.stddev_seconds;
        PrintJsonRecord("fault_p99", params, stats);
      } else {
        TablePrinter fault_table(std::vector<std::string>{
            "link", "shards", "requests", "qps", "p50_ms", "p99_ms"});
        fault_table.PrintRow({"flaky-1pct", std::to_string(mutation_shards),
                              std::to_string(requests),
                              FormatDouble(r.qps, 1),
                              FormatDouble(r.p50_ms, 3),
                              FormatDouble(r.p99_ms, 3)});
      }
    } else {
      failed = true;
    }
  }

  std::string cleanup = std::string("rm -rf '") + dir + "'";
  if (std::system(cleanup.c_str()) != 0) {
    // Best-effort cleanup.
  }
  if (failed) {
    std::fprintf(stderr, "bench_serve: FAILED (transport error or reply "
                         "divergence)\n");
    return 1;
  }
  return 0;
}
