// bench_serve -- throughput/latency of the out-of-process serving path.
//
// Forks a pvcdb server (worker processes or --in-process reference mode),
// loads a synthetic tuple-independent table, then drives it with N
// concurrent shell clients each issuing M distributable chain queries.
// Reports aggregate qps and client-observed latency percentiles per
// (shards x clients) grid point, for both backend modes -- the spread
// between them is the socket + worker-process overhead.
//
// Every reply is also compared against the first reply byte for byte; any
// divergence across clients or modes fails the run (exit 1), so the smoke
// doubles as a serving bit-identity check.
//
//   bench_serve [--smoke|--full] [--json]

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/frame.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/serve/server.h"
#include "src/util/timer.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

std::string WriteDataset(const std::string& dir, size_t rows) {
  std::string path = dir + "/bench.csv";
  std::ofstream f(path);
  f << "k:int,v:int,_prob\n";
  for (size_t i = 0; i < rows; ++i) {
    f << i << "," << (i * 37) % 1000 << ",0."
      << 3 + (i % 6) << "\n";
  }
  return path;
}

class Client {
 public:
  bool Connect(const std::string& address) {
    std::string error;
    sock_ = ConnectWithRetry(address, 250, &error);
    return sock_.valid();
  }
  bool Send(const std::string& line, std::string* text) {
    if (!SendFrame(&sock_, static_cast<uint8_t>(MsgKind::kClientCommand),
                   line)) {
      return false;
    }
    uint8_t kind = 0;
    std::string payload;
    if (RecvFrame(&sock_, &kind, &payload) != FrameResult::kOk ||
        static_cast<MsgKind>(kind) != MsgKind::kClientReply) {
      return false;
    }
    ClientReplyMsg reply;
    if (!ClientReplyMsg::Decode(payload, &reply)) return false;
    *text = reply.text;
    return true;
  }

 private:
  Socket sock_;
};

pid_t StartServer(const std::string& address, size_t shards,
                  bool in_process) {
  pid_t pid = fork();
  if (pid == 0) {
    ServerConfig config;
    config.listen_address = address;
    config.num_shards = shards;
    config.in_process = in_process;
    config.quiet = true;
    _exit(RunServer(config));
  }
  return pid;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  size_t index = static_cast<size_t>(p * (sorted->size() - 1));
  return (*sorted)[index];
}

struct GridResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_seconds = 0.0;
  double stddev_seconds = 0.0;
  bool ok = false;
};

GridResult RunGridPoint(const std::string& dir, const std::string& csv,
                        size_t shards, size_t num_clients, int requests,
                        bool in_process, std::string* expected) {
  GridResult result;
  const std::string address = dir + "/bench.sock";
  ::unlink(address.c_str());
  pid_t server = StartServer(address, shards, in_process);
  if (server <= 0) return result;

  const std::string query = "SELECT * FROM bench WHERE v >= 700";
  Client setup;
  std::string text;
  bool loaded = setup.Connect(address) &&
                setup.Send("load bench " + csv, &text) &&
                setup.Send(query, &text);  // Warm-up + reference reply.
  if (!loaded) {
    kill(server, SIGKILL);
    waitpid(server, nullptr, 0);
    return result;
  }
  if (expected->empty()) {
    *expected = text;
  } else if (*expected != text) {
    std::fprintf(stderr,
                 "bench_serve: reply diverged (shards=%zu, in_process=%d)\n",
                 shards, in_process ? 1 : 0);
    kill(server, SIGKILL);
    waitpid(server, nullptr, 0);
    return result;
  }

  std::mutex mu;
  std::vector<double> latencies;
  std::atomic<int> failures{0};
  WallTimer wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < num_clients; ++c) {
    threads.emplace_back([&]() {
      Client client;
      if (!client.Connect(address)) {
        ++failures;
        return;
      }
      std::vector<double> local;
      local.reserve(static_cast<size_t>(requests));
      std::string reply;
      for (int r = 0; r < requests; ++r) {
        WallTimer timer;
        if (!client.Send(query, &reply) || reply != *expected) {
          ++failures;
          return;
        }
        local.push_back(timer.ElapsedSeconds());
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  setup.Send("shutdown", &text);
  int status = -1;
  waitpid(server, &status, 0);
  if (failures.load() != 0 || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return result;
  }

  std::sort(latencies.begin(), latencies.end());
  result.qps = elapsed > 0.0 ? latencies.size() / elapsed : 0.0;
  result.p50_ms = Percentile(&latencies, 0.50) * 1000.0;
  result.p99_ms = Percentile(&latencies, 0.99) * 1000.0;
  RunStats stats = Summarize(latencies);
  result.mean_seconds = stats.mean_seconds;
  result.stddev_seconds = stats.stddev_seconds;
  result.ok = true;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeMode(argc, argv);
  const bool full = FullMode(argc, argv);
  const bool json = JsonMode(argc, argv);

  const size_t rows = smoke ? 200 : full ? 20000 : 2000;
  const int requests = smoke ? 20 : full ? 200 : 60;
  const std::vector<size_t> shard_grid =
      smoke ? std::vector<size_t>{2} : std::vector<size_t>{1, 2, 4};
  const std::vector<size_t> client_grid =
      smoke ? std::vector<size_t>{4} : std::vector<size_t>{1, 4, 8};

  char tmpl[] = "/tmp/pvcdb_bench_serve_XXXXXX";
  char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "bench_serve: mkdtemp failed\n");
    return 1;
  }
  const std::string csv = WriteDataset(dir, rows);

  TablePrinter table(
      {"mode", "shards", "clients", "requests", "qps", "p50_ms", "p99_ms"});
  // One reference reply across every grid point and both modes: the bench
  // is also a serving bit-identity check.
  std::string expected;
  bool failed = false;
  for (bool in_process : {true, false}) {
    for (size_t shards : shard_grid) {
      for (size_t clients : client_grid) {
        GridResult r = RunGridPoint(dir, csv, shards, clients, requests,
                                    in_process, &expected);
        if (!r.ok) {
          failed = true;
          continue;
        }
        const char* mode = in_process ? "in-process" : "workers";
        if (json) {
          JsonParams params;
          params.Set("mode", mode)
              .Set("shards", static_cast<int64_t>(shards))
              .Set("clients", static_cast<int64_t>(clients))
              .Set("requests", static_cast<int64_t>(clients) * requests)
              .Set("rows", static_cast<int64_t>(rows))
              .Set("qps", r.qps)
              .Set("p50_ms", r.p50_ms)
              .Set("p99_ms", r.p99_ms);
          RunStats stats;
          stats.mean_seconds = r.mean_seconds;
          stats.stddev_seconds = r.stddev_seconds;
          PrintJsonRecord("serve", params, stats);
        } else {
          table.PrintRow({mode, std::to_string(shards),
                          std::to_string(clients),
                          std::to_string(static_cast<size_t>(requests) *
                                         clients),
                          FormatDouble(r.qps, 1), FormatDouble(r.p50_ms, 3),
                          FormatDouble(r.p99_ms, 3)});
        }
      }
    }
  }
  std::string cleanup = std::string("rm -rf '") + dir + "'";
  if (std::system(cleanup.c_str()) != 0) {
    // Best-effort cleanup.
  }
  if (failed) {
    std::fprintf(stderr, "bench_serve: FAILED (transport error or reply "
                         "divergence)\n");
    return 1;
  }
  return 0;
}
