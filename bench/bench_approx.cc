// Anytime approximation (the paper's pointer to [18]): interval width and
// wall-clock time as a function of the compilation budget, on hard
// (non-read-once) expressions where exact compilation is expensive.
// Expected shape: width decreases monotonically with budget, reaching 0 at
// full compilation; time grows roughly linearly in the consumed budget --
// the anytime trade-off.

#include <iostream>

#include "bench/bench_util.h"
#include "src/dtree/approximate.h"
#include "src/workload/random_expr.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

}  // namespace

int main(int argc, char** argv) {
  bool full = FullMode(argc, argv);
  const int runs = full ? 10 : 3;
  const int num_vars = full ? 24 : 18;
  const int terms = full ? 80 : 50;
  std::cout << "# Anytime approximation: bounds width vs budget\n";
  std::cout << "(#v=" << num_vars << ", L=" << terms
            << ", #cl=2, #l=2, MIN workload, theta is =, c=3, runs=" << runs
            << ")\n\n";

  TablePrinter table({"budget", "mean width", "time [s]"});
  for (size_t budget : {16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u,
                        262144u, 1048576u}) {
    double width_sum = 0.0;
    RunStats stats = TimeRuns(runs, [&](int run) {
      ExprPool pool(SemiringKind::kBool);
      VariableTable vars;
      ExprGenParams params;
      params.num_vars = num_vars;
      params.terms_left = terms;
      params.clauses_per_term = 2;
      params.literals_per_clause = 2;
      params.max_value = 5;
      params.constant = 3;
      params.theta = CmpOp::kEq;
      params.agg_left = AggKind::kMin;
      GeneratedExpr gen = GenerateComparisonExpr(
          &pool, &vars, params, static_cast<uint64_t>(run) * 7 + 3);
      ApproximateOptions options;
      options.node_budget = budget;
      ProbabilityBounds b =
          ApproximateProbability(&pool, vars, gen.comparison, options);
      width_sum += b.Width();
    });
    table.PrintRow({std::to_string(budget),
                    FormatDouble(width_sum / runs, 5),
                    FormatSeconds(stats.mean_seconds)});
  }
  return 0;
}
