// Sharded scatter-gather scaling curve (src/engine/shard.h): end-to-end
// query evaluation + batch probability computation over a tuple-independent
// table, swept over shards x threads.
//
// Two series:
//   shard_query  -- GroupAgg COUNT per group (coordinator gather) followed
//                   by the scatter-gather TupleProbabilities pass: the
//                   step II d-tree work per group fans across threads.
//   shard_select -- a distributed Select chain (per-shard step I) followed
//                   by the scatter-gather pass over the surviving rows.
//
// Throughput is reported as base-table rows per second through the full
// pipeline. Every configuration's probabilities are compared bit-for-bit
// against the shards=1, threads=1 reference; any divergence fails the run.
// CI captures the JSON-lines output as BENCH_shard.json and gates the
// normalized 4-way throughput against the committed baseline
// (scripts/check_bench_trajectory.py).
//
// Flags: --smoke (tiny grid, for ctest), --full (larger grid), --json.

#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/shard.h"
#include "src/query/ast.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

struct Config {
  int64_t rows;
  int64_t groups;
  int runs;
  std::vector<size_t> shard_grid;
  std::vector<int> thread_grid;
};

void LoadTable(ShardedDatabase* db, const Config& config) {
  Rng rng(424242);
  Schema schema({{"id", CellType::kInt},
                 {"g", CellType::kInt},
                 {"v", CellType::kInt}});
  std::vector<std::vector<Cell>> rows;
  std::vector<double> probs;
  rows.reserve(config.rows);
  for (int64_t i = 0; i < config.rows; ++i) {
    rows.push_back({Cell(i), Cell(i % config.groups),
                    Cell(rng.UniformInt(0, 100))});
    probs.push_back(rng.UniformDouble(0.05, 0.95));
  }
  db->AddTupleIndependentTable("T", schema, std::move(rows),
                               std::move(probs));
}

struct SeriesPoint {
  RunStats stats;
  std::vector<double> probabilities;
};

// One configuration of one series: returns timing and the probabilities of
// the final run for the bit-identity check.
SeriesPoint Measure(const Config& config, size_t shards, int threads,
                    const Query& query) {
  ShardedDatabase db(shards);
  LoadTable(&db, config);
  db.eval_options().num_threads = threads;
  SeriesPoint point;
  point.stats = TimeRuns(config.runs, [&](int) {
    ShardedResult result = db.Run(query);
    point.probabilities = db.TupleProbabilities(result);
  });
  return point;
}

// Sweeps one series over the shards x threads grid; dies on any bitwise
// divergence from the serial single-shard reference.
void RunSeries(const char* name, const Config& config, const Query& query,
               bool json) {
  std::vector<double> reference;
  std::unique_ptr<TablePrinter> table;
  if (!json) {
    std::cout << "\n### " << name << " (rows=" << config.rows
              << ", groups=" << config.groups << ", runs=" << config.runs
              << ")\n\n";
    table = std::make_unique<TablePrinter>(std::vector<std::string>{
        "shards", "threads", "time [s]", "rows/s", "speedup",
        "bit-identical"});
  }
  double base_seconds = 0.0;
  for (size_t shards : config.shard_grid) {
    for (int threads : config.thread_grid) {
      SeriesPoint point = Measure(config, shards, threads, query);
      bool is_reference = reference.empty();
      if (is_reference) {
        reference = point.probabilities;
        base_seconds = point.stats.mean_seconds;
      }
      bool identical = point.probabilities == reference;
      double rows_per_second =
          point.stats.mean_seconds > 0.0
              ? static_cast<double>(config.rows) / point.stats.mean_seconds
              : 0.0;
      double speedup = point.stats.mean_seconds > 0.0
                           ? base_seconds / point.stats.mean_seconds
                           : 0.0;
      if (json) {
        JsonParams params;
        params.Set("shards", static_cast<int64_t>(shards))
            .Set("threads", threads)
            .Set("rows", config.rows)
            .Set("groups", config.groups)
            .Set("rows_per_second", rows_per_second)
            .Set("speedup_vs_serial", speedup)
            .Set("bit_identical", identical ? "true" : "false")
            .Set("hardware_threads",
                 static_cast<int64_t>(DefaultThreadCount()));
        PrintJsonRecord(name, params, point.stats);
      } else {
        table->PrintRow({std::to_string(shards), std::to_string(threads),
                         FormatSeconds(point.stats.mean_seconds),
                         FormatDouble(rows_per_second, 0),
                         FormatDouble(speedup, 2),
                         identical ? "yes" : "NO"});
      }
      if (!identical) {
        std::cerr << "ERROR: " << name << " at shards=" << shards
                  << " threads=" << threads
                  << " diverged from the serial single-shard reference\n";
        std::exit(1);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool full = FullMode(argc, argv);
  bool smoke = SmokeMode(argc, argv);
  bool json = JsonMode(argc, argv);
  if (!json) {
    std::cout << "# Sharded scatter-gather scaling "
              << "(bit-identity enforced per point)\n";
  }

  // Group sizes (rows/groups) are chosen so the per-group COUNT
  // distribution pass -- quadratic in the group size -- dominates the
  // timing; sub-millisecond configurations would make the CI regression
  // gate noise-bound.
  Config config;
  if (smoke) {
    config = {400, 20, 2, {1, 2}, {1, 2}};
  } else if (full) {
    config = {50000, 50, 5, {1, 2, 4, 8}, {1, 4}};
  } else {
    config = {20000, 40, 3, {1, 2, 4, 8}, {1, 4}};
  }

  QueryPtr group_query = Query::GroupAgg(
      Query::Scan("T"), {"g"}, {{AggKind::kCount, "", "n"}});
  RunSeries("shard_query", config, *group_query, json);

  QueryPtr select_query = Query::Select(
      Query::Scan("T"), Predicate::ColCmpInt("v", CmpOp::kGe, 15));
  RunSeries("shard_select", config, *select_query, json);
  return 0;
}
