// Experiment A (Figure 7 a-d): run time of compiling + computing the
// probability of [Sum_AGG Phi_i (x) v_i  theta  c] while varying the
// constant c, for AGG in {MIN, MAX, COUNT, SUM} and theta in {=, <=, >=}.
//
// Paper grid: #v=25, L=200, R=0, #cl=3, #l=3, maxv=200, c in [0, 300]
// (SUM: c in [0, 30000]), 30/10 runs. Default grid below is scaled down
// (see EXPERIMENTS.md); --full restores the paper's sizes and --smoke
// shrinks further to seconds (for ctest and the CI bench-smoke step).
//
// Expected shape: MIN/MAX run time grows with c until c reaches maxv and
// then saturates (pruning keeps only terms <= c); COUNT/SUM are
// bell-shaped in c (binomial-coefficient hardness peaks mid-range), with
// SUM's axis scaled by ~maxv/2 relative to COUNT.
//
// Flags: --json emits JSON Lines records instead of markdown;
// --threads=N additionally times a batch of independent expressions
// (compile + probability per item, the engine's tuple fan-out) serially
// vs. with N threads and reports the speedup -- CI captures this as
// BENCH_parallel.json.

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/util/parallel.h"
#include "src/workload/random_expr.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

struct Config {
  int num_vars;
  int terms;
  int runs;
};

void RunSeries(AggKind agg, const Config& config,
               const std::vector<int64_t>& constants, bool json) {
  std::unique_ptr<TablePrinter> table;
  if (!json) {
    std::cout << "\n### Figure 7: Experiment A, " << AggKindName(agg)
              << " (#v=" << config.num_vars << ", L=" << config.terms
              << ", #cl=3, #l=3, maxv=200, runs=" << config.runs << ")\n\n";
    table = std::make_unique<TablePrinter>(
        std::vector<std::string>{"c", "theta==: time [s]",
                                 "theta<=: time [s]", "theta>=: time [s]"});
  }
  for (int64_t c : constants) {
    std::vector<std::string> row = {std::to_string(c)};
    for (CmpOp theta : {CmpOp::kEq, CmpOp::kLe, CmpOp::kGe}) {
      RunStats stats = TimeRuns(config.runs, [&](int run) {
        ExprPool pool(SemiringKind::kBool);
        VariableTable vars;
        ExprGenParams params;
        params.num_vars = config.num_vars;
        params.terms_left = config.terms;
        params.clauses_per_term = 3;
        params.literals_per_clause = 3;
        params.max_value = 200;
        params.constant = c;
        params.theta = theta;
        params.agg_left = agg;
        GeneratedExpr gen = GenerateComparisonExpr(
            &pool, &vars, params,
            static_cast<uint64_t>(run) * 7919 + c * 13 +
                static_cast<uint64_t>(agg));
        CompileOptions options;
        options.max_nodes = 20'000'000;
        DTree tree = CompileToDTree(&pool, &vars, gen.comparison, options);
        ComputeDistribution(tree, vars, pool.semiring());
      });
      if (json) {
        JsonParams params;
        params.Set("agg", AggKindName(agg))
            .Set("theta", theta == CmpOp::kEq   ? "eq"
                          : theta == CmpOp::kLe ? "le"
                                                : "ge")
            .Set("c", c)
            .Set("num_vars", config.num_vars)
            .Set("terms", config.terms);
        PrintJsonRecord("exp_a", params, stats);
      } else {
        row.push_back(FormatSeconds(stats.mean_seconds) + " +- " +
                      FormatSeconds(stats.stddev_seconds));
      }
    }
    if (!json) table->PrintRow(row);
  }
}

// Times the per-tuple fan-out the engine uses for batches of independent
// result tuples: each item clones into a private pool, compiles, and runs
// the probability pass. Returns the per-item probabilities so serial and
// threaded passes can be compared bit-for-bit.
std::vector<double> ProcessBatch(const ExprPool& pool,
                                 const VariableTable& vars,
                                 const std::vector<ExprId>& exprs,
                                 int num_threads) {
  std::vector<double> probs(exprs.size());
  ParallelFor(num_threads, exprs.size(), [&](size_t i) {
    ExprPool local(SemiringKind::kBool);
    ExprId e = pool.CloneInto(&local, exprs[i]);
    CompileOptions options;
    options.max_nodes = 20'000'000;
    DTree tree = CompileToDTree(&local, &vars, e, options);
    probs[i] = ProbabilityNonZero(tree, vars, local.semiring());
  });
  return probs;
}

// Serial vs. N-thread batch evaluation at the largest grid point; the
// speedup record lands in BENCH_parallel.json on CI.
void RunParallelSection(int num_threads, const Config& config, int64_t c,
                        int batch, int runs, bool json) {
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<ExprId> exprs;
  exprs.reserve(batch);
  for (int i = 0; i < batch; ++i) {
    ExprGenParams params;
    params.num_vars = config.num_vars;
    params.terms_left = config.terms;
    params.clauses_per_term = 3;
    params.literals_per_clause = 3;
    params.max_value = 200;
    params.constant = c;
    params.theta = CmpOp::kGe;
    params.agg_left = AggKind::kCount;
    GeneratedExpr gen = GenerateComparisonExpr(
        &pool, &vars, params, static_cast<uint64_t>(i) * 104729 + 17);
    exprs.push_back(gen.comparison);
  }

  std::vector<double> serial_probs, parallel_probs;
  RunStats serial = TimeRuns(
      runs, [&](int) { serial_probs = ProcessBatch(pool, vars, exprs, 0); });
  RunStats parallel = TimeRuns(runs, [&](int) {
    parallel_probs = ProcessBatch(pool, vars, exprs, num_threads);
  });
  bool identical = serial_probs == parallel_probs;
  double speedup = parallel.mean_seconds > 0.0
                       ? serial.mean_seconds / parallel.mean_seconds
                       : 0.0;

  JsonParams base;
  base.Set("batch", batch)
      .Set("c", c)
      .Set("num_vars", config.num_vars)
      .Set("terms", config.terms);
  if (json) {
    JsonParams s = base;
    PrintJsonRecord("exp_a_parallel", s.Set("num_threads", 0), serial);
    JsonParams p = base;
    PrintJsonRecord("exp_a_parallel", p.Set("num_threads", num_threads),
                    parallel);
    JsonParams summary = base;
    summary.Set("num_threads", num_threads)
        .Set("speedup", speedup)
        .Set("bit_identical", identical ? "true" : "false")
        .Set("hardware_threads",
             static_cast<int64_t>(DefaultThreadCount()));
    PrintJsonRecord("exp_a_parallel_speedup", summary, parallel);
  } else {
    std::cout << "\n### Parallel batch (" << batch << " expressions, COUNT >= "
              << c << ")\n\n";
    TablePrinter table({"num_threads", "time [s]", "speedup",
                        "bit-identical"});
    table.PrintRow({"serial", FormatSeconds(serial.mean_seconds), "1.00",
                    "-"});
    table.PrintRow({std::to_string(num_threads),
                    FormatSeconds(parallel.mean_seconds),
                    FormatDouble(speedup, 2), identical ? "yes" : "NO"});
  }
  if (!identical) {
    std::cerr << "ERROR: parallel batch diverged from serial results\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool full = FullMode(argc, argv);
  bool smoke = SmokeMode(argc, argv);
  bool json = JsonMode(argc, argv);
  int threads = ThreadsArg(argc, argv);
  if (!json) std::cout << "# Experiment A (Figure 7): varying the constant c\n";

  // MIN / MAX (Figure 7 a, b).
  Config cheap = full    ? Config{25, 200, 30}
                 : smoke ? Config{10, 20, 2}
                         : Config{16, 60, 3};
  std::vector<int64_t> c_grid =
      smoke ? std::vector<int64_t>{0, 100, 200}
            : std::vector<int64_t>{0, 25, 50, 75, 100, 125, 150, 175, 200,
                                   250, 300};
  RunSeries(AggKind::kMin, cheap, c_grid, json);
  RunSeries(AggKind::kMax, cheap, c_grid, json);

  // COUNT / SUM (Figure 7 c, d) -- heavier: scaled-down default grid.
  Config heavy = full    ? Config{25, 200, 10}
                 : smoke ? Config{10, 16, 2}
                         : Config{14, 40, 3};
  std::vector<int64_t> count_grid =
      full ? std::vector<int64_t>{0, 25, 50, 75, 100, 125, 150, 175, 200,
                                  250, 300}
      : smoke ? std::vector<int64_t>{0, 5, 10}
              : std::vector<int64_t>{0, 5, 10, 15, 20, 25, 30, 40};
  RunSeries(AggKind::kCount, heavy, count_grid, json);
  std::vector<int64_t> sum_grid;
  for (int64_t c : count_grid) sum_grid.push_back(c * 100);  // ~maxv/2 scale.
  RunSeries(AggKind::kSum, heavy, sum_grid, json);

  // Serial vs. threaded tuple fan-out at the largest COUNT grid point.
  if (threads != 0) {
    RunParallelSection(threads, heavy, count_grid.back(),
                       /*batch=*/smoke ? 8 : 16, /*runs=*/smoke ? 3 : 5,
                       json);
  }
  return 0;
}
