// Experiment A (Figure 7 a-d): run time of compiling + computing the
// probability of [Sum_AGG Phi_i (x) v_i  theta  c] while varying the
// constant c, for AGG in {MIN, MAX, COUNT, SUM} and theta in {=, <=, >=}.
//
// Paper grid: #v=25, L=200, R=0, #cl=3, #l=3, maxv=200, c in [0, 300]
// (SUM: c in [0, 30000]), 30/10 runs. Default grid below is scaled down
// (see EXPERIMENTS.md); --full restores the paper's sizes.
//
// Expected shape: MIN/MAX run time grows with c until c reaches maxv and
// then saturates (pruning keeps only terms <= c); COUNT/SUM are
// bell-shaped in c (binomial-coefficient hardness peaks mid-range), with
// SUM's axis scaled by ~maxv/2 relative to COUNT.

#include <iostream>

#include "bench/bench_util.h"
#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/workload/random_expr.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

struct Config {
  int num_vars;
  int terms;
  int runs;
};

void RunSeries(AggKind agg, const Config& config,
               const std::vector<int64_t>& constants) {
  std::cout << "\n### Figure 7: Experiment A, " << AggKindName(agg)
            << " (#v=" << config.num_vars << ", L=" << config.terms
            << ", #cl=3, #l=3, maxv=200, runs=" << config.runs << ")\n\n";
  TablePrinter table({"c", "theta==: time [s]", "theta<=: time [s]",
                      "theta>=: time [s]"});
  for (int64_t c : constants) {
    std::vector<std::string> row = {std::to_string(c)};
    for (CmpOp theta : {CmpOp::kEq, CmpOp::kLe, CmpOp::kGe}) {
      RunStats stats = TimeRuns(config.runs, [&](int run) {
        ExprPool pool(SemiringKind::kBool);
        VariableTable vars;
        ExprGenParams params;
        params.num_vars = config.num_vars;
        params.terms_left = config.terms;
        params.clauses_per_term = 3;
        params.literals_per_clause = 3;
        params.max_value = 200;
        params.constant = c;
        params.theta = theta;
        params.agg_left = agg;
        GeneratedExpr gen = GenerateComparisonExpr(
            &pool, &vars, params,
            static_cast<uint64_t>(run) * 7919 + c * 13 +
                static_cast<uint64_t>(agg));
        CompileOptions options;
        options.max_nodes = 20'000'000;
        DTree tree = CompileToDTree(&pool, &vars, gen.comparison, options);
        ComputeDistribution(tree, vars, pool.semiring());
      });
      row.push_back(FormatSeconds(stats.mean_seconds) + " +- " +
                    FormatSeconds(stats.stddev_seconds));
    }
    table.PrintRow(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool full = FullMode(argc, argv);
  std::cout << "# Experiment A (Figure 7): varying the constant c\n";

  // MIN / MAX (Figure 7 a, b).
  Config cheap = full ? Config{25, 200, 30} : Config{16, 60, 3};
  std::vector<int64_t> c_grid = {0, 25, 50, 75, 100, 125, 150, 175, 200,
                                 250, 300};
  RunSeries(AggKind::kMin, cheap, c_grid);
  RunSeries(AggKind::kMax, cheap, c_grid);

  // COUNT / SUM (Figure 7 c, d) -- heavier: scaled-down default grid.
  Config heavy = full ? Config{25, 200, 10} : Config{14, 40, 3};
  std::vector<int64_t> count_grid =
      full ? std::vector<int64_t>{0, 25, 50, 75, 100, 125, 150, 175, 200,
                                  250, 300}
           : std::vector<int64_t>{0, 5, 10, 15, 20, 25, 30, 40};
  RunSeries(AggKind::kCount, heavy, count_grid);
  std::vector<int64_t> sum_grid;
  for (int64_t c : count_grid) sum_grid.push_back(c * 100);  // ~maxv/2 scale.
  RunSeries(AggKind::kSum, heavy, sum_grid);
  return 0;
}
