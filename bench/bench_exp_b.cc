// Experiment B (Figure 8b): run time vs the number of terms L at a fixed
// number of variables (#v=25), for all four monoids; theta is "=", c=100.
//
// Expected shape: an initial super-linear ramp while mutex partitioning
// dominates, saturating into linear growth once all variables have been
// expanded -- "answering increasingly complex queries on a database of
// constant size".

#include <iostream>

#include "bench/bench_util.h"
#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/workload/random_expr.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

}  // namespace

int main(int argc, char** argv) {
  bool full = FullMode(argc, argv);
  std::cout << "# Experiment B (Figure 8b): varying the number of terms L\n";
  const int num_vars = full ? 25 : 16;
  const int runs = full ? 10 : 3;
  std::vector<int> l_grid = full
      ? std::vector<int>{10, 20, 50, 100, 200, 400, 700, 1000}
      : std::vector<int>{10, 20, 40, 80, 160, 320};
  std::cout << "(#v=" << num_vars << ", R=0, #cl=3, #l=3, maxv=200, c=100, "
            << "theta is =, runs=" << runs << ")\n\n";

  TablePrinter table({"L", "MIN [s]", "MAX [s]", "COUNT [s]", "SUM [s]"});
  for (int l : l_grid) {
    std::vector<std::string> row = {std::to_string(l)};
    for (AggKind agg : {AggKind::kMin, AggKind::kMax, AggKind::kCount,
                        AggKind::kSum}) {
      RunStats stats = TimeRuns(runs, [&](int run) {
        ExprPool pool(SemiringKind::kBool);
        VariableTable vars;
        ExprGenParams params;
        params.num_vars = num_vars;
        params.terms_left = l;
        params.clauses_per_term = 3;
        params.literals_per_clause = 3;
        params.max_value = 200;
        params.constant = agg == AggKind::kCount ? 10 : 100;
        params.theta = CmpOp::kEq;
        params.agg_left = agg;
        GeneratedExpr gen = GenerateComparisonExpr(
            &pool, &vars, params, static_cast<uint64_t>(run) * 104729 + l);
        DTree tree = CompileToDTree(&pool, &vars, gen.comparison);
        ComputeDistribution(tree, vars, pool.semiring());
      });
      row.push_back(FormatSeconds(stats.mean_seconds));
    }
    table.PrintRow(row);
  }
  return 0;
}
