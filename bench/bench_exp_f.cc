// Experiment F (Figure 11 a, b): TPC-H queries Q1 and Q2 across scale
// factors, with the paper's three-phase breakdown:
//   Q0    -- deterministic evaluation, no expression/probability work,
//   [[.]] -- expression construction (the rewriting of Figure 4),
//   P(.)  -- probability computation for all result tuples (d-trees).
//
// Expected shape: both overheads are polynomial in the scale factor; the
// gap between Q1 and Q2 stems from annotation sizes (Q1's annotations
// cover ~all lineitems; Q2's only the partsupp tuples of one part).

#include <iostream>

#include "bench/bench_util.h"
#include "src/tpch/tpch_gen.h"
#include "src/tpch/tpch_queries.h"
#include "src/util/timer.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

struct PhaseTimes {
  double q0 = 0;
  double rewrite = 0;
  double probability = 0;
};

PhaseTimes MeasureQuery(Database* db, const Query& q,
                        bool with_aggregate_distributions) {
  PhaseTimes t;
  {
    WallTimer timer;
    db->RunDeterministic(q);
    t.q0 = timer.ElapsedSeconds();
  }
  PvcTable result;
  {
    WallTimer timer;
    result = db->Run(q);
    t.rewrite = timer.ElapsedSeconds();
  }
  {
    WallTimer timer;
    for (size_t i = 0; i < result.NumRows(); ++i) {
      db->TupleProbability(result.row(i));
      if (with_aggregate_distributions) {
        for (size_t c = 0; c < result.schema().NumColumns(); ++c) {
          if (result.schema().column(c).type == CellType::kAggExpr) {
            db->AggregateDistribution(result, i,
                                      result.schema().column(c).name);
          }
        }
      }
    }
    t.probability = timer.ElapsedSeconds();
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = FullMode(argc, argv);
  std::cout << "# Experiment F (Figure 11): TPC-H Q1 and Q2\n";
  std::cout << "(scale factor 1.0 = ~10^5 lineitems; monetary values in "
               "cents; see DESIGN.md for the dbgen substitution)\n";

  std::vector<double> q1_scales =
      full ? std::vector<double>{0.005, 0.01, 0.02, 0.05, 0.1, 0.2}
           : std::vector<double>{0.005, 0.01, 0.02, 0.05};
  std::cout << "\n### Figure 11a: TPC-H Q1 (COUNT per returnflag/linestatus "
               "group)\n\n";
  TablePrinter q1_table(
      {"SF", "lineitems", "Q0 [s]", "[[.]] [s]", "P(.) [s]"});
  for (double sf : q1_scales) {
    Database db;
    TpchConfig config;
    config.scale_factor = sf;
    GenerateTpch(&db, config);
    QueryPtr q1 = BuildTpchQ1(/*shipdate_cutoff=*/1800);
    PhaseTimes t = MeasureQuery(&db, *q1, /*with_aggregate_distributions=*/true);
    q1_table.PrintRow({FormatDouble(sf, 3),
                       std::to_string(db.table("lineitem").NumRows()),
                       FormatSeconds(t.q0), FormatSeconds(t.rewrite),
                       FormatSeconds(t.probability)});
  }

  std::vector<double> q2_scales =
      full ? std::vector<double>{0.05, 0.1, 0.2, 0.5, 1.0}
           : std::vector<double>{0.05, 0.1, 0.2, 0.5};
  std::cout << "\n### Figure 11b: TPC-H Q2 (minimum supply cost, 5-way join "
               "with nested aggregate)\n\n";
  TablePrinter q2_table(
      {"SF", "partsupps", "Q0 [s]", "[[.]] [s]", "P(.) [s]"});
  for (double sf : q2_scales) {
    Database db;
    TpchConfig config;
    config.scale_factor = sf;
    GenerateTpch(&db, config);
    // A part that exists at every scale; region fixed.
    QueryPtr q2 = BuildTpchQ2(&db, /*partkey=*/0, "EUROPE");
    PhaseTimes t =
        MeasureQuery(&db, *q2, /*with_aggregate_distributions=*/false);
    q2_table.PrintRow({FormatDouble(sf, 3),
                       std::to_string(db.table("partsupp").NumRows()),
                       FormatSeconds(t.q0), FormatSeconds(t.rewrite),
                       FormatSeconds(t.probability)});
  }
  return 0;
}
