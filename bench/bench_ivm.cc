// Incremental view maintenance vs. full recompute (src/engine/view.h):
// latency of keeping a registered view's tuples + probabilities current
// under single-tuple update batches, against re-running step I + step II
// from scratch on the same database state.
//
// Series:
//   ivm_select -- a selection view over the 1000-tuple stress table,
//                 unsharded (shards=0) and per-shard cached (shards=4).
//   ivm_join   -- an equi-join view with cached hash sides (unsharded).
//
// Every batch applies one update (rotating insert / setprob / delete),
// then measures (a) the incremental path: delta maintenance + the cached
// probability pass, and (b) the recompute path: Run + TupleProbabilities
// on the same state. The two probability vectors are compared bit for bit
// each batch; any divergence -- or an incremental path that is not
// strictly faster on average -- fails the run, so a "fast but wrong" or
// "cached but pointless" configuration cannot produce a trajectory file.
// CI captures the JSON-lines output as BENCH_ivm.json and gates the
// recorded speedup against the committed baseline
// (scripts/check_bench_trajectory.py --metric speedup).
//
// Flags: --smoke (few batches, for ctest), --full (larger grid), --json,
// --threads=N.

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/database.h"
#include "src/engine/shard.h"
#include "src/query/ast.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

struct Config {
  int64_t rows;
  int batches;
  int threads;
};

struct Summary {
  double inc_mean_seconds = 0.0;
  double full_mean_seconds = 0.0;
  bool identical = true;
};

Schema StressSchema() {
  return Schema({{"id", CellType::kInt},
                 {"g", CellType::kInt},
                 {"v", CellType::kInt}});
}

template <typename DB>
void LoadStressTable(DB* db, const char* name, int64_t rows, Rng* rng) {
  std::vector<std::vector<Cell>> data;
  std::vector<double> probs;
  data.reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    data.push_back({Cell(i), Cell(i % 50), Cell(rng->UniformInt(0, 100))});
    probs.push_back(rng->UniformDouble(0.05, 0.95));
  }
  db->AddTupleIndependentTable(name, StressSchema(), std::move(data),
                               std::move(probs));
}

// One deterministic single-tuple update per batch, rotating kinds.
template <typename DB>
void ApplyUpdate(DB* db, const char* table, int batch, int64_t* next_id,
                 Rng* rng) {
  switch (batch % 4) {
    case 0:
    case 2:
      db->InsertTuple(table,
                      {Cell((*next_id)++), Cell(rng->UniformInt(0, 50)),
                       Cell(rng->UniformInt(0, 100))},
                      rng->UniformDouble(0.05, 0.95));
      break;
    case 1: {
      VarId var = static_cast<VarId>(
          rng->UniformInt(0, static_cast<int64_t>(db->variables().size()) - 1));
      db->UpdateProbability(var, rng->UniformDouble(0.05, 0.95));
      break;
    }
    default:
      db->DeleteTuple(table, Cell(rng->UniformInt(0, *next_id)));
      break;
  }
}

void ReportBatch(const char* series, const JsonParams& base, int batch,
                 double inc_seconds, double full_seconds, bool identical,
                 bool json, TablePrinter* table) {
  double speedup = inc_seconds > 0.0 ? full_seconds / inc_seconds : 0.0;
  if (json) {
    JsonParams params = base;
    params.Set("batch", batch)
        .Set("incremental_seconds", inc_seconds)
        .Set("recompute_seconds", full_seconds)
        .Set("speedup_incremental_vs_recompute", speedup)
        .Set("bit_identical", identical ? "true" : "false");
    RunStats stats;
    stats.mean_seconds = inc_seconds;
    PrintJsonRecord(std::string(series) + "_batch", params, stats);
  } else {
    table->PrintRow({std::to_string(batch), FormatSeconds(inc_seconds),
                     FormatSeconds(full_seconds), FormatDouble(speedup, 1),
                     identical ? "yes" : "NO"});
  }
}

void ReportSummary(const char* series, JsonParams base, const Config& config,
                   const Summary& summary, bool json) {
  double speedup = summary.inc_mean_seconds > 0.0
                       ? summary.full_mean_seconds / summary.inc_mean_seconds
                       : 0.0;
  if (json) {
    base.Set("rows", config.rows)
        .Set("batches", config.batches)
        .Set("incremental_mean_seconds", summary.inc_mean_seconds)
        .Set("recompute_mean_seconds", summary.full_mean_seconds)
        .Set("speedup_incremental_vs_recompute", speedup)
        .Set("bit_identical", summary.identical ? "true" : "false")
        .Set("hardware_threads", static_cast<int64_t>(DefaultThreadCount()));
    RunStats stats;
    stats.mean_seconds = summary.inc_mean_seconds;
    PrintJsonRecord(series, base, stats);
  } else {
    std::cout << "mean incremental " << FormatSeconds(summary.inc_mean_seconds)
              << " s vs recompute " << FormatSeconds(summary.full_mean_seconds)
              << " s -- speedup " << FormatDouble(speedup, 1) << "x\n";
  }
  if (!summary.identical) {
    std::cerr << "ERROR: " << series
              << " diverged from the from-scratch recompute\n";
    std::exit(1);
  }
  if (speedup <= 1.0) {
    std::cerr << "ERROR: " << series
              << " incremental maintenance was not strictly faster than "
                 "full recompute (speedup "
              << FormatDouble(speedup, 2) << "x)\n";
    std::exit(1);
  }
}

bool SameVector(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

// -- ivm_select -------------------------------------------------------------

QueryPtr SelectQuery() {
  return Query::Select(Query::Scan("T"),
                       Predicate::ColCmpInt("v", CmpOp::kGe, 15));
}

void RunSelectSeries(const Config& config, size_t shards, bool json) {
  QueryPtr query = SelectQuery();
  Rng rng(171717);
  std::unique_ptr<Database> single;
  std::unique_ptr<ShardedDatabase> sharded;
  if (shards == 0) {
    single = std::make_unique<Database>();
    single->eval_options().num_threads = config.threads;
    LoadStressTable(single.get(), "T", config.rows, &rng);
    single->RegisterView("v", query);
    single->ViewProbabilities("v");  // Warm the step II cache.
  } else {
    sharded = std::make_unique<ShardedDatabase>(shards);
    sharded->eval_options().num_threads = config.threads;
    LoadStressTable(sharded.get(), "T", config.rows, &rng);
    sharded->RegisterView("v", query);
    sharded->ViewProbabilities("v");
  }

  JsonParams base;
  base.Set("shards", static_cast<int64_t>(shards))
      .Set("threads", config.threads);
  std::unique_ptr<TablePrinter> table;
  if (!json) {
    std::cout << "\n### ivm_select (rows=" << config.rows
              << ", shards=" << shards << ", threads=" << config.threads
              << ")\n\n";
    table = std::make_unique<TablePrinter>(std::vector<std::string>{
        "batch", "incremental [s]", "recompute [s]", "speedup",
        "bit-identical"});
  }

  Summary summary;
  int64_t next_id = config.rows;
  for (int batch = 0; batch < config.batches; ++batch) {
    double inc_seconds = 0.0;
    double full_seconds = 0.0;
    std::vector<double> inc_probs;
    std::vector<double> full_probs;
    if (single != nullptr) {
      WallTimer inc;
      ApplyUpdate(single.get(), "T", batch, &next_id, &rng);
      inc_probs = single->ViewProbabilities("v");
      inc_seconds = inc.ElapsedSeconds();
      WallTimer full;
      PvcTable result = single->Run(*query);
      full_probs = single->TupleProbabilities(result);
      full_seconds = full.ElapsedSeconds();
    } else {
      WallTimer inc;
      ApplyUpdate(sharded.get(), "T", batch, &next_id, &rng);
      inc_probs = sharded->ViewProbabilities("v");
      inc_seconds = inc.ElapsedSeconds();
      WallTimer full;
      ShardedResult result = sharded->Run(*query);
      full_probs = sharded->TupleProbabilities(result);
      full_seconds = full.ElapsedSeconds();
    }
    bool identical = SameVector(inc_probs, full_probs);
    summary.identical = summary.identical && identical;
    summary.inc_mean_seconds += inc_seconds / config.batches;
    summary.full_mean_seconds += full_seconds / config.batches;
    ReportBatch("ivm_select", base, batch, inc_seconds, full_seconds,
                identical, json, table.get());
  }
  ReportSummary("ivm_select", base, config, summary, json);
}

// -- ivm_join ---------------------------------------------------------------

QueryPtr JoinQuery() {
  return Query::Select(Query::Product(Query::Scan("L"), Query::Scan("R")),
                       Predicate::ColEqCol("lk", "rk"));
}

void RunJoinSeries(const Config& config, bool json) {
  QueryPtr query = JoinQuery();
  Rng rng(232323);
  Database db;
  db.eval_options().num_threads = config.threads;
  // Key ranges sized so each side matches a handful of rows.
  int64_t side_rows = config.rows / 2;
  Schema l_schema({{"lk", CellType::kInt}, {"lv", CellType::kInt}});
  Schema r_schema({{"rk", CellType::kInt}, {"rv", CellType::kInt}});
  std::vector<std::vector<Cell>> l_rows, r_rows;
  std::vector<double> l_probs, r_probs;
  for (int64_t i = 0; i < side_rows; ++i) {
    l_rows.push_back({Cell(rng.UniformInt(0, side_rows / 4)),
                      Cell(rng.UniformInt(0, 100))});
    l_probs.push_back(rng.UniformDouble(0.05, 0.95));
    r_rows.push_back({Cell(rng.UniformInt(0, side_rows / 4)),
                      Cell(rng.UniformInt(0, 100))});
    r_probs.push_back(rng.UniformDouble(0.05, 0.95));
  }
  db.AddTupleIndependentTable("L", l_schema, std::move(l_rows),
                              std::move(l_probs));
  db.AddTupleIndependentTable("R", r_schema, std::move(r_rows),
                              std::move(r_probs));
  db.RegisterView("v", query);
  db.ViewProbabilities("v");

  JsonParams base;
  base.Set("shards", static_cast<int64_t>(0)).Set("threads", config.threads);
  std::unique_ptr<TablePrinter> table;
  if (!json) {
    std::cout << "\n### ivm_join (rows=" << side_rows << " per side"
              << ", threads=" << config.threads << ")\n\n";
    table = std::make_unique<TablePrinter>(std::vector<std::string>{
        "batch", "incremental [s]", "recompute [s]", "speedup",
        "bit-identical"});
  }

  Summary summary;
  for (int batch = 0; batch < config.batches; ++batch) {
    const char* side = batch % 2 == 0 ? "L" : "R";
    const char* key_col = batch % 2 == 0 ? "lk" : "rk";
    (void)key_col;
    WallTimer inc;
    if (batch % 4 == 3) {
      VarId var = static_cast<VarId>(
          rng.UniformInt(0, static_cast<int64_t>(db.variables().size()) - 1));
      db.UpdateProbability(var, rng.UniformDouble(0.05, 0.95));
    } else {
      db.InsertTuple(side,
                     {Cell(rng.UniformInt(0, side_rows / 4)),
                      Cell(rng.UniformInt(0, 100))},
                     rng.UniformDouble(0.05, 0.95));
    }
    std::vector<double> inc_probs = db.ViewProbabilities("v");
    double inc_seconds = inc.ElapsedSeconds();
    WallTimer full;
    PvcTable result = db.Run(*query);
    std::vector<double> full_probs = db.TupleProbabilities(result);
    double full_seconds = full.ElapsedSeconds();

    bool identical = SameVector(inc_probs, full_probs);
    summary.identical = summary.identical && identical;
    summary.inc_mean_seconds += inc_seconds / config.batches;
    summary.full_mean_seconds += full_seconds / config.batches;
    ReportBatch("ivm_join", base, batch, inc_seconds, full_seconds,
                identical, json, table.get());
  }
  ReportSummary("ivm_join", base, config, summary, json);
}

}  // namespace

int main(int argc, char** argv) {
  bool full = FullMode(argc, argv);
  bool smoke = SmokeMode(argc, argv);
  bool json = JsonMode(argc, argv);
  int threads = ThreadsArg(argc, argv, 1);
  if (!json) {
    std::cout << "# Incremental view maintenance vs full recompute "
              << "(bit-identity enforced per batch)\n";
  }

  // The acceptance scale: single-tuple update batches against the
  // 1000-tuple stress table (also in --smoke, where only the batch count
  // shrinks).
  Config config;
  if (smoke) {
    config = {1000, 6, threads};
  } else if (full) {
    config = {4000, 40, threads};
  } else {
    config = {1000, 20, threads};
  }

  RunSelectSeries(config, /*shards=*/0, json);
  RunSelectSeries(config, /*shards=*/4, json);
  RunJoinSeries(config, json);
  return 0;
}
