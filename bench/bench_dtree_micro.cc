// Micro-benchmarks (google-benchmark) for the core kernels behind
// Theorem 2 and Propositions 2-3: convolution, read-once compilation,
// Shannon expansion, and bottom-up probability computation.

#include <benchmark/benchmark.h>

#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/prob/distribution.h"
#include "src/util/rng.h"
#include "src/workload/random_expr.h"

namespace {

using namespace pvcdb;

// Convolution cost is O(|a| * |b|) (Proposition 1 / Theorem 2).
void BM_Convolution(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Distribution::Entry> entries;
  for (int i = 0; i < n; ++i) {
    entries.push_back({i, 1.0 / n});
  }
  Distribution a = Distribution::FromPairs(entries);
  Distribution b = a;
  for (auto _ : state) {
    Distribution c = a.Convolve(b, [](int64_t x, int64_t y) { return x + y; });
    benchmark::DoNotOptimize(c);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Convolution)->Range(8, 512)->Complexity(benchmark::oNSquared);

// Read-once chains x1 y1 + x2 y2 + ... compile in linear time with rules
// 1-3 only (the tractable-query case of Theorem 3).
void BM_CompileReadOnce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ExprPool pool(SemiringKind::kBool);
    VariableTable vars;
    std::vector<ExprId> terms;
    for (int i = 0; i < n; ++i) {
      VarId x = vars.AddBernoulli(0.5);
      VarId y = vars.AddBernoulli(0.5);
      terms.push_back(pool.MulS(pool.Var(x), pool.Var(y)));
    }
    ExprId e = pool.AddS(terms);
    state.ResumeTiming();
    DTree tree = CompileToDTree(&pool, &vars, e);
    benchmark::DoNotOptimize(tree);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CompileReadOnce)->Range(8, 2048)->Complexity();

// Probability computation over a compiled read-once d-tree.
void BM_ProbabilityReadOnce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<ExprId> terms;
  for (int i = 0; i < n; ++i) {
    VarId x = vars.AddBernoulli(0.4);
    VarId y = vars.AddBernoulli(0.6);
    terms.push_back(pool.MulS(pool.Var(x), pool.Var(y)));
  }
  DTree tree = CompileToDTree(&pool, &vars, pool.AddS(terms));
  for (auto _ : state) {
    Distribution d = ComputeDistribution(tree, vars, pool.semiring());
    benchmark::DoNotOptimize(d);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ProbabilityReadOnce)->Range(8, 2048)->Complexity();

// COUNT distribution of n independent tuples: O(n^2) convolutions
// (Proposition 3 with m = 1).
void BM_CountDistribution(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<ExprId> terms;
  for (int i = 0; i < n; ++i) {
    VarId x = vars.AddBernoulli(0.5);
    terms.push_back(pool.Tensor(pool.Var(x), pool.ConstM(AggKind::kCount, 1)));
  }
  DTree tree = CompileToDTree(&pool, &vars, pool.AddM(AggKind::kCount, terms));
  for (auto _ : state) {
    Distribution d = ComputeDistribution(tree, vars, pool.semiring());
    benchmark::DoNotOptimize(d);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CountDistribution)->Range(8, 512)->Complexity(benchmark::oNSquared);

// Shannon expansion cost on an intrinsically hard expression family
// (parity-like chains sharing every variable twice).
void BM_ShannonExpansion(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ExprPool pool(SemiringKind::kBool);
    VariableTable vars;
    std::vector<VarId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(vars.AddBernoulli(0.5));
    // Ring: x0 x1 + x1 x2 + ... + x_{n-1} x0 -- one connected component.
    std::vector<ExprId> terms;
    for (int i = 0; i < n; ++i) {
      terms.push_back(
          pool.MulS(pool.Var(ids[i]), pool.Var(ids[(i + 1) % n])));
    }
    ExprId e = pool.AddS(terms);
    state.ResumeTiming();
    DTree tree = CompileToDTree(&pool, &vars, e);
    benchmark::DoNotOptimize(tree);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ShannonExpansion)->DenseRange(4, 16, 4);

// Substitution cost (Eq. 10) on large flat expressions.
void BM_Substitution(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ExprPool pool(SemiringKind::kBool);
  VariableTable vars;
  std::vector<VarId> ids;
  for (int i = 0; i < n; ++i) ids.push_back(vars.AddBernoulli(0.5));
  std::vector<ExprId> terms;
  for (int i = 0; i + 1 < n; ++i) {
    terms.push_back(pool.MulS(pool.Var(ids[i]), pool.Var(ids[i + 1])));
  }
  ExprId e = pool.AddS(terms);
  for (auto _ : state) {
    ExprId sub = pool.Substitute(e, ids[0], 1);
    benchmark::DoNotOptimize(sub);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Substitution)->Range(8, 1024);

}  // namespace

BENCHMARK_MAIN();
