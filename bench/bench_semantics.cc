// Table 1 (Section 3): the semantics matrix -- how the choice of semiring
// S and of variable distributions yields deterministic/probabilistic
// databases with set/bag semantics. This binary *validates* the table by
// constructing each configuration and showing the resulting behaviour of a
// fixed tuple's annotation.

#include <iostream>

#include "bench/bench_util.h"
#include "src/dtree/compile.h"
#include "src/dtree/probability.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

std::string Describe(SemiringKind kind, const Distribution& var_dist) {
  ExprPool pool(kind);
  VariableTable vars;
  VarId x = vars.Add(var_dist);
  DTree tree = CompileToDTree(&pool, &vars, pool.Var(x));
  Distribution d = ComputeDistribution(tree, vars, pool.semiring());
  return d.ToString();
}

}  // namespace

int main() {
  std::cout << "# Table 1: database semantics per semiring and variable "
               "distributions\n\n";
  TablePrinter table({"Database", "Semantics", "S", "variable P_x",
                      "annotation distribution"});

  // Deterministic set: S = B, P_x degenerate.
  table.PrintRow({"Deterministic", "Set", "B", "P[1]=1",
                  Describe(SemiringKind::kBool, Distribution::Bernoulli(1.0))});
  // Deterministic bag: S = N, P_x degenerate on a multiplicity.
  table.PrintRow({"Deterministic", "Bag", "N", "P[3]=1",
                  Describe(SemiringKind::kNatural, Distribution::Point(3))});
  // Probabilistic set: S = B, Bernoulli.
  table.PrintRow({"Probabilistic", "Set", "B", "P[1]=0.3",
                  Describe(SemiringKind::kBool, Distribution::Bernoulli(0.3))});
  // Probabilistic bag: S = N, distribution over multiplicities.
  table.PrintRow(
      {"Probabilistic", "Bag", "N", "P[0]=.2 P[1]=.3 P[2]=.5",
       Describe(SemiringKind::kNatural,
                Distribution::FromPairs({{0, 0.2}, {1, 0.3}, {2, 0.5}}))});

  std::cout << "\nEach row shows the distribution of a single-variable "
               "annotation under that configuration: degenerate point "
               "masses for deterministic databases, {0,1} supports for set "
               "semantics, multiplicity supports for bag semantics.\n";
  return 0;
}
