// Ablation benchmarks for the design choices of Section 5:
//   - variable-choice heuristic for Shannon expansion (most-occurrences,
//     as in the paper, vs first vs random),
//   - pruning of conditional expressions on/off,
//   - read-once common-factor extraction on/off,
//   - SUM overflow clamping on/off (Proposition 3's polynomial bound).
// Each row reports time and the number of mutex expansions (the structural
// cost that the heuristics/pruning are meant to reduce).

#include <iostream>

#include "bench/bench_util.h"
#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/workload/random_expr.h"

namespace {

using namespace pvcdb;
using namespace pvcdb_bench;

struct AblationRow {
  std::string label;
  CompileOptions compile;
  ProbabilityOptions probability;
};

}  // namespace

int main(int argc, char** argv) {
  bool full = FullMode(argc, argv);
  const int runs = full ? 10 : 3;
  const int num_vars = full ? 22 : 14;
  const int terms = full ? 120 : 50;

  std::cout << "# Ablation: Algorithm 1 design choices\n";
  std::cout << "(#v=" << num_vars << ", L=" << terms
            << ", #cl=2, #l=2, maxv=50, c=25, theta is <=, MIN and SUM "
            << "workloads, runs=" << runs << ")\n\n";

  std::vector<AblationRow> rows;
  {
    AblationRow base;
    base.label = "paper config (most-occ, pruning, factorisation, clamp)";
    rows.push_back(base);
  }
  {
    AblationRow r;
    r.label = "heuristic: first variable";
    r.compile.heuristic = VarChoiceHeuristic::kFirst;
    rows.push_back(r);
  }
  {
    AblationRow r;
    r.label = "heuristic: random variable";
    r.compile.heuristic = VarChoiceHeuristic::kRandom;
    rows.push_back(r);
  }
  {
    AblationRow r;
    r.label = "pruning off";
    r.compile.enable_pruning = false;
    rows.push_back(r);
  }
  {
    AblationRow r;
    r.label = "factorisation off";
    r.compile.enable_factorization = false;
    rows.push_back(r);
  }
  {
    AblationRow r;
    r.label = "SUM clamping off";
    r.probability.enable_sum_clamping = false;
    rows.push_back(r);
  }

  for (AggKind agg : {AggKind::kMin, AggKind::kSum}) {
    std::cout << "\n### " << AggKindName(agg) << " workload\n\n";
    TablePrinter table({"configuration", "time [s]", "mutex expansions",
                        "d-tree nodes"});
    for (const AblationRow& row : rows) {
      size_t mutex_total = 0;
      size_t nodes_total = 0;
      RunStats stats = TimeRuns(runs, [&](int run) {
        ExprPool pool(SemiringKind::kBool);
        VariableTable vars;
        ExprGenParams params;
        params.num_vars = num_vars;
        params.terms_left = terms;
        params.clauses_per_term = 2;
        params.literals_per_clause = 2;
        params.max_value = 50;
        params.constant = 25;
        params.theta = CmpOp::kLe;
        params.agg_left = agg;
        GeneratedExpr gen = GenerateComparisonExpr(
            &pool, &vars, params, static_cast<uint64_t>(run) * 31337 + 17);
        DTreeCompiler compiler(&pool, &vars, row.compile);
        DTree tree = compiler.Compile(gen.comparison);
        mutex_total += compiler.stats().mutex_expansions;
        nodes_total += tree.size();
        ComputeDistribution(tree, vars, pool.semiring(), row.probability);
      });
      table.PrintRow({row.label, FormatSeconds(stats.mean_seconds),
                      std::to_string(mutex_total / runs),
                      std::to_string(nodes_total / runs)});
    }
  }
  return 0;
}
