// Quickstart: a five-minute tour of pvcdb.
//
//  1. create a Database (Boolean semiring = probabilistic set semantics),
//  2. load a tuple-independent table (one Bernoulli variable per tuple),
//  3. run a query with aggregation,
//  4. ask for tuple probabilities and aggregate distributions.
//
// Build and run:  ./build/examples/quickstart

#include <iostream>

#include "src/engine/database.h"
#include "src/expr/print.h"

using namespace pvcdb;

int main() {
  // A probabilistic database over the Boolean semiring.
  Database db;

  // sensors(room, reading): each row is present with the given probability
  // (say, confidence that the sensor reported correctly). Readings are
  // integers (fixed-point encode decimals, e.g. centi-degrees).
  db.AddTupleIndependentTable(
      "sensors",
      Schema({{"room", CellType::kString}, {"reading", CellType::kInt}}),
      {
          {Cell("kitchen"), Cell(int64_t{2150})},
          {Cell("kitchen"), Cell(int64_t{2230})},
          {Cell("lab"), Cell(int64_t{1890})},
          {Cell("lab"), Cell(int64_t{1950})},
          {Cell("lab"), Cell(int64_t{2050})},
      },
      {0.9, 0.7, 0.8, 0.6, 0.5});

  // Q: per room, the maximal reading -- and keep only rooms whose maximum
  // stays below 22.00 degrees:
  //   pi_room sigma_{m <= 2200} $_{room; m <- MAX(reading)}(sensors)
  QueryPtr q = Query::Project(
      Query::Select(
          Query::GroupAgg(Query::Scan("sensors"), {"room"},
                          {{AggKind::kMax, "reading", "m"}}),
          Predicate::ColCmpInt("m", CmpOp::kLe, 2200)),
      {"room"});

  // Step I (Section 4 of the paper): compute result tuples with their
  // symbolic annotations.
  PvcTable result = db.Run(*q);
  std::cout << "Result of " << q->ToString() << ":\n\n"
            << result.ToString(&db.pool()) << "\n";

  // Step II (Section 5): exact probabilities by d-tree compilation.
  for (size_t i = 0; i < result.NumRows(); ++i) {
    std::cout << "P[" << result.CellAt(i, "room").AsString()
              << " qualifies] = " << db.TupleProbability(result.row(i))
              << "\n";
  }

  // Full distribution of an aggregate, conditioned on the group being
  // non-empty.
  QueryPtr agg_q = Query::GroupAgg(Query::Scan("sensors"), {"room"},
                                   {{AggKind::kMax, "reading", "m"}});
  PvcTable aggs = db.Run(*agg_q);
  for (size_t i = 0; i < aggs.NumRows(); ++i) {
    std::cout << "\nMAX(reading) distribution for "
              << aggs.CellAt(i, "room").AsString() << " (given non-empty): "
              << db.ConditionalAggregateDistribution(aggs, i, "m").ToString()
              << "\n";
  }
  return 0;
}
