// Beyond confidence computation: the three companion analyses the paper
// points to in its introduction, all running on the same compiled
// representation:
//   - sensitivity analysis / explanations (Kanagal et al. [11]):
//     which input tuples influence an answer most?
//   - conditioning (Koch & Olteanu [14]): probabilities given a constraint
//     on the database;
//   - anytime approximation (Olteanu et al. [18]): probability bounds from
//     partial compilation, refined under a budget.

#include <iostream>

#include "src/dtree/approximate.h"
#include "src/engine/average.h"
#include "src/engine/database.h"
#include "src/engine/sensitivity.h"
#include "src/query/parser.h"

using namespace pvcdb;

int main() {
  Database db;
  // A small supply-chain fact table: shipments(route, tons). Tuple
  // probabilities model source reliability.
  db.AddTupleIndependentTable(
      "shipments",
      Schema({{"route", CellType::kString}, {"tons", CellType::kInt}}),
      {
          {Cell("north"), Cell(int64_t{120})},
          {Cell("north"), Cell(int64_t{80})},
          {Cell("north"), Cell(int64_t{200})},
          {Cell("south"), Cell(int64_t{150})},
          {Cell("south"), Cell(int64_t{90})},
      },
      {0.9, 0.6, 0.3, 0.8, 0.7});

  // Use the SQL surface syntax for the query.
  ParseResult parsed = ParseQuery(
      "SELECT route, SUM(tons) AS total, COUNT(*) AS n "
      "FROM shipments GROUP BY route HAVING total >= 200");
  if (!parsed.ok()) {
    std::cerr << parsed.error << "\n";
    return 1;
  }
  PvcTable result = db.Run(*parsed.query);

  std::cout << "P[route moves >= 200 tons]:\n";
  for (size_t i = 0; i < result.NumRows(); ++i) {
    std::cout << "  " << result.CellAt(i, "route").AsString() << ": "
              << db.TupleProbability(result.row(i)) << "\n";
  }

  // --- Explanation: which shipments drive the 'north' answer? ---
  std::cout << "\nInfluence ranking for the north route (dP/dp per input "
               "tuple):\n";
  std::vector<VariableInfluence> influences = SensitivityAnalysis(
      &db.pool(), db.variables(), result.row(0).annotation);
  for (const VariableInfluence& vi : influences) {
    std::cout << "  " << db.variables().NameOf(vi.variable) << ": "
              << vi.influence << "\n";
  }

  // --- Conditioning: suppose we learn at least two north shipments ran. --
  ExprId north_count = result.CellAt(0, "n").AsAgg();
  ExprId constraint = db.pool().Cmp(CmpOp::kGe, north_count,
                                    db.pool().ConstM(AggKind::kCount, 2));
  double conditioned = ConditionalTupleProbability(
      &db.pool(), db.variables(), result.row(0).annotation, constraint);
  std::cout << "\nP[north >= 200 tons | at least 2 north shipments ran] = "
            << conditioned << "\n";

  // --- AVG via SUM/COUNT composition. ---
  ExprId north_total = result.CellAt(0, "total").AsAgg();
  std::cout << "\nE[average north shipment | non-empty] = "
            << ExpectedAverage(&db.pool(), db.variables(), north_total,
                               north_count)
            << " tons\n";

  // --- Anytime approximation of the north answer probability. ---
  std::cout << "\nAnytime bounds on P[north >= 200 tons]:\n";
  for (size_t budget : {1u, 2u, 4u, 16u, 4096u}) {
    ApproximateOptions options;
    options.node_budget = budget;
    ProbabilityBounds b = ApproximateProbability(
        &db.pool(), db.variables(), result.row(0).annotation, options);
    std::cout << "  budget " << budget << ": [" << b.low << ", " << b.high
              << "] (width " << b.Width() << ")\n";
  }
  return 0;
}
