// Risk aggregation over uncertain events -- the SUM-aggregation use case
// the paper's introduction motivates (OLAP / decision support over
// uncertain data), on a loss-portfolio scenario:
//
// Each row of `incidents` is a potential loss event with a probability of
// materialising and a loss amount (fixed-point, thousands). We ask for the
// exact distribution of the total loss per business unit, the probability
// that it exceeds a risk budget, and compare the exact d-tree answer
// against a Monte-Carlo estimate (the MCDB-style baseline).

#include <iostream>

#include "src/engine/database.h"
#include "src/naive/monte_carlo.h"
#include "src/util/timer.h"

using namespace pvcdb;

int main() {
  Database db;
  // incidents(unit, loss): tuple-independent potential losses.
  std::vector<std::vector<Cell>> rows;
  std::vector<double> probs;
  struct Incident {
    const char* unit;
    int64_t loss;  // In thousands.
    double p;
  };
  const Incident incidents[] = {
      {"trading", 120, 0.05}, {"trading", 45, 0.20},  {"trading", 80, 0.10},
      {"trading", 30, 0.35},  {"retail", 25, 0.30},   {"retail", 60, 0.15},
      {"retail", 15, 0.40},   {"retail", 90, 0.05},   {"ops", 10, 0.50},
      {"ops", 35, 0.25},      {"ops", 55, 0.10},      {"ops", 20, 0.30},
  };
  for (const Incident& i : incidents) {
    rows.push_back({Cell(i.unit), Cell(i.loss)});
    probs.push_back(i.p);
  }
  db.AddTupleIndependentTable(
      "incidents",
      Schema({{"unit", CellType::kString}, {"loss", CellType::kInt}}),
      std::move(rows), std::move(probs));

  // Total loss per unit: $_{unit; total <- SUM(loss)}(incidents).
  QueryPtr q = Query::GroupAgg(Query::Scan("incidents"), {"unit"},
                               {{AggKind::kSum, "loss", "total"}});
  PvcTable result = db.Run(*q);

  const int64_t budget = 100;
  std::cout << "Exact total-loss distributions (thousands):\n";
  for (size_t i = 0; i < result.NumRows(); ++i) {
    const std::string& unit = result.CellAt(i, "unit").AsString();
    Distribution d = db.AggregateDistribution(result, i, "total");
    double tail = 0.0;
    for (const auto& [v, p] : d.entries()) {
      if (v > budget) tail += p;
    }
    std::cout << "\n" << unit << ": " << d.size()
              << " distinct outcomes, E[loss] = " << d.Mean()
              << ", P[loss > " << budget << "] = " << tail << "\n";
  }

  // The budget question as a query: which units stay within budget with
  // certainty-threshold semantics is an annotation probability:
  //   sigma_{total <= budget}($...)
  QueryPtr within = Query::Select(
      q, Predicate::ColCmpInt("total", CmpOp::kLe, budget));
  PvcTable w = db.Run(*within);
  std::cout << "\nP[unit stays within budget " << budget << "]:\n";
  for (size_t i = 0; i < w.NumRows(); ++i) {
    std::cout << "  " << w.CellAt(i, "unit").AsString() << ": "
              << db.TupleProbability(w.row(i)) << "\n";
  }

  // Exact vs Monte-Carlo (the sampling family of related work).
  std::cout << "\nExact vs Monte-Carlo for the trading unit:\n";
  ExprId total = result.CellAt(0, "total").AsAgg();
  WallTimer exact_timer;
  Distribution exact = db.AggregateDistribution(result, 0, "total");
  double exact_s = exact_timer.ElapsedSeconds();
  for (size_t samples : {1000, 10000, 100000}) {
    WallTimer mc_timer;
    Distribution mc = MonteCarloDistribution(db.pool(), db.variables(),
                                             total, samples, 7);
    double err = 0.0;
    for (const auto& [v, p] : exact.entries()) {
      err = std::max(err, std::abs(p - mc.ProbOf(v)));
    }
    std::cout << "  " << samples << " samples: max abs error " << err
              << " (" << mc_timer.ElapsedSeconds() << "s vs exact "
              << exact_s << "s)\n";
  }
  return 0;
}
