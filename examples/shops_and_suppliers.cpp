// The paper's running example (Figure 1): suppliers, products, and the
// shops that sell them -- reproduced end to end.
//
// Prints the input pvc-tables, the result of the positive query
//   Q1 = pi_{shop, price}[S |x| PS |x| (P1 U P2)]
// with its semiring annotations (Figure 1d), the result of the aggregate
// query
//   Q2 = pi_shop sigma_{P <= 50} $_{shop; P <- MAX(price)}[Q1]
// with its conditional annotations (Figure 1e), and exact probabilities
// for every answer.

#include <iostream>

#include "src/engine/database.h"
#include "src/expr/print.h"

using namespace pvcdb;

namespace {

void AddFigure1Tables(Database* db) {
  auto var = [db](const std::string& name, double p) {
    return db->pool().Var(db->variables().AddBernoulli(p, name));
  };
  PvcTable s{Schema({{"sid", CellType::kInt}, {"shop", CellType::kString}})};
  s.AddRow({Cell(int64_t{1}), Cell("M&S")}, var("x1", 0.8));
  s.AddRow({Cell(int64_t{2}), Cell("M&S")}, var("x2", 0.7));
  s.AddRow({Cell(int64_t{3}), Cell("M&S")}, var("x3", 0.6));
  s.AddRow({Cell(int64_t{4}), Cell("Gap")}, var("x4", 0.9));
  s.AddRow({Cell(int64_t{5}), Cell("Gap")}, var("x5", 0.5));
  db->AddTable("S", std::move(s));

  PvcTable ps{Schema({{"ps_sid", CellType::kInt},
                      {"pid", CellType::kInt},
                      {"price", CellType::kInt}})};
  struct E {
    int64_t sid, pid, price;
    const char* v;
  };
  for (const E& e : std::initializer_list<E>{{1, 1, 10, "y11"},
                                             {1, 2, 50, "y12"},
                                             {2, 1, 11, "y21"},
                                             {2, 2, 60, "y22"},
                                             {3, 3, 15, "y33"},
                                             {3, 4, 40, "y34"},
                                             {4, 1, 15, "y41"},
                                             {4, 3, 60, "y43"},
                                             {5, 1, 10, "y51"}}) {
    ps.AddRow({Cell(e.sid), Cell(e.pid), Cell(e.price)}, var(e.v, 0.75));
  }
  db->AddTable("PS", std::move(ps));

  PvcTable p1{Schema({{"p_pid", CellType::kInt}, {"weight", CellType::kInt}})};
  p1.AddRow({Cell(int64_t{1}), Cell(int64_t{4})}, var("z1", 0.6));
  p1.AddRow({Cell(int64_t{2}), Cell(int64_t{8})}, var("z2", 0.6));
  p1.AddRow({Cell(int64_t{3}), Cell(int64_t{7})}, var("z3", 0.6));
  p1.AddRow({Cell(int64_t{4}), Cell(int64_t{6})}, var("z4", 0.6));
  db->AddTable("P1", std::move(p1));

  PvcTable p2{Schema({{"p_pid", CellType::kInt}, {"weight", CellType::kInt}})};
  p2.AddRow({Cell(int64_t{1}), Cell(int64_t{5})}, var("z5", 0.6));
  db->AddTable("P2", std::move(p2));
}

}  // namespace

int main() {
  Database db;
  AddFigure1Tables(&db);

  std::cout << "=== Input pvc-tables (Figure 1 a-c) ===\n\n";
  for (const char* name : {"S", "PS", "P1", "P2"}) {
    std::cout << name << ":\n"
              << db.table(name).ToString(&db.pool()) << "\n";
  }

  // Q1 = pi_{shop, price}[S |x| PS |x| (P1 U P2)].
  QueryPtr products = Query::Union(Query::Scan("P1"), Query::Scan("P2"));
  QueryPtr q1 = Query::Project(
      Query::Join(Query::Join(Query::Scan("S"), Query::Scan("PS"),
                              Predicate::ColEqCol("sid", "ps_sid")),
                  products, Predicate::ColEqCol("pid", "p_pid")),
      {"shop", "price"});
  PvcTable r1 = db.Run(*q1);
  std::cout << "=== Q1 (Figure 1d) ===\n" << q1->ToString() << "\n\n"
            << r1.ToString(&db.pool()) << "\n";
  for (size_t i = 0; i < r1.NumRows(); ++i) {
    std::cout << "P[<" << r1.CellAt(i, "shop").AsString() << ", "
              << r1.CellAt(i, "price").AsInt()
              << "> in answer] = " << db.TupleProbability(r1.row(i)) << "\n";
  }

  // Q2 = pi_shop sigma_{P <= 50} $_{shop; P <- MAX(price)}[Q1].
  QueryPtr q2 = Query::Project(
      Query::Select(Query::GroupAgg(q1, {"shop"},
                                    {{AggKind::kMax, "price", "P"}}),
                    Predicate::ColCmpInt("P", CmpOp::kLe, 50)),
      {"shop"});
  PvcTable r2 = db.Run(*q2);
  std::cout << "\n=== Q2 (Figure 1e) ===\n" << q2->ToString() << "\n\n"
            << r2.ToString(&db.pool()) << "\n";
  std::cout << "Probabilities that the maximal price in a shop is <= 50 "
               "(and the shop sells anything at all):\n";
  for (size_t i = 0; i < r2.NumRows(); ++i) {
    std::cout << "P[" << r2.CellAt(i, "shop").AsString()
              << "] = " << db.TupleProbability(r2.row(i)) << "\n";
  }

  // Bonus: the MAX price distribution per shop, conditioned on presence.
  QueryPtr agg = Query::GroupAgg(q1, {"shop"},
                                 {{AggKind::kMax, "price", "P"}});
  PvcTable ra = db.Run(*agg);
  std::cout << "\nConditional MAX(price) distributions:\n";
  for (size_t i = 0; i < ra.NumRows(); ++i) {
    std::cout << ra.CellAt(i, "shop").AsString() << ": "
              << db.ConditionalAggregateDistribution(ra, i, "P").ToString()
              << "\n";
  }
  return 0;
}
