// Probabilistic decision support on TPC-H-shaped data (the Experiment F
// scenario): generate a tuple-independent TPC-H instance, run the paper's
// two queries, and report probabilities with the Q0 / [[.]] / P(.) phase
// breakdown.

#include <iostream>

#include "src/engine/database.h"
#include "src/tpch/tpch_gen.h"
#include "src/tpch/tpch_queries.h"
#include "src/util/timer.h"

using namespace pvcdb;

int main() {
  Database db;
  TpchConfig config;
  config.scale_factor = 0.01;  // ~1000 lineitems.
  config.seed = 2026;
  GenerateTpch(&db, config);
  std::cout << "Generated TPC-H instance at SF " << config.scale_factor
            << ": " << db.table("lineitem").NumRows() << " lineitems, "
            << db.table("orders").NumRows() << " orders, "
            << db.table("partsupp").NumRows() << " partsupps\n\n";

  // --- Q1: counts per (returnflag, linestatus) for early shipments. ---
  QueryPtr q1 = BuildTpchQ1(/*shipdate_cutoff=*/1800);
  WallTimer t1;
  PvcTable r1 = db.Run(*q1);
  double rewrite_s = t1.ElapsedSeconds();
  std::cout << "Q1 = " << q1->ToString() << "\n";
  std::cout << "([[.]] took " << rewrite_s << "s; " << r1.NumRows()
            << " groups)\n";
  WallTimer t1p;
  for (size_t i = 0; i < r1.NumRows(); ++i) {
    Distribution cnt = db.ConditionalAggregateDistribution(r1, i, "cnt");
    std::cout << "  group (" << r1.CellAt(i, "l_returnflag").AsString()
              << ", " << r1.CellAt(i, "l_linestatus").AsString()
              << "): P[group non-empty] = "
              << db.TupleProbability(r1.row(i))
              << ", E[count | non-empty] = " << cnt.Mean()
              << ", support size " << cnt.size() << "\n";
  }
  std::cout << "(P(.) took " << t1p.ElapsedSeconds() << "s)\n\n";

  // --- Q2: minimum-cost supplier for one part in one region. ---
  const int64_t partkey = 0;
  const std::string region = "EUROPE";
  QueryPtr q2 = BuildTpchQ2(&db, partkey, region);
  WallTimer t2;
  PvcTable r2 = db.Run(*q2);
  std::cout << "Q2: suppliers of part " << partkey << " at the minimum "
            << "supply cost within " << region << " ([[.]] took "
            << t2.ElapsedSeconds() << "s; " << r2.NumRows()
            << " candidate suppliers)\n";
  for (size_t i = 0; i < r2.NumRows(); ++i) {
    std::cout << "  P[" << r2.CellAt(i, "s_name").AsString()
              << " is the cheapest] = " << db.TupleProbability(r2.row(i))
              << "\n";
  }

  // --- A deterministic cross-check (the Q0 baseline). ---
  PvcTable det = db.RunDeterministic(*q2);
  std::cout << "\nDeterministic (all tuples present) answer:";
  for (size_t i = 0; i < det.NumRows(); ++i) {
    std::cout << " " << det.CellAt(i, "s_name").AsString();
  }
  std::cout << "\n";
  return 0;
}
