// pvcdb_shell -- an interactive / batch shell for the pvcdb engine.
//
// Commands (one per line; lines starting with SELECT run as SQL):
//   load <table> <file.csv>   import a tuple-independent table (see
//                             src/engine/csv.h for the format)
//   tables                    list loaded tables with row counts
//   show <table>              print a table with its annotations
//   tractable <sql...>        classify a query (Q_ind / Q_hie / neither)
//   SELECT ...                run a Q query; prints tuples, P[tuple], and
//                             conditional aggregate distributions
//   insert <table> <cells...> <prob>
//                             append a tuple (one token per column; no
//                             spaces in strings) with P[present] = prob;
//                             registered views update incrementally
//   delete <table> <key>      delete every row whose first-column cell
//                             equals <key>
//   setprob <var> <p>         update a variable's marginal (accepts "x3"
//                             or a numeric id); cached d-trees mentioning
//                             the variable are re-evaluated in place
//   view <name> SELECT ...    register a materialized view
//   view <name>               print a view's tuples and cached P[tuple]
//   views                     list views (maintenance plan, rows, cache)
//   threads [n]               show or set the thread count
//   shards [n]                show or set the shard count: n >= 1 rebuilds
//                             the session as a ShardedDatabase with n
//                             hash-partitioned shards (re-importing every
//                             loaded CSV and replaying mutations + views),
//                             0 returns to a single database. Results are
//                             bit-identical either way.
//   open <dir>                make the session durable (WAL + snapshots;
//                             recovers <dir> when it already holds state)
//   save                      write a checkpoint generation
//   log                       durability status
//   help                      this text
//   quit                      exit
//
// Client mode: `pvcdb_shell --connect <addr>` attaches to a running
// pvcdb_server (tools/pvcdb_server.cc) instead of hosting an engine. Each
// line travels as one kClientCommand frame; the server's rendered reply is
// printed verbatim, so transcripts match the local shell line for line
// (modulo server-only commands -- see docs/SERVING.md).
//
// Example session:
//   load items data/items.csv
//   view pricey SELECT * FROM items WHERE price >= 1000
//   insert items tool drill 1450 0.7
//   view pricey
//
// Batch use: pipe commands through stdin (the shell detects non-tty input
// and suppresses prompts).

#include <unistd.h>

#include <algorithm>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/csv.h"
#include "src/engine/database.h"
#include "src/engine/shard.h"
#include "src/engine/snapshot.h"
#include "src/net/frame.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/query/parser.h"
#include "src/query/tractability.h"
#include "src/util/check.h"
#include "src/util/metrics.h"
#include "src/util/parallel.h"

namespace {

using namespace pvcdb;

// The session: a single Database, or a ShardedDatabase when `shards n` is
// active. Every successful state-changing command (load / insert /
// delete / setprob / view) is logged verbatim, in order, so resharding
// replays the exact session history onto the new topology -- preserving
// the interleaving (a reload between mutations, a view redefined after
// inserts) is what makes the rebuilt state, and hence every printed
// result, bit-identical across shard counts.
// With `open <dir>` the session becomes durable: the engines move into a
// DurableSession (WAL + snapshot generations, src/engine/snapshot.h),
// every mutation is logged before it reports success, `save` writes a
// checkpoint, and reopening the directory recovers the exact state --
// including a torn tail from a crash mid-write. Resharding then logs a
// kReshard record instead of replaying the history.
struct Session {
  std::unique_ptr<Database> owned_db = std::make_unique<Database>();
  std::unique_ptr<ShardedDatabase> owned_sharded;
  std::unique_ptr<DurableSession> durable;
  std::vector<std::string> history;  ///< State-changing lines, in order.
  int num_threads = 0;
  int intra_tree_threads = 0;

  Database* db() const {
    if (durable != nullptr) {
      return durable->is_sharded() ? nullptr : durable->db();
    }
    return owned_db.get();
  }
  ShardedDatabase* sharded() const {
    if (durable != nullptr) {
      return durable->is_sharded() ? durable->sharded() : nullptr;
    }
    return owned_sharded.get();
  }
  const Database& catalog() const {
    ShardedDatabase* s = sharded();
    return s != nullptr ? s->coordinator() : *db();
  }
};

void PrintHelp() {
  std::cout << "commands:\n"
            << "  load <table> <file.csv>  import a tuple-independent table\n"
            << "  tables                   list tables\n"
            << "  show <table>             print a pvc-table\n"
            << "  tractable <sql>          classify a query\n"
            << "  SELECT ...               run a query\n"
            << "  insert <table> <cells...> <prob>  append a tuple\n"
            << "  delete <table> <key>     delete rows matching the key\n"
            << "  setprob <var> <p>        update a variable's marginal\n"
            << "  view <name> [SELECT ...] register / print a view\n"
            << "  views                    list materialized views\n"
            << "  stats [--json]           metrics snapshot (table or JSON\n"
            << "                           Lines)\n"
            << "  threads [n]              show or set the thread count\n"
            << "                           (0 = serial, -1 = all cores)\n"
            << "  intratree [n]            show or set the intra-d-tree\n"
            << "                           probability thread count\n"
            << "  shards [n]               show or set the shard count\n"
            << "                           (0 = single database)\n"
            << "  open <dir>               make the session durable: recover\n"
            << "                           <dir> if it holds state, else\n"
            << "                           snapshot the current state there\n"
            << "  save                     write a checkpoint (new snapshot\n"
            << "                           generation, fresh WAL)\n"
            << "  log                      durability status (generation,\n"
            << "                           WAL records/bytes, recovery info)\n"
            << "  help | quit\n";
}

// Prints the per-row probability lines shared by both engine modes.
void PrintRowProbabilities(
    const Schema& schema, const std::vector<double>& probabilities,
    const std::function<Distribution(size_t, const std::string&)>&
        conditional_agg) {
  for (size_t i = 0; i < probabilities.size(); ++i) {
    std::cout << "P[row " << i << "] = " << probabilities[i];
    for (size_t c = 0; c < schema.NumColumns(); ++c) {
      if (schema.column(c).type == CellType::kAggExpr) {
        const std::string& name = schema.column(c).name;
        std::cout << "  " << name << " | present ~ "
                  << conditional_agg(i, name).ToString();
      }
    }
    std::cout << "\n";
  }
}

void RunSql(Session* session, const std::string& sql) {
  ParseResult parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    std::cout << parsed.error << "\n";
    return;
  }
  try {
    if (session->sharded() != nullptr) {
      ShardedDatabase& db = *session->sharded();
      ShardedResult result = db.Run(*parsed.query);
      std::cout << db.ResultToString(result);
      std::vector<double> probabilities = db.TupleProbabilities(result);
      PrintRowProbabilities(
          result.schema(), probabilities,
          [&](size_t i, const std::string& name) {
            return db.ConditionalAggregateDistribution(result, i, name);
          });
    } else {
      Database& db = *session->db();
      PvcTable result = db.Run(*parsed.query);
      std::cout << result.ToString(&db.pool());
      // Batch step II: fans across db.eval_options().num_threads threads.
      std::vector<double> probabilities = db.TupleProbabilities(result);
      PrintRowProbabilities(
          result.schema(), probabilities,
          [&](size_t i, const std::string& name) {
            return db.ConditionalAggregateDistribution(result, i, name);
          });
    }
  } catch (const CheckError& e) {
    std::cout << "error: " << e.what() << "\n";
  }
}

void Classify(const Database& db, const std::string& sql) {
  ParseResult parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    std::cout << parsed.error << "\n";
    return;
  }
  TractabilityResult r = AnalyzeTractability(
      *parsed.query,
      [&db](const std::string& name) {
        return db.HasTable(name) &&
               IsTupleIndependent(db.table(name), db.pool());
      },
      [&db](const std::string& name) {
        std::vector<std::string> cols;
        if (db.HasTable(name)) {
          for (const Column& c : db.table(name).schema().columns()) {
            cols.push_back(c.name);
          }
        }
        return cols;
      });
  std::cout << "hierarchical: " << (r.hierarchical ? "yes" : "no")
            << "; Q_ind: " << (r.in_qind ? "yes" : "no")
            << "; Q_hie: " << (r.in_qhie ? "yes" : "no") << " ("
            << r.explanation << ")\n";
}

bool LoadInto(Session* session, const std::string& table,
              const std::string& path) {
  CsvResult r = session->sharded() != nullptr
                    ? LoadCsvTableFromFile(session->sharded(), table, path)
                    : LoadCsvTableFromFile(session->db(), table, path);
  if (r.ok) {
    std::cout << "loaded " << r.rows << " rows into " << table << "\n";
  } else {
    std::cout << "error: " << r.error << "\n";
  }
  return r.ok;
}

void ApplyThreads(Session* session) {
  EvalOptions& options = session->sharded() != nullptr
                             ? session->sharded()->eval_options()
                             : session->db()->eval_options();
  options.num_threads = session->num_threads;
  options.intra_tree_threads = session->intra_tree_threads;
}

// Parses the whole of `token` as a double; rejects trailing garbage.
bool ParseFullDouble(const std::string& token, double* out) {
  try {
    size_t pos = 0;
    *out = std::stod(token, &pos);
    return pos == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

// Parses the whole of `token` as a cell of column type `type` (partial
// parses like "14.99" for an int column are rejected, not truncated).
bool ParseCellToken(const std::string& token, CellType type, Cell* out) {
  try {
    size_t pos = 0;
    switch (type) {
      case CellType::kInt: {
        int64_t v = std::stoll(token, &pos);
        if (pos != token.size()) return false;
        *out = Cell(v);
        return true;
      }
      case CellType::kDouble: {
        double v = std::stod(token, &pos);
        if (pos != token.size()) return false;
        *out = Cell(v);
        return true;
      }
      case CellType::kString:
        *out = Cell(token);
        return true;
      default:
        return false;
    }
  } catch (const std::exception&) {
    return false;
  }
}

bool RunInsert(Session* session, std::istream& stream, bool quiet) {
  std::string table;
  stream >> table;
  std::vector<std::string> tokens;
  std::string token;
  while (stream >> token) tokens.push_back(token);
  const Database& catalog = session->catalog();
  if (table.empty() || !catalog.HasTable(table)) {
    std::cout << "no table '" << table << "'\n";
    return false;
  }
  const Schema& schema = catalog.table(table).schema();
  if (tokens.size() != schema.NumColumns() + 1) {
    std::cout << "usage: insert <table> <" << schema.NumColumns()
              << " cells> <prob>\n";
    return false;
  }
  std::vector<Cell> cells(schema.NumColumns());
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    if (!ParseCellToken(tokens[i], schema.column(i).type, &cells[i])) {
      std::cout << "cannot parse '" << tokens[i] << "' for column '"
                << schema.column(i).name << "'\n";
      return false;
    }
  }
  double p = 0.0;
  // The negated >= form also rejects NaN (every NaN comparison is false).
  if (!ParseFullDouble(tokens.back(), &p) || !(p >= 0.0 && p <= 1.0)) {
    std::cout << "bad probability '" << tokens.back() << "'\n";
    return false;
  }
  try {
    if (session->sharded() != nullptr) {
      session->sharded()->InsertTuple(table, std::move(cells), p);
    } else {
      session->db()->InsertTuple(table, std::move(cells), p);
    }
  } catch (const CheckError& e) {
    std::cout << "error: " << e.what() << "\n";
    return false;
  }
  if (!quiet) {
    std::cout << "inserted into " << table << " ("
              << session->catalog().table(table).NumRows() << " rows)\n";
  }
  return true;
}

bool RunDelete(Session* session, std::istream& stream, bool quiet) {
  std::string table;
  std::string key_token;
  stream >> table >> key_token;
  const Database& catalog = session->catalog();
  if (table.empty() || key_token.empty() || !catalog.HasTable(table)) {
    std::cout << (catalog.HasTable(table) ? "usage: delete <table> <key>\n"
                                          : "no table '" + table + "'\n");
    return false;
  }
  Cell key;
  CellType key_type = catalog.table(table).schema().column(0).type;
  if (!ParseCellToken(key_token, key_type, &key)) {
    std::cout << "cannot parse key '" << key_token << "'\n";
    return false;
  }
  size_t removed = 0;
  try {
    removed = session->sharded() != nullptr
                  ? session->sharded()->DeleteTuple(table, key)
                  : session->db()->DeleteTuple(table, key);
  } catch (const CheckError& e) {
    std::cout << "error: " << e.what() << "\n";
    return false;
  }
  if (!quiet) {
    std::cout << "deleted " << removed << " rows from " << table << "\n";
  }
  return true;
}

bool RunSetProb(Session* session, std::istream& stream, bool quiet) {
  std::string var_token;
  std::string p_token;
  stream >> var_token >> p_token;
  if (!var_token.empty() && var_token[0] == 'x') {
    var_token = var_token.substr(1);
  }
  // Both arguments must parse in full -- a typo like "0..5" must not
  // silently become a destructive p = 0 update.
  VarId var = 0;
  double p = -1.0;
  try {
    size_t pos = 0;
    var = static_cast<VarId>(std::stoul(var_token, &pos));
    if (pos != var_token.size()) throw std::invalid_argument(var_token);
  } catch (const std::exception&) {
    std::cout << "usage: setprob <var> <p in [0,1]>\n";
    return false;
  }
  // The negated >= form also rejects NaN (every NaN comparison is false).
  if (!ParseFullDouble(p_token, &p) || !(p >= 0.0 && p <= 1.0)) {
    std::cout << "usage: setprob <var> <p in [0,1]>\n";
    return false;
  }
  const VariableTable& variables = session->catalog().variables();
  if (var >= variables.size()) {
    std::cout << "unknown variable x" << var << "\n";
    return false;
  }
  try {
    if (session->sharded() != nullptr) {
      session->sharded()->UpdateProbability(var, p);
    } else {
      session->db()->UpdateProbability(var, p);
    }
  } catch (const CheckError& e) {
    std::cout << "error: " << e.what() << "\n";
    return false;
  }
  if (!quiet) {
    std::cout << "P[" << variables.NameOf(var) << " = 1] = " << p << "\n";
  }
  return true;
}

// Re-applies a logged mutation line ("insert ...", "delete ...",
// "setprob ...") -- the reshard replay path.
bool ApplyMutationLine(Session* session, const std::string& line,
                       bool quiet) {
  std::istringstream stream(line);
  std::string command;
  stream >> command;
  if (command == "insert") return RunInsert(session, stream, quiet);
  if (command == "delete") return RunDelete(session, stream, quiet);
  if (command == "setprob") return RunSetProb(session, stream, quiet);
  return false;
}

bool RegisterViewCommand(Session* session, const std::string& name,
                         const std::string& sql, bool quiet) {
  ParseResult parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    std::cout << parsed.error << "\n";
    return false;
  }
  try {
    size_t rows = 0;
    if (session->sharded() != nullptr) {
      session->sharded()->RegisterView(name, parsed.query);
      rows = session->sharded()->ViewResult(name).NumRows();
    } else {
      rows = session->db()->RegisterView(name, parsed.query).NumRows();
    }
    if (!quiet) {
      std::cout << "view " << name << " registered (" << rows << " rows)\n";
    }
    return true;
  } catch (const CheckError& e) {
    std::cout << "error: " << e.what() << "\n";
    return false;
  }
}

void PrintView(Session* session, const std::string& name) {
  try {
    if (session->sharded() != nullptr) {
      ShardedDatabase& db = *session->sharded();
      if (!db.HasView(name)) {
        std::cout << "no view '" << name << "'\n";
        return;
      }
      ShardedResult result = db.ViewResult(name);
      std::cout << db.ResultToString(result);
      PrintRowProbabilities(
          result.schema(), db.ViewProbabilities(name),
          [&](size_t i, const std::string& column) {
            return db.ConditionalAggregateDistribution(result, i, column);
          });
    } else {
      Database& db = *session->db();
      if (!db.HasView(name)) {
        std::cout << "no view '" << name << "'\n";
        return;
      }
      const PvcTable& result = db.ViewTable(name);
      std::cout << result.ToString(&db.pool());
      PrintRowProbabilities(
          result.schema(), db.ViewProbabilities(name),
          [&](size_t i, const std::string& column) {
            return db.ConditionalAggregateDistribution(result, i, column);
          });
    }
  } catch (const CheckError& e) {
    std::cout << "error: " << e.what() << "\n";
  }
}

void ListViews(Session* session) {
  if (session->sharded() != nullptr) {
    for (const ShardedDatabase::ViewInfo& info :
         session->sharded()->ViewInfos()) {
      std::cout << info.name << " (" << info.plan << ", " << info.rows
                << " rows, " << info.cache_entries << " cached d-trees)\n";
    }
    return;
  }
  Database& db = *session->db();
  for (const std::string& name : db.ViewNames()) {
    const MaterializedView& view = db.views().view(name);
    std::cout << name << " ("
              << MaterializedView::PlanName(view.plan()) << ", "
              << db.ViewTable(name).NumRows() << " rows, "
              << view.step_two().LiveEntries(db.ViewTable(name))
              << " cached d-trees)\n";
  }
}

void Reshard(Session* session, int n) {
  // A durable session reshards through its WAL: the kReshard record is
  // logged and the engine rebuilt from its own captured state -- no
  // history replay, and the topology survives a restart.
  if (session->durable != nullptr) {
    std::string error;
    if (!session->durable->Reshard(static_cast<uint64_t>(n), &error)) {
      std::cout << "error: " << error << "\n";
      return;
    }
    ApplyThreads(session);
    std::cout << "shards = " << n << " (durable reshard logged)\n";
    return;
  }

  // The new engine is built and the session history replayed onto it, in
  // the original command order, before the old engine is torn down. The
  // history survives failed replays (e.g. a CSV that has vanished), so a
  // broken line only skips its effect for this topology instead of
  // dropping it from the session for good.
  std::unique_ptr<Database> db;
  std::unique_ptr<ShardedDatabase> sharded;
  if (n >= 1) {
    sharded = std::make_unique<ShardedDatabase>(static_cast<size_t>(n));
  } else {
    db = std::make_unique<Database>();
  }
  std::swap(session->owned_db, db);
  std::swap(session->owned_sharded, sharded);
  ApplyThreads(session);
  size_t reloaded = 0;
  size_t replayed = 0;
  size_t views = 0;
  for (const std::string& line : session->history) {
    std::istringstream stream(line);
    std::string command;
    stream >> command;
    if (command == "load") {
      std::string table;
      std::string path;
      stream >> table >> path;
      if (LoadInto(session, table, path)) ++reloaded;
    } else if (command == "view") {
      std::string name;
      std::string rest;
      stream >> name;
      std::getline(stream, rest);
      size_t sql_start = rest.find_first_not_of(" \t");
      if (sql_start != std::string::npos &&
          RegisterViewCommand(session, name, rest.substr(sql_start),
                              /*quiet=*/true)) {
        ++views;
      }
    } else if (ApplyMutationLine(session, line, /*quiet=*/true)) {
      ++replayed;
    }
  }
  std::cout << "shards = " << n << " (" << reloaded
            << " tables re-imported, " << replayed
            << " mutations replayed, " << views << " views)\n";
}

void OpenDurable(Session* session, const std::string& dir) {
  if (session->durable != nullptr) {
    std::cout << "already durable at " << session->durable->dir()
              << " (one directory per session)\n";
    return;
  }
  DurableConfig config;
  config.dir = dir;
  std::string error;
  std::unique_ptr<DurableSession> durable;
  const bool recovered = DurableSession::HasState(DefaultFileSystem(), dir);
  try {
    durable = recovered ? DurableSession::Recover(config, &error)
                        : DurableSession::Create(
                              config,
                              session->sharded() != nullptr
                                  ? CaptureState(*session->sharded())
                                  : CaptureState(*session->db()),
                              &error);
  } catch (const CheckError& e) {
    std::cout << "error: " << e.what() << "\n";
    return;
  }
  if (durable == nullptr) {
    std::cout << "error: " << error << "\n";
    return;
  }
  // The durable engine was rebuilt from the captured / recovered state
  // (bit-identical to the live one); the undurable engines retire.
  session->durable = std::move(durable);
  session->owned_db.reset();
  session->owned_sharded.reset();
  ApplyThreads(session);
  DurableStats stats = session->durable->stats();
  if (recovered) {
    std::cout << "recovered " << dir << " (generation " << stats.generation
              << ", " << stats.replayed_records << " WAL records replayed"
              << (stats.tail_truncated ? ", torn tail truncated" : "")
              << ")\n";
  } else {
    std::cout << "opened " << dir << " (generation " << stats.generation
              << ", " << session->catalog().TableNames().size()
              << " tables snapshotted)\n";
  }
}

void PrintDurabilityLog(Session* session) {
  if (session->durable == nullptr) {
    std::cout << "not durable (use 'open <dir>')\n";
    return;
  }
  DurableStats stats = session->durable->stats();
  std::cout << "dir = " << session->durable->dir() << "\n"
            << "generation = " << stats.generation << "\n"
            << "wal_records = " << stats.wal_records << "\n"
            << "wal_bytes = " << stats.wal_bytes << "\n"
            << "recovered = " << (stats.recovered ? "yes" : "no") << "\n"
            << "replayed_records = " << stats.replayed_records << "\n"
            << "tail_truncated = " << (stats.tail_truncated ? "yes" : "no")
            << "\n";
}

// Client mode: one request/reply conversation per input line against a
// running pvcdb_server. quit/exit terminate locally (like the local shell);
// shutdown is forwarded, its reply printed, and the session ends.
int RunClient(const std::string& address) {
  IgnoreSigPipe();
  std::string error;
  Socket sock = ConnectWithRetry(address, 100, &error);
  if (!sock.valid()) {
    std::cout << "error: " << error << "\n";
    return 1;
  }
  const bool interactive = isatty(fileno(stdin)) != 0;
  if (interactive) {
    std::cout << "pvcdb shell -- connected to " << address
              << " ('help' for commands)\n";
  }
  std::string line;
  while (true) {
    if (interactive) std::cout << "pvcdb> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::istringstream stream(line);
    std::string command;
    stream >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (!SendFrame(&sock, static_cast<uint8_t>(MsgKind::kClientCommand),
                   line)) {
      std::cout << "error: connection to " << address << " lost\n";
      return 1;
    }
    uint8_t kind = 0;
    std::string payload;
    FrameResult r = RecvFrame(&sock, &kind, &payload);
    if (r == FrameResult::kClosed) {
      // Orderly close on a frame boundary: the server evicted this client
      // (idle timeout) or shut down. Distinct from a torn connection.
      std::cout << "error: server closed connection to " << address << "\n";
      return 1;
    }
    if (r != FrameResult::kOk ||
        static_cast<MsgKind>(kind) != MsgKind::kClientReply) {
      std::cout << "error: connection to " << address << " lost\n";
      return 1;
    }
    ClientReplyMsg reply;
    if (!ClientReplyMsg::Decode(payload, &reply)) {
      std::cout << "error: malformed reply from server\n";
      return 1;
    }
    std::cout << reply.text << std::flush;
    if (command == "shutdown") break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_address;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect_address = argv[++i];
    } else {
      std::cout << "usage: pvcdb_shell [--connect <addr>]\n";
      return 2;
    }
  }
  if (!connect_address.empty()) return RunClient(connect_address);

  Session session;
  const bool interactive = isatty(fileno(stdin)) != 0;
  if (interactive) {
    std::cout << "pvcdb shell -- 'help' for commands\n";
  }
  std::string line;
  while (true) {
    if (interactive) std::cout << "pvcdb> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::istringstream stream(line);
    std::string command;
    stream >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
    } else if (command == "load") {
      std::string table;
      std::string path;
      stream >> table >> path;
      if (table.empty() || path.empty()) {
        std::cout << "usage: load <table> <file.csv>\n";
        continue;
      }
      if (LoadInto(&session, table, path)) {
        session.history.push_back(line);
      }
    } else if (command == "tables") {
      const Database& catalog = session.catalog();
      for (const std::string& name : catalog.TableNames()) {
        std::cout << name << " (" << catalog.table(name).NumRows() << " rows";
        if (session.sharded() != nullptr) {
          std::cout << "; per shard:";
          for (size_t count : session.sharded()->ShardRowCounts(name)) {
            std::cout << " " << count;
          }
        }
        std::cout << ")\n";
      }
    } else if (command == "show") {
      std::string table;
      stream >> table;
      const Database& catalog = session.catalog();
      if (!catalog.HasTable(table)) {
        std::cout << "no table '" << table << "'\n";
        continue;
      }
      std::cout << catalog.table(table).ToString(&catalog.pool());
    } else if (command == "tractable") {
      std::string rest;
      std::getline(stream, rest);
      Classify(session.catalog(), rest);
    } else if (command == "insert" || command == "delete" ||
               command == "setprob") {
      if (ApplyMutationLine(&session, line, /*quiet=*/false)) {
        session.history.push_back(line);
      }
    } else if (command == "view") {
      std::string name;
      stream >> name;
      std::string rest;
      std::getline(stream, rest);
      size_t sql_start = rest.find_first_not_of(" \t");
      if (name.empty()) {
        std::cout << "usage: view <name> [SELECT ...]\n";
      } else if (sql_start == std::string::npos) {
        PrintView(&session, name);
      } else {
        std::string sql = rest.substr(sql_start);
        if (RegisterViewCommand(&session, name, sql, /*quiet=*/false)) {
          session.history.push_back(line);
        }
      }
    } else if (command == "views") {
      ListViews(&session);
    } else if (command == "stats") {
      std::string flag;
      stream >> flag;
      if (!flag.empty() && flag != "--json") {
        std::cout << "usage: stats [--json]\n";
      } else {
        std::vector<MetricSnapshot> entries =
            MetricsRegistry::Global().Snapshot();
        std::cout << (flag == "--json" ? RenderMetricsJson(entries)
                                       : RenderMetricsTable(entries));
      }
    } else if (command == "threads") {
      int n = 0;
      if (stream >> n) {
        session.num_threads = n;
        ApplyThreads(&session);
      }
      std::cout << "num_threads = " << session.num_threads
                << " (0 = serial; " << DefaultThreadCount()
                << " hardware threads)\n";
    } else if (command == "intratree") {
      int n = 0;
      if (stream >> n) {
        session.intra_tree_threads = n;
        ApplyThreads(&session);
      }
      std::cout << "intra_tree_threads = " << session.intra_tree_threads
                << " (0 = serial; " << DefaultThreadCount()
                << " hardware threads)\n";
    } else if (command == "shards") {
      int n = 0;
      if (stream >> n) {
        if (n < 0) {
          std::cout << "usage: shards <n >= 0>\n";
          continue;
        }
        Reshard(&session, n);
      } else {
        std::cout << "shards = "
                  << (session.sharded() != nullptr
                          ? static_cast<int>(session.sharded()->num_shards())
                          : 0)
                  << " (0 = single database; router "
                  << (session.sharded() != nullptr
                          ? session.sharded()->router().name()
                          : "fnv1a")
                  << ")\n";
      }
    } else if (command == "open") {
      std::string dir;
      stream >> dir;
      if (dir.empty()) {
        std::cout << "usage: open <dir>\n";
        continue;
      }
      OpenDurable(&session, dir);
    } else if (command == "save") {
      if (session.durable == nullptr) {
        std::cout << "no durable directory open -- use 'open <dir>'\n";
        continue;
      }
      std::string error;
      if (session.durable->Checkpoint(&error)) {
        std::cout << "checkpoint written (generation "
                  << session.durable->stats().generation << ")\n";
      } else {
        std::cout << "error: " << error << "\n";
      }
    } else if (command == "log") {
      PrintDurabilityLog(&session);
    } else if (command == "SELECT" || command == "select") {
      RunSql(&session, line);
    } else {
      std::cout << "unknown command '" << command << "' -- try 'help'\n";
    }
  }
  return 0;
}
