// pvcdb_shell -- an interactive / batch shell for the pvcdb engine.
//
// Commands (one per line; lines starting with SELECT run as SQL):
//   load <table> <file.csv>   import a tuple-independent table (see
//                             src/engine/csv.h for the format)
//   tables                    list loaded tables with row counts
//   show <table>              print a table with its annotations
//   tractable <sql...>        classify a query (Q_ind / Q_hie / neither)
//   SELECT ...                run a Q query; prints tuples, P[tuple], and
//                             conditional aggregate distributions
//   help                      this text
//   quit                      exit
//
// Example session:
//   load items data/items.csv
//   SELECT kind, COUNT(*) AS n FROM items GROUP BY kind HAVING n >= 2
//
// Batch use: pipe commands through stdin (the shell detects non-tty input
// and suppresses prompts).

#include <unistd.h>

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/csv.h"
#include "src/util/check.h"
#include "src/engine/database.h"
#include "src/query/parser.h"
#include "src/query/tractability.h"
#include "src/util/parallel.h"

namespace {

using namespace pvcdb;

void PrintHelp() {
  std::cout << "commands:\n"
            << "  load <table> <file.csv>  import a tuple-independent table\n"
            << "  tables                   list tables\n"
            << "  show <table>             print a pvc-table\n"
            << "  tractable <sql>          classify a query\n"
            << "  SELECT ...               run a query\n"
            << "  threads [n]              show or set the thread count\n"
            << "                           (0 = serial, -1 = all cores)\n"
            << "  help | quit\n";
}

void RunSql(Database* db, const std::string& sql) {
  ParseResult parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    std::cout << parsed.error << "\n";
    return;
  }
  try {
    PvcTable result = db->Run(*parsed.query);
    std::cout << result.ToString(&db->pool());
    // Batch step II: fans across db->eval_options().num_threads threads.
    std::vector<double> probabilities = db->TupleProbabilities(result);
    for (size_t i = 0; i < result.NumRows(); ++i) {
      std::cout << "P[row " << i << "] = " << probabilities[i];
      for (size_t c = 0; c < result.schema().NumColumns(); ++c) {
        if (result.schema().column(c).type == CellType::kAggExpr) {
          const std::string& name = result.schema().column(c).name;
          std::cout << "  " << name << " | present ~ "
                    << db->ConditionalAggregateDistribution(result, i, name)
                           .ToString();
        }
      }
      std::cout << "\n";
    }
  } catch (const CheckError& e) {
    std::cout << "error: " << e.what() << "\n";
  }
}

void Classify(Database* db, const std::string& sql) {
  ParseResult parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    std::cout << parsed.error << "\n";
    return;
  }
  TractabilityResult r = AnalyzeTractability(
      *parsed.query,
      [db](const std::string& name) {
        return db->HasTable(name) &&
               IsTupleIndependent(db->table(name), db->pool());
      },
      [db](const std::string& name) {
        std::vector<std::string> cols;
        if (db->HasTable(name)) {
          for (const Column& c : db->table(name).schema().columns()) {
            cols.push_back(c.name);
          }
        }
        return cols;
      });
  std::cout << "hierarchical: " << (r.hierarchical ? "yes" : "no")
            << "; Q_ind: " << (r.in_qind ? "yes" : "no")
            << "; Q_hie: " << (r.in_qhie ? "yes" : "no") << " ("
            << r.explanation << ")\n";
}

}  // namespace

int main() {
  Database db;
  const bool interactive = isatty(fileno(stdin)) != 0;
  if (interactive) {
    std::cout << "pvcdb shell -- 'help' for commands\n";
  }
  std::string line;
  while (true) {
    if (interactive) std::cout << "pvcdb> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::istringstream stream(line);
    std::string command;
    stream >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
    } else if (command == "load") {
      std::string table;
      std::string path;
      stream >> table >> path;
      if (table.empty() || path.empty()) {
        std::cout << "usage: load <table> <file.csv>\n";
        continue;
      }
      CsvResult r = LoadCsvTableFromFile(&db, table, path);
      if (r.ok) {
        std::cout << "loaded " << r.rows << " rows into " << table << "\n";
      } else {
        std::cout << "error: " << r.error << "\n";
      }
    } else if (command == "tables") {
      for (const std::string& name : db.TableNames()) {
        std::cout << name << " (" << db.table(name).NumRows() << " rows)\n";
      }
    } else if (command == "show") {
      std::string table;
      stream >> table;
      if (!db.HasTable(table)) {
        std::cout << "no table '" << table << "'\n";
        continue;
      }
      std::cout << db.table(table).ToString(&db.pool());
    } else if (command == "tractable") {
      std::string rest;
      std::getline(stream, rest);
      Classify(&db, rest);
    } else if (command == "threads") {
      int n = 0;
      if (stream >> n) {
        db.eval_options().num_threads = n;
      }
      std::cout << "num_threads = " << db.eval_options().num_threads
                << " (0 = serial; " << DefaultThreadCount()
                << " hardware threads)\n";
    } else if (command == "SELECT" || command == "select") {
      RunSql(&db, line);
    } else {
      std::cout << "unknown command '" << command << "' -- try 'help'\n";
    }
  }
  return 0;
}
