// pvcdb_shell -- an interactive / batch shell for the pvcdb engine.
//
// Commands (one per line; lines starting with SELECT run as SQL):
//   load <table> <file.csv>   import a tuple-independent table (see
//                             src/engine/csv.h for the format)
//   tables                    list loaded tables with row counts
//   show <table>              print a table with its annotations
//   tractable <sql...>        classify a query (Q_ind / Q_hie / neither)
//   SELECT ...                run a Q query; prints tuples, P[tuple], and
//                             conditional aggregate distributions
//   threads [n]               show or set the thread count
//   shards [n]                show or set the shard count: n >= 1 rebuilds
//                             the session as a ShardedDatabase with n
//                             hash-partitioned shards (re-importing every
//                             loaded CSV), 0 returns to a single database.
//                             Results are bit-identical either way.
//   help                      this text
//   quit                      exit
//
// Example session:
//   load items data/items.csv
//   SELECT kind, COUNT(*) AS n FROM items GROUP BY kind HAVING n >= 2
//
// Batch use: pipe commands through stdin (the shell detects non-tty input
// and suppresses prompts).

#include <unistd.h>

#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/csv.h"
#include "src/engine/database.h"
#include "src/engine/shard.h"
#include "src/query/parser.h"
#include "src/query/tractability.h"
#include "src/util/check.h"
#include "src/util/parallel.h"

namespace {

using namespace pvcdb;

// The session: a single Database, or a ShardedDatabase when `shards n` is
// active. Loaded CSVs are remembered so resharding can replay them.
struct Session {
  std::unique_ptr<Database> db = std::make_unique<Database>();
  std::unique_ptr<ShardedDatabase> sharded;
  std::vector<std::pair<std::string, std::string>> loads;  // table, path.
  int num_threads = 0;

  const Database& catalog() const {
    return sharded != nullptr ? sharded->coordinator() : *db;
  }
};

void PrintHelp() {
  std::cout << "commands:\n"
            << "  load <table> <file.csv>  import a tuple-independent table\n"
            << "  tables                   list tables\n"
            << "  show <table>             print a pvc-table\n"
            << "  tractable <sql>          classify a query\n"
            << "  SELECT ...               run a query\n"
            << "  threads [n]              show or set the thread count\n"
            << "                           (0 = serial, -1 = all cores)\n"
            << "  shards [n]               show or set the shard count\n"
            << "                           (0 = single database)\n"
            << "  help | quit\n";
}

// Prints the per-row probability lines shared by both engine modes.
void PrintRowProbabilities(
    const Schema& schema, const std::vector<double>& probabilities,
    const std::function<Distribution(size_t, const std::string&)>&
        conditional_agg) {
  for (size_t i = 0; i < probabilities.size(); ++i) {
    std::cout << "P[row " << i << "] = " << probabilities[i];
    for (size_t c = 0; c < schema.NumColumns(); ++c) {
      if (schema.column(c).type == CellType::kAggExpr) {
        const std::string& name = schema.column(c).name;
        std::cout << "  " << name << " | present ~ "
                  << conditional_agg(i, name).ToString();
      }
    }
    std::cout << "\n";
  }
}

void RunSql(Session* session, const std::string& sql) {
  ParseResult parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    std::cout << parsed.error << "\n";
    return;
  }
  try {
    if (session->sharded != nullptr) {
      ShardedDatabase& db = *session->sharded;
      ShardedResult result = db.Run(*parsed.query);
      std::cout << db.ResultToString(result);
      std::vector<double> probabilities = db.TupleProbabilities(result);
      PrintRowProbabilities(
          result.schema(), probabilities,
          [&](size_t i, const std::string& name) {
            return db.ConditionalAggregateDistribution(result, i, name);
          });
    } else {
      Database& db = *session->db;
      PvcTable result = db.Run(*parsed.query);
      std::cout << result.ToString(&db.pool());
      // Batch step II: fans across db.eval_options().num_threads threads.
      std::vector<double> probabilities = db.TupleProbabilities(result);
      PrintRowProbabilities(
          result.schema(), probabilities,
          [&](size_t i, const std::string& name) {
            return db.ConditionalAggregateDistribution(result, i, name);
          });
    }
  } catch (const CheckError& e) {
    std::cout << "error: " << e.what() << "\n";
  }
}

void Classify(const Database& db, const std::string& sql) {
  ParseResult parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    std::cout << parsed.error << "\n";
    return;
  }
  TractabilityResult r = AnalyzeTractability(
      *parsed.query,
      [&db](const std::string& name) {
        return db.HasTable(name) &&
               IsTupleIndependent(db.table(name), db.pool());
      },
      [&db](const std::string& name) {
        std::vector<std::string> cols;
        if (db.HasTable(name)) {
          for (const Column& c : db.table(name).schema().columns()) {
            cols.push_back(c.name);
          }
        }
        return cols;
      });
  std::cout << "hierarchical: " << (r.hierarchical ? "yes" : "no")
            << "; Q_ind: " << (r.in_qind ? "yes" : "no")
            << "; Q_hie: " << (r.in_qhie ? "yes" : "no") << " ("
            << r.explanation << ")\n";
}

bool LoadInto(Session* session, const std::string& table,
              const std::string& path) {
  CsvResult r = session->sharded != nullptr
                    ? LoadCsvTableFromFile(session->sharded.get(), table, path)
                    : LoadCsvTableFromFile(session->db.get(), table, path);
  if (r.ok) {
    std::cout << "loaded " << r.rows << " rows into " << table << "\n";
  } else {
    std::cout << "error: " << r.error << "\n";
  }
  return r.ok;
}

void ApplyThreads(Session* session) {
  if (session->sharded != nullptr) {
    session->sharded->eval_options().num_threads = session->num_threads;
  } else {
    session->db->eval_options().num_threads = session->num_threads;
  }
}

void Reshard(Session* session, int n) {
  // The new engine is built and loaded before the old one is torn down,
  // and the load history survives failed re-imports, so a missing CSV
  // only skips that table for this topology instead of dropping it from
  // the session for good.
  std::unique_ptr<Database> db;
  std::unique_ptr<ShardedDatabase> sharded;
  if (n >= 1) {
    sharded = std::make_unique<ShardedDatabase>(static_cast<size_t>(n));
  } else {
    db = std::make_unique<Database>();
  }
  size_t reloaded = 0;
  for (const auto& [table, path] : session->loads) {
    CsvResult r = sharded != nullptr
                      ? LoadCsvTableFromFile(sharded.get(), table, path)
                      : LoadCsvTableFromFile(db.get(), table, path);
    if (r.ok) {
      std::cout << "loaded " << r.rows << " rows into " << table << "\n";
      ++reloaded;
    } else {
      std::cout << "error: " << r.error << "\n";
    }
  }
  session->db = std::move(db);
  session->sharded = std::move(sharded);
  ApplyThreads(session);
  std::cout << "shards = " << n << " (" << reloaded
            << " tables re-imported)\n";
}

}  // namespace

int main() {
  Session session;
  const bool interactive = isatty(fileno(stdin)) != 0;
  if (interactive) {
    std::cout << "pvcdb shell -- 'help' for commands\n";
  }
  std::string line;
  while (true) {
    if (interactive) std::cout << "pvcdb> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::istringstream stream(line);
    std::string command;
    stream >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
    } else if (command == "load") {
      std::string table;
      std::string path;
      stream >> table >> path;
      if (table.empty() || path.empty()) {
        std::cout << "usage: load <table> <file.csv>\n";
        continue;
      }
      if (LoadInto(&session, table, path)) {
        session.loads.emplace_back(table, path);
      }
    } else if (command == "tables") {
      const Database& catalog = session.catalog();
      for (const std::string& name : catalog.TableNames()) {
        std::cout << name << " (" << catalog.table(name).NumRows() << " rows";
        if (session.sharded != nullptr) {
          std::cout << "; per shard:";
          for (size_t count : session.sharded->ShardRowCounts(name)) {
            std::cout << " " << count;
          }
        }
        std::cout << ")\n";
      }
    } else if (command == "show") {
      std::string table;
      stream >> table;
      const Database& catalog = session.catalog();
      if (!catalog.HasTable(table)) {
        std::cout << "no table '" << table << "'\n";
        continue;
      }
      std::cout << catalog.table(table).ToString(&catalog.pool());
    } else if (command == "tractable") {
      std::string rest;
      std::getline(stream, rest);
      Classify(session.catalog(), rest);
    } else if (command == "threads") {
      int n = 0;
      if (stream >> n) {
        session.num_threads = n;
        ApplyThreads(&session);
      }
      std::cout << "num_threads = " << session.num_threads
                << " (0 = serial; " << DefaultThreadCount()
                << " hardware threads)\n";
    } else if (command == "shards") {
      int n = 0;
      if (stream >> n) {
        if (n < 0) {
          std::cout << "usage: shards <n >= 0>\n";
          continue;
        }
        Reshard(&session, n);
      } else {
        std::cout << "shards = "
                  << (session.sharded != nullptr
                          ? static_cast<int>(session.sharded->num_shards())
                          : 0)
                  << " (0 = single database; router "
                  << (session.sharded != nullptr
                          ? session.sharded->router().name()
                          : "fnv1a")
                  << ")\n";
      }
    } else if (command == "SELECT" || command == "select") {
      RunSql(&session, line);
    } else {
      std::cout << "unknown command '" << command << "' -- try 'help'\n";
    }
  }
  return 0;
}
