// pvcdb_server -- the out-of-process serving entry point.
//
// Three roles, selected by flags:
//
//   Front-end server (default):
//     pvcdb_server --listen /tmp/pvcdb.sock --shards 4
//   forks one shard worker process per shard (socketpair transport),
//   listens for shell clients, and serves commands until one sends
//   `shutdown`. Connect with `pvcdb_shell --connect /tmp/pvcdb.sock`.
//
//   Front-end over standalone workers:
//     pvcdb_server --listen host:6000 --shards 2
//                  --workers hostA:7000,hostB:7000   (one command line)
//   dials one pre-started worker endpoint per shard instead of forking.
//
//   Standalone shard worker:
//     pvcdb_server --worker hostA:7000
//   serves coordinator connections on the given address (each connection
//   gets a fresh worker state to resync) until a kShutdown arrives.
//
// Addresses follow the convention of src/net/socket.h: "host:port" is TCP,
// anything else is a Unix-domain socket path. docs/SERVING.md is the
// operational runbook.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/engine/shard_worker.h"
#include "src/serve/server.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: pvcdb_server --listen <addr> [--shards <n>] [--in-process]\n"
      "                    [--workers <addr,addr,...>] [--open <dir>]\n"
      "                    [--group-commit <ms>] [--slow-query-ms <t>]\n"
      "                    [--metrics-dump <path>] [--rpc-timeout-ms <ms>]\n"
      "                    [--heartbeat-ms <ms>] [--auto-respawn]\n"
      "                    [--client-idle-ms <ms>] [--quiet]\n"
      "       pvcdb_server --worker <addr> [--quiet]\n"
      "\n"
      "  --listen <addr>   front-end address (host:port for TCP, otherwise\n"
      "                    a Unix socket path)\n"
      "  --shards <n>      number of shards (default 1)\n"
      "  --workers <list>  comma-separated standalone worker addresses, one\n"
      "                    per shard (default: fork one worker per shard)\n"
      "  --in-process      serve an in-process ShardedDatabase instead of\n"
      "                    worker processes (bit-identity reference mode)\n"
      "  --open <dir>      durable directory: recover it if it holds state,\n"
      "                    else create it; every served mutation is WAL-\n"
      "                    logged before its reply is acknowledged\n"
      "  --group-commit <ms>  batch WAL fsyncs: replies to mutations wait\n"
      "                    up to <ms> for one fsync covering the window\n"
      "                    (default: fsync per mutation; requires --open)\n"
      "  --slow-query-ms <t>  log commands slower than <t> ms (one\n"
      "                    structured line per slow command on stderr)\n"
      "  --metrics-dump <path>  write the final metrics snapshot to <path>\n"
      "                    as JSON Lines on clean shutdown\n"
      "  --rpc-timeout-ms <ms>  deadline for every coordinator -> worker\n"
      "                    RPC; a timed-out worker is marked down and the\n"
      "                    query degrades to the local replica (default:\n"
      "                    block forever)\n"
      "  --heartbeat-ms <ms>  ping every worker this often, walking\n"
      "                    failures suspect -> down (default: disabled)\n"
      "  --auto-respawn    respawn down workers from the heartbeat cycle\n"
      "                    (backoff-paced; a circuit breaker stops the\n"
      "                    thrash after repeated failures)\n"
      "  --client-idle-ms <ms>  evict clients idle for this long\n"
      "                    (default: never)\n"
      "  --worker <addr>   run as a standalone shard worker on <addr>\n"
      "  --quiet           suppress startup banners\n");
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(list.substr(start));
      break;
    }
    out.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  pvcdb::ServerConfig config;
  std::string worker_address;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pvcdb_server: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      const char* v = next("--listen");
      if (v == nullptr) return 2;
      config.listen_address = v;
    } else if (arg == "--shards") {
      const char* v = next("--shards");
      if (v == nullptr) return 2;
      int n = std::atoi(v);
      if (n < 1) {
        std::fprintf(stderr, "pvcdb_server: --shards needs n >= 1\n");
        return 2;
      }
      config.num_shards = static_cast<size_t>(n);
    } else if (arg == "--workers") {
      const char* v = next("--workers");
      if (v == nullptr) return 2;
      config.worker_addresses = SplitCommas(v);
    } else if (arg == "--worker") {
      const char* v = next("--worker");
      if (v == nullptr) return 2;
      worker_address = v;
    } else if (arg == "--open") {
      const char* v = next("--open");
      if (v == nullptr) return 2;
      config.open_dir = v;
    } else if (arg == "--group-commit") {
      const char* v = next("--group-commit");
      if (v == nullptr) return 2;
      int ms = std::atoi(v);
      if (ms < 0) {
        std::fprintf(stderr, "pvcdb_server: --group-commit needs ms >= 0\n");
        return 2;
      }
      config.group_commit_ms = ms;
    } else if (arg == "--slow-query-ms") {
      const char* v = next("--slow-query-ms");
      if (v == nullptr) return 2;
      double ms = std::atof(v);
      if (ms < 0.0) {
        std::fprintf(stderr, "pvcdb_server: --slow-query-ms needs t >= 0\n");
        return 2;
      }
      config.slow_query_ms = ms;
    } else if (arg == "--metrics-dump") {
      const char* v = next("--metrics-dump");
      if (v == nullptr) return 2;
      config.metrics_dump = v;
    } else if (arg == "--rpc-timeout-ms") {
      const char* v = next("--rpc-timeout-ms");
      if (v == nullptr) return 2;
      int ms = std::atoi(v);
      if (ms < 1) {
        std::fprintf(stderr, "pvcdb_server: --rpc-timeout-ms needs ms >= 1\n");
        return 2;
      }
      config.rpc_timeout_ms = ms;
    } else if (arg == "--heartbeat-ms") {
      const char* v = next("--heartbeat-ms");
      if (v == nullptr) return 2;
      int ms = std::atoi(v);
      if (ms < 1) {
        std::fprintf(stderr, "pvcdb_server: --heartbeat-ms needs ms >= 1\n");
        return 2;
      }
      config.heartbeat_ms = ms;
    } else if (arg == "--auto-respawn") {
      config.auto_respawn = true;
    } else if (arg == "--client-idle-ms") {
      const char* v = next("--client-idle-ms");
      if (v == nullptr) return 2;
      int ms = std::atoi(v);
      if (ms < 1) {
        std::fprintf(stderr, "pvcdb_server: --client-idle-ms needs ms >= 1\n");
        return 2;
      }
      config.client_idle_ms = ms;
    } else if (arg == "--in-process") {
      config.in_process = true;
    } else if (arg == "--quiet") {
      config.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "pvcdb_server: unknown flag '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (!worker_address.empty()) {
    return pvcdb::ShardWorker::RunStandalone(worker_address, config.quiet);
  }
  if (config.listen_address.empty()) {
    PrintUsage();
    return 2;
  }
  if (config.group_commit_ms >= 0 && config.open_dir.empty()) {
    std::fprintf(stderr, "pvcdb_server: --group-commit requires --open\n");
    return 2;
  }
  if (config.auto_respawn && config.heartbeat_ms < 0) {
    std::fprintf(stderr,
                 "pvcdb_server: --auto-respawn requires --heartbeat-ms\n");
    return 2;
  }
  if (!config.worker_addresses.empty() &&
      config.worker_addresses.size() != config.num_shards) {
    std::fprintf(stderr,
                 "pvcdb_server: --workers lists %zu addresses for %zu "
                 "shards\n",
                 config.worker_addresses.size(), config.num_shards);
    return 2;
  }
  return pvcdb::RunServer(config);
}
