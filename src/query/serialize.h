// Binary serialization of Q query trees, predicates, constant cells,
// schemas and distributions, used by the durability layer
// (src/engine/wal.h, src/engine/snapshot.h) to persist registered views and
// table rows, and by the serving wire protocol (src/net/protocol.h) to ship
// plans, partitions and deltas between the coordinator and shard worker
// processes.
//
// The encoding is a pre-order walk of the query tree using the codec in
// src/util/codec.h. Decoding rebuilds the tree through the public Query
// factories, so every decoded query satisfies the same invariants as one
// built in-process. Round-tripping is exact: ToString() of the decoded tree
// equals ToString() of the original (covered by tests/wal_test.cc), and
// doubles travel as IEEE-754 bit patterns, so decoded distributions are
// bit-identical — the foundation of the serving layer's bit-identity
// contract (tests/serve_e2e_test.cc).

#ifndef PVCDB_QUERY_SERIALIZE_H_
#define PVCDB_QUERY_SERIALIZE_H_

#include <string>
#include <vector>

#include "src/prob/distribution.h"
#include "src/query/ast.h"
#include "src/table/cell.h"
#include "src/table/schema.h"
#include "src/util/codec.h"

namespace pvcdb {

/// Appends the encoding of a constant cell (kNull/kInt/kDouble/kString).
/// Aggregation-expression cells reference an ExprPool and cannot be
/// persisted standalone; encountering one fails a PVC_CHECK.
void EncodeCell(std::string* out, const Cell& cell);

/// Decodes a cell written by EncodeCell. On malformed input the reader is
/// failed and a null cell returned.
Cell DecodeCell(ByteReader* reader);

/// Appends the encoding of `pred`.
void EncodePredicate(std::string* out, const Predicate& pred);

/// Decodes a predicate written by EncodePredicate.
Predicate DecodePredicate(ByteReader* reader);

/// Appends the encoding of the query tree rooted at `query`.
void EncodeQuery(std::string* out, const Query& query);

/// Decodes a query tree written by EncodeQuery; nullptr (and a failed
/// reader) on malformed input.
QueryPtr DecodeQuery(ByteReader* reader);

/// Appends the encoding of a full row of cells (u32 count + each cell).
void EncodeCells(std::string* out, const std::vector<Cell>& cells);

/// Decodes a row written by EncodeCells; empty (and a failed reader) on
/// malformed input.
std::vector<Cell> DecodeCells(ByteReader* reader);

/// Appends the encoding of `schema` (column names + types).
void EncodeSchema(std::string* out, const Schema& schema);

/// Decodes a schema written by EncodeSchema.
Schema DecodeSchema(ByteReader* reader);

/// Appends the encoding of a finite distribution (value/probability pairs;
/// probabilities as IEEE-754 bit patterns, so round-trips are bit-exact).
void EncodeDistribution(std::string* out, const Distribution& d);

/// Decodes a distribution written by EncodeDistribution.
Distribution DecodeDistribution(ByteReader* reader);

}  // namespace pvcdb

#endif  // PVCDB_QUERY_SERIALIZE_H_
