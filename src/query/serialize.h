// Binary serialization of Q query trees, predicates and constant cells,
// used by the durability layer (src/engine/wal.h, src/engine/snapshot.h) to
// persist registered views and table rows.
//
// The encoding is a pre-order walk of the query tree using the codec in
// src/util/codec.h. Decoding rebuilds the tree through the public Query
// factories, so every decoded query satisfies the same invariants as one
// built in-process. Round-tripping is exact: ToString() of the decoded tree
// equals ToString() of the original (covered by tests/wal_test.cc).

#ifndef PVCDB_QUERY_SERIALIZE_H_
#define PVCDB_QUERY_SERIALIZE_H_

#include <string>

#include "src/query/ast.h"
#include "src/table/cell.h"
#include "src/util/codec.h"

namespace pvcdb {

/// Appends the encoding of a constant cell (kNull/kInt/kDouble/kString).
/// Aggregation-expression cells reference an ExprPool and cannot be
/// persisted standalone; encountering one fails a PVC_CHECK.
void EncodeCell(std::string* out, const Cell& cell);

/// Decodes a cell written by EncodeCell. On malformed input the reader is
/// failed and a null cell returned.
Cell DecodeCell(ByteReader* reader);

/// Appends the encoding of `pred`.
void EncodePredicate(std::string* out, const Predicate& pred);

/// Decodes a predicate written by EncodePredicate.
Predicate DecodePredicate(ByteReader* reader);

/// Appends the encoding of the query tree rooted at `query`.
void EncodeQuery(std::string* out, const Query& query);

/// Decodes a query tree written by EncodeQuery; nullptr (and a failed
/// reader) on malformed input.
QueryPtr DecodeQuery(ByteReader* reader);

}  // namespace pvcdb

#endif  // PVCDB_QUERY_SERIALIZE_H_
