// The [[.]] rewriting of Figure 4, rendered as SQL text.
//
// The paper presents [[.]] as a translation from Q queries into SQL
// queries over the custom operators Sum_K (annotation sum), *_K
// (annotation product), Sum_AGG ((x)-aggregation) and [theta]
// (conditional expressions). Our engine *executes* that translation
// directly (src/query/eval.cc); this module renders the same translation
// as SQL text -- the artifact Figure 4 shows -- which is useful for
// documentation, debugging, and for porting pvcdb's rewriting onto a SQL
// engine with custom aggregates (the paper's SPROUT-on-PostgreSQL
// deployment).

#ifndef PVCDB_QUERY_SQL_REWRITE_H_
#define PVCDB_QUERY_SQL_REWRITE_H_

#include <string>

#include "src/query/ast.h"

namespace pvcdb {

/// Renders [[q]] as SQL text in the notation of Figure 4. The result uses
/// the pseudo-operators sum_k(), times_k(), sum_<agg>(), tensor() and
/// cond(l, 'theta', r) for the semiring/semimodule constructions.
std::string RewriteToSql(const Query& q);

}  // namespace pvcdb

#endif  // PVCDB_QUERY_SQL_REWRITE_H_
