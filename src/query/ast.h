// The query language Q (Definition 5): positive relational algebra
// (rename delta, selection sigma, projection pi, product x, union U)
// extended with the aggregation-and-grouping operator $.
//
// Queries are immutable shared trees built with the factory functions
// below; Join(l, r, pred) is sugar for Select(Product(l, r), pred).
// Definition 5's constraints -- projection, union and grouping never apply
// to aggregation attributes -- are enforced by the evaluator against the
// actual schemas.

#ifndef PVCDB_QUERY_AST_H_
#define PVCDB_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/monoid.h"
#include "src/query/predicate.h"

namespace pvcdb {

/// One aggregation of the $ operator: output_column <- AGG(input_column).
/// For kCount, input_column may be empty (count rows).
struct AggSpec {
  AggKind agg = AggKind::kCount;
  std::string input_column;
  std::string output_column;
};

/// Relational operators of Q.
enum class QueryOp : uint8_t {
  kScan,      ///< Base pvc-table by name.
  kSelect,    ///< sigma_phi.
  kProject,   ///< pi_A (duplicate-eliminating; annotations sum up).
  kRename,    ///< delta_{B<-A}: adds column B as a copy of A (Figure 4).
  kProduct,   ///< Cartesian product.
  kUnion,     ///< Union (schemas must match; annotations sum up).
  kGroupAgg,  ///< $_{A; alpha_i <- AGG_i(B_i)}.
};

class Query;
using QueryPtr = std::shared_ptr<const Query>;

/// A node of a Q query tree.
class Query {
 public:
  QueryOp op() const { return op_; }
  const std::vector<QueryPtr>& children() const { return children_; }
  const QueryPtr& child(size_t i) const;

  const std::string& table_name() const { return table_name_; }
  const Predicate& predicate() const { return predicate_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::string& rename_from() const { return rename_from_; }
  const std::string& rename_to() const { return rename_to_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

  /// Algebra rendering, e.g. "pi_{shop}(sigma_{...}(S x PS))".
  std::string ToString() const;

  // -- Factories ----------------------------------------------------------

  /// Scan of the base table `name`.
  static QueryPtr Scan(std::string name);

  /// sigma_pred(input).
  static QueryPtr Select(QueryPtr input, Predicate pred);

  /// pi_columns(input); duplicate rows merge, annotations sum.
  static QueryPtr Project(QueryPtr input, std::vector<std::string> columns);

  /// delta_{to<-from}(input): adds a copy of column `from` named `to`.
  static QueryPtr Rename(QueryPtr input, std::string from, std::string to);

  /// Cartesian product (column names must be disjoint).
  static QueryPtr Product(QueryPtr left, QueryPtr right);

  /// Join = Select(Product(left, right), pred).
  static QueryPtr Join(QueryPtr left, QueryPtr right, Predicate pred);

  /// Union (schemas must agree).
  static QueryPtr Union(QueryPtr left, QueryPtr right);

  /// $_{group_columns; aggs}(input). With empty `group_columns`, the result
  /// is a single tuple annotated 1_K (Figure 4, last rule).
  static QueryPtr GroupAgg(QueryPtr input,
                           std::vector<std::string> group_columns,
                           std::vector<AggSpec> aggs);

 private:
  Query() = default;

  QueryOp op_ = QueryOp::kScan;
  std::vector<QueryPtr> children_;
  std::string table_name_;
  Predicate predicate_;
  std::vector<std::string> columns_;
  std::string rename_from_;
  std::string rename_to_;
  std::vector<AggSpec> aggs_;
};

}  // namespace pvcdb

#endif  // PVCDB_QUERY_AST_H_
