// A small SQL-style surface syntax for Q queries.
//
// The paper expresses aggregate queries in SQL (Example 3: "SELECT A,
// SUM(B) FROM R GROUP BY A" is $_{A; beta<-SUM(B)}(R)"). This parser covers
// the fragment needed for the paper's queries:
//
//   SELECT <list> FROM <tables> [WHERE <conj>] [GROUP BY <cols>]
//                 [HAVING <conj>]
//
//   <list>   ::= '*' | item (',' item)*
//   item     ::= column | AGG '(' column | '*' ')' [AS name]
//                (AGG in SUM, COUNT, MIN, MAX, PROD)
//   <tables> ::= name (',' name)*          (joins via WHERE equalities)
//   <conj>   ::= atom (AND atom)*
//   atom     ::= operand (= | != | <> | <= | >= | < | >) operand
//   operand  ::= column | integer | 'string literal'
//
// Translation into the Q algebra: FROM builds a product, WHERE a selection
// (the evaluator executes cross-table equalities as hash joins), GROUP BY
// + aggregates build the $ operator, HAVING a selection over the
// aggregation attributes (which becomes a conditional expression), and the
// select list a projection. Definition 5's restrictions are inherited from
// the algebra; e.g. projecting an aggregation attribute that is not in
// GROUP BY is rejected at evaluation time.

#ifndef PVCDB_QUERY_PARSER_H_
#define PVCDB_QUERY_PARSER_H_

#include <string>

#include "src/query/ast.h"

namespace pvcdb {

/// Outcome of parsing: either a query or a diagnostic.
struct ParseResult {
  QueryPtr query;     ///< Null on failure.
  std::string error;  ///< Empty on success; human-readable otherwise.

  bool ok() const { return query != nullptr; }
};

/// Parses one SELECT statement into a Q query tree.
ParseResult ParseQuery(const std::string& sql);

}  // namespace pvcdb

#endif  // PVCDB_QUERY_PARSER_H_
