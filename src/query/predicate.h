// Selection predicates of Q queries (Section 6's assumptions on sigma_phi):
// conjunctions of (1) equality atoms between non-aggregation attributes or
// against constants, and (2) theta-comparisons involving aggregation
// attributes, which rewrite into conditional expressions [alpha theta beta].

#ifndef PVCDB_QUERY_PREDICATE_H_
#define PVCDB_QUERY_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/algebra/monoid.h"
#include "src/table/cell.h"

namespace pvcdb {

/// One side of a comparison atom: a column reference or a constant.
class Operand {
 public:
  enum class Kind : uint8_t { kColumn, kConst };

  /// Column reference.
  static Operand Col(std::string name);

  /// Constant operands.
  static Operand Int(int64_t v);
  static Operand Double(double v);
  static Operand Str(std::string v);

  Kind kind() const { return kind_; }
  const std::string& column() const;
  const Cell& constant() const;

  std::string ToString() const;

 private:
  Kind kind_ = Kind::kConst;
  std::string column_;
  Cell constant_;
};

/// One comparison atom `lhs theta rhs`.
struct Atom {
  CmpOp op = CmpOp::kEq;
  Operand lhs;
  Operand rhs;

  std::string ToString() const;
};

/// A conjunction of atoms.
class Predicate {
 public:
  Predicate() = default;

  Predicate& And(Atom atom);

  /// Convenience factories for the common shapes.
  static Predicate ColEqCol(const std::string& a, const std::string& b);
  static Predicate ColEqInt(const std::string& a, int64_t v);
  static Predicate ColEqStr(const std::string& a, const std::string& v);
  static Predicate ColCmpInt(const std::string& a, CmpOp op, int64_t v);
  static Predicate ColCmpCol(const std::string& a, CmpOp op,
                             const std::string& b);

  const std::vector<Atom>& atoms() const { return atoms_; }
  bool empty() const { return atoms_.empty(); }

  std::string ToString() const;

 private:
  std::vector<Atom> atoms_;
};

}  // namespace pvcdb

#endif  // PVCDB_QUERY_PREDICATE_H_
