#include "src/query/parser.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

namespace pvcdb {

namespace {

// ---------------------------------------------------------------------
// Tokeniser.
// ---------------------------------------------------------------------

enum class TokenKind : uint8_t {
  kIdent,
  kInt,
  kString,
  kSymbol,  // ( ) , * and comparison operators.
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // Upper-cased for idents' keyword checks; raw in raw.
  std::string raw;
  int64_t int_value = 0;
  size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  bool Tokenize(std::vector<Token>* out, std::string* error) {
    size_t i = 0;
    while (i < input_.size()) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token token;
      token.position = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[i])) ||
                input_[i] == '_' || input_[i] == '.')) {
          ++i;
        }
        token.kind = TokenKind::kIdent;
        token.raw = input_.substr(start, i - start);
        token.text = Upper(token.raw);
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && i + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        size_t start = i;
        if (c == '-') ++i;
        while (i < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[i]))) {
          ++i;
        }
        token.kind = TokenKind::kInt;
        token.raw = input_.substr(start, i - start);
        token.int_value = std::stoll(token.raw);
      } else if (c == '\'') {
        size_t start = ++i;
        while (i < input_.size() && input_[i] != '\'') ++i;
        if (i >= input_.size()) {
          *error = "unterminated string literal";
          return false;
        }
        token.kind = TokenKind::kString;
        token.raw = input_.substr(start, i - start);
        ++i;  // Closing quote.
      } else {
        // Symbols; multi-character comparison operators first.
        static const char* kTwoChar[] = {"<=", ">=", "!=", "<>"};
        std::string sym(1, c);
        for (const char* two : kTwoChar) {
          if (input_.compare(i, 2, two) == 0) {
            sym = two;
            break;
          }
        }
        token.kind = TokenKind::kSymbol;
        token.raw = sym;
        token.text = sym;
        i += sym.size();
      }
      out->push_back(std::move(token));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.position = input_.size();
    out->push_back(end);
    return true;
  }

 private:
  static std::string Upper(const std::string& s) {
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
      return static_cast<char>(std::toupper(c));
    });
    return out;
  }

  const std::string& input_;
};

// ---------------------------------------------------------------------
// Recursive-descent parser.
// ---------------------------------------------------------------------

struct SelectItem {
  bool is_aggregate = false;
  AggKind agg = AggKind::kCount;
  std::string column;  // Empty for COUNT(*).
  std::string alias;   // Output name.
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult Parse() {
    ParseResult result;
    if (!Expect(TokenKind::kIdent, "SELECT")) {
      return Fail("expected SELECT");
    }
    std::vector<SelectItem> items;
    bool select_star = false;
    if (PeekSymbol("*")) {
      Advance();
      select_star = true;
    } else {
      do {
        std::optional<SelectItem> item = ParseSelectItem();
        if (!item.has_value()) return Fail(error_);
        items.push_back(*item);
      } while (ConsumeSymbol(","));
    }
    if (!Expect(TokenKind::kIdent, "FROM")) return Fail("expected FROM");
    std::vector<std::string> tables;
    do {
      if (Peek().kind != TokenKind::kIdent) return Fail("expected table name");
      tables.push_back(Peek().raw);
      Advance();
    } while (ConsumeSymbol(","));

    Predicate where;
    if (PeekKeyword("WHERE")) {
      Advance();
      if (!ParseConjunction(&where)) return Fail(error_);
    }
    std::vector<std::string> group_by;
    if (PeekKeyword("GROUP")) {
      Advance();
      if (!Expect(TokenKind::kIdent, "BY")) return Fail("expected BY");
      do {
        if (Peek().kind != TokenKind::kIdent) {
          return Fail("expected column name in GROUP BY");
        }
        group_by.push_back(Peek().raw);
        Advance();
      } while (ConsumeSymbol(","));
    }
    Predicate having;
    if (PeekKeyword("HAVING")) {
      Advance();
      if (!ParseConjunction(&having)) return Fail(error_);
    }
    if (Peek().kind != TokenKind::kEnd && !PeekSymbol(";")) {
      return Fail("unexpected trailing input near '" + Peek().raw + "'");
    }

    // ---- Build the algebra tree. ----
    QueryPtr q = Query::Scan(tables[0]);
    for (size_t i = 1; i < tables.size(); ++i) {
      q = Query::Product(q, Query::Scan(tables[i]));
    }
    if (!where.empty()) q = Query::Select(q, where);

    std::vector<AggSpec> aggs;
    std::vector<std::string> plain_columns;
    for (const SelectItem& item : items) {
      if (item.is_aggregate) {
        AggSpec spec;
        spec.agg = item.agg;
        spec.input_column = item.column;
        spec.output_column =
            item.alias.empty() ? DefaultAggName(item) : item.alias;
        aggs.push_back(spec);
      } else {
        plain_columns.push_back(item.column);
      }
    }

    if (!aggs.empty() || !group_by.empty()) {
      if (aggs.empty()) {
        return Fail("GROUP BY without an aggregate in the select list");
      }
      std::vector<std::string> groups =
          group_by.empty() ? plain_columns : group_by;
      // Plain select-list columns must be grouping columns.
      for (const std::string& col : plain_columns) {
        if (std::find(groups.begin(), groups.end(), col) == groups.end()) {
          return Fail("column '" + col +
                      "' appears in SELECT but not in GROUP BY");
        }
      }
      q = Query::GroupAgg(q, groups, aggs);
      if (!having.empty()) q = Query::Select(q, having);
      // The $ result schema is exactly groups + aggregate outputs; an
      // explicit projection is only needed to drop aggregate columns,
      // which Definition 5 forbids projecting anyway -- emit a projection
      // only when the user listed a strict subset of the group columns.
      if (!group_by.empty() && plain_columns.size() < group_by.size() &&
          !select_star && !plain_columns.empty()) {
        return Fail(
            "SELECT must list all GROUP BY columns (aggregation attributes "
            "cannot be projected away, Definition 5)");
      }
    } else if (!select_star) {
      q = Query::Project(q, plain_columns);
    }

    result.query = q;
    return result;
  }

 private:
  static std::string DefaultAggName(const SelectItem& item) {
    std::string base = AggKindName(item.agg);
    std::transform(base.begin(), base.end(), base.begin(),
                   [](unsigned char c) {
                     return static_cast<char>(std::tolower(c));
                   });
    return item.column.empty() ? base : base + "_" + item.column;
  }

  std::optional<SelectItem> ParseSelectItem() {
    if (Peek().kind != TokenKind::kIdent) {
      error_ = "expected column or aggregate in select list";
      return std::nullopt;
    }
    SelectItem item;
    std::string head_upper = Peek().text;
    std::string head_raw = Peek().raw;
    Advance();
    std::optional<AggKind> agg = AggFromName(head_upper);
    if (agg.has_value() && PeekSymbol("(")) {
      Advance();
      item.is_aggregate = true;
      item.agg = *agg;
      if (PeekSymbol("*")) {
        Advance();
        if (item.agg != AggKind::kCount) {
          error_ = "only COUNT accepts '*'";
          return std::nullopt;
        }
      } else {
        if (Peek().kind != TokenKind::kIdent) {
          error_ = "expected column inside aggregate";
          return std::nullopt;
        }
        item.column = Peek().raw;
        Advance();
      }
      if (!ConsumeSymbol(")")) {
        error_ = "expected ')' after aggregate";
        return std::nullopt;
      }
    } else {
      item.column = head_raw;
    }
    if (PeekKeyword("AS")) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) {
        error_ = "expected alias after AS";
        return std::nullopt;
      }
      item.alias = Peek().raw;
      Advance();
    }
    if (!item.is_aggregate && !item.alias.empty()) {
      error_ = "aliases are supported on aggregates only";
      return std::nullopt;
    }
    return item;
  }

  bool ParseConjunction(Predicate* pred) {
    do {
      std::optional<Operand> lhs = ParseOperand();
      if (!lhs.has_value()) return false;
      std::optional<CmpOp> op = ParseCmpOp();
      if (!op.has_value()) return false;
      std::optional<Operand> rhs = ParseOperand();
      if (!rhs.has_value()) return false;
      pred->And({*op, *lhs, *rhs});
    } while (ConsumeKeyword("AND"));
    return true;
  }

  std::optional<Operand> ParseOperand() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIdent: {
        Operand o = Operand::Col(t.raw);
        Advance();
        return o;
      }
      case TokenKind::kInt: {
        Operand o = Operand::Int(t.int_value);
        Advance();
        return o;
      }
      case TokenKind::kString: {
        Operand o = Operand::Str(t.raw);
        Advance();
        return o;
      }
      default:
        error_ = "expected column, integer, or string operand";
        return std::nullopt;
    }
  }

  std::optional<CmpOp> ParseCmpOp() {
    if (Peek().kind != TokenKind::kSymbol) {
      error_ = "expected comparison operator";
      return std::nullopt;
    }
    std::string sym = Peek().raw;
    Advance();
    if (sym == "=") return CmpOp::kEq;
    if (sym == "!=" || sym == "<>") return CmpOp::kNe;
    if (sym == "<=") return CmpOp::kLe;
    if (sym == ">=") return CmpOp::kGe;
    if (sym == "<") return CmpOp::kLt;
    if (sym == ">") return CmpOp::kGt;
    error_ = "unknown comparison operator '" + sym + "'";
    return std::nullopt;
  }

  static std::optional<AggKind> AggFromName(const std::string& upper) {
    if (upper == "SUM") return AggKind::kSum;
    if (upper == "COUNT") return AggKind::kCount;
    if (upper == "MIN") return AggKind::kMin;
    if (upper == "MAX") return AggKind::kMax;
    if (upper == "PROD") return AggKind::kProd;
    return std::nullopt;
  }

  const Token& Peek() const { return tokens_[index_]; }
  void Advance() {
    if (index_ + 1 < tokens_.size()) ++index_;
  }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == kw;
  }

  bool PeekSymbol(const std::string& sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().raw == sym;
  }

  bool ConsumeKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }

  bool ConsumeSymbol(const std::string& sym) {
    if (!PeekSymbol(sym)) return false;
    Advance();
    return true;
  }

  bool Expect(TokenKind kind, const std::string& keyword) {
    if (Peek().kind != kind) return false;
    if (kind == TokenKind::kIdent && Peek().text != keyword) return false;
    Advance();
    return true;
  }

  ParseResult Fail(const std::string& message) {
    ParseResult r;
    std::ostringstream out;
    out << "parse error at position " << Peek().position << ": "
        << (message.empty() ? error_ : message);
    r.error = out.str();
    return r;
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  std::string error_;
};

}  // namespace

ParseResult ParseQuery(const std::string& sql) {
  std::vector<Token> tokens;
  std::string lex_error;
  Lexer lexer(sql);
  if (!lexer.Tokenize(&tokens, &lex_error)) {
    ParseResult r;
    r.error = "lex error: " + lex_error;
    return r;
  }
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace pvcdb
