// Tractability analysis: the query classes Q_ind and Q_hie (Section 6).
//
// The analyser is a syntactic classifier over Q query trees:
//  - a non-repeating query pi_A sigma_phi (Q1 x ... x Qn) is *hierarchical*
//    when for any two non-head attribute classes A*, B* (not equated to
//    constants), at(A*) and at(B*) are disjoint or one contains the other;
//  - Q_ind (Definition 8) contains queries whose result tuples are pairwise
//    independent: tuple-independent relations, aggregates of Q_ind queries
//    filtered on the aggregation attribute, hierarchical queries projecting
//    on root attributes, and comparisons of two grouping-free aggregates;
//  - Q_hie (Definition 9) additionally allows one aggregation-and-grouping
//    on top of a hierarchical join of Q_ind queries.
// Every Q_hie query has polynomial-time data complexity (Theorem 3): its
// expressions compile with rules 1-4 only (no Shannon expansion).
//
// The classifier is sound (a query it accepts is in the class) but, like
// any syntactic test, not complete for semantically equivalent rewritings.

#ifndef PVCDB_QUERY_TRACTABILITY_H_
#define PVCDB_QUERY_TRACTABILITY_H_

#include <functional>
#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/query/ast.h"
#include "src/table/pvc_table.h"

namespace pvcdb {

/// Classification of one query.
struct TractabilityResult {
  bool hierarchical = false;  ///< For pi-sigma-product shapes.
  bool in_qind = false;
  bool in_qhie = false;
  std::string explanation;
};

/// True when every tuple of `table` is annotated with its own distinct
/// variable (and carries no semimodule values) -- the tuple-independent
/// relations used as the base case of Definition 8.
bool IsTupleIndependent(const PvcTable& table, const ExprPool& pool);

/// Classifies `q`. `is_independent_base(name)` reports whether the base
/// table `name` is tuple-independent (use IsTupleIndependent on the stored
/// tables, or domain knowledge). `table_columns(name)`, when provided,
/// resolves the column names of base tables so the hierarchical check can
/// compute the at(A*) relation sets; without it, scan columns are unknown
/// and the hierarchical test is vacuous for bare scans.
TractabilityResult AnalyzeTractability(
    const Query& q,
    const std::function<bool(const std::string&)>& is_independent_base,
    const std::function<std::vector<std::string>(const std::string&)>&
        table_columns = nullptr);

}  // namespace pvcdb

#endif  // PVCDB_QUERY_TRACTABILITY_H_
