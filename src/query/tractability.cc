#include "src/query/tractability.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/util/check.h"

namespace pvcdb {

bool IsTupleIndependent(const PvcTable& table, const ExprPool& pool) {
  std::set<VarId> seen;
  for (const Column& c : table.schema().columns()) {
    if (c.type == CellType::kAggExpr) return false;
  }
  for (const Row& r : table.rows()) {
    const ExprNode& n = pool.node(r.annotation);
    if (n.kind != ExprKind::kVar) return false;
    if (!seen.insert(n.var()).second) return false;  // Repeated variable.
  }
  return true;
}

namespace {

// The normalised shape pi_A sigma_phi (Q1 x ... x Qn): an optional
// projection over a chain of selections over a product tree whose leaves
// are arbitrary subqueries.
struct FlatQuery {
  bool has_projection = false;
  std::vector<std::string> head;       // A-bar (empty when no projection).
  std::vector<Atom> atoms;             // Conjunction of all selections.
  std::vector<const Query*> relations; // The product leaves.
};

void FlattenProduct(const Query* q, std::vector<const Query*>* out) {
  if (q->op() == QueryOp::kProduct) {
    FlattenProduct(q->child(0).get(), out);
    FlattenProduct(q->child(1).get(), out);
  } else {
    out->push_back(q);
  }
}

// Decomposes q into the pi-sigma-product normal form. Returns false when q
// has a different shape.
bool Flatten(const Query* q, FlatQuery* flat) {
  if (q->op() == QueryOp::kProject) {
    flat->has_projection = true;
    flat->head = q->columns();
    q = q->child(0).get();
  }
  while (q->op() == QueryOp::kSelect) {
    for (const Atom& a : q->predicate().atoms()) flat->atoms.push_back(a);
    q = q->child(0).get();
  }
  FlattenProduct(q, &flat->relations);
  return true;
}

// Collects every base-table name in the query.
void CollectTables(const Query* q, std::vector<std::string>* names) {
  if (q->op() == QueryOp::kScan) {
    names->push_back(q->table_name());
    return;
  }
  for (const QueryPtr& c : q->children()) CollectTables(c.get(), names);
}

// A query is non-repeating when no base relation occurs twice.
bool IsNonRepeating(const Query& q) {
  std::vector<std::string> names;
  CollectTables(&q, &names);
  std::sort(names.begin(), names.end());
  return std::adjacent_find(names.begin(), names.end()) == names.end();
}

// Output columns of a subquery, resolved syntactically. Aggregation output
// columns are flagged.
struct ColumnInfo {
  std::string name;
  bool is_aggregate = false;
};

std::vector<ColumnInfo> OutputColumns(const Query& q) {
  switch (q.op()) {
    case QueryOp::kScan:
      // Unknown without the catalog; callers that need scan columns use
      // attribute occurrence instead (see AttributeOwner below).
      return {};
    case QueryOp::kSelect:
      return OutputColumns(*q.child(0));
    case QueryOp::kProject: {
      std::vector<ColumnInfo> cols;
      std::vector<ColumnInfo> inner = OutputColumns(*q.child(0));
      for (const std::string& name : q.columns()) {
        bool agg = false;
        for (const ColumnInfo& c : inner) {
          if (c.name == name) agg = c.is_aggregate;
        }
        cols.push_back({name, agg});
      }
      return cols;
    }
    case QueryOp::kRename: {
      std::vector<ColumnInfo> cols = OutputColumns(*q.child(0));
      bool agg = false;
      for (const ColumnInfo& c : cols) {
        if (c.name == q.rename_from()) agg = c.is_aggregate;
      }
      cols.push_back({q.rename_to(), agg});
      return cols;
    }
    case QueryOp::kProduct: {
      std::vector<ColumnInfo> cols = OutputColumns(*q.child(0));
      std::vector<ColumnInfo> right = OutputColumns(*q.child(1));
      cols.insert(cols.end(), right.begin(), right.end());
      return cols;
    }
    case QueryOp::kUnion:
      return OutputColumns(*q.child(0));
    case QueryOp::kGroupAgg: {
      std::vector<ColumnInfo> cols;
      for (const std::string& name : q.columns()) cols.push_back({name, false});
      for (const AggSpec& spec : q.aggs()) {
        cols.push_back({spec.output_column, true});
      }
      return cols;
    }
  }
  PVC_FAIL("unknown query operator");
}

// Union-find over attribute names for the equivalence classes A*.
class AttrClasses {
 public:
  std::string Find(const std::string& a) {
    auto it = parent_.find(a);
    if (it == parent_.end()) {
      parent_[a] = a;
      return a;
    }
    if (it->second == a) return a;
    std::string root = Find(it->second);
    parent_[a] = root;
    return root;
  }

  void Union(const std::string& a, const std::string& b) {
    parent_[Find(a)] = Find(b);
  }

 private:
  std::map<std::string, std::string> parent_;
};

// Which relation (index into flat.relations) an attribute belongs to.
// Uses the OutputColumns of each relation; attributes that cannot be
// resolved (bare scans without catalog) are looked up through `columns_of`.
class HierarchyChecker {
 public:
  HierarchyChecker(const FlatQuery& flat,
                   const std::function<std::vector<std::string>(
                       const Query&)>& columns_of)
      : flat_(flat) {
    for (size_t i = 0; i < flat.relations.size(); ++i) {
      for (const std::string& col : columns_of(*flat.relations[i])) {
        owner_[col] = i;
      }
    }
  }

  // Checks the hierarchical property; fills root_classes with the
  // representative of every class whose at(A*) covers all relations.
  bool IsHierarchical(std::set<std::string>* root_attrs,
                      std::string* why_not) {
    AttrClasses classes;
    std::set<std::string> const_equated;
    for (const Atom& a : flat_.atoms) {
      bool lhs_col = a.lhs.kind() == Operand::Kind::kColumn;
      bool rhs_col = a.rhs.kind() == Operand::Kind::kColumn;
      if (a.op != CmpOp::kEq) continue;  // Theta atoms join via aggregates.
      if (lhs_col && rhs_col) {
        classes.Union(a.lhs.column(), a.rhs.column());
      } else if (lhs_col) {
        const_equated.insert(a.lhs.column());
      } else if (rhs_col) {
        const_equated.insert(a.rhs.column());
      }
    }
    // Propagate constants through equivalence classes.
    std::set<std::string> const_classes;
    for (const std::string& c : const_equated) {
      const_classes.insert(classes.Find(c));
    }
    // at(A*): relations containing an attribute of the class.
    std::map<std::string, std::set<size_t>> at;
    for (const auto& [attr, rel] : owner_) {
      at[classes.Find(attr)].insert(rel);
    }
    std::set<std::string> head_classes;
    for (const std::string& h : flat_.head) {
      head_classes.insert(classes.Find(h));
    }
    // Pairwise check over non-head, non-constant classes.
    std::vector<std::pair<std::string, const std::set<size_t>*>> checked;
    for (const auto& [cls, rels] : at) {
      if (head_classes.count(cls) > 0 || const_classes.count(cls) > 0) {
        continue;
      }
      checked.push_back({cls, &rels});
    }
    for (size_t i = 0; i < checked.size(); ++i) {
      for (size_t j = i + 1; j < checked.size(); ++j) {
        const std::set<size_t>& a = *checked[i].second;
        const std::set<size_t>& b = *checked[j].second;
        bool disjoint = std::none_of(a.begin(), a.end(), [&](size_t r) {
          return b.count(r) > 0;
        });
        bool a_in_b = std::includes(b.begin(), b.end(), a.begin(), a.end());
        bool b_in_a = std::includes(a.begin(), a.end(), b.begin(), b.end());
        if (!disjoint && !a_in_b && !b_in_a) {
          if (why_not != nullptr) {
            *why_not = "attribute classes of '" + checked[i].first +
                       "' and '" + checked[j].first +
                       "' overlap without containment";
          }
          return false;
        }
      }
    }
    // Root attributes: classes covering every relation.
    for (const auto& [cls, rels] : at) {
      if (rels.size() == flat_.relations.size()) root_attrs->insert(cls);
    }
    // Head attributes must be recorded under their class representative.
    return true;
  }

  bool Owns(const std::string& attr) const { return owner_.count(attr) > 0; }

 private:
  const FlatQuery& flat_;
  std::map<std::string, size_t> owner_;
};

class Analyzer {
 public:
  Analyzer(const std::function<bool(const std::string&)>& independent_base,
           const std::function<std::vector<std::string>(const Query&)>&
               columns_of)
      : independent_base_(independent_base), columns_of_(columns_of) {}

  bool InQind(const Query& q, std::string* why) {
    // Base case: a tuple-independent relation.
    if (q.op() == QueryOp::kScan) {
      if (independent_base_(q.table_name())) return true;
      *why = "base table '" + q.table_name() + "' is not tuple-independent";
      return false;
    }
    // 8.2(a): pi_A sigma_phi($_{A1;gamma<-AGG}(Q1)) with gamma not in A.
    if (MatchFilteredAggregate(q)) return true;
    // 8.2(c): pi_empty sigma_{g1 theta g2}($(Q1) x $(Q2)) without grouping.
    if (MatchAggregateComparison(q)) return true;
    // 8.2(b): hierarchical pi_A sigma_phi(Q1 x ... x Qn) over Q_ind inputs
    // with all projected attributes root attributes.
    if (MatchHierarchicalRoots(q, why)) return true;
    if (why->empty()) *why = "query matches no Q_ind production";
    return false;
  }

  bool InQhie(const Query& q, std::string* why) {
    std::string ind_why;
    if (InQind(q, &ind_why)) return true;  // Q_ind subset of Q_hie.
    // 9.1: pi_A $_{A;gamma<-AGG(C)}(sigma_psi(Q1 x ... x Qn)).
    const Query* body = &q;
    if (body->op() == QueryOp::kProject) body = body->child(0).get();
    if (body->op() == QueryOp::kGroupAgg) {
      const Query* inner = body->child(0).get();
      FlatQuery flat;
      Flatten(inner, &flat);
      flat.head = body->columns();  // Group-by attributes act as the head.
      flat.has_projection = true;
      if (AllQind(flat, why) && Hierarchical(flat, nullptr, why)) return true;
      return false;
    }
    // 9.2: hierarchical pi sigma product over Q_ind inputs.
    FlatQuery flat;
    Flatten(&q, &flat);
    if (flat.relations.size() >= 1 && AllQind(flat, why) &&
        Hierarchical(flat, nullptr, why)) {
      return true;
    }
    if (why->empty()) *why = "query matches no Q_hie production";
    return false;
  }

  bool Hierarchical(const FlatQuery& flat, std::set<std::string>* roots,
                    std::string* why) {
    HierarchyChecker checker(flat, columns_of_);
    std::set<std::string> local_roots;
    std::string why_not;
    bool ok = checker.IsHierarchical(&local_roots, &why_not);
    if (!ok && why != nullptr) *why = why_not;
    if (roots != nullptr) *roots = local_roots;
    return ok;
  }

 private:
  bool AllQind(const FlatQuery& flat, std::string* why) {
    for (const Query* rel : flat.relations) {
      std::string sub_why;
      if (!InQind(*rel, &sub_why)) {
        *why = "product input not in Q_ind: " + sub_why;
        return false;
      }
    }
    return true;
  }

  // Definition 8.2(a).
  bool MatchFilteredAggregate(const Query& q) {
    const Query* body = &q;
    std::vector<std::string> head;
    if (body->op() == QueryOp::kProject) {
      head = body->columns();
      body = body->child(0).get();
    }
    while (body->op() == QueryOp::kSelect) body = body->child(0).get();
    if (body->op() != QueryOp::kGroupAgg) return false;
    // gamma must not be projected.
    for (const AggSpec& spec : body->aggs()) {
      for (const std::string& h : head) {
        if (h == spec.output_column) return false;
      }
    }
    std::string why;
    return InQind(*body->child(0), &why);
  }

  // Definition 8.2(c).
  bool MatchAggregateComparison(const Query& q) {
    const Query* body = &q;
    if (body->op() == QueryOp::kProject && body->columns().empty()) {
      body = body->child(0).get();
    }
    if (body->op() != QueryOp::kSelect) return false;
    const Query* prod = body->child(0).get();
    if (prod->op() != QueryOp::kProduct) return false;
    const Query* l = prod->child(0).get();
    const Query* r = prod->child(1).get();
    auto is_groupless_agg = [&](const Query* sub) {
      return sub->op() == QueryOp::kGroupAgg && sub->columns().empty();
    };
    if (!is_groupless_agg(l) || !is_groupless_agg(r)) return false;
    std::string why;
    return InQind(*l->child(0), &why) && InQind(*r->child(0), &why);
  }

  // Definition 8.2(b).
  bool MatchHierarchicalRoots(const Query& q, std::string* why) {
    if (q.op() != QueryOp::kProject) return false;
    FlatQuery flat;
    Flatten(&q, &flat);
    if (!AllQind(flat, why)) return false;
    std::set<std::string> roots;
    if (!Hierarchical(flat, &roots, why)) return false;
    // Every projected attribute must be a root attribute. Note: root sets
    // use class representatives; re-resolve through a fresh checker is
    // avoided by requiring direct membership, which suffices for the
    // classifier's soundness.
    for (const std::string& h : flat.head) {
      if (roots.count(h) == 0) {
        *why = "projected attribute '" + h + "' is not a root attribute";
        return false;
      }
    }
    return true;
  }

  const std::function<bool(const std::string&)>& independent_base_;
  const std::function<std::vector<std::string>(const Query&)>& columns_of_;
};

}  // namespace

TractabilityResult AnalyzeTractability(
    const Query& q,
    const std::function<bool(const std::string&)>& is_independent_base,
    const std::function<std::vector<std::string>(const std::string&)>&
        table_columns) {
  TractabilityResult result;
  if (!IsNonRepeating(q)) {
    result.explanation = "query repeats a base relation";
    return result;
  }
  // Column resolution: exact for algebra operators, catalog-backed for
  // scans (when a catalog is available).
  std::function<std::vector<std::string>(const Query&)> columns_of =
      [&](const Query& sub) -> std::vector<std::string> {
    if (sub.op() == QueryOp::kScan && table_columns != nullptr) {
      return table_columns(sub.table_name());
    }
    if (sub.op() == QueryOp::kSelect || sub.op() == QueryOp::kRename) {
      // Recurse through shape-preserving operators so scans resolve.
      std::vector<std::string> cols = columns_of(*sub.child(0));
      if (sub.op() == QueryOp::kRename) cols.push_back(sub.rename_to());
      return cols;
    }
    std::vector<std::string> names;
    for (const ColumnInfo& c : OutputColumns(sub)) names.push_back(c.name);
    if (names.empty() && !sub.children().empty()) {
      // Fall back to child columns for operators OutputColumns cannot
      // resolve without a catalog.
      for (const QueryPtr& child : sub.children()) {
        std::vector<std::string> cc = columns_of(*child);
        names.insert(names.end(), cc.begin(), cc.end());
      }
    }
    return names;
  };
  Analyzer analyzer(is_independent_base, columns_of);
  FlatQuery flat;
  Flatten(&q, &flat);
  std::string why;
  result.hierarchical = analyzer.Hierarchical(flat, nullptr, &why);
  std::string why_ind;
  result.in_qind = analyzer.InQind(q, &why_ind);
  std::string why_hie;
  result.in_qhie = analyzer.InQhie(q, &why_hie);
  if (result.in_qind) {
    result.explanation = "in Q_ind";
  } else if (result.in_qhie) {
    result.explanation = "in Q_hie: " + why_ind;
  } else {
    result.explanation = why_hie.empty() ? why_ind : why_hie;
  }
  return result;
}

}  // namespace pvcdb
