#include "src/query/predicate.h"

#include <sstream>

#include "src/util/check.h"

namespace pvcdb {

Operand Operand::Col(std::string name) {
  Operand o;
  o.kind_ = Kind::kColumn;
  o.column_ = std::move(name);
  return o;
}

Operand Operand::Int(int64_t v) {
  Operand o;
  o.kind_ = Kind::kConst;
  o.constant_ = Cell(v);
  return o;
}

Operand Operand::Double(double v) {
  Operand o;
  o.kind_ = Kind::kConst;
  o.constant_ = Cell(v);
  return o;
}

Operand Operand::Str(std::string v) {
  Operand o;
  o.kind_ = Kind::kConst;
  o.constant_ = Cell(std::move(v));
  return o;
}

const std::string& Operand::column() const {
  PVC_CHECK_MSG(kind_ == Kind::kColumn, "operand is not a column");
  return column_;
}

const Cell& Operand::constant() const {
  PVC_CHECK_MSG(kind_ == Kind::kConst, "operand is not a constant");
  return constant_;
}

std::string Operand::ToString() const {
  if (kind_ == Kind::kColumn) return column_;
  return constant_.ToString();
}

std::string Atom::ToString() const {
  return lhs.ToString() + " " + CmpOpName(op) + " " + rhs.ToString();
}

Predicate& Predicate::And(Atom atom) {
  atoms_.push_back(std::move(atom));
  return *this;
}

Predicate Predicate::ColEqCol(const std::string& a, const std::string& b) {
  Predicate p;
  p.And({CmpOp::kEq, Operand::Col(a), Operand::Col(b)});
  return p;
}

Predicate Predicate::ColEqInt(const std::string& a, int64_t v) {
  Predicate p;
  p.And({CmpOp::kEq, Operand::Col(a), Operand::Int(v)});
  return p;
}

Predicate Predicate::ColEqStr(const std::string& a, const std::string& v) {
  Predicate p;
  p.And({CmpOp::kEq, Operand::Col(a), Operand::Str(v)});
  return p;
}

Predicate Predicate::ColCmpInt(const std::string& a, CmpOp op, int64_t v) {
  Predicate p;
  p.And({op, Operand::Col(a), Operand::Int(v)});
  return p;
}

Predicate Predicate::ColCmpCol(const std::string& a, CmpOp op,
                               const std::string& b) {
  Predicate p;
  p.And({op, Operand::Col(a), Operand::Col(b)});
  return p;
}

std::string Predicate::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out << " AND ";
    out << atoms_[i].ToString();
  }
  return out.str();
}

}  // namespace pvcdb
