#include "src/query/eval.h"

#include <unordered_map>
#include <utility>

#include "src/util/check.h"
#include "src/util/hash.h"
#include "src/util/metrics.h"
#include "src/util/parallel.h"

namespace pvcdb {

namespace {

// Hash of a subset of cells, for grouping.
struct RowKey {
  std::vector<Cell> cells;

  bool operator==(const RowKey& other) const { return cells == other.cells; }
};

struct RowKeyHash {
  size_t operator()(const RowKey& key) const {
    size_t seed = 0;
    for (const Cell& c : key.cells) seed = HashCombine(seed, c.Hash());
    return seed;
  }
};

// Compares two data cells; the comparison's type rules are strict (matching
// types only; kEq/kNe additionally allowed between any equal types).
bool CompareDataCells(CmpOp op, const Cell& a, const Cell& b) {
  PVC_CHECK_MSG(a.type() == b.type(),
                "type mismatch in comparison: " << a.ToString() << " vs "
                                                << b.ToString());
  switch (a.type()) {
    case CellType::kInt:
      return EvalCmp(op, a.AsInt(), b.AsInt());
    case CellType::kDouble: {
      double x = a.AsDouble();
      double y = b.AsDouble();
      switch (op) {
        case CmpOp::kEq:
          return x == y;
        case CmpOp::kNe:
          return x != y;
        case CmpOp::kLe:
          return x <= y;
        case CmpOp::kGe:
          return x >= y;
        case CmpOp::kLt:
          return x < y;
        case CmpOp::kGt:
          return x > y;
      }
      PVC_FAIL("unknown comparison operator");
    }
    case CellType::kString: {
      int cmp = a.AsString().compare(b.AsString());
      switch (op) {
        case CmpOp::kEq:
          return cmp == 0;
        case CmpOp::kNe:
          return cmp != 0;
        case CmpOp::kLe:
          return cmp <= 0;
        case CmpOp::kGe:
          return cmp >= 0;
        case CmpOp::kLt:
          return cmp < 0;
        case CmpOp::kGt:
          return cmp > 0;
      }
      PVC_FAIL("unknown comparison operator");
    }
    default:
      PVC_FAIL("cannot compare cells of this type");
  }
}

}  // namespace

bool ApplyPredicateAtom(ExprPool* pool, const Schema& schema, const Atom& atom,
                        Row* row) {
  auto resolve = [&](const Operand& o) -> const Cell& {
    if (o.kind() == Operand::Kind::kColumn) {
      return row->cells[schema.IndexOf(o.column())];
    }
    return o.constant();
  };
  const Cell& lhs = resolve(atom.lhs);
  const Cell& rhs = resolve(atom.rhs);
  bool lhs_agg = lhs.type() == CellType::kAggExpr;
  bool rhs_agg = rhs.type() == CellType::kAggExpr;
  if (!lhs_agg && !rhs_agg) {
    // Plain data comparison: filter.
    return CompareDataCells(atom.op, lhs, rhs);
  }
  // Theta-comparison involving an aggregation attribute: extend the
  // annotation with the conditional expression [lhs theta rhs] (Figure 4's
  // sigma rule).
  auto as_expr = [&](const Cell& c, const Cell& other_agg) -> ExprId {
    if (c.type() == CellType::kAggExpr) return c.AsAgg();
    PVC_CHECK_MSG(c.type() == CellType::kInt,
                  "aggregation attributes compare against integers "
                  "(fixed-point encode decimals); got "
                      << c.ToString());
    // The constant joins the comparison as a monoid constant of the other
    // side's monoid.
    AggKind agg = pool->node(other_agg.AsAgg()).agg;
    return pool->ConstM(agg, c.AsInt());
  };
  ExprId lhs_expr = lhs_agg ? lhs.AsAgg() : as_expr(lhs, rhs);
  ExprId rhs_expr = rhs_agg ? rhs.AsAgg() : as_expr(rhs, lhs);
  ExprId cond = pool->Cmp(atom.op, lhs_expr, rhs_expr);
  row->annotation = pool->MulS(row->annotation, cond);
  return true;
}

EquiJoinPlan SplitEquiJoinAtoms(const Predicate& pred, const Schema& left,
                                const Schema& right) {
  EquiJoinPlan plan;
  for (const Atom& atom : pred.atoms()) {
    bool hashable = false;
    if (atom.op == CmpOp::kEq &&
        atom.lhs.kind() == Operand::Kind::kColumn &&
        atom.rhs.kind() == Operand::Kind::kColumn) {
      std::optional<size_t> ll = left.Find(atom.lhs.column());
      std::optional<size_t> lr = left.Find(atom.rhs.column());
      std::optional<size_t> rl = right.Find(atom.lhs.column());
      std::optional<size_t> rr = right.Find(atom.rhs.column());
      // Only same-typed data columns are hashable; mismatches fall back to
      // the residual path so they fail with the same diagnostics as a
      // plain selection.
      auto hashable_pair = [&](size_t li, size_t ri) {
        return left.column(li).type != CellType::kAggExpr &&
               left.column(li).type == right.column(ri).type;
      };
      if (ll.has_value() && rr.has_value() && hashable_pair(*ll, *rr)) {
        plan.keys.push_back({*ll, *rr});
        hashable = true;
      } else if (lr.has_value() && rl.has_value() &&
                 hashable_pair(*lr, *rl)) {
        plan.keys.push_back({*lr, *rl});
        hashable = true;
      }
    }
    if (!hashable) plan.residual.push_back(atom);
  }
  return plan;
}

QueryEvaluator::QueryEvaluator(ExprPool* pool, TableResolver resolver,
                               EvalMode mode, EvalOptions options)
    : pool_(pool),
      resolver_(std::move(resolver)),
      mode_(mode),
      options_(options) {
  PVC_CHECK(pool != nullptr);
}

PvcTable QueryEvaluator::Eval(const Query& q) {
  switch (q.op()) {
    case QueryOp::kScan:
      return EvalScan(q);
    case QueryOp::kSelect:
      return EvalSelect(q);
    case QueryOp::kProject:
      return EvalProject(q);
    case QueryOp::kRename:
      return EvalRename(q);
    case QueryOp::kProduct:
      return EvalProduct(q);
    case QueryOp::kUnion:
      return EvalUnion(q);
    case QueryOp::kGroupAgg:
      return EvalGroupAgg(q);
  }
  PVC_FAIL("unknown query operator");
}

PvcTable QueryEvaluator::EvalScan(const Query& q) {
  const PvcTable& base = resolver_(q.table_name());
  PVCDB_COUNTER_ADD("engine.rows_scanned", base.NumRows());
  if (mode_ == EvalMode::kProbabilistic) return base;
  // Q0: evaluate on the deterministic database -- every tuple is present.
  PvcTable out{base.schema()};
  ExprId one = pool_->ConstS(pool_->semiring().One());
  for (const Row& r : base.rows()) {
    out.AddRow(r.cells, one);
  }
  return out;
}

bool QueryEvaluator::ApplyAtom(const Schema& schema, const Atom& atom,
                               Row* row) {
  return ApplyPredicateAtom(pool_, schema, atom, row);
}

PvcTable QueryEvaluator::EvalSelect(const Query& q) {
  // Hash-join fast path: Select directly over a Product with at least one
  // cross-side data equality executes as an equi-join, avoiding the
  // materialised cross product (same result, including annotations).
  if (q.child(0)->op() == QueryOp::kProduct) {
    return EvalHashJoin(*q.child(0), q.predicate());
  }
  PvcTable input = Eval(*q.child(0));
  PvcTable out{input.schema()};
  ExprId zero = pool_->ConstS(pool_->semiring().Zero());
  const Schema& schema = input.schema();
  const std::vector<Atom>& atoms = q.predicate().atoms();

  // Classify the atoms once: an atom over data cells only is a pure filter;
  // an atom touching an aggregation attribute extends the annotation
  // (Figure 4's sigma rule) and must stay on the interning thread.
  struct ResolvedOperand {
    const Cell* constant = nullptr;  // Set for constant operands...
    size_t index = 0;                // ...column index otherwise.
  };
  auto resolve_operand = [&](const Operand& o) {
    ResolvedOperand r;
    if (o.kind() == Operand::Kind::kColumn) {
      r.index = schema.IndexOf(o.column());
    } else {
      r.constant = &o.constant();
    }
    return r;
  };
  auto operand_type = [&](const ResolvedOperand& r) {
    return r.constant != nullptr ? r.constant->type()
                                 : schema.column(r.index).type;
  };
  std::vector<ResolvedOperand> lhs_ops, rhs_ops;
  std::vector<bool> is_data_atom;
  for (const Atom& atom : atoms) {
    lhs_ops.push_back(resolve_operand(atom.lhs));
    rhs_ops.push_back(resolve_operand(atom.rhs));
    is_data_atom.push_back(operand_type(lhs_ops.back()) != CellType::kAggExpr &&
                           operand_type(rhs_ops.back()) != CellType::kAggExpr);
  }

  // Phase 1 (parallel, pure): per row, the first failing data atom in
  // predicate order (atoms.size() when all pass). Atoms after the first
  // failure are not evaluated, matching the serial short-circuit.
  size_t n = input.NumRows();
  std::vector<size_t> first_fail(n, atoms.size());
  ParallelFor(options_.num_threads, n, [&](size_t i) {
    const Row& r = input.row(i);
    auto cell = [&](const ResolvedOperand& op) -> const Cell& {
      return op.constant != nullptr ? *op.constant : r.cells[op.index];
    };
    for (size_t j = 0; j < atoms.size(); ++j) {
      if (!is_data_atom[j]) continue;
      if (!CompareDataCells(atoms[j].op, cell(lhs_ops[j]), cell(rhs_ops[j]))) {
        first_fail[i] = j;
        break;
      }
    }
  });

  // Phase 2 (serial): replay the annotation-extending atoms in the original
  // atom order up to the first failure -- the exact ExprPool interning
  // sequence of a serial run -- and emit surviving rows in input order.
  for (size_t i = 0; i < n; ++i) {
    Row candidate = input.row(i);
    bool keep = true;
    for (size_t j = 0; j < atoms.size(); ++j) {
      if (j == first_fail[i]) {
        keep = false;
        break;
      }
      if (is_data_atom[j]) continue;  // Passed in phase 1.
      ApplyAtom(schema, atoms[j], &candidate);
    }
    // Rows whose annotation folded to 0_K are absent from every world.
    if (keep && candidate.annotation != zero) {
      out.AddRow(std::move(candidate));
    }
  }
  return out;
}

PvcTable QueryEvaluator::EvalHashJoin(const Query& product,
                                      const Predicate& pred) {
  PvcTable left = Eval(*product.child(0));
  PvcTable right = Eval(*product.child(1));

  // Split the conjunction into hashable cross-side data equalities and
  // residual atoms (applied per joined row, exactly as EvalSelect would).
  EquiJoinPlan plan =
      SplitEquiJoinAtoms(pred, left.schema(), right.schema());
  const std::vector<EquiJoinPlan::Key>& keys = plan.keys;
  const std::vector<Atom>& residual = plan.residual;

  std::vector<Column> columns = left.schema().columns();
  for (const Column& c : right.schema().columns()) {
    PVC_CHECK_MSG(!left.schema().Find(c.name).has_value(),
                  "product requires disjoint column names; '"
                      << c.name << "' occurs on both sides (use Rename)");
    columns.push_back(c);
  }
  Schema out_schema{std::move(columns)};
  PvcTable out{out_schema};
  ExprId zero = pool_->ConstS(pool_->semiring().Zero());

  auto emit = [&](const Row& l, const Row& r) {
    Row candidate;
    candidate.cells = l.cells;
    candidate.cells.insert(candidate.cells.end(), r.cells.begin(),
                           r.cells.end());
    candidate.annotation = pool_->MulS(l.annotation, r.annotation);
    for (const Atom& atom : residual) {
      if (!ApplyAtom(out_schema, atom, &candidate)) return;
    }
    if (candidate.annotation != zero) out.AddRow(std::move(candidate));
  };

  if (keys.empty()) {
    // Pure theta-join: fall back to nested loops.
    for (const Row& l : left.rows()) {
      for (const Row& r : right.rows()) emit(l, r);
    }
    return out;
  }

  // Build on the right side, probe with the left.
  std::unordered_map<RowKey, std::vector<size_t>, RowKeyHash> build;
  for (size_t j = 0; j < right.NumRows(); ++j) {
    RowKey key;
    key.cells.reserve(keys.size());
    for (const EquiJoinPlan::Key& k : keys) {
      key.cells.push_back(right.row(j).cells[k.right_index]);
    }
    build[std::move(key)].push_back(j);
  }
  // Phase 1 (parallel, pure): hash every probe-side key and look it up in
  // the build table, which is read-only from here on.
  size_t n = left.NumRows();
  std::vector<const std::vector<size_t>*> matches(n, nullptr);
  ParallelFor(options_.num_threads, n, [&](size_t i) {
    const Row& l = left.row(i);
    RowKey key;
    key.cells.reserve(keys.size());
    for (const EquiJoinPlan::Key& k : keys) key.cells.push_back(l.cells[k.left_index]);
    auto it = build.find(key);
    if (it != build.end()) matches[i] = &it->second;
  });
  // Phase 2 (serial): emit joined rows in probe order, so annotation
  // interning and row order are identical to a serial run.
  for (size_t i = 0; i < n; ++i) {
    if (matches[i] == nullptr) continue;
    for (size_t j : *matches[i]) emit(left.row(i), right.row(j));
  }
  return out;
}

PvcTable QueryEvaluator::EvalProject(const Query& q) {
  PvcTable input = Eval(*q.child(0));
  const Schema& in_schema = input.schema();
  std::vector<Column> columns;
  std::vector<size_t> indices;
  for (const std::string& name : q.columns()) {
    size_t idx = in_schema.IndexOf(name);
    PVC_CHECK_MSG(in_schema.column(idx).type != CellType::kAggExpr,
                  "Definition 5: projection on aggregation attribute '"
                      << name << "'");
    columns.push_back(in_schema.column(idx));
    indices.push_back(idx);
  }
  PvcTable out{Schema(std::move(columns))};
  // Merge duplicate projected tuples; annotations sum (Figure 4's pi rule).
  std::unordered_map<RowKey, size_t, RowKeyHash> groups;
  std::vector<std::pair<RowKey, std::vector<ExprId>>> ordered;
  for (const Row& r : input.rows()) {
    RowKey key;
    key.cells.reserve(indices.size());
    for (size_t idx : indices) key.cells.push_back(r.cells[idx]);
    auto [it, inserted] = groups.emplace(key, ordered.size());
    if (inserted) {
      ordered.push_back({std::move(key), {}});
    }
    ordered[it->second].second.push_back(r.annotation);
  }
  for (auto& [key, annotations] : ordered) {
    out.AddRow(std::move(key.cells), pool_->AddS(std::move(annotations)));
  }
  return out;
}

PvcTable QueryEvaluator::EvalRename(const Query& q) {
  PvcTable input = Eval(*q.child(0));
  const Schema& in_schema = input.schema();
  size_t idx = in_schema.IndexOf(q.rename_from());
  std::vector<Column> columns = in_schema.columns();
  columns.push_back({q.rename_to(), in_schema.column(idx).type});
  PvcTable out{Schema(std::move(columns))};
  for (const Row& r : input.rows()) {
    std::vector<Cell> cells = r.cells;
    cells.push_back(r.cells[idx]);
    out.AddRow(std::move(cells), r.annotation);
  }
  return out;
}

PvcTable QueryEvaluator::EvalProduct(const Query& q) {
  PvcTable left = Eval(*q.child(0));
  PvcTable right = Eval(*q.child(1));
  std::vector<Column> columns = left.schema().columns();
  for (const Column& c : right.schema().columns()) {
    PVC_CHECK_MSG(!left.schema().Find(c.name).has_value(),
                  "product requires disjoint column names; '"
                      << c.name << "' occurs on both sides (use Rename)");
    columns.push_back(c);
  }
  PvcTable out{Schema(std::move(columns))};
  for (const Row& l : left.rows()) {
    for (const Row& r : right.rows()) {
      std::vector<Cell> cells = l.cells;
      cells.insert(cells.end(), r.cells.begin(), r.cells.end());
      out.AddRow(std::move(cells), pool_->MulS(l.annotation, r.annotation));
    }
  }
  return out;
}

PvcTable QueryEvaluator::EvalUnion(const Query& q) {
  PvcTable left = Eval(*q.child(0));
  PvcTable right = Eval(*q.child(1));
  PVC_CHECK_MSG(left.schema() == right.schema(),
                "union requires identical schemas: "
                    << left.schema().ToString() << " vs "
                    << right.schema().ToString());
  for (const Column& c : left.schema().columns()) {
    PVC_CHECK_MSG(c.type != CellType::kAggExpr,
                  "Definition 5: union over aggregation attribute '"
                      << c.name << "'");
  }
  PvcTable out{left.schema()};
  // Duplicate tuples across both sides merge; annotations sum (Figure 4).
  std::unordered_map<RowKey, size_t, RowKeyHash> groups;
  std::vector<std::pair<RowKey, std::vector<ExprId>>> ordered;
  auto add_rows = [&](const PvcTable& t) {
    for (const Row& r : t.rows()) {
      RowKey key{r.cells};
      auto [it, inserted] = groups.emplace(key, ordered.size());
      if (inserted) {
        ordered.push_back({std::move(key), {}});
      }
      ordered[it->second].second.push_back(r.annotation);
    }
  };
  add_rows(left);
  add_rows(right);
  for (auto& [key, annotations] : ordered) {
    out.AddRow(std::move(key.cells), pool_->AddS(std::move(annotations)));
  }
  return out;
}

std::optional<std::string> ShardDrivingTable(const Query& q) {
  const Query* cur = &q;
  while (true) {
    switch (cur->op()) {
      case QueryOp::kScan:
        return cur->table_name();
      case QueryOp::kSelect:
        // The hash-join fast path only triggers on Select-over-Product,
        // which is not part of this fragment.
        cur = cur->child(0).get();
        break;
      case QueryOp::kRename:
        cur = cur->child(0).get();
        break;
      default:
        return std::nullopt;
    }
  }
}

bool QueryMentionsColumn(const Query& q, const std::string& column) {
  if (q.op() == QueryOp::kSelect) {
    for (const Atom& atom : q.predicate().atoms()) {
      for (const Operand* o : {&atom.lhs, &atom.rhs}) {
        if (o->kind() == Operand::Kind::kColumn && o->column() == column) {
          return true;
        }
      }
    }
  }
  if (q.op() == QueryOp::kRename &&
      (q.rename_from() == column || q.rename_to() == column)) {
    return true;
  }
  for (const QueryPtr& child : q.children()) {
    if (QueryMentionsColumn(*child, column)) return true;
  }
  return false;
}

PvcTable QueryEvaluator::EvalGroupAgg(const Query& q) {
  PvcTable input = Eval(*q.child(0));
  const Schema& in_schema = input.schema();

  std::vector<Column> columns;
  std::vector<size_t> group_indices;
  for (const std::string& name : q.columns()) {
    size_t idx = in_schema.IndexOf(name);
    PVC_CHECK_MSG(in_schema.column(idx).type != CellType::kAggExpr,
                  "Definition 5: grouping on aggregation attribute '" << name
                                                                      << "'");
    columns.push_back(in_schema.column(idx));
    group_indices.push_back(idx);
  }
  struct AggInput {
    AggKind agg;
    std::optional<size_t> index;  // nullopt: COUNT(*) aggregates 1.
  };
  std::vector<AggInput> agg_inputs;
  for (const AggSpec& spec : q.aggs()) {
    columns.push_back({spec.output_column, CellType::kAggExpr});
    AggInput in;
    in.agg = spec.agg;
    if (spec.agg == AggKind::kCount && spec.input_column.empty()) {
      in.index = std::nullopt;
    } else {
      size_t idx = in_schema.IndexOf(spec.input_column);
      PVC_CHECK_MSG(in_schema.column(idx).type == CellType::kInt,
                    "aggregation input '"
                        << spec.input_column
                        << "' must be an integer column (fixed-point encode "
                           "decimals)");
      in.index = idx;
    }
    agg_inputs.push_back(in);
  }
  PvcTable out{Schema(std::move(columns))};

  struct GroupAcc {
    RowKey key;
    std::vector<ExprId> annotations;
    std::vector<std::vector<ExprId>> agg_terms;  // One list per AggSpec.
  };
  std::unordered_map<RowKey, size_t, RowKeyHash> groups;
  std::vector<GroupAcc> ordered;
  const bool grouped = !group_indices.empty();
  if (!grouped) {
    // The $-without-grouping rule always produces exactly one tuple.
    GroupAcc acc;
    acc.agg_terms.resize(agg_inputs.size());
    ordered.push_back(std::move(acc));
  }
  for (const Row& r : input.rows()) {
    size_t slot = 0;
    if (grouped) {
      RowKey key;
      key.cells.reserve(group_indices.size());
      for (size_t idx : group_indices) key.cells.push_back(r.cells[idx]);
      auto [it, inserted] = groups.emplace(key, ordered.size());
      if (inserted) {
        GroupAcc acc;
        acc.key = std::move(key);
        acc.agg_terms.resize(agg_inputs.size());
        ordered.push_back(std::move(acc));
      }
      slot = it->second;
    }
    GroupAcc& acc = ordered[slot];
    acc.annotations.push_back(r.annotation);
    for (size_t a = 0; a < agg_inputs.size(); ++a) {
      const AggInput& in = agg_inputs[a];
      int64_t value = in.index.has_value() ? r.cells[*in.index].AsInt() : 1;
      if (in.agg == AggKind::kCount) value = 1;
      acc.agg_terms[a].push_back(
          pool_->Tensor(r.annotation, pool_->ConstM(in.agg, value)));
    }
  }
  ExprId one = pool_->ConstS(pool_->semiring().One());
  ExprId zero_s = pool_->ConstS(pool_->semiring().Zero());
  for (GroupAcc& acc : ordered) {
    std::vector<Cell> cells = std::move(acc.key.cells);
    for (size_t a = 0; a < agg_inputs.size(); ++a) {
      ExprId value = pool_->AddM(agg_inputs[a].agg, std::move(acc.agg_terms[a]));
      cells.push_back(Cell::Agg(value));
    }
    // With grouping, the tuple exists iff its group is non-empty:
    // [Sum_K Phi != 0_K] (Figure 4). Without grouping the annotation is 1_K.
    ExprId annotation =
        grouped ? pool_->Cmp(CmpOp::kNe, pool_->AddS(std::move(acc.annotations)),
                             zero_s)
                : one;
    out.AddRow(std::move(cells), annotation);
  }
  return out;
}

}  // namespace pvcdb
