#include "src/query/ast.h"

#include <sstream>

#include "src/util/check.h"

namespace pvcdb {

const QueryPtr& Query::child(size_t i) const {
  PVC_CHECK_MSG(i < children_.size(), "query child " << i << " out of range");
  return children_[i];
}

QueryPtr Query::Scan(std::string name) {
  auto q = std::shared_ptr<Query>(new Query());
  q->op_ = QueryOp::kScan;
  q->table_name_ = std::move(name);
  return q;
}

QueryPtr Query::Select(QueryPtr input, Predicate pred) {
  PVC_CHECK(input != nullptr);
  auto q = std::shared_ptr<Query>(new Query());
  q->op_ = QueryOp::kSelect;
  q->children_ = {std::move(input)};
  q->predicate_ = std::move(pred);
  return q;
}

QueryPtr Query::Project(QueryPtr input, std::vector<std::string> columns) {
  PVC_CHECK(input != nullptr);
  auto q = std::shared_ptr<Query>(new Query());
  q->op_ = QueryOp::kProject;
  q->children_ = {std::move(input)};
  q->columns_ = std::move(columns);
  return q;
}

QueryPtr Query::Rename(QueryPtr input, std::string from, std::string to) {
  PVC_CHECK(input != nullptr);
  auto q = std::shared_ptr<Query>(new Query());
  q->op_ = QueryOp::kRename;
  q->children_ = {std::move(input)};
  q->rename_from_ = std::move(from);
  q->rename_to_ = std::move(to);
  return q;
}

QueryPtr Query::Product(QueryPtr left, QueryPtr right) {
  PVC_CHECK(left != nullptr && right != nullptr);
  auto q = std::shared_ptr<Query>(new Query());
  q->op_ = QueryOp::kProduct;
  q->children_ = {std::move(left), std::move(right)};
  return q;
}

QueryPtr Query::Join(QueryPtr left, QueryPtr right, Predicate pred) {
  return Select(Product(std::move(left), std::move(right)), std::move(pred));
}

QueryPtr Query::Union(QueryPtr left, QueryPtr right) {
  PVC_CHECK(left != nullptr && right != nullptr);
  auto q = std::shared_ptr<Query>(new Query());
  q->op_ = QueryOp::kUnion;
  q->children_ = {std::move(left), std::move(right)};
  return q;
}

QueryPtr Query::GroupAgg(QueryPtr input,
                         std::vector<std::string> group_columns,
                         std::vector<AggSpec> aggs) {
  PVC_CHECK(input != nullptr);
  PVC_CHECK_MSG(!aggs.empty(), "$ operator needs at least one aggregation");
  auto q = std::shared_ptr<Query>(new Query());
  q->op_ = QueryOp::kGroupAgg;
  q->children_ = {std::move(input)};
  q->columns_ = std::move(group_columns);
  q->aggs_ = std::move(aggs);
  return q;
}

std::string Query::ToString() const {
  std::ostringstream out;
  switch (op_) {
    case QueryOp::kScan:
      out << table_name_;
      break;
    case QueryOp::kSelect:
      out << "sigma_{" << predicate_.ToString() << "}("
          << children_[0]->ToString() << ")";
      break;
    case QueryOp::kProject: {
      out << "pi_{";
      for (size_t i = 0; i < columns_.size(); ++i) {
        if (i > 0) out << ",";
        out << columns_[i];
      }
      out << "}(" << children_[0]->ToString() << ")";
      break;
    }
    case QueryOp::kRename:
      out << "delta_{" << rename_to_ << "<-" << rename_from_ << "}("
          << children_[0]->ToString() << ")";
      break;
    case QueryOp::kProduct:
      out << "(" << children_[0]->ToString() << " x "
          << children_[1]->ToString() << ")";
      break;
    case QueryOp::kUnion:
      out << "(" << children_[0]->ToString() << " U "
          << children_[1]->ToString() << ")";
      break;
    case QueryOp::kGroupAgg: {
      out << "$_{";
      for (size_t i = 0; i < columns_.size(); ++i) {
        if (i > 0) out << ",";
        out << columns_[i];
      }
      out << "; ";
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (i > 0) out << ",";
        out << aggs_[i].output_column << "<-" << AggKindName(aggs_[i].agg)
            << "(" << aggs_[i].input_column << ")";
      }
      out << "}(" << children_[0]->ToString() << ")";
      break;
    }
  }
  return out.str();
}

}  // namespace pvcdb
