// Query evaluation step I (Section 4): computing the tuples of the query
// result together with their semiring annotations and semimodule values,
// following the rewriting [[.]] of Figure 4:
//
//   - selection multiplies annotations with conditional expressions,
//   - projection and union sum the annotations of merged tuples,
//   - product multiplies the annotations of paired tuples,
//   - $ with grouping builds Sum_AGG(Phi (x) B) semimodule values per group
//     and annotates each group with [Sum_K Phi != 0_K],
//   - $ without grouping builds the same values over the whole input and
//     annotates the single result tuple with 1_K.
//
// Deterministic evaluation (the Q0 baseline of Experiment F) runs the same
// rewriting with every scanned tuple annotated 1_K: all constructed
// expressions then fold to constants, so no expression manipulation
// remains -- exactly the "no expression or probability computation" mode.

#ifndef PVCDB_QUERY_EVAL_H_
#define PVCDB_QUERY_EVAL_H_

#include <functional>
#include <optional>
#include <string>

#include "src/expr/expr.h"
#include "src/query/ast.h"
#include "src/table/pvc_table.h"

namespace pvcdb {

/// Resolves a base-table name to the table (owned elsewhere).
using TableResolver = std::function<const PvcTable&(const std::string&)>;

/// Evaluation mode: probabilistic ([[.]]) or deterministic (Q0).
enum class EvalMode : uint8_t { kProbabilistic, kDeterministic };

/// Engine-wide evaluation knobs, threaded from the Database facade through
/// step I (this evaluator) and step II (the batch probability methods).
struct EvalOptions {
  /// Thread count for the parallel paths; 0 (default) and 1 mean serial,
  /// negative means all hardware threads. Every parallel path is
  /// bit-identical to the serial one: pure per-tuple work (data-atom
  /// filtering, hash-join probing, per-tuple d-tree compilation and
  /// probability passes) fans out, while all ExprPool interning and every
  /// floating-point reduction stay on the calling thread in serial order.
  int num_threads = 0;
  /// Intra-d-tree parallelism for the step II probability pass (same
  /// convention: 0/1 serial, negative = all hardware threads): one tuple's
  /// d-tree fans coarsened subtree tasks across work-stealing deques with
  /// a lock-striped shared memo (ProbabilityOptions::num_threads).
  /// Orthogonal to `num_threads`: inside a tuple-parallel batch the
  /// intra-tree pass detects the nesting and stays serial, so the knob
  /// pays off exactly where tuple-level parallelism cannot -- skewed
  /// batches dominated by one giant annotation, and single-row calls.
  /// Bit-identical to serial for every value.
  int intra_tree_threads = 0;
  /// Capacity bound of the per-view step II caches (StepTwoCache), in
  /// cached annotations; least-recently-used entries are evicted beyond
  /// it. 0 (default) keeps the caches unbounded.
  size_t step_two_cache_capacity = 0;
};

/// Evaluates Q queries over pvc-tables, producing result pvc-tables.
class QueryEvaluator {
 public:
  QueryEvaluator(ExprPool* pool, TableResolver resolver,
                 EvalMode mode = EvalMode::kProbabilistic,
                 EvalOptions options = EvalOptions());

  /// Evaluates `q`; checks Definition 5's constraints (projection, union
  /// and grouping over aggregation attributes are rejected).
  PvcTable Eval(const Query& q);

 private:
  PvcTable EvalScan(const Query& q);
  PvcTable EvalSelect(const Query& q);
  PvcTable EvalProject(const Query& q);
  PvcTable EvalRename(const Query& q);
  PvcTable EvalProduct(const Query& q);
  PvcTable EvalUnion(const Query& q);
  PvcTable EvalGroupAgg(const Query& q);

  /// Applies one predicate atom to a row: either filters on data values or
  /// extends the annotation with a conditional expression. Returns false
  /// when the row is statically excluded.
  bool ApplyAtom(const Schema& schema, const Atom& atom, Row* row);

  /// Fast path for Select(Product(l, r), pred): executes data-column
  /// equality atoms as a hash join instead of materialising the cross
  /// product, then applies the remaining atoms per joined row. Semantics
  /// are identical to the naive pipeline.
  PvcTable EvalHashJoin(const Query& product, const Predicate& pred);

  ExprPool* pool_;
  TableResolver resolver_;
  EvalMode mode_;
  EvalOptions options_;
};

// -- Delta-aware entry points (incremental view maintenance,
//    src/engine/view.h): the per-row pieces of the evaluator, exposed so a
//    maintenance step can process a delta row through the exact pipeline a
//    full evaluation would, keeping incremental results bit-identical.

/// Applies one predicate atom to a row: data atoms filter (return value),
/// atoms touching an aggregation attribute extend the annotation with the
/// conditional expression [lhs theta rhs] (Figure 4's sigma rule). This is
/// the single implementation behind selection, the hash-join residual pass
/// and delta maintenance.
bool ApplyPredicateAtom(ExprPool* pool, const Schema& schema, const Atom& atom,
                        Row* row);

/// The hash-join execution split of Select(Product(l, r), pred): which
/// conjunction atoms run as cross-side data equi-keys and which remain
/// residual per-row atoms. Both the evaluator's hash join and the join-view
/// delta path derive their plans from this one function, so re-probing a
/// delta uses exactly the keys a full evaluation would.
struct EquiJoinPlan {
  struct Key {
    size_t left_index;
    size_t right_index;
  };
  std::vector<Key> keys;      ///< Hashable cross-side data equalities.
  std::vector<Atom> residual; ///< Everything else, applied per joined row.
};
EquiJoinPlan SplitEquiJoinAtoms(const Predicate& pred, const Schema& left,
                                const Schema& right);

// -- Shard-distributable fragment (scatter entry point, src/engine/shard.h)

/// The base table driving `q` when `q` is a Select/Rename chain over a
/// single Scan -- the fragment a sharded catalog evaluates per shard
/// against that table's partitions: both operators map each input row to
/// at most one output row, preserve order, and leave annotations of data
/// predicates untouched, so per-partition evaluation followed by a merge
/// on driving-row order reproduces the unsharded result bit for bit.
/// Returns nullopt for every other shape (joins, projections, unions and
/// aggregates merge rows across partitions and must gather first).
std::optional<std::string> ShardDrivingTable(const Query& q);

/// True when any selection predicate or rename endpoint in `q` mentions
/// `column` -- used to keep reserved provenance columns out of
/// distributed plans.
bool QueryMentionsColumn(const Query& q, const std::string& column);

}  // namespace pvcdb

#endif  // PVCDB_QUERY_EVAL_H_
