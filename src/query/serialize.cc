#include "src/query/serialize.h"

#include <utility>
#include <vector>

#include "src/util/check.h"

namespace pvcdb {
namespace {

constexpr uint8_t kOperandColumn = 0;
constexpr uint8_t kOperandConst = 1;

void EncodeOperand(std::string* out, const Operand& operand) {
  if (operand.kind() == Operand::Kind::kColumn) {
    EncodeU8(out, kOperandColumn);
    EncodeString(out, operand.column());
  } else {
    EncodeU8(out, kOperandConst);
    EncodeCell(out, operand.constant());
  }
}

Operand DecodeOperand(ByteReader* reader) {
  uint8_t tag = reader->ReadU8();
  if (tag == kOperandColumn) return Operand::Col(reader->ReadString());
  if (tag != kOperandConst) {
    reader->Fail();
    return Operand();
  }
  Cell cell = DecodeCell(reader);
  switch (cell.type()) {
    case CellType::kInt:
      return Operand::Int(cell.AsInt());
    case CellType::kDouble:
      return Operand::Double(cell.AsDouble());
    case CellType::kString:
      return Operand::Str(cell.AsString());
    case CellType::kNull:
      return Operand();  // A default-constructed (null-constant) operand.
    case CellType::kAggExpr:
      break;
  }
  reader->Fail();
  return Operand();
}

void EncodeColumns(std::string* out, const std::vector<std::string>& columns) {
  EncodeU32(out, static_cast<uint32_t>(columns.size()));
  for (const std::string& column : columns) EncodeString(out, column);
}

std::vector<std::string> DecodeColumns(ByteReader* reader) {
  uint32_t n = reader->ReadU32();
  std::vector<std::string> columns;
  if (n > reader->remaining()) {  // Each entry takes >= 4 bytes; cheap guard.
    reader->Fail();
    return columns;
  }
  columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) columns.push_back(reader->ReadString());
  return columns;
}

}  // namespace

void EncodeCell(std::string* out, const Cell& cell) {
  EncodeU8(out, static_cast<uint8_t>(cell.type()));
  switch (cell.type()) {
    case CellType::kNull:
      return;
    case CellType::kInt:
      EncodeI64(out, cell.AsInt());
      return;
    case CellType::kDouble:
      EncodeDouble(out, cell.AsDouble());
      return;
    case CellType::kString:
      EncodeString(out, cell.AsString());
      return;
    case CellType::kAggExpr:
      break;
  }
  PVC_FAIL("aggregation-expression cells cannot be serialized");
}

Cell DecodeCell(ByteReader* reader) {
  uint8_t tag = reader->ReadU8();
  switch (static_cast<CellType>(tag)) {
    case CellType::kNull:
      return Cell();
    case CellType::kInt:
      return Cell(reader->ReadI64());
    case CellType::kDouble:
      return Cell(reader->ReadDouble());
    case CellType::kString:
      return Cell(reader->ReadString());
    case CellType::kAggExpr:
      break;
  }
  reader->Fail();
  return Cell();
}

void EncodePredicate(std::string* out, const Predicate& pred) {
  EncodeU32(out, static_cast<uint32_t>(pred.atoms().size()));
  for (const Atom& atom : pred.atoms()) {
    EncodeU8(out, static_cast<uint8_t>(atom.op));
    EncodeOperand(out, atom.lhs);
    EncodeOperand(out, atom.rhs);
  }
}

Predicate DecodePredicate(ByteReader* reader) {
  Predicate pred;
  uint32_t n = reader->ReadU32();
  if (n > reader->remaining()) {
    reader->Fail();
    return pred;
  }
  for (uint32_t i = 0; i < n; ++i) {
    Atom atom;
    uint8_t op = reader->ReadU8();
    if (op > static_cast<uint8_t>(CmpOp::kGt)) {
      reader->Fail();
      return pred;
    }
    atom.op = static_cast<CmpOp>(op);
    atom.lhs = DecodeOperand(reader);
    atom.rhs = DecodeOperand(reader);
    if (!reader->ok()) return pred;
    pred.And(std::move(atom));
  }
  return pred;
}

void EncodeQuery(std::string* out, const Query& query) {
  EncodeU8(out, static_cast<uint8_t>(query.op()));
  switch (query.op()) {
    case QueryOp::kScan:
      EncodeString(out, query.table_name());
      return;
    case QueryOp::kSelect:
      EncodePredicate(out, query.predicate());
      break;
    case QueryOp::kProject:
      EncodeColumns(out, query.columns());
      break;
    case QueryOp::kRename:
      EncodeString(out, query.rename_from());
      EncodeString(out, query.rename_to());
      break;
    case QueryOp::kProduct:
    case QueryOp::kUnion:
      break;
    case QueryOp::kGroupAgg:
      EncodeColumns(out, query.columns());
      EncodeU32(out, static_cast<uint32_t>(query.aggs().size()));
      for (const AggSpec& agg : query.aggs()) {
        EncodeU8(out, static_cast<uint8_t>(agg.agg));
        EncodeString(out, agg.input_column);
        EncodeString(out, agg.output_column);
      }
      break;
  }
  for (const QueryPtr& child : query.children()) EncodeQuery(out, *child);
}

QueryPtr DecodeQuery(ByteReader* reader) {
  uint8_t tag = reader->ReadU8();
  if (!reader->ok()) return nullptr;
  switch (static_cast<QueryOp>(tag)) {
    case QueryOp::kScan:
      return Query::Scan(reader->ReadString());
    case QueryOp::kSelect: {
      Predicate pred = DecodePredicate(reader);
      QueryPtr child = DecodeQuery(reader);
      if (child == nullptr) return nullptr;
      return Query::Select(std::move(child), std::move(pred));
    }
    case QueryOp::kProject: {
      std::vector<std::string> columns = DecodeColumns(reader);
      QueryPtr child = DecodeQuery(reader);
      if (child == nullptr) return nullptr;
      return Query::Project(std::move(child), std::move(columns));
    }
    case QueryOp::kRename: {
      std::string from = reader->ReadString();
      std::string to = reader->ReadString();
      QueryPtr child = DecodeQuery(reader);
      if (child == nullptr) return nullptr;
      return Query::Rename(std::move(child), std::move(from), std::move(to));
    }
    case QueryOp::kProduct:
    case QueryOp::kUnion: {
      QueryPtr left = DecodeQuery(reader);
      QueryPtr right = left == nullptr ? nullptr : DecodeQuery(reader);
      if (right == nullptr) return nullptr;
      return static_cast<QueryOp>(tag) == QueryOp::kProduct
                 ? Query::Product(std::move(left), std::move(right))
                 : Query::Union(std::move(left), std::move(right));
    }
    case QueryOp::kGroupAgg: {
      std::vector<std::string> group_columns = DecodeColumns(reader);
      uint32_t n = reader->ReadU32();
      if (n > reader->remaining()) {
        reader->Fail();
        return nullptr;
      }
      std::vector<AggSpec> aggs;
      aggs.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        AggSpec spec;
        uint8_t agg = reader->ReadU8();
        if (agg > static_cast<uint8_t>(AggKind::kMax)) {
          reader->Fail();
          return nullptr;
        }
        spec.agg = static_cast<AggKind>(agg);
        spec.input_column = reader->ReadString();
        spec.output_column = reader->ReadString();
        aggs.push_back(std::move(spec));
      }
      QueryPtr child = DecodeQuery(reader);
      if (child == nullptr || !reader->ok()) return nullptr;
      return Query::GroupAgg(std::move(child), std::move(group_columns),
                             std::move(aggs));
    }
  }
  reader->Fail();
  return nullptr;
}

void EncodeCells(std::string* out, const std::vector<Cell>& cells) {
  EncodeU32(out, static_cast<uint32_t>(cells.size()));
  for (const Cell& cell : cells) EncodeCell(out, cell);
}

std::vector<Cell> DecodeCells(ByteReader* reader) {
  uint32_t n = reader->ReadU32();
  std::vector<Cell> cells;
  if (n > reader->remaining()) {  // Each cell takes >= 1 byte; cheap guard.
    reader->Fail();
    return cells;
  }
  cells.reserve(n);
  for (uint32_t i = 0; i < n; ++i) cells.push_back(DecodeCell(reader));
  if (!reader->ok()) cells.clear();
  return cells;
}

void EncodeSchema(std::string* out, const Schema& schema) {
  EncodeU32(out, static_cast<uint32_t>(schema.NumColumns()));
  for (const Column& column : schema.columns()) {
    EncodeString(out, column.name);
    EncodeU8(out, static_cast<uint8_t>(column.type));
  }
}

Schema DecodeSchema(ByteReader* reader) {
  uint32_t n = reader->ReadU32();
  if (n > reader->remaining()) {
    reader->Fail();
    return Schema();
  }
  std::vector<Column> columns;
  columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Column column;
    column.name = reader->ReadString();
    uint8_t type = reader->ReadU8();
    if (type > static_cast<uint8_t>(CellType::kAggExpr)) {
      reader->Fail();
      return Schema();
    }
    column.type = static_cast<CellType>(type);
    columns.push_back(std::move(column));
  }
  if (!reader->ok()) return Schema();
  return Schema(std::move(columns));
}

void EncodeDistribution(std::string* out, const Distribution& d) {
  EncodeU32(out, static_cast<uint32_t>(d.entries().size()));
  for (const auto& [value, p] : d.entries()) {
    EncodeI64(out, value);
    EncodeDouble(out, p);
  }
}

Distribution DecodeDistribution(ByteReader* reader) {
  uint32_t n = reader->ReadU32();
  if (n > reader->remaining()) {
    reader->Fail();
    return Distribution();
  }
  std::vector<Distribution::Entry> entries;
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int64_t value = reader->ReadI64();
    double p = reader->ReadDouble();
    entries.emplace_back(value, p);
  }
  // entries() is canonical (sorted, zero-mass dropped), so FromPairs is the
  // identity on a round-trip and the decoded marginal is bit-identical.
  return Distribution::FromPairs(std::move(entries));
}

}  // namespace pvcdb
