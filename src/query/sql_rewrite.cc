#include "src/query/sql_rewrite.h"

#include <algorithm>
#include <sstream>

#include "src/util/check.h"

namespace pvcdb {

namespace {

std::string LowerAggName(AggKind agg) {
  std::string name = AggKindName(agg);
  std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return name;
}

std::string OperandSql(const Operand& o, const std::string& alias) {
  if (o.kind() == Operand::Kind::kColumn) return alias + "." + o.column();
  const Cell& c = o.constant();
  if (c.type() == CellType::kString) return "'" + c.AsString() + "'";
  return c.ToString();
}

std::string PredicateSql(const Predicate& pred, const std::string& alias) {
  // Conditional-expression product: Phi *_K [A theta B] *_K ...
  std::ostringstream out;
  for (const Atom& a : pred.atoms()) {
    out << ", cond(" << OperandSql(a.lhs, alias) << ", '" << CmpOpName(a.op)
        << "', " << OperandSql(a.rhs, alias) << ")";
  }
  return out.str();
}

// Renders [[q]] recursively; `R` is the derived-table alias convention of
// Figure 4.
std::string Rewrite(const Query& q) {
  std::ostringstream out;
  switch (q.op()) {
    case QueryOp::kScan:
      // [[R]] = select R.*, R.phi from R.
      out << "select R.*, R.phi from " << q.table_name() << " R";
      return out.str();
    case QueryOp::kRename:
      // [[delta_{B<-A}(Q)]] = select R.*, R.A as B, R.phi from ([[Q]]) R.
      out << "select R.*, R." << q.rename_from() << " as " << q.rename_to()
          << ", R.phi as phi from (" << Rewrite(*q.child(0)) << ") R";
      return out.str();
    case QueryOp::kSelect: {
      // [[sigma(Q)]] = select R.*, times_k(R.phi, cond(...)) as phi.
      out << "select R.*, times_k(R.phi" << PredicateSql(q.predicate(), "R")
          << ") as phi from (" << Rewrite(*q.child(0)) << ") R";
      return out.str();
    }
    case QueryOp::kProject: {
      // [[pi(Q)]] = select A..., sum_k(R.phi) as phi ... group by A...
      out << "select ";
      for (size_t i = 0; i < q.columns().size(); ++i) {
        if (i > 0) out << ", ";
        out << "R." << q.columns()[i];
      }
      if (!q.columns().empty()) out << ", ";
      out << "sum_k(R.phi) as phi from (" << Rewrite(*q.child(0)) << ") R";
      if (!q.columns().empty()) {
        out << " group by ";
        for (size_t i = 0; i < q.columns().size(); ++i) {
          if (i > 0) out << ", ";
          out << "R." << q.columns()[i];
        }
      }
      return out.str();
    }
    case QueryOp::kProduct:
      // [[Q1 x Q2]] = select R.*, S.*, times_k(R.phi, S.phi) as phi.
      out << "select R.*, S.*, times_k(R.phi, S.phi) as phi from ("
          << Rewrite(*q.child(0)) << ") R, (" << Rewrite(*q.child(1))
          << ") S";
      return out.str();
    case QueryOp::kUnion:
      // [[Q1 U Q2]] = select R.*, sum_k(R.phi) ... from union all ...
      out << "select R.*, sum_k(R.phi) as phi from (select * from ("
          << Rewrite(*q.child(0)) << ") union all select * from ("
          << Rewrite(*q.child(1)) << ")) R group by R.*";
      return out.str();
    case QueryOp::kGroupAgg: {
      // [[$...]]: Gamma_i = sum_<agg>(tensor(R.phi, R.B_i)); with grouping
      // the annotation is cond(sum_k(R.phi), '!=', 0), without it 1.
      out << "select ";
      for (const std::string& col : q.columns()) {
        out << "R." << col << ", ";
      }
      for (const AggSpec& spec : q.aggs()) {
        out << "sum_" << LowerAggName(spec.agg) << "(tensor(R.phi, "
            << (spec.agg == AggKind::kCount || spec.input_column.empty()
                    ? "1"
                    : "R." + spec.input_column)
            << ")) as " << spec.output_column << ", ";
      }
      if (q.columns().empty()) {
        out << "1 as phi";
      } else {
        out << "cond(sum_k(R.phi), '!=', 0) as phi";
      }
      out << " from (" << Rewrite(*q.child(0)) << ") R";
      if (!q.columns().empty()) {
        out << " group by ";
        for (size_t i = 0; i < q.columns().size(); ++i) {
          if (i > 0) out << ", ";
          out << "R." << q.columns()[i];
        }
      }
      return out.str();
    }
  }
  PVC_FAIL("unknown query operator");
}

}  // namespace

std::string RewriteToSql(const Query& q) { return Rewrite(q); }

}  // namespace pvcdb
