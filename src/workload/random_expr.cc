#include "src/workload/random_expr.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace pvcdb {

namespace {

// One Phi_i: a disjunction of `clauses` conjunctions of `literals` distinct
// variables from `vars`.
ExprId GenerateTermFormula(ExprPool* pool, const std::vector<VarId>& vars,
                           int clauses, int literals, Rng* rng) {
  std::vector<ExprId> clause_exprs;
  clause_exprs.reserve(clauses);
  for (int c = 0; c < clauses; ++c) {
    std::vector<int> picks =
        rng->SampleDistinct(static_cast<int>(vars.size()),
                            std::min<int>(literals, vars.size()));
    std::vector<ExprId> literal_exprs;
    literal_exprs.reserve(picks.size());
    for (int idx : picks) literal_exprs.push_back(pool->Var(vars[idx]));
    clause_exprs.push_back(pool->MulS(std::move(literal_exprs)));
  }
  return pool->AddS(std::move(clause_exprs));
}

// One side of the comparison: Sum_AGG_i Phi_i (x) v_i over `terms` terms.
ExprId GenerateSide(ExprPool* pool, const std::vector<VarId>& vars,
                    AggKind agg, int terms, int clauses, int literals,
                    int64_t max_value, Rng* rng) {
  std::vector<ExprId> summands;
  summands.reserve(terms);
  for (int i = 0; i < terms; ++i) {
    ExprId phi = GenerateTermFormula(pool, vars, clauses, literals, rng);
    // COUNT aggregates the constant 1 per term (Proposition 3 discussion).
    int64_t value =
        agg == AggKind::kCount ? 1 : rng->UniformInt(0, max_value);
    summands.push_back(pool->Tensor(phi, pool->ConstM(agg, value)));
  }
  return pool->AddM(agg, std::move(summands));
}

}  // namespace

GeneratedExpr GenerateComparisonExpr(ExprPool* pool, VariableTable* variables,
                                     const ExprGenParams& params,
                                     uint64_t seed) {
  PVC_CHECK(pool != nullptr && variables != nullptr);
  PVC_CHECK_MSG(params.num_vars > 0, "need at least one variable");
  PVC_CHECK_MSG(params.terms_left > 0, "need at least one left term");
  Rng rng(seed);

  GeneratedExpr result;
  result.vars.reserve(params.num_vars);
  for (int i = 0; i < params.num_vars; ++i) {
    double p = rng.UniformDouble(params.prob_low, params.prob_high);
    result.vars.push_back(variables->AddBernoulli(p));
  }

  result.lhs = GenerateSide(pool, result.vars, params.agg_left,
                            params.terms_left, params.clauses_per_term,
                            params.literals_per_clause, params.max_value,
                            &rng);
  if (params.terms_right > 0) {
    result.rhs = GenerateSide(pool, result.vars, params.agg_right,
                              params.terms_right, params.clauses_per_term,
                              params.literals_per_clause, params.max_value,
                              &rng);
  } else {
    result.rhs = pool->ConstM(params.agg_left, params.constant);
  }
  result.comparison = pool->Cmp(params.theta, result.lhs, result.rhs);
  return result;
}

}  // namespace pvcdb
