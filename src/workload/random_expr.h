// Random expression workloads of Section 7.1.
//
// Generates conditional expressions of the two forms of Eq. (11):
//
//   [ Sum_AGGL_{i<=L} Phi_i (x) v_i   theta   Sum_AGGR_{j<=R} Psi_j (x) w_j ]
//   [ Sum_AGGL_{i<=L} Phi_i (x) v_i   theta   c ]                   (R = 0)
//
// where each Phi_i / Psi_j is a sum (disjunction) of #cl clauses, each
// clause a product (conjunction) of #l positive literals drawn from a pool
// of #v distinct Boolean random variables, and the values v_i, w_j are
// uniform in [0, maxv].

#ifndef PVCDB_WORKLOAD_RANDOM_EXPR_H_
#define PVCDB_WORKLOAD_RANDOM_EXPR_H_

#include <cstdint>
#include <vector>

#include "src/expr/expr.h"
#include "src/prob/variable.h"

namespace pvcdb {

/// Parameters of Experiment A-E workloads (names follow the paper).
struct ExprGenParams {
  int num_vars = 25;             ///< #v: distinct Boolean variables.
  int terms_left = 200;          ///< L: semimodule terms left of theta.
  int terms_right = 0;           ///< R: semimodule terms right of theta
                                 ///< (0 selects the "theta c" form).
  int clauses_per_term = 3;      ///< #cl.
  int literals_per_clause = 3;   ///< #l.
  int64_t max_value = 200;       ///< maxv: values drawn from [0, maxv].
  int64_t constant = 100;        ///< c: the comparison constant (R = 0).
  CmpOp theta = CmpOp::kEq;      ///< Comparison operator.
  AggKind agg_left = AggKind::kMin;
  AggKind agg_right = AggKind::kMin;
  /// Bernoulli parameters of the generated variables are drawn uniformly
  /// from [prob_low, prob_high].
  double prob_low = 0.1;
  double prob_high = 0.9;
};

/// One generated workload instance.
struct GeneratedExpr {
  ExprId comparison;          ///< The full conditional expression.
  ExprId lhs;                 ///< The left semimodule sum.
  ExprId rhs;                 ///< Right sum, or the constant (R = 0).
  std::vector<VarId> vars;    ///< The #v freshly registered variables.
};

/// Generates one expression of form Eq. (11); registers #v fresh Boolean
/// variables in `variables`.
GeneratedExpr GenerateComparisonExpr(ExprPool* pool, VariableTable* variables,
                                     const ExprGenParams& params,
                                     uint64_t seed);

}  // namespace pvcdb

#endif  // PVCDB_WORKLOAD_RANDOM_EXPR_H_
