// The set X of independent random variables and their distributions.
//
// A VariableTable registers S-valued independent random variables and
// induces the probability space of Definition 1: a sample is a valuation
// nu : X -> S, and Pr(nu) is the product of the per-variable probabilities.

#ifndef PVCDB_PROB_VARIABLE_H_
#define PVCDB_PROB_VARIABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/prob/distribution.h"

namespace pvcdb {

/// Identifier of a random variable within a VariableTable.
using VarId = uint32_t;

/// Registry of the independent random variables X underlying a
/// pvc-database, with one finite distribution per variable.
class VariableTable {
 public:
  /// Registers a variable with the given distribution; returns its id.
  VarId Add(Distribution distribution, std::string name = "");

  /// Registers a Boolean variable with P[x=1] = p.
  VarId AddBernoulli(double p, std::string name = "");

  /// Number of registered variables.
  size_t size() const { return distributions_.size(); }

  /// Distribution of variable `id`.
  const Distribution& DistributionOf(VarId id) const;

  /// Name of variable `id` ("x<id>" when unnamed).
  std::string NameOf(VarId id) const;

  /// Replaces the distribution of an existing variable (used by sensitivity
  /// analyses and by tests).
  void SetDistribution(VarId id, Distribution distribution);

 private:
  std::vector<Distribution> distributions_;
  std::vector<std::string> names_;
};

}  // namespace pvcdb

#endif  // PVCDB_PROB_VARIABLE_H_
