// The set X of independent random variables and their distributions.
//
// A VariableTable registers S-valued independent random variables and
// induces the probability space of Definition 1: a sample is a valuation
// nu : X -> S, and Pr(nu) is the product of the per-variable probabilities.

#ifndef PVCDB_PROB_VARIABLE_H_
#define PVCDB_PROB_VARIABLE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/prob/distribution.h"

namespace pvcdb {

/// Identifier of a random variable within a VariableTable.
using VarId = uint32_t;

/// Registry of the independent random variables X underlying a
/// pvc-database, with one finite distribution per variable.
///
/// Mutation contract: a table shared between engine instances (the sharded
/// topology of src/engine/shard.h) must only be mutated while no instance
/// is evaluating. Engine facades mark in-flight evaluations with EvalScope;
/// in debug builds (!NDEBUG) every mutator asserts that no scope is open,
/// turning a violated contract into an immediate CheckError instead of a
/// silent race.
class VariableTable {
 public:
  /// RAII marker for an evaluation that reads this table (probability
  /// passes, d-tree compilation). Held by the Database / ShardedDatabase
  /// probability methods; nesting and concurrent scopes from several
  /// threads are fine.
  class EvalScope {
   public:
    explicit EvalScope(const VariableTable& table) : table_(&table) {
      table_->eval_depth_.fetch_add(1, std::memory_order_relaxed);
    }
    ~EvalScope() {
      table_->eval_depth_.fetch_sub(1, std::memory_order_relaxed);
    }
    EvalScope(const EvalScope&) = delete;
    EvalScope& operator=(const EvalScope&) = delete;

   private:
    const VariableTable* table_;
  };

  /// Registers a variable with the given distribution; returns its id.
  VarId Add(Distribution distribution, std::string name = "");

  /// Registers a Boolean variable with P[x=1] = p.
  VarId AddBernoulli(double p, std::string name = "");

  /// Number of registered variables.
  size_t size() const { return distributions_.size(); }

  /// Distribution of variable `id`.
  const Distribution& DistributionOf(VarId id) const;

  /// Name of variable `id` ("x<id>" when unnamed).
  std::string NameOf(VarId id) const;

  /// Replaces the distribution of an existing variable (used by sensitivity
  /// analyses, probability updates and tests).
  void SetDistribution(VarId id, Distribution distribution);

 private:
  /// Debug-mode half of the mutation contract (see the class comment).
  void AssertMutable() const;

  std::vector<Distribution> distributions_;
  std::vector<std::string> names_;
  /// Number of open EvalScopes across all threads.
  mutable std::atomic<int> eval_depth_{0};
};

}  // namespace pvcdb

#endif  // PVCDB_PROB_VARIABLE_H_
