#include "src/prob/variable.h"

#include <utility>

#include "src/util/check.h"

namespace pvcdb {

void VariableTable::AssertMutable() const {
#ifndef NDEBUG
  PVC_CHECK_MSG(eval_depth_.load(std::memory_order_relaxed) == 0,
                "VariableTable mutated while an evaluation is in flight "
                "(the shared table must only be mutated while no engine "
                "instance is evaluating)");
#endif
}

VarId VariableTable::Add(Distribution distribution, std::string name) {
  AssertMutable();
  PVC_CHECK_MSG(!distribution.empty(), "variable needs non-empty support");
  PVC_CHECK_MSG(distribution.IsNormalized(1e-6),
                "variable distribution must sum to 1, got "
                    << distribution.TotalMass());
  VarId id = static_cast<VarId>(distributions_.size());
  distributions_.push_back(std::move(distribution));
  names_.push_back(std::move(name));
  return id;
}

VarId VariableTable::AddBernoulli(double p, std::string name) {
  return Add(Distribution::Bernoulli(p), std::move(name));
}

const Distribution& VariableTable::DistributionOf(VarId id) const {
  PVC_CHECK_MSG(id < distributions_.size(), "unknown variable id " << id);
  return distributions_[id];
}

std::string VariableTable::NameOf(VarId id) const {
  PVC_CHECK_MSG(id < names_.size(), "unknown variable id " << id);
  if (!names_[id].empty()) return names_[id];
  return "x" + std::to_string(id);
}

void VariableTable::SetDistribution(VarId id, Distribution distribution) {
  AssertMutable();
  PVC_CHECK_MSG(id < distributions_.size(), "unknown variable id " << id);
  PVC_CHECK_MSG(distribution.IsNormalized(1e-6),
                "variable distribution must sum to 1");
  distributions_[id] = std::move(distribution);
}

}  // namespace pvcdb
