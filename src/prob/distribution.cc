#include "src/prob/distribution.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace pvcdb {

namespace {

constexpr double kDropBelow = 0.0;  // Entries with probability <= this drop.

}  // namespace

Distribution Distribution::Point(int64_t v) {
  return Distribution({{v, 1.0}});
}

Distribution Distribution::Bernoulli(double p) {
  PVC_CHECK_MSG(p >= 0.0 && p <= 1.0, "Bernoulli parameter out of range: " << p);
  std::vector<Entry> entries;
  if (1.0 - p > kDropBelow) entries.push_back({0, 1.0 - p});
  if (p > kDropBelow) entries.push_back({1, p});
  return Distribution(std::move(entries));
}

Distribution Distribution::FromPairs(std::vector<Entry> pairs) {
  return FromUnsorted(std::move(pairs));
}

Distribution Distribution::FromUnsorted(std::vector<Entry> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  std::vector<Entry> merged;
  merged.reserve(pairs.size());
  for (const Entry& e : pairs) {
    PVC_CHECK_MSG(e.second >= 0.0, "negative probability " << e.second);
    if (!merged.empty() && merged.back().first == e.first) {
      merged.back().second += e.second;
    } else {
      merged.push_back(e);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Entry& e) {
                                return e.second <= kDropBelow;
                              }),
               merged.end());
  return Distribution(std::move(merged));
}

double Distribution::ProbOf(int64_t v) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const Entry& e, int64_t value) { return e.first < value; });
  if (it != entries_.end() && it->first == v) return it->second;
  return 0.0;
}

double Distribution::TotalMass() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.second;
  return total;
}

bool Distribution::IsNormalized(double epsilon) const {
  return std::abs(TotalMass() - 1.0) <= epsilon;
}

Distribution Distribution::Convolve(const Distribution& other,
                                    const BinaryOp& op) const {
  // Proposition 1 restricted to non-zero-probability support (Remark 1).
  std::vector<Entry> result;
  result.reserve(entries_.size() * other.entries_.size());
  for (const Entry& a : entries_) {
    for (const Entry& b : other.entries_) {
      result.push_back({op(a.first, b.first), a.second * b.second});
    }
  }
  return FromUnsorted(std::move(result));
}

Distribution Distribution::Map(const UnaryOp& f) const {
  std::vector<Entry> result;
  result.reserve(entries_.size());
  for (const Entry& e : entries_) {
    result.push_back({f(e.first), e.second});
  }
  return FromUnsorted(std::move(result));
}

Distribution Distribution::Mix(
    const std::vector<std::pair<double, Distribution>>& parts) {
  return Mix(parts.data(), parts.size());
}

Distribution Distribution::Mix(const std::pair<double, Distribution>* parts,
                               size_t n) {
  std::vector<Entry> result;
  for (size_t i = 0; i < n; ++i) {
    const auto& [weight, dist] = parts[i];
    PVC_CHECK_MSG(weight >= 0.0, "negative mixture weight " << weight);
    for (const Entry& e : dist.entries_) {
      result.push_back({e.first, weight * e.second});
    }
  }
  return FromUnsorted(std::move(result));
}

int64_t Distribution::MinValue() const {
  PVC_CHECK(!entries_.empty());
  return entries_.front().first;
}

int64_t Distribution::MaxValue() const {
  PVC_CHECK(!entries_.empty());
  return entries_.back().first;
}

double Distribution::Mean() const {
  double mean = 0.0;
  for (const Entry& e : entries_) {
    mean += static_cast<double>(e.first) * e.second;
  }
  return mean;
}

bool Distribution::ApproxEquals(const Distribution& other,
                                double epsilon) const {
  // Supports may differ by entries whose probability is below epsilon.
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (i < entries_.size() && j < other.entries_.size() &&
        entries_[i].first == other.entries_[j].first) {
      if (std::abs(entries_[i].second - other.entries_[j].second) > epsilon) {
        return false;
      }
      ++i;
      ++j;
    } else if (j >= other.entries_.size() ||
               (i < entries_.size() &&
                entries_[i].first < other.entries_[j].first)) {
      if (entries_[i].second > epsilon) return false;
      ++i;
    } else {
      if (other.entries_[j].second > epsilon) return false;
      ++j;
    }
  }
  return true;
}

std::string Distribution::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const Entry& e : entries_) {
    if (!first) out << ", ";
    first = false;
    out << "(" << e.first << ", " << e.second << ")";
  }
  out << "}";
  return out.str();
}

}  // namespace pvcdb
