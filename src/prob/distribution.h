// Finite discrete probability distributions over int64_t values.
//
// This implements Section 2.1 of the paper: distributions are represented by
// their set of (value, probability) pairs with non-zero probability, and the
// probability distribution of a function of independent random variables is
// obtained by convolution with respect to that function (Proposition 1,
// Remark 1). Mutually exclusive decompositions (Eq. 10) correspond to
// weighted mixtures.

#ifndef PVCDB_PROB_DISTRIBUTION_H_
#define PVCDB_PROB_DISTRIBUTION_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace pvcdb {

/// A finite discrete probability distribution over int64_t values.
///
/// Entries are kept sorted by value with strictly positive probabilities and
/// no duplicate values. The "size" of a distribution in the paper's
/// complexity statements (Theorem 2, Propositions 2/3) is `size()` here.
class Distribution {
 public:
  using Entry = std::pair<int64_t, double>;
  using BinaryOp = std::function<int64_t(int64_t, int64_t)>;
  using UnaryOp = std::function<int64_t(int64_t)>;

  /// The empty (all-zero) distribution. Not a probability distribution per
  /// se; useful as an accumulator identity for Mix().
  Distribution() = default;

  /// Point mass: value `v` with probability 1.
  static Distribution Point(int64_t v);

  /// Builds a distribution from arbitrary pairs: merges duplicate values,
  /// drops zero-probability entries, and sorts by value.
  static Distribution FromPairs(std::vector<Entry> pairs);

  /// Bernoulli-style two-point distribution over {0, 1} with P[1] = p.
  static Distribution Bernoulli(double p);

  /// Number of support points.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sorted (value, probability) support.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Probability of `v` (0.0 if v is outside the support).
  double ProbOf(int64_t v) const;

  /// Sum of all probabilities (1.0 for a proper distribution; mixtures of
  /// sub-distributions may carry partial mass).
  double TotalMass() const;

  /// True when TotalMass() is within `epsilon` of 1.
  bool IsNormalized(double epsilon = 1e-9) const;

  /// Convolution with respect to `op` (Proposition 1): the distribution of
  /// z = x `op` y for independent x ~ this and y ~ other. Runs in time
  /// O(size() * other.size()) plus the cost of merging result values.
  Distribution Convolve(const Distribution& other, const BinaryOp& op) const;

  /// Distribution of f(x) for x ~ this (merges collapsed values).
  Distribution Map(const UnaryOp& f) const;

  /// Weighted mixture Sum_i weight_i * dist_i (Eq. 10). Weights need not
  /// sum to one; the caller is responsible for overall normalization.
  static Distribution Mix(
      const std::vector<std::pair<double, Distribution>>& parts);

  /// Range overload of Mix for callers keeping parts in a shared arena
  /// (the iterative probability kernel). Identical accumulation order.
  static Distribution Mix(const std::pair<double, Distribution>* parts,
                          size_t n);

  /// Largest/smallest support value. Precondition: !empty().
  int64_t MinValue() const;
  int64_t MaxValue() const;

  /// Expected value, treating values as integers.
  double Mean() const;

  /// True when both supports match and probabilities agree within epsilon.
  bool ApproxEquals(const Distribution& other, double epsilon = 1e-9) const;

  /// Human-readable rendering "{(v1, p1), (v2, p2), ...}".
  std::string ToString() const;

 private:
  explicit Distribution(std::vector<Entry> sorted_entries)
      : entries_(std::move(sorted_entries)) {}

  static Distribution FromUnsorted(std::vector<Entry> pairs);

  std::vector<Entry> entries_;
};

/// P[x != 0] for x ~ d, clamped against negative floating-point dust --
/// the tuple-presence probability derived from an annotation distribution.
/// Both engine facades (Database, ShardedDatabase) must use this exact
/// expression so their results stay bit-identical.
inline double NonZeroMass(const Distribution& d) {
  return std::max(0.0, d.TotalMass() - d.ProbOf(0));
}

}  // namespace pvcdb

#endif  // PVCDB_PROB_DISTRIBUTION_H_
