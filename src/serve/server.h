// The pvcdb front-end server: accepts many concurrent shell clients over
// one listening socket and executes their commands against a serving
// backend -- either a Coordinator over out-of-process shard workers (the
// normal mode) or an in-process ShardedDatabase (the bit-identity
// reference mode, used by tests).
//
// Consistency model: commands execute one at a time on the server's single
// thread (the poll loop dispatches a complete command frame, runs it to
// completion, sends the reply, then returns to poll). Reads are therefore
// snapshot-consistent -- a SELECT never observes a half-applied mutation --
// and mutations from concurrent clients serialize in arrival order,
// streaming through the IVM delta path like their shell counterparts.
// Parallelism lives *inside* a command: the distributed scatter fans out
// to every worker before collecting any reply.
//
// ExecuteCommand is the single rendering path shared by both backends; the
// e2e test compares its output byte for byte between a RemoteBackend and a
// local InProcessBackend. Probabilities print at precision 17, so text
// equality is double bit-equality.
//
// Durability is wired in through ServerConfig::open_dir: the server opens
// (or recovers) a DurableSession over the durable directory, logs every
// served mutation to its WAL before acknowledging, and -- in the default
// remote mode -- attaches the session to the Coordinator so recovery
// replays history into the coordinator's replica and shard logs without
// touching workers (ReconcileWorkers then tail- or full-resyncs each one).
// ServerConfig::group_commit_ms batches WAL fsyncs: replies to commands
// that appended unsynced WAL records are queued and sent only after one
// fsync covering the whole commit window.

#ifndef PVCDB_SERVE_SERVER_H_
#define PVCDB_SERVE_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/engine/coordinator.h"
#include "src/engine/csv.h"
#include "src/engine/shard.h"
#include "src/engine/snapshot.h"
#include "src/net/protocol.h"

namespace pvcdb {

/// The command surface ExecuteCommand runs against. Both implementations
/// compute every number through the same per-row step II pipeline, so
/// their rendered replies agree bit for bit.
class ServeBackend {
 public:
  virtual ~ServeBackend() = default;

  /// The logical catalog (schemas, variable registry, gathered tables).
  virtual const Database& catalog() const = 0;
  virtual size_t num_shards() const = 0;
  virtual std::vector<size_t> ShardRowCounts(const std::string& name) = 0;

  virtual CsvResult LoadCsv(const std::string& table,
                            const std::string& path) = 0;
  virtual QueryRun RunQuery(const Query& q) = 0;
  virtual Distribution ConditionalAgg(const QueryRun& run, size_t row_index,
                                      const std::string& column) = 0;
  virtual void Insert(const std::string& table, std::vector<Cell> cells,
                      double p) = 0;
  virtual size_t Delete(const std::string& table, const Cell& key) = 0;
  virtual void SetProb(VarId var, double p) = 0;
  virtual size_t RegisterView(const std::string& name, QueryPtr query,
                              std::vector<std::string>* warnings) = 0;
  virtual bool HasView(const std::string& name) = 0;
  virtual QueryRun PrintView(const std::string& name) = 0;
  virtual std::vector<ShardedDatabase::ViewInfo> ViewInfos() = 0;

  /// Text of the `workers` command (worker liveness / pids).
  virtual std::string Workers() = 0;
  /// `respawn <s>`: replaces a down worker. False + message on failure.
  virtual bool Respawn(size_t shard, std::string* message) = 0;

  /// `threads` / `intratree`: pushes the evaluation thread knobs into the
  /// engine (and, for remote workers, over the wire via kSetOptions).
  virtual void SetEvalOptions(int num_threads, int intra_tree_threads) = 0;

  /// `stats`: one snapshot of every metric this backend can see. The
  /// in-process backend reads the process registry; the remote backend
  /// additionally gathers each live worker's registry over kStatsRequest
  /// (entries prefixed "shard<N>."). Pure observation -- never logged,
  /// never advances worker (lsn, chain).
  virtual std::vector<MetricSnapshot> StatsSnapshot() = 0;
};

/// Reference backend over an in-process ShardedDatabase (does not own it).
class InProcessBackend : public ServeBackend {
 public:
  explicit InProcessBackend(ShardedDatabase* db) : db_(db) {}

  const Database& catalog() const override { return db_->coordinator(); }
  size_t num_shards() const override { return db_->num_shards(); }
  std::vector<size_t> ShardRowCounts(const std::string& name) override {
    return db_->ShardRowCounts(name);
  }
  CsvResult LoadCsv(const std::string& table,
                    const std::string& path) override {
    return LoadCsvTableFromFile(db_, table, path);
  }
  QueryRun RunQuery(const Query& q) override;
  Distribution ConditionalAgg(const QueryRun& run, size_t row_index,
                              const std::string& column) override;
  void Insert(const std::string& table, std::vector<Cell> cells,
              double p) override {
    db_->InsertTuple(table, std::move(cells), p);
  }
  size_t Delete(const std::string& table, const Cell& key) override {
    return db_->DeleteTuple(table, key);
  }
  void SetProb(VarId var, double p) override {
    db_->UpdateProbability(var, p);
  }
  size_t RegisterView(const std::string& name, QueryPtr query,
                      std::vector<std::string>* warnings) override;
  bool HasView(const std::string& name) override { return db_->HasView(name); }
  QueryRun PrintView(const std::string& name) override;
  std::vector<ShardedDatabase::ViewInfo> ViewInfos() override {
    return db_->ViewInfos();
  }
  std::string Workers() override;
  bool Respawn(size_t shard, std::string* message) override;
  void SetEvalOptions(int num_threads, int intra_tree_threads) override {
    db_->eval_options().num_threads = num_threads;
    db_->eval_options().intra_tree_threads = intra_tree_threads;
  }
  std::vector<MetricSnapshot> StatsSnapshot() override {
    return MetricsRegistry::Global().Snapshot();
  }

 private:
  ShardedDatabase* db_;
};

/// Serving backend over a Coordinator of remote workers (does not own it).
class RemoteBackend : public ServeBackend {
 public:
  explicit RemoteBackend(Coordinator* coordinator)
      : coordinator_(coordinator) {}

  const Database& catalog() const override { return coordinator_->local(); }
  size_t num_shards() const override { return coordinator_->num_shards(); }
  std::vector<size_t> ShardRowCounts(const std::string& name) override {
    return coordinator_->ShardRowCounts(name);
  }
  CsvResult LoadCsv(const std::string& table,
                    const std::string& path) override {
    return LoadCsvTableFromFile(coordinator_, table, path);
  }
  QueryRun RunQuery(const Query& q) override { return coordinator_->Run(q); }
  Distribution ConditionalAgg(const QueryRun& run, size_t row_index,
                              const std::string& column) override {
    return coordinator_->ConditionalAggregateDistribution(run, row_index,
                                                          column);
  }
  void Insert(const std::string& table, std::vector<Cell> cells,
              double p) override {
    coordinator_->InsertTuple(table, std::move(cells), p);
  }
  size_t Delete(const std::string& table, const Cell& key) override {
    return coordinator_->DeleteTuple(table, key);
  }
  void SetProb(VarId var, double p) override {
    coordinator_->UpdateProbability(var, p);
  }
  size_t RegisterView(const std::string& name, QueryPtr query,
                      std::vector<std::string>* warnings) override {
    return coordinator_->RegisterView(name, std::move(query), warnings);
  }
  bool HasView(const std::string& name) override {
    return coordinator_->HasView(name);
  }
  QueryRun PrintView(const std::string& name) override {
    return coordinator_->PrintView(name);
  }
  std::vector<ShardedDatabase::ViewInfo> ViewInfos() override {
    return coordinator_->ViewInfos();
  }
  std::string Workers() override;
  bool Respawn(size_t shard, std::string* message) override;
  void SetEvalOptions(int num_threads, int intra_tree_threads) override {
    coordinator_->SetEvalOptions(num_threads, intra_tree_threads);
  }
  std::vector<MetricSnapshot> StatsSnapshot() override {
    return coordinator_->AggregatedStats();
  }

 private:
  Coordinator* coordinator_;
};

/// Mutable per-server state beyond the backend: the durable session (for
/// `save` / `log`) and the session-level thread knobs (`threads` /
/// `intratree`, mirroring the shell's display semantics). Null members
/// render those commands unavailable.
struct ServeSession {
  DurableSession* durable = nullptr;
  int num_threads = 0;
  int intra_tree_threads = 0;
};

/// Parses and executes one shell command line against `backend`, rendering
/// the full reply text (mirroring tools/pvcdb_shell.cc output formats,
/// with probabilities at precision 17). Sets `*shutdown` when the command
/// was `shutdown`. Never throws. `session` may be null (a serving surface
/// with no durable directory and no thread knobs, as in unit tests).
ClientReplyMsg ExecuteCommand(ServeBackend* backend, const std::string& line,
                              bool* shutdown, ServeSession* session = nullptr);

struct ServerConfig {
  std::string listen_address;
  size_t num_shards = 1;
  SemiringKind semiring = SemiringKind::kBool;
  /// Reference mode: serve an in-process ShardedDatabase instead of
  /// out-of-process workers (bit-identity baseline).
  bool in_process = false;
  /// Standalone worker endpoints to dial, one per shard. Empty: fork one
  /// worker process per shard over a socketpair.
  std::vector<std::string> worker_addresses;
  bool quiet = false;
  /// Durable directory: recover it when it holds state, else create it,
  /// and log every served mutation before acknowledging. Empty: volatile.
  std::string open_dir;
  /// Group-commit window in milliseconds. Negative: fsync on every WAL
  /// append, acknowledge immediately. >= 0: appends stay unsynced and the
  /// affected replies queue until one fsync at window expiry covers them
  /// all (0 = sync on the next poll-loop pass). Ignored without open_dir.
  int group_commit_ms = -1;
  /// Slow-query threshold in milliseconds. Commands whose total wall time
  /// meets it emit one structured line on stderr and bump
  /// `server.slow_queries`. Negative: disabled.
  double slow_query_ms = -1.0;
  /// When non-empty: the final metrics snapshot is written here as JSON
  /// Lines (one metric per line) on clean shutdown.
  std::string metrics_dump;
  /// Deadline (ms) for every coordinator -> worker RPC frame send/receive.
  /// Negative: block forever (the pre-fault-tolerance behaviour). A
  /// timed-out worker is marked down and served around (degraded replies
  /// from the local replica); mutations are never blind-retried.
  int rpc_timeout_ms = -1;
  /// Heartbeat interval (ms): the poll loop pings every worker this often,
  /// walking failures suspect -> down. Negative: disabled.
  int heartbeat_ms = -1;
  /// Respawn down workers from the heartbeat cycle (backoff-paced, circuit
  /// breaker on repeated failures). Requires heartbeat_ms >= 0 to fire.
  bool auto_respawn = false;
  /// Evict clients idle (no bytes received) for this long (ms). Negative:
  /// never. Evicted clients see an orderly close ("server closed
  /// connection" in the shell).
  int client_idle_ms = -1;
};

/// Runs the front-end server until a client sends `shutdown`. Returns 0 on
/// clean shutdown, 1 on a startup failure.
int RunServer(const ServerConfig& config);

}  // namespace pvcdb

#endif  // PVCDB_SERVE_SERVER_H_
