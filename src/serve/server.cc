#include "src/serve/server.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <deque>
#include <iomanip>
#include <sstream>
#include <utility>

#include "src/engine/shard_worker.h"
#include "src/net/frame.h"
#include "src/query/parser.h"
#include "src/query/tractability.h"
#include "src/util/check.h"
#include "src/util/metrics.h"
#include "src/util/parallel.h"

namespace pvcdb {

// ---------------------------------------------------------------------------
// InProcessBackend: the reference implementation over ShardedDatabase.
// ---------------------------------------------------------------------------

QueryRun InProcessBackend::RunQuery(const Query& q) {
  auto state = std::make_shared<ShardedResult>(db_->Run(q));
  QueryRun run;
  run.schema = state->schema();
  run.text = db_->ResultToString(*state);
  run.probabilities = db_->TupleProbabilities(*state);
  run.distributed = state->distributed();
  run.backend_state = state;
  return run;
}

Distribution InProcessBackend::ConditionalAgg(const QueryRun& run,
                                              size_t row_index,
                                              const std::string& column) {
  auto state = std::static_pointer_cast<ShardedResult>(run.backend_state);
  PVC_CHECK_MSG(state != nullptr, "run carries no in-process result state");
  return db_->ConditionalAggregateDistribution(*state, row_index, column);
}

size_t InProcessBackend::RegisterView(const std::string& name, QueryPtr query,
                                      std::vector<std::string>* warnings) {
  (void)warnings;  // The in-process engine has no degraded mode.
  db_->RegisterView(name, std::move(query));
  return db_->ViewResult(name).NumRows();
}

QueryRun InProcessBackend::PrintView(const std::string& name) {
  auto state = std::make_shared<ShardedResult>(db_->ViewResult(name));
  QueryRun run;
  run.schema = state->schema();
  run.text = db_->ResultToString(*state);
  run.probabilities = db_->ViewProbabilities(name);
  run.distributed = state->distributed();
  run.backend_state = state;
  return run;
}

std::string InProcessBackend::Workers() {
  std::ostringstream out;
  out << "in-process engine (" << db_->num_shards()
      << " shards); no worker processes\n";
  return out.str();
}

bool InProcessBackend::Respawn(size_t shard, std::string* message) {
  (void)shard;
  *message = "respawn requires out-of-process workers\n";
  return false;
}

// ---------------------------------------------------------------------------
// RemoteBackend: worker management (everything else delegates inline).
// ---------------------------------------------------------------------------

std::string RemoteBackend::Workers() {
  std::ostringstream out;
  for (size_t s = 0; s < coordinator_->num_shards(); ++s) {
    out << "worker " << s << ": pid " << coordinator_->WorkerPid(s) << ", ";
    uint64_t lsn = 0;
    uint32_t chain = 0;
    if (coordinator_->WorkerUp(s) && coordinator_->WorkerTail(s, &lsn, &chain)) {
      char tail[64];
      std::snprintf(tail, sizeof(tail), "up (lsn %ju, chain %08x)",
                    static_cast<uintmax_t>(lsn), chain);
      out << tail << ", " << WorkerHealthName(coordinator_->Health(s))
          << "\n";
    } else {
      // The tail probe can itself mark a worker down, so re-read liveness.
      out << (coordinator_->WorkerUp(s) ? "up" : "down") << " ("
          << WorkerHealthName(coordinator_->Health(s)) << ")\n";
    }
  }
  return out.str();
}

bool RemoteBackend::Respawn(size_t shard, std::string* message) {
  if (coordinator_->WorkerUp(shard)) {
    *message = "worker " + std::to_string(shard) + " is already up\n";
    return true;
  }
  std::string error;
  if (!coordinator_->Respawn(shard, &error)) {
    *message = "error: " + error + "\n";
    return false;
  }
  *message = "worker " + std::to_string(shard) + " respawned (pid " +
             std::to_string(coordinator_->WorkerPid(shard)) + ")\n";
  return true;
}

// ---------------------------------------------------------------------------
// ExecuteCommand: the single rendering path for both backends.
// ---------------------------------------------------------------------------

namespace {

// Mirrors the shell's PrintRowProbabilities: one P[row i] line per tuple,
// with conditional aggregate distributions appended for kAggExpr columns.
void AppendRowProbabilityLines(std::ostream& out, ServeBackend* backend,
                               const QueryRun& run) {
  for (size_t i = 0; i < run.probabilities.size(); ++i) {
    out << "P[row " << i << "] = " << run.probabilities[i];
    for (size_t c = 0; c < run.schema.NumColumns(); ++c) {
      if (run.schema.column(c).type == CellType::kAggExpr) {
        const std::string& name = run.schema.column(c).name;
        out << "  " << name << " | present ~ "
            << backend->ConditionalAgg(run, i, name).ToString();
      }
    }
    out << "\n";
  }
}

// Parses the whole of `token` as a double; rejects trailing garbage.
bool ParseFullDouble(const std::string& token, double* out) {
  try {
    size_t pos = 0;
    *out = std::stod(token, &pos);
    return pos == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

// Parses the whole of `token` as a cell of column type `type` (partial
// parses like "14.99" for an int column are rejected, not truncated).
bool ParseCellToken(const std::string& token, CellType type, Cell* out) {
  try {
    size_t pos = 0;
    switch (type) {
      case CellType::kInt: {
        int64_t v = std::stoll(token, &pos);
        if (pos != token.size()) return false;
        *out = Cell(v);
        return true;
      }
      case CellType::kDouble: {
        double v = std::stod(token, &pos);
        if (pos != token.size()) return false;
        *out = Cell(v);
        return true;
      }
      case CellType::kString:
        *out = Cell(token);
        return true;
      default:
        return false;
    }
  } catch (const std::exception&) {
    return false;
  }
}

void ServerHelp(std::ostream& out) {
  out << "commands:\n"
      << "  load <table> <file.csv>  import a tuple-independent table\n"
      << "                           (the path is read by the server)\n"
      << "  tables                   list tables with per-shard rows\n"
      << "  show <table>             print a pvc-table\n"
      << "  tractable <sql>          classify a query\n"
      << "  SELECT ...               run a query\n"
      << "  insert <table> <cells...> <prob>  append a tuple\n"
      << "  delete <table> <key>     delete rows matching the key\n"
      << "  setprob <var> <p>        update a variable's marginal\n"
      << "  view <name> [SELECT ...] register / print a view\n"
      << "  views                    list materialized views\n"
      << "  workers                  worker process liveness, (lsn, chain)\n"
      << "  stats [--json]           metrics snapshot (table or JSON Lines)\n"
      << "  respawn <shard>          replace a down worker\n"
      << "  threads [n]              show or set the thread count\n"
      << "                           (0 = serial, -1 = all cores)\n"
      << "  intratree [n]            show or set the intra-d-tree\n"
      << "                           probability thread count\n"
      << "  save                     checkpoint the durable directory\n"
      << "  log                      durable directory status\n"
      << "  shutdown                 stop the server\n"
      << "  help | quit\n";
}

bool RunSelect(ServeBackend* backend, const std::string& line,
               std::ostream& out) {
  ParseResult parsed = [&] {
    PVCDB_SPAN(parse_span, "parse");
    return ParseQuery(line);
  }();
  if (!parsed.ok()) {
    out << parsed.error << "\n";
    return false;
  }
  try {
    QueryRun run = backend->RunQuery(*parsed.query);
    for (const std::string& w : run.warnings) out << w << "\n";
    out << run.text;
    AppendRowProbabilityLines(out, backend, run);
    return true;
  } catch (const CheckError& e) {
    out << "error: " << e.what() << "\n";
    return false;
  }
}

bool RunTractable(ServeBackend* backend, const std::string& sql,
                  std::ostream& out) {
  ParseResult parsed = [&] {
    PVCDB_SPAN(parse_span, "parse");
    return ParseQuery(sql);
  }();
  if (!parsed.ok()) {
    out << parsed.error << "\n";
    return false;
  }
  const Database& db = backend->catalog();
  TractabilityResult r = AnalyzeTractability(
      *parsed.query,
      [&db](const std::string& name) {
        return db.HasTable(name) &&
               IsTupleIndependent(db.table(name), db.pool());
      },
      [&db](const std::string& name) {
        std::vector<std::string> cols;
        if (db.HasTable(name)) {
          for (const Column& c : db.table(name).schema().columns()) {
            cols.push_back(c.name);
          }
        }
        return cols;
      });
  out << "hierarchical: " << (r.hierarchical ? "yes" : "no")
      << "; Q_ind: " << (r.in_qind ? "yes" : "no")
      << "; Q_hie: " << (r.in_qhie ? "yes" : "no") << " (" << r.explanation
      << ")\n";
  return true;
}

bool RunInsert(ServeBackend* backend, std::istream& stream,
               std::ostream& out) {
  std::string table;
  stream >> table;
  std::vector<std::string> tokens;
  std::string token;
  while (stream >> token) tokens.push_back(token);
  const Database& catalog = backend->catalog();
  if (table.empty() || !catalog.HasTable(table)) {
    out << "no table '" << table << "'\n";
    return false;
  }
  const Schema& schema = catalog.table(table).schema();
  if (tokens.size() != schema.NumColumns() + 1) {
    out << "usage: insert <table> <" << schema.NumColumns()
        << " cells> <prob>\n";
    return false;
  }
  std::vector<Cell> cells(schema.NumColumns());
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    if (!ParseCellToken(tokens[i], schema.column(i).type, &cells[i])) {
      out << "cannot parse '" << tokens[i] << "' for column '"
          << schema.column(i).name << "'\n";
      return false;
    }
  }
  double p = 0.0;
  // The negated >= form also rejects NaN (every NaN comparison is false).
  if (!ParseFullDouble(tokens.back(), &p) || !(p >= 0.0 && p <= 1.0)) {
    out << "bad probability '" << tokens.back() << "'\n";
    return false;
  }
  try {
    backend->Insert(table, std::move(cells), p);
  } catch (const CheckError& e) {
    out << "error: " << e.what() << "\n";
    return false;
  }
  out << "inserted into " << table << " ("
      << backend->catalog().table(table).NumRows() << " rows)\n";
  return true;
}

bool RunDelete(ServeBackend* backend, std::istream& stream,
               std::ostream& out) {
  std::string table;
  std::string key_token;
  stream >> table >> key_token;
  const Database& catalog = backend->catalog();
  if (table.empty() || key_token.empty() || !catalog.HasTable(table)) {
    out << (catalog.HasTable(table) ? "usage: delete <table> <key>\n"
                                    : "no table '" + table + "'\n");
    return false;
  }
  Cell key;
  CellType key_type = catalog.table(table).schema().column(0).type;
  if (!ParseCellToken(key_token, key_type, &key)) {
    out << "cannot parse key '" << key_token << "'\n";
    return false;
  }
  size_t removed = 0;
  try {
    removed = backend->Delete(table, key);
  } catch (const CheckError& e) {
    out << "error: " << e.what() << "\n";
    return false;
  }
  out << "deleted " << removed << " rows from " << table << "\n";
  return true;
}

bool RunSetProb(ServeBackend* backend, std::istream& stream,
                std::ostream& out) {
  std::string var_token;
  std::string p_token;
  stream >> var_token >> p_token;
  if (!var_token.empty() && var_token[0] == 'x') {
    var_token = var_token.substr(1);
  }
  VarId var = 0;
  double p = -1.0;
  try {
    size_t pos = 0;
    var = static_cast<VarId>(std::stoul(var_token, &pos));
    if (pos != var_token.size()) throw std::invalid_argument(var_token);
  } catch (const std::exception&) {
    out << "usage: setprob <var> <p in [0,1]>\n";
    return false;
  }
  if (!ParseFullDouble(p_token, &p) || !(p >= 0.0 && p <= 1.0)) {
    out << "usage: setprob <var> <p in [0,1]>\n";
    return false;
  }
  const VariableTable& variables = backend->catalog().variables();
  if (var >= variables.size()) {
    out << "unknown variable x" << var << "\n";
    return false;
  }
  try {
    backend->SetProb(var, p);
  } catch (const CheckError& e) {
    out << "error: " << e.what() << "\n";
    return false;
  }
  out << "P[" << variables.NameOf(var) << " = 1] = " << p << "\n";
  return true;
}

bool RunViewCommand(ServeBackend* backend, std::istream& stream,
                    std::ostream& out) {
  std::string name;
  stream >> name;
  std::string rest;
  std::getline(stream, rest);
  size_t sql_start = rest.find_first_not_of(" \t");
  if (name.empty()) {
    out << "usage: view <name> [SELECT ...]\n";
    return false;
  }
  if (sql_start == std::string::npos) {
    if (!backend->HasView(name)) {
      out << "no view '" << name << "'\n";
      return false;
    }
    try {
      QueryRun run = backend->PrintView(name);
      for (const std::string& w : run.warnings) out << w << "\n";
      out << run.text;
      AppendRowProbabilityLines(out, backend, run);
      return true;
    } catch (const CheckError& e) {
      out << "error: " << e.what() << "\n";
      return false;
    }
  }
  ParseResult parsed = [&] {
    PVCDB_SPAN(parse_span, "parse");
    return ParseQuery(rest.substr(sql_start));
  }();
  if (!parsed.ok()) {
    out << parsed.error << "\n";
    return false;
  }
  try {
    std::vector<std::string> warnings;
    size_t rows = backend->RegisterView(name, parsed.query, &warnings);
    for (const std::string& w : warnings) out << w << "\n";
    out << "view " << name << " registered (" << rows << " rows)\n";
    return true;
  } catch (const CheckError& e) {
    out << "error: " << e.what() << "\n";
    return false;
  }
}

}  // namespace

ClientReplyMsg ExecuteCommand(ServeBackend* backend, const std::string& line,
                              bool* shutdown, ServeSession* session) {
  ClientReplyMsg reply;
  std::ostringstream out;
  // Precision 17 round-trips doubles exactly, so reply-text equality
  // between two backends implies bit-equality of every probability.
  out << std::setprecision(17);
  std::istringstream stream(line);
  std::string command;
  stream >> command;
  try {
    if (command.empty()) {
      // Empty line: empty reply.
    } else if (command == "quit" || command == "exit") {
      out << "bye\n";
    } else if (command == "help") {
      ServerHelp(out);
    } else if (command == "load") {
      std::string table;
      std::string path;
      stream >> table >> path;
      if (table.empty() || path.empty()) {
        out << "usage: load <table> <file.csv>\n";
        reply.ok = false;
      } else {
        CsvResult r = backend->LoadCsv(table, path);
        if (r.ok) {
          out << "loaded " << r.rows << " rows into " << table << "\n";
        } else {
          out << "error: " << r.error << "\n";
          reply.ok = false;
        }
      }
    } else if (command == "tables") {
      const Database& catalog = backend->catalog();
      for (const std::string& name : catalog.TableNames()) {
        out << name << " (" << catalog.table(name).NumRows()
            << " rows; per shard:";
        for (size_t count : backend->ShardRowCounts(name)) {
          out << " " << count;
        }
        out << ")\n";
      }
    } else if (command == "show") {
      std::string table;
      stream >> table;
      const Database& catalog = backend->catalog();
      if (!catalog.HasTable(table)) {
        out << "no table '" << table << "'\n";
        reply.ok = false;
      } else {
        out << catalog.table(table).ToString(&catalog.pool());
      }
    } else if (command == "tractable") {
      std::string rest;
      std::getline(stream, rest);
      reply.ok = RunTractable(backend, rest, out);
    } else if (command == "SELECT" || command == "select") {
      reply.ok = RunSelect(backend, line, out);
    } else if (command == "insert") {
      reply.ok = RunInsert(backend, stream, out);
    } else if (command == "delete") {
      reply.ok = RunDelete(backend, stream, out);
    } else if (command == "setprob") {
      reply.ok = RunSetProb(backend, stream, out);
    } else if (command == "view") {
      reply.ok = RunViewCommand(backend, stream, out);
    } else if (command == "views") {
      for (const ShardedDatabase::ViewInfo& info : backend->ViewInfos()) {
        out << info.name << " (" << info.plan << ", " << info.rows
            << " rows, " << info.cache_entries << " cached d-trees)\n";
      }
    } else if (command == "stats") {
      std::string flag;
      stream >> flag;
      if (!flag.empty() && flag != "--json") {
        out << "usage: stats [--json]\n";
        reply.ok = false;
      } else {
        std::vector<MetricSnapshot> entries = backend->StatsSnapshot();
        out << (flag == "--json" ? RenderMetricsJson(entries)
                                 : RenderMetricsTable(entries));
      }
    } else if (command == "workers") {
      out << backend->Workers();
    } else if (command == "respawn") {
      size_t shard = 0;
      if (!(stream >> shard) || shard >= backend->num_shards()) {
        out << "usage: respawn <shard in [0, " << backend->num_shards()
            << ")>\n";
        reply.ok = false;
      } else {
        std::string message;
        reply.ok = backend->Respawn(shard, &message);
        out << message;
      }
    } else if (command == "shutdown") {
      *shutdown = true;
      out << "shutting down\n";
    } else if (command == "threads" || command == "intratree") {
      if (session == nullptr) {
        out << "command '" << command << "' is not available in server mode\n";
        reply.ok = false;
      } else {
        int n = 0;
        if (stream >> n) {
          (command == "threads" ? session->num_threads
                                : session->intra_tree_threads) = n;
          backend->SetEvalOptions(session->num_threads,
                                  session->intra_tree_threads);
        }
        // Mirrors the shell's display exactly (session-level knob values,
        // not the engine's resolved counts).
        if (command == "threads") {
          out << "num_threads = " << session->num_threads << " (0 = serial; "
              << DefaultThreadCount() << " hardware threads)\n";
        } else {
          out << "intra_tree_threads = " << session->intra_tree_threads
              << " (0 = serial; " << DefaultThreadCount()
              << " hardware threads)\n";
        }
      }
    } else if (command == "save") {
      if (session == nullptr || session->durable == nullptr) {
        out << "not durable (start the server with --open <dir>)\n";
        reply.ok = false;
      } else {
        std::string error;
        if (session->durable->Checkpoint(&error)) {
          out << "checkpoint written (generation "
              << session->durable->stats().generation << ")\n";
        } else {
          out << "error: " << error << "\n";
          reply.ok = false;
        }
      }
    } else if (command == "log") {
      if (session == nullptr || session->durable == nullptr) {
        out << "not durable (start the server with --open <dir>)\n";
        reply.ok = false;
      } else {
        DurableStats stats = session->durable->stats();
        out << "dir = " << session->durable->dir() << "\n"
            << "generation = " << stats.generation << "\n"
            << "wal_records = " << stats.wal_records << "\n"
            << "wal_bytes = " << stats.wal_bytes << "\n"
            << "recovered = " << (stats.recovered ? "yes" : "no") << "\n"
            << "replayed_records = " << stats.replayed_records << "\n"
            << "tail_truncated = " << (stats.tail_truncated ? "yes" : "no")
            << "\n";
      }
    } else if (command == "shards" || command == "open") {
      out << "command '" << command << "' is not available in server mode\n";
      reply.ok = false;
    } else {
      out << "unknown command '" << command << "' -- try 'help'\n";
      reply.ok = false;
    }
  } catch (const std::exception& e) {
    // Belt and braces: ExecuteCommand never throws into the poll loop.
    out << "error: " << e.what() << "\n";
    reply.ok = false;
  }
  reply.text = out.str();
  return reply;
}

// ---------------------------------------------------------------------------
// The front-end server.
// ---------------------------------------------------------------------------

namespace {

/// One accepted client: a non-blocking socket plus its frame reassembler.
struct ClientConn {
  Socket sock;
  FrameParser parser;
  int64_t last_activity_ms = 0;  ///< Last received bytes (idle eviction).
};

/// Sends one frame on a non-blocking socket, waiting on POLLOUT (bounded)
/// when the send buffer fills. False drops the client.
bool SendFrameFlush(Socket* sock, MsgKind kind, const std::string& payload) {
  std::string buf;
  EncodeFrame(&buf, static_cast<uint8_t>(kind), payload);
  size_t sent = 0;
  while (sent < buf.size()) {
    ssize_t n = sock->SendSome(buf.data() + sent, buf.size() - sent);
    if (n == kIoWouldBlock) {
      struct pollfd pfd;
      pfd.fd = sock->fd();
      pfd.events = POLLOUT;
      pfd.revents = 0;
      if (::poll(&pfd, 1, 10000) <= 0) return false;
      continue;
    }
    if (n < 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Worker child entry after fork: the per-connection half of
/// ShardWorker::RunStandalone over the inherited socketpair end.
int RunForkedWorker(Socket sock) {
  // The child inherits the parent's metric values at fork time; reset so
  // this worker's registry reports only its own activity (matching a
  // standalone worker's fresh process).
  MetricsRegistry::Global().Reset();
  uint8_t kind = 0;
  std::string payload;
  if (RecvFrame(&sock, &kind, &payload) != FrameResult::kOk) return 1;
  HelloMsg hello;
  if (static_cast<MsgKind>(kind) != MsgKind::kHello ||
      !HelloMsg::Decode(payload, &hello) ||
      hello.version != kProtocolVersion) {
    ErrorMsg err;
    err.text = "bad handshake (protocol version " +
               std::to_string(kProtocolVersion) + " required)";
    SendFrame(&sock, static_cast<uint8_t>(MsgKind::kError), err.Encode());
    return 1;
  }
  if (!SendFrame(&sock, static_cast<uint8_t>(MsgKind::kHelloAck),
                 std::string())) {
    return 1;
  }
  ShardWorker worker(hello);
  worker.Serve(&sock);
  return 0;
}

}  // namespace

int RunServer(const ServerConfig& config) {
  IgnoreSigPipe();
  TraceLog::Global().set_slow_query_ms(config.slow_query_ms);
  // Forked workers are fire-and-forget children; auto-reap them.
  ::signal(SIGCHLD, SIG_IGN);

  // Declared before the coordinator so its spawner (which captures them to
  // close inherited fds in worker children) never outlives them.
  Listener listener;
  std::vector<ClientConn> clients;

  std::unique_ptr<ShardedDatabase> sharded;
  std::unique_ptr<Coordinator> coordinator;
  std::unique_ptr<ServeBackend> backend;
  // Declared after the coordinator: the attached session's destructor
  // detaches its WAL from the (still live) coordinator.
  std::unique_ptr<DurableSession> durable;

  DurableConfig durable_config;
  durable_config.dir = config.open_dir;
  durable_config.fs = DefaultFileSystem();
  // Group commit keeps appends unsynced and batches the fsync in the poll
  // loop; otherwise every append syncs before its command acknowledges.
  durable_config.sync = config.group_commit_ms < 0;

  if (config.in_process) {
    if (!config.open_dir.empty()) {
      std::string derr;
      if (DurableSession::HasState(durable_config.fs, config.open_dir)) {
        durable = DurableSession::Recover(durable_config, &derr);
      } else {
        EngineState initial;
        initial.semiring = config.semiring;
        initial.num_shards = config.num_shards;
        durable = DurableSession::Create(durable_config, initial, &derr);
      }
      if (durable == nullptr) {
        std::fprintf(stderr, "pvcdb server: %s\n", derr.c_str());
        return 1;
      }
      // The command line owns the topology: rebuild recovered state at the
      // configured shard count when they disagree.
      if (durable->sharded() == nullptr ||
          durable->sharded()->num_shards() != config.num_shards) {
        if (!durable->Reshard(config.num_shards, &derr)) {
          std::fprintf(stderr, "pvcdb server: %s\n", derr.c_str());
          return 1;
        }
      }
      backend = std::make_unique<InProcessBackend>(durable->sharded());
    } else {
      sharded = std::make_unique<ShardedDatabase>(config.num_shards,
                                                  config.semiring);
      backend = std::make_unique<InProcessBackend>(sharded.get());
    }
  } else {
    auto spawner = [&config, &listener, &clients](
                       uint32_t shard, RemoteShard* out,
                       std::string* error) -> bool {
      if (!config.worker_addresses.empty()) {
        if (shard >= config.worker_addresses.size()) {
          *error = "no worker address configured for shard " +
                   std::to_string(shard);
          return false;
        }
        Socket sock =
            ConnectWithRetry(config.worker_addresses[shard], 100, error);
        if (!sock.valid()) return false;
        *out = RemoteShard(shard, std::move(sock), 0);
        return true;
      }
      Socket parent_end;
      Socket child_end;
      if (!MakeSocketPair(&parent_end, &child_end)) {
        *error = "socketpair failed";
        return false;
      }
      pid_t pid = ::fork();
      if (pid < 0) {
        *error = "fork failed";
        return false;
      }
      if (pid == 0) {
        // Worker child: drop every inherited server fd so client and
        // listener lifetimes are not pinned by worker processes.
        parent_end.Close();
        if (listener.valid()) ::close(listener.fd());
        for (ClientConn& c : clients) ::close(c.sock.fd());
        ::_exit(RunForkedWorker(std::move(child_end)));
      }
      child_end.Close();
      *out = RemoteShard(shard, std::move(parent_end), pid);
      return true;
    };
    std::vector<RemoteShard> workers;
    for (size_t s = 0; s < config.num_shards; ++s) {
      RemoteShard worker(static_cast<uint32_t>(s), Socket(), 0);
      std::string error;
      if (!spawner(static_cast<uint32_t>(s), &worker, &error)) {
        std::fprintf(stderr, "pvcdb server: cannot start worker %zu: %s\n", s,
                     error.c_str());
        return 1;
      }
      workers.push_back(std::move(worker));
    }
    coordinator = std::make_unique<Coordinator>(
        config.semiring, std::move(workers), spawner);
    if (config.rpc_timeout_ms >= 0 || config.heartbeat_ms >= 0 ||
        config.auto_respawn) {
      // Armed before any durable recovery so even the resync RPCs below
      // run under the deadline.
      FaultToleranceOptions ft;
      ft.rpc_deadline_ms =
          config.rpc_timeout_ms >= 0 ? config.rpc_timeout_ms : kNoDeadline;
      ft.heartbeat_ms = config.heartbeat_ms;
      ft.auto_respawn = config.auto_respawn;
      coordinator->ConfigureFaultTolerance(ft);
    }
    backend = std::make_unique<RemoteBackend>(coordinator.get());

    if (!config.open_dir.empty()) {
      std::string derr;
      bool has_state =
          DurableSession::HasState(durable_config.fs, config.open_dir);
      durable = has_state ? DurableSession::RecoverAttached(
                                durable_config, coordinator.get(), &derr)
                          : DurableSession::CreateAttached(
                                durable_config, coordinator.get(), &derr);
      if (durable == nullptr) {
        std::fprintf(stderr, "pvcdb server: %s\n", derr.c_str());
        coordinator->Shutdown();
        return 1;
      }
      if (has_state) {
        // Recovery replayed into the coordinator's replica and shard logs
        // only; bring each worker to that state (WAL tail replay when its
        // chain matches, full partition resync otherwise).
        std::vector<std::string> lines;
        coordinator->ReconcileWorkers(&lines);
        if (!config.quiet) {
          for (const std::string& l : lines) {
            std::fprintf(stderr, "pvcdb server: %s\n", l.c_str());
          }
        }
      }
    }
  }

  std::string error;
  listener = Listener::Listen(config.listen_address, &error);
  if (!listener.valid()) {
    std::fprintf(stderr, "pvcdb server: %s\n", error.c_str());
    if (coordinator != nullptr) coordinator->Shutdown();
    return 1;
  }
  if (!config.quiet) {
    std::fprintf(stderr, "pvcdb server listening on %s (%zu shards, %s)\n",
                 config.listen_address.c_str(), config.num_shards,
                 config.in_process ? "in-process" : "worker processes");
    if (durable != nullptr) {
      DurableStats stats = durable->stats();
      if (stats.recovered) {
        std::fprintf(stderr,
                     "pvcdb server: recovered %s (generation %u, %ju WAL "
                     "records replayed%s)\n",
                     config.open_dir.c_str(), stats.generation,
                     static_cast<uintmax_t>(stats.replayed_records),
                     stats.tail_truncated ? ", torn tail truncated" : "");
      } else {
        std::fprintf(stderr, "pvcdb server: opened %s (generation %u)\n",
                     config.open_dir.c_str(), stats.generation);
      }
    }
  }

  ServeSession session;
  session.durable = durable.get();

  // Group commit: replies to commands that appended unsynced WAL records
  // are queued (in arrival order, across all clients) and sent only after
  // one fsync at the end of the commit window covers them all.
  const bool group_commit = durable != nullptr && config.group_commit_ms >= 0;
  struct QueuedReply {
    int fd;  ///< Client socket at queue time (purged when the client dies).
    std::string payload;
  };
  std::deque<QueuedReply> queued;
  int64_t window_deadline_ms = -1;  // -1: no commit window open.
  auto now_ms = []() {
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
  };
  // One fsync covers every queued reply, then they flush in arrival order.
  // May erase clients whose send fails, so only call between poll-loop
  // passes (no live ClientConn reference, no fds->clients mapping).
  auto flush_queued = [&]() {
    window_deadline_ms = -1;
    if (queued.empty()) return;
    PVC_CHECK_MSG(durable->wal()->Sync(),
                  "WAL fsync failed; queued mutations cannot be "
                  "acknowledged");
    for (QueuedReply& q : queued) {
      for (size_t i = 0; i < clients.size(); ++i) {
        if (clients[i].sock.fd() != q.fd) continue;
        if (!SendFrameFlush(&clients[i].sock, MsgKind::kClientReply,
                            q.payload)) {
          clients.erase(clients.begin() + static_cast<ptrdiff_t>(i));
        }
        break;
      }
    }
    queued.clear();
  };

  // Heartbeat cycle: driven from this loop so worker health checks and
  // auto-respawns serialize with command execution (no second thread, no
  // locking on the coordinator).
  const bool heartbeat_enabled =
      coordinator != nullptr && config.heartbeat_ms >= 0;
  int64_t next_heartbeat_ms =
      heartbeat_enabled ? now_ms() + config.heartbeat_ms : -1;

  bool shutdown = false;
  while (!shutdown) {
    // Evict idle clients before building this pass's fds->clients mapping.
    if (config.client_idle_ms >= 0 && !clients.empty()) {
      int64_t now = now_ms();
      for (size_t i = clients.size(); i-- > 0;) {
        if (now - clients[i].last_activity_ms < config.client_idle_ms) {
          continue;
        }
        int fd = clients[i].sock.fd();
        queued.erase(
            std::remove_if(queued.begin(), queued.end(),
                           [fd](const QueuedReply& q) { return q.fd == fd; }),
            queued.end());
        clients.erase(clients.begin() + static_cast<ptrdiff_t>(i));
        PVCDB_COUNTER_ADD("server.idle_evictions", 1);
      }
    }

    std::vector<struct pollfd> fds;
    {
      struct pollfd lfd;
      lfd.fd = listener.fd();
      lfd.events = POLLIN;
      lfd.revents = 0;
      fds.push_back(lfd);
    }
    for (const ClientConn& c : clients) {
      struct pollfd pfd;
      pfd.fd = c.sock.fd();
      pfd.events = POLLIN;
      pfd.revents = 0;
      fds.push_back(pfd);
    }
    // Poll until the earliest pending deadline: commit window, next
    // heartbeat, or the first client to cross the idle threshold.
    int timeout_ms = -1;
    auto consider_deadline = [&](int64_t deadline) {
      if (deadline < 0) return;
      int64_t remain = deadline - now_ms();
      int t = remain > 0 ? static_cast<int>(remain) : 0;
      if (timeout_ms < 0 || t < timeout_ms) timeout_ms = t;
    };
    consider_deadline(window_deadline_ms);
    consider_deadline(next_heartbeat_ms);
    if (config.client_idle_ms >= 0) {
      for (const ClientConn& c : clients) {
        consider_deadline(c.last_activity_ms + config.client_idle_ms);
      }
    }
    int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (heartbeat_enabled && now_ms() >= next_heartbeat_ms) {
      // Never erases clients, so this pass's fds mapping stays valid.
      std::vector<std::string> lines;
      coordinator->HeartbeatTick(&lines);
      if (!config.quiet) {
        for (const std::string& l : lines) {
          std::fprintf(stderr, "pvcdb server: %s\n", l.c_str());
        }
      }
      next_heartbeat_ms = now_ms() + config.heartbeat_ms;
    }
    if (window_deadline_ms >= 0 && now_ms() >= window_deadline_ms) {
      // Commit window expired. Flushing may erase clients, which would
      // invalidate this pass's fds->clients mapping, so re-poll after.
      flush_queued();
      continue;
    }
    if (rc == 0) continue;

    // Service clients first (fds[i + 1] maps to clients[i]; the accept
    // below only appends, so the mapping is stable for this iteration).
    std::vector<size_t> dead;
    for (size_t i = 0; i + 1 < fds.size() && !shutdown; ++i) {
      short revents = fds[i + 1].revents;
      if (revents == 0) continue;
      ClientConn& client = clients[i];
      bool drop = (revents & (POLLERR | POLLNVAL)) != 0;
      bool saw_eof = false;
      if (!drop) {
        char buf[64 * 1024];
        while (true) {
          ssize_t got = client.sock.RecvSome(buf, sizeof(buf));
          if (got == kIoWouldBlock) break;
          if (got == 0) {
            saw_eof = true;
            break;
          }
          if (got < 0) {
            drop = true;
            break;
          }
          client.last_activity_ms = now_ms();
          client.parser.Feed(buf, static_cast<size_t>(got));
          if (static_cast<size_t>(got) < sizeof(buf)) break;
        }
        // Drain complete frames; buffered commands still execute (and get
        // replies) even when the client has already half-closed.
        uint8_t kind = 0;
        std::string payload;
        while (!drop) {
          FrameResult fr = client.parser.Next(&kind, &payload);
          if (fr == FrameResult::kNeedMore) break;
          if (fr != FrameResult::kOk ||
              static_cast<MsgKind>(kind) != MsgKind::kClientCommand) {
            drop = true;
            break;
          }
          ClientReplyMsg reply;
          std::string encoded;
          {
            // The trace scope covers execution plus reply encode, so its
            // total is the server-side latency the slow-query log reports.
            CommandTraceScope trace_scope(payload);
            PVCDB_COUNTER_ADD("server.commands", 1);
            reply = ExecuteCommand(backend.get(), payload, &shutdown,
                                   &session);
            PVCDB_SPAN(encode_span, "encode");
            encoded = reply.Encode();
          }
          // Any reply is deferred while unacknowledged (unsynced) WAL
          // appends exist -- including read-only replies behind them, which
          // keeps per-connection replies in command order.
          bool defer =
              group_commit && (durable->wal()->HasUnsyncedAppends() ||
                               !queued.empty());
          if (defer) {
            queued.push_back(QueuedReply{client.sock.fd(),
                                         std::move(encoded)});
            if (shutdown) break;  // Flushed (fsync + ack) below the loop.
            if (window_deadline_ms < 0) {
              window_deadline_ms = now_ms() + config.group_commit_ms;
            }
          } else {
            if (!SendFrameFlush(&client.sock, MsgKind::kClientReply,
                                encoded)) {
              drop = true;
              break;
            }
            if (shutdown) break;
          }
        }
      }
      if (drop || saw_eof) dead.push_back(i);
    }
    for (size_t d = dead.size(); d-- > 0;) {
      int fd = clients[dead[d]].sock.fd();
      // Drop queued replies for the dying fd so a later accept reusing the
      // same fd number cannot receive them.
      queued.erase(
          std::remove_if(queued.begin(), queued.end(),
                         [fd](const QueuedReply& q) { return q.fd == fd; }),
          queued.end());
      clients.erase(clients.begin() + static_cast<ptrdiff_t>(dead[d]));
    }
    if (shutdown) break;

    if (fds[0].revents & POLLIN) {
      Socket conn = listener.Accept();
      if (conn.valid() && conn.SetNonBlocking(true)) {
        ClientConn client;
        client.sock = std::move(conn);
        client.last_activity_ms = now_ms();
        clients.push_back(std::move(client));
      }
    }
    PVCDB_GAUGE_SET("server.live_connections",
                    static_cast<int64_t>(clients.size()));
  }

  // Close any open commit window (one fsync + the queued acks, including
  // the deferred shutdown reply) before workers go down.
  if (group_commit) flush_queued();

  // Dump the final aggregated snapshot while workers are still reachable.
  if (!config.metrics_dump.empty()) {
    std::string json = RenderMetricsJson(backend->StatsSnapshot());
    if (std::FILE* f = std::fopen(config.metrics_dump.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "pvcdb server: cannot write metrics dump %s\n",
                   config.metrics_dump.c_str());
    }
  }

  if (coordinator != nullptr) coordinator->Shutdown();
  listener.UnlinkSocketFile();
  return 0;
}

}  // namespace pvcdb
