// Length-prefixed, CRC-checked message framing for the serving layer.
//
// Every message on a pvcdb connection — coordinator → worker RPCs, worker
// replies, and client ↔ front-end commands — travels as one frame:
//
//     [u32 length][u32 crc32c][u8 kind][payload bytes]
//
// `length` counts the kind byte plus the payload (so an empty-payload frame
// has length 1); `crc32c` covers exactly those `length` bytes. Both fixed
// fields are little-endian (src/util/codec.h). The layout deliberately
// matches the WAL record frame `[u32 len][u32 crc32c][payload]`
// (src/engine/wal.h) with the message kind folded into the checksummed
// region, so the same torn/corrupt-tail reasoning applies: a receiver
// rejects any frame whose CRC mismatches or whose length exceeds
// kMaxFramePayload, instead of trusting a corrupted length and reading
// garbage (or allocating gigabytes).
//
// Two consumption styles share the format:
//  - SendFrame/RecvFrame: blocking, exact-length I/O for request/response
//    conversations (RemoteShard, the shell's client mode, shard workers).
//  - FrameParser: an incremental reassembler fed from a non-blocking poll
//    loop (src/serve/server.cc), which may receive frames split or
//    coalesced arbitrarily by the transport.

#ifndef PVCDB_NET_FRAME_H_
#define PVCDB_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "src/net/socket.h"

namespace pvcdb {

/// Upper bound on `length` (kind byte + payload). Generous for any real
/// message (a million-row partition encodes well under this) while keeping
/// a corrupted length field from triggering a huge allocation.
constexpr uint32_t kMaxFrameLength = 64u << 20;  // 64 MiB

enum class FrameResult : uint8_t {
  kOk,       ///< A complete, CRC-valid frame.
  kNeedMore, ///< (FrameParser only) more bytes required.
  kClosed,   ///< Orderly peer close on a frame boundary.
  kCorrupt,  ///< CRC mismatch, oversized length, or mid-frame EOF.
  kIoError,  ///< errno-level socket failure.
  kTimeout,  ///< Deadline expired mid-frame (counts `net.timeouts`).
};

/// Appends one encoded frame for (kind, payload) to `*out`.
void EncodeFrame(std::string* out, uint8_t kind, const std::string& payload);

/// Writes one frame; false on I/O error or deadline expiry (a send-side
/// timeout also counts `net.timeouts`). `deadline_ms` bounds the whole
/// frame write; kNoDeadline blocks.
bool SendFrame(Socket* sock, uint8_t kind, const std::string& payload,
               int deadline_ms = kNoDeadline);

/// Blocking read of one full frame. kClosed only when the peer closed
/// cleanly between frames; an EOF inside a frame is kCorrupt (torn frame).
/// `deadline_ms` bounds each stage of the read (header, then body — worst
/// case 2x); expiry returns kTimeout and counts `net.timeouts`. A timeout
/// may strike mid-frame, so the stream position is unreliable afterwards:
/// the connection must be dropped, the frame never re-read.
FrameResult RecvFrame(Socket* sock, uint8_t* kind, std::string* payload,
                      int deadline_ms = kNoDeadline);

/// Incremental frame reassembly for non-blocking receivers. Feed() raw
/// bytes as they arrive, then drain complete frames with Next() until it
/// returns kNeedMore. kCorrupt is sticky: the stream position is lost, so
/// the connection must be dropped.
class FrameParser {
 public:
  void Feed(const char* data, size_t n) { buffer_.append(data, n); }

  /// kOk (frame extracted into *kind/*payload), kNeedMore, or kCorrupt.
  FrameResult Next(uint8_t* kind, std::string* payload);

  /// Bytes buffered but not yet consumed by Next().
  size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  ///< Prefix of buffer_ already handed out.
  bool corrupt_ = false;
};

}  // namespace pvcdb

#endif  // PVCDB_NET_FRAME_H_
