#include "src/net/protocol.h"

#include <utility>

#include "src/query/serialize.h"
#include "src/util/codec.h"

namespace pvcdb {
namespace {

// Shared guard for "count of at-least-one-byte items" length fields: a
// corrupted count larger than the remaining bytes fails fast instead of
// looping (and reserving) on garbage.
bool PlausibleCount(ByteReader* reader, uint32_t n) {
  if (static_cast<size_t>(n) > reader->remaining()) {
    reader->Fail();
    return false;
  }
  return true;
}

}  // namespace

std::string HelloMsg::Encode() const {
  std::string out;
  EncodeU32(&out, version);
  EncodeU8(&out, static_cast<uint8_t>(semiring));
  EncodeU32(&out, shard_index);
  EncodeU32(&out, num_shards);
  return out;
}

bool HelloMsg::Decode(const std::string& payload, HelloMsg* out) {
  ByteReader reader(payload);
  out->version = reader.ReadU32();
  uint8_t semiring = reader.ReadU8();
  if (semiring > static_cast<uint8_t>(SemiringKind::kNatural)) return false;
  out->semiring = static_cast<SemiringKind>(semiring);
  out->shard_index = reader.ReadU32();
  out->num_shards = reader.ReadU32();
  return reader.ok() && reader.AtEnd();
}

std::string SyncVarsMsg::Encode() const {
  std::string out;
  EncodeU32(&out, first_id);
  EncodeU32(&out, static_cast<uint32_t>(entries.size()));
  for (const VarSyncEntry& entry : entries) {
    EncodeString(&out, entry.name);
    EncodeDistribution(&out, entry.distribution);
  }
  return out;
}

bool SyncVarsMsg::Decode(const std::string& payload, SyncVarsMsg* out) {
  ByteReader reader(payload);
  out->first_id = reader.ReadU32();
  uint32_t n = reader.ReadU32();
  if (!PlausibleCount(&reader, n)) return false;
  out->entries.clear();
  out->entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    VarSyncEntry entry;
    entry.name = reader.ReadString();
    entry.distribution = DecodeDistribution(&reader);
    out->entries.push_back(std::move(entry));
  }
  return reader.ok() && reader.AtEnd();
}

std::string UpdateVarMsg::Encode() const {
  std::string out;
  EncodeU32(&out, var);
  EncodeDouble(&out, probability);
  return out;
}

bool UpdateVarMsg::Decode(const std::string& payload, UpdateVarMsg* out) {
  ByteReader reader(payload);
  out->var = reader.ReadU32();
  out->probability = reader.ReadDouble();
  return reader.ok() && reader.AtEnd();
}

std::string LoadPartitionMsg::Encode() const {
  std::string out;
  EncodeString(&out, table);
  EncodeString(&out, key_column);
  EncodeSchema(&out, schema);
  EncodeU64(&out, rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EncodeCells(&out, rows[i]);
    EncodeU32(&out, vars[i]);
    EncodeU64(&out, global_rows[i]);
  }
  return out;
}

bool LoadPartitionMsg::Decode(const std::string& payload,
                              LoadPartitionMsg* out) {
  ByteReader reader(payload);
  out->table = reader.ReadString();
  out->key_column = reader.ReadString();
  out->schema = DecodeSchema(&reader);
  uint64_t n = reader.ReadU64();
  if (n > reader.remaining()) return false;
  out->rows.clear();
  out->vars.clear();
  out->global_rows.clear();
  out->rows.reserve(n);
  out->vars.reserve(n);
  out->global_rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    out->rows.push_back(DecodeCells(&reader));
    out->vars.push_back(reader.ReadU32());
    out->global_rows.push_back(reader.ReadU64());
  }
  return reader.ok() && reader.AtEnd();
}

std::string AppendRowMsg::Encode() const {
  std::string out;
  EncodeString(&out, table);
  EncodeCells(&out, cells);
  EncodeU32(&out, var);
  EncodeU64(&out, global_row);
  return out;
}

bool AppendRowMsg::Decode(const std::string& payload, AppendRowMsg* out) {
  ByteReader reader(payload);
  out->table = reader.ReadString();
  out->cells = DecodeCells(&reader);
  out->var = reader.ReadU32();
  out->global_row = reader.ReadU64();
  return reader.ok() && reader.AtEnd();
}

std::string DeleteRowMsg::Encode() const {
  std::string out;
  EncodeString(&out, table);
  EncodeU8(&out, has_local_row ? 1 : 0);
  EncodeU64(&out, local_row);
  EncodeU64(&out, global_row);
  return out;
}

bool DeleteRowMsg::Decode(const std::string& payload, DeleteRowMsg* out) {
  ByteReader reader(payload);
  out->table = reader.ReadString();
  uint8_t flag = reader.ReadU8();
  if (flag > 1) return false;
  out->has_local_row = flag == 1;
  out->local_row = reader.ReadU64();
  out->global_row = reader.ReadU64();
  return reader.ok() && reader.AtEnd();
}

std::string EvalChainMsg::Encode() const {
  std::string out;
  EncodeString(&out, table);
  EncodeU8(&out, want_distributions ? 1 : 0);
  EncodeQuery(&out, *query);
  return out;
}

bool EvalChainMsg::Decode(const std::string& payload, EvalChainMsg* out) {
  ByteReader reader(payload);
  out->table = reader.ReadString();
  uint8_t flag = reader.ReadU8();
  if (flag > 1) return false;
  out->want_distributions = flag == 1;
  out->query = DecodeQuery(&reader);
  return out->query != nullptr && reader.ok() && reader.AtEnd();
}

std::string TableProbsMsg::Encode() const {
  std::string out;
  EncodeString(&out, table);
  EncodeU8(&out, want_distributions ? 1 : 0);
  return out;
}

bool TableProbsMsg::Decode(const std::string& payload, TableProbsMsg* out) {
  ByteReader reader(payload);
  out->table = reader.ReadString();
  uint8_t flag = reader.ReadU8();
  if (flag > 1) return false;
  out->want_distributions = flag == 1;
  return reader.ok() && reader.AtEnd();
}

std::string RegisterChainViewMsg::Encode() const {
  std::string out;
  EncodeString(&out, name);
  EncodeString(&out, table);
  EncodeQuery(&out, *query);
  return out;
}

bool RegisterChainViewMsg::Decode(const std::string& payload,
                                  RegisterChainViewMsg* out) {
  ByteReader reader(payload);
  out->name = reader.ReadString();
  out->table = reader.ReadString();
  out->query = DecodeQuery(&reader);
  return out->query != nullptr && reader.ok() && reader.AtEnd();
}

std::string NameMsg::Encode() const {
  std::string out;
  EncodeString(&out, name);
  return out;
}

bool NameMsg::Decode(const std::string& payload, NameMsg* out) {
  ByteReader reader(payload);
  out->name = reader.ReadString();
  return reader.ok() && reader.AtEnd();
}

std::string ChainResultMsg::Encode() const {
  std::string out;
  EncodeSchema(&out, schema);
  EncodeU64(&out, rows.size());
  for (const ChainRow& row : rows) {
    EncodeU64(&out, row.global_row);
    EncodeCells(&out, row.cells);
    EncodeU32(&out, row.var);
    EncodeDouble(&out, row.probability);
    EncodeDistribution(&out, row.distribution);
  }
  return out;
}

bool ChainResultMsg::Decode(const std::string& payload, ChainResultMsg* out) {
  ByteReader reader(payload);
  out->schema = DecodeSchema(&reader);
  uint64_t n = reader.ReadU64();
  if (n > reader.remaining()) return false;
  out->rows.clear();
  out->rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ChainRow row;
    row.global_row = reader.ReadU64();
    row.cells = DecodeCells(&reader);
    row.var = reader.ReadU32();
    row.probability = reader.ReadDouble();
    row.distribution = DecodeDistribution(&reader);
    out->rows.push_back(std::move(row));
  }
  return reader.ok() && reader.AtEnd();
}

std::string ProbsResultMsg::Encode() const {
  std::string out;
  EncodeU64(&out, rows.size());
  for (const ProbRow& row : rows) {
    EncodeU64(&out, row.global_row);
    EncodeDouble(&out, row.probability);
    EncodeDistribution(&out, row.distribution);
  }
  return out;
}

bool ProbsResultMsg::Decode(const std::string& payload, ProbsResultMsg* out) {
  ByteReader reader(payload);
  uint64_t n = reader.ReadU64();
  if (n > reader.remaining()) return false;
  out->rows.clear();
  out->rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ProbRow row;
    row.global_row = reader.ReadU64();
    row.probability = reader.ReadDouble();
    row.distribution = DecodeDistribution(&reader);
    out->rows.push_back(std::move(row));
  }
  return reader.ok() && reader.AtEnd();
}

std::string ViewInfoMsg::Encode() const {
  std::string out;
  EncodeU64(&out, rows);
  EncodeU64(&out, cache_entries);
  return out;
}

bool ViewInfoMsg::Decode(const std::string& payload, ViewInfoMsg* out) {
  ByteReader reader(payload);
  out->rows = reader.ReadU64();
  out->cache_entries = reader.ReadU64();
  return reader.ok() && reader.AtEnd();
}

std::string EvalOptionsMsg::Encode() const {
  std::string out;
  EncodeU32(&out, num_threads);
  EncodeU32(&out, intra_tree_threads);
  return out;
}

bool EvalOptionsMsg::Decode(const std::string& payload, EvalOptionsMsg* out) {
  ByteReader reader(payload);
  out->num_threads = reader.ReadU32();
  out->intra_tree_threads = reader.ReadU32();
  return reader.ok() && reader.AtEnd();
}

std::string ReplayTailMsg::Encode() const {
  std::string out;
  EncodeU64(&out, base_lsn);
  return out;
}

bool ReplayTailMsg::Decode(const std::string& payload, ReplayTailMsg* out) {
  ByteReader reader(payload);
  out->base_lsn = reader.ReadU64();
  return reader.ok() && reader.AtEnd();
}

std::string TailInfoMsg::Encode() const {
  std::string out;
  EncodeU64(&out, lsn);
  EncodeU32(&out, chain);
  return out;
}

bool TailInfoMsg::Decode(const std::string& payload, TailInfoMsg* out) {
  ByteReader reader(payload);
  out->lsn = reader.ReadU64();
  out->chain = reader.ReadU32();
  return reader.ok() && reader.AtEnd();
}

std::string PingMsg::Encode() const {
  std::string out;
  EncodeU64(&out, nonce);
  return out;
}

bool PingMsg::Decode(const std::string& payload, PingMsg* out) {
  // A bare liveness probe: empty payload means nonce 0.
  if (payload.empty()) {
    out->nonce = 0;
    return true;
  }
  ByteReader reader(payload);
  out->nonce = reader.ReadU64();
  return reader.ok() && reader.AtEnd();
}

std::string PongMsg::Encode() const {
  std::string out;
  EncodeU64(&out, nonce);
  EncodeU64(&out, lsn);
  EncodeU32(&out, chain);
  return out;
}

bool PongMsg::Decode(const std::string& payload, PongMsg* out) {
  ByteReader reader(payload);
  out->nonce = reader.ReadU64();
  out->lsn = reader.ReadU64();
  out->chain = reader.ReadU32();
  return reader.ok() && reader.AtEnd();
}

std::string ShipWalMsg::Encode() const {
  std::string out;
  EncodeU64(&out, first_lsn);
  EncodeU32(&out, static_cast<uint32_t>(entries.size()));
  for (const WalEntry& entry : entries) {
    EncodeU8(&out, entry.kind);
    EncodeString(&out, entry.payload);
  }
  return out;
}

bool ShipWalMsg::Decode(const std::string& payload, ShipWalMsg* out) {
  ByteReader reader(payload);
  out->first_lsn = reader.ReadU64();
  uint32_t n = reader.ReadU32();
  if (!PlausibleCount(&reader, n)) return false;
  out->entries.clear();
  out->entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WalEntry entry;
    entry.kind = reader.ReadU8();
    entry.payload = reader.ReadString();
    out->entries.push_back(std::move(entry));
  }
  return reader.ok() && reader.AtEnd();
}

std::string StatsReplyMsg::Encode() const {
  std::string out;
  EncodeU32(&out, static_cast<uint32_t>(entries.size()));
  for (const MetricSnapshot& entry : entries) {
    EncodeU8(&out, static_cast<uint8_t>(entry.kind));
    EncodeString(&out, entry.name);
    switch (entry.kind) {
      case MetricSnapshot::Kind::kCounter:
        EncodeU64(&out, entry.counter_value);
        break;
      case MetricSnapshot::Kind::kGauge:
        EncodeI64(&out, entry.gauge_value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        EncodeU32(&out, static_cast<uint32_t>(entry.bounds.size()));
        for (double bound : entry.bounds) EncodeDouble(&out, bound);
        // bucket_counts has one extra slot for the overflow bucket.
        for (uint64_t count : entry.bucket_counts) EncodeU64(&out, count);
        EncodeU64(&out, entry.observations);
        EncodeDouble(&out, entry.sum);
        break;
      }
    }
  }
  return out;
}

bool StatsReplyMsg::Decode(const std::string& payload, StatsReplyMsg* out) {
  ByteReader reader(payload);
  uint32_t n = reader.ReadU32();
  if (!PlausibleCount(&reader, n)) return false;
  out->entries.clear();
  out->entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MetricSnapshot entry;
    uint8_t kind = reader.ReadU8();
    if (kind > static_cast<uint8_t>(MetricSnapshot::Kind::kHistogram)) return false;
    entry.kind = static_cast<MetricSnapshot::Kind>(kind);
    entry.name = reader.ReadString();
    switch (entry.kind) {
      case MetricSnapshot::Kind::kCounter:
        entry.counter_value = reader.ReadU64();
        break;
      case MetricSnapshot::Kind::kGauge:
        entry.gauge_value = reader.ReadI64();
        break;
      case MetricSnapshot::Kind::kHistogram: {
        uint32_t n_bounds = reader.ReadU32();
        if (!PlausibleCount(&reader, n_bounds)) return false;
        entry.bounds.resize(n_bounds);
        for (uint32_t b = 0; b < n_bounds; ++b) {
          entry.bounds[b] = reader.ReadDouble();
        }
        entry.bucket_counts.resize(n_bounds + 1);
        for (uint32_t b = 0; b < n_bounds + 1; ++b) {
          entry.bucket_counts[b] = reader.ReadU64();
        }
        entry.observations = reader.ReadU64();
        entry.sum = reader.ReadDouble();
        break;
      }
    }
    if (!reader.ok()) return false;
    out->entries.push_back(std::move(entry));
  }
  return reader.ok() && reader.AtEnd();
}

std::string OkMsg::Encode() const {
  std::string out;
  EncodeU64(&out, value);
  return out;
}

bool OkMsg::Decode(const std::string& payload, OkMsg* out) {
  ByteReader reader(payload);
  out->value = reader.ReadU64();
  return reader.ok() && reader.AtEnd();
}

std::string ErrorMsg::Encode() const {
  std::string out;
  EncodeString(&out, text);
  return out;
}

bool ErrorMsg::Decode(const std::string& payload, ErrorMsg* out) {
  ByteReader reader(payload);
  out->text = reader.ReadString();
  return reader.ok() && reader.AtEnd();
}

std::string ClientReplyMsg::Encode() const {
  std::string out;
  EncodeU8(&out, ok ? 1 : 0);
  EncodeString(&out, text);
  return out;
}

bool ClientReplyMsg::Decode(const std::string& payload, ClientReplyMsg* out) {
  ByteReader reader(payload);
  uint8_t flag = reader.ReadU8();
  if (flag > 1) return false;
  out->ok = flag == 1;
  out->text = reader.ReadString();
  return reader.ok() && reader.AtEnd();
}

}  // namespace pvcdb
