// POSIX socket primitives for the out-of-process serving layer
// (src/engine/remote_shard.h, src/serve/server.h): an RAII fd wrapper with
// EINTR-retrying full-buffer I/O, listeners over Unix-domain and TCP
// endpoints, and a socketpair factory for forked in-process workers.
//
// Address convention (used by every tool flag and config field): a string
// containing ':' is a TCP endpoint "host:port"; anything else is a
// Unix-domain socket path. Unix sockets are the default for local
// deployments (no port allocation, filesystem permissions); TCP serves
// multi-host setups.
//
// Blocking vs non-blocking: RemoteShard and the shell client use the
// blocking SendAll/RecvAll pair (a request/response conversation). The
// front-end server switches accepted client sockets to non-blocking and
// uses SendSome/RecvSome from its poll loop (src/serve/server.cc). Every
// call retries EINTR internally; sends use MSG_NOSIGNAL (and entry points
// additionally IgnoreSigPipe process-wide), so a peer death surfaces as an
// EPIPE error return, never a signal.
//
// Deadlines: every blocking call takes an optional `deadline_ms` budget
// enforced with poll(2) before each syscall, surfacing IoStatus::kTimeout
// (or kIoTimeout for Some-style calls) distinct from EOF and errors. This
// is the bottom of the fault-tolerance plane: no RPC above this layer is
// issued without a deadline once one is configured (see
// docs/ARCHITECTURE.md, cross-cutting invariant 6).

#ifndef PVCDB_NET_SOCKET_H_
#define PVCDB_NET_SOCKET_H_

#include <sys/types.h>

#include <cstddef>
#include <string>

#include "src/net/backoff.h"

namespace pvcdb {

/// Outcome of an exact-length I/O call.
enum class IoStatus : uint8_t {
  kOk,       ///< The full buffer was transferred.
  kClosed,   ///< Orderly peer shutdown before (or mid-) buffer.
  kError,    ///< I/O error (errno-level failure).
  kTimeout,  ///< Deadline expired before the buffer completed.
};

/// Result code SendSome/RecvSome use for "would block" (EAGAIN) so the
/// poll loop can distinguish it from EOF (0) and errors (-1).
constexpr ssize_t kIoWouldBlock = -2;

/// Result code of the deadline-bounded Some-style calls: the deadline
/// expired before any byte moved. Distinct from kIoWouldBlock (EAGAIN
/// observed, no deadline spent yet), EOF (0), and errors (-1).
constexpr ssize_t kIoTimeout = -3;

/// "No deadline" sentinel for every `deadline_ms` parameter in this layer:
/// block indefinitely, exactly the pre-deadline behaviour.
constexpr int kNoDeadline = -1;

/// Move-only RAII wrapper of a connected (or listening) socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Releases ownership of the fd (caller closes it).
  int Release();
  void Close();

  /// Writes exactly `n` bytes (looping over partial writes, retrying
  /// EINTR). False on any error, including EPIPE from a dead peer.
  bool SendAll(const void* data, size_t n);

  /// SendAll under a poll-based deadline covering the whole transfer.
  /// kTimeout when `deadline_ms` elapses first; kNoDeadline blocks forever.
  IoStatus SendAllDeadline(const void* data, size_t n, int deadline_ms);

  /// Reads exactly `n` bytes. kClosed when the peer shut down before the
  /// buffer was complete (a torn frame and an orderly close both land
  /// here; the framing layer's CRC separates them). `deadline_ms` bounds
  /// the whole transfer (poll-based); kTimeout when it elapses first.
  IoStatus RecvAll(void* data, size_t n, int deadline_ms = kNoDeadline);

  /// One send(2) call on a non-blocking socket: bytes written (>= 0),
  /// kIoWouldBlock, or -1 on error.
  ssize_t SendSome(const void* data, size_t n);

  /// One recv(2) call on a non-blocking socket: bytes read (> 0), 0 on
  /// orderly EOF, kIoWouldBlock, or -1 on error.
  ssize_t RecvSome(void* data, size_t n);

  /// RecvSome that first waits (poll) up to `deadline_ms` for readability:
  /// bytes read (> 0), 0 on EOF, kIoTimeout when the deadline expired with
  /// nothing to read, or -1 on error. Used by deadline-bounded relays
  /// (src/net/fault.h) where kIoWouldBlock would spin.
  ssize_t RecvSomeDeadline(void* data, size_t n, int deadline_ms);

  /// Switches O_NONBLOCK; false on fcntl failure.
  bool SetNonBlocking(bool nonblocking);

 private:
  int fd_ = -1;
};

/// A bound, listening endpoint.
class Listener {
 public:
  /// Listens on `address` (see the address convention above). Unix paths
  /// are unlinked first so a stale socket file from a dead server does not
  /// block the bind; TCP listeners set SO_REUSEADDR. Invalid socket +
  /// `*error` on failure.
  static Listener Listen(const std::string& address, std::string* error);

  bool valid() const { return sock_.valid(); }
  int fd() const { return sock_.fd(); }
  const std::string& address() const { return address_; }

  /// Accepts one connection (blocking; retries EINTR). Invalid socket on
  /// error.
  Socket Accept();

  /// Removes the socket file of a Unix listener (no-op for TCP).
  void UnlinkSocketFile();

 private:
  Socket sock_;
  std::string address_;
  std::string unix_path_;  ///< Empty for TCP listeners.
};

/// Connects to `address`. `deadline_ms` bounds the connect itself
/// (non-blocking connect + poll + SO_ERROR); kNoDeadline blocks. Invalid
/// socket + `*error` on failure or timeout.
Socket ConnectAddress(const std::string& address, std::string* error,
                      int deadline_ms = kNoDeadline);

/// ConnectAddress with up to `attempts` retries paced by a seeded
/// exponential-backoff schedule (fast early attempts for a server still
/// binding its listener, capped delays so long attempt counts stay
/// bounded). Each retry counts `net.retries`. `deadline_ms` bounds each
/// individual connect attempt. Tests pass a mock `clock` to assert the
/// schedule without sleeping. Invalid socket + the last error on
/// exhaustion.
Socket ConnectWithRetry(const std::string& address, int attempts,
                        std::string* error,
                        int deadline_ms = kNoDeadline,
                        const BackoffPolicy& policy = BackoffPolicy(),
                        Clock* clock = nullptr);

/// A connected AF_UNIX stream pair (fork hand-off for in-process-spawned
/// shard workers). False on failure.
bool MakeSocketPair(Socket* parent_end, Socket* child_end);

/// Ignores SIGPIPE process-wide (idempotent). Every server/client entry
/// point calls this so peer deaths surface as EPIPE errors.
void IgnoreSigPipe();

}  // namespace pvcdb

#endif  // PVCDB_NET_SOCKET_H_
