// Retry pacing for the fault-tolerance plane: a mockable clock seam, a
// seeded exponential-backoff schedule, and a sliding-window circuit
// breaker. Everything here is deterministic given (policy, seed, clock),
// so backoff schedules and breaker windows are unit-testable without
// sleeping (tests/backoff_test.cc drives a mock Clock).
//
// Consumers: ConnectWithRetry (src/net/socket.h) paces reconnect attempts
// with an ExponentialBackoff; the coordinator's heartbeat cycle
// (src/engine/coordinator.h) paces worker auto-respawns with one backoff +
// breaker per worker, so a shard that keeps dying degrades instead of
// respawn-thrashing.

#ifndef PVCDB_NET_BACKOFF_H_
#define PVCDB_NET_BACKOFF_H_

#include <cstdint>
#include <deque>

namespace pvcdb {

/// Monotonic time + sleep seam. Production code uses Real() (CLOCK_MONOTONIC
/// + usleep); tests substitute a mock that advances manually, so schedules
/// assert in microseconds of wall time.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Milliseconds on a monotonic timeline (epoch unspecified).
  virtual uint64_t NowMillis() = 0;

  virtual void SleepMillis(uint64_t ms) = 0;

  /// Process-wide real clock (never null; not owned by the caller).
  static Clock* Real();
};

/// Parameters of an exponential-backoff schedule. The defaults suit
/// connect races (a server still binding its listener): the first retries
/// come faster than the old fixed 20ms spacing, the cap keeps the total
/// budget of a long attempt count bounded.
struct BackoffPolicy {
  uint64_t base_ms = 1;      ///< Delay before the first retry.
  uint64_t max_ms = 50;      ///< Cap on any single delay.
  double multiplier = 2.0;   ///< Growth factor per attempt.
  /// Jitter fraction in [0, 1]: each delay is drawn uniformly from
  /// [delay * (1 - jitter), delay]. 0 disables jitter (exact schedule).
  double jitter = 0.5;
  uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< Jitter PRNG seed.
};

/// A deterministic exponential-backoff schedule: NextDelayMs() walks
/// base * multiplier^n capped at max_ms, jittered by a seeded splitmix64
/// stream. Same (policy, seed) => same sequence, always.
class ExponentialBackoff {
 public:
  ExponentialBackoff() : ExponentialBackoff(BackoffPolicy()) {}
  explicit ExponentialBackoff(const BackoffPolicy& policy);

  /// Delay to wait before the next attempt, advancing the schedule.
  uint64_t NextDelayMs();

  /// Back to the first-attempt delay (and the seed's PRNG position), e.g.
  /// after a successful reconnect.
  void Reset();

  int attempts() const { return attempts_; }

 private:
  BackoffPolicy policy_;
  uint64_t rng_state_ = 0;
  int attempts_ = 0;
};

/// Sliding-window failure counter: `open()` once `max_failures` failures
/// landed within the trailing `window_ms`. Failures age out of the window,
/// so an open circuit closes by itself after `window_ms` of quiet — the
/// half-open probe that then fails re-opens it for another window.
/// RecordSuccess() clears the history (circuit closed immediately).
class CircuitBreaker {
 public:
  CircuitBreaker(int max_failures, uint64_t window_ms, Clock* clock);

  void RecordFailure();
  void RecordSuccess();
  bool open();

  int failures_in_window();

 private:
  void Expire(uint64_t now);

  int max_failures_;
  uint64_t window_ms_;
  Clock* clock_;
  std::deque<uint64_t> failure_times_;
};

}  // namespace pvcdb

#endif  // PVCDB_NET_BACKOFF_H_
