// Deterministic fault injection for the serving stack's transport layer.
//
// FaultProxy is an in-process, frame-aware relay: the coordinator (or a
// test) dials the proxy instead of the worker, and the proxy forwards
// whole frames in both directions, re-encoded canonically (EncodeFrame is
// deterministic, so an unfaulted forwarded frame is byte-identical to the
// original). A seeded schedule decides which frames get hurt and how:
//
//   kDelay     hold the frame `delay_ms` before forwarding it
//   kDrop      silently swallow the frame (the receiver sees a hang, not
//              an error -- exactly what a deadline must catch)
//   kHang      stop forwarding in BOTH directions, connections held open
//              (the transport analogue of a SIGSTOP'd worker)
//   kTruncate  forward half the frame's bytes, then close both ends
//              (a torn frame: the receiver's CRC/length check fires)
//   kFlipBit   flip one payload bit and forward (CRC mismatch at the
//              receiver; the connection must be poisoned, never re-read)
//   kReset     close both ends immediately (mid-scatter connection reset)
//
// Rules address frames by a per-direction, proxy-global frame index, so a
// given schedule plus deterministic traffic faults exactly the same frame
// every run -- the property the fault gauntlet
// (tests/fault_injection_test.cc) builds its bit-identical-twin assertions
// on. An optional probabilistic mode (delay_probability / delay_ms / seed)
// serves the bench harness's flaky-link percentile runs; it is seeded
// splitmix64, so it is also reproducible.
//
// The proxy never interprets payloads and keeps no protocol state beyond
// frame reassembly: it can sit on any pvcdb connection (coordinator ->
// worker RPCs, client -> front-end commands) without knowing which.

#ifndef PVCDB_NET_FAULT_H_
#define PVCDB_NET_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/socket.h"

namespace pvcdb {

/// Which half of the conversation a rule applies to. "Requests" flow from
/// the dialing side (coordinator / client) to the upstream (worker /
/// server); "replies" flow back.
enum class FaultDirection : uint8_t { kRequests = 0, kReplies = 1 };

enum class FaultType : uint8_t {
  kDelay,
  kDrop,
  kHang,
  kTruncate,
  kFlipBit,
  kReset,
};

/// One injected fault: hurt the `frame_index`-th frame (0-based, counted
/// per direction across the proxy's whole lifetime) observed flowing in
/// `direction`.
struct FaultRule {
  FaultDirection direction = FaultDirection::kRequests;
  uint64_t frame_index = 0;
  FaultType type = FaultType::kDelay;
  uint64_t delay_ms = 0;  ///< kDelay only.
};

struct FaultSchedule {
  std::vector<FaultRule> rules;
  /// Probabilistic flaky-link mode (bench): independently of `rules`,
  /// delay each forwarded frame by `delay_ms` with this probability,
  /// drawn from a splitmix64 stream seeded with `seed`.
  double delay_probability = 0.0;
  uint64_t delay_ms = 0;
  uint64_t seed = 0x5eedf417;
};

class FaultProxy {
 public:
  FaultProxy() = default;
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// Listens on `listen_address`; every accepted connection dials
  /// `upstream_address` and relays frames under `schedule`. False +
  /// `*error` when the listener cannot bind.
  bool Start(const std::string& listen_address,
             const std::string& upstream_address, FaultSchedule schedule,
             std::string* error);

  /// Stops accepting, closes every relay, joins all threads. Idempotent.
  void Stop();

  const std::string& address() const { return listen_address_; }

  /// Appends a rule to the live schedule. Lets a test flow known-clean
  /// traffic first, read frames_seen() to learn the next frame's index,
  /// and then arm a fault for exactly that frame -- deterministic without
  /// hard-coding protocol frame counts.
  void AddRule(const FaultRule& rule);

  /// Whole frames forwarded (faulted delay/flip frames count; dropped,
  /// truncated and reset ones do not).
  uint64_t frames_forwarded(FaultDirection direction) const {
    return frames_forwarded_[static_cast<size_t>(direction)].load();
  }
  /// Frames observed in `direction` so far == the index the next frame in
  /// that direction will be matched under (faulted frames count).
  uint64_t frames_seen(FaultDirection direction) const {
    return next_index_[static_cast<size_t>(direction)].load();
  }
  uint64_t faults_injected() const { return faults_injected_.load(); }

 private:
  void AcceptLoop();
  void RelayLoop(Socket client);
  /// Copies out the first rule matching (direction, index); false when the
  /// frame passes clean.
  bool MatchRule(FaultDirection direction, uint64_t index, FaultRule* out);
  bool ProbabilisticDelay();

  std::string listen_address_;
  std::string upstream_;
  FaultSchedule schedule_;
  Listener listener_;
  std::thread accept_thread_;
  std::mutex mu_;  ///< Guards relay_threads_, schedule_.rules, rng_state_.
  std::vector<std::thread> relay_threads_;
  uint64_t rng_state_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> hung_{false};  ///< A kHang rule fired (proxy-global).
  std::atomic<uint64_t> next_index_[2]{};
  std::atomic<uint64_t> frames_forwarded_[2]{};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace pvcdb

#endif  // PVCDB_NET_FAULT_H_
