#include "src/net/fault.h"

#include <poll.h>

#include <utility>

#include "src/net/backoff.h"
#include "src/net/frame.h"

namespace pvcdb {
namespace {

// Forwards are bounded so a relay thread can never wedge Stop(): if the
// receiving end stops draining for this long, the relay closes both sides
// (indistinguishable from kReset to the endpoints, which must already
// handle resets).
constexpr int kForwardDeadlineMs = 10000;

constexpr uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FaultProxy::~FaultProxy() { Stop(); }

bool FaultProxy::Start(const std::string& listen_address,
                       const std::string& upstream_address,
                       FaultSchedule schedule, std::string* error) {
  listener_ = Listener::Listen(listen_address, error);
  if (!listener_.valid()) return false;
  listen_address_ = listen_address;
  upstream_ = upstream_address;
  schedule_ = std::move(schedule);
  rng_state_ = schedule_.seed;
  stop_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void FaultProxy::Stop() {
  stop_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> relays;
  {
    std::lock_guard<std::mutex> lock(mu_);
    relays.swap(relay_threads_);
  }
  for (std::thread& t : relays) {
    if (t.joinable()) t.join();
  }
  listener_.UnlinkSocketFile();
}

void FaultProxy::AcceptLoop() {
  while (!stop_.load()) {
    // Poll the listener so the loop notices stop_ without a connection.
    struct pollfd pfd;
    pfd.fd = listener_.fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;
    Socket client = listener_.Accept();
    if (!client.valid()) continue;
    std::lock_guard<std::mutex> lock(mu_);
    relay_threads_.emplace_back(
        [this](Socket sock) { RelayLoop(std::move(sock)); },
        std::move(client));
  }
}

void FaultProxy::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_.rules.push_back(rule);
}

bool FaultProxy::MatchRule(FaultDirection direction, uint64_t index,
                           FaultRule* out) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const FaultRule& rule : schedule_.rules) {
    if (rule.direction == direction && rule.frame_index == index) {
      *out = rule;
      return true;
    }
  }
  return false;
}

bool FaultProxy::ProbabilisticDelay() {
  if (schedule_.delay_probability <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  double unit = static_cast<double>(SplitMix64(&rng_state_) >> 11) /
                9007199254740992.0;
  return unit < schedule_.delay_probability;
}

void FaultProxy::RelayLoop(Socket client) {
  std::string error;
  Socket upstream = ConnectAddress(upstream_, &error, kForwardDeadlineMs);
  if (!upstream.valid()) return;

  FrameParser parsers[2];
  Socket* from[2] = {&client, &upstream};
  Socket* to[2] = {&upstream, &client};
  char buffer[64 * 1024];

  while (!stop_.load()) {
    if (hung_.load()) {
      // A kHang rule fired: both connections stay open, nothing moves --
      // the endpoints' deadlines are the only way out. Park until Stop().
      Clock::Real()->SleepMillis(20);
      continue;
    }
    struct pollfd pfds[2];
    for (int d = 0; d < 2; ++d) {
      pfds[d].fd = from[d]->fd();
      pfds[d].events = POLLIN;
      pfds[d].revents = 0;
    }
    int ready = ::poll(pfds, 2, 50);
    if (ready < 0) return;
    if (ready == 0) continue;
    for (int d = 0; d < 2; ++d) {
      if ((pfds[d].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      ssize_t n = from[d]->RecvSome(buffer, sizeof(buffer));
      if (n == 0 || n == -1) return;  // Peer closed / error: drop the pair.
      if (n == kIoWouldBlock) continue;
      parsers[d].Feed(buffer, static_cast<size_t>(n));
      uint8_t kind = 0;
      std::string payload;
      FrameResult r;
      while ((r = parsers[d].Next(&kind, &payload)) == FrameResult::kOk) {
        FaultDirection direction = static_cast<FaultDirection>(d);
        uint64_t index =
            next_index_[static_cast<size_t>(direction)].fetch_add(1);
        FaultRule rule;
        bool faulted = MatchRule(direction, index, &rule);
        std::string wire;
        EncodeFrame(&wire, kind, payload);
        if (faulted) {
          faults_injected_.fetch_add(1);
          switch (rule.type) {
            case FaultType::kDelay:
              Clock::Real()->SleepMillis(rule.delay_ms);
              break;  // Then forward normally below.
            case FaultType::kDrop:
              continue;  // Swallow silently; the stream stays aligned here.
            case FaultType::kHang:
              hung_.store(true);
              continue;  // Nothing (including this frame) moves again.
            case FaultType::kTruncate:
              to[d]->SendAllDeadline(wire.data(), wire.size() / 2,
                                     kForwardDeadlineMs);
              return;  // Torn frame, then both ends close.
            case FaultType::kFlipBit:
              wire.back() = static_cast<char>(wire.back() ^ 0x01);
              break;  // Forward the corrupted bytes (CRC catches it).
            case FaultType::kReset:
              return;  // Close both ends mid-conversation.
          }
        }
        if (ProbabilisticDelay()) {
          faults_injected_.fetch_add(1);
          Clock::Real()->SleepMillis(schedule_.delay_ms);
        }
        if (hung_.load()) break;
        if (to[d]->SendAllDeadline(wire.data(), wire.size(),
                                   kForwardDeadlineMs) != IoStatus::kOk) {
          return;
        }
        frames_forwarded_[static_cast<size_t>(direction)].fetch_add(1);
      }
      if (r == FrameResult::kCorrupt) return;
    }
  }
}

}  // namespace pvcdb
