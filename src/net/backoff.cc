#include "src/net/backoff.h"

#include <time.h>
#include <unistd.h>

#include <algorithm>

namespace pvcdb {
namespace {

class RealClock : public Clock {
 public:
  uint64_t NowMillis() override {
    timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000 +
           static_cast<uint64_t>(ts.tv_nsec) / 1000000;
  }

  void SleepMillis(uint64_t ms) override {
    ::usleep(static_cast<useconds_t>(ms * 1000));
  }
};

// splitmix64: tiny, seedable, and good enough for jitter. Not <random> so
// the sequence is identical across standard libraries (the schedule is
// asserted bit-exactly in tests).
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Clock* Clock::Real() {
  static RealClock clock;
  return &clock;
}

ExponentialBackoff::ExponentialBackoff(const BackoffPolicy& policy)
    : policy_(policy), rng_state_(policy.seed) {}

uint64_t ExponentialBackoff::NextDelayMs() {
  double delay = static_cast<double>(policy_.base_ms);
  for (int i = 0; i < attempts_; ++i) {
    delay *= policy_.multiplier;
    if (delay >= static_cast<double>(policy_.max_ms)) break;
  }
  uint64_t capped = std::min(
      policy_.max_ms, static_cast<uint64_t>(delay < 1.0 ? 1.0 : delay));
  ++attempts_;
  if (policy_.jitter > 0.0 && capped > 0) {
    // Uniform in [capped * (1 - jitter), capped].
    const double unit =
        static_cast<double>(SplitMix64(&rng_state_) >> 11) / 9007199254740992.0;
    const double low = static_cast<double>(capped) * (1.0 - policy_.jitter);
    const double jittered =
        low + (static_cast<double>(capped) - low) * unit;
    capped = static_cast<uint64_t>(jittered + 0.5);
  }
  return capped;
}

void ExponentialBackoff::Reset() {
  attempts_ = 0;
  rng_state_ = policy_.seed;
}

CircuitBreaker::CircuitBreaker(int max_failures, uint64_t window_ms,
                               Clock* clock)
    : max_failures_(max_failures),
      window_ms_(window_ms),
      clock_(clock != nullptr ? clock : Clock::Real()) {}

void CircuitBreaker::Expire(uint64_t now) {
  while (!failure_times_.empty() &&
         now - failure_times_.front() > window_ms_) {
    failure_times_.pop_front();
  }
}

void CircuitBreaker::RecordFailure() {
  uint64_t now = clock_->NowMillis();
  Expire(now);
  failure_times_.push_back(now);
}

void CircuitBreaker::RecordSuccess() { failure_times_.clear(); }

bool CircuitBreaker::open() {
  return failures_in_window() >= max_failures_;
}

int CircuitBreaker::failures_in_window() {
  Expire(clock_->NowMillis());
  return static_cast<int>(failure_times_.size());
}

}  // namespace pvcdb
