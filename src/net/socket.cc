#include "src/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace pvcdb {
namespace {

bool IsTcpAddress(const std::string& address) {
  return address.find(':') != std::string::npos;
}

// Splits "host:port" at the last ':' (so a future "[::1]:80" keeps working
// for the host part as written).
bool SplitHostPort(const std::string& address, std::string* host,
                   std::string* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 >= address.size()) return false;
  *host = address.substr(0, colon);
  *port = address.substr(colon + 1);
  if (host->empty()) *host = "127.0.0.1";
  return true;
}

bool FillUnixAddr(const std::string& path, sockaddr_un* addr,
                  std::string* error) {
  if (path.size() >= sizeof(addr->sun_path)) {
    *error = "unix socket path too long: " + path;
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size());
  return true;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::SendAll(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t sent = ::send(fd_, p, n, 0);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

IoStatus Socket::RecvAll(void* data, size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    ssize_t got = ::recv(fd_, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (got == 0) return IoStatus::kClosed;
    p += got;
    n -= static_cast<size_t>(got);
  }
  return IoStatus::kOk;
}

ssize_t Socket::SendSome(const void* data, size_t n) {
  while (true) {
    ssize_t sent = ::send(fd_, data, n, 0);
    if (sent >= 0) return sent;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kIoWouldBlock;
    return -1;
  }
}

ssize_t Socket::RecvSome(void* data, size_t n) {
  while (true) {
    ssize_t got = ::recv(fd_, data, n, 0);
    if (got >= 0) return got;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kIoWouldBlock;
    return -1;
  }
}

bool Socket::SetNonBlocking(bool nonblocking) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  return ::fcntl(fd_, F_SETFL, flags) == 0;
}

Listener Listener::Listen(const std::string& address, std::string* error) {
  Listener listener;
  listener.address_ = address;
  if (IsTcpAddress(address)) {
    std::string host, port;
    if (!SplitHostPort(address, &host, &port)) {
      *error = "bad tcp address (want host:port): " + address;
      return listener;
    }
    addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* res = nullptr;
    int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0) {
      *error = std::string("getaddrinfo: ") + gai_strerror(rc);
      return listener;
    }
    int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      ::freeaddrinfo(res);
      return listener;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, res->ai_addr, res->ai_addrlen) != 0) {
      *error = std::string("bind ") + address + ": " + std::strerror(errno);
      ::close(fd);
      ::freeaddrinfo(res);
      return listener;
    }
    ::freeaddrinfo(res);
    if (::listen(fd, SOMAXCONN) != 0) {
      *error = std::string("listen: ") + std::strerror(errno);
      ::close(fd);
      return listener;
    }
    listener.sock_ = Socket(fd);
  } else {
    sockaddr_un addr;
    if (!FillUnixAddr(address, &addr, error)) return listener;
    // A previous server that died without cleanup leaves the socket file
    // behind; bind would fail with EADDRINUSE forever.
    ::unlink(address.c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return listener;
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = std::string("bind ") + address + ": " + std::strerror(errno);
      ::close(fd);
      return listener;
    }
    if (::listen(fd, SOMAXCONN) != 0) {
      *error = std::string("listen: ") + std::strerror(errno);
      ::close(fd);
      return listener;
    }
    listener.sock_ = Socket(fd);
    listener.unix_path_ = address;
  }
  return listener;
}

Socket Listener::Accept() {
  while (true) {
    int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Socket();
  }
}

void Listener::UnlinkSocketFile() {
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Socket ConnectAddress(const std::string& address, std::string* error) {
  if (IsTcpAddress(address)) {
    std::string host, port;
    if (!SplitHostPort(address, &host, &port)) {
      *error = "bad tcp address (want host:port): " + address;
      return Socket();
    }
    addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0) {
      *error = std::string("getaddrinfo: ") + gai_strerror(rc);
      return Socket();
    }
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      int crc;
      do {
        crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
      } while (crc != 0 && errno == EINTR);
      if (crc == 0) break;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
      *error = std::string("connect ") + address + ": " + std::strerror(errno);
      return Socket();
    }
    // Request/response frames are small; Nagle only adds latency here.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
  sockaddr_un addr;
  if (!FillUnixAddr(address, &addr, error)) return Socket();
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return Socket();
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    *error = std::string("connect ") + address + ": " + std::strerror(errno);
    ::close(fd);
    return Socket();
  }
  return Socket(fd);
}

Socket ConnectWithRetry(const std::string& address, int attempts,
                        std::string* error) {
  for (int i = 0; i < attempts; ++i) {
    Socket sock = ConnectAddress(address, error);
    if (sock.valid()) return sock;
    ::usleep(20 * 1000);
  }
  return Socket();
}

bool MakeSocketPair(Socket* parent_end, Socket* child_end) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  *parent_end = Socket(fds[0]);
  *child_end = Socket(fds[1]);
  return true;
}

void IgnoreSigPipe() { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace pvcdb
