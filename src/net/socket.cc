#include "src/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <climits>
#include <cstring>

#include "src/util/metrics.h"

namespace pvcdb {
namespace {

bool IsTcpAddress(const std::string& address) {
  return address.find(':') != std::string::npos;
}

uint64_t MonotonicMillis() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000;
}

// Waits for `events` on `fd` until the absolute monotonic `deadline`:
// 1 ready, 0 deadline expired, -1 poll error. POLLERR/POLLHUP count as
// ready — the following syscall surfaces the actual error/EOF.
int WaitReadyUntil(int fd, short events, uint64_t deadline) {
  while (true) {
    uint64_t now = MonotonicMillis();
    if (now >= deadline) return 0;
    uint64_t remaining = deadline - now;
    if (remaining > static_cast<uint64_t>(INT_MAX)) remaining = INT_MAX;
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (rc > 0) return 1;
    if (rc == 0) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

// Splits "host:port" at the last ':' (so a future "[::1]:80" keeps working
// for the host part as written).
bool SplitHostPort(const std::string& address, std::string* host,
                   std::string* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 >= address.size()) return false;
  *host = address.substr(0, colon);
  *port = address.substr(colon + 1);
  if (host->empty()) *host = "127.0.0.1";
  return true;
}

bool FillUnixAddr(const std::string& path, sockaddr_un* addr,
                  std::string* error) {
  if (path.size() >= sizeof(addr->sun_path)) {
    *error = "unix socket path too long: " + path;
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size());
  return true;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::SendAll(const void* data, size_t n) {
  return SendAllDeadline(data, n, kNoDeadline) == IoStatus::kOk;
}

IoStatus Socket::SendAllDeadline(const void* data, size_t n,
                                 int deadline_ms) {
  const uint64_t deadline =
      deadline_ms < 0 ? 0 : MonotonicMillis() + static_cast<uint64_t>(deadline_ms);
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    if (deadline_ms >= 0) {
      int ready = WaitReadyUntil(fd_, POLLOUT, deadline);
      if (ready == 0) return IoStatus::kTimeout;
      if (ready < 0) return IoStatus::kError;
    }
    // MSG_NOSIGNAL: a send to a dead peer must surface as kError, never as
    // a process-killing SIGPIPE -- the fault plane turns it into a down
    // worker. (IgnoreSigPipe() still covers non-socket write paths.)
    ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      // Poll said ready but the buffer filled again (or the socket is
      // non-blocking): spend the deadline waiting, not spinning.
      if (deadline_ms >= 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        continue;
      }
      return IoStatus::kError;
    }
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return IoStatus::kOk;
}

IoStatus Socket::RecvAll(void* data, size_t n, int deadline_ms) {
  const uint64_t deadline =
      deadline_ms < 0 ? 0 : MonotonicMillis() + static_cast<uint64_t>(deadline_ms);
  char* p = static_cast<char*>(data);
  while (n > 0) {
    if (deadline_ms >= 0) {
      int ready = WaitReadyUntil(fd_, POLLIN, deadline);
      if (ready == 0) return IoStatus::kTimeout;
      if (ready < 0) return IoStatus::kError;
    }
    ssize_t got = ::recv(fd_, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (deadline_ms >= 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        continue;
      }
      return IoStatus::kError;
    }
    if (got == 0) return IoStatus::kClosed;
    p += got;
    n -= static_cast<size_t>(got);
  }
  return IoStatus::kOk;
}

ssize_t Socket::SendSome(const void* data, size_t n) {
  while (true) {
    ssize_t sent = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (sent >= 0) return sent;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kIoWouldBlock;
    return -1;
  }
}

ssize_t Socket::RecvSome(void* data, size_t n) {
  while (true) {
    ssize_t got = ::recv(fd_, data, n, 0);
    if (got >= 0) return got;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kIoWouldBlock;
    return -1;
  }
}

ssize_t Socket::RecvSomeDeadline(void* data, size_t n, int deadline_ms) {
  const uint64_t deadline =
      deadline_ms < 0 ? 0 : MonotonicMillis() + static_cast<uint64_t>(deadline_ms);
  while (true) {
    if (deadline_ms >= 0) {
      int ready = WaitReadyUntil(fd_, POLLIN, deadline);
      if (ready == 0) return kIoTimeout;
      if (ready < 0) return -1;
    }
    ssize_t got = RecvSome(data, n);
    if (got == kIoWouldBlock) {
      // Poll raced another reader or reported a spurious wakeup; if there
      // is no deadline, kIoWouldBlock is the answer.
      if (deadline_ms < 0) return kIoWouldBlock;
      continue;
    }
    return got;
  }
}

bool Socket::SetNonBlocking(bool nonblocking) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  return ::fcntl(fd_, F_SETFL, flags) == 0;
}

Listener Listener::Listen(const std::string& address, std::string* error) {
  Listener listener;
  listener.address_ = address;
  if (IsTcpAddress(address)) {
    std::string host, port;
    if (!SplitHostPort(address, &host, &port)) {
      *error = "bad tcp address (want host:port): " + address;
      return listener;
    }
    addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* res = nullptr;
    int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0) {
      *error = std::string("getaddrinfo: ") + gai_strerror(rc);
      return listener;
    }
    int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      ::freeaddrinfo(res);
      return listener;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, res->ai_addr, res->ai_addrlen) != 0) {
      *error = std::string("bind ") + address + ": " + std::strerror(errno);
      ::close(fd);
      ::freeaddrinfo(res);
      return listener;
    }
    ::freeaddrinfo(res);
    if (::listen(fd, SOMAXCONN) != 0) {
      *error = std::string("listen: ") + std::strerror(errno);
      ::close(fd);
      return listener;
    }
    listener.sock_ = Socket(fd);
  } else {
    sockaddr_un addr;
    if (!FillUnixAddr(address, &addr, error)) return listener;
    // A previous server that died without cleanup leaves the socket file
    // behind; bind would fail with EADDRINUSE forever.
    ::unlink(address.c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return listener;
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = std::string("bind ") + address + ": " + std::strerror(errno);
      ::close(fd);
      return listener;
    }
    if (::listen(fd, SOMAXCONN) != 0) {
      *error = std::string("listen: ") + std::strerror(errno);
      ::close(fd);
      return listener;
    }
    listener.sock_ = Socket(fd);
    listener.unix_path_ = address;
  }
  return listener;
}

Socket Listener::Accept() {
  while (true) {
    int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Socket();
  }
}

void Listener::UnlinkSocketFile() {
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

namespace {

// connect(2) on `fd` bounded by `deadline_ms` via the non-blocking
// connect + poll(POLLOUT) + SO_ERROR dance. 0 on success; -1 with errno
// set on failure (ETIMEDOUT when the deadline expired). Restores the
// blocking flag on success.
int ConnectFdDeadline(int fd, const sockaddr* addr, socklen_t len,
                      int deadline_ms) {
  if (deadline_ms < 0) {
    int rc;
    do {
      rc = ::connect(fd, addr, len);
    } while (rc != 0 && errno == EINTR);
    return rc;
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) return -1;
  int rc;
  do {
    rc = ::connect(fd, addr, len);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) return -1;
    uint64_t deadline = MonotonicMillis() + static_cast<uint64_t>(deadline_ms);
    int ready = WaitReadyUntil(fd, POLLOUT, deadline);
    if (ready == 0) {
      errno = ETIMEDOUT;
      return -1;
    }
    if (ready < 0) return -1;
    int soerr = 0;
    socklen_t soerr_len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len) != 0) {
      return -1;
    }
    if (soerr != 0) {
      errno = soerr;
      return -1;
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) return -1;
  return 0;
}

}  // namespace

Socket ConnectAddress(const std::string& address, std::string* error,
                      int deadline_ms) {
  if (IsTcpAddress(address)) {
    std::string host, port;
    if (!SplitHostPort(address, &host, &port)) {
      *error = "bad tcp address (want host:port): " + address;
      return Socket();
    }
    addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0) {
      *error = std::string("getaddrinfo: ") + gai_strerror(rc);
      return Socket();
    }
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      if (ConnectFdDeadline(fd, ai->ai_addr, ai->ai_addrlen, deadline_ms) ==
          0) {
        break;
      }
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
      *error = std::string("connect ") + address + ": " + std::strerror(errno);
      return Socket();
    }
    // Request/response frames are small; Nagle only adds latency here.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
  sockaddr_un addr;
  if (!FillUnixAddr(address, &addr, error)) return Socket();
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return Socket();
  }
  if (ConnectFdDeadline(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                        deadline_ms) != 0) {
    *error = std::string("connect ") + address + ": " + std::strerror(errno);
    ::close(fd);
    return Socket();
  }
  return Socket(fd);
}

Socket ConnectWithRetry(const std::string& address, int attempts,
                        std::string* error, int deadline_ms,
                        const BackoffPolicy& policy, Clock* clock) {
  if (clock == nullptr) clock = Clock::Real();
  ExponentialBackoff backoff(policy);
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) {
      PVCDB_COUNTER_ADD("net.retries", 1);
      clock->SleepMillis(backoff.NextDelayMs());
    }
    Socket sock = ConnectAddress(address, error, deadline_ms);
    if (sock.valid()) return sock;
  }
  return Socket();
}

bool MakeSocketPair(Socket* parent_end, Socket* child_end) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  *parent_end = Socket(fds[0]);
  *child_end = Socket(fds[1]);
  return true;
}

void IgnoreSigPipe() { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace pvcdb
