// Typed messages of the pvcdb serving wire protocol, carried inside the
// frames of src/net/frame.h. docs/SERVING.md is the narrative spec; this
// header is the authoritative field list.
//
// Conversation shape (coordinator ↔ worker):
//   1. On connect the coordinator sends kHello {version, semiring,
//      shard_index, num_shards}; the worker validates the protocol version
//      and replies kHelloAck. A version mismatch is a kError reply and the
//      connection is dropped — there is no negotiation, matching the WAL's
//      magic-string versioning rule.
//   2. Variable-table sync: kSyncVars ships a contiguous run of variable
//      definitions starting at `first_id`. Variables are append-only and
//      globally scoped (the in-process ShardedDatabase shares one
//      VariableTable; out of process every worker replays the same Add
//      order), so ids line up by construction and the worker checks
//      `first_id == variables().size()` before applying.
//   3. Data plane: kLoadPartition / kAppendRow / kDeleteRow mirror the
//      in-process partition hand-off and the IVM delta stream; kEvalChain /
//      kTableProbs / kViewProbs are the scatter half of scatter-gather and
//      return kChainResult / kProbsResult with per-global-row payloads the
//      coordinator merges by global row order.
//
// Every request either succeeds with its typed reply or fails with kError
// {text}; a worker never crashes the connection on a malformed payload
// (decode failures become kError, CRC failures already killed the frame).
//
// Client ↔ front-end traffic uses the same framing with exactly two kinds:
// kClientCommand carries one shell command line, kClientReply carries the
// full rendered reply text (status + the same output the in-process shell
// would print).

#ifndef PVCDB_NET_PROTOCOL_H_
#define PVCDB_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/algebra/semiring.h"
#include "src/prob/distribution.h"
#include "src/prob/variable.h"
#include "src/query/ast.h"
#include "src/table/cell.h"
#include "src/table/schema.h"
#include "src/util/metrics.h"

namespace pvcdb {

/// Bumped on any incompatible change to framing or message payloads.
/// Version 2 added the durability plane: kSetOptions, kReplayTail /
/// kTailInfo, kShipWal and kReset (WAL-shipping resync; docs/SERVING.md).
/// Version 3 added the observability plane: kStatsRequest / kStatsReply
/// (the coordinator aggregating worker-side metrics registries).
/// Version 4 made heartbeats meaningful: kPing carries PingMsg{nonce} and
/// kPong replies PongMsg{nonce, lsn, chain}, piggybacking the worker's
/// durability position so every heartbeat doubles as a (lsn, chain) probe
/// (the coordinator's health cycle and its exactly-once mutation
/// resolution both ride on it).
constexpr uint32_t kProtocolVersion = 4;

/// Frame kind bytes. Requests are < 64, replies 64–127, client traffic
/// >= 128 — the ranges make a reply-where-request-expected bug an
/// immediate protocol error instead of a misparse.
enum class MsgKind : uint8_t {
  // Coordinator → worker requests.
  kHello = 1,
  kSyncVars = 2,
  kUpdateVar = 3,
  kLoadPartition = 4,
  kAppendRow = 5,
  kDeleteRow = 6,
  kEvalChain = 7,
  kTableProbs = 8,
  kRegisterChainView = 9,
  kDropChainView = 10,
  kViewProbs = 11,
  kPing = 12,
  kShutdown = 13,
  kViewInfo = 14,
  kSetOptions = 15,
  kReplayTail = 16,
  kShipWal = 17,
  kReset = 18,
  kStatsRequest = 19,
  // Worker → coordinator replies.
  kHelloAck = 64,
  kOk = 65,
  kError = 66,
  kChainResult = 67,
  kProbsResult = 68,
  kPong = 69,
  kViewInfoResult = 70,
  kTailInfo = 71,
  kStatsReply = 72,
  // Client ↔ front-end server.
  kClientCommand = 128,
  kClientReply = 129,
};

// ---------------------------------------------------------------------------
// Session setup.
// ---------------------------------------------------------------------------

/// First frame on every coordinator → worker connection.
struct HelloMsg {
  uint32_t version = kProtocolVersion;
  SemiringKind semiring = SemiringKind::kBool;
  uint32_t shard_index = 0;
  uint32_t num_shards = 1;

  std::string Encode() const;
  static bool Decode(const std::string& payload, HelloMsg* out);
};

/// One variable definition in a kSyncVars run.
struct VarSyncEntry {
  std::string name;
  Distribution distribution;
};

/// Ships variables [first_id, first_id + entries.size()) in Add order.
struct SyncVarsMsg {
  VarId first_id = 0;
  std::vector<VarSyncEntry> entries;

  std::string Encode() const;
  static bool Decode(const std::string& payload, SyncVarsMsg* out);
};

/// Marginal update for one existing variable (shell `setprob`).
struct UpdateVarMsg {
  VarId var = 0;
  double probability = 0.0;

  std::string Encode() const;
  static bool Decode(const std::string& payload, UpdateVarMsg* out);
};

// ---------------------------------------------------------------------------
// Data plane: partitions and deltas.
// ---------------------------------------------------------------------------

/// Hands a worker its partition of one table: base rows, each annotated by
/// one variable, plus the global row id (position in the unsharded table)
/// that drives merge order and provenance.
struct LoadPartitionMsg {
  std::string table;
  std::string key_column;
  Schema schema;
  std::vector<std::vector<Cell>> rows;
  std::vector<VarId> vars;
  std::vector<uint64_t> global_rows;

  std::string Encode() const;
  static bool Decode(const std::string& payload, LoadPartitionMsg* out);
};

/// One inserted row routed to its owning worker (the IVM insert delta).
struct AppendRowMsg {
  std::string table;
  std::vector<Cell> cells;
  VarId var = 0;
  uint64_t global_row = 0;

  std::string Encode() const;
  static bool Decode(const std::string& payload, AppendRowMsg* out);
};

/// Broadcast on every delete: the owning worker drops its local row
/// (has_local_row set), and *every* worker shifts global row ids above
/// `global_row` down by one so provenance stays aligned with the
/// coordinator's unsharded numbering.
struct DeleteRowMsg {
  std::string table;
  bool has_local_row = false;
  uint64_t local_row = 0;
  uint64_t global_row = 0;

  std::string Encode() const;
  static bool Decode(const std::string& payload, DeleteRowMsg* out);
};

// ---------------------------------------------------------------------------
// Scatter requests and gather replies.
// ---------------------------------------------------------------------------

/// Evaluates a distributable Select/Rename chain over `table`'s partition.
/// The query is serialized with src/query/serialize.h; `want_distributions`
/// additionally computes each surviving row's full marginal.
struct EvalChainMsg {
  std::string table;
  QueryPtr query;
  bool want_distributions = false;

  std::string Encode() const;
  static bool Decode(const std::string& payload, EvalChainMsg* out);
};

/// Asks for P / full marginals of every row in the worker's partition of
/// `table` (batch tuple confidence, the gather side of TupleProbabilities).
struct TableProbsMsg {
  std::string table;
  bool want_distributions = false;

  std::string Encode() const;
  static bool Decode(const std::string& payload, TableProbsMsg* out);
};

/// Registers a worker-maintained chain view over `table`'s partition; the
/// worker keeps its part materialized and serves kViewProbs from its
/// per-shard step-two cache, mirroring in-process ShardedView.
struct RegisterChainViewMsg {
  std::string name;
  std::string table;
  QueryPtr query;

  std::string Encode() const;
  static bool Decode(const std::string& payload, RegisterChainViewMsg* out);
};

/// A request identified only by a name: kDropChainView and kViewProbs
/// (view name), kTableProbs uses its own struct above.
struct NameMsg {
  std::string name;

  std::string Encode() const;
  static bool Decode(const std::string& payload, NameMsg* out);
};

/// One surviving row of a distributed chain evaluation.
struct ChainRow {
  uint64_t global_row = 0;   ///< Provenance: driving row in global order.
  std::vector<Cell> cells;   ///< Projected cells (rowid column stripped).
  VarId var = 0;             ///< The row's annotation variable.
  double probability = 0.0;
  Distribution distribution;  ///< Empty unless want_distributions.
};

/// Reply to kEvalChain.
struct ChainResultMsg {
  Schema schema;
  std::vector<ChainRow> rows;

  std::string Encode() const;
  static bool Decode(const std::string& payload, ChainResultMsg* out);
};

/// One row's confidence in a kProbsResult.
struct ProbRow {
  uint64_t global_row = 0;
  double probability = 0.0;
  Distribution distribution;  ///< Empty unless want_distributions.
};

/// Reply to kTableProbs.
struct ProbsResultMsg {
  std::vector<ProbRow> rows;

  std::string Encode() const;
  static bool Decode(const std::string& payload, ProbsResultMsg* out);
};

/// Reply to kViewInfo (the `views` diagnostics line).
struct ViewInfoMsg {
  uint64_t rows = 0;
  uint64_t cache_entries = 0;

  std::string Encode() const;
  static bool Decode(const std::string& payload, ViewInfoMsg* out);
};

// ---------------------------------------------------------------------------
// Durability plane: per-worker evaluation options and WAL-shipping resync.
// ---------------------------------------------------------------------------

/// kSetOptions: mirrors the coordinator's intra-command parallelism knobs
/// onto the worker (shell `threads` / `intratree`). Bit-identity is by
/// construction — parallel passes produce identical bytes — so this is
/// never WAL-logged or replayed; the coordinator re-sends it on respawn.
struct EvalOptionsMsg {
  uint32_t num_threads = 1;
  uint32_t intra_tree_threads = 1;

  std::string Encode() const;
  static bool Decode(const std::string& payload, EvalOptionsMsg* out);
};

/// kReplayTail: asks a worker where its applied mutation stream ends. The
/// coordinator compares the reply (kTailInfo) against its in-memory
/// per-shard log; `base_lsn` is the first entry the coordinator can still
/// ship (older entries may have been dropped to bound memory).
struct ReplayTailMsg {
  uint64_t base_lsn = 0;

  std::string Encode() const;
  static bool Decode(const std::string& payload, ReplayTailMsg* out);
};

/// kTailInfo reply: the worker has applied mutations [0, lsn); `chain` is
/// the running CRC32C chain over every applied entry (kind byte + payload
/// digest), so a matching (lsn, chain) pair proves the worker's state is a
/// prefix of the coordinator's log and a tail replay suffices.
struct TailInfoMsg {
  uint64_t lsn = 0;
  uint32_t chain = 0;

  std::string Encode() const;
  static bool Decode(const std::string& payload, TailInfoMsg* out);
};

/// One logged mutation inside a kShipWal batch: the kind byte and the
/// exact payload bytes of the original request frame.
struct WalEntry {
  uint8_t kind = 0;
  std::string payload;
};

/// kShipWal: replays a contiguous run of logged mutations starting at
/// `first_lsn` (which must equal the worker's current lsn). The worker
/// applies each entry through the normal request dispatch and replies
/// kOk{new_lsn}; an lsn mismatch or a failing entry is a kError and the
/// coordinator falls back to kReset + full resync.
struct ShipWalMsg {
  uint64_t first_lsn = 0;
  std::vector<WalEntry> entries;

  std::string Encode() const;
  static bool Decode(const std::string& payload, ShipWalMsg* out);
};

// ---------------------------------------------------------------------------
// Health plane: heartbeats that double as durability-position probes.
// ---------------------------------------------------------------------------

/// kPing: one heartbeat. `nonce` is echoed back verbatim so a reply can be
/// matched to its request (a mismatched nonce means the one-request/
/// one-reply alignment was lost and the connection must be dropped). An
/// empty kPing payload is tolerated and treated as nonce 0, so a bare
/// liveness probe stays cheap.
struct PingMsg {
  uint64_t nonce = 0;

  std::string Encode() const;
  static bool Decode(const std::string& payload, PingMsg* out);
};

/// kPong reply: echoes the nonce and piggybacks the worker's applied
/// (lsn, chain) position — the same pair kTailInfo reports — so every
/// heartbeat is also a probe of how far the worker's mutation stream got.
/// Pings are pure observation: never WAL-logged, never advancing the
/// position they report.
struct PongMsg {
  uint64_t nonce = 0;
  uint64_t lsn = 0;
  uint32_t chain = 0;

  std::string Encode() const;
  static bool Decode(const std::string& payload, PongMsg* out);
};

// ---------------------------------------------------------------------------
// Observability plane.
// ---------------------------------------------------------------------------

/// kStatsReply: the worker's full metrics-registry snapshot (counters,
/// gauges, histograms). The request (kStatsRequest) has an empty payload.
/// Stats reads are pure observation: they are never WAL-logged and do not
/// advance the worker's (lsn, chain) position. The coordinator prefixes
/// each entry with "shard<N>." when aggregating, so per-shard counts stay
/// visible end to end.
struct StatsReplyMsg {
  std::vector<MetricSnapshot> entries;

  std::string Encode() const;
  static bool Decode(const std::string& payload, StatsReplyMsg* out);
};

// ---------------------------------------------------------------------------
// Generic replies and client traffic.
// ---------------------------------------------------------------------------

/// kOk reply; `value` is an optional request-specific scalar (e.g. the
/// worker-side row count after kLoadPartition, used as a sync check).
struct OkMsg {
  uint64_t value = 0;

  std::string Encode() const;
  static bool Decode(const std::string& payload, OkMsg* out);
};

/// kError reply.
struct ErrorMsg {
  std::string text;

  std::string Encode() const;
  static bool Decode(const std::string& payload, ErrorMsg* out);
};

/// kClientReply: `ok` is false when the command failed; `text` is the full
/// rendered output (possibly multi-line, no trailing newline).
struct ClientReplyMsg {
  bool ok = true;
  std::string text;

  std::string Encode() const;
  static bool Decode(const std::string& payload, ClientReplyMsg* out);
};

}  // namespace pvcdb

#endif  // PVCDB_NET_PROTOCOL_H_
