#include "src/net/frame.h"

#include <cstring>

#include "src/util/codec.h"
#include "src/util/crc32c.h"
#include "src/util/metrics.h"

namespace pvcdb {
namespace {

// Little-endian u32 at a raw pointer (the fixed header lives outside the
// checksummed region, so it is read directly rather than via ByteReader).
uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void EncodeFrame(std::string* out, uint8_t kind, const std::string& payload) {
  const uint32_t length = static_cast<uint32_t>(payload.size()) + 1;
  uint32_t crc = Crc32cExtend(0, &kind, 1);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  EncodeU32(out, length);
  EncodeU32(out, crc);
  EncodeU8(out, kind);
  out->append(payload);
}

bool SendFrame(Socket* sock, uint8_t kind, const std::string& payload,
               int deadline_ms) {
  std::string wire;
  wire.reserve(9 + payload.size());
  EncodeFrame(&wire, kind, payload);
  PVCDB_COUNTER_ADD("net.frames_out", 1);
  PVCDB_COUNTER_ADD("net.bytes_out", wire.size());
  IoStatus st = sock->SendAllDeadline(wire.data(), wire.size(), deadline_ms);
  if (st == IoStatus::kTimeout) PVCDB_COUNTER_ADD("net.timeouts", 1);
  return st == IoStatus::kOk;
}

FrameResult RecvFrame(Socket* sock, uint8_t* kind, std::string* payload,
                      int deadline_ms) {
  char header[8];
  IoStatus st = sock->RecvAll(header, sizeof(header), deadline_ms);
  if (st == IoStatus::kClosed) return FrameResult::kClosed;
  if (st == IoStatus::kError) return FrameResult::kIoError;
  if (st == IoStatus::kTimeout) {
    PVCDB_COUNTER_ADD("net.timeouts", 1);
    return FrameResult::kTimeout;
  }
  const uint32_t length = LoadU32(header);
  const uint32_t crc = LoadU32(header + 4);
  if (length == 0 || length > kMaxFrameLength) {
    PVCDB_COUNTER_ADD("net.crc_failures", 1);
    return FrameResult::kCorrupt;
  }
  std::string body(length, '\0');
  st = sock->RecvAll(&body[0], body.size(), deadline_ms);
  if (st == IoStatus::kClosed) return FrameResult::kCorrupt;  // torn frame
  if (st == IoStatus::kError) return FrameResult::kIoError;
  if (st == IoStatus::kTimeout) {
    PVCDB_COUNTER_ADD("net.timeouts", 1);
    return FrameResult::kTimeout;
  }
  if (Crc32c(body) != crc) {
    PVCDB_COUNTER_ADD("net.crc_failures", 1);
    return FrameResult::kCorrupt;
  }
  *kind = static_cast<uint8_t>(body[0]);
  payload->assign(body, 1, body.size() - 1);
  PVCDB_COUNTER_ADD("net.frames_in", 1);
  PVCDB_COUNTER_ADD("net.bytes_in", 8 + body.size());
  return FrameResult::kOk;
}

FrameResult FrameParser::Next(uint8_t* kind, std::string* payload) {
  if (corrupt_) return FrameResult::kCorrupt;
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t avail = buffer_.size() - consumed_;
  if (avail < 8) return FrameResult::kNeedMore;
  const char* base = buffer_.data() + consumed_;
  const uint32_t length = LoadU32(base);
  const uint32_t crc = LoadU32(base + 4);
  if (length == 0 || length > kMaxFrameLength) {
    corrupt_ = true;
    PVCDB_COUNTER_ADD("net.crc_failures", 1);
    return FrameResult::kCorrupt;
  }
  if (avail < 8 + static_cast<size_t>(length)) return FrameResult::kNeedMore;
  const char* body = base + 8;
  if (Crc32c(body, length) != crc) {
    corrupt_ = true;
    PVCDB_COUNTER_ADD("net.crc_failures", 1);
    return FrameResult::kCorrupt;
  }
  *kind = static_cast<uint8_t>(body[0]);
  payload->assign(body + 1, length - 1);
  PVCDB_COUNTER_ADD("net.frames_in", 1);
  PVCDB_COUNTER_ADD("net.bytes_in", 8 + static_cast<size_t>(length));
  consumed_ += 8 + static_cast<size_t>(length);
  return FrameResult::kOk;
}

}  // namespace pvcdb
