#include "src/engine/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "src/dtree/joint.h"
#include "src/dtree/probability.h"
#include "src/util/check.h"

namespace pvcdb {

namespace {

double NonZeroProbability(ExprPool* pool, const VariableTable& variables,
                          ExprId e, const CompileOptions& options) {
  DTree tree = CompileToDTree(pool, &variables, e, options);
  return ProbabilityNonZero(tree, variables, pool->semiring());
}

}  // namespace

std::vector<VariableInfluence> SensitivityAnalysis(
    ExprPool* pool, const VariableTable& variables, ExprId e,
    CompileOptions options) {
  PVC_CHECK(pool != nullptr);
  PVC_CHECK_MSG(pool->node(e).sort == ExprSort::kSemiring,
                "sensitivity analysis applies to annotations (semiring "
                "expressions)");
  std::vector<VariableInfluence> result;
  // Copy the variable set: the substitutions below grow the pool, which
  // invalidates inline VarsOf spans (see src/expr/README.md).
  Span<VarId> vars_span = pool->VarsOf(e);
  std::vector<VarId> vars(vars_span.begin(), vars_span.end());
  for (VarId x : vars) {
    ExprId with = pool->Substitute(e, x, pool->semiring().One());
    ExprId without = pool->Substitute(e, x, pool->semiring().Zero());
    double p_with = NonZeroProbability(pool, variables, with, options);
    double p_without = NonZeroProbability(pool, variables, without, options);
    result.push_back({x, p_with - p_without});
  }
  std::sort(result.begin(), result.end(),
            [](const VariableInfluence& a, const VariableInfluence& b) {
              if (std::abs(a.influence) != std::abs(b.influence)) {
                return std::abs(a.influence) > std::abs(b.influence);
              }
              return a.variable < b.variable;
            });
  return result;
}

double ConditionalTupleProbability(ExprPool* pool,
                                   const VariableTable& variables, ExprId phi,
                                   ExprId gamma, CompileOptions options) {
  PVC_CHECK(pool != nullptr);
  JointDistribution joint =
      ComputeJointDistribution(pool, variables, {phi, gamma}, options);
  double p_gamma = 0.0;
  double p_both = 0.0;
  for (const auto& [tuple, p] : joint) {
    if (tuple[1] != 0) {
      p_gamma += p;
      if (tuple[0] != 0) p_both += p;
    }
  }
  if (p_gamma <= 0.0) return 0.0;
  return p_both / p_gamma;
}

}  // namespace pvcdb
