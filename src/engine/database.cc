#include "src/engine/database.h"

#include <utility>

#include "src/util/check.h"
#include "src/util/parallel.h"

namespace pvcdb {

Distribution IsolatedAnnotationDistribution(const ExprPool& source,
                                            const VariableTable& variables,
                                            ExprId annotation,
                                            const CompileOptions& options) {
  ExprPool local(source.semiring().kind());
  ExprId e = source.CloneInto(&local, annotation);
  DTree tree = CompileToDTree(&local, &variables, e, options);
  return ComputeDistribution(tree, variables, local.semiring());
}

Database::Database(SemiringKind semiring)
    : pool_(semiring), variables_(std::make_shared<VariableTable>()) {}

Database::Database(std::shared_ptr<VariableTable> variables,
                   SemiringKind semiring)
    : pool_(semiring), variables_(std::move(variables)) {
  PVC_CHECK(variables_ != nullptr);
}

void Database::AddTable(const std::string& name, PvcTable table) {
  tables_[name] = std::move(table);
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const PvcTable& Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  PVC_CHECK_MSG(it != tables_.end(), "no table named '" << name << "'");
  return it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

void Database::AddTupleIndependentTable(
    const std::string& name, Schema schema,
    std::vector<std::vector<Cell>> rows, std::vector<double> probabilities) {
  PVC_CHECK_MSG(rows.size() == probabilities.size(),
                "one probability per row required");
  PvcTable table{std::move(schema)};
  for (size_t i = 0; i < rows.size(); ++i) {
    VarId x = variables_->AddBernoulli(probabilities[i],
                                       name + "#" + std::to_string(i));
    table.AddRow(std::move(rows[i]), pool_.Var(x));
  }
  AddTable(name, std::move(table));
}

PvcTable Database::Run(const Query& q) {
  QueryEvaluator evaluator(
      &pool_, [this](const std::string& name) -> const PvcTable& {
        return table(name);
      },
      EvalMode::kProbabilistic, eval_options_);
  return evaluator.Eval(q);
}

PvcTable Database::RunDeterministic(const Query& q) {
  QueryEvaluator evaluator(
      &pool_, [this](const std::string& name) -> const PvcTable& {
        return table(name);
      },
      EvalMode::kDeterministic, eval_options_);
  return evaluator.Eval(q);
}

Distribution Database::DistributionOfExpr(ExprId e) {
  DTree tree = CompileToDTree(&pool_, variables_.get(), e, compile_options_);
  return ComputeDistribution(tree, *variables_, pool_.semiring());
}

double Database::TupleProbability(const Row& row) {
  return NonZeroMass(DistributionOfExpr(row.annotation));
}

Distribution Database::AnnotationDistribution(const Row& row) {
  return DistributionOfExpr(row.annotation);
}

std::vector<Distribution> Database::AnnotationDistributions(
    const PvcTable& table) {
  std::vector<Distribution> out(table.NumRows());
  // Each row clones its annotation into a task-private pool, so the shared
  // pool is only read and the per-row pipeline is identical on the serial
  // and the threaded path.
  ParallelFor(eval_options_.num_threads, table.NumRows(), [&](size_t i) {
    out[i] = IsolatedAnnotationDistribution(pool_, *variables_,
                                            table.row(i).annotation,
                                            compile_options_);
  });
  return out;
}

std::vector<double> Database::TupleProbabilities(const PvcTable& table) {
  std::vector<Distribution> distributions = AnnotationDistributions(table);
  std::vector<double> out;
  out.reserve(distributions.size());
  for (const Distribution& d : distributions) {
    out.push_back(NonZeroMass(d));
  }
  return out;
}

std::vector<ProbabilityBounds> Database::ApproximateTupleProbabilities(
    const PvcTable& table, ApproximateOptions options) {
  std::vector<ExprId> annotations;
  annotations.reserve(table.NumRows());
  for (const Row& row : table.rows()) annotations.push_back(row.annotation);
  return ApproximateBatch(pool_, *variables_, annotations, options,
                          eval_options_.num_threads);
}

Distribution Database::AggregateDistribution(const PvcTable& table,
                                             size_t row_index,
                                             const std::string& column) {
  const Cell& cell = table.CellAt(row_index, column);
  PVC_CHECK_MSG(cell.type() == CellType::kAggExpr,
                "'" << column << "' is not an aggregation column");
  return DistributionOfExpr(cell.AsAgg());
}

Distribution Database::ConditionalAggregateDistribution(
    const PvcTable& table, size_t row_index, const std::string& column) {
  const Cell& cell = table.CellAt(row_index, column);
  PVC_CHECK_MSG(cell.type() == CellType::kAggExpr,
                "'" << column << "' is not an aggregation column");
  return pvcdb::ConditionalAggregateDistribution(
      &pool_, *variables_, cell.AsAgg(), table.row(row_index).annotation,
      compile_options_);
}

JointDistribution Database::RowJointDistribution(const PvcTable& table,
                                                 size_t row_index) {
  const Row& row = table.row(row_index);
  std::vector<ExprId> exprs;
  for (size_t i = 0; i < table.schema().NumColumns(); ++i) {
    if (table.schema().column(i).type == CellType::kAggExpr) {
      exprs.push_back(row.cells[i].AsAgg());
    }
  }
  exprs.push_back(row.annotation);
  return ComputeJointDistribution(&pool_, *variables_, exprs,
                                  compile_options_);
}

}  // namespace pvcdb
