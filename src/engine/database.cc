#include "src/engine/database.h"

#include <utility>

#include "src/engine/delta.h"
#include "src/engine/wal.h"
#include "src/util/check.h"
#include "src/util/metrics.h"
#include "src/util/parallel.h"

namespace pvcdb {

Distribution IsolatedAnnotationDistribution(const ExprPool& source,
                                            const VariableTable& variables,
                                            ExprId annotation,
                                            const CompileOptions& options,
                                            int intra_tree_threads) {
  // One pipeline for every facade and the step II cache alike (delta.h).
  return IsolatedCompileAndDistribution(source, variables, annotation,
                                        options, intra_tree_threads)
      .distribution;
}

Database::Database(SemiringKind semiring)
    : pool_(semiring), variables_(std::make_shared<VariableTable>()) {}

Database::Database(std::shared_ptr<VariableTable> variables,
                   SemiringKind semiring)
    : pool_(semiring), variables_(std::move(variables)) {
  PVC_CHECK(variables_ != nullptr);
}

void Database::AddTable(const std::string& name, PvcTable table) {
  tables_[name] = std::move(table);
  views_.OnTableReplaced(name);
}

PvcTable& Database::MutableTable(const std::string& name) {
  auto it = tables_.find(name);
  PVC_CHECK_MSG(it != tables_.end(), "no table named '" << name << "'");
  return it->second;
}

ViewContext Database::Context() {
  return ViewContext{
      &pool_,
      [this](const std::string& name) -> const PvcTable& {
        return table(name);
      },
      eval_options_};
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const PvcTable& Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  PVC_CHECK_MSG(it != tables_.end(), "no table named '" << name << "'");
  return it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

void Database::AddTupleIndependentTable(
    const std::string& name, Schema schema,
    std::vector<std::vector<Cell>> rows, std::vector<double> probabilities) {
  PVC_CHECK_MSG(rows.size() == probabilities.size(),
                "one probability per row required");
  // Build the record before the rows are consumed: the load is one atomic
  // mutation -- the fresh variables in creation order plus the table.
  WalRecord record;
  if (wal_ != nullptr) {
    VarId base = static_cast<VarId>(variables_->size());
    std::vector<VarId> vars;
    vars.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      record.ops.push_back(
          WalOp::RegisterVariable(name + "#" + std::to_string(i),
                                  Distribution::Bernoulli(probabilities[i])));
      vars.push_back(base + static_cast<VarId>(i));
    }
    record.ops.push_back(
        WalOp::CreateTable(name, schema, "", rows, std::move(vars)));
  }
  PvcTable table{std::move(schema)};
  for (size_t i = 0; i < rows.size(); ++i) {
    VarId x = variables_->AddBernoulli(probabilities[i],
                                       name + "#" + std::to_string(i));
    table.AddRow(std::move(rows[i]), pool_.Var(x));
  }
  AddTable(name, std::move(table));
  if (wal_ != nullptr) LogWalRecord(wal_, record);
}

void Database::AddVariableAnnotatedTable(const std::string& name,
                                         Schema schema,
                                         std::vector<std::vector<Cell>> rows,
                                         const std::vector<VarId>& vars) {
  PVC_CHECK_MSG(rows.size() == vars.size(), "one variable per row required");
  WalRecord record;
  if (wal_ != nullptr) {
    record.ops.push_back(WalOp::CreateTable(name, schema, "", rows, vars));
  }
  PvcTable table{std::move(schema)};
  for (size_t i = 0; i < rows.size(); ++i) {
    PVC_CHECK_MSG(vars[i] < variables_->size(),
                  "unknown variable id " << vars[i]);
    table.AddRow(std::move(rows[i]), pool_.Var(vars[i]));
  }
  AddTable(name, std::move(table));
  if (wal_ != nullptr) LogWalRecord(wal_, record);
}

namespace {

void CheckRowShape(const Schema& schema, const std::vector<Cell>& cells) {
  PVC_CHECK_MSG(cells.size() == schema.NumColumns(),
                "row arity " << cells.size() << " does not match schema "
                             << schema.NumColumns());
  for (size_t i = 0; i < cells.size(); ++i) {
    PVC_CHECK_MSG(cells[i].type() == schema.column(i).type,
                  "cell " << i << " (" << cells[i].ToString()
                          << ") does not match column '"
                          << schema.column(i).name << "'");
  }
}

}  // namespace

size_t Database::AppendRowToTable(const std::string& table,
                                  std::vector<Cell> cells,
                                  ExprId annotation) {
  PvcTable& t = MutableTable(table);
  CheckRowShape(t.schema(), cells);
  size_t index = t.NumRows();
  TableDelta delta;
  delta.kind = DeltaKind::kInsert;
  delta.table = table;
  delta.row_index = index;
  delta.cells = cells;
  delta.annotation = annotation;
  t.AddRow(std::move(cells), annotation);
  views_.Apply(delta, Context());
  return index;
}

size_t Database::InsertTuple(const std::string& table,
                             std::vector<Cell> cells, double p) {
  // Validate the row before touching the (possibly shared) variable
  // registry: a failed insert must not leave an orphaned variable behind,
  // or the registry would diverge from a from-scratch rebuild of the
  // final state.
  PvcTable& t = MutableTable(table);
  CheckRowShape(t.schema(), cells);
  // One atomic record: the fresh Bernoulli variable plus the row insert
  // that interns it. A crash tears the whole mutation or none of it.
  WalRecord record;
  if (wal_ != nullptr) {
    record.ops.push_back(
        WalOp::RegisterVariable(table + "#" + std::to_string(t.NumRows()),
                                Distribution::Bernoulli(p)));
    record.ops.push_back(WalOp::InsertRow(
        table, cells, static_cast<VarId>(variables_->size())));
  }
  VarId x = variables_->AddBernoulli(
      p, table + "#" + std::to_string(t.NumRows()));
  size_t index = AppendRowToTable(table, std::move(cells), pool_.Var(x));
  if (wal_ != nullptr) LogWalRecord(wal_, record);
  return index;
}

void Database::DeleteRowAt(const std::string& table, size_t row_index) {
  PvcTable& t = MutableTable(table);
  PVC_CHECK_MSG(row_index < t.NumRows(),
                "row index " << row_index << " out of range");
  TableDelta delta;
  delta.kind = DeltaKind::kDelete;
  delta.table = table;
  delta.row_index = row_index;
  delta.cells = t.row(row_index).cells;
  t.DeleteRow(row_index);
  views_.Apply(delta, Context());
  if (wal_ != nullptr) {
    WalRecord record;
    record.ops.push_back(WalOp::DeleteRow(table, row_index));
    LogWalRecord(wal_, record);
  }
}

size_t Database::DeleteTuple(const std::string& table, const Cell& key) {
  return DeleteRowsMatchingKey(
      MutableTable(table), key,
      [&](size_t index) { DeleteRowAt(table, index); });
}

void Database::UpdateProbability(VarId var, double p) {
  Distribution next = Distribution::Bernoulli(p);
  bool same_support = SameSupport(variables_->DistributionOf(var), next);
  variables_->SetDistribution(var, std::move(next));
  views_.OnVariableUpdate(var, *variables_, pool_.semiring(), same_support);
  if (wal_ != nullptr) {
    WalRecord record;
    record.ops.push_back(WalOp::UpdateProbability(var, p));
    LogWalRecord(wal_, record);
  }
}

const PvcTable& Database::RegisterView(const std::string& name,
                                       QueryPtr query) {
  // Log only after the registration succeeds: a rejected query (unknown
  // table, bad schema) throws out of Register and must never reach the
  // log, or replay would throw too.
  const PvcTable& result = views_.Register(name, query, Context());
  if (wal_ != nullptr) {
    WalRecord record;
    record.ops.push_back(WalOp::RegisterView(name, std::move(query)));
    LogWalRecord(wal_, record);
  }
  return result;
}

void Database::DropView(const std::string& name) {
  bool existed = views_.Has(name);
  views_.Drop(name);
  if (existed && wal_ != nullptr) {
    WalRecord record;
    record.ops.push_back(WalOp::DropView(name));
    LogWalRecord(wal_, record);
  }
}

const PvcTable& Database::ViewTable(const std::string& name) {
  return views_.Table(name, Context());
}

std::vector<double> Database::ViewProbabilities(const std::string& name) {
  // Refresh a stale view before opening the evaluation scope -- the
  // recompute itself only reads tables, never the variable registry.
  views_.Table(name, Context());
  VariableTable::EvalScope scope(*variables_);
  return views_.Probabilities(name, *variables_, compile_options_, Context());
}

PvcTable Database::Run(const Query& q) {
  PVCDB_SPAN(step1_span, "step1");
  QueryEvaluator evaluator(
      &pool_, [this](const std::string& name) -> const PvcTable& {
        return table(name);
      },
      EvalMode::kProbabilistic, eval_options_);
  return evaluator.Eval(q);
}

PvcTable Database::RunDeterministic(const Query& q) {
  QueryEvaluator evaluator(
      &pool_, [this](const std::string& name) -> const PvcTable& {
        return table(name);
      },
      EvalMode::kDeterministic, eval_options_);
  return evaluator.Eval(q);
}

Distribution Database::DistributionOfExpr(ExprId e) {
  VariableTable::EvalScope scope(*variables_);
  DTree tree = CompileToDTree(&pool_, variables_.get(), e, compile_options_);
  ProbabilityOptions popts;
  popts.num_threads = eval_options_.intra_tree_threads;
  return ComputeDistribution(tree, *variables_, pool_.semiring(), popts);
}

double Database::TupleProbability(const Row& row) {
  return NonZeroMass(DistributionOfExpr(row.annotation));
}

Distribution Database::AnnotationDistribution(const Row& row) {
  return DistributionOfExpr(row.annotation);
}

std::vector<Distribution> Database::AnnotationDistributions(
    const PvcTable& table) {
  VariableTable::EvalScope scope(*variables_);
  std::vector<Distribution> out(table.NumRows());
  // Each row clones its annotation into a task-private pool, so the shared
  // pool is only read and the per-row pipeline is identical on the serial
  // and the threaded path.
  ParallelFor(eval_options_.num_threads, table.NumRows(), [&](size_t i) {
    out[i] = IsolatedAnnotationDistribution(pool_, *variables_,
                                            table.row(i).annotation,
                                            compile_options_,
                                            eval_options_.intra_tree_threads);
  });
  return out;
}

std::vector<double> Database::TupleProbabilities(const PvcTable& table) {
  std::vector<Distribution> distributions = AnnotationDistributions(table);
  std::vector<double> out;
  out.reserve(distributions.size());
  for (const Distribution& d : distributions) {
    out.push_back(NonZeroMass(d));
  }
  return out;
}

std::vector<ProbabilityBounds> Database::ApproximateTupleProbabilities(
    const PvcTable& table, ApproximateOptions options) {
  VariableTable::EvalScope scope(*variables_);
  std::vector<ExprId> annotations;
  annotations.reserve(table.NumRows());
  for (const Row& row : table.rows()) annotations.push_back(row.annotation);
  return ApproximateBatch(pool_, *variables_, annotations, options,
                          eval_options_.num_threads);
}

Distribution Database::AggregateDistribution(const PvcTable& table,
                                             size_t row_index,
                                             const std::string& column) {
  const Cell& cell = table.CellAt(row_index, column);
  PVC_CHECK_MSG(cell.type() == CellType::kAggExpr,
                "'" << column << "' is not an aggregation column");
  return DistributionOfExpr(cell.AsAgg());
}

Distribution Database::ConditionalAggregateDistribution(
    const PvcTable& table, size_t row_index, const std::string& column) {
  const Cell& cell = table.CellAt(row_index, column);
  PVC_CHECK_MSG(cell.type() == CellType::kAggExpr,
                "'" << column << "' is not an aggregation column");
  VariableTable::EvalScope scope(*variables_);
  return pvcdb::ConditionalAggregateDistribution(
      &pool_, *variables_, cell.AsAgg(), table.row(row_index).annotation,
      compile_options_);
}

JointDistribution Database::RowJointDistribution(const PvcTable& table,
                                                 size_t row_index) {
  VariableTable::EvalScope scope(*variables_);
  const Row& row = table.row(row_index);
  std::vector<ExprId> exprs;
  for (size_t i = 0; i < table.schema().NumColumns(); ++i) {
    if (table.schema().column(i).type == CellType::kAggExpr) {
      exprs.push_back(row.cells[i].AsAgg());
    }
  }
  exprs.push_back(row.annotation);
  return ComputeJointDistribution(&pool_, *variables_, exprs,
                                  compile_options_);
}

}  // namespace pvcdb
