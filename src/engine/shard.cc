#include "src/engine/shard.h"

#include <algorithm>
#include <utility>

#include "src/engine/wal.h"
#include "src/util/check.h"
#include "src/util/parallel.h"

namespace pvcdb {

const char kShardRowIdColumn[] = "__pvcdb_rowid";

namespace {

/// File-local alias; see the declaration in shard.h.
constexpr const char* kRowIdColumn = kShardRowIdColumn;

/// Detaches the coordinator's WAL writer for the guarded scope. Used where
/// the sharded facade logs a richer record itself (table loads carry the
/// routing key column; view replacement is one logical op, not
/// drop-then-register) and the coordinator's own logging must stay quiet.
class WalDetachGuard {
 public:
  explicit WalDetachGuard(Database* db) : db_(db), wal_(db->wal()) {
    db_->set_wal(nullptr);
  }
  ~WalDetachGuard() { db_->set_wal(wal_); }

  WalWriter* wal() const { return wal_; }

 private:
  Database* db_;
  WalWriter* wal_;
};

}  // namespace

size_t FnvShardRouter::Route(const Cell& key, size_t num_shards) const {
  return static_cast<size_t>(key.StableHash() % num_shards);
}

size_t ModuloShardRouter::Route(const Cell& key, size_t num_shards) const {
  int64_t k = key.AsInt() % static_cast<int64_t>(num_shards);
  if (k < 0) k += static_cast<int64_t>(num_shards);
  return static_cast<size_t>(k);
}

const std::vector<Cell>& ShardedResult::cells(size_t i) const {
  PVC_CHECK_MSG(i < order_.size(), "result row " << i << " out of range");
  const auto& [part, row] = order_[i];
  return parts_[part].row(row).cells;
}

ShardedDatabase::ShardedDatabase(size_t num_shards, SemiringKind semiring,
                                 std::unique_ptr<ShardRouter> router)
    : router_(router != nullptr ? std::move(router)
                                : std::make_unique<FnvShardRouter>()),
      coordinator_(semiring) {
  PVC_CHECK_MSG(num_shards >= 1, "a sharded database needs >= 1 shard");
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Database>(
        coordinator_.shared_variables(), semiring));
  }
}

const Database& ShardedDatabase::shard(size_t s) const {
  PVC_CHECK_MSG(s < shards_.size(), "shard index " << s << " out of range");
  return *shards_[s];
}

void ShardedDatabase::AddTupleIndependentTable(
    const std::string& name, Schema schema,
    std::vector<std::vector<Cell>> rows, std::vector<double> probabilities,
    const std::string& key_column) {
  PVC_CHECK_MSG(schema.NumColumns() > 0, "cannot shard a zero-column table");
  size_t key_index = key_column.empty() ? 0 : schema.IndexOf(key_column);

  // The sharded load logs its own record (it must carry the routing key
  // column), so the coordinator's WAL stays detached for the inner call.
  WalRecord record;
  std::string key_name = schema.column(key_index).name;
  VarId var_base = static_cast<VarId>(variables().size());
  size_t num_rows = rows.size();
  std::vector<VarId> vars;
  vars.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    vars.push_back(var_base + static_cast<VarId>(i));
  }
  if (wal() != nullptr) {
    for (size_t i = 0; i < num_rows; ++i) {
      record.ops.push_back(
          WalOp::RegisterVariable(name + "#" + std::to_string(i),
                                  Distribution::Bernoulli(probabilities[i])));
    }
    record.ops.push_back(
        WalOp::CreateTable(name, schema, key_name, rows, vars));
  }

  {
    // The coordinator performs the exact load an unsharded Database would:
    // Bernoulli variables are created in global row order, so VarIds match
    // the unsharded engine's.
    WalDetachGuard guard(&coordinator_);
    coordinator_.AddTupleIndependentTable(name, std::move(schema),
                                          std::move(rows),
                                          std::move(probabilities));
  }
  PartitionLoadedTable(name, key_index, vars);
  if (wal() != nullptr) LogWalRecord(wal(), record);
}

void ShardedDatabase::AddVariableAnnotatedTable(
    const std::string& name, Schema schema,
    std::vector<std::vector<Cell>> rows, const std::vector<VarId>& vars,
    const std::string& key_column) {
  PVC_CHECK_MSG(schema.NumColumns() > 0, "cannot shard a zero-column table");
  size_t key_index = key_column.empty() ? 0 : schema.IndexOf(key_column);
  WalRecord record;
  if (wal() != nullptr) {
    record.ops.push_back(WalOp::CreateTable(
        name, schema, schema.column(key_index).name, rows, vars));
  }
  {
    WalDetachGuard guard(&coordinator_);
    coordinator_.AddVariableAnnotatedTable(name, std::move(schema),
                                           std::move(rows), vars);
  }
  PartitionLoadedTable(name, key_index, vars);
  if (wal() != nullptr) LogWalRecord(wal(), record);
}

void ShardedDatabase::PartitionLoadedTable(const std::string& name,
                                           size_t key_index,
                                           const std::vector<VarId>& vars) {
  const PvcTable& logical = coordinator_.table(name);
  std::vector<size_t> assignment =
      AssignShards(logical, key_index, [&](const Cell& key) {
        size_t s = router_->Route(key, shards_.size());
        PVC_CHECK_MSG(s < shards_.size(),
                      "router '" << router_->name() << "' returned shard "
                                 << s << " for " << shards_.size()
                                 << " shards");
        return s;
      });

  std::vector<PvcTable> partitions;
  partitions.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    partitions.emplace_back(logical.schema());
  }
  std::vector<std::pair<uint32_t, uint32_t>> placement;
  placement.reserve(logical.NumRows());
  for (size_t i = 0; i < logical.NumRows(); ++i) {
    size_t s = assignment[i];
    placement.emplace_back(static_cast<uint32_t>(s),
                           static_cast<uint32_t>(partitions[s].NumRows()));
    // The shard re-interns the row's variable in its own pool; the VarId --
    // and hence every probability downstream -- is the global one.
    partitions[s].AddRow(logical.row(i).cells,
                         shards_[s]->pool().Var(vars[i]));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->AddTable(name, std::move(partitions[s]));
  }
  placements_[name] = std::move(placement);
  key_columns_[name] = key_index;
  augmented_cache_.erase(name);
  // Re-seed per-shard views of the replaced table (the coordinator's
  // registry invalidates its own views through AddTable).
  for (auto& view : sharded_views_) {
    if (view->driving == name) SeedShardedView(view.get());
  }
}

bool ShardedDatabase::HasTable(const std::string& name) const {
  return coordinator_.HasTable(name);
}

std::vector<std::string> ShardedDatabase::TableNames() const {
  return coordinator_.TableNames();
}

size_t ShardedDatabase::NumRows(const std::string& name) const {
  return coordinator_.table(name).NumRows();
}

std::string ShardedDatabase::KeyColumnName(const std::string& name) const {
  auto it = key_columns_.find(name);
  PVC_CHECK_MSG(it != key_columns_.end(),
                "no sharded table named '" << name << "'");
  return coordinator_.table(name).schema().column(it->second).name;
}

std::vector<size_t> ShardedDatabase::ShardRowCounts(
    const std::string& name) const {
  std::vector<size_t> counts(shards_.size(), 0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    counts[s] = shards_[s]->table(name).NumRows();
  }
  return counts;
}

const std::vector<std::pair<uint32_t, uint32_t>>&
ShardedDatabase::PlacementOf(const std::string& name) const {
  auto it = placements_.find(name);
  PVC_CHECK_MSG(it != placements_.end(),
                "no sharded table named '" << name << "'");
  return it->second;
}

void ShardedDatabase::SyncShardOptions() {
  for (auto& shard : shards_) {
    shard->eval_options() = coordinator_.eval_options();
    shard->compile_options() = coordinator_.compile_options();
  }
}

ShardedResult ShardedDatabase::CoordinatorResult(PvcTable table) const {
  ShardedResult result;
  result.schema_ = table.schema();
  result.order_.reserve(table.NumRows());
  for (size_t i = 0; i < table.NumRows(); ++i) {
    result.order_.emplace_back(0, static_cast<uint32_t>(i));
  }
  result.parts_.push_back(std::move(table));
  result.distributed_ = false;
  return result;
}

ShardedResult ShardedDatabase::Run(const Query& q) {
  SyncShardOptions();
  std::optional<std::string> driving = ShardDrivingTable(q);
  if (driving.has_value() && placements_.count(*driving) > 0 &&
      !coordinator_.table(*driving).schema().Find(kRowIdColumn).has_value() &&
      !QueryMentionsColumn(q, kRowIdColumn)) {
    return RunDistributed(q, *driving);
  }
  // Gather: joins, projections, unions and aggregates merge rows across
  // partitions; the coordinator replays the unsharded engine bit for bit.
  return CoordinatorResult(coordinator_.Run(q));
}

ShardedResult ShardedDatabase::RunDeterministic(const Query& q) {
  return CoordinatorResult(coordinator_.RunDeterministic(q));
}

const std::vector<PvcTable>& ShardedDatabase::AugmentedPartitionsOf(
    const std::string& table) {
  auto it = augmented_cache_.find(table);
  if (it != augmented_cache_.end()) return it->second;
  // Placement is fixed at load time, so the partitions extended with the
  // provenance column are built once per table and reused by every
  // distributed query (invalidated when the table is replaced).
  const std::vector<std::pair<uint32_t, uint32_t>>& placement =
      PlacementOf(table);
  std::vector<std::vector<int64_t>> global_ids(shards_.size());
  for (size_t i = 0; i < placement.size(); ++i) {
    global_ids[placement[i].first].push_back(static_cast<int64_t>(i));
  }
  std::vector<PvcTable> augmented;
  augmented.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const PvcTable& partition = shards_[s]->table(table);
    std::vector<Column> columns = partition.schema().columns();
    columns.push_back({kRowIdColumn, CellType::kInt});
    PvcTable part{Schema(std::move(columns))};
    for (size_t j = 0; j < partition.NumRows(); ++j) {
      std::vector<Cell> cells = partition.row(j).cells;
      cells.emplace_back(global_ids[s][j]);
      part.AddRow(std::move(cells), partition.row(j).annotation);
    }
    augmented.push_back(std::move(part));
  }
  return augmented_cache_.emplace(table, std::move(augmented)).first->second;
}

ShardedDatabase::DistributedParts ShardedDatabase::EvalDistributed(
    const Query& q, const std::string& table) {
  // Scatter: each shard evaluates the chain against its partition extended
  // with the hidden provenance column, interning only into its own pool.
  const std::vector<PvcTable>& augmented = AugmentedPartitionsOf(table);
  std::vector<PvcTable> results(shards_.size());
  const EvalOptions& options = coordinator_.eval_options();
  ParallelFor(options.num_threads, shards_.size(), [&](size_t s) {
    QueryEvaluator evaluator(
        &shards_[s]->pool(),
        [&](const std::string& name) -> const PvcTable& {
          if (name == table) return augmented[s];
          return shards_[s]->table(name);
        },
        EvalMode::kProbabilistic, options);
    results[s] = evaluator.Eval(q);
  });

  // Gather: strip the provenance column and merge on driving-row order,
  // which is exactly the row order of the unsharded evaluation (Select and
  // Rename emit surviving rows in input order).
  size_t rowid_index = results[0].schema().IndexOf(kRowIdColumn);
  std::vector<Column> out_columns = results[0].schema().columns();
  out_columns.erase(out_columns.begin() + rowid_index);

  DistributedParts out;
  out.schema = Schema{std::move(out_columns)};
  out.parts.reserve(shards_.size());
  out.global.resize(shards_.size());
  struct Survivor {
    int64_t global_row;
    uint32_t part;
    uint32_t row;
  };
  std::vector<Survivor> survivors;
  for (size_t s = 0; s < shards_.size(); ++s) {
    PvcTable stripped{out.schema};
    for (size_t j = 0; j < results[s].NumRows(); ++j) {
      const Row& r = results[s].row(j);
      int64_t global_row = r.cells[rowid_index].AsInt();
      survivors.push_back({global_row, static_cast<uint32_t>(s),
                           static_cast<uint32_t>(j)});
      out.global[s].push_back(global_row);
      std::vector<Cell> cells = r.cells;
      cells.erase(cells.begin() + rowid_index);
      stripped.AddRow(std::move(cells), r.annotation);
    }
    out.parts.push_back(std::move(stripped));
  }
  std::sort(survivors.begin(), survivors.end(),
            [](const Survivor& a, const Survivor& b) {
              return a.global_row < b.global_row;
            });
  out.order.reserve(survivors.size());
  for (const Survivor& s : survivors) {
    out.order.emplace_back(s.part, s.row);
  }
  return out;
}

ShardedResult ShardedDatabase::RunDistributed(const Query& q,
                                              const std::string& table) {
  DistributedParts parts = EvalDistributed(q, table);
  ShardedResult result;
  result.schema_ = std::move(parts.schema);
  result.distributed_ = true;
  result.parts_ = std::move(parts.parts);
  result.order_ = std::move(parts.order);
  return result;
}

std::vector<ShardedDatabase::PartRef> ShardedDatabase::PartsOf(
    const ShardedResult& result) const {
  std::vector<PartRef> parts;
  parts.reserve(result.parts_.size());
  for (size_t p = 0; p < result.parts_.size(); ++p) {
    const ExprPool& pool = result.distributed_ ? shards_[p]->pool()
                                               : coordinator_.pool();
    parts.push_back({&result.parts_[p], &pool});
  }
  return parts;
}

std::vector<ShardedDatabase::PartRef> ShardedDatabase::PartsOfTable(
    const std::string& name) const {
  std::vector<PartRef> parts;
  parts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    parts.push_back({&shard->table(name), &shard->pool()});
  }
  return parts;
}

std::vector<Distribution> ShardedDatabase::DistributionsImpl(
    const std::vector<PartRef>& parts,
    const std::vector<std::pair<uint32_t, uint32_t>>& order) {
  // Database's per-row pipeline, with the clone source being the pool of
  // the part that owns the row. The gather is positional (out[i]), i.e.
  // global row order.
  VariableTable::EvalScope scope(variables());
  std::vector<Distribution> out(order.size());
  const VariableTable& vars = variables();
  CompileOptions compile_options = coordinator_.compile_options();
  int intra_tree = coordinator_.eval_options().intra_tree_threads;
  ParallelFor(coordinator_.eval_options().num_threads, order.size(),
              [&](size_t i) {
                const auto& [part, row] = order[i];
                const PartRef& ref = parts[part];
                out[i] = IsolatedAnnotationDistribution(
                    *ref.pool, vars, ref.table->row(row).annotation,
                    compile_options, intra_tree);
              });
  return out;
}

std::vector<ProbabilityBounds> ShardedDatabase::ApproximateImpl(
    const std::vector<PartRef>& parts,
    const std::vector<std::pair<uint32_t, uint32_t>>& order,
    ApproximateOptions options) {
  VariableTable::EvalScope scope(variables());
  std::vector<ProbabilityBounds> out(order.size());
  const VariableTable* vars = &variables();
  ParallelFor(coordinator_.eval_options().num_threads, order.size(),
              [&](size_t i) {
                const auto& [part, row] = order[i];
                const PartRef& ref = parts[part];
                ExprPool local(ref.pool->semiring().kind());
                ExprId e = ref.pool->CloneInto(&local,
                                               ref.table->row(row).annotation);
                out[i] = ApproximateProbability(&local, *vars, e, options);
              });
  return out;
}

std::vector<double> ShardedDatabase::TupleProbabilities(
    const ShardedResult& result) {
  SyncShardOptions();
  std::vector<Distribution> distributions =
      DistributionsImpl(PartsOf(result), result.order_);
  std::vector<double> out;
  out.reserve(distributions.size());
  for (const Distribution& d : distributions) {
    out.push_back(NonZeroMass(d));
  }
  return out;
}

std::vector<Distribution> ShardedDatabase::AnnotationDistributions(
    const ShardedResult& result) {
  SyncShardOptions();
  return DistributionsImpl(PartsOf(result), result.order_);
}

std::vector<ProbabilityBounds> ShardedDatabase::ApproximateTupleProbabilities(
    const ShardedResult& result, ApproximateOptions options) {
  SyncShardOptions();
  return ApproximateImpl(PartsOf(result), result.order_, options);
}

std::vector<double> ShardedDatabase::TupleProbabilities(
    const std::string& name) {
  SyncShardOptions();
  std::vector<Distribution> distributions =
      DistributionsImpl(PartsOfTable(name), PlacementOf(name));
  std::vector<double> out;
  out.reserve(distributions.size());
  for (const Distribution& d : distributions) {
    out.push_back(NonZeroMass(d));
  }
  return out;
}

std::vector<Distribution> ShardedDatabase::AnnotationDistributions(
    const std::string& name) {
  SyncShardOptions();
  return DistributionsImpl(PartsOfTable(name), PlacementOf(name));
}

std::vector<ProbabilityBounds> ShardedDatabase::ApproximateTupleProbabilities(
    const std::string& name, ApproximateOptions options) {
  SyncShardOptions();
  return ApproximateImpl(PartsOfTable(name), PlacementOf(name), options);
}

Distribution ShardedDatabase::ConditionalAggregateDistribution(
    const ShardedResult& result, size_t row_index, const std::string& column) {
  PVC_CHECK_MSG(!result.distributed_,
                "aggregation columns only occur on coordinator-evaluated "
                "results (aggregates always gather)");
  PVC_CHECK_MSG(row_index < result.NumRows(),
                "result row " << row_index << " out of range");
  return coordinator_.ConditionalAggregateDistribution(
      result.parts_[0], result.order_[row_index].second, column);
}

// -- Mutations --------------------------------------------------------------

size_t ShardedDatabase::InsertTuple(const std::string& table,
                                    std::vector<Cell> cells, double p) {
  auto key_it = key_columns_.find(table);
  PVC_CHECK_MSG(key_it != key_columns_.end(),
                "no sharded table named '" << table << "'");
  PVC_CHECK_MSG(key_it->second < cells.size(),
                "row is missing its key cell");

  // The coordinator replays the unsharded mutation: the fresh Bernoulli
  // variable gets the next global id, and coordinator-registered views
  // absorb the delta. It also logs the [variable, insert] WAL record,
  // which is all replay needs (the key column was recorded at load time).
  VarId x = static_cast<VarId>(variables().size());
  size_t global_row = coordinator_.InsertTuple(table, cells, p);
  RouteAppendedRow(table, key_it->second, cells, x, global_row);
  return global_row;
}

size_t ShardedDatabase::AppendRowToTable(const std::string& table,
                                         std::vector<Cell> cells, VarId var) {
  auto key_it = key_columns_.find(table);
  PVC_CHECK_MSG(key_it != key_columns_.end(),
                "no sharded table named '" << table << "'");
  PVC_CHECK_MSG(key_it->second < cells.size(),
                "row is missing its key cell");
  PVC_CHECK_MSG(var < variables().size(),
                "unknown variable id " << var);
  size_t global_row = coordinator_.AppendRowToTable(
      table, cells, coordinator_.pool().Var(var));
  RouteAppendedRow(table, key_it->second, cells, var, global_row);
  return global_row;
}

void ShardedDatabase::RouteAppendedRow(const std::string& table,
                                       size_t key_index,
                                       const std::vector<Cell>& cells,
                                       VarId var, size_t global_row) {
  // Route the row to its shard, exactly as the load would.
  size_t s = router_->Route(cells[key_index], shards_.size());
  size_t shard_row = shards_[s]->table(table).NumRows();
  ExprId shard_annotation = shards_[s]->pool().Var(var);
  shards_[s]->AppendRowToTable(table, cells, shard_annotation);
  placements_[table].emplace_back(static_cast<uint32_t>(s),
                                  static_cast<uint32_t>(shard_row));

  // Keep the cached provenance-extended partition consistent (appends
  // carry the maximal global id, so in-place extension preserves order).
  auto aug = augmented_cache_.find(table);
  if (aug != augmented_cache_.end()) {
    std::vector<Cell> extended = cells;
    extended.emplace_back(static_cast<int64_t>(global_row));
    aug->second[s].AddRow(std::move(extended), shard_annotation);
  }

  for (auto& view : sharded_views_) {
    if (view->driving == table) {
      ApplyShardedViewInsert(view.get(), s, global_row, cells,
                             shard_annotation);
    }
  }
}

void ShardedDatabase::DeleteRowAt(const std::string& table,
                                  size_t row_index) {
  auto it = placements_.find(table);
  PVC_CHECK_MSG(it != placements_.end(),
                "no sharded table named '" << table << "'");
  std::vector<std::pair<uint32_t, uint32_t>>& placement = it->second;
  PVC_CHECK_MSG(row_index < placement.size(),
                "row index " << row_index << " out of range");
  auto [s, shard_row] = placement[row_index];

  coordinator_.DeleteRowAt(table, row_index);
  // Shard engines have no views of their own; this only drops the row.
  shards_[s]->DeleteRowAt(table, shard_row);
  placement.erase(placement.begin() + row_index);
  for (auto& [ps, pr] : placement) {
    if (ps == s && pr > shard_row) --pr;
  }
  // Global row ids above the deleted row shift; the provenance-extended
  // partitions are rebuilt from the placement on next use.
  augmented_cache_.erase(table);

  for (auto& view : sharded_views_) {
    if (view->driving == table) {
      ApplyShardedViewDelete(view.get(), row_index);
    }
  }
}

size_t ShardedDatabase::DeleteTuple(const std::string& table,
                                    const Cell& key) {
  return DeleteRowsMatchingKey(
      coordinator_.table(table), key,
      [&](size_t index) { DeleteRowAt(table, index); });
}

void ShardedDatabase::UpdateProbability(VarId var, double p) {
  bool same_support =
      SameSupport(variables().DistributionOf(var), Distribution::Bernoulli(p));
  // Updates the shared registry and the coordinator-registered views.
  coordinator_.UpdateProbability(var, p);
  const Semiring& semiring = coordinator_.pool().semiring();
  for (auto& view : sharded_views_) {
    for (StepTwoCache& cache : view->caches) {
      cache.OnVariableUpdate(var, variables(), semiring, same_support);
    }
  }
}

// -- Materialized views -----------------------------------------------------

ShardedDatabase::ShardedView* ShardedDatabase::FindShardedView(
    const std::string& name) {
  for (auto& view : sharded_views_) {
    if (view->name == name) return view.get();
  }
  return nullptr;
}

void ShardedDatabase::SeedShardedView(ShardedView* view) {
  SyncShardOptions();
  DistributedParts parts = EvalDistributed(*view->query, view->driving);
  view->schema = std::move(parts.schema);
  view->parts = std::move(parts.parts);
  view->global = std::move(parts.global);
  view->order = std::move(parts.order);
  view->caches.clear();
  view->caches.resize(shards_.size());
}

void ShardedDatabase::RegisterView(const std::string& name, QueryPtr query) {
  // Like ViewRegistry::Register, build the replacement before dropping
  // any existing view of the name: a failing registration leaves the old
  // view (sharded or coordinator) untouched.
  std::optional<std::string> driving = ShardDrivingTable(*query);
  if (driving.has_value() && placements_.count(*driving) > 0 &&
      !coordinator_.table(*driving).schema().Find(kRowIdColumn).has_value() &&
      !QueryMentionsColumn(*query, kRowIdColumn)) {
    auto view = std::make_unique<ShardedView>();
    view->name = name;
    view->query = query;
    view->driving = *driving;
    SeedShardedView(view.get());
    {
      // Replacement is ONE logical op: the inner drop must not log its own
      // record (replay's RegisterView handles replacing the old name).
      WalDetachGuard guard(&coordinator_);
      DropView(name);
    }
    sharded_views_.push_back(std::move(view));
    if (wal() != nullptr) {
      WalRecord record;
      record.ops.push_back(WalOp::RegisterView(name, std::move(query)));
      LogWalRecord(wal(), record);
    }
    return;
  }
  SyncShardOptions();
  // The coordinator logs the kRegisterView record itself; retiring a
  // same-name per-shard view below is part of the same logical op.
  coordinator_.RegisterView(name, std::move(query));
  // The name may previously have named a per-shard view; retire it only
  // now that the replacement exists.
  for (auto it = sharded_views_.begin(); it != sharded_views_.end(); ++it) {
    if ((*it)->name == name) {
      sharded_views_.erase(it);
      break;
    }
  }
}

bool ShardedDatabase::HasView(const std::string& name) const {
  for (const auto& view : sharded_views_) {
    if (view->name == name) return true;
  }
  return coordinator_.HasView(name);
}

void ShardedDatabase::DropView(const std::string& name) {
  for (auto it = sharded_views_.begin(); it != sharded_views_.end(); ++it) {
    if ((*it)->name == name) {
      sharded_views_.erase(it);
      if (wal() != nullptr) {
        WalRecord record;
        record.ops.push_back(WalOp::DropView(name));
        LogWalRecord(wal(), record);
      }
      return;
    }
  }
  // Logs through the coordinator (only when the view exists).
  coordinator_.DropView(name);
}

std::vector<std::string> ShardedDatabase::ViewNames() const {
  std::vector<std::string> names;
  for (const auto& view : sharded_views_) names.push_back(view->name);
  for (const std::string& name : coordinator_.ViewNames()) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::pair<std::string, QueryPtr>> ShardedDatabase::ViewCatalog()
    const {
  std::vector<std::pair<std::string, QueryPtr>> catalog;
  for (const auto& view : sharded_views_) {
    catalog.emplace_back(view->name, view->query);
  }
  for (const std::string& name : coordinator_.ViewNames()) {
    catalog.emplace_back(name, coordinator_.views().view(name).query());
  }
  return catalog;
}

void ShardedDatabase::ApplyShardedViewInsert(
    ShardedView* view, size_t shard, size_t global_row,
    const std::vector<Cell>& cells, ExprId shard_annotation) {
  // Evaluate the chain on the delta row alone, against its
  // provenance-extended schema in the owning shard's pool -- the same
  // per-row pipeline as unsharded chain views (EvalChainOnSingleRow) and
  // the distributed scatter (chains over base partitions intern nothing,
  // so the shard pool is undisturbed when the row is filtered out).
  const PvcTable& partition = shards_[shard]->table(view->driving);
  std::vector<Column> columns = partition.schema().columns();
  columns.push_back({kRowIdColumn, CellType::kInt});
  Schema augmented{std::move(columns)};
  Row delta_row;
  delta_row.cells = cells;
  delta_row.cells.emplace_back(static_cast<int64_t>(global_row));
  delta_row.annotation = shard_annotation;
  std::optional<Row> out = EvalChainOnSingleRow(
      &shards_[shard]->pool(), *view->query, view->driving, augmented,
      delta_row, coordinator_.eval_options());
  if (!out.has_value()) return;

  // Strip the provenance cell like the distributed gather does: the
  // rowid column sits right after the base columns (selects preserve
  // column order, renames only append), i.e. at the base arity.
  size_t rowid_index = partition.schema().NumColumns();
  PVC_CHECK_MSG(out->cells.size() == view->schema.NumColumns() + 1,
                "chain output arity does not match the view schema");
  out->cells.erase(out->cells.begin() + rowid_index);
  // The delta row has the maximal global id: append everywhere.
  view->order.emplace_back(
      static_cast<uint32_t>(shard),
      static_cast<uint32_t>(view->parts[shard].NumRows()));
  view->parts[shard].AddRow(std::move(*out));
  view->global[shard].push_back(static_cast<int64_t>(global_row));
}

void ShardedDatabase::ApplyShardedViewDelete(ShardedView* view,
                                             size_t global_row) {
  int64_t g = static_cast<int64_t>(global_row);
  // The order is ascending in global id; find the derived row, if any.
  auto pos = std::lower_bound(
      view->order.begin(), view->order.end(), g,
      [&](const std::pair<uint32_t, uint32_t>& entry, int64_t value) {
        return view->global[entry.first][entry.second] < value;
      });
  if (pos != view->order.end() &&
      view->global[pos->first][pos->second] == g) {
    auto [s, r] = *pos;
    view->parts[s].DeleteRow(r);
    view->global[s].erase(view->global[s].begin() + r);
    view->order.erase(pos);
    for (auto& [os, orow] : view->order) {
      if (os == s && orow > r) --orow;
    }
  }
  // Later driving rows shifted down by one.
  for (std::vector<int64_t>& ids : view->global) {
    for (int64_t& id : ids) {
      if (id > g) --id;
    }
  }
}

ShardedResult ShardedDatabase::ViewResult(const std::string& name) {
  if (ShardedView* view = FindShardedView(name)) {
    ShardedResult result;
    result.schema_ = view->schema;
    result.parts_ = view->parts;
    result.order_ = view->order;
    result.distributed_ = true;
    return result;
  }
  return CoordinatorResult(coordinator_.ViewTable(name));
}

std::vector<double> ShardedDatabase::ViewProbabilities(
    const std::string& name) {
  ShardedView* view = FindShardedView(name);
  if (view == nullptr) return coordinator_.ViewProbabilities(name);
  SyncShardOptions();
  VariableTable::EvalScope scope(variables());
  const EvalOptions& eval_options = coordinator_.eval_options();
  const CompileOptions& options = coordinator_.compile_options();
  // Per-shard cached passes (the identical per-row pipeline), gathered in
  // global row order.
  std::vector<std::vector<double>> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    per_shard[s] = view->caches[s].Probabilities(
        shards_[s]->pool(), variables(), view->parts[s], options,
        eval_options);
  }
  std::vector<double> out;
  out.reserve(view->order.size());
  for (const auto& [s, r] : view->order) {
    out.push_back(per_shard[s][r]);
  }
  return out;
}

std::vector<ShardedDatabase::ViewInfo> ShardedDatabase::ViewInfos() {
  std::vector<ViewInfo> infos;
  for (const auto& view : sharded_views_) {
    ViewInfo info;
    info.name = view->name;
    info.plan = "chain (per shard)";
    info.rows = view->order.size();
    for (size_t s = 0; s < view->caches.size(); ++s) {
      info.cache_entries += view->caches[s].LiveEntries(view->parts[s]);
    }
    infos.push_back(std::move(info));
  }
  for (const std::string& name : coordinator_.ViewNames()) {
    const MaterializedView& view = coordinator_.views().view(name);
    ViewInfo info;
    info.name = name;
    info.plan = MaterializedView::PlanName(view.plan());
    info.rows = coordinator_.ViewTable(name).NumRows();
    info.cache_entries =
        view.step_two().LiveEntries(coordinator_.ViewTable(name));
    infos.push_back(std::move(info));
  }
  return infos;
}

std::string ShardedDatabase::ResultToString(
    const ShardedResult& result) const {
  if (!result.distributed_) {
    // Coordinator results render exactly like the unsharded engine's.
    return result.parts_[0].ToString(&coordinator_.pool());
  }
  // Distributed results gather into a scratch pool for rendering only
  // (annotations of the distributable fragment are single variables, so
  // the rendering matches the unsharded one as well).
  ExprPool scratch(coordinator_.pool().semiring().kind());
  PvcTable gathered{result.schema_};
  for (const auto& [part, row] : result.order_) {
    const Row& r = result.parts_[part].row(row);
    gathered.AddRow(r.cells,
                    shards_[part]->pool().CloneInto(&scratch, r.annotation));
  }
  return gathered.ToString(&scratch);
}

}  // namespace pvcdb
