// CSV import/export for tuple-independent pvc-tables.
//
// Format: the header names each column as "name:type" with type in
// {int, double, string}; an optional final column named "_prob" (no type)
// holds the tuple's marginal probability (default 1.0 -- a deterministic
// table). Values are comma-separated; string values may be quoted with
// double quotes to include commas.
//
//   item:string,price:int,_prob
//   widget,1999,0.9
//   gadget,450,0.75

#ifndef PVCDB_ENGINE_CSV_H_
#define PVCDB_ENGINE_CSV_H_

#include <iosfwd>
#include <string>

#include "src/engine/database.h"

namespace pvcdb {

class Coordinator;
class ShardedDatabase;

/// Outcome of a CSV import.
struct CsvResult {
  bool ok = false;
  std::string error;
  size_t rows = 0;
};

/// Parses CSV from `input` and registers it as a tuple-independent table
/// named `table_name` in `db` (one fresh Bernoulli variable per row).
CsvResult LoadCsvTable(Database* db, const std::string& table_name,
                       std::istream& input);

/// Convenience overload reading from a file path.
CsvResult LoadCsvTableFromFile(Database* db, const std::string& table_name,
                               const std::string& path);

/// Sharded-catalog overloads: the same format, registered through
/// ShardedDatabase::AddTupleIndependentTable (hash-partitioned on the
/// first column; variable creation order matches the unsharded load).
CsvResult LoadCsvTable(ShardedDatabase* db, const std::string& table_name,
                       std::istream& input);
CsvResult LoadCsvTableFromFile(ShardedDatabase* db,
                               const std::string& table_name,
                               const std::string& path);

/// Out-of-process serving overloads (src/engine/coordinator.h): registered
/// through Coordinator::AddTupleIndependentTable, which loads the local
/// replica and partitions across the shard workers.
CsvResult LoadCsvTable(Coordinator* db, const std::string& table_name,
                       std::istream& input);
CsvResult LoadCsvTableFromFile(Coordinator* db, const std::string& table_name,
                               const std::string& path);

/// Writes `table` (data columns only; aggregation columns are rejected)
/// with per-tuple probabilities into CSV with a "_prob" column.
/// `probability_of` is invoked per row -- pass Database::TupleProbability.
bool WriteCsvTable(const Database& db, const PvcTable& table,
                   std::ostream& output);

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_CSV_H_
