// AVG aggregation by composition of SUM and COUNT.
//
// The paper (Section 2.2) notes that more complicated aggregations such as
// AVG "can conceptually be composed from simpler ones (e.g., SUM and
// COUNT)" while leaving the treatment out of scope. This module provides
// that composition: the exact distribution of SUM/COUNT is derived from
// the *joint* distribution of the two semimodule expressions (they share
// variables, so marginals do not suffice), conditioned on a non-empty
// group (COUNT > 0).

#ifndef PVCDB_ENGINE_AVERAGE_H_
#define PVCDB_ENGINE_AVERAGE_H_

#include <map>

#include "src/dtree/compile.h"
#include "src/expr/expr.h"
#include "src/prob/variable.h"

namespace pvcdb {

/// Distribution over average values (rationals, represented as doubles),
/// conditioned on the group being non-empty; the map is empty when
/// P[count > 0] = 0.
using AverageDistribution = std::map<double, double>;

/// Exact P[SUM/COUNT = a | COUNT > 0] from the joint distribution of the
/// `sum_expr` (a SUM semimodule expression) and `count_expr` (a COUNT
/// semimodule expression over the same tuples).
AverageDistribution ComputeAverageDistribution(
    ExprPool* pool, const VariableTable& variables, ExprId sum_expr,
    ExprId count_expr, CompileOptions options = CompileOptions());

/// Expected average E[SUM/COUNT | COUNT > 0]; 0 when always empty.
double ExpectedAverage(ExprPool* pool, const VariableTable& variables,
                       ExprId sum_expr, ExprId count_expr,
                       CompileOptions options = CompileOptions());

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_AVERAGE_H_
