#include "src/engine/remote_shard.h"

#include <utility>

#include "src/net/frame.h"
#include "src/util/check.h"

namespace pvcdb {

RemoteShard::RemoteShard(uint32_t shard_index, Socket sock, pid_t pid)
    : shard_index_(shard_index), sock_(std::move(sock)), pid_(pid) {
  down_ = !sock_.valid();
}

void RemoteShard::MarkDown() {
  down_ = true;
  sock_.Close();
}

bool RemoteShard::Handshake(const HelloMsg& hello) {
  if (down_) return false;
  if (!SendFrame(&sock_, static_cast<uint8_t>(MsgKind::kHello),
                 hello.Encode(), options_.deadline_ms)) {
    MarkDown();
    return false;
  }
  uint8_t kind = 0;
  std::string payload;
  if (RecvFrame(&sock_, &kind, &payload, options_.deadline_ms) !=
          FrameResult::kOk ||
      static_cast<MsgKind>(kind) != MsgKind::kHelloAck) {
    MarkDown();
    return false;
  }
  return true;
}

void RemoteShard::SendRequest(MsgKind request, const std::string& payload) {
  if (down_) throw WorkerDown(shard_index_, "already marked down");
  if (!SendFrame(&sock_, static_cast<uint8_t>(request), payload,
                 options_.deadline_ms)) {
    MarkDown();
    throw WorkerDown(shard_index_, "send failed or timed out");
  }
}

std::string RemoteShard::RecvReply(MsgKind expect) {
  if (down_) throw WorkerDown(shard_index_, "already marked down");
  uint8_t kind = 0;
  std::string payload;
  FrameResult r = RecvFrame(&sock_, &kind, &payload, options_.deadline_ms);
  if (r != FrameResult::kOk) {
    // Includes kTimeout: a timeout may have struck mid-frame, so the
    // stream position is gone — the connection is poisoned and must never
    // carry another request (no blind retry; see the header comment).
    MarkDown();
    throw WorkerDown(
        shard_index_,
        r == FrameResult::kTimeout
            ? "timed out after " + std::to_string(options_.deadline_ms) +
                  "ms"
            : (r == FrameResult::kClosed ? "connection closed"
                                         : "corrupt reply frame"));
  }
  if (static_cast<MsgKind>(kind) == MsgKind::kError) {
    // The worker is healthy; the engine over there rejected the request.
    ErrorMsg err;
    if (!ErrorMsg::Decode(payload, &err)) {
      MarkDown();
      throw WorkerDown(shard_index_, "undecodable error reply");
    }
    throw CheckError(err.text);
  }
  if (static_cast<MsgKind>(kind) != expect) {
    MarkDown();
    throw WorkerDown(shard_index_, "protocol confusion: unexpected reply kind " +
                                       std::to_string(kind));
  }
  return payload;
}

std::string RemoteShard::Call(MsgKind request, const std::string& payload,
                              MsgKind expect) {
  SendRequest(request, payload);
  return RecvReply(expect);
}

namespace {

template <typename T>
T DecodeReplyOrDown(uint32_t shard, const std::string& payload) {
  T out;
  if (!T::Decode(payload, &out)) {
    throw WorkerDown(shard, "undecodable typed reply");
  }
  return out;
}

}  // namespace

void RemoteShard::SyncVars(const SyncVarsMsg& msg) {
  Call(MsgKind::kSyncVars, msg.Encode(), MsgKind::kOk);
}

void RemoteShard::UpdateVar(VarId var, double probability) {
  UpdateVarMsg msg;
  msg.var = var;
  msg.probability = probability;
  Call(MsgKind::kUpdateVar, msg.Encode(), MsgKind::kOk);
}

uint64_t RemoteShard::LoadPartition(const LoadPartitionMsg& msg) {
  std::string reply = Call(MsgKind::kLoadPartition, msg.Encode(), MsgKind::kOk);
  return DecodeReplyOrDown<OkMsg>(shard_index_, reply).value;
}

void RemoteShard::AppendRow(const AppendRowMsg& msg) {
  Call(MsgKind::kAppendRow, msg.Encode(), MsgKind::kOk);
}

void RemoteShard::DeleteRow(const DeleteRowMsg& msg) {
  Call(MsgKind::kDeleteRow, msg.Encode(), MsgKind::kOk);
}

ChainResultMsg RemoteShard::EvalChain(const EvalChainMsg& msg) {
  std::string reply =
      Call(MsgKind::kEvalChain, msg.Encode(), MsgKind::kChainResult);
  return DecodeReplyOrDown<ChainResultMsg>(shard_index_, reply);
}

ProbsResultMsg RemoteShard::TableProbs(const TableProbsMsg& msg) {
  std::string reply =
      Call(MsgKind::kTableProbs, msg.Encode(), MsgKind::kProbsResult);
  return DecodeReplyOrDown<ProbsResultMsg>(shard_index_, reply);
}

uint64_t RemoteShard::RegisterChainView(const RegisterChainViewMsg& msg) {
  std::string reply =
      Call(MsgKind::kRegisterChainView, msg.Encode(), MsgKind::kOk);
  return DecodeReplyOrDown<OkMsg>(shard_index_, reply).value;
}

void RemoteShard::DropChainView(const std::string& name) {
  NameMsg msg;
  msg.name = name;
  Call(MsgKind::kDropChainView, msg.Encode(), MsgKind::kOk);
}

ChainResultMsg RemoteShard::ViewProbs(const std::string& name) {
  NameMsg msg;
  msg.name = name;
  std::string reply =
      Call(MsgKind::kViewProbs, msg.Encode(), MsgKind::kChainResult);
  return DecodeReplyOrDown<ChainResultMsg>(shard_index_, reply);
}

ViewInfoMsg RemoteShard::ViewInfo(const std::string& name) {
  NameMsg msg;
  msg.name = name;
  std::string reply =
      Call(MsgKind::kViewInfo, msg.Encode(), MsgKind::kViewInfoResult);
  return DecodeReplyOrDown<ViewInfoMsg>(shard_index_, reply);
}

bool RemoteShard::Ping(uint64_t nonce, PongMsg* pong) {
  if (down_) return false;
  PingMsg ping;
  ping.nonce = nonce;
  try {
    std::string reply = Call(MsgKind::kPing, ping.Encode(), MsgKind::kPong);
    PongMsg decoded;
    if (!PongMsg::Decode(reply, &decoded) || decoded.nonce != nonce) {
      // An undecodable or mismatched pong means reply alignment is lost.
      MarkDown();
      return false;
    }
    if (pong != nullptr) *pong = decoded;
    return true;
  } catch (const WorkerDown&) {
    return false;
  } catch (const CheckError&) {
    // The worker rejected the ping (it is alive but confused — e.g. a
    // version skew); treat it as a failed heartbeat without trusting the
    // connection further.
    MarkDown();
    return false;
  }
}

void RemoteShard::Shutdown() {
  if (down_) return;
  try {
    Call(MsgKind::kShutdown, std::string(), MsgKind::kOk);
  } catch (const WorkerDown&) {
  } catch (const CheckError&) {
  }
  MarkDown();
}

}  // namespace pvcdb
